package toplists

import (
	"fmt"
	"strings"
	"testing"

	"toplists/internal/cfmetrics"
	"toplists/internal/providers"
	"toplists/internal/stats"
)

// sketchcheck is the sketch-vs-exact oracle behind `make sketchcheck`: the
// sketch aggregation layer must (1) track the exact oracle tightly at a
// scale where its error bounds are known to be slack — Kendall tau >= 0.98
// over the top 1000 and Jaccard >= 0.99 at depths 100 and 1000, across
// three seeds — and (2) stay byte-identical across worker counts, because
// sketch state lives on fixed logical shards merged in canonical order, not
// on workers.

const (
	sketchTauMin     = 0.98
	sketchJaccardMin = 0.99
)

// sketchOracleCfg is the small-N configuration both studies run at: small
// enough that six full studies stay cheap, large enough that every sketch
// actually accumulates (hundreds of candidates, shared office IPs, bots).
var sketchOracleCfg = Config{Sites: 900, Clients: 250, Days: 3}

// rankPositions maps every element of ids to its 1-based rank.
func rankPositions[K comparable](ids []K) map[K]int {
	m := make(map[K]int, len(ids))
	for i, id := range ids {
		m[id] = i + 1
	}
	return m
}

// kendallTop computes Kendall's tau between two rankings over the elements
// of a's top k that b ranks anywhere at all.
func kendallTop[K comparable](t *testing.T, a, b []K, k int) float64 {
	t.Helper()
	rb := rankPositions(b)
	if k > len(a) {
		k = len(a)
	}
	var xs, ys []float64
	for i := 0; i < k; i++ {
		if pos, ok := rb[a[i]]; ok {
			xs = append(xs, float64(i+1))
			ys = append(ys, float64(pos))
		}
	}
	if len(xs) < 2 {
		t.Fatalf("kendallTop: only %d common elements", len(xs))
	}
	tau, err := stats.KendallTau(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return tau
}

// checkAgreement asserts the rank-agreement thresholds between an exact and
// a sketch ranking given as ordered element slices.
func checkAgreement[K comparable](t *testing.T, label string, exact, sk []K) {
	t.Helper()
	for _, k := range []int{100, 1000} {
		ka, kb := k, k
		if ka > len(exact) {
			ka = len(exact)
		}
		if kb > len(sk) {
			kb = len(sk)
		}
		if j := stats.JaccardSlices(exact[:ka], sk[:kb]); j < sketchJaccardMin {
			t.Errorf("%s: Jaccard@%d = %.4f < %.2f", label, k, j, sketchJaccardMin)
		}
	}
	if tau := kendallTop(t, exact, sk, 1000); tau < sketchTauMin {
		t.Errorf("%s: Kendall tau = %.4f < %.2f", label, tau, sketchTauMin)
	}
}

// listNames returns a provider's published day list as ordered names.
// Interned IDs are not comparable across two separate studies, so the
// oracle compares by name.
func listNames(l providers.List, day int) []string {
	r := l.Raw(day)
	out := make([]string, 0, r.Len())
	for i := 1; i <= r.Len(); i++ {
		out = append(out, r.At(i))
	}
	return out
}

// TestSketchOracle runs each seed's study twice — exact and sketch — and
// holds every traffic-fed ranking to the agreement thresholds: the three
// per-event providers, the Tranco amalgam built from them, and the seven
// canonical Cloudflare metrics.
func TestSketchOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds six full studies")
	}
	for _, seed := range []uint64{3, 17, 2022} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(sketchMode bool) *Study {
				cfg := sketchOracleCfg
				cfg.Seed = seed
				cfg.Sketch = sketchMode
				s, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(s.Close)
				return s
			}
			exact, sk := run(false), run(true)
			day := sketchOracleCfg.Days - 1

			pairs := [][2]providers.List{
				{exact.inner.Alexa, sk.inner.Alexa},
				{exact.inner.Umbrella, sk.inner.Umbrella},
				{exact.inner.Secrank, sk.inner.Secrank},
				{exact.inner.Tranco, sk.inner.Tranco},
			}
			for _, pr := range pairs {
				checkAgreement(t, pr[0].Name(),
					listNames(pr[0], day), listNames(pr[1], day))
			}

			// Cloudflare metrics rank world-site IDs, which are stable
			// across studies sharing a world seed — compare them directly.
			for _, m := range cfmetrics.AllMetrics() {
				checkAgreement(t, m.String(),
					exact.inner.Pipeline.DayList(day, m.Combo()),
					sk.inner.Pipeline.DayList(day, m.Combo()))
			}
		})
	}
}

// TestSketchDeterminism mirrors the obscheck oracle in sketch mode: the
// full rendered evaluation and the deterministic report subset (which now
// carries the sketch memory and error-bound gauges) must be byte-identical
// across worker counts 4, 1, and auto.
func TestSketchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full studies")
	}
	cfg := sketchOracleCfg
	cfg.Seed = 11
	cfg.Sketch = true
	type runOut struct {
		render string
		det    string
	}
	run := func(workers int) runOut {
		c := cfg
		c.Workers = workers
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var b strings.Builder
		if err := s.RenderAll(&b); err != nil {
			t.Fatal(err)
		}
		det, err := s.Metrics().Snapshot().Deterministic()
		if err != nil {
			t.Fatal(err)
		}
		return runOut{render: b.String(), det: string(det)}
	}

	base := run(4)
	for _, key := range []string{
		"sketch.cf.mem_peak_bytes", "sketch.cf.cm_errbound",
		"sketch.umbrella.mem_peak_bytes", "sketch.secrank.mem_peak_bytes",
		"sketch.chrome.mem_peak_bytes",
	} {
		if !strings.Contains(base.det, key) {
			t.Errorf("deterministic report subset is missing %q", key)
		}
	}
	for _, workers := range []int{1, 0} {
		got := run(workers)
		if got.render != base.render {
			t.Errorf("sketch render differs between workers=4 and workers=%d (lens %d vs %d)",
				workers, len(base.render), len(got.render))
		}
		if got.det != base.det {
			t.Errorf("sketch deterministic report differs between workers=4 and workers=%d:\n%s",
				workers, firstDiffLine(base.det, got.det))
		}
	}
}
