package toplists

import (
	"strings"
	"sync"
	"testing"
)

var (
	facadeOnce  sync.Once
	facadeStudy *Study
	facadeErr   error
)

func facade(t testing.TB) *Study {
	t.Helper()
	facadeOnce.Do(func() {
		facadeStudy, facadeErr = Run(Config{
			Seed: 7, Sites: 1500, Clients: 500, Days: 5, AllCombos: true,
		})
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeStudy
}

func TestRunAndDescribe(t *testing.T) {
	s := facade(t)
	if !strings.Contains(s.Describe(), "sites=1500") {
		t.Errorf("describe = %q", s.Describe())
	}
	lists := s.Lists()
	if len(lists) != 7 {
		t.Fatalf("lists = %v", lists)
	}
	want := map[string]bool{
		"Alexa": true, "Majestic": true, "Secrank": true, "Tranco": true,
		"Trexa": true, "Umbrella": true, "CrUX": true,
	}
	for _, l := range lists {
		if !want[l] {
			t.Errorf("unexpected list %q", l)
		}
	}
}

func TestRunRejectsNegativeConfig(t *testing.T) {
	if _, err := Run(Config{Sites: -1}); err == nil {
		t.Fatal("negative sites accepted")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("experiments = %d, want 15 (11 paper artifacts + 4 extensions)", len(exps))
	}
	for _, e := range exps {
		if e.ID == "" || e.Name == "" {
			t.Errorf("incomplete experiment %+v", e)
		}
	}
}

func TestExperimentByID(t *testing.T) {
	s := facade(t)
	for _, e := range Experiments() {
		res, err := s.Experiment(e.ID)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if res.ID() != e.ID {
			t.Fatalf("got id %s for %s", res.ID(), e.ID)
		}
		var b strings.Builder
		if err := res.Render(&b); err != nil {
			t.Fatalf("%s render: %v", e.ID, err)
		}
		if b.Len() == 0 {
			t.Fatalf("%s rendered nothing", e.ID)
		}
	}
}

func TestExperimentUnknown(t *testing.T) {
	s := facade(t)
	if _, err := s.Experiment("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderAll(t *testing.T) {
	s := facade(t)
	var b strings.Builder
	if err := s.RenderAll(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 1a", "Figure 2a", "Figure 3", "Figure 4a", "Figure 5",
		"Figure 6a", "Figure 7", "Figure 8a", "Table 1", "Table 2", "Table 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll output missing %q", want)
		}
	}
}

func TestRenderAllWithoutAllCombos(t *testing.T) {
	s, err := Run(Config{Seed: 9, Sites: 400, Clients: 120, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var b strings.Builder
	if err := s.RenderAll(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[fig8 skipped") {
		t.Error("fig8 skip note missing")
	}
}

func TestFacadeExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several studies")
	}
	tiny := Config{Seed: 3, Sites: 400, Clients: 100, Days: 2}

	ab, err := RunAblations(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if ab.ID() != "ablate" {
		t.Errorf("ablate id = %s", ab.ID())
	}
	var b strings.Builder
	if err := ab.Render(&b); err != nil {
		t.Fatal(err)
	}

	rb, err := RunRobustness(tiny, []uint64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if rb.ID() != "robustness" {
		t.Errorf("robustness id = %s", rb.ID())
	}

	at, err := RunAttack(tiny, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if at.ID() != "attack" {
		t.Errorf("attack id = %s", at.ID())
	}

	for _, bad := range []func() (Result, error){
		func() (Result, error) { return RunAblations(Config{Sites: -1}) },
		func() (Result, error) { return RunRobustness(Config{Days: -1}, []uint64{1}) },
		func() (Result, error) { return RunAttack(Config{Clients: -1}, []int{1}) },
	} {
		if _, err := bad(); err == nil {
			t.Error("negative config accepted by extension runner")
		}
	}
}
