package toplists

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// vantagecheck is the multi-vantage oracle behind `make vantagecheck`. It
// pins the two ends of the vantage/CDN refactor's contract:
//
//  1. Identity: a config that spells out the defaults (one transparent
//     vantage, one backend) renders byte-identically to the zero-value
//     config AND to the golden fixture captured before vantages existed —
//     the single-edge model is a true special case, not a near miss.
//  2. Determinism: the widest grid (3 vantages x 3 backends) renders
//     byte-identically across worker counts {1, 4, auto}, in both exact
//     and sketch aggregation modes, including the per-edge vantages
//     extension that only a multi-edge study exercises.

// vantageRender runs one study and renders the full evaluation plus the
// vantages extension (RenderAll covers only the golden-pinned paper set).
func vantageRender(t *testing.T, cfg Config) (renderAll, vantages string) {
	t.Helper()
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var b strings.Builder
	if err := s.RenderAll(&b); err != nil {
		t.Fatal(err)
	}
	res, err := s.Experiment("vantages")
	if err != nil {
		t.Fatal(err)
	}
	var vb strings.Builder
	if err := res.Render(&vb); err != nil {
		t.Fatal(err)
	}
	return b.String(), vb.String()
}

// TestVantageCheckDefaultIdentity holds the explicit single-edge config to
// the pre-refactor bytes: Vantages=1/Backends=1 must equal the zero-value
// config and the checked-in golden captured before the refactor.
func TestVantageCheckDefaultIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full studies")
	}
	base := Config{Seed: 9, Sites: 400, Clients: 120, Days: 2}
	explicit := base
	explicit.Vantages = 1
	explicit.Backends = 1

	gotBase, _ := vantageRender(t, base)
	gotExplicit, _ := vantageRender(t, explicit)
	if gotExplicit != gotBase {
		t.Errorf("explicit Vantages=1/Backends=1 render differs from the zero-value config; first divergence at byte %d",
			firstDiff(gotExplicit, gotBase))
	}

	want, err := os.ReadFile(filepath.Join("testdata", "golden_seed9.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if gotExplicit != string(want) {
		t.Errorf("explicit single-edge render differs from the pre-refactor golden (len %d vs %d); first divergence at byte %d",
			len(gotExplicit), len(want), firstDiff(gotExplicit, string(want)))
	}
}

// TestVantageCheckMultiEdgeDeterminism renders the full 3x3 grid at worker
// counts 4, 1, and auto, exact and sketch, and requires byte-identical
// output within each mode — per-(vantage, backend) pipelines ride the same
// sharded replay as the primary, so the worker count must never show.
func TestVantageCheckMultiEdgeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds six full studies")
	}
	for _, mode := range []struct {
		name   string
		sketch bool
	}{{"exact", false}, {"sketch", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := Config{Seed: 13, Sites: 500, Clients: 150, Days: 2,
				Vantages: 3, Backends: 3, Sketch: mode.sketch}
			run := func(workers int) (string, string) {
				c := cfg
				c.Workers = workers
				return vantageRender(t, c)
			}
			baseAll, baseV := run(4)
			if !strings.Contains(baseV, "3 vantages x 3 backends") {
				t.Fatalf("vantages render is not the 3x3 grid:\n%s", baseV)
			}
			for _, workers := range []int{1, 0} {
				gotAll, gotV := run(workers)
				if gotAll != baseAll {
					t.Errorf("RenderAll differs between workers=4 and workers=%d; first divergence at byte %d",
						workers, firstDiff(gotAll, baseAll))
				}
				if gotV != baseV {
					t.Errorf("vantages render differs between workers=4 and workers=%d; first divergence at byte %d",
						workers, firstDiff(gotV, baseV))
				}
			}
		})
	}
}
