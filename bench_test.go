package toplists

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact) and reports the headline shape
// numbers as benchmark metrics, so `go test -bench=. -benchmem` doubles as
// the reproduction run. Absolute wall-clock is dominated by the simulation;
// the reported custom metrics are what EXPERIMENTS.md records against the
// paper's values.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"toplists/internal/core"
	"toplists/internal/experiments"
	"toplists/internal/world"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
)

// benchScale is the shared study used by the artifact benchmarks: big
// enough for every shape to be visible, small enough to build in seconds.
func getBenchStudy(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy = core.NewStudy(core.Config{
			Seed:           2022,
			NumSites:       20000,
			NumClients:     3000,
			Days:           14,
			TrackAllCombos: true,
			EvalMagIdx:     1,
		})
		benchStudy.Run()
	})
	return benchStudy
}

func BenchmarkStudyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewStudy(core.Config{
			Seed: uint64(i), NumSites: 2000, NumClients: 400, Days: 3,
		})
		s.Run()
		s.Close()
	}
}

// BenchmarkStudyBuildWorkers sweeps the engine worker count over a larger
// study so the speedup of the sharded simulation (engine.RunDay fans client
// shards out across goroutines, then replays events in client order) is
// visible on multi-core machines. Output is identical at every width; only
// wall-clock changes.
func BenchmarkStudyBuildWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewStudy(core.Config{
					Seed: uint64(i), NumSites: 5000, NumClients: 1500, Days: 5,
					Workers: workers,
				})
				s.Run()
				s.Close()
			}
		})
	}
}

func BenchmarkFig1IntraCloudflare(b *testing.B) {
	s := getBenchStudy(b)
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(s)
		lo, hi = r.OffDiagonalRange()
	}
	b.ReportMetric(lo, "jj-band-lo")
	b.ReportMetric(hi, "jj-band-hi")
}

func BenchmarkFig2ListsVsCloudflare(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig2(s)
	}
	b.ReportMetric(r.MeanJaccard("CrUX"), "jj-crux")
	b.ReportMetric(r.MeanJaccard("Umbrella"), "jj-umbrella")
	b.ReportMetric(r.MeanJaccard("Alexa"), "jj-alexa")
	b.ReportMetric(r.MeanJaccard("Secrank"), "jj-secrank")
	b.ReportMetric(r.MinMetricAgreement(), "metric-agreement")
}

func BenchmarkFig3Temporal(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig3(s)
	}
	wd, we, _, _ := r.WeekdayWeekendSplit("Umbrella")
	b.ReportMetric(wd-we, "umbrella-weekday-minus-weekend-jj")
	b.ReportMetric(r.LateMonthImprovement("Alexa"), "alexa-late-month-jj-delta")
}

func BenchmarkFig4Platform(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig4(s)
	}
	var mean float64
	for _, l := range r.Lists {
		mean += r.DesktopAdvantage(l)
	}
	b.ReportMetric(mean/float64(len(r.Lists)), "mean-desktop-advantage")
}

func BenchmarkFig5Movement(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig5(s)
	}
	b.ReportMetric(r.OverrankFor("Alexa", 1).OverrankedPct, "alexa-overranked-pct")
	b.ReportMetric(r.OverrankFor("Alexa", 1).Overranked2Pct, "alexa-2mag-pct")
	b.ReportMetric(r.OverrankFor("CrUX", 1).OverrankedPct, "crux-overranked-pct")
}

func BenchmarkFig6IntraChrome(b *testing.B) {
	s := getBenchStudy(b)
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig6(s)
		lo, hi = r.OffDiagonalRange()
	}
	b.ReportMetric(lo, "jj-band-lo")
	b.ReportMetric(hi, "jj-band-hi")
}

func BenchmarkFig7Country(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig7(s)
	}
	b.ReportMetric(r.JaccardFor("Secrank", world.CN), "secrank-cn-jj")
	b.ReportMetric(r.JaccardFor("Umbrella", world.US), "umbrella-us-jj")
	b.ReportMetric(r.JaccardFor("Alexa", world.JP), "alexa-jp-jj")
}

func BenchmarkFig8AllCombos(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunFig8(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Spearman[0][6], "all-vs-200-spearman")
	b.ReportMetric(r.Jaccard[0][6], "all-vs-200-jaccard")
}

func BenchmarkTable1Coverage(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunTable1(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Coverage("CrUX", 3), "crux-coverage-pct")
	b.ReportMetric(r.Coverage("Alexa", 3), "alexa-coverage-pct")
	b.ReportMetric(r.Coverage("Umbrella", 3), "umbrella-coverage-pct")
	b.ReportMetric(r.Coverage("Secrank", 3), "secrank-coverage-pct")
}

func BenchmarkTable2PSL(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunTable2(s)
	}
	b.ReportMetric(r.Deviation("Umbrella", 3), "umbrella-deviation-pct")
	b.ReportMetric(r.Deviation("CrUX", 3), "crux-deviation-pct")
	b.ReportMetric(r.Deviation("Tranco", 3), "tranco-deviation-pct")
}

func BenchmarkTable3Categories(b *testing.B) {
	s := getBenchStudy(b)
	var r *experiments.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunTable3(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	if o, ok := r.OddsFor("Alexa", world.Adult); ok {
		b.ReportMetric(o.OddsRatio, "alexa-adult-or")
	}
	if o, ok := r.OddsFor("CrUX", world.Adult); ok {
		b.ReportMetric(o.OddsRatio, "crux-adult-or")
	}
	if o, ok := r.OddsFor("Majestic", world.Government); ok {
		b.ReportMetric(o.OddsRatio, "majestic-gov-or")
	}
}

// renderAllOnce evaluates every paper experiment on a pool of the given
// width and renders each artifact to io.Discard, mirroring Study.RenderAll.
func renderAllOnce(b *testing.B, s *core.Study, workers int) {
	b.Helper()
	for _, oc := range experiments.RunConcurrent(context.Background(), s, experiments.All(), workers) {
		if oc.Err != nil {
			b.Fatal(oc.Err)
		}
		if err := oc.Result.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderAll measures the full artifact rendering path end to end:
// serial (workers=1) against the parallel pool (workers=0), each from a cold
// artifact store (every normalized list, metric ranking, and the Cloudflare
// probe recomputed) and from a warm one (everything already memoized, so the
// residual cost is the per-experiment comparison and rendering work).
func BenchmarkRenderAll(b *testing.B) {
	s := getBenchStudy(b)
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s.ResetArtifacts()
				b.StartTimer()
				renderAllOnce(b, s, mode.workers)
			}
		})
		b.Run(mode.name+"/warm", func(b *testing.B) {
			s.ResetArtifacts()
			renderAllOnce(b, s, mode.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				renderAllOnce(b, s, mode.workers)
			}
		})
	}
}
