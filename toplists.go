// Package toplists reproduces the measurement study "Toppling Top Lists:
// Evaluating the Accuracy of Popular Website Lists" (Ruth, Kumar, Wang,
// Valenta, Durumeric — ACM IMC 2022) over a fully synthetic web.
//
// A Study simulates a universe of websites with known ground-truth
// popularity, a browsing population observed through every vantage point
// the paper uses (Cloudflare-style edge logs, Chrome telemetry, an
// extension panel, corporate and national DNS resolvers, a backlink
// crawl), reconstructs the seven top lists the paper evaluates (Alexa,
// Umbrella, Majestic, Secrank, Tranco, Trexa, CrUX), and regenerates every
// table and figure of the paper's evaluation.
//
// Basic use:
//
//	study, err := toplists.Run(toplists.Config{Seed: 1, Sites: 10000,
//		Clients: 2000, Days: 14})
//	if err != nil { ... }
//	defer study.Close()
//	res, err := study.Experiment("fig2")
//	res.Render(os.Stdout)
//
// Run is a thin client of the incremental day lifecycle in internal/core:
// it advances the study one simulated day at a time until the window is
// exhausted, then finalizes. The same lifecycle powers cmd/toplistsd,
// which advances days on demand over HTTP and checkpoints/resumes the
// study byte-identically (see DESIGN.md, "Resident service & snapshots").
package toplists

import (
	"context"
	"fmt"
	"io"
	"sort"

	"toplists/internal/core"
	"toplists/internal/experiments"
	"toplists/internal/obs"
	"toplists/internal/sketch"
	"toplists/internal/world"
)

// Config parameterizes a study run. Zero fields take defaults sized for a
// laptop-scale run.
type Config struct {
	// Seed makes the whole study reproducible.
	Seed uint64
	// Sites is the number of websites in the synthetic universe.
	Sites int
	// Clients is the simulated browsing population.
	Clients int
	// Days is the measurement window (the paper uses the 28 days of
	// February 2022).
	Days int
	// AllCombos tracks all 21 Cloudflare filter-aggregation combinations,
	// required by the fig8 experiment (the seven canonical metrics are
	// always tracked).
	AllCombos bool
	// Workers is the number of goroutines simulating clients within each
	// day, and also the size of the worker pool RenderAll and
	// RunExperiments evaluate experiments on: 0 uses one per CPU, 1 forces
	// the serial path. Results are bit-identical for every setting —
	// simulation workers emit into per-shard buffers that are replayed to
	// observers in client order, and evaluation results are emitted in
	// canonical paper order regardless of completion order.
	Workers int
	// CruxMinVisitors is the CrUX per-country privacy threshold.
	CruxMinVisitors int
	// FaultRate injects deterministic faults into the virtual probe
	// network at the given rate (0..1); 0 leaves the network pristine.
	// The fault plan is derived from Seed, so runs stay reproducible.
	FaultRate float64
	// Vantages is the number of measurement vantage points (0 or 1 = the
	// single transparent global vantage, the paper's single-edge model;
	// up to world.MaxVantages). Additional vantages are regional: each
	// observes the browsing population through its own country-skewed
	// reachability and keeps its own per-(vantage, backend) edge pipeline
	// and resolver cache. The default output is byte-identical to the
	// pre-vantage model.
	Vantages int
	// Backends is the number of deployed CDN edge backends (0 or 1 = the
	// Cloudflare-style backend only; up to world.NumBackends). Extra
	// backends host a skewed slice of the universe and are measured by
	// the same vantage grid.
	Backends int
	// Sketch switches the aggregation layer to bounded mergeable summaries
	// (count-min, space-saving, HyperLogLog): each traffic shard keeps
	// fixed-size state merged at the day barrier, so peak memory stops
	// scaling with the event volume. Rankings are then approximations with
	// proven error bounds rather than exact; leave it false (the default)
	// for the exact oracle. Output remains deterministic and identical at
	// every Workers setting in both modes.
	Sketch bool
	// Obs, when set, is the telemetry registry the study records into;
	// nil gives the study a private one, reachable via Study.Metrics.
	// Telemetry never changes study output: count-valued metrics are a
	// pure function of the configuration, and timing-valued metrics are
	// excluded from the run report's deterministic subset.
	Obs *obs.Registry
}

// validate reports the first invalid Config field as an explicit error.
// Zero fields are valid (they take defaults); out-of-range values are
// rejected here rather than silently clamped downstream.
func (cfg Config) validate() error {
	switch {
	case cfg.Sites < 0:
		return fmt.Errorf("toplists: sites %d negative", cfg.Sites)
	case cfg.Clients < 0:
		return fmt.Errorf("toplists: clients %d negative", cfg.Clients)
	case cfg.Days < 0:
		return fmt.Errorf("toplists: days %d negative", cfg.Days)
	case cfg.Workers < 0:
		return fmt.Errorf("toplists: workers %d negative", cfg.Workers)
	case cfg.CruxMinVisitors < 0:
		return fmt.Errorf("toplists: crux min visitors %d negative", cfg.CruxMinVisitors)
	case cfg.FaultRate < 0 || cfg.FaultRate > 1:
		return fmt.Errorf("toplists: fault rate %v outside [0, 1]", cfg.FaultRate)
	case cfg.Vantages < 0 || cfg.Vantages > world.MaxVantages:
		return fmt.Errorf("toplists: vantages %d outside [0, %d]", cfg.Vantages, world.MaxVantages)
	case cfg.Backends < 0 || cfg.Backends > world.NumBackends:
		return fmt.Errorf("toplists: backends %d outside [0, %d]", cfg.Backends, world.NumBackends)
	}
	return nil
}

// ErrStudyAborted marks a study whose day advancement failed mid-day (a
// canceled context observed inside a day, or a panicking client shard):
// the observers hold a half-fed day, so the study latches and every later
// run attempt returns an error wrapping this sentinel instead of silently
// re-simulating over torn state. Aliased from internal/core so callers of
// this package can errors.Is against it.
var ErrStudyAborted = core.ErrStudyAborted

// Result is one regenerated paper artifact.
type Result interface {
	// ID is the artifact identifier ("fig1".."fig8", "tab1".."tab3").
	ID() string
	// Render writes the artifact as text.
	Render(w io.Writer) error
}

// Experiment describes one available experiment.
type Experiment struct {
	ID   string
	Name string
}

// Experiments lists the available experiments: the paper's artifacts in
// paper order, then the extensions.
func Experiments() []Experiment {
	var out []Experiment
	for _, r := range experiments.All() {
		out = append(out, Experiment{ID: r.ID, Name: r.Name})
	}
	for _, r := range experiments.Extensions() {
		out = append(out, Experiment{ID: r.ID, Name: r.Name})
	}
	return out
}

// Study is a completed simulation ready for evaluation.
type Study struct {
	inner *core.Study
}

// Run builds the universe, simulates the measurement window, and finalizes
// every top list. It is CPU-bound and scales across cores: the simulation
// fans each day's clients out over Config.Workers goroutines (0 = one per
// CPU) with output bit-identical to the serial path. Expect seconds to
// minutes depending on Config.
func Run(cfg Config) (*Study, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run honoring ctx: cancellation mid-simulation returns the
// context's error promptly, with no goroutines left behind.
func RunContext(ctx context.Context, cfg Config) (*Study, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := core.NewStudy(core.Config{
		Seed:            cfg.Seed,
		NumSites:        cfg.Sites,
		NumClients:      cfg.Clients,
		Days:            cfg.Days,
		TrackAllCombos:  cfg.AllCombos,
		CruxMinVisitors: cfg.CruxMinVisitors,
		Workers:         cfg.Workers,
		FaultRate:       cfg.FaultRate,
		Vantages:        cfg.Vantages,
		Backends:        cfg.Backends,
		Sketch:          sketch.Config{Enabled: cfg.Sketch},
		Obs:             cfg.Obs,
	})
	if err := s.RunContext(ctx); err != nil {
		return nil, err
	}
	return &Study{inner: s}, nil
}

// Close releases resources (the virtual probe network, if it was started).
func (s *Study) Close() { s.inner.Close() }

// Metrics returns the study's telemetry registry — the one passed as
// Config.Obs, or the private registry the study created. Snapshot it for
// a run report, or hand it to obs.ServeDebug for live inspection.
func (s *Study) Metrics() *obs.Registry { return s.inner.Metrics() }

// Describe summarizes the run.
func (s *Study) Describe() string { return s.inner.Describe() }

// Lists returns the names of the seven evaluated lists in table order.
func (s *Study) Lists() []string {
	var out []string
	for _, l := range s.inner.Lists() {
		out = append(out, l.Name())
	}
	return out
}

// Experiment runs one experiment by ID.
func (s *Study) Experiment(id string) (Result, error) {
	runner, ok := experiments.Lookup(id)
	if !ok {
		return nil, unknownExperiment(id)
	}
	res, err := runner.Run(context.Background(), s.inner)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// unknownExperiment builds the error for an unrecognized ID, advertising
// every ID Lookup accepts: the paper artifacts and the extensions.
func unknownExperiment(id string) error {
	exps := Experiments()
	ids := make([]string, 0, len(exps))
	for _, e := range exps {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return fmt.Errorf("toplists: unknown experiment %q (have %v)", id, ids)
}

// ExperimentOutcome pairs an experiment ID with its result or error.
type ExperimentOutcome struct {
	ID     string
	Result Result
	Err    error
}

// RunExperiments executes the named experiments against the study,
// concurrently on a bounded worker pool sized by Config.Workers (0 = one
// per CPU, 1 = serial). Outcomes are returned in input order regardless of
// completion order, and every derived artifact (normalized lists, metric
// rankings, the probed Cloudflare set) is computed at most once across the
// whole batch. An unknown ID fails the call before anything runs.
func (s *Study) RunExperiments(ids []string) ([]ExperimentOutcome, error) {
	return s.RunExperimentsContext(context.Background(), ids)
}

// RunExperimentsContext is RunExperiments honoring ctx: canceled or
// never-launched experiments report the context's error in their outcome
// slot.
func (s *Study) RunExperimentsContext(ctx context.Context, ids []string) ([]ExperimentOutcome, error) {
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		r, ok := experiments.Lookup(id)
		if !ok {
			return nil, unknownExperiment(id)
		}
		runners[i] = r
	}
	outcomes := experiments.RunConcurrent(ctx, s.inner, runners, s.inner.Cfg.Workers)
	out := make([]ExperimentOutcome, len(outcomes))
	for i, oc := range outcomes {
		out[i] = ExperimentOutcome{ID: oc.Runner.ID, Result: oc.Result, Err: oc.Err}
	}
	return out, nil
}

// RunAblations runs the mechanism-ablation study (an extension beyond the
// paper): a baseline plus one full study per disabled mechanism at the
// given configuration, measuring how each planted mechanism drives its
// attributed finding. Expect roughly seven times the cost of Run.
func RunAblations(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return experiments.RunAblations(core.Config{
		Seed:            cfg.Seed,
		NumSites:        cfg.Sites,
		NumClients:      cfg.Clients,
		Days:            cfg.Days,
		CruxMinVisitors: cfg.CruxMinVisitors,
		Workers:         cfg.Workers,
		EvalMagIdx:      1,
	})
}

// RunAttack runs the list-manipulation extension: Sybil machines join the
// Alexa panel and browse one mid-tail target site; the result compares the
// target's achieved rank in Alexa, Tranco, and the Cloudflare truth per
// attacker budget. Cost is (1 + len(budgets)) full studies.
func RunAttack(cfg Config, budgets []int) (Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return experiments.RunAttack(core.Config{
		Seed:            cfg.Seed,
		NumSites:        cfg.Sites,
		NumClients:      cfg.Clients,
		Days:            cfg.Days,
		CruxMinVisitors: cfg.CruxMinVisitors,
		Workers:         cfg.Workers,
		EvalMagIdx:      1,
	}, budgets)
}

// RunRobustness replicates the study's headline numbers over multiple
// seeds (an extension beyond the paper). Cost is len(seeds) full studies.
func RunRobustness(cfg Config, seeds []uint64) (Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return experiments.RunRobustness(core.Config{
		NumSites:        cfg.Sites,
		NumClients:      cfg.Clients,
		Days:            cfg.Days,
		CruxMinVisitors: cfg.CruxMinVisitors,
		Workers:         cfg.Workers,
		EvalMagIdx:      1,
	}, seeds)
}

// RenderAll runs every experiment the study's configuration supports and
// writes the artifacts to w, separated by blank lines. fig8 is skipped with
// a note unless the study was built with AllCombos.
//
// Independent experiments execute concurrently on a bounded worker pool
// sized by Config.Workers (0 = one per CPU, 1 = serial), sharing one
// memoized artifact store; artifacts are emitted in canonical paper order
// regardless of completion order, so the output is byte-identical to a
// serial run.
func (s *Study) RenderAll(w io.Writer) error {
	return s.RenderAllContext(context.Background(), w)
}

// RenderAllContext is RenderAll honoring ctx; cancellation fails the
// first not-yet-rendered experiment with the context's error.
func (s *Study) RenderAllContext(ctx context.Context, w io.Writer) error {
	for _, oc := range experiments.RunConcurrent(ctx, s.inner, experiments.All(), s.inner.Cfg.Workers) {
		if oc.Err != nil {
			if oc.Runner.ID == "fig8" {
				fmt.Fprintf(w, "[%s skipped: %v]\n\n", oc.Runner.ID, oc.Err)
				continue
			}
			return fmt.Errorf("toplists: %s: %w", oc.Runner.ID, oc.Err)
		}
		if err := oc.Result.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
