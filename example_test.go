package toplists_test

import (
	"fmt"
	"log"

	"toplists"
)

// Example runs a miniature study and reports which lists were evaluated.
func Example() {
	study, err := toplists.Run(toplists.Config{
		Seed: 1, Sites: 500, Clients: 100, Days: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	fmt.Println(len(study.Lists()), "lists evaluated")
	for _, name := range study.Lists() {
		fmt.Println(name)
	}
	// Output:
	// 7 lists evaluated
	// Alexa
	// Majestic
	// Secrank
	// Tranco
	// Trexa
	// Umbrella
	// CrUX
}

// ExampleStudy_Experiment regenerates one artifact by its paper identifier.
func ExampleStudy_Experiment() {
	study, err := toplists.Run(toplists.Config{
		Seed: 1, Sites: 500, Clients: 100, Days: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	res, err := study.Experiment("tab2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.ID())
	// Output:
	// tab2
}
