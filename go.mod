module toplists

go 1.24
