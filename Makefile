GO ?= go

.PHONY: build test vet race fuzz bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The simulation engine runs client shards concurrently; the race pass
# covers the packages that touch the parallel path.
race:
	$(GO) test -race ./internal/traffic ./internal/core

# Short fuzz smoke of the rank-bucketing targets (seeds + 10s each).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzScaledMagnitudes -fuzztime=10s ./internal/rank
	$(GO) test -run=^$$ -fuzz=FuzzBucketer -fuzztime=10s ./internal/rank

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# check is the CI gate: everything must pass before merging.
check: build vet test race
