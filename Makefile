GO ?= go

.PHONY: build test vet race fuzz bench check faultcheck obscheck sketchcheck snapcheck vantagecheck crashcheck perfcheck sweepsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The simulation engine runs client shards concurrently, the experiments
# evaluate on a shared artifact store, the name interner serves lock-free
# concurrent readers, and the probe network injects faults under load; the
# race pass covers every package that touches a parallel path, with
# -shuffle=on so test-order coupling can't hide behind a fixed schedule.
race:
	$(GO) test -race -shuffle=on ./internal/names ./internal/rank ./internal/sketch ./internal/cfmetrics ./internal/traffic ./internal/core ./internal/experiments ./internal/httpsim ./internal/obs ./internal/snapshot ./internal/world ./internal/dnssim ./internal/sweep ./internal/perfgate ./cmd/toplistsd

# faultcheck is the fault-injection determinism oracle: a fixed seed at a
# nonzero fault rate must render the full evaluation byte-identically
# across worker counts and across repeated runs.
faultcheck:
	$(GO) test -run=TestFaultDeterminism -count=1 .

# obscheck is the telemetry determinism oracle: instrumentation must never
# perturb study output (renders stay byte-identical), and the run report's
# deterministic subset (counters + gauges) must be byte-identical across
# worker counts.
obscheck:
	$(GO) test -run=TestObsDeterminism -count=1 .

# sketchcheck is the sketch-vs-exact oracle: sketch-mode rankings must track
# the exact oracle (Kendall tau >= 0.98, Jaccard@{100,1k} >= 0.99 over three
# seeds) and stay byte-identical across worker counts.
sketchcheck:
	$(GO) test -run='TestSketchOracle|TestSketchDeterminism' -count=1 .

# snapcheck is the checkpoint/restore oracle: a study checkpointed at day
# k in {1,7,27} and resumed at a different worker count must advance to
# day 28 and publish every list and the resume-stable report subset
# byte-identically to a straight 28-day run — exact and sketch mode, with
# deterministic fault injection on. The HTTP service-mode smoke (start,
# advance, checkpoint, restore, compare) rides in the toplistsd tests.
snapcheck:
	$(GO) test -run=TestSnapCheck -count=1 .
	$(GO) test -count=1 ./cmd/toplistsd ./internal/snapshot

# crashcheck is the kill-anywhere chaos oracle: the real toplistsd binary,
# auto-checkpointing on a fast ticker, is SIGKILLed at seed-keyed offsets
# (mid-day, between generations, and mid-checkpoint-write via the
# TOPLISTSD_CRASHPOINT hook), restarted through the recovery supervisor
# each time, and must finish the month byte-identical over HTTP to an
# uninterrupted run — for three seeds. A torn-on-disk generation must be
# rejected visibly and recovery must fall back a generation. Set
# CRASHCHECK_LOG=path to capture the kill schedule (CI uploads it).
crashcheck:
	$(GO) test -run=TestCrashCheck -count=1 -v .

# vantagecheck is the multi-vantage oracle: an explicit single-edge config
# (Vantages=1, Backends=1) must render byte-identically to the zero-value
# config and to the pre-refactor golden, and the full 3x3 vantage/backend
# grid must render byte-identically across worker counts {1,4,auto} in
# both exact and sketch modes.
vantagecheck:
	$(GO) test -run=TestVantageCheck -count=1 .

# Short fuzz smoke of the rank-bucketing, interner, fault-plan, and sketch
# targets (seeds + 10s each).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzScaledMagnitudes -fuzztime=10s ./internal/rank
	$(GO) test -run=^$$ -fuzz=FuzzBucketer -fuzztime=10s ./internal/rank
	$(GO) test -run=^$$ -fuzz=FuzzInternLookupRoundTrip -fuzztime=10s ./internal/names
	$(GO) test -run=^$$ -fuzz=FuzzFaultPlan -fuzztime=10s ./internal/faults
	$(GO) test -run=^$$ -fuzz=FuzzBucketIndex -fuzztime=10s ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzCountMin -fuzztime=10s ./internal/sketch
	$(GO) test -run=^$$ -fuzz=FuzzSpaceSaving -fuzztime=10s ./internal/sketch
	$(GO) test -run=^$$ -fuzz=FuzzSketchMerge -fuzztime=10s ./internal/sketch

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The interned-evaluation microbenchmarks: string path vs ID path for
# top-k set builds, rank lookups, and Jaccard (recorded in BENCH_rank.json).
benchrank:
	$(GO) test -run=^$$ -bench='BenchmarkRanking|BenchmarkJaccard' -benchmem ./internal/rank ./internal/stats

# One iteration of every benchmark, everywhere: cheap proof that the bench
# harness still compiles and runs (CI's bench smoke). The rank/stats set
# includes BenchmarkRankingTopSetIDs and BenchmarkJaccardIDs, keeping the
# interned fast paths exercised on every CI run.
benchsmoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# perfcheck is the enforced perf trajectory: run the pinned hot-path
# benchmark set (engine day, warm RenderAll, top-set build, Jaccard,
# sketch merge, snapshot encode) and compare against the committed
# BENCH_baseline.json, failing on any regression beyond 15% (plus
# $PERFGATE_SLACK, which CI sets to keep shared runners advisory).
# Comparisons are ratios to an interleaved machine-speed reference, so
# the committed baseline transfers across machines. Regenerate the
# baseline after a deliberate perf change with:
#   go run ./cmd/sweep -perfgate -update-baseline -rounds 7
perfcheck:
	$(GO) run ./cmd/sweep -perfgate -rounds 7

# sweepsmoke drives the grid runner end to end on a tiny 2x2 grid
# (2 seeds x exact/sketch), then re-runs it to prove per-cell resume:
# the second pass must skip every completed cell. Artifacts (per-cell
# reports + merged sweep.csv) land in sweep-smoke/ for CI to upload.
sweepsmoke:
	rm -rf sweep-smoke
	$(GO) run ./cmd/sweep -seeds 11,12 -sites 600 -clients 150 -days 2 \
		-sketch both -experiments tab2,fig2 -par 4 -out sweep-smoke
	$(GO) run ./cmd/sweep -seeds 11,12 -sites 600 -clients 150 -days 2 \
		-sketch both -experiments tab2,fig2 -par 4 -out sweep-smoke -v

# check is the CI gate: everything must pass before merging.
check: build vet test race faultcheck obscheck sketchcheck snapcheck vantagecheck crashcheck perfcheck sweepsmoke
