GO ?= go

.PHONY: build test vet race fuzz bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The simulation engine runs client shards concurrently, the experiments
# evaluate on a shared artifact store, and the name interner serves
# lock-free concurrent readers; the race pass covers every package that
# touches a parallel path.
race:
	$(GO) test -race ./internal/names ./internal/rank ./internal/traffic ./internal/core ./internal/experiments

# Short fuzz smoke of the rank-bucketing and interner targets (seeds + 10s each).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzScaledMagnitudes -fuzztime=10s ./internal/rank
	$(GO) test -run=^$$ -fuzz=FuzzBucketer -fuzztime=10s ./internal/rank
	$(GO) test -run=^$$ -fuzz=FuzzInternLookupRoundTrip -fuzztime=10s ./internal/names

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The interned-evaluation microbenchmarks: string path vs ID path for
# top-k set builds, rank lookups, and Jaccard (recorded in BENCH_rank.json).
benchrank:
	$(GO) test -run=^$$ -bench='BenchmarkRanking|BenchmarkJaccard' -benchmem ./internal/rank ./internal/stats

# One iteration of every benchmark, everywhere: cheap proof that the bench
# harness still compiles and runs (CI's bench smoke). The rank/stats set
# includes BenchmarkRankingTopSetIDs and BenchmarkJaccardIDs, keeping the
# interned fast paths exercised on every CI run.
benchsmoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# check is the CI gate: everything must pass before merging.
check: build vet test race
