GO ?= go

.PHONY: build test vet race fuzz bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The simulation engine runs client shards concurrently and the experiments
# evaluate on a shared artifact store; the race pass covers every package
# that touches a parallel path.
race:
	$(GO) test -race ./internal/traffic ./internal/core ./internal/experiments

# Short fuzz smoke of the rank-bucketing targets (seeds + 10s each).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzScaledMagnitudes -fuzztime=10s ./internal/rank
	$(GO) test -run=^$$ -fuzz=FuzzBucketer -fuzztime=10s ./internal/rank

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of every benchmark, everywhere: cheap proof that the bench
# harness still compiles and runs (CI's bench smoke).
benchsmoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# check is the CI gate: everything must pass before merging.
check: build vet test race
