package toplists

import (
	"strings"
	"testing"

	"toplists/internal/obs"
)

// TestObsDeterminism is the oracle behind `make obscheck`: telemetry must
// never perturb study output, and every count-valued metric must be a pure
// function of (seed, config). Concretely, across worker counts 4, 1, and
// auto (0):
//
//  1. the full rendered evaluation stays byte-identical (instrumentation
//     cannot leak into results), and
//  2. the run report's deterministic subset — schema, counters, gauges —
//     is byte-identical (scheduling cannot leak into the counts).
//
// Timing-valued metrics (durations, phases, queue waits) and the
// explicitly Volatile counters are excluded from the subset by
// Report.Deterministic, which is exactly what makes this test possible.
//
// The same must hold with a Tracer attached: tracing is observation, not
// behavior, so a traced run at any worker count renders byte-identically
// to the untraced workers=4 baseline and carries the same deterministic
// subset — while actually recording events (an empty trace would make
// the "tracing is free" claim vacuous).
func TestObsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full studies")
	}
	cfg := Config{Seed: 11, Sites: 900, Clients: 250, Days: 3, FaultRate: 0.05}
	type runOut struct {
		render string
		det    string
	}
	run := func(workers int, traced bool) runOut {
		c := cfg
		c.Workers = workers
		var tracer *obs.Tracer
		if traced {
			reg := obs.NewRegistry()
			tracer = obs.NewTracer(0)
			reg.SetTracer(tracer)
			c.Obs = reg
		}
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var b strings.Builder
		if err := s.RenderAll(&b); err != nil {
			t.Fatal(err)
		}
		if traced && tracer.Len() == 0 {
			t.Errorf("workers=%d: attached tracer recorded no events", workers)
		}
		det, err := s.Metrics().Snapshot().Deterministic()
		if err != nil {
			t.Fatal(err)
		}
		return runOut{render: b.String(), det: string(det)}
	}

	base := run(4, false)
	// The subset must actually carry the instrumented counts — an
	// accidentally empty report would pass the comparison below vacuously.
	for _, key := range []string{
		"engine.events.pageload", "artifacts.norm.misses",
		"probe.attempts", "faults.injected.", "eval.completed",
		"names.interned",
	} {
		if !strings.Contains(base.det, key) {
			t.Errorf("deterministic report subset is missing %q:\n%s", key, base.det)
		}
	}

	for _, variant := range []struct {
		workers int
		traced  bool
	}{
		{1, false}, {0, false},
		{4, true}, {1, true}, {0, true},
	} {
		got := run(variant.workers, variant.traced)
		if got.render != base.render {
			t.Errorf("rendered output differs between workers=4 and workers=%d traced=%v (lens %d vs %d)",
				variant.workers, variant.traced, len(base.render), len(got.render))
		}
		if got.det != base.det {
			t.Errorf("deterministic report subset differs between workers=4 and workers=%d traced=%v:\n%s",
				variant.workers, variant.traced, firstDiffLine(base.det, got.det))
		}
	}
}

// firstDiffLine locates the first line where two reports diverge, for a
// readable failure message.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + " != " + bl[i]
		}
	}
	return "one report is a prefix of the other"
}
