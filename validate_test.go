package toplists

import (
	"strings"
	"testing"

	"toplists/internal/world"
)

// TestConfigValidation is the table-driven contract of the facade's config
// validation: out-of-range values fail Run (and the fleet runners) with an
// explicit error naming the field, instead of being silently clamped.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // empty = accepted
	}{
		{"zero config", Config{}, ""},
		{"all fields at max", Config{Vantages: world.MaxVantages, Backends: world.NumBackends, FaultRate: 1}, ""},
		{"negative sites", Config{Sites: -1}, "sites -1 negative"},
		{"negative clients", Config{Clients: -5}, "clients -5 negative"},
		{"negative days", Config{Days: -2}, "days -2 negative"},
		{"negative workers", Config{Workers: -1}, "workers -1 negative"},
		{"negative crux threshold", Config{CruxMinVisitors: -10}, "crux min visitors -10 negative"},
		{"fault rate above one", Config{FaultRate: 1.5}, "fault rate 1.5 outside [0, 1]"},
		{"negative fault rate", Config{FaultRate: -0.5}, "fault rate -0.5 outside [0, 1]"},
		{"negative vantages", Config{Vantages: -1}, "vantages -1 outside"},
		{"too many vantages", Config{Vantages: world.MaxVantages + 1}, "vantages 13 outside"},
		{"negative backends", Config{Backends: -1}, "backends -1 outside"},
		{"too many backends", Config{Backends: world.NumBackends + 1}, "backends 4 outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want it to contain %q", err, tc.wantErr)
			}
			// Every entry point must surface the same explicit error.
			if _, runErr := Run(tc.cfg); runErr == nil || runErr.Error() != err.Error() {
				t.Fatalf("Run() = %v, want %v", runErr, err)
			}
			if _, abErr := RunAblations(tc.cfg); abErr == nil || abErr.Error() != err.Error() {
				t.Fatalf("RunAblations() = %v, want %v", abErr, err)
			}
		})
	}
}

// TestRunMultiVantage pins the facade plumbing: a multi-vantage, multi-
// backend study runs end to end and serves the vantages extension.
func TestRunMultiVantage(t *testing.T) {
	s, err := Run(Config{Seed: 5, Sites: 400, Clients: 80, Days: 2, Vantages: 2, Backends: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Experiment("vantages")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 vantages x 2 backends", "us-east", "edgecast"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("vantages render missing %q:\n%s", want, b.String())
		}
	}
}
