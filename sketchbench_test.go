package toplists

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"toplists/internal/core"
	"toplists/internal/obs"
	"toplists/internal/sketch"
)

// The sketch-scale harness behind BENCH_sketch.json. The point of the
// sketch layer is that per-day aggregation state stops scaling with event
// volume: a month of traffic from a million clients aggregates through
// fixed-size summaries merged at each day barrier. The env-gated test below
// runs that scale (hours of wall clock on one core) and reports events/sec
// plus the process peak RSS; BenchmarkSketchMonth is the small-default
// always-on variant CI's bench smoke compiles and runs.

// vmHWMBytes reads the process high-water resident set from /proc.
func vmHWMBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// runSketchScale builds and runs one sketch-mode study and reports the
// engine event totals, rate, and memory numbers.
func runSketchScale(tb testing.TB, sites, clients, days int) {
	reg := obs.NewRegistry()
	start := time.Now()
	s := core.NewStudy(core.Config{
		Seed:       2022,
		NumSites:   sites,
		NumClients: clients,
		Days:       days,
		Sketch:     sketch.Config{Enabled: true},
		Obs:        reg,
	})
	s.Run()
	elapsed := time.Since(start)

	snap := reg.Snapshot()
	var events int64
	for _, key := range []string{
		"engine.events.pageload", "engine.events.dnsquery", "engine.events.botrequests",
	} {
		events += snap.Counters[key]
	}
	sketchBytes := int64(0)
	for key, v := range snap.Gauges {
		if strings.HasPrefix(key, "sketch.") && strings.HasSuffix(key, "mem_peak_bytes") {
			sketchBytes += v
		}
	}
	tb.Logf("sketch scale: sites=%d clients=%d days=%d", sites, clients, days)
	tb.Logf("events=%d elapsed=%v events_per_sec=%.0f", events, elapsed.Round(time.Millisecond),
		float64(events)/elapsed.Seconds())
	tb.Logf("sketch_mem_peak_bytes=%d vm_hwm_bytes=%d", sketchBytes, vmHWMBytes())
	if b, ok := tb.(*testing.B); ok {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
		b.ReportMetric(float64(sketchBytes), "sketchB")
	}
}

// TestSketchScale is the BENCH_sketch.json producer: set
// TOPLISTS_SKETCH_BENCH=1 (and optionally TOPLISTS_SKETCH_SITES / _CLIENTS /
// _DAYS) to run the million-client-scale measurement. Skipped otherwise —
// it is a measurement harness, not a correctness gate.
func TestSketchScale(t *testing.T) {
	if os.Getenv("TOPLISTS_SKETCH_BENCH") == "" {
		t.Skip("set TOPLISTS_SKETCH_BENCH=1 to run the sketch scale measurement")
	}
	runSketchScale(t,
		envInt("TOPLISTS_SKETCH_SITES", 100_000),
		envInt("TOPLISTS_SKETCH_CLIENTS", 1_000_000),
		envInt("TOPLISTS_SKETCH_DAYS", 28))
}

// BenchmarkSketchMonth is the small-default variant: one sketch-mode month
// at a laptop scale, so the harness is compiled and exercised on every
// bench smoke.
func BenchmarkSketchMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSketchScale(b, 5000, 1000, 7)
	}
}
