package toplists

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestFaultDeterminism is the determinism oracle behind `make faultcheck`:
// with a nonzero fault rate and a fixed seed, the full rendered evaluation
// must be byte-identical across worker counts and across repeated runs.
// Fault decisions are pure functions of (seed, host, attempt, day) — never
// wall-clock time, goroutine scheduling, or map order — so injected
// weather cannot introduce nondeterminism anywhere in the pipeline.
func TestFaultDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full studies")
	}
	cfg := Config{Seed: 11, Sites: 900, Clients: 250, Days: 3, FaultRate: 0.05}
	render := func(workers int) string {
		c := cfg
		c.Workers = workers
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var b strings.Builder
		if err := s.RenderAll(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := render(4)
	if serial := render(1); serial != base {
		t.Errorf("faulted render differs between workers=1 and workers=4 (lens %d vs %d)",
			len(serial), len(base))
	}
	if again := render(4); again != base {
		t.Error("faulted render differs between two identical workers=4 runs")
	}
}

// TestRunContextPreCanceled: a context canceled before Run starts fails
// immediately with the context's error.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Config{Seed: 3, Sites: 400, Clients: 100, Days: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRunNoLeak: canceling mid-simulation returns the
// context's error promptly and leaves no goroutines behind.
func TestRunContextCancelMidRunNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		// Big enough that cancellation lands mid-simulation on any machine.
		_, err := RunContext(ctx, Config{Seed: 3, Sites: 4000, Clients: 3000, Days: 28, Workers: 4})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext error %v, want context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("RunContext did not return within 15s of cancellation")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancel settle window", before, runtime.NumGoroutine())
}

// TestRunExperimentsContextCanceled: a canceled context surfaces in every
// not-yet-finished outcome instead of hanging the pool.
func TestRunExperimentsContextCanceled(t *testing.T) {
	s := facade(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := s.RunExperimentsContext(ctx, []string{"fig1", "tab2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range out {
		if !errors.Is(oc.Err, context.Canceled) {
			t.Errorf("%s: err %v, want context.Canceled", oc.ID, oc.Err)
		}
	}
}
