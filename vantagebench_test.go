package toplists

import (
	"os"
	"testing"
	"time"

	"toplists/internal/core"
	"toplists/internal/obs"
	"toplists/internal/world"
)

// The vantage-grid scale harness behind BENCH_vantage.json. Widening the
// measurement grid from the single transparent edge to 3 vantages x 3
// backends multiplies the number of edge pipelines fed per event by up to
// nine; the cost the refactor actually adds is one visibility hash plus a
// per-backend site mask per (event, extra pipeline). The env-gated test
// below measures events/sec and process peak RSS at a chosen grid so the
// baseline (1x1) and the full grid can be compared across two process
// runs; BenchmarkVantageGrid is the small-default always-on variant CI's
// bench smoke compiles and runs.

// runVantageScale builds and runs one exact-mode study on the given
// vantage/backend grid and reports event totals, rate, and peak RSS.
func runVantageScale(tb testing.TB, sites, clients, days, vantages, backends int) {
	reg := obs.NewRegistry()
	start := time.Now()
	s := core.NewStudy(core.Config{
		Seed:       2022,
		NumSites:   sites,
		NumClients: clients,
		Days:       days,
		Vantages:   vantages,
		Backends:   backends,
		Obs:        reg,
	})
	s.Run()
	elapsed := time.Since(start)

	snap := reg.Snapshot()
	var events int64
	for _, key := range []string{
		"engine.events.pageload", "engine.events.dnsquery", "engine.events.botrequests",
	} {
		events += snap.Counters[key]
	}
	edges := len(s.Vantages()) * len(s.Backends())
	tb.Logf("vantage scale: sites=%d clients=%d days=%d grid=%dx%d (%d edges)",
		sites, clients, days, vantages, backends, edges)
	tb.Logf("events=%d elapsed=%v events_per_sec=%.0f vm_hwm_bytes=%d",
		events, elapsed.Round(time.Millisecond), float64(events)/elapsed.Seconds(), vmHWMBytes())
	if b, ok := tb.(*testing.B); ok {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
	}
}

// TestVantageScale is the BENCH_vantage.json producer: set
// TOPLISTS_VANTAGE_BENCH=1 and choose the grid with TOPLISTS_VANTAGE_VANTAGES
// / _BACKENDS (plus the usual _SITES / _CLIENTS / _DAYS). Run it once at
// 1/1 and once at 3/3 in separate processes — VmHWM is a process-wide
// high-water mark, so the two grids must not share an address space.
// Skipped without the env var: it is a measurement harness, not a gate.
func TestVantageScale(t *testing.T) {
	if os.Getenv("TOPLISTS_VANTAGE_BENCH") == "" {
		t.Skip("set TOPLISTS_VANTAGE_BENCH=1 to run the vantage grid scale measurement")
	}
	vantages := envInt("TOPLISTS_VANTAGE_VANTAGES", 3)
	backends := envInt("TOPLISTS_VANTAGE_BACKENDS", 3)
	if vantages < 1 || vantages > world.MaxVantages || backends < 1 || backends > world.NumBackends {
		t.Fatalf("grid %dx%d outside [1,%d]x[1,%d]", vantages, backends, world.MaxVantages, world.NumBackends)
	}
	runVantageScale(t,
		envInt("TOPLISTS_VANTAGE_SITES", 20_000),
		envInt("TOPLISTS_VANTAGE_CLIENTS", 30_000),
		envInt("TOPLISTS_VANTAGE_DAYS", 7),
		vantages, backends)
}

// BenchmarkVantageGrid is the small-default variant: a 3x3 grid at laptop
// scale, keeping the multi-edge fan-out exercised on every bench smoke.
func BenchmarkVantageGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runVantageScale(b, 2000, 500, 3, 3, 3)
	}
}
