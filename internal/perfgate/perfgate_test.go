package perfgate

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func baselineOf(meds map[string]int64) Baseline {
	b := Baseline{Schema: Schema, Benchmarks: map[string]Result{}}
	for name, ns := range meds {
		b.Benchmarks[name] = Result{Name: name, MedianNS: ns, Rounds: 5, Iters: 100}
	}
	return b
}

func resultsOf(meds map[string]int64) map[string]Result {
	out := map[string]Result{}
	for name, ns := range meds {
		out[name] = Result{Name: name, MedianNS: ns, Rounds: 5, Iters: 100}
	}
	return out
}

// TestCompareSyntheticRegression injects a 20% slowdown on one
// benchmark: the gate must fail, name the offender, and leave the
// within-threshold benchmarks alone. This is the acceptance-criterion
// proof that the gate can actually fire.
func TestCompareSyntheticRegression(t *testing.T) {
	base := baselineOf(map[string]int64{"a": 1000, "b": 2000, "c": 500})
	cur := resultsOf(map[string]int64{"a": 1200, "b": 2100, "c": 500}) // a: +20%, b: +5%
	deltas, ok := Compare(base, cur, DefaultThreshold)
	if ok {
		t.Fatal("gate passed a 20% regression")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["a"].Status != "regressed" {
		t.Errorf("a: status %q, want regressed", byName["a"].Status)
	}
	if byName["b"].Status != "ok" || byName["c"].Status != "ok" {
		t.Errorf("b/c flagged: %q %q", byName["b"].Status, byName["c"].Status)
	}
	if got := byName["a"].Frac; got < 0.19 || got > 0.21 {
		t.Errorf("a: delta %.3f, want ~0.20", got)
	}
}

// TestCompareImprovementAndBoundary: a big speedup passes (flagged
// "improved"), and a slowdown exactly at the threshold passes — the
// gate fires strictly beyond it.
func TestCompareImprovementAndBoundary(t *testing.T) {
	base := baselineOf(map[string]int64{"fast": 1000, "edge": 1000})
	cur := resultsOf(map[string]int64{"fast": 500, "edge": 1150})
	deltas, ok := Compare(base, cur, DefaultThreshold)
	if !ok {
		t.Fatal("gate failed on improvement + at-threshold slowdown")
	}
	for _, d := range deltas {
		switch d.Name {
		case "fast":
			if d.Status != "improved" {
				t.Errorf("fast: status %q, want improved", d.Status)
			}
		case "edge":
			if d.Status != "ok" {
				t.Errorf("edge: status %q, want ok (exactly at threshold)", d.Status)
			}
		}
	}
}

// TestCompareMissingAndNew: dropping a baselined benchmark fails the
// gate; an unbaselined newcomer only warns.
func TestCompareMissingAndNew(t *testing.T) {
	base := baselineOf(map[string]int64{"old": 1000})
	cur := resultsOf(map[string]int64{"new": 1000})
	deltas, ok := Compare(base, cur, DefaultThreshold)
	if ok {
		t.Fatal("gate passed with a missing benchmark")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["old"].Status != "missing" {
		t.Errorf("old: status %q, want missing", byName["old"].Status)
	}
	if byName["new"].Status != "new" {
		t.Errorf("new: status %q, want new", byName["new"].Status)
	}
	if _, ok := Compare(baselineOf(nil), cur, DefaultThreshold); !ok {
		t.Error("empty baseline must pass (everything is new)")
	}
}

// TestCompareRefRatioGating: when both sides carry reference ratios,
// the gate judges ratios, so a uniformly 2x-slower machine passes while
// a genuine +30% relative regression still fails. The reference row
// itself never gates.
func TestCompareRefRatioGating(t *testing.T) {
	base := Baseline{Schema: Schema, Benchmarks: map[string]Result{
		RefBenchmark: {Name: RefBenchmark, MedianNS: 100, RefRatio: 1},
		"a":          {Name: "a", MedianNS: 1000, RefRatio: 10},
		"b":          {Name: "b", MedianNS: 1000, RefRatio: 10},
	}}
	// Machine 2x slower (ref 100->200, raw medians more than doubled):
	// a's cost relative to the reference moved +5% (fine), b's +30%.
	cur := map[string]Result{
		RefBenchmark: {Name: RefBenchmark, MedianNS: 200, RefRatio: 1},
		"a":          {Name: "a", MedianNS: 2300, RefRatio: 10.5},
		"b":          {Name: "b", MedianNS: 2600, RefRatio: 13},
	}
	deltas, ok := Compare(base, cur, DefaultThreshold)
	if ok {
		t.Fatal("gate passed a +30% ratio regression")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["a"].Status != "ok" || byName["a"].Via != "ratio" {
		t.Errorf("a: status %q via %q, want ok via ratio (raw +130%% must not gate)",
			byName["a"].Status, byName["a"].Via)
	}
	if byName["b"].Status != "regressed" {
		t.Errorf("b: status %q, want regressed despite machine drift", byName["b"].Status)
	}
	if byName[RefBenchmark].Status != "ref" {
		t.Errorf("ref: status %q, want ref", byName[RefBenchmark].Status)
	}
}

// TestMeasureInterleavesRef: a list carrying RefBenchmark yields
// RefRatio on every result, and the ratio reflects relative cost.
func TestMeasureInterleavesRef(t *testing.T) {
	spin := func(units int) func(int) {
		return func(n int) {
			x := uint64(1)
			for i := 0; i < n*units; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			sinkU64 = x
		}
	}
	res := Measure([]Benchmark{
		{Name: RefBenchmark, Setup: func() func(int) { return spin(1000) }},
		{Name: "heavy", Setup: func() func(int) { return spin(4000) }},
	}, MeasureOptions{Rounds: 3, MinRoundTime: 2 * time.Millisecond})
	if res[RefBenchmark].RefRatio != 1 {
		t.Errorf("ref ratio = %v, want 1", res[RefBenchmark].RefRatio)
	}
	got := res["heavy"].RefRatio
	if got < 2 || got > 8 {
		t.Errorf("heavy/ref ratio = %.2f, want ~4 (a 4x workload)", got)
	}
}

var sinkU64 uint64

// TestMeasureCalibrates: a fast op gets a large iteration count and a
// sane positive median; the measured op really ran.
func TestMeasureCalibrates(t *testing.T) {
	var ran int
	res := Measure([]Benchmark{{
		Name: "spin",
		Setup: func() func(int) {
			sink := 0
			return func(n int) {
				for i := 0; i < n; i++ {
					for j := 0; j < 100; j++ {
						sink += j
					}
					ran++
				}
			}
		},
	}}, MeasureOptions{Rounds: 3, MinRoundTime: 2 * time.Millisecond})
	r, ok := res["spin"]
	if !ok {
		t.Fatal("no result for spin")
	}
	if r.MedianNS <= 0 {
		t.Errorf("median %d, want > 0", r.MedianNS)
	}
	if r.Iters < 2 {
		t.Errorf("iters %d: calibration never scaled a ~100ns op", r.Iters)
	}
	if r.Rounds != 3 || ran < 3*r.Iters {
		t.Errorf("rounds %d ran %d, want 3 rounds x %d iters", r.Rounds, ran, r.Iters)
	}
}

// TestBaselineRoundTripAndSchema: WriteJSON→LoadBaseline round-trips,
// and a wrong-schema file is rejected.
func TestBaselineRoundTripAndSchema(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/base.json"
	want := baselineOf(map[string]int64{"x": 123})
	f := &bytes.Buffer{}
	if err := want.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if got.Benchmarks["x"].MedianNS != 123 {
		t.Errorf("round-trip median = %d", got.Benchmarks["x"].MedianNS)
	}

	bad := path + ".bad"
	if err := os.WriteFile(bad, []byte(`{"schema":"nope/v9","benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("LoadBaseline accepted a wrong schema")
	}
}

// TestDeltaTableNamesOffender: the human table carries the regressed
// benchmark's name and status so CI logs are actionable.
func TestDeltaTableNamesOffender(t *testing.T) {
	base := baselineOf(map[string]int64{"hot": 1000})
	cur := resultsOf(map[string]int64{"hot": 1300})
	deltas, ok := Compare(base, cur, DefaultThreshold)
	if ok {
		t.Fatal("30% slowdown passed")
	}
	var buf bytes.Buffer
	WriteDeltaTable(&buf, deltas, DefaultThreshold)
	out := buf.String()
	if !strings.Contains(out, "hot") || !strings.Contains(out, "regressed") {
		t.Errorf("table missing offender:\n%s", out)
	}
	if !strings.Contains(out, "+30.0%") {
		t.Errorf("table missing delta:\n%s", out)
	}
}

// TestSlackParsing: PERFGATE_SLACK widens the threshold; garbage and
// negatives are ignored.
func TestSlackParsing(t *testing.T) {
	t.Setenv("PERFGATE_SLACK", "0.25")
	if got := Slack(); got != 0.25 {
		t.Errorf("Slack() = %v, want 0.25", got)
	}
	t.Setenv("PERFGATE_SLACK", "banana")
	if got := Slack(); got != 0 {
		t.Errorf("Slack(banana) = %v, want 0", got)
	}
	t.Setenv("PERFGATE_SLACK", "-1")
	if got := Slack(); got != 0 {
		t.Errorf("Slack(-1) = %v, want 0", got)
	}

	// A +20% slowdown passes once slack covers it — the CI advisory mode.
	base := baselineOf(map[string]int64{"a": 1000})
	cur := resultsOf(map[string]int64{"a": 1200})
	t.Setenv("PERFGATE_SLACK", "0.10")
	if _, ok := Compare(base, cur, DefaultThreshold+Slack()); !ok {
		t.Error("slacked gate still failed a covered regression")
	}
}

// TestPinnedBenchmarksRun: every pinned benchmark's Setup and run(1)
// complete — the same smoke CI gets before trusting the gate. Kept tiny:
// correctness of the measured code is the owning packages' business.
func TestPinnedBenchmarksRun(t *testing.T) {
	if testing.Short() {
		t.Skip("pinned benchmark smoke is not short")
	}
	for _, b := range Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			run := b.Setup()
			run(1)
		})
	}
}
