// Package perfgate is the repo's enforced performance trajectory: a tiny
// benchmark harness plus a comparator that gates CI on the committed
// baseline (BENCH_baseline.json at the repo root).
//
// The harness deliberately does not depend on `go test -bench`: the gate
// needs machine-readable medians, a pinned benchmark set, and an exit
// code, and it runs from cmd/sweep so the whole perf surface ships in
// one binary. Each Benchmark is a Setup function returning a run(n)
// closure; Measure calibrates n until a round takes MinRoundTime, then
// times Rounds rounds and keeps the median of the fastest half — a
// median (not a mean) because CI machines hiccup, and over the fastest
// half because scheduler noise is strictly additive: one preempted
// round must not fail an honest build.
//
// Compare applies an asymmetric rule: a current median more than
// threshold above baseline is a regression (gate fails), a median more
// than threshold below is an improvement (gate passes, but the table
// says so, inviting a baseline refresh); a benchmark present in the
// baseline but missing from the run fails the gate (a silently deleted
// benchmark is how perf work rots), while a new benchmark merely warns
// until it is baselined.
package perfgate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"time"
)

// Schema identifies the baseline file format.
const Schema = "toplists-bench-baseline/v1"

// DefaultThreshold is the allowed fractional slowdown before the gate
// fails (0.15 = 15%). PERFGATE_SLACK adds to it (see Slack).
const DefaultThreshold = 0.15

// Result is one benchmark's measured outcome. RefRatio is the median of
// per-round (benchmark / reference) cost ratios when the run carried the
// reference benchmark; it is the drift-immune number the gate compares.
type Result struct {
	Name     string  `json:"name"`
	MedianNS int64   `json:"median_ns"`
	Rounds   int     `json:"rounds"`
	Iters    int     `json:"iters"`
	RefRatio float64 `json:"ref_ratio,omitempty"`
}

// Baseline is the committed reference file.
type Baseline struct {
	Schema     string            `json:"schema"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// LoadBaseline reads and schema-checks a baseline file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("perfgate: %s: %w", path, err)
	}
	if b.Schema != Schema {
		return b, fmt.Errorf("perfgate: %s: schema %q, want %q", path, b.Schema, Schema)
	}
	return b, nil
}

// WriteJSON writes the baseline with stable key order (encoding/json
// sorts map keys), so regenerating it produces minimal diffs.
func (b Baseline) WriteJSON(w io.Writer) error {
	b.Schema = Schema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Benchmark is one pinned hot-path measurement. Setup builds all state
// outside the timer and returns the timed closure; run(n) must execute
// the operation exactly n times. A non-zero Iters pins n instead of
// calibrating it — used when per-op cost depends on n (amortized setup
// inside run), so baseline and gate always compare at the same n.
type Benchmark struct {
	Name  string
	Setup func() (run func(n int))
	Iters int
}

// MeasureOptions tunes the harness; zero values pick CI-friendly
// defaults.
type MeasureOptions struct {
	Rounds       int           // timing rounds per benchmark (default 5)
	MinRoundTime time.Duration // calibrate iters until a round takes this long (default 50ms)
	MaxIters     int           // calibration ceiling (default 1<<20)
	Logf         func(format string, args ...any)
}

func (o MeasureOptions) withDefaults() MeasureOptions {
	if o.Rounds <= 0 {
		o.Rounds = 5
	}
	if o.MinRoundTime <= 0 {
		o.MinRoundTime = 50 * time.Millisecond
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 1 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// calibrate doubles n until one round of run crosses minRound.
func calibrate(run func(int), minRound time.Duration, maxIters int) int {
	n := 1
	for {
		start := time.Now()
		run(n)
		roundDur := time.Since(start)
		if roundDur >= minRound || n >= maxIters {
			return n
		}
		// Jump toward the target round time, at least doubling, so
		// sub-microsecond ops converge in a few rounds.
		next := n * 2
		if roundDur > 0 {
			if want := int(int64(n) * int64(minRound) / int64(roundDur)); want > next {
				next = want
			}
		}
		if next > maxIters {
			next = maxIters
		}
		n = next
	}
}

// timeRound times one round of n iterations and returns per-op ns.
func timeRound(run func(int), n int) int64 {
	start := time.Now()
	run(n)
	return int64(time.Since(start)) / int64(n)
}

// fastestHalfMedian is the gate's point estimator: timing noise on
// shared runners is one-sided (preemption and CPU steal only ever add
// time), so the slow tail carries no signal — take the median of the
// fastest half of rounds.
func fastestHalfMedian(samples []int64) int64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	keep := samples[:(len(samples)+1)/2]
	med := keep[len(keep)/2]
	if len(keep)%2 == 0 {
		med = (keep[len(keep)/2-1] + keep[len(keep)/2]) / 2
	}
	return med
}

func medianFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	if len(v)%2 == 0 {
		return (v[len(v)/2-1] + v[len(v)/2]) / 2
	}
	return v[len(v)/2]
}

// Measure runs every benchmark and returns per-op medians keyed by name.
//
// When the list carries RefBenchmark, every other benchmark's timed
// rounds are interleaved with a reference round, and the result records
// the median per-round cost ratio to the reference. Machine-speed drift
// between two Measure invocations (baseline seeding vs. the gate,
// minutes or months apart) shifts both sides of each adjacent pair
// equally, so the ratio survives shared-runner turbulence that would
// sink any absolute comparison.
func Measure(benchs []Benchmark, opt MeasureOptions) map[string]Result {
	opt = opt.withDefaults()
	out := make(map[string]Result, len(benchs))

	// Timed rounds run with the collector off and an explicit collection
	// between rounds: when a round can trigger GC, the measurement
	// becomes bimodal on the heap target previous benchmarks happened to
	// leave behind. Rounds are short and bounded, so the paused heap
	// stays small.
	var refRun func(int)
	refN := 0
	for _, b := range benchs {
		if b.Name != RefBenchmark {
			continue
		}
		refRun = b.Setup()
		refRun(1)
		prevGC := debug.SetGCPercent(-1)
		refN = calibrate(refRun, opt.MinRoundTime/4, opt.MaxIters)
		samples := make([]int64, 0, opt.Rounds)
		for r := 0; r < opt.Rounds; r++ {
			runtime.GC()
			samples = append(samples, timeRound(refRun, refN))
		}
		debug.SetGCPercent(prevGC)
		runtime.GC()
		med := fastestHalfMedian(samples)
		out[b.Name] = Result{Name: b.Name, MedianNS: med, Rounds: opt.Rounds, Iters: refN, RefRatio: 1}
		opt.Logf("perfgate: %-18s %12s/op  (n=%d x %d rounds, reference)",
			b.Name, time.Duration(med), refN, opt.Rounds)
		break
	}

	for _, b := range benchs {
		if b.Name == RefBenchmark {
			continue
		}
		run := b.Setup()
		run(1) // warm: page in code and memoized state outside the timer

		prevGC := debug.SetGCPercent(-1)
		// Pick n: a pinned Iters gets one untimed warm round at full n;
		// otherwise calibrate until a round crosses MinRoundTime.
		n := b.Iters
		if n > 0 {
			run(n)
		} else {
			n = calibrate(run, opt.MinRoundTime, opt.MaxIters)
		}

		samples := make([]int64, 0, opt.Rounds)
		ratios := make([]float64, 0, opt.Rounds)
		for r := 0; r < opt.Rounds; r++ {
			runtime.GC()
			var refPer int64
			if refRun != nil {
				refPer = timeRound(refRun, refN)
			}
			per := timeRound(run, n)
			samples = append(samples, per)
			if refPer > 0 {
				ratios = append(ratios, float64(per)/float64(refPer))
			}
		}
		debug.SetGCPercent(prevGC)
		runtime.GC()

		med := fastestHalfMedian(samples)
		out[b.Name] = Result{
			Name: b.Name, MedianNS: med, Rounds: opt.Rounds, Iters: n,
			RefRatio: medianFloat(ratios),
		}
		opt.Logf("perfgate: %-18s %12s/op  ratio %.2f  (n=%d x %d rounds)",
			b.Name, time.Duration(med), out[b.Name].RefRatio, n, opt.Rounds)
	}
	return out
}

// RefBenchmark names the machine-speed reference benchmark that makes
// the committed baseline transferable across machine moods: Measure
// interleaves it with every other benchmark's rounds and records cost
// ratios (see Result.RefRatio), and Compare judges ratios rather than
// raw nanoseconds whenever both sides carry them. The reference itself
// never gates. Its workload (allocate + sort, see bench.go) mirrors the
// pinned set's mix of allocator, cache, and branch traffic — shared
// runner slowdowns come from the memory subsystem as much as the cores,
// so a pure-ALU spin would cancel only part of the drift.
const RefBenchmark = "ref.sort"

// Delta is one row of the comparison table.
type Delta struct {
	Name   string  `json:"name"`
	BaseNS int64   `json:"base_ns"`
	CurNS  int64   `json:"cur_ns"`
	Frac   float64 `json:"delta"`         // fractional change; via says of what
	Via    string  `json:"via,omitempty"` // "ratio" (drift-immune) or "median"
	Status string  `json:"status"`        // ok | regressed | improved | new | missing | ref
}

// Compare evaluates the current run against the baseline. ok is false
// iff any benchmark regressed beyond threshold or went missing. Each
// delta is computed from reference ratios when both sides have them
// (machine drift cancels) and from raw medians otherwise. Rows come
// back name-sorted so the table is stable.
func Compare(base Baseline, cur map[string]Result, threshold float64) (deltas []Delta, ok bool) {
	ok = true
	names := make(map[string]bool, len(base.Benchmarks)+len(cur))
	for name := range base.Benchmarks {
		names[name] = true
	}
	for name := range cur {
		names[name] = true
	}
	for name := range names {
		b, inBase := base.Benchmarks[name]
		c, inCur := cur[name]
		d := Delta{Name: name, BaseNS: b.MedianNS, CurNS: c.MedianNS}
		switch {
		case name == RefBenchmark:
			d.Status = "ref"
			if inBase && inCur && b.MedianNS > 0 {
				d.Frac = float64(c.MedianNS-b.MedianNS) / float64(b.MedianNS)
			}
		case !inCur:
			d.Status = "missing"
			ok = false
		case !inBase:
			d.Status = "new"
		default:
			if b.RefRatio > 0 && c.RefRatio > 0 {
				d.Via = "ratio"
				d.Frac = (c.RefRatio - b.RefRatio) / b.RefRatio
			} else {
				d.Via = "median"
				d.Frac = float64(c.MedianNS-b.MedianNS) / float64(b.MedianNS)
			}
			switch {
			case d.Frac > threshold:
				d.Status = "regressed"
				ok = false
			case d.Frac < -threshold:
				d.Status = "improved"
			default:
				d.Status = "ok"
			}
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, ok
}

// WriteDeltaTable renders the per-benchmark comparison for humans; CI
// logs show exactly which benchmark moved and by how much.
func WriteDeltaTable(w io.Writer, deltas []Delta, threshold float64) {
	note := ""
	for _, d := range deltas {
		if d.Status == "ref" && d.BaseNS > 0 && d.CurNS > 0 {
			note = fmt.Sprintf(", machine x%.2f vs baseline; deltas are %s-relative ratios",
				float64(d.CurNS)/float64(d.BaseNS), d.Name)
		}
	}
	fmt.Fprintf(w, "perf gate (threshold %+.0f%%%s)\n", threshold*100, note)
	fmt.Fprintf(w, "  %-20s %14s %14s %9s  %s\n", "benchmark", "baseline", "current", "delta", "status")
	for _, d := range deltas {
		baseS, curS, fracS := "-", "-", "-"
		if d.BaseNS > 0 {
			baseS = time.Duration(d.BaseNS).String()
		}
		if d.CurNS > 0 {
			curS = time.Duration(d.CurNS).String()
		}
		if d.Status != "new" && d.Status != "missing" {
			fracS = fmt.Sprintf("%+.1f%%", d.Frac*100)
		}
		fmt.Fprintf(w, "  %-20s %14s %14s %9s  %s\n", d.Name, baseS, curS, fracS, d.Status)
	}
}

// Slack returns the additive threshold slack from PERFGATE_SLACK
// (a fraction, e.g. "0.10"). CI sets it to keep the gate advisory on
// shared runners; locally it defaults to zero and the gate bites.
func Slack() float64 {
	s := os.Getenv("PERFGATE_SLACK")
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0
	}
	return v
}
