package perfgate

import (
	"fmt"
	"io"
	"sort"

	"toplists"
	"toplists/internal/names"
	"toplists/internal/rank"
	"toplists/internal/sketch"
	"toplists/internal/snapshot"
	"toplists/internal/stats"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// Benchmarks returns the pinned hot-path set the perf gate tracks. The
// names are part of the baseline file contract: renaming one here
// without regenerating BENCH_baseline.json fails the gate as "missing",
// which is the point — the set only changes deliberately.
//
// Sizes are scaled so each Setup stays under a second while the timed
// op is large enough to dominate harness overhead; the gate compares
// against a baseline measured at the same sizes, so absolute scale only
// needs to be representative, not paper-sized.
func Benchmarks() []Benchmark {
	return []Benchmark{
		// The machine-speed reference (see RefBenchmark): fixed work
		// whose true cost never changes, so any drift in its median is
		// the machine, not the code.
		{Name: RefBenchmark, Setup: setupRefSort},
		// engine.day pins n: engine construction amortizes inside run(n),
		// so a calibrated n would shift per-op cost between runs.
		{Name: "engine.day", Setup: setupEngineDay, Iters: 16},
		{Name: "renderall.warm", Setup: setupRenderAllWarm},
		{Name: "rank.topset", Setup: setupRankTopSet},
		{Name: "stats.jaccard", Setup: setupStatsJaccard},
		{Name: "sketch.merge", Setup: setupSketchMerge},
		{Name: "snapshot.encode", Setup: setupSnapshotEncode},
	}
}

// refSink defeats dead-code elimination of the reference workload.
var refSink int64

// setupRefSort is the reference workload: allocate and sort a 32k-entry
// pseudo-random slice. Allocation, pointer-free copying, cache misses,
// and data-dependent branches give it the same sensitivity to memory
// subsystem contention as the real benchmarks, which is what makes the
// drift ratio transferable.
func setupRefSort() func(n int) {
	src := make([]int64, 32*1024)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range src {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		src[i] = int64(x)
	}
	return func(n int) {
		for i := 0; i < n; i++ {
			work := make([]int64, len(src))
			copy(work, src)
			sort.Slice(work, func(a, b int) bool { return work[a] < work[b] })
			refSink = work[0]
		}
	}
}

// setupEngineDay measures one simulated day end to end (client browsing,
// bot floods, DNS fan-out) — the dominant cost of every study build. A
// fresh engine is built per n days so day indices stay in range; its
// construction is amortized across the round's n iterations.
func setupEngineDay() func(n int) {
	w := world.Generate(world.Config{Seed: 1, NumSites: 2000})
	return func(n int) {
		e := traffic.NewEngine(w, traffic.Config{Seed: 2, NumClients: 400, Days: n})
		e.AddSink(&traffic.BaseSink{})
		for d := 0; d < n; d++ {
			e.RunDay(d)
		}
	}
}

// setupRenderAllWarm measures re-rendering every paper artifact from a
// warm memoized artifact store — the interactive cost of toplistsd's
// list endpoints and of re-running experiments after a checkpoint
// restore. The first RenderAll (inside Measure's warm call) pays the
// artifact builds; timed iterations are memo hits plus formatting.
func setupRenderAllWarm() func(n int) {
	study, err := toplists.Run(toplists.Config{
		Seed: 11, Sites: 600, Clients: 150, Days: 2, Workers: 1,
	})
	if err != nil {
		panic(fmt.Sprintf("perfgate: renderall setup: %v", err))
	}
	return func(n int) {
		for i := 0; i < n; i++ {
			if err := study.RenderAll(io.Discard); err != nil {
				panic(fmt.Sprintf("perfgate: renderall: %v", err))
			}
		}
	}
}

// benchRankIDs builds a 20k-entry interned universe, mirroring the
// rank package's own benchmarks.
func benchRankIDs() (*names.Table, []names.ID) {
	tab := names.NewTable()
	ids := make([]names.ID, 20_000)
	for i := range ids {
		ids[i] = tab.Intern(fmt.Sprintf("site-%06d.example", i))
	}
	return tab, ids
}

// setupRankTopSet measures a cold top-k set build over a fresh ranking —
// the kernel under every pairwise list comparison.
func setupRankTopSet() func(n int) {
	tab, ids := benchRankIDs()
	k := len(ids) / 2
	return func(n int) {
		for i := 0; i < n; i++ {
			r := rank.MustFromIDs(tab, ids)
			if r.TopSetIDs(k).Len() != k {
				panic("perfgate: bad topset")
			}
		}
	}
}

// setupStatsJaccard measures similarity of two half-overlapping top
// sets — the inner loop of fig2/fig3-style stability matrices.
func setupStatsJaccard() func(n int) {
	tab, ids := benchRankIDs()
	a := rank.MustFromIDs(tab, ids).TopSetIDs(len(ids) / 2)
	shifted := append([]names.ID(nil), ids[len(ids)/4:]...)
	shifted = append(shifted, ids[:len(ids)/4]...)
	b := rank.MustFromIDs(tab, shifted).TopSetIDs(len(ids) / 2)
	return func(n int) {
		for i := 0; i < n; i++ {
			if v := stats.JaccardIDs(a, b); v <= 0 || v > 1 {
				panic("perfgate: bad jaccard")
			}
		}
	}
}

// setupSketchMerge measures the day-barrier aggregation combine: one
// CountMin fold plus one SpaceSaving fold of populated summaries. The
// destinations saturate after the first iteration, so steady-state cost
// is what the rounds see.
func setupSketchMerge() func(n int) {
	srcCM := sketch.NewCountMin(1<<12, 4)
	srcSS := sketch.NewSpaceSaving(1024)
	for k := uint64(0); k < 8192; k++ {
		srcCM.Add(k, k%97+1)
		srcSS.Add(k, k%97+1)
	}
	dstCM := sketch.NewCountMin(1<<12, 4)
	dstSS := sketch.NewSpaceSaving(1024)
	return func(n int) {
		for i := 0; i < n; i++ {
			dstCM.Merge(srcCM)
			dstSS.Merge(srcSS, nil)
		}
	}
}

// setupSnapshotEncode measures canonical-form encoding of a 20k-entry
// ranking — the per-component cost of every checkpoint write.
func setupSnapshotEncode() func(n int) {
	tab, ids := benchRankIDs()
	r := rank.MustFromIDs(tab, ids)
	return func(n int) {
		for i := 0; i < n; i++ {
			var e snapshot.Encoder
			rank.EncodeRanking(&e, r)
			if _, err := e.WriteTo(io.Discard); err != nil {
				panic(err)
			}
		}
	}
}
