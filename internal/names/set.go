package names

import "math/bits"

// Set is an immutable-by-convention bitset over IDs from one Table. It is
// the TopSet representation of the interned evaluation: membership is one
// bit probe and Jaccard reduces to word-wise AND/OR with popcounts instead
// of string-map iteration. A Set built from one table must never be
// intersected with a Set from another (the IDs are unrelated); callers in
// core guard cross-table comparisons and fall back to the string path.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns a set containing ids. Duplicate ids are counted once.
func NewSet(ids []ID) *Set {
	s := &Set{}
	for _, id := range ids {
		s.add(id)
	}
	return s
}

func (s *Set) add(id ID) {
	w := int(id >> 6)
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	bit := uint64(1) << (id & 63)
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.n++
	}
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id ID) bool {
	w := int(id >> 6)
	return w < len(s.words) && s.words[w]&(uint64(1)<<(id&63)) != 0
}

// Len returns the number of IDs in the set.
func (s *Set) Len() int { return s.n }

// IntersectCount returns |s ∩ o|.
func (s *Set) IntersectCount(o *Set) int {
	words, other := s.words, o.words
	if len(other) < len(words) {
		words, other = other, words
	}
	n := 0
	for i, w := range words {
		n += bits.OnesCount64(w & other[i])
	}
	return n
}
