// Package names implements the study's domain-name vocabulary: an
// append-only, concurrency-safe string interner mapping each distinct name
// to a dense uint32 ID, plus a bitset over those IDs. Every ranking in the
// evaluation layer is backed by IDs from one Table (owned by the Study's
// world), so set and rank algebra runs on integers and strings only appear
// at the I/O boundary (CSV, report rendering, error messages).
package names

import (
	"sync"
	"sync/atomic"
)

// ID identifies one interned name within its Table. IDs are dense: the
// n-th distinct name interned gets ID n-1. An ID is only meaningful
// together with the Table that issued it.
type ID uint32

// Table is an append-only string interner. Intern is amortized O(1) and
// safe for concurrent use; Lookup, Find, Hash, and Len are lock-free reads
// of an atomically published snapshot, so hot evaluation paths never
// contend with interning.
type Table struct {
	mu sync.Mutex // serializes interning

	// ids maps name -> ID. Read lock-free on the Intern/Find fast path;
	// writes happen under mu after the slice snapshots are published, so a
	// hit here always resolves against a slice that already contains it.
	ids sync.Map

	// strs and hashes are the ID -> name and ID -> tie-hash tables,
	// published as immutable snapshots. Appends under mu may write into
	// spare capacity beyond a reader's snapshot length, which no reader
	// can observe.
	strs   atomic.Pointer[[]string]
	hashes atomic.Pointer[[]uint64]
}

// NewTable returns an empty interner.
func NewTable() *Table {
	t := &Table{}
	strs := make([]string, 0, 16)
	hashes := make([]uint64, 0, 16)
	t.strs.Store(&strs)
	t.hashes.Store(&hashes)
	return t
}

// Intern returns the ID for s, assigning the next dense ID if s has not
// been seen before. Interning the same string always returns the same ID.
func (t *Table) Intern(s string) ID {
	if v, ok := t.ids.Load(s); ok {
		return v.(ID)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.ids.Load(s); ok {
		return v.(ID)
	}
	strs := append(*t.strs.Load(), s)
	hashes := append(*t.hashes.Load(), strhash(s))
	id := ID(len(strs) - 1)
	t.strs.Store(&strs)
	t.hashes.Store(&hashes)
	t.ids.Store(s, id)
	return id
}

// Find returns the ID for s if it has been interned, without interning it.
// Lookups of absent names (RankOf on a name outside the study's universe)
// must not grow the table.
func (t *Table) Find(s string) (ID, bool) {
	if v, ok := t.ids.Load(s); ok {
		return v.(ID), true
	}
	return 0, false
}

// Lookup returns the name for id. It panics if id was not issued by this
// table.
func (t *Table) Lookup(id ID) string {
	return (*t.strs.Load())[id]
}

// Hash returns the precomputed FNV-1a hash of the name for id — the same
// value rank.TieHashed derives from the string, so hashed tie-breaks over
// IDs order identically to tie-breaks over the strings themselves.
func (t *Table) Hash(id ID) uint64 {
	return (*t.hashes.Load())[id]
}

// Len returns the number of interned names.
func (t *Table) Len() int {
	return len(*t.strs.Load())
}

// strhash is 64-bit FNV-1a, matching the tie-break hash historically
// applied to name strings (rank.TieHashed); precomputing it per ID keeps
// hashed tie-breaking byte-identical while sorting IDs.
func strhash(s string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
