package names

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternIdempotent(t *testing.T) {
	tab := NewTable()
	words := []string{"example.com", "example.org", "", "example.com", "a.example.com"}
	first := make(map[string]ID)
	for _, w := range words {
		id := tab.Intern(w)
		if prev, seen := first[w]; seen && prev != id {
			t.Fatalf("Intern(%q) = %d, previously %d", w, id, prev)
		}
		first[w] = id
		if got := tab.Lookup(id); got != w {
			t.Fatalf("Lookup(%d) = %q, want %q", id, got, w)
		}
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct names", tab.Len())
	}
	// IDs are dense in first-intern order.
	for i, w := range []string{"example.com", "example.org", "", "a.example.com"} {
		if id, ok := tab.Find(w); !ok || id != ID(i) {
			t.Errorf("Find(%q) = %d,%v, want %d,true", w, id, ok, i)
		}
	}
}

func TestFindDoesNotIntern(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.Find("absent.example"); ok {
		t.Fatal("Find reported an absent name")
	}
	if tab.Len() != 0 {
		t.Fatalf("Find grew the table to %d entries", tab.Len())
	}
}

func TestHashMatchesStringHash(t *testing.T) {
	tab := NewTable()
	for _, w := range []string{"example.com", "x", ""} {
		id := tab.Intern(w)
		if tab.Hash(id) != strhash(w) {
			t.Errorf("Hash(%q) = %#x, want strhash %#x", w, tab.Hash(id), strhash(w))
		}
	}
}

// TestConcurrentInternLookup hammers one table from many goroutines with
// overlapping vocabularies; run under -race this exercises the published-
// snapshot discipline. Every goroutine must observe idempotent IDs and
// consistent Lookup/Hash for every ID it holds.
func TestConcurrentInternLookup(t *testing.T) {
	tab := NewTable()
	const goroutines = 8
	const words = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < words; i++ {
				// Overlapping across goroutines: each word is interned by
				// several goroutines racing for the first assignment.
				w := fmt.Sprintf("site-%d.example", (i+g*words/2)%words)
				id := tab.Intern(w)
				if got := tab.Lookup(id); got != w {
					errs <- fmt.Errorf("Lookup(Intern(%q)) = %q", w, got)
					return
				}
				if tab.Hash(id) != strhash(w) {
					errs <- fmt.Errorf("Hash mismatch for %q", w)
					return
				}
				if again := tab.Intern(w); again != id {
					errs <- fmt.Errorf("Intern(%q) = %d then %d", w, id, again)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tab.Len() != words {
		t.Errorf("Len = %d, want %d", tab.Len(), words)
	}
}

func FuzzInternLookupRoundTrip(f *testing.F) {
	f.Add("example.com", "example.org")
	f.Add("", "a")
	f.Add("same", "same")
	f.Fuzz(func(t *testing.T, a, b string) {
		tab := NewTable()
		ida := tab.Intern(a)
		idb := tab.Intern(b)
		if tab.Lookup(ida) != a || tab.Lookup(idb) != b {
			t.Fatalf("round trip broken: %q->%d->%q, %q->%d->%q",
				a, ida, tab.Lookup(ida), b, idb, tab.Lookup(idb))
		}
		if (a == b) != (ida == idb) {
			t.Fatalf("identity broken: %q=%d %q=%d", a, ida, b, idb)
		}
		if tab.Intern(a) != ida || tab.Intern(b) != idb {
			t.Fatal("re-intern not idempotent")
		}
		if id, ok := tab.Find(a); !ok || id != ida {
			t.Fatalf("Find(%q) = %d,%v after Intern", a, id, ok)
		}
	})
}

func TestSet(t *testing.T) {
	s := NewSet([]ID{1, 3, 200, 3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates collapse)", s.Len())
	}
	for _, id := range []ID{1, 3, 200} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []ID{0, 2, 64, 199, 201, 100000} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
	o := NewSet([]ID{3, 200, 201})
	if got := s.IntersectCount(o); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := o.IntersectCount(s); got != 2 {
		t.Errorf("IntersectCount reversed = %d, want 2", got)
	}
	empty := NewSet(nil)
	if empty.Len() != 0 || empty.Contains(0) {
		t.Error("empty set not empty")
	}
	if got := empty.IntersectCount(s); got != 0 {
		t.Errorf("empty intersect = %d", got)
	}
}
