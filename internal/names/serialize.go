package names

import (
	"fmt"
	"io"

	"toplists/internal/snapshot"
)

const tableSnapVersion = 1

// Snapshot writes every interned string in ID order. IDs are dense and
// sequential, so the ordered string sequence is the whole table.
func (t *Table) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(tableSnapVersion)
	n := t.Len()
	e.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		e.String(t.Lookup(ID(i)))
	}
	_, err := e.WriteTo(w)
	return err
}

// Restore re-interns a Snapshot payload's strings in order, verifying
// that each lands on its original ID. The receiving table may already
// hold a prefix of the sequence (a freshly generated world interns its
// site domains first, in the same deterministic order), but any
// divergence — different strings, different order, duplicates — is a
// corrupt or mismatched snapshot and fails without leaving the table in
// a state the caller can confuse for restored.
func (t *Table) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	ver := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if ver != tableSnapVersion {
		return fmt.Errorf("%w: names payload v%d, this build reads v%d", snapshot.ErrVersion, ver, tableSnapVersion)
	}
	n := d.Len(1)
	if t.Len() > n {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: table already holds %d names, snapshot has %d", snapshot.ErrCorrupt, t.Len(), n)
	}
	for i := 0; i < n; i++ {
		s := d.String()
		if d.Err() != nil {
			return d.Err()
		}
		if got := t.Intern(s); got != ID(i) {
			return fmt.Errorf("%w: name %q interned as ID %d, snapshot position %d (world/snapshot mismatch)", snapshot.ErrCorrupt, s, got, i)
		}
	}
	return d.Finish()
}
