// Package snapshot implements the on-disk checkpoint format for resident
// studies: a schema header followed by named, length-prefixed, checksummed
// component frames. The format is deliberately dumb — every component is a
// self-versioned opaque payload produced by one subsystem's Snapshot
// method — so subsystems evolve their encodings independently while the
// container guarantees integrity (magic, version, per-frame CRC, explicit
// end marker) and precise failure modes: a corrupted, truncated, or
// version-skewed file is rejected with a sentinel error before any state
// is mutated.
//
// Components are written and read in a fixed order. The reader API is
// strict — the caller names the component it expects next — so a
// reordered or missing frame surfaces as an immediate, descriptive error
// instead of silently restoring the wrong subsystem.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// magic identifies a toplists snapshot file.
const magic = "TOPLSNAP"

// Version is the container schema version. Bump when the framing itself
// (not a component payload) changes incompatibly.
const Version uint16 = 1

// maxFrameLen bounds name and payload lengths so a corrupted length
// prefix fails fast instead of attempting a huge allocation.
const maxFrameLen = 1 << 31

var (
	// ErrBadMagic means the file does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic (not a toplists snapshot)")
	// ErrVersion means the container schema version is not supported.
	ErrVersion = errors.New("snapshot: unsupported schema version")
	// ErrChecksum means a component frame failed its CRC check.
	ErrChecksum = errors.New("snapshot: component checksum mismatch")
	// ErrTruncated means the file ended mid-frame.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrCorrupt means a structurally invalid frame (bad length, wrong
	// component name, trailing garbage, or an undecodable payload).
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// Writer emits a snapshot container. Components must be written in the
// same fixed order the reader will request them.
type Writer struct {
	w   *bufio.Writer
	buf bytes.Buffer
	err error
}

// NewWriter writes the schema header and returns a component writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var v [2]byte
	binary.BigEndian.PutUint16(v[:], Version)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Component frames one named payload: fn writes the payload bytes, the
// writer prefixes name and length and appends a CRC-32 (IEEE) over
// name+payload. Errors are sticky.
func (sw *Writer) Component(name string, fn func(w io.Writer) error) error {
	if sw.err != nil {
		return sw.err
	}
	if name == "" {
		sw.err = errors.New("snapshot: empty component name")
		return sw.err
	}
	sw.buf.Reset()
	if err := fn(&sw.buf); err != nil {
		sw.err = fmt.Errorf("snapshot: component %q: %w", name, err)
		return sw.err
	}
	sw.err = sw.writeFrame(name, sw.buf.Bytes())
	return sw.err
}

func (sw *Writer) writeFrame(name string, payload []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(name)))
	if _, err := sw.w.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := sw.w.WriteString(name); err != nil {
		return err
	}
	n = binary.PutUvarint(tmp[:], uint64(len(payload)))
	if _, err := sw.w.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := sw.w.Write(payload); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE([]byte(name))
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], crc)
	_, err := sw.w.Write(c[:])
	return err
}

// Close writes the end marker (a zero-length name) and flushes. The
// snapshot is not valid until Close returns nil.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	var tmp [1]byte // uvarint(0)
	if _, err := sw.w.Write(tmp[:]); err != nil {
		sw.err = err
		return err
	}
	sw.err = sw.w.Flush()
	return sw.err
}

// Reader consumes a snapshot container, validating the header up front
// and each frame's checksum as it is read.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the schema header. It fails with ErrBadMagic or
// ErrVersion (wrapped with the found version) before any component is
// touched.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(head[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: file has v%d, this build reads v%d", ErrVersion, v, Version)
	}
	return &Reader{r: br}, nil
}

// Component reads the next frame, which must carry the given name, and
// returns its checksum-verified payload.
func (sr *Reader) Component(name string) ([]byte, error) {
	got, payload, err := sr.next()
	if err != nil {
		return nil, err
	}
	if got == "" {
		return nil, fmt.Errorf("%w: expected component %q, found end of snapshot", ErrCorrupt, name)
	}
	if got != name {
		return nil, fmt.Errorf("%w: expected component %q, found %q", ErrCorrupt, name, got)
	}
	return payload, nil
}

// next reads one frame. The end marker returns ("", nil, nil).
func (sr *Reader) next() (string, []byte, error) {
	nameLen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return "", nil, truncated(err)
	}
	if nameLen == 0 {
		return "", nil, nil
	}
	if nameLen > maxFrameLen {
		return "", nil, fmt.Errorf("%w: component name length %d", ErrCorrupt, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(sr.r, nameBuf); err != nil {
		return "", nil, truncated(err)
	}
	payloadLen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return "", nil, truncated(err)
	}
	if payloadLen > maxFrameLen {
		return "", nil, fmt.Errorf("%w: component %q payload length %d", ErrCorrupt, nameBuf, payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return "", nil, truncated(err)
	}
	var c [4]byte
	if _, err := io.ReadFull(sr.r, c[:]); err != nil {
		return "", nil, truncated(err)
	}
	crc := crc32.ChecksumIEEE(nameBuf)
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if got := binary.BigEndian.Uint32(c[:]); got != crc {
		return "", nil, fmt.Errorf("%w: component %q", ErrChecksum, nameBuf)
	}
	return string(nameBuf), payload, nil
}

// End verifies the end marker has been reached: every component was
// consumed and nothing trails it.
func (sr *Reader) End() error {
	got, _, err := sr.next()
	if err != nil {
		return err
	}
	if got != "" {
		return fmt.Errorf("%w: unexpected trailing component %q", ErrCorrupt, got)
	}
	if _, err := sr.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after end marker", ErrCorrupt)
	}
	return nil
}

func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// Verify reads a whole container — header, every frame's checksum, the
// end marker, absence of trailing bytes — without interpreting any
// payload. It returns exactly the integrity error a restore would hit, so
// recovery can cheaply reject a torn or corrupted candidate before any
// subsystem state is touched.
func Verify(r io.Reader) error {
	sr, err := NewReader(r)
	if err != nil {
		return err
	}
	for {
		name, _, err := sr.next()
		if err != nil {
			return err
		}
		if name == "" {
			break
		}
	}
	if _, err := sr.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after end marker", ErrCorrupt)
	}
	return nil
}

// Frame locates one component frame inside a container held in memory:
// where the frame starts, where its payload lives, and the offset of its
// CRC. It exists for damage-injection tests and chaos tooling, which need
// to corrupt a specific component (or fix a checksum back up after a
// deliberate payload edit) without re-deriving the wire layout.
type Frame struct {
	// Name is the component name.
	Name string
	// Off is the byte offset of the frame's first byte (the name-length
	// uvarint); End is one past the frame's CRC.
	Off, End int
	// PayloadOff and PayloadLen locate the component payload.
	PayloadOff, PayloadLen int
	// CRCOff is the offset of the frame's 4-byte big-endian CRC-32.
	CRCOff int
}

// Scan parses a container's frame layout, verifying the header and every
// checksum along the way. The returned frames are in container order; the
// end marker and trailing-byte check are enforced like Verify.
func Scan(b []byte) ([]Frame, error) {
	if _, err := NewReader(bytes.NewReader(b)); err != nil {
		return nil, err
	}
	off := len(magic) + 2
	var frames []Frame
	for {
		nameLen, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, ErrTruncated
		}
		if nameLen == 0 {
			off += n
			break
		}
		f := Frame{Off: off}
		off += n
		if nameLen > maxFrameLen || off+int(nameLen) > len(b) {
			return nil, fmt.Errorf("%w: component name length %d", ErrCorrupt, nameLen)
		}
		f.Name = string(b[off : off+int(nameLen)])
		off += int(nameLen)
		payloadLen, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, ErrTruncated
		}
		off += n
		if payloadLen > maxFrameLen || off+int(payloadLen)+4 > len(b) {
			return nil, fmt.Errorf("%w: component %q payload length %d", ErrCorrupt, f.Name, payloadLen)
		}
		f.PayloadOff, f.PayloadLen = off, int(payloadLen)
		off += int(payloadLen)
		f.CRCOff = off
		crc := crc32.ChecksumIEEE([]byte(f.Name))
		crc = crc32.Update(crc, crc32.IEEETable, b[f.PayloadOff:f.PayloadOff+f.PayloadLen])
		if got := binary.BigEndian.Uint32(b[off : off+4]); got != crc {
			return nil, fmt.Errorf("%w: component %q", ErrChecksum, f.Name)
		}
		off += 4
		f.End = off
		frames = append(frames, f)
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: trailing bytes after end marker", ErrCorrupt)
	}
	return frames, nil
}

// FixCRC recomputes and patches the CRC of one scanned frame in place,
// for tests that deliberately edit a payload and need the container-level
// checksum to pass so a deeper decode branch is exercised.
func FixCRC(b []byte, f Frame) {
	crc := crc32.ChecksumIEEE([]byte(f.Name))
	crc = crc32.Update(crc, crc32.IEEETable, b[f.PayloadOff:f.PayloadOff+f.PayloadLen])
	binary.BigEndian.PutUint32(b[f.CRCOff:f.CRCOff+4], crc)
}
