package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

func writeSample(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	sw, err := NewWriter(&out)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Component("alpha", func(w io.Writer) error {
		var e Encoder
		e.Uvarint(42)
		e.String("hello")
		e.F64(math.Pi)
		_, err := e.WriteTo(w)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Component("beta", func(w io.Writer) error {
		var e Encoder
		e.Varint(-7)
		e.Bool(true)
		e.Bytes([]byte{1, 2, 3})
		_, err := e.WriteTo(w)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestRoundTrip(t *testing.T) {
	raw := writeSample(t)
	sr, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sr.Component("alpha")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(p)
	if got := d.Uvarint(); got != 42 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("string = %q", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("f64 = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	p, err = sr.Component("beta")
	if err != nil {
		t.Fatal(err)
	}
	d = NewDecoder(p)
	if got := d.Varint(); got != -7 {
		t.Errorf("varint = %d", got)
	}
	if !d.Bool() {
		t.Error("bool = false")
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sr.End(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	a, b := writeSample(t), writeSample(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical snapshots differ byte-wise")
	}
}

func TestBadMagic(t *testing.T) {
	raw := writeSample(t)
	raw[0] ^= 0xff
	if _, err := NewReader(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	// Empty file is also a magic failure, not a panic.
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty file err = %v, want ErrBadMagic", err)
	}
}

func TestVersionSkew(t *testing.T) {
	raw := writeSample(t)
	binary.BigEndian.PutUint16(raw[8:], Version+1)
	_, err := NewReader(bytes.NewReader(raw))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestChecksumCorruption(t *testing.T) {
	raw := writeSample(t)
	// Flip one bit in every single byte position after the header; each
	// corruption must surface as a checksum, corruption, or truncation
	// error — never a clean read.
	for i := 10; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		sr, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		var p []byte
		if p, err = sr.Component("alpha"); err == nil {
			d := NewDecoder(p)
			d.Uvarint()
			_ = d.String()
			d.F64()
			if err = d.Finish(); err == nil {
				if p, err = sr.Component("beta"); err == nil {
					d = NewDecoder(p)
					d.Varint()
					d.Bool()
					d.Bytes()
					if err = d.Finish(); err == nil {
						err = sr.End()
					}
				}
			}
		}
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected", i)
		}
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("bit flip at offset %d: err = %v, want a snapshot sentinel", i, err)
		}
	}
}

func TestTruncation(t *testing.T) {
	raw := writeSample(t)
	for cut := 10; cut < len(raw); cut++ {
		sr, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header err %v", cut, err)
		}
		if _, err = sr.Component("alpha"); err == nil {
			if _, err = sr.Component("beta"); err == nil {
				err = sr.End()
			}
		}
		if err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncation at %d: err = %v, want a snapshot sentinel", cut, err)
		}
	}
}

func TestWrongComponentOrder(t *testing.T) {
	raw := writeSample(t)
	sr, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sr.Component("beta")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTrailingGarbage(t *testing.T) {
	raw := append(writeSample(t), 0xde, 0xad)
	sr, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = sr.Component("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err = sr.Component("beta"); err != nil {
		t.Fatal(err)
	}
	if err = sr.End(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("End = %v, want ErrCorrupt", err)
	}
}

func TestDecoderImplausibleLength(t *testing.T) {
	var e Encoder
	e.Uvarint(1 << 40) // claims a huge element count
	d := NewDecoder(append([]byte(nil), e.buf...))
	if n := d.Len(4); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}
}
