package snapshot

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Encoder builds a component payload from primitive values. Every write
// is canonical — varints for integers, fixed big-endian IEEE-754 bits for
// floats, length-prefixed bytes for strings — so that encoding the same
// logical state always yields the same bytes. That property is what makes
// Snapshot→Restore→Snapshot byte-identity testable.
type Encoder struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

// Varint appends a signed (zig-zag) varint.
func (e *Encoder) Varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends the fixed 8-byte big-endian IEEE-754 bit pattern. Bit-exact
// round-tripping (including -0 and NaN payloads) keeps restored float
// state byte-identical to the original.
func (e *Encoder) F64(v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	e.buf = append(e.buf, b[:]...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteTo flushes the accumulated payload.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf)
	return int64(n), err
}

// Len reports the accumulated payload size.
func (e *Encoder) Len() int { return len(e.buf) }

// Decoder consumes a component payload produced by Encoder. Errors are
// sticky: after the first decode failure every subsequent read returns
// the zero value, and Err/Finish report what went wrong, so decode
// sequences read linearly without per-field error plumbing.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

func (d *Decoder) fail(op string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, op, d.off)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int-sized signed varint.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("bool past end")
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("bad bool byte")
		return false
	}
	return v == 1
}

// F64 reads a fixed 8-byte IEEE-754 bit pattern.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("f64 past end")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string past end")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Bytes reads a length-prefixed byte slice (a copy).
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("bytes past end")
		return nil
	}
	b := append([]byte(nil), d.b[d.off:d.off+int(n)]...)
	d.off += int(n)
	return b
}

// Len reads a uvarint-encoded length and validates it against a per-item
// minimum size, so a corrupted count cannot drive a huge allocation.
func (d *Decoder) Len(minItemBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minItemBytes < 1 {
		minItemBytes = 1
	}
	if n > uint64((len(d.b)-d.off)/minItemBytes) {
		d.fail("implausible length")
		return 0
	}
	return int(n)
}

// Err reports the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Finish reports the sticky error, or ErrCorrupt if undecoded bytes
// remain — a payload must be consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return nil
}
