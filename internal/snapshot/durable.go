package snapshot

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// Durable checkpoint storage: a Dir owns a directory of generation-numbered
// snapshot files plus a LATEST pointer, and guarantees that a crash at any
// byte of any write — power loss included — never destroys the last good
// generation. The write-ahead ordering is:
//
//  1. the snapshot streams into a hidden temp file in the same directory;
//  2. the temp file is fsynced, so its bytes are on stable storage;
//  3. the temp file is renamed to its generation name (atomic on POSIX);
//  4. the parent directory is fsynced, so the rename itself is durable;
//  5. only then is LATEST updated, by the same temp+fsync+rename+fsync
//     sequence.
//
// A crash before (3) leaves only a temp file, which readers ignore. A crash
// between (3) and (5) leaves a fully durable generation that LATEST does not
// name yet — which is why recovery scans generation files newest-first
// instead of trusting LATEST (the pointer exists for humans and tooling).
// Torn or bit-rotted generations are caught by the container's per-frame
// CRCs (see Verify) and recovery falls back to the next older one.

// genPrefix names generation files: genPrefix + zero-padded sequence
// number, e.g. "study.snap.000017".
const genPrefix = "study.snap."

// genDigits is the zero-padded width of the sequence number. Sequences
// wider than this still round-trip (parsing is not width-limited); padding
// only keeps lexical and numeric order aligned for the common case.
const genDigits = 6

// LatestName is the pointer file naming the newest fully written
// generation. It is advisory: recovery scans generations directly.
const LatestName = "LATEST"

// tmpPrefix hides in-progress writes from generation scans.
const tmpPrefix = ".tmp."

// ErrNoGenerations is returned by Latest when the directory holds no
// completed generation.
var ErrNoGenerations = errors.New("snapshot: no generations in checkpoint directory")

// Gen identifies one completed generation file.
type Gen struct {
	// Seq is the generation sequence number, monotonically increasing
	// across the directory's lifetime.
	Seq uint64
	// Path is the absolute or dir-relative path of the generation file.
	Path string
}

// Name returns the generation's file name ("study.snap.000017").
func (g Gen) Name() string { return filepath.Base(g.Path) }

// Dir is a checkpoint directory holding generation-numbered snapshots.
// Methods are not internally locked: callers that write concurrently must
// serialize Write/Prune themselves (readers of completed generations need
// no coordination — a generation file, once named, is immutable).
type Dir struct {
	path string
}

// OpenDir opens (creating if needed) a checkpoint directory.
func OpenDir(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o777); err != nil {
		return nil, fmt.Errorf("snapshot: open checkpoint dir: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: open checkpoint dir: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("snapshot: checkpoint path %s is not a directory", path)
	}
	return &Dir{path: path}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// genName formats a generation file name.
func genName(seq uint64) string {
	return genPrefix + fmt.Sprintf("%0*d", genDigits, seq)
}

// parseGen extracts the sequence from a generation file name, reporting
// ok=false for temp files, LATEST, and foreign names.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) {
		return 0, false
	}
	digits := name[len(genPrefix):]
	if digits == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Generations lists the directory's completed generations in ascending
// sequence order. Temp files, LATEST, and foreign files are ignored.
func (d *Dir) Generations() ([]Gen, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: scan checkpoint dir: %w", err)
	}
	var gens []Gen
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseGen(e.Name()); ok {
			gens = append(gens, Gen{Seq: seq, Path: filepath.Join(d.path, e.Name())})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq < gens[j].Seq })
	return gens, nil
}

// Latest returns the newest completed generation by sequence number, or
// ErrNoGenerations. It deliberately does not read LATEST: a crash between
// a generation's rename and the pointer update leaves the pointer one
// behind, and the newest durable file wins.
func (d *Dir) Latest() (Gen, error) {
	gens, err := d.Generations()
	if err != nil {
		return Gen{}, err
	}
	if len(gens) == 0 {
		return Gen{}, ErrNoGenerations
	}
	return gens[len(gens)-1], nil
}

// Write streams one new generation: fn produces the snapshot bytes, and
// the file becomes visible under its generation name only after those
// bytes — and the rename making them reachable — are fsynced to stable
// storage. On any error the temp file is removed and the directory's
// existing generations are untouched (their content and mtimes included).
func (d *Dir) Write(fn func(w io.Writer) error) (Gen, int64, error) {
	var nextSeq uint64 = 1
	if latest, err := d.Latest(); err == nil {
		nextSeq = latest.Seq + 1
	} else if !errors.Is(err, ErrNoGenerations) {
		return Gen{}, 0, err
	}

	tmp, err := os.CreateTemp(d.path, tmpPrefix+genName(nextSeq)+".*")
	if err != nil {
		return Gen{}, 0, fmt.Errorf("snapshot: create temp: %w", err)
	}
	tmpPath := tmp.Name()
	fail := func(err error) (Gen, int64, error) {
		tmp.Close()        //nolint:errcheck // already failing
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return Gen{}, 0, err
	}

	if err := fn(tmp); err != nil {
		return fail(err)
	}
	n, err := tmp.Seek(0, io.SeekEnd)
	if err != nil {
		return fail(fmt.Errorf("snapshot: %s: %w", tmpPath, err))
	}
	// The fsync before rename is the whole point: without it, the rename
	// can reach disk before the file's bytes do, and a crash leaves a
	// zero-length or torn "successful" generation.
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("snapshot: fsync %s: %w", tmpPath, err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("snapshot: close %s: %w", tmpPath, err))
	}
	gen := Gen{Seq: nextSeq, Path: filepath.Join(d.path, genName(nextSeq))}
	if err := os.Rename(tmpPath, gen.Path); err != nil {
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return Gen{}, 0, fmt.Errorf("snapshot: rename %s: %w", tmpPath, err)
	}
	if err := syncDir(d.path); err != nil {
		return Gen{}, 0, err
	}
	// LATEST last: it must never name a generation that is not yet
	// durable. Its own write follows the same temp+fsync+rename sequence;
	// a failure here leaves a valid, scannable generation behind, so it is
	// reported but the generation is still returned.
	if err := d.writeLatest(gen); err != nil {
		return gen, n, err
	}
	return gen, n, nil
}

// writeLatest atomically updates the LATEST pointer file to name gen.
func (d *Dir) writeLatest(gen Gen) error {
	tmp, err := os.CreateTemp(d.path, tmpPrefix+LatestName+".*")
	if err != nil {
		return fmt.Errorf("snapshot: create LATEST temp: %w", err)
	}
	tmpPath := tmp.Name()
	if _, err := tmp.WriteString(gen.Name() + "\n"); err != nil {
		tmp.Close()        //nolint:errcheck // already failing
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("snapshot: write LATEST: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()        //nolint:errcheck // already failing
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("snapshot: fsync LATEST: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("snapshot: close LATEST: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(d.path, LatestName)); err != nil {
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("snapshot: rename %s: %w", tmpPath, err)
	}
	return syncDir(d.path)
}

// ReadLatest returns the generation named by the LATEST pointer file, for
// tooling; recovery should use Generations/Latest instead.
func (d *Dir) ReadLatest() (Gen, error) {
	b, err := os.ReadFile(filepath.Join(d.path, LatestName))
	if err != nil {
		return Gen{}, err
	}
	name := strings.TrimSpace(string(b))
	seq, ok := parseGen(name)
	if !ok {
		return Gen{}, fmt.Errorf("%w: LATEST names %q", ErrCorrupt, name)
	}
	return Gen{Seq: seq, Path: filepath.Join(d.path, name)}, nil
}

// Prune removes the oldest generations beyond the newest retain (and any
// stale temp files), returning what it removed. retain < 1 is treated as
// 1: the newest generation is never pruned.
func (d *Dir) Prune(retain int) ([]Gen, error) {
	if retain < 1 {
		retain = 1
	}
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: scan checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(d.path, e.Name())) //nolint:errcheck // best-effort cleanup
		}
	}
	gens, err := d.Generations()
	if err != nil {
		return nil, err
	}
	if len(gens) <= retain {
		return nil, nil
	}
	victims := gens[:len(gens)-retain]
	for _, g := range victims {
		if err := os.Remove(g.Path); err != nil {
			return nil, fmt.Errorf("snapshot: prune %s: %w", g.Path, err)
		}
	}
	if err := syncDir(d.path); err != nil {
		return nil, err
	}
	return victims, nil
}

// syncDir fsyncs a directory so renames and removals within it are
// durable. On Linux (the deployment platform) this is the documented way
// to persist directory entries; filesystems that reject directory fsync
// with EINVAL (some network mounts) are tolerated, since rename atomicity
// still holds there.
func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("snapshot: open dir for fsync: %w", err)
	}
	err = f.Sync()
	f.Close() //nolint:errcheck // read-only handle
	if err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("snapshot: fsync dir %s: %w", path, err)
	}
	return nil
}
