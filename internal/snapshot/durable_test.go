package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeContainer emits a minimal valid container with one component
// carrying the given payload, through the given writer.
func writeContainer(payload []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		sw, err := NewWriter(w)
		if err != nil {
			return err
		}
		if err := sw.Component("data", func(w io.Writer) error {
			_, err := w.Write(payload)
			return err
		}); err != nil {
			return err
		}
		return sw.Close()
	}
}

func TestDirWriteRotatesGenerations(t *testing.T) {
	d, err := OpenDir(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		gen, n, err := d.Write(writeContainer([]byte(fmt.Sprintf("day %d", i))))
		if err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		if gen.Seq != uint64(i) {
			t.Fatalf("Write %d: seq %d", i, gen.Seq)
		}
		if n <= 0 {
			t.Fatalf("Write %d: %d bytes", i, n)
		}
		if got := gen.Name(); got != fmt.Sprintf("study.snap.%06d", i) {
			t.Fatalf("Write %d: name %q", i, got)
		}
	}
	gens, err := d.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 || gens[0].Seq != 1 || gens[2].Seq != 3 {
		t.Fatalf("Generations: %+v", gens)
	}
	latest, err := d.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 3 {
		t.Fatalf("Latest: %+v", latest)
	}
	ptr, err := d.ReadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Seq != 3 {
		t.Fatalf("ReadLatest: %+v", ptr)
	}
	// Each generation is an independently valid container.
	for _, g := range gens {
		b, err := os.ReadFile(g.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(bytes.NewReader(b)); err != nil {
			t.Fatalf("generation %d fails Verify: %v", g.Seq, err)
		}
	}
}

func TestDirLatestPrefersNewestFileOverPointer(t *testing.T) {
	// A crash between a generation's rename and the LATEST update leaves
	// the pointer one behind; the newest durable file must win.
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Write(writeContainer([]byte("one"))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Write(writeContainer([]byte("two"))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d.Path(), LatestName), []byte(genName(1)+"\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	latest, err := d.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 2 {
		t.Fatalf("Latest trusted the stale pointer: %+v", latest)
	}
}

func TestDirWriteFailureLeavesPreviousGenerationUntouched(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gen, _, err := d.Write(writeContainer([]byte("good")))
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(gen.Path)
	if err != nil {
		t.Fatal(err)
	}
	ptrBefore, err := os.ReadFile(filepath.Join(d.Path(), LatestName))
	if err != nil {
		t.Fatal(err)
	}
	// Make sure a same-second mtime can't mask an overwrite.
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(gen.Path, old, old); err != nil {
		t.Fatal(err)
	}
	before, err = os.Stat(gen.Path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("snapshot producer failed")
	if _, _, err := d.Write(func(w io.Writer) error {
		io.WriteString(w, "partial garbage") //nolint:errcheck // in-memory buffer path
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Write error = %v, want %v", err, boom)
	}

	after, err := os.Stat(gen.Path)
	if err != nil {
		t.Fatalf("previous generation gone after failed write: %v", err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatalf("previous generation touched by failed write: %v/%d -> %v/%d",
			before.ModTime(), before.Size(), after.ModTime(), after.Size())
	}
	if ptrAfter, _ := os.ReadFile(filepath.Join(d.Path(), LatestName)); !bytes.Equal(ptrAfter, ptrBefore) {
		t.Fatalf("LATEST changed after failed write: %q -> %q", ptrBefore, ptrAfter)
	}
	gens, err := d.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("failed write left extra generations: %+v", gens)
	}
	// No temp litter either: the failed write cleans up after itself.
	entries, err := os.ReadDir(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("failed write left temp file %s", e.Name())
		}
	}
}

func TestDirPrune(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := d.Write(writeContainer([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	// A stale temp file (a crash mid-write) is swept too.
	stale := filepath.Join(d.Path(), tmpPrefix+"study.snap.000099.123")
	if err := os.WriteFile(stale, []byte("torn"), 0o666); err != nil {
		t.Fatal(err)
	}
	removed, err := d.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 || removed[0].Seq != 1 || removed[2].Seq != 3 {
		t.Fatalf("Prune removed %+v", removed)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp survived prune: %v", err)
	}
	gens, err := d.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].Seq != 4 || gens[1].Seq != 5 {
		t.Fatalf("after prune: %+v", gens)
	}
	// retain below 1 still keeps the newest.
	if _, err := d.Prune(0); err != nil {
		t.Fatal(err)
	}
	latest, err := d.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 5 {
		t.Fatalf("Prune(0) removed the newest generation: %+v", latest)
	}
}

func TestDirIgnoresForeignAndTempFiles(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		tmpPrefix + "study.snap.000002.77", "study.snap.", "study.snap.xyz", "notes.txt", LatestName,
	} {
		if err := os.WriteFile(filepath.Join(d.Path(), name), []byte("x"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Latest(); !errors.Is(err, ErrNoGenerations) {
		t.Fatalf("Latest over foreign files: %v", err)
	}
	gen, _, err := d.Write(writeContainer([]byte("real")))
	if err != nil {
		t.Fatal(err)
	}
	if gen.Seq != 1 {
		t.Fatalf("first real generation got seq %d", gen.Seq)
	}
}

func TestOpenDirRejectsFile(t *testing.T) {
	f := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(f, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(f); err == nil {
		t.Fatal("OpenDir accepted a regular file")
	}
}

func TestVerifyAndScan(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string][]byte{"alpha": []byte("aaaa"), "beta": []byte("bb")}
	for _, name := range []string{"alpha", "beta"} {
		if err := sw.Component(name, func(w io.Writer) error {
			_, err := w.Write(payloads[name])
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if err := Verify(bytes.NewReader(good)); err != nil {
		t.Fatalf("Verify(good): %v", err)
	}
	frames, err := Scan(good)
	if err != nil {
		t.Fatalf("Scan(good): %v", err)
	}
	if len(frames) != 2 || frames[0].Name != "alpha" || frames[1].Name != "beta" {
		t.Fatalf("Scan frames: %+v", frames)
	}
	for i, f := range frames {
		want := payloads[f.Name]
		if got := good[f.PayloadOff : f.PayloadOff+f.PayloadLen]; !bytes.Equal(got, want) {
			t.Fatalf("frame %d payload %q, want %q", i, got, want)
		}
	}
	if frames[1].End+1 != len(good) { // one trailing end-marker byte
		t.Fatalf("frame end %d, container %d bytes", frames[1].End, len(good))
	}

	// Every truncation point fails both Verify and Scan.
	for cut := 0; cut < len(good); cut++ {
		if err := Verify(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("Verify accepted truncation at %d", cut)
		}
		if _, err := Scan(good[:cut]); err == nil {
			t.Fatalf("Scan accepted truncation at %d", cut)
		}
	}
	// Every single-byte corruption past the header fails (name, length,
	// payload, and CRC bytes are all covered by the frame checksum or the
	// structural checks).
	for off := len(magic) + 2; off < len(good)-1; off++ {
		b := bytes.Clone(good)
		b[off] ^= 0x10
		if err := Verify(bytes.NewReader(b)); err == nil {
			t.Fatalf("Verify accepted bit flip at %d", off)
		}
	}
	// Trailing garbage is rejected.
	if err := Verify(bytes.NewReader(append(bytes.Clone(good), 0x00))); err == nil {
		t.Fatal("Verify accepted trailing garbage")
	}
	if _, err := Scan(append(bytes.Clone(good), 0x00)); err == nil {
		t.Fatal("Scan accepted trailing garbage")
	}

	// FixCRC makes a deliberate payload edit scannable again.
	b := bytes.Clone(good)
	b[frames[0].PayloadOff] ^= 0xff
	if _, err := Scan(b); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Scan after payload edit: %v, want ErrChecksum", err)
	}
	FixCRC(b, frames[0])
	if _, err := Scan(b); err != nil {
		t.Fatalf("Scan after FixCRC: %v", err)
	}
	if err := Verify(bytes.NewReader(b)); err != nil {
		t.Fatalf("Verify after FixCRC: %v", err)
	}
}
