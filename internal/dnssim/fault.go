package dnssim

import (
	"sync"

	"toplists/internal/faults"
)

// FaultHandler wraps a MessageHandler with deterministic fault injection:
// SERVFAIL, spurious NXDOMAIN, TC-bit truncation, and dropped datagrams,
// drawn from a faults.Plan keyed on (query name, virtual day, per-name
// attempt index). The attempt counter makes a client's retries of the same
// name roll fresh decisions — so a retrying stub eventually gets through —
// while the plan itself stays a pure function of its key: a fresh handler
// replaying the same query sequence injects the same faults.
type FaultHandler struct {
	Inner MessageHandler
	Plan  *faults.Plan
	// Day keys the plan's decisions (virtual time, never the wall clock).
	Day int
	// Metrics, when set, counts injected faults by class. The per-name
	// attempt sequence is deterministic, so the counts are too.
	Metrics *faults.Metrics

	mu       sync.Mutex
	attempts map[string]int
}

// HandleMessage implements MessageHandler.
func (f *FaultHandler) HandleMessage(clientIP uint32, raw []byte) []byte {
	if !f.Plan.Enabled() {
		return f.Inner.HandleMessage(clientIP, raw)
	}
	q, err := Decode(raw)
	if err != nil || len(q.Questions) == 0 {
		// Malformed queries are the inner handler's problem.
		return f.Inner.HandleMessage(clientIP, raw)
	}
	name := q.Questions[0].Name
	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = make(map[string]int)
	}
	attempt := f.attempts[name]
	f.attempts[name] = attempt + 1
	f.mu.Unlock()

	kind := f.Plan.DNS(name, faults.Key{Day: f.Day, Attempt: attempt})
	f.Metrics.Injected(kind)
	switch kind {
	case faults.DNSDrop:
		return nil
	case faults.DNSServFail:
		return errorReply(q, RCodeServFail)
	case faults.DNSTruncate:
		resp := f.Inner.HandleMessage(clientIP, raw)
		if resp == nil {
			return nil
		}
		return truncateForUDP(resp)
	case faults.DNSNXDomain:
		return errorReply(q, RCodeNXDomain)
	}
	return f.Inner.HandleMessage(clientIP, raw)
}

// errorReply builds a records-free response echoing the query's ID and
// question with the given RCode.
func errorReply(q *Message, rc RCode) []byte {
	resp := &Message{
		Header: Header{
			ID:                 q.Header.ID,
			Response:           true,
			Opcode:             q.Header.Opcode,
			RecursionDesired:   q.Header.RecursionDesired,
			RecursionAvailable: true,
			RCode:              rc,
		},
		Questions: q.Questions,
	}
	raw, err := resp.Encode()
	if err != nil {
		return nil
	}
	return raw
}
