package dnssim

import (
	"fmt"
	"io"
	"sort"

	"toplists/internal/snapshot"
)

const resolverSnapVersion = 1

// Snapshot writes the resolver's mutable state: virtual clock, counters,
// and the TTL cache in canonical (name, type) order, so two resolvers with
// equal state serialize byte-identically regardless of map iteration.
func (r *Resolver) Snapshot(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	keys := make([]cacheKey, 0, len(r.cache))
	for k := range r.cache {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].name != keys[b].name {
			return keys[a].name < keys[b].name
		}
		return keys[a].t < keys[b].t
	})

	var e snapshot.Encoder
	e.Uvarint(resolverSnapVersion)
	e.Varint(r.now)
	e.Varint(r.hits)
	e.Varint(r.misses)
	e.Varint(r.nxdomain)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		ent := r.cache[k]
		e.String(k.name)
		e.Uvarint(uint64(k.t))
		e.Bool(ent.exists)
		e.Varint(ent.expires)
		e.Uvarint(uint64(len(ent.rrs)))
		for _, rr := range ent.rrs {
			e.String(rr.Name)
			e.Uvarint(uint64(rr.Type))
			e.Uvarint(uint64(rr.Class))
			e.Uvarint(uint64(rr.TTL))
			e.Bytes(rr.Data)
		}
	}
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces the resolver's mutable state from a Snapshot payload.
func (r *Resolver) Restore(rd io.Reader) error {
	b, err := io.ReadAll(rd)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	ver := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if ver != resolverSnapVersion {
		return fmt.Errorf("%w: Resolver payload v%d, this build reads v%d", snapshot.ErrVersion, ver, resolverSnapVersion)
	}
	now := d.Varint()
	hits := d.Varint()
	misses := d.Varint()
	nxdomain := d.Varint()
	nEntries := d.Len(4)
	cache := make(map[cacheKey]cacheEntry, nEntries)
	for i := 0; i < nEntries; i++ {
		var k cacheKey
		k.name = d.String()
		k.t = Type(d.Uvarint())
		var ent cacheEntry
		ent.exists = d.Bool()
		ent.expires = d.Varint()
		nRRs := d.Len(4)
		if d.Err() != nil {
			return d.Err()
		}
		if nRRs > 0 {
			ent.rrs = make([]RR, nRRs)
			for j := range ent.rrs {
				ent.rrs[j].Name = d.String()
				ent.rrs[j].Type = Type(d.Uvarint())
				ent.rrs[j].Class = uint16(d.Uvarint())
				ent.rrs[j].TTL = uint32(d.Uvarint())
				ent.rrs[j].Data = d.Bytes()
			}
		}
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := cache[k]; dup {
			return fmt.Errorf("%w: Resolver cache key (%s, %v) duplicated", snapshot.ErrCorrupt, k.name, k.t)
		}
		cache[k] = ent
	}
	if err := d.Finish(); err != nil {
		return err
	}

	r.mu.Lock()
	r.now = now
	r.hits = hits
	r.misses = misses
	r.nxdomain = nxdomain
	r.cache = cache
	r.mu.Unlock()
	return nil
}
