package dnssim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// MessageHandler answers one raw DNS message for a client; a nil return
// drops the query. Resolver.HandleMessage is the canonical implementation,
// and FaultHandler wraps any handler with deterministic fault injection.
type MessageHandler interface {
	HandleMessage(clientIP uint32, raw []byte) []byte
}

// Server serves a MessageHandler over UDP. It is the wire front-end used
// by cmd/dnsload and the networking tests; the bulk simulation feeds the
// resolver in-process for speed.
type Server struct {
	handler MessageHandler

	mu   sync.Mutex
	conn net.PacketConn
	done chan struct{}
}

// NewServer wraps a resolver.
func NewServer(r *Resolver) *Server {
	return NewServerWithHandler(r)
}

// NewServerWithHandler wraps an arbitrary message handler (e.g. a
// FaultHandler around a resolver).
func NewServerWithHandler(h MessageHandler) *Server {
	return &Server{handler: h}
}

// Start begins serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. The server runs until Close.
func (s *Server) Start(addr string) (net.Addr, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnssim: listen: %w", err)
	}
	s.mu.Lock()
	s.conn = conn
	s.done = make(chan struct{})
	s.mu.Unlock()
	go s.serve(conn)
	return conn.LocalAddr(), nil
}

func (s *Server) serve(conn net.PacketConn) {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, peer, err := conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		resp := s.handler.HandleMessage(peerIP(peer), buf[:n])
		if resp != nil {
			// Oversized answers are truncated per RFC 1035; the client
			// retries over TCP.
			if len(resp) > maxUDPPayload {
				resp = truncateForUDP(resp)
			}
			// Best-effort: a dropped response is a normal UDP outcome.
			_, _ = conn.WriteTo(resp, peer)
		}
	}
}

func peerIP(a net.Addr) uint32 {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return 0
	}
	ip4 := ua.IP.To4()
	if ip4 == nil {
		return 0
	}
	return binary.BigEndian.Uint32(ip4)
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	conn, done := s.conn, s.done
	s.conn = nil
	s.mu.Unlock()
	if conn == nil {
		return nil
	}
	err := conn.Close()
	<-done
	return err
}

// Client is a stub resolver speaking UDP to a Server.
type Client struct {
	// Server is the resolver address.
	Server string
	// Timeout bounds each query attempt (default 2s).
	Timeout time.Duration
	// Retries is the number of additional attempts on timeout (default 2).
	Retries int

	mu     sync.Mutex
	nextID uint16
}

// ErrTimeout is returned when all attempts time out.
var ErrTimeout = errors.New("dnssim: query timed out")

// Query resolves (name, type) and returns the answer records.
func (c *Client) Query(ctx context.Context, name string, t Type) ([]RR, RCode, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	retries := c.Retries
	if retries == 0 {
		retries = 2
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	q := &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
	raw, err := q.Encode()
	if err != nil {
		return nil, 0, err
	}

	var lastErr error = ErrTimeout
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		m, err := c.attemptRaw(ctx, raw, id, timeout)
		if err == nil {
			return m.Answers, m.Header.RCode, nil
		}
		lastErr = err
	}
	return nil, 0, lastErr
}

// attemptRaw sends one UDP datagram and returns the first valid matching
// response message.
func (c *Client) attemptRaw(ctx context.Context, raw []byte, id uint16, timeout time.Duration) (*Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(raw); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return nil, ErrTimeout
			}
			return nil, err
		}
		m, err := Decode(buf[:n])
		if err != nil {
			continue // garbled datagram; keep waiting for a valid one
		}
		if m.Header.ID != id || !m.Header.Response {
			continue // stray response
		}
		return m, nil
	}
}
