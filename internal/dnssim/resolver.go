package dnssim

import (
	"sync"

	"toplists/internal/domain"
	"toplists/internal/world"
)

// Authority answers queries authoritatively. Implementations must be safe
// for concurrent use.
type Authority interface {
	// Lookup returns the records for (name, type) and whether the name
	// exists at all (for NXDOMAIN vs empty answer).
	Lookup(name string, t Type) (rrs []RR, exists bool)
}

// WorldAuthority serves the synthetic universe: every site hostname and
// infrastructure name resolves to a deterministic address with the site's
// configured TTL.
type WorldAuthority struct {
	w     *world.World
	hosts map[string]RR
}

// NewWorldAuthority indexes the world's hostnames.
func NewWorldAuthority(w *world.World) *WorldAuthority {
	a := &WorldAuthority{w: w, hosts: make(map[string]RR)}
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		for sub := range s.Subdomains {
			name := s.Hostname(sub)
			a.hosts[name] = ARecord(name, uint32(s.DNSTTL), siteIP(s.ID, uint8(sub)))
		}
	}
	for i, inf := range w.Infra {
		a.hosts[inf.FQDN] = ARecord(inf.FQDN, uint32(inf.TTL), 0xC0000000|uint32(i))
	}
	return a
}

// siteIP derives a stable fake address for a hostname.
func siteIP(site int32, sub uint8) uint32 {
	x := uint32(site)<<8 | uint32(sub)
	x ^= x << 13
	x *= 0x85ebca6b
	x ^= x >> 16
	// Stay out of multicast/reserved-looking space for realism.
	return 0x0A000000 | x&0x00ffffff
}

// Lookup implements Authority.
func (a *WorldAuthority) Lookup(name string, t Type) ([]RR, bool) {
	rr, ok := a.hosts[domain.Normalize(name)]
	if !ok {
		return nil, false
	}
	if t != TypeA {
		return nil, true // name exists, no records of that type
	}
	return []RR{rr}, true
}

// QueryLog receives one entry per query arriving at the resolver (i.e.
// post-client-cache, pre-resolver-cache): the vantage DNS-based top lists
// are computed from.
type QueryLog func(clientIP uint32, name string, cacheHit bool)

// Resolver is a recursive resolver with a TTL cache over an Authority.
// The clock is virtual: callers advance time explicitly, which keeps
// simulation runs deterministic and fast.
type Resolver struct {
	auth Authority
	log  QueryLog

	mu    sync.Mutex
	now   int64 // virtual seconds
	cache map[cacheKey]cacheEntry

	hits, misses, nxdomain int64
}

type cacheKey struct {
	name string
	t    Type
}

type cacheEntry struct {
	rrs     []RR
	exists  bool
	expires int64
}

// NewResolver builds a resolver over the authority. log may be nil.
func NewResolver(auth Authority, log QueryLog) *Resolver {
	return &Resolver{auth: auth, log: log, cache: make(map[cacheKey]cacheEntry)}
}

// Advance moves the virtual clock forward by d seconds.
func (r *Resolver) Advance(d int64) {
	r.mu.Lock()
	r.now += d
	r.mu.Unlock()
}

// SetTime sets the virtual clock.
func (r *Resolver) SetTime(t int64) {
	r.mu.Lock()
	r.now = t
	r.mu.Unlock()
}

// Resolve answers a question on behalf of clientIP, consulting the cache
// first. The returned RCode is NXDomain for nonexistent names.
func (r *Resolver) Resolve(clientIP uint32, name string, t Type) ([]RR, RCode) {
	name = domain.Normalize(name)
	key := cacheKey{name, t}

	r.mu.Lock()
	e, ok := r.cache[key]
	hit := ok && e.expires > r.now
	if hit {
		r.hits++
	} else {
		r.misses++
	}
	now := r.now
	r.mu.Unlock()

	if r.log != nil {
		r.log(clientIP, name, hit)
	}
	if hit {
		if !e.exists {
			return nil, RCodeNXDomain
		}
		return remainTTL(e.rrs, e.expires-now), RCodeNoError
	}

	rrs, exists := r.auth.Lookup(name, t)
	ttl := int64(300) // negative-cache and empty-answer TTL
	if len(rrs) > 0 {
		ttl = int64(rrs[0].TTL)
	}
	r.mu.Lock()
	r.cache[key] = cacheEntry{rrs: rrs, exists: exists, expires: now + ttl}
	if !exists {
		r.nxdomain++
	}
	r.mu.Unlock()

	if !exists {
		return nil, RCodeNXDomain
	}
	return rrs, RCodeNoError
}

// remainTTL rewrites record TTLs to the remaining cache lifetime.
func remainTTL(rrs []RR, remain int64) []RR {
	if remain < 0 {
		remain = 0
	}
	out := make([]RR, len(rrs))
	copy(out, rrs)
	for i := range out {
		out[i].TTL = uint32(remain)
	}
	return out
}

// Stats returns cumulative cache hit/miss/NXDOMAIN counters.
func (r *Resolver) Stats() (hits, misses, nxdomain int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses, r.nxdomain
}

// HandleMessage processes one wire-format query and returns the wire-format
// response, implementing the subset of DNS a stub client needs.
func (r *Resolver) HandleMessage(clientIP uint32, raw []byte) []byte {
	reply := func(m *Message) []byte {
		out, err := m.Encode()
		if err != nil {
			return nil
		}
		return out
	}
	q, err := Decode(raw)
	if err != nil || len(q.Questions) != 1 || q.Header.Response {
		h := Header{Response: true, RCode: RCodeFormErr}
		if err == nil {
			h.ID = q.Header.ID
		}
		return reply(&Message{Header: h})
	}
	question := q.Questions[0]
	rrs, rcode := r.Resolve(clientIP, question.Name, question.Type)
	return reply(&Message{
		Header: Header{
			ID:                 q.Header.ID,
			Response:           true,
			RecursionDesired:   q.Header.RecursionDesired,
			RecursionAvailable: true,
			RCode:              rcode,
		},
		Questions: []Question{question},
		Answers:   rrs,
	})
}
