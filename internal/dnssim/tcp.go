package dnssim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// DNS over TCP (RFC 1035 §4.2.2): messages are framed with a 2-byte length
// prefix. The server answers on the same connection until the client closes
// or errs; the client falls back to TCP automatically when a UDP response
// arrives truncated (TC bit set).

// maxUDPPayload is the classic 512-byte UDP limit that triggers truncation.
const maxUDPPayload = 512

// TCPServer serves a Resolver over TCP with length framing.
type TCPServer struct {
	resolver *Resolver

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewTCPServer wraps a resolver.
func NewTCPServer(r *Resolver) *TCPServer {
	return &TCPServer{resolver: r}
}

// Start begins serving on addr and returns the bound address.
func (s *TCPServer) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnssim: tcp listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	ip := peerIPTCP(conn.RemoteAddr())
	for {
		// A idle peer eventually gets disconnected, like real resolvers do.
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		raw, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.resolver.HandleMessage(ip, raw)
		if resp == nil {
			return
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func peerIPTCP(a net.Addr) uint32 {
	ta, ok := a.(*net.TCPAddr)
	if !ok {
		return 0
	}
	ip4 := ta.IP.To4()
	if ip4 == nil {
		return 0
	}
	return binary.BigEndian.Uint32(ip4)
}

// Close stops the listener and waits for in-flight connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	if ln == nil {
		return nil
	}
	err := ln.Close()
	s.wg.Wait()
	return err
}

// ErrFrameTooLarge is returned for length prefixes above the protocol cap.
var ErrFrameTooLarge = errors.New("dnssim: tcp frame exceeds 64KiB")

// readFrame reads one length-prefixed DNS message.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(lenBuf[:]))
	if n == 0 {
		return nil, ErrShortMessage
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed DNS message.
func writeFrame(w io.Writer, msg []byte) error {
	if len(msg) > 0xffff {
		return ErrFrameTooLarge
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// truncateForUDP rewrites an oversized response to an empty, TC-flagged one
// so the client knows to retry over TCP.
func truncateForUDP(resp []byte) []byte {
	m, err := Decode(resp)
	if err != nil {
		return resp
	}
	m.Answers = nil
	m.Header.Truncated = true
	out, err := m.Encode()
	if err != nil {
		return resp
	}
	return out
}

// QueryTCP resolves (name, type) over TCP against the given server.
func QueryTCP(ctx context.Context, server, name string, t Type) ([]RR, RCode, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, 0, err
		}
	}

	q := &Message{
		Header:    Header{ID: 1, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
	raw, err := q.Encode()
	if err != nil {
		return nil, 0, err
	}
	if err := writeFrame(conn, raw); err != nil {
		return nil, 0, err
	}
	respRaw, err := readFrame(conn)
	if err != nil {
		return nil, 0, err
	}
	resp, err := Decode(respRaw)
	if err != nil {
		return nil, 0, err
	}
	if !resp.Header.Response || resp.Header.ID != q.Header.ID {
		return nil, 0, errors.New("dnssim: mismatched TCP response")
	}
	return resp.Answers, resp.Header.RCode, nil
}

// QueryAuto issues the query over UDP and retries over TCP when the
// response arrives truncated, the standard resolver fallback.
func (c *Client) QueryAuto(ctx context.Context, name string, t Type) ([]RR, RCode, error) {
	rrs, rcode, truncated, err := c.queryDetectTruncation(ctx, name, t)
	if err != nil {
		return nil, 0, err
	}
	if !truncated {
		return rrs, rcode, nil
	}
	return QueryTCP(ctx, c.Server, name, t)
}

// queryDetectTruncation is Query, but surfaces the TC bit.
func (c *Client) queryDetectTruncation(ctx context.Context, name string, t Type) ([]RR, RCode, bool, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	retries := c.Retries
	if retries == 0 {
		retries = 2
	}
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	q := &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
	raw, err := q.Encode()
	if err != nil {
		return nil, 0, false, err
	}
	var lastErr error = ErrTimeout
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, err
		}
		msg, err := c.attemptRaw(ctx, raw, id, timeout)
		if err != nil {
			lastErr = err
			continue
		}
		return msg.Answers, msg.Header.RCode, msg.Header.Truncated, nil
	}
	return nil, 0, false, lastErr
}
