package dnssim

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"toplists/internal/world"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("frame = %v", got)
	}
}

func TestFrameErrors(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, make([]byte, 70000)); err != ErrFrameTooLarge {
		t.Errorf("oversized frame: %v", err)
	}
	// Zero-length frame is invalid.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0})
	if _, err := readFrame(&buf); err == nil {
		t.Error("zero frame accepted")
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{0, 5, 1, 2})
	if _, err := readFrame(&buf); err == nil {
		t.Error("short frame accepted")
	}
}

func TestTCPServerQuery(t *testing.T) {
	w, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	srv := NewTCPServer(r)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rrs, rcode, err := QueryTCP(ctx, addr.String(), w.Site(0).Domain, TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RCodeNoError || len(rrs) != 1 {
		t.Fatalf("rcode=%v answers=%d", rcode, len(rrs))
	}
	// Same connection semantics: a second query on a fresh dial also works.
	if _, rcode, err := QueryTCP(ctx, addr.String(), "missing.invalid", TypeA); err != nil || rcode != RCodeNXDomain {
		t.Fatalf("nxdomain over tcp: %v %v", err, rcode)
	}
}

// bigAuthority answers every A query with enough TXT padding to overflow
// the 512-byte UDP limit.
type bigAuthority struct{}

func (bigAuthority) Lookup(name string, typ Type) ([]RR, bool) {
	var rrs []RR
	for i := 0; i < 12; i++ {
		rrs = append(rrs, RR{
			Name: name, Type: TypeTXT, Class: ClassIN, TTL: 60,
			Data: bytes.Repeat([]byte{'x'}, 50),
		})
	}
	if typ == TypeA {
		rrs = append(rrs, ARecord(name, 60, 0x0A000001))
	}
	return rrs, true
}

func TestUDPTruncationAndTCPFallback(t *testing.T) {
	r := NewResolver(bigAuthority{}, nil)
	udp := NewServer(r)
	udpAddr, err := udp.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	// TCP server on the same resolver; the client must be pointed at the
	// same host:port for fallback, so bind TCP to the UDP port. Port reuse
	// across protocols is allowed.
	tcp := NewTCPServer(r)
	if _, err := tcp.Start(udpAddr.String()); err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	c := &Client{Server: udpAddr.String()}
	// Plain UDP query arrives truncated with no answers.
	_, _, truncated, err := c.queryDetectTruncation(ctx, "big.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("expected truncated UDP response")
	}

	// QueryAuto transparently falls back to TCP and gets the full answer.
	rrs, rcode, err := c.QueryAuto(ctx, "big.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RCodeNoError || len(rrs) != 13 {
		t.Fatalf("rcode=%v answers=%d, want 13", rcode, len(rrs))
	}
}

func TestQueryAutoNoFallbackForSmallAnswers(t *testing.T) {
	w, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	udp := NewServer(r)
	addr, err := udp.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c := &Client{Server: addr.String()}
	// No TCP server is running: if QueryAuto wrongly attempted fallback it
	// would fail.
	rrs, rcode, err := c.QueryAuto(ctx, w.Site(0).Domain, TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RCodeNoError || len(rrs) != 1 {
		t.Fatalf("rcode=%v answers=%d", rcode, len(rrs))
	}
}

func TestTruncateForUDP(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 9, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{ARecord("example.com", 60, 1)},
	}
	raw, _ := m.Encode()
	out, err := Decode(truncateForUDP(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Header.Truncated || len(out.Answers) != 0 {
		t.Fatalf("truncated = %+v", out)
	}
	if out.Header.ID != 9 || len(out.Questions) != 1 {
		t.Fatal("header/question lost in truncation")
	}
	// Garbage passes through unchanged rather than panicking.
	if got := truncateForUDP([]byte{1, 2}); !bytes.Equal(got, []byte{1, 2}) {
		t.Error("garbage not passed through")
	}
}

func TestTCPServerMalformedFrame(t *testing.T) {
	_, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	srv := NewTCPServer(r)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Garbage inside a valid frame: server answers FORMERR, stays up.
	if err := writeFrame(conn, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(resp)
	if err != nil || m.Header.RCode != RCodeFormErr {
		t.Fatalf("resp = %+v, %v", m, err)
	}
}

func TestWorldAuthorityUnderTCPLoad(t *testing.T) {
	w := world.Generate(world.Config{Seed: 77, NumSites: 200})
	r := NewResolver(NewWorldAuthority(w), nil)
	srv := NewTCPServer(r)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errc := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			for j := 0; j < 25; j++ {
				name := w.Site(int32((i*25 + j) % w.NumSites())).Domain
				if _, _, err := QueryTCP(ctx, addr.String(), name, TypeA); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(addr.String(), ":") {
		t.Fatal("sanity")
	}
}
