package dnssim

import (
	"bytes"
	"errors"
	"testing"

	"toplists/internal/snapshot"
	"toplists/internal/world"
)

func snapAuthority(t *testing.T) (*world.World, *WorldAuthority) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 11, NumSites: 200})
	return w, NewWorldAuthority(w)
}

// warmResolver drives a deterministic mixed query load: hits, misses,
// NXDOMAIN, and expiring entries.
func warmResolver(w *world.World, r *Resolver, n int) {
	for i := 0; i < n; i++ {
		s := w.Site(int32(i % w.NumSites()))
		r.Resolve(uint32(0x0A000000+i), s.Hostname(0), TypeA)
		if i%3 == 0 {
			r.Resolve(uint32(0x0A000000+i), s.Hostname(0), TypeA) // cache hit
		}
		if i%7 == 0 {
			r.Resolve(uint32(i), "no-such-host.invalid", TypeA) // NXDOMAIN
		}
		r.Advance(17)
	}
}

func resolverSnap(t *testing.T, r *Resolver) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestResolverSnapshotRoundTrip(t *testing.T) {
	w, auth := snapAuthority(t)
	r := NewResolver(auth, nil)
	warmResolver(w, r, 150)
	snap := resolverSnap(t, r)

	r2 := NewResolver(auth, nil)
	if err := r2.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}

	h1, m1, nx1 := r.Stats()
	h2, m2, nx2 := r2.Stats()
	if h1 != h2 || m1 != m2 || nx1 != nx2 {
		t.Fatalf("stats diverge: (%d,%d,%d) vs (%d,%d,%d)", h1, m1, nx1, h2, m2, nx2)
	}
	// A restored resolver must serialize byte-identically.
	if !bytes.Equal(snap, resolverSnap(t, r2)) {
		t.Fatal("restored resolver re-serializes differently")
	}
	// And behave identically on the next queries.
	for i := 0; i < 40; i++ {
		s := w.Site(int32(i * 3 % w.NumSites()))
		a1, c1 := r.Resolve(uint32(i), s.Hostname(0), TypeA)
		a2, c2 := r2.Resolve(uint32(i), s.Hostname(0), TypeA)
		if c1 != c2 || len(a1) != len(a2) {
			t.Fatalf("query %d diverges after restore: (%v,%d) vs (%v,%d)", i, c1, len(a1), c2, len(a2))
		}
		r.Advance(31)
		r2.Advance(31)
	}
}

func TestResolverRestoreRejectsDamage(t *testing.T) {
	w, auth := snapAuthority(t)
	r := NewResolver(auth, nil)
	warmResolver(w, r, 80)
	snap := resolverSnap(t, r)

	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
			r2 := NewResolver(auth, nil)
			if err := r2.Restore(bytes.NewReader(snap[:n])); err == nil {
				t.Fatalf("restore accepted %d/%d bytes", n, len(snap))
			}
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte{}, snap...)
		bad[0] = resolverSnapVersion + 1
		r2 := NewResolver(auth, nil)
		if err := r2.Restore(bytes.NewReader(bad)); !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("version skew error = %v, want ErrVersion", err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte{}, snap...), 0xFF)
		r2 := NewResolver(auth, nil)
		if err := r2.Restore(bytes.NewReader(bad)); err == nil {
			t.Fatal("restore accepted trailing garbage")
		}
	})
}

func poolSnap(t *testing.T, p *Pool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestPool(auth Authority) *Pool {
	return NewPool(auth, []string{"global", "eu-central", "ap-south"}, nil)
}

// warmPool gives each vantage resolver a different cache history.
func warmPool(w *world.World, p *Pool) {
	for vi, name := range p.Names() {
		r, _ := p.Resolver(name)
		warmResolver(w, r, 40+30*vi)
	}
}

func TestPoolSnapshotRoundTrip(t *testing.T) {
	w, auth := snapAuthority(t)
	p := newTestPool(auth)
	warmPool(w, p)
	snap := poolSnap(t, p)

	p2 := newTestPool(auth)
	if err := p2.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, poolSnap(t, p2)) {
		t.Fatal("restored pool re-serializes differently")
	}
	for _, name := range p.Names() {
		r1, _ := p.Resolver(name)
		r2, _ := p2.Resolver(name)
		h1, m1, nx1 := r1.Stats()
		h2, m2, nx2 := r2.Stats()
		if h1 != h2 || m1 != m2 || nx1 != nx2 {
			t.Fatalf("vantage %s stats diverge: (%d,%d,%d) vs (%d,%d,%d)", name, h1, m1, nx1, h2, m2, nx2)
		}
	}
}

func TestPoolRestoreRejectsShapeMismatch(t *testing.T) {
	w, auth := snapAuthority(t)
	p := newTestPool(auth)
	warmPool(w, p)
	snap := poolSnap(t, p)

	t.Run("wrong-count", func(t *testing.T) {
		p2 := NewPool(auth, []string{"global"}, nil)
		if err := p2.Restore(bytes.NewReader(snap)); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("count mismatch error = %v, want ErrCorrupt", err)
		}
	})
	t.Run("wrong-names", func(t *testing.T) {
		p2 := NewPool(auth, []string{"global", "sa-east", "ap-south"}, nil)
		if err := p2.Restore(bytes.NewReader(snap)); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("name mismatch error = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		p2 := newTestPool(auth)
		if err := p2.Restore(bytes.NewReader(snap[:len(snap)/3])); err == nil {
			t.Fatal("restore accepted truncated pool payload")
		}
	})
}

func TestPoolVantagesDivergeIndependently(t *testing.T) {
	w, auth := snapAuthority(t)
	p := newTestPool(auth)
	g, _ := p.Resolver("global")
	e, _ := p.Resolver("eu-central")

	s := w.Site(0)
	g.Resolve(1, s.Hostname(0), TypeA) // miss, fills global's cache only
	_, gm1, _ := g.Stats()
	if gm1 != 1 {
		t.Fatalf("global misses = %d, want 1", gm1)
	}
	if _, em, _ := func() (int64, int64, int64) { return e.Stats() }(); em != 0 {
		t.Fatalf("eu-central misses = %d before any query, want 0", em)
	}
	e.Resolve(1, s.Hostname(0), TypeA)
	if _, em, _ := e.Stats(); em != 1 {
		t.Fatalf("eu-central should miss on its own cold cache, misses = %d", em)
	}
	gh, _, _ := g.Stats()
	g.Resolve(2, s.Hostname(0), TypeA)
	if gh2, _, _ := g.Stats(); gh2 != gh+1 {
		t.Fatal("global second lookup should hit its warm cache")
	}
}
