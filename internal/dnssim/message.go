// Package dnssim implements a minimal DNS substrate: wire-format message
// encoding/decoding, an authoritative+caching resolver, and a UDP server
// and stub client.
//
// The paper's second- and third-best lists (Cisco Umbrella and Secrank) are
// computed from recursive-resolver query logs, not web traffic. This
// package is that substrate: the simulated universe is served by an
// authoritative backend, clients resolve through a caching recursive
// resolver, and the resolver's query log is the vantage point the Umbrella
// and Secrank providers rank from. TTL-driven cache suppression — one of
// the mechanisms the paper cites for DNS lists' poor rank fidelity
// (Section 5.2) — falls out of the cache implementation.
package dnssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS record type.
type Type uint16

// Supported record types.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used.
const ClassIN uint16 = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
)

// Header is the fixed 12-byte DNS header (flags unpacked).
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a DNS question.
type Question struct {
	Name  string
	Type  Type
	Class uint16
}

// RR is a resource record.
type RR struct {
	Name  string
	Type  Type
	Class uint16
	TTL   uint32
	Data  []byte // type-specific RDATA (4-byte IP for A, encoded name for CNAME/NS, raw for TXT)
}

// Message is a complete DNS message.
type Message struct {
	Header    Header
	Questions []Question
	Answers   []RR
}

// Wire-format errors.
var (
	ErrShortMessage = errors.New("dnssim: short message")
	ErrBadName      = errors.New("dnssim: malformed name")
	ErrLoop         = errors.New("dnssim: compression pointer loop")
	ErrNameTooLong  = errors.New("dnssim: name exceeds 255 octets")
)

// appendName encodes a domain name in uncompressed wire format.
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		if len(name) > 253 {
			return nil, ErrNameTooLong
		}
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, ErrBadName
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// parseName decodes a (possibly compressed) name starting at off, returning
// the name and the offset just past it in the original stream.
func parseName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	end := off
	hops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrShortMessage
		}
		l := int(msg[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			name := sb.String()
			if len(name) > 253 {
				return "", 0, ErrNameTooLong
			}
			return name, end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(msg[off:]) & 0x3fff)
			if !jumped {
				end = off + 2
				jumped = true
			}
			hops++
			if hops > 32 || ptr >= len(msg) {
				return "", 0, ErrLoop
			}
			off = ptr
		case l&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+l > len(msg) {
				return "", 0, ErrShortMessage
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			off += 1 + l
		}
	}
}

func (h *Header) flags() uint16 {
	var f uint16
	if h.Response {
		f |= 1 << 15
	}
	f |= uint16(h.Opcode&0xf) << 11
	if h.Authoritative {
		f |= 1 << 10
	}
	if h.Truncated {
		f |= 1 << 9
	}
	if h.RecursionDesired {
		f |= 1 << 8
	}
	if h.RecursionAvailable {
		f |= 1 << 7
	}
	f |= uint16(h.RCode) & 0xf
	return f
}

func headerFromFlags(id, f uint16) Header {
	return Header{
		ID:                 id,
		Response:           f&(1<<15) != 0,
		Opcode:             uint8(f >> 11 & 0xf),
		Authoritative:      f&(1<<10) != 0,
		Truncated:          f&(1<<9) != 0,
		RecursionDesired:   f&(1<<8) != 0,
		RecursionAvailable: f&(1<<7) != 0,
		RCode:              RCode(f & 0xf),
	}
}

// Encode serializes the message without name compression (always valid).
func (m *Message) Encode() ([]byte, error) {
	return m.encode(nil)
}

// EncodeCompressed serializes the message using RFC 1035 §4.1.4 name
// compression: repeated names (and repeated suffixes) become two-byte
// pointers to their first occurrence. Decode understands both forms.
func (m *Message) EncodeCompressed() ([]byte, error) {
	return m.encode(make(map[string]int))
}

func (m *Message) encode(offsets map[string]int) ([]byte, error) {
	b := make([]byte, 12, 128)
	binary.BigEndian.PutUint16(b[0:], m.Header.ID)
	binary.BigEndian.PutUint16(b[2:], m.Header.flags())
	binary.BigEndian.PutUint16(b[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(b[6:], uint16(len(m.Answers)))
	// NSCOUNT and ARCOUNT remain zero.
	var err error
	writeName := func(name string) error {
		if offsets == nil {
			b, err = appendName(b, name)
			return err
		}
		b, err = appendNameCompressed(b, name, offsets)
		return err
	}
	for _, q := range m.Questions {
		if err := writeName(q.Name); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, uint16(q.Type))
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, rr := range m.Answers {
		if err := writeName(rr.Name); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, uint16(rr.Type))
		b = binary.BigEndian.AppendUint16(b, rr.Class)
		b = binary.BigEndian.AppendUint32(b, rr.TTL)
		if len(rr.Data) > 0xffff {
			return nil, errors.New("dnssim: rdata too long")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(rr.Data)))
		b = append(b, rr.Data...)
	}
	return b, nil
}

// appendNameCompressed encodes a name, replacing any suffix already present
// in the message with a compression pointer and recording new suffix
// offsets for later names.
func appendNameCompressed(b []byte, name string, offsets map[string]int) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	rest := name
	for rest != "" {
		if off, ok := offsets[rest]; ok && off <= 0x3fff {
			return binary.BigEndian.AppendUint16(b, 0xc000|uint16(off)), nil
		}
		label, remainder, _ := strings.Cut(rest, ".")
		if len(label) == 0 || len(label) > 63 {
			return nil, ErrBadName
		}
		if len(b) <= 0x3fff {
			offsets[rest] = len(b)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
		rest = remainder
	}
	return append(b, 0), nil
}

// Decode parses a wire-format message. Authority and additional sections
// are tolerated but discarded.
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrShortMessage
	}
	m := &Message{
		Header: headerFromFlags(binary.BigEndian.Uint16(b[0:]), binary.BigEndian.Uint16(b[2:])),
	}
	qd := int(binary.BigEndian.Uint16(b[4:]))
	an := int(binary.BigEndian.Uint16(b[6:]))
	ns := int(binary.BigEndian.Uint16(b[8:]))
	ar := int(binary.BigEndian.Uint16(b[10:]))
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(b) {
			return nil, ErrShortMessage
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(b[next:])),
			Class: binary.BigEndian.Uint16(b[next+2:]),
		})
		off = next + 4
	}
	for i := 0; i < an+ns+ar; i++ {
		name, next, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		if next+10 > len(b) {
			return nil, ErrShortMessage
		}
		rr := RR{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(b[next:])),
			Class: binary.BigEndian.Uint16(b[next+2:]),
			TTL:   binary.BigEndian.Uint32(b[next+4:]),
		}
		rdlen := int(binary.BigEndian.Uint16(b[next+8:]))
		if next+10+rdlen > len(b) {
			return nil, ErrShortMessage
		}
		rr.Data = append([]byte(nil), b[next+10:next+10+rdlen]...)
		off = next + 10 + rdlen
		if i < an {
			m.Answers = append(m.Answers, rr)
		}
	}
	return m, nil
}

// ARecord builds an A record for a 4-byte IPv4 address given as uint32.
func ARecord(name string, ttl uint32, ip uint32) RR {
	var d [4]byte
	binary.BigEndian.PutUint32(d[:], ip)
	return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, Data: d[:]}
}

// AIP extracts the IPv4 address from an A record.
func AIP(rr RR) (uint32, error) {
	if rr.Type != TypeA || len(rr.Data) != 4 {
		return 0, fmt.Errorf("dnssim: not an A record: %v/%d bytes", rr.Type, len(rr.Data))
	}
	return binary.BigEndian.Uint32(rr.Data), nil
}
