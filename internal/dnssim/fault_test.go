package dnssim

import (
	"context"
	"testing"
	"time"

	"toplists/internal/faults"
)

// rawQuery encodes one A query for name with the given ID.
func rawQuery(t *testing.T, id uint16, name string) []byte {
	t.Helper()
	q := &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
	}
	raw, err := q.Encode()
	if err != nil {
		t.Fatalf("encode query: %v", err)
	}
	return raw
}

// TestFaultHandlerInjectsAllKinds drives enough distinct names through a
// high-rate handler to observe every DNS fault kind, and checks the shape
// of each injected response.
func TestFaultHandlerInjectsAllKinds(t *testing.T) {
	w, auth := testAuthority(t)
	f := &FaultHandler{
		Inner: NewResolver(auth, nil),
		Plan:  &faults.Plan{Seed: 5, Rate: 0.9},
	}

	var drops, servfail, nxdomain, truncated, clean int
	for i := 0; i < w.NumSites(); i++ {
		name := w.Site(int32(i)).Domain
		resp := f.HandleMessage(1, rawQuery(t, uint16(i+1), name))
		if resp == nil {
			drops++
			continue
		}
		m, err := Decode(resp)
		if err != nil {
			t.Fatalf("%s: undecodable response: %v", name, err)
		}
		if m.Header.ID != uint16(i+1) || !m.Header.Response {
			t.Fatalf("%s: response header does not match query: %+v", name, m.Header)
		}
		switch {
		case m.Header.RCode == RCodeServFail:
			servfail++
		case m.Header.RCode == RCodeNXDomain:
			nxdomain++
		case m.Header.Truncated:
			truncated++
		default:
			if len(m.Answers) == 0 {
				t.Fatalf("%s: clean response carries no answers", name)
			}
			clean++
		}
	}
	for what, n := range map[string]int{
		"drop": drops, "servfail": servfail, "nxdomain": nxdomain,
		"truncated": truncated, "clean": clean,
	} {
		if n == 0 {
			t.Errorf("no %s outcomes over %d names at rate 0.9", what, w.NumSites())
		}
	}
}

// TestFaultHandlerDeterministicReplay: two handlers over the same plan
// replaying the same query sequence inject byte-identical responses — the
// per-name attempt counters are part of the replayed state, not shared
// mutable globals.
func TestFaultHandlerDeterministicReplay(t *testing.T) {
	_, auth := testAuthority(t)
	run := func() [][]byte {
		f := &FaultHandler{
			Inner: NewResolver(auth, nil),
			Plan:  &faults.Plan{Seed: 11, Rate: 0.5},
		}
		var out [][]byte
		for rep := 0; rep < 3; rep++ {
			for i := 0; i < 50; i++ {
				name := "host-" + string(rune('a'+i%26)) + ".example"
				out = append(out, f.HandleMessage(1, rawQuery(t, uint16(i+1), name)))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("response %d differs between identical replays", i)
		}
	}
}

// TestFaultHandlerRetriesRollFresh: consecutive queries of one name get
// distinct attempt keys, so a retrying client is not doomed to the same
// fault forever.
func TestFaultHandlerRetriesRollFresh(t *testing.T) {
	w, auth := testAuthority(t)
	name := w.Site(0).Domain
	f := &FaultHandler{
		Inner: NewResolver(auth, nil),
		Plan:  &faults.Plan{Seed: 3, Rate: 0.5},
	}
	for attempt := 0; attempt < 64; attempt++ {
		resp := f.HandleMessage(1, rawQuery(t, uint16(attempt+1), name))
		if resp == nil {
			continue
		}
		m, err := Decode(resp)
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.RCode == RCodeNoError && !m.Header.Truncated && len(m.Answers) > 0 {
			return // got through
		}
	}
	t.Fatal("64 retries at rate 0.5 never produced a clean answer")
}

// TestFaultHandlerRateZeroPassThrough: a disabled plan delegates untouched.
func TestFaultHandlerRateZeroPassThrough(t *testing.T) {
	w, auth := testAuthority(t)
	inner := NewResolver(auth, nil)
	f := &FaultHandler{Inner: NewResolver(auth, nil), Plan: &faults.Plan{Seed: 1}}
	for i := 0; i < 40; i++ {
		name := w.Site(int32(i)).Domain
		raw := rawQuery(t, uint16(i+1), name)
		want := inner.HandleMessage(1, raw)
		got := f.HandleMessage(1, raw)
		if string(got) != string(want) {
			t.Fatalf("%s: rate-0 handler altered the response", name)
		}
	}
}

// TestServerWithFaultHandler runs the wire path end to end: a stub client
// against a faulty UDP server still resolves (its retries roll fresh
// attempt keys), and injected SERVFAILs surface as RCodes.
func TestServerWithFaultHandler(t *testing.T) {
	w, auth := testAuthority(t)
	f := &FaultHandler{
		Inner: NewResolver(auth, nil),
		Plan:  &faults.Plan{Seed: 21, Rate: 0.3},
	}
	srv := NewServerWithHandler(f)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Server: addr.String(), Timeout: 250 * time.Millisecond, Retries: 8}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	resolved, servfails := 0, 0
	for i := 0; i < 25; i++ {
		name := w.Site(int32(i)).Domain
		rrs, rc, err := c.Query(ctx, name, TypeA)
		switch {
		case err != nil:
			// All retries eaten by drops/truncation: acceptable weather.
		case rc == RCodeServFail || rc == RCodeNXDomain:
			servfails++
		case len(rrs) > 0:
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("no queries resolved through the faulty server")
	}
	t.Logf("resolved %d/25, error rcodes %d", resolved, servfails)
}
