package dnssim

import (
	"context"
	"net"
	"testing"
	"time"

	"toplists/internal/world"
)

func testAuthority(t testing.TB) (*world.World, *WorldAuthority) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 41, NumSites: 300})
	return w, NewWorldAuthority(w)
}

func TestAuthorityLookup(t *testing.T) {
	w, auth := testAuthority(t)
	s := w.Site(0)
	rrs, exists := auth.Lookup(s.Domain, TypeA)
	if !exists || len(rrs) != 1 {
		t.Fatalf("apex lookup: %v, %v", rrs, exists)
	}
	if rrs[0].TTL != uint32(s.DNSTTL) {
		t.Errorf("TTL = %d, want %d", rrs[0].TTL, s.DNSTTL)
	}
	if _, exists := auth.Lookup("definitely-not-a-site.example", TypeA); exists {
		t.Error("nonexistent name resolved")
	}
	// Name exists but type not served.
	if rrs, exists := auth.Lookup(s.Domain, TypeAAAA); !exists || len(rrs) != 0 {
		t.Errorf("AAAA lookup = %v, %v; want empty answer, exists", rrs, exists)
	}
	// Infra names resolve too.
	if _, exists := auth.Lookup(w.Infra[0].FQDN, TypeA); !exists {
		t.Error("infra name did not resolve")
	}
}

func TestResolverCaching(t *testing.T) {
	w, auth := testAuthority(t)
	var logged []bool
	r := NewResolver(auth, func(ip uint32, name string, hit bool) {
		logged = append(logged, hit)
	})
	name := w.Site(0).Domain
	ttl := int64(w.Site(0).DNSTTL)

	if _, rc := r.Resolve(1, name, TypeA); rc != RCodeNoError {
		t.Fatalf("rcode = %v", rc)
	}
	if _, rc := r.Resolve(2, name, TypeA); rc != RCodeNoError {
		t.Fatalf("rcode = %v", rc)
	}
	r.Advance(ttl + 1)
	r.Resolve(3, name, TypeA)

	want := []bool{false, true, false} // miss, hit, expired->miss
	if len(logged) != len(want) {
		t.Fatalf("logged %v", logged)
	}
	for i := range want {
		if logged[i] != want[i] {
			t.Fatalf("logged = %v, want %v", logged, want)
		}
	}
	hits, misses, _ := r.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestResolverDecrementsTTL(t *testing.T) {
	w, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	name := w.Site(0).Domain
	full := uint32(w.Site(0).DNSTTL)
	r.Resolve(1, name, TypeA)
	r.Advance(int64(full / 2))
	rrs, _ := r.Resolve(1, name, TypeA)
	if len(rrs) != 1 {
		t.Fatal("no answer")
	}
	if rrs[0].TTL >= full {
		t.Errorf("cached TTL %d not decremented from %d", rrs[0].TTL, full)
	}
}

func TestResolverNXDomainNegativeCache(t *testing.T) {
	_, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	if _, rc := r.Resolve(1, "nope.invalid", TypeA); rc != RCodeNXDomain {
		t.Fatalf("rcode = %v", rc)
	}
	if _, rc := r.Resolve(1, "nope.invalid", TypeA); rc != RCodeNXDomain {
		t.Fatalf("cached rcode = %v", rc)
	}
	hits, _, nx := r.Stats()
	if hits != 1 {
		t.Errorf("negative answer not cached: hits = %d", hits)
	}
	if nx != 1 {
		t.Errorf("nxdomain counter = %d", nx)
	}
}

func TestHandleMessage(t *testing.T) {
	w, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	q := &Message{
		Header:    Header{ID: 42, RecursionDesired: true},
		Questions: []Question{{Name: w.Site(0).Domain, Type: TypeA, Class: ClassIN}},
	}
	raw, _ := q.Encode()
	resp, err := Decode(r.HandleMessage(7, raw))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Response || resp.Header.ID != 42 || resp.Header.RCode != RCodeNoError {
		t.Fatalf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	// Malformed input gets FORMERR, not a crash.
	bad := r.HandleMessage(7, []byte{1, 2, 3})
	if bad == nil {
		t.Fatal("no response to garbage")
	}
	badResp, err := Decode(bad)
	if err != nil || badResp.Header.RCode != RCodeFormErr {
		t.Fatalf("garbage response = %+v, %v", badResp, err)
	}
}

func TestServerOverUDP(t *testing.T) {
	w, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	srv := NewServer(r)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Server: addr.String(), Timeout: 2 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	rrs, rcode, err := c.Query(ctx, w.Site(0).Domain, TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RCodeNoError || len(rrs) != 1 {
		t.Fatalf("rcode %v, %d answers", rcode, len(rrs))
	}
	ip, err := AIP(rrs[0])
	if err != nil || ip == 0 {
		t.Fatalf("AIP = %x, %v", ip, err)
	}

	_, rcode, err = c.Query(ctx, "missing.invalid", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RCodeNXDomain {
		t.Fatalf("rcode = %v, want NXDOMAIN", rcode)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	w, auth := testAuthority(t)
	r := NewResolver(auth, nil)
	srv := NewServer(r)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const workers = 8
	errc := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			c := &Client{Server: addr.String()}
			for j := 0; j < 20; j++ {
				name := w.Site(int32((i*20 + j) % w.NumSites())).Domain
				if _, _, err := c.Query(ctx, name, TypeA); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < workers; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientTimeout(t *testing.T) {
	// A UDP listener that never replies.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := &Client{Server: conn.LocalAddr().String(), Timeout: 50 * time.Millisecond, Retries: 1}
	_, _, err = c.Query(context.Background(), "example.com", TypeA)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}
