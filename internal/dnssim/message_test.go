package dnssim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{
			ID: 0x1234, Response: true, Authoritative: true,
			RecursionDesired: true, RecursionAvailable: true,
			RCode: RCodeNoError,
		},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			ARecord("www.example.com", 300, 0x0A0B0C0D),
			{Name: "example.com", Type: TypeTXT, Class: ClassIN, TTL: 60, Data: []byte("hello")},
		},
	}
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != m.Header {
		t.Errorf("header = %+v, want %+v", got.Header, m.Header)
	}
	if len(got.Questions) != 1 || got.Questions[0] != m.Questions[0] {
		t.Errorf("questions = %+v", got.Questions)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	ip, err := AIP(got.Answers[0])
	if err != nil || ip != 0x0A0B0C0D {
		t.Errorf("AIP = %x, %v", ip, err)
	}
	if !bytes.Equal(got.Answers[1].Data, []byte("hello")) {
		t.Errorf("TXT data = %q", got.Answers[1].Data)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	err := quick.Check(func(id uint16, resp, aa, tc, rd, ra bool, op, rc uint8) bool {
		h := Header{
			ID: id, Response: resp, Opcode: op & 0xf, Authoritative: aa,
			Truncated: tc, RecursionDesired: rd, RecursionAvailable: ra,
			RCode: RCode(rc & 0xf),
		}
		return headerFromFlags(id, h.flags()) == h
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	err := quick.Check(func(labels []uint8) bool {
		if len(labels) == 0 || len(labels) > 5 {
			return true
		}
		parts := make([]string, len(labels))
		for i, l := range labels {
			parts[i] = strings.Repeat("a", int(l%20)+1)
		}
		name := strings.Join(parts, ".")
		b, err := appendName(nil, name)
		if err != nil {
			return false
		}
		got, off, err := parseName(b, 0)
		return err == nil && got == name && off == len(b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRootName(t *testing.T) {
	b, err := appendName(nil, "")
	if err != nil || len(b) != 1 || b[0] != 0 {
		t.Fatalf("root encode = %v, %v", b, err)
	}
	name, off, err := parseName(b, 0)
	if err != nil || name != "" || off != 1 {
		t.Fatalf("root decode = %q, %d, %v", name, off, err)
	}
}

func TestNameErrors(t *testing.T) {
	if _, err := appendName(nil, strings.Repeat("a", 64)+".com"); err == nil {
		t.Error("64-byte label must fail")
	}
	if _, err := appendName(nil, strings.Repeat("abcdefgh.", 32)+"com"); err == nil {
		t.Error("overlong name must fail")
	}
	if _, err := appendName(nil, "a..b"); err == nil {
		t.Error("empty label must fail")
	}
}

func TestCompressionPointerDecode(t *testing.T) {
	// Hand-build a message whose answer name is a pointer to the question
	// name, the classic compression layout.
	m := &Message{
		Header:    Header{ID: 7},
		Questions: []Question{{Name: "a.example.com", Type: TypeA, Class: ClassIN}},
	}
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Append an answer with a compression pointer to offset 12.
	raw[7] = 1 // ANCOUNT = 1
	raw = append(raw, 0xc0, 12)
	raw = append(raw, 0, 1, 0, 1) // TYPE A, CLASS IN
	raw = append(raw, 0, 0, 1, 44)
	raw = append(raw, 0, 4)
	raw = append(raw, 10, 1, 2, 3)
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Name != "a.example.com" {
		t.Fatalf("answers = %+v", got.Answers)
	}
	if got.Answers[0].TTL != 300 {
		t.Errorf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestPointerLoopRejected(t *testing.T) {
	raw := make([]byte, 12)
	raw[5] = 1                  // QDCOUNT = 1
	raw = append(raw, 0xc0, 12) // pointer to itself
	raw = append(raw, 0, 1, 0, 1)
	if _, err := Decode(raw); err == nil {
		t.Fatal("pointer loop must be rejected")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil must fail")
	}
	if _, err := Decode(make([]byte, 11)); err == nil {
		t.Error("11 bytes must fail")
	}
	// Truncated question.
	raw := make([]byte, 12)
	raw[5] = 1
	raw = append(raw, 3, 'a', 'b') // label promises 3 bytes, has 2
	if _, err := Decode(raw); err == nil {
		t.Error("truncated label must fail")
	}
}

func TestDecodeFuzzSafety(t *testing.T) {
	// Decode must never panic on arbitrary input.
	err := quick.Check(func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAIPErrors(t *testing.T) {
	if _, err := AIP(RR{Type: TypeTXT, Data: []byte{1, 2, 3, 4}}); err == nil {
		t.Error("wrong type must fail")
	}
	if _, err := AIP(RR{Type: TypeA, Data: []byte{1, 2}}); err == nil {
		t.Error("short data must fail")
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeCNAME.String() != "CNAME" {
		t.Error("type names")
	}
	if Type(999).String() != "TYPE999" {
		t.Error("unknown type format")
	}
}

func BenchmarkEncode(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{ARecord("www.example.com", 300, 0x01020304)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{ARecord("www.example.com", 300, 0x01020304)},
	}
	raw, _ := m.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncodeCompressedRoundTrip(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 5, Response: true},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			ARecord("www.example.com", 300, 0x01020304),
			ARecord("mail.example.com", 300, 0x01020305),
			ARecord("example.com", 300, 0x01020306),
		},
	}
	flat, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	packed, err := m.EncodeCompressed()
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(flat) {
		t.Errorf("compressed %d bytes not smaller than flat %d", len(packed), len(flat))
	}
	got, err := Decode(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 3 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	want := []string{"www.example.com", "mail.example.com", "example.com"}
	for i, rr := range got.Answers {
		if rr.Name != want[i] {
			t.Errorf("answer %d name = %q, want %q", i, rr.Name, want[i])
		}
	}
}

func TestEncodeCompressedProperty(t *testing.T) {
	// Compressed and flat encodings decode to identical messages for
	// arbitrary label structures sharing suffixes.
	err := quick.Check(func(a, b uint8, n uint8) bool {
		base := strings.Repeat(string(rune('a'+a%26)), int(a%8)+1) + ".example.org"
		m := &Message{
			Header:    Header{ID: 1, Response: true},
			Questions: []Question{{Name: base, Type: TypeA, Class: ClassIN}},
		}
		for i := 0; i < int(n%5)+1; i++ {
			sub := strings.Repeat(string(rune('a'+b%26)), i+1) + "." + base
			m.Answers = append(m.Answers, ARecord(sub, 60, uint32(i)))
		}
		flat, err1 := m.Encode()
		packed, err2 := m.EncodeCompressed()
		if err1 != nil || err2 != nil {
			return false
		}
		d1, err1 := Decode(flat)
		d2, err2 := Decode(packed)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(d1.Answers) != len(d2.Answers) {
			return false
		}
		for i := range d1.Answers {
			if d1.Answers[i].Name != d2.Answers[i].Name {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
