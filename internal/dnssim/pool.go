package dnssim

import (
	"bytes"
	"fmt"
	"io"

	"toplists/internal/snapshot"
)

// Pool is a set of per-vantage resolvers over one shared authority. Each
// vantage point runs its own recursive resolver, so cache warmth — and
// therefore the DNS-based view of popularity — diverges between vantages
// even though the authoritative data is identical.
type Pool struct {
	names []string
	res   map[string]*Resolver
}

// NewPool builds one resolver per vantage name, in the given order (the
// canonical serialization order). log may be nil; it receives the vantage
// name alongside each query's log entry.
func NewPool(auth Authority, vantages []string, log func(vantage string, clientIP uint32, name string, cacheHit bool)) *Pool {
	p := &Pool{res: make(map[string]*Resolver, len(vantages))}
	for _, v := range vantages {
		if _, dup := p.res[v]; dup {
			continue
		}
		var ql QueryLog
		if log != nil {
			vn := v
			ql = func(clientIP uint32, name string, cacheHit bool) {
				log(vn, clientIP, name, cacheHit)
			}
		}
		p.names = append(p.names, v)
		p.res[v] = NewResolver(auth, ql)
	}
	return p
}

// Names returns the vantage names in canonical order.
func (p *Pool) Names() []string { return p.names }

// Resolver returns the vantage's resolver.
func (p *Pool) Resolver(vantage string) (*Resolver, bool) {
	r, ok := p.res[vantage]
	return r, ok
}

// Advance moves every resolver's virtual clock forward by d seconds.
func (p *Pool) Advance(d int64) {
	for _, name := range p.names {
		p.res[name].Advance(d)
	}
}

// SetTime sets every resolver's virtual clock.
func (p *Pool) SetTime(t int64) {
	for _, name := range p.names {
		p.res[name].SetTime(t)
	}
}

const poolSnapVersion = 1

// Snapshot writes every resolver's state in canonical vantage order, each
// length-prefixed and tagged with its vantage name for cross-validation
// on restore.
func (p *Pool) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(poolSnapVersion)
	e.Uvarint(uint64(len(p.names)))
	for _, name := range p.names {
		var buf bytes.Buffer
		if err := p.res[name].Snapshot(&buf); err != nil {
			return fmt.Errorf("dnssim: pool resolver %q: %w", name, err)
		}
		e.String(name)
		e.Bytes(buf.Bytes())
	}
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces every resolver's state from a Snapshot payload. The
// snapshot must list exactly this pool's vantages, in order; the shape is
// validated entry by entry before the named resolver's state is replaced.
func (p *Pool) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	ver := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if ver != poolSnapVersion {
		return fmt.Errorf("%w: Pool payload v%d, this build reads v%d", snapshot.ErrVersion, ver, poolSnapVersion)
	}
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(p.names) {
		return fmt.Errorf("%w: Pool has %d vantages, snapshot has %d", snapshot.ErrCorrupt, len(p.names), n)
	}
	for i := 0; i < n; i++ {
		name := d.String()
		payload := d.Bytes()
		if err := d.Err(); err != nil {
			return err
		}
		if name != p.names[i] {
			return fmt.Errorf("%w: Pool vantage %d is %q, snapshot has %q", snapshot.ErrCorrupt, i, p.names[i], name)
		}
		if err := p.res[name].Restore(bytes.NewReader(payload)); err != nil {
			return fmt.Errorf("dnssim: pool resolver %q: %w", name, err)
		}
	}
	return d.Finish()
}
