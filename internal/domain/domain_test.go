package domain

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM", "example.com"},
		{"example.com.", "example.com"},
		{"EXAMPLE.com.", "example.com"},
		{"already.lower", "already.lower"},
		{"", ""},
		{".", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	err := quick.Check(func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	valid := []string{
		"example.com", "a.b.c.d.e", "xn--bcher-kva.de", "a-b.com",
		"123.com", "_dmarc.example.com", "x.co",
	}
	for _, v := range valid {
		if err := Validate(v); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", v, err)
		}
	}
	invalid := []string{
		"", "ex ample.com", "-leading.com", "trailing-.com",
		"double..dot", ".leadingdot", "trailingdot.",
		"UPPER.com", // Validate expects pre-normalized input
		strings.Repeat("a", 64) + ".com",
		strings.Repeat("abcd.", 51) + "com", // > 253 octets
		"bad!char.com",
	}
	for _, v := range invalid {
		if err := Validate(v); err == nil {
			t.Errorf("Validate(%q) = nil, want error", v)
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	err := quick.Check(func(parts []uint8) bool {
		if len(parts) == 0 || len(parts) > 10 {
			return true
		}
		labels := make([]string, len(parts))
		for i, p := range parts {
			labels[i] = strings.Repeat("a", int(p%5)+1)
		}
		name := strings.Join(labels, ".")
		got := Labels(name)
		if len(got) != len(labels) {
			return false
		}
		if CountLabels(name) != len(labels) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParentOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a.b.c", "b.c"},
		{"b.c", "c"},
		{"c", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := ParentOf(c.in); got != c.want {
			t.Errorf("ParentOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseOrigin(t *testing.T) {
	cases := []struct {
		in   string
		want Origin
	}{
		{"https://google.com", Origin{"https", "google.com", 0}},
		{"http://Example.COM", Origin{"http", "example.com", 0}},
		{"https://shop.example.co.uk", Origin{"https", "shop.example.co.uk", 0}},
		{"http://example.com:8080", Origin{"http", "example.com", 8080}},
		{"https://example.com:443", Origin{"https", "example.com", 0}},
		{"http://example.com:80", Origin{"http", "example.com", 0}},
	}
	for _, c := range cases {
		got, err := ParseOrigin(c.in)
		if err != nil {
			t.Errorf("ParseOrigin(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseOrigin(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseOriginErrors(t *testing.T) {
	bad := []string{
		"", "google.com", "ftp://google.com", "https://",
		"https://google.com/path", "https://google.com?q=1",
		"https://user@google.com", "https://google.com:0",
		"https://google.com:999999", "https://google.com:8x",
		"https://goo gle.com", "https://google.com:",
		"https://google.com#frag",
	}
	for _, b := range bad {
		if _, err := ParseOrigin(b); err == nil {
			t.Errorf("ParseOrigin(%q) succeeded, want error", b)
		}
	}
}

func TestOriginStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"https://google.com",
		"http://example.com:8080",
		"http://a.b.c.d",
	} {
		o, err := ParseOrigin(s)
		if err != nil {
			t.Fatalf("ParseOrigin(%q): %v", s, err)
		}
		if o.String() != s {
			t.Errorf("round trip %q -> %q", s, o.String())
		}
		o2, err := ParseOrigin(o.String())
		if err != nil || o2 != o {
			t.Errorf("reparse of %q failed: %v %+v", o.String(), err, o2)
		}
	}
}
