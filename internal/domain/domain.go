// Package domain provides normalization and parsing for DNS names and web
// origins as they appear in top lists.
//
// The lists evaluated by the study key their entries three different ways
// (Section 4.2 of the paper): registrable domains (Alexa, Majestic, Secrank,
// Tranco, Trexa), fully-qualified domain names (Umbrella), and web origins
// such as "https://google.com" (CrUX). This package provides the common
// representation the evaluation normalizes to.
package domain

import (
	"errors"
	"strings"
)

// Errors returned by parsing functions.
var (
	ErrEmpty      = errors.New("domain: empty name")
	ErrTooLong    = errors.New("domain: name exceeds 253 octets")
	ErrBadLabel   = errors.New("domain: invalid label")
	ErrBadOrigin  = errors.New("domain: invalid origin")
	ErrBadScheme  = errors.New("domain: origin scheme must be http or https")
	ErrPortNumber = errors.New("domain: invalid port")
)

// Normalize lowercases a DNS name and strips a single trailing dot. It does
// not validate the name; use Validate for that.
func Normalize(name string) string {
	name = strings.TrimSuffix(name, ".")
	// Fast path: already lowercase (the overwhelmingly common case for
	// generated names), avoid an allocation.
	lower := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return name
	}
	return strings.ToLower(name)
}

// Validate checks that a (already normalized) name is a plausible DNS
// hostname: non-empty labels of letters, digits, and hyphens, no leading or
// trailing hyphen, total length <= 253.
func Validate(name string) error {
	if name == "" {
		return ErrEmpty
	}
	if len(name) > 253 {
		return ErrTooLong
	}
	for _, label := range strings.Split(name, ".") {
		if err := validateLabel(label); err != nil {
			return err
		}
	}
	return nil
}

func validateLabel(label string) error {
	if label == "" || len(label) > 63 {
		return ErrBadLabel
	}
	if label[0] == '-' || label[len(label)-1] == '-' {
		return ErrBadLabel
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-':
		case c == '_': // tolerated: seen in the wild in Umbrella entries
		default:
			return ErrBadLabel
		}
	}
	return nil
}

// Labels splits a name into its dot-separated labels.
func Labels(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels without allocating.
func CountLabels(name string) int {
	if name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// ParentOf returns the name with its leftmost label removed, or "" if the
// name has a single label.
func ParentOf(name string) string {
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return ""
	}
	return name[i+1:]
}

// Origin is a web origin: a (scheme, host, port) triple, as used by the CrUX
// dataset to key its entries.
type Origin struct {
	Scheme string // "http" or "https"
	Host   string // normalized hostname
	Port   int    // 0 means the scheme default
}

// ParseOrigin parses strings of the form "https://example.com" or
// "http://example.com:8080". Paths, queries, userinfo, and fragments are
// rejected: an origin is not a URL.
func ParseOrigin(s string) (Origin, error) {
	var o Origin
	scheme, rest, ok := strings.Cut(s, "://")
	if !ok {
		return o, ErrBadOrigin
	}
	switch scheme {
	case "http", "https":
		o.Scheme = scheme
	default:
		return o, ErrBadScheme
	}
	if rest == "" || strings.ContainsAny(rest, "/?#@\\ ") {
		return o, ErrBadOrigin
	}
	host, portStr, hasPort := strings.Cut(rest, ":")
	o.Host = Normalize(host)
	if err := Validate(o.Host); err != nil {
		return Origin{}, err
	}
	if hasPort {
		port := 0
		if portStr == "" {
			return Origin{}, ErrPortNumber
		}
		for i := 0; i < len(portStr); i++ {
			c := portStr[i]
			if c < '0' || c > '9' {
				return Origin{}, ErrPortNumber
			}
			port = port*10 + int(c-'0')
			if port > 65535 {
				return Origin{}, ErrPortNumber
			}
		}
		if port == 0 {
			return Origin{}, ErrPortNumber
		}
		if (o.Scheme == "https" && port != 443) || (o.Scheme == "http" && port != 80) {
			o.Port = port
		}
	}
	return o, nil
}

// String renders the origin in canonical form, omitting default ports.
func (o Origin) String() string {
	var b strings.Builder
	b.Grow(len(o.Scheme) + 3 + len(o.Host) + 6)
	b.WriteString(o.Scheme)
	b.WriteString("://")
	b.WriteString(o.Host)
	if o.Port != 0 {
		b.WriteByte(':')
		writeInt(&b, o.Port)
	}
	return b.String()
}

func writeInt(b *strings.Builder, v int) {
	var buf [6]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	b.Write(buf[i:])
}
