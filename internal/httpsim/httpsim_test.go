package httpsim

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"toplists/internal/world"
)

func testNetwork(t testing.TB) (*world.World, *Network) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 51, NumSites: 400})
	n := NewNetwork()
	n.AddWorld(w)
	n.Start()
	t.Cleanup(n.Close)
	return w, n
}

func findSite(w *world.World, cloudflare bool) *world.Site {
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		if s.Cloudflare() == cloudflare {
			return s
		}
	}
	return nil
}

func TestEdgeAddsCfRay(t *testing.T) {
	w, n := testNetwork(t)
	client := n.Client()

	cf := findSite(w, true)
	if cf == nil {
		t.Skip("no cloudflare site at this scale")
	}
	resp, err := client.Get(cf.Origin() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Cf-Ray") == "" {
		t.Error("missing cf-ray on cloudflare site")
	}
	if got := resp.Header.Get("Server"); got != "cloudflare" {
		t.Errorf("Server = %q", got)
	}
	if !strings.Contains(string(body), cf.Domain) {
		t.Errorf("body does not mention host: %q", body)
	}
}

func TestOriginHasNoCfRay(t *testing.T) {
	w, n := testNetwork(t)
	client := n.Client()
	direct := findSite(w, false)
	resp, err := client.Get(direct.Origin() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Cf-Ray") != "" {
		t.Error("cf-ray present on non-cloudflare site")
	}
}

func TestSubdomainHostsServed(t *testing.T) {
	w, n := testNetwork(t)
	client := n.Client()
	var s *world.Site
	for i := 0; i < w.NumSites(); i++ {
		if len(w.Site(int32(i)).Subdomains) > 1 {
			s = w.Site(int32(i))
			break
		}
	}
	if s == nil {
		t.Skip("no subdomains at this scale")
	}
	url := "https://" + s.Hostname(1) + "/"
	if !s.HTTPS {
		url = "http://" + s.Hostname(1) + "/"
	}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestUnknownHostFailsLikeNXDomain(t *testing.T) {
	_, n := testNetwork(t)
	client := n.Client()
	_, err := client.Get("https://no-such-site.invalid/")
	if err == nil {
		t.Fatal("expected dial error")
	}
	if !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v, want ErrNoSuchHost", err)
	}
}

func TestInfraNamesNotServed(t *testing.T) {
	w, n := testNetwork(t)
	client := n.Client()
	_, err := client.Get("http://" + w.Infra[0].FQDN + "/")
	if !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("infra names must not be websites; err = %v", err)
	}
}

func TestNotFoundPath(t *testing.T) {
	w, n := testNetwork(t)
	client := n.Client()
	s := w.Site(0)
	resp, err := client.Get(s.Origin() + "/definitely/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestProberClassifiesCorrectly(t *testing.T) {
	w, n := testNetwork(t)
	p := NewProber(n.Client())

	hosts := make([]string, 0, 100)
	want := make(map[string]bool)
	for i := 0; i < 100 && i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		hosts = append(hosts, s.Domain)
		want[s.Domain] = s.Cloudflare()
	}
	hosts = append(hosts, "unreachable.invalid")

	results := p.ProbeAll(context.Background(), hosts)
	if len(results) != len(hosts) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Host == "unreachable.invalid" {
			if r.Reachable || r.Cloudflare {
				t.Errorf("unreachable host classified as %+v", r)
			}
			continue
		}
		if !r.Reachable {
			t.Errorf("%s unreachable", r.Host)
			continue
		}
		if r.Cloudflare != want[r.Host] {
			t.Errorf("%s cloudflare = %v, want %v", r.Host, r.Cloudflare, want[r.Host])
		}
	}
}

func TestCloudflareSetMatchesWorld(t *testing.T) {
	w, n := testNetwork(t)
	p := NewProber(n.Client())
	hosts := make([]string, 0, w.NumSites())
	for i := 0; i < w.NumSites(); i++ {
		hosts = append(hosts, w.Site(int32(i)).Domain)
	}
	got := p.CloudflareSet(context.Background(), hosts)
	wantSet := w.CloudflareSet()
	if len(got) != len(wantSet) {
		t.Fatalf("probe found %d CF sites, world has %d", len(got), len(wantSet))
	}
	for h := range got {
		if _, ok := wantSet[h]; !ok {
			t.Fatalf("%s probed CF but is not", h)
		}
	}
}

func TestProberContextCancel(t *testing.T) {
	_, n := testNetwork(t)
	p := NewProber(n.Client())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hosts := []string{"a.invalid", "b.invalid", "c.invalid"}
	results := p.ProbeAll(ctx, hosts)
	for _, r := range results {
		if r.Cloudflare {
			t.Error("cancelled probe reported cloudflare")
		}
	}
}

func TestConcurrentProbing(t *testing.T) {
	w, n := testNetwork(t)
	p := NewProber(n.Client())
	p.Concurrency = 16
	hosts := make([]string, 0, 2*w.NumSites())
	for round := 0; round < 2; round++ {
		for i := 0; i < w.NumSites(); i++ {
			hosts = append(hosts, w.Site(int32(i)).Domain)
		}
	}
	start := time.Now()
	results := p.ProbeAll(context.Background(), hosts)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("probe too slow: %v", elapsed)
	}
	reachable := 0
	for _, r := range results {
		if r.Reachable {
			reachable++
		}
	}
	if reachable != len(hosts) {
		t.Fatalf("reachable = %d of %d", reachable, len(hosts))
	}
}

func TestCfRayUniquePerResponse(t *testing.T) {
	w, n := testNetwork(t)
	client := n.Client()
	cf := findSite(w, true)
	if cf == nil {
		t.Skip("no cloudflare site")
	}
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		resp, err := client.Head(cf.Origin() + "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ray := resp.Header.Get("Cf-Ray")
		if ray == "" || seen[ray] {
			t.Fatalf("ray %q empty or repeated", ray)
		}
		seen[ray] = true
	}
}

func BenchmarkProbe(b *testing.B) {
	w := world.Generate(world.Config{Seed: 52, NumSites: 500})
	n := NewNetwork()
	n.AddWorld(w)
	n.Start()
	defer n.Close()
	p := NewProber(n.Client())
	hosts := make([]string, 0, w.NumSites())
	for i := 0; i < w.NumSites(); i++ {
		hosts = append(hosts, w.Site(int32(i)).Domain)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ProbeAll(context.Background(), hosts)
	}
}
