package httpsim

import (
	"context"
	"testing"
	"time"

	"toplists/internal/faults"
	"toplists/internal/world"
)

// faultProbeDays mirrors the evaluation's retry-on-next-day sweep: Unknown
// hosts are re-probed on later virtual days with closed breakers.
const faultProbeDays = 4

func sweepCF(ctx context.Context, p *Prober, hosts []string) map[string]struct{} {
	out := make(map[string]struct{})
	pending := hosts
	for day := 0; day < faultProbeDays && len(pending) > 0; day++ {
		if day > 0 {
			p.Day = day
			p.ResetBreakers()
		}
		var unknown []string
		for _, r := range p.ProbeAll(ctx, pending) {
			switch {
			case r.Cloudflare:
				out[r.Host] = struct{}{}
			case r.Outcome == OutcomeUnknown:
				unknown = append(unknown, r.Host)
			}
		}
		pending = unknown
	}
	return out
}

func resilientProber(n *Network) *Prober {
	p := NewProber(n.Client())
	p.Concurrency = 64
	p.AttemptTimeout = 10 * time.Second
	p.BackoffBase = 200 * time.Microsecond
	return p
}

// TestResilientProberRecoversUnderFaults is the acceptance bar: at a 5%
// injected fault rate the hardened prober (with the day-retry sweep)
// recovers at least 99% of the truly Cloudflare-served hosts, while the
// legacy single-shot path demonstrably misclassifies some of them.
func TestResilientProberRecoversUnderFaults(t *testing.T) {
	w, n := testNetwork(t)
	n.SetFaultPlan(&faults.Plan{Seed: 1234, Rate: 0.05})
	defer n.SetFaultPlan(nil)

	truth := w.CloudflareSet()
	hosts := make([]string, w.NumSites())
	for i := range hosts {
		hosts[i] = w.Site(int32(i)).Domain
	}

	got := sweepCF(context.Background(), resilientProber(n), hosts)
	lost, false_ := 0, 0
	for h := range truth {
		if _, ok := got[h]; !ok {
			lost++
		}
	}
	for h := range got {
		if _, ok := truth[h]; !ok {
			false_++
		}
	}
	if false_ != 0 {
		t.Errorf("resilient prober classified %d non-CF hosts as Cloudflare", false_)
	}
	recovered := 100 * float64(len(truth)-lost) / float64(len(truth))
	t.Logf("resilient: %d/%d true-CF recovered (%.2f%%)", len(truth)-lost, len(truth), recovered)
	if recovered < 99 {
		t.Errorf("resilient prober recovered %.2f%% of true-CF hosts, want >= 99%%", recovered)
	}

	naive := resilientProber(n)
	naive.SingleShot = true
	naiveSet := naive.CloudflareSet(context.Background(), hosts)
	naiveLost := 0
	for h := range truth {
		if _, ok := naiveSet[h]; !ok {
			naiveLost++
		}
	}
	t.Logf("single-shot: %d/%d true-CF lost", naiveLost, len(truth))
	if naiveLost == 0 {
		t.Error("single-shot prober lost no CF hosts at 5% faults; the baseline should misclassify")
	}
	if naiveLost <= lost {
		t.Errorf("single-shot lost %d <= resilient lost %d; hardening bought nothing", naiveLost, lost)
	}
}

// TestFaultProbeDeterministic pins reproducibility under faults: the same
// plan seed yields identical classifications at any concurrency, across
// repeated sweeps, and 5xx responses never classify a host on the
// resilient path.
func TestFaultProbeDeterministic(t *testing.T) {
	w, n := testNetwork(t)
	n.SetFaultPlan(&faults.Plan{Seed: 77, Rate: 0.2})
	defer n.SetFaultPlan(nil)

	hosts := make([]string, 120)
	for i := range hosts {
		hosts[i] = w.Site(int32(i)).Domain
	}

	type verdict struct {
		cf bool
		oc Outcome
	}
	run := func(conc int) []verdict {
		p := resilientProber(n)
		p.Concurrency = conc
		p.Retries = 1
		rs := p.ProbeAll(context.Background(), hosts)
		out := make([]verdict, len(rs))
		for i, r := range rs {
			out[i] = verdict{r.Cloudflare, r.Outcome}
		}
		return out
	}

	base := run(64)
	for _, conc := range []int{2, 16, 64} {
		got := run(conc)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("host %s: verdict %+v at concurrency %d, want %+v (nondeterministic faults)",
					hosts[i], got[i], conc, base[i])
			}
		}
	}
}

// TestProbeFaultRateZeroUntouched: an installed plan with rate 0 is
// indistinguishable from no plan at all — the golden-safety property.
func TestProbeFaultRateZeroUntouched(t *testing.T) {
	w, n := testNetwork(t)
	hosts := make([]string, w.NumSites())
	for i := range hosts {
		hosts[i] = w.Site(int32(i)).Domain
	}
	before := NewProber(n.Client()).ProbeAll(context.Background(), hosts)
	n.SetFaultPlan(&faults.Plan{Seed: 9, Rate: 0})
	defer n.SetFaultPlan(nil)
	after := NewProber(n.Client()).ProbeAll(context.Background(), hosts)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("host %s: %+v with rate-0 plan, want %+v", hosts[i], after[i], before[i])
		}
	}
}

// TestProberCancelYieldsUnknown is the cancellation satellite: a canceled
// context must leave hosts Unknown — no Reachable=false / "not Cloudflare"
// misclassification — whether the probe never launched or was mid-flight.
func TestProberCancelYieldsUnknown(t *testing.T) {
	w, n := testNetwork(t)
	hosts := make([]string, w.NumSites())
	for i := range hosts {
		hosts[i] = w.Site(int32(i)).Domain
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range NewProber(n.Client()).ProbeAll(ctx, hosts) {
		if r.Outcome != OutcomeUnknown {
			t.Fatalf("host %s: outcome %v after pre-canceled probe, want unknown", r.Host, r.Outcome)
		}
		if r.Cloudflare || r.Reachable {
			t.Fatalf("host %s: classified (cf=%v reachable=%v) by a canceled probe", r.Host, r.Cloudflare, r.Reachable)
		}
	}

	// Mid-flight: cancel while probes are in the air. Every result must be
	// either a completed classification or Unknown — never Down.
	ctx2, cancel2 := context.WithCancel(context.Background())
	p := NewProber(n.Client())
	p.Concurrency = 4
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	for _, r := range p.ProbeAll(ctx2, hosts) {
		if r.Outcome == OutcomeDown {
			t.Fatalf("host %s: canceled sweep reported Down (conflated with failure)", r.Host)
		}
	}
}

// TestBreakerShortCircuits: a host whose every attempt fails transiently
// trips its circuit at the threshold, and later probes of that host
// short-circuit to Unknown until ResetBreakers.
func TestBreakerShortCircuits(t *testing.T) {
	w := world.Generate(world.Config{Seed: 51, NumSites: 50})
	n := NewNetwork()
	n.AddWorld(w)
	n.Start()
	n.Close() // every dial now fails with net.ErrClosed: transient forever

	host := w.Site(0).Domain
	p := NewProber(n.Client())
	p.Retries = 5
	p.BackoffBase = 0
	p.BreakerThreshold = 3

	r := p.probeOne(context.Background(), host)
	if r.Outcome != OutcomeUnknown {
		t.Fatalf("outcome %v, want unknown", r.Outcome)
	}
	if r.Attempts != 3 {
		t.Fatalf("breaker tripped after %d attempts, want 3", r.Attempts)
	}
	r = p.probeOne(context.Background(), host)
	if r.Attempts != 0 || r.Outcome != OutcomeUnknown {
		t.Fatalf("open circuit still probed: %+v", r)
	}
	p.ResetBreakers()
	if r := p.probeOne(context.Background(), host); r.Attempts == 0 {
		t.Fatal("reset breaker did not half-open the circuit")
	}
}
