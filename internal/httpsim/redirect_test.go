package httpsim

import (
	"context"
	"net/http"
	"testing"

	"toplists/internal/world"
)

// findWWWCanonical returns a site whose www hostname outweighs its apex.
func findWWWCanonical(w *world.World) *world.Site {
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		for sub, label := range s.Subdomains {
			if label == "www" && s.SubWeights[sub] > s.SubWeights[0] {
				return s
			}
		}
	}
	return nil
}

func TestWWWCanonicalRedirect(t *testing.T) {
	w, n := testNetwork(t)
	s := findWWWCanonical(w)
	if s == nil {
		t.Skip("no www-canonical site at this scale")
	}
	client := n.Client()
	// Default client follows the redirect; the final URL is the www host.
	resp, err := client.Get(s.Origin() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Request.URL.Host; got != "www."+s.Domain {
		t.Errorf("final host = %q, want %q", got, "www."+s.Domain)
	}

	// A non-following client sees the 301 itself.
	raw := n.Client()
	raw.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}
	resp, err = raw.Get(s.Origin() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("status = %d, want 301", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Error("no Location header")
	}
	// Cloudflare-served sites stamp cf-ray on the redirect itself too.
	if s.Cloudflare() && resp.Header.Get("Cf-Ray") == "" {
		t.Error("redirect response missing cf-ray on CF site")
	}
}

func TestProberHandlesRedirects(t *testing.T) {
	w, n := testNetwork(t)
	s := findWWWCanonical(w)
	if s == nil {
		t.Skip("no www-canonical site at this scale")
	}
	p := NewProber(n.Client())
	results := p.ProbeAll(context.Background(), []string{s.Domain})
	if !results[0].Reachable {
		t.Fatal("redirecting site unreachable")
	}
	if results[0].Cloudflare != s.Cloudflare() {
		t.Errorf("cloudflare = %v through redirect, want %v",
			results[0].Cloudflare, s.Cloudflare())
	}
}

func TestDeepPathsStill404OnCanonicalSites(t *testing.T) {
	w, n := testNetwork(t)
	s := findWWWCanonical(w)
	if s == nil {
		t.Skip("no www-canonical site at this scale")
	}
	resp, err := n.Client().Get(s.Origin() + "/missing/page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 (redirect only covers the root)", resp.StatusCode)
	}
}
