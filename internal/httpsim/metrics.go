package httpsim

import (
	"time"

	"toplists/internal/obs"
)

// ProbeMetrics counts what the hardened prober did: probes launched,
// HTTP attempts issued, retry rounds entered, the outcome trichotomy,
// Cloudflare classifications, and breaker activity. All counters are
// deterministic for a fixed (seed, config): a host's attempt sequence is
// decided solely by the fault plan and the prober's own knobs, never by
// goroutine scheduling (probes of different hosts do not share state, and
// a single host's strikes are only touched from its own probe). The only
// volatile value is the wall-clock probe duration histogram.
//
// A nil *ProbeMetrics is a no-op, so an unattached Prober pays one
// predictable branch per event.
type ProbeMetrics struct {
	probes      *obs.Counter
	attempts    *obs.Counter
	retryRounds *obs.Counter

	outcomeOK      *obs.Counter
	outcomeDown    *obs.Counter
	outcomeUnknown *obs.Counter
	cloudflare     *obs.Counter

	breakerTrips *obs.Counter
	breakerSkips *obs.Counter

	probeTime *obs.Histogram
}

// NewProbeMetrics registers the probe.* instrument family on r. All
// counters are registered up front so the run report's key set does not
// depend on which outcomes occurred. Safe on a nil registry.
func NewProbeMetrics(r *obs.Registry) *ProbeMetrics {
	return &ProbeMetrics{
		probes:         r.Counter("probe.probes"),
		attempts:       r.Counter("probe.attempts"),
		retryRounds:    r.Counter("probe.retry_rounds"),
		outcomeOK:      r.Counter("probe.outcome.ok"),
		outcomeDown:    r.Counter("probe.outcome.down"),
		outcomeUnknown: r.Counter("probe.outcome.unknown"),
		cloudflare:     r.Counter("probe.cloudflare"),
		breakerTrips:   r.Counter("probe.breaker.trips"),
		breakerSkips:   r.Counter("probe.breaker.skips"),
		probeTime:      r.Histogram("probe.duration"),
	}
}

// observeProbe records one completed probe: its attempt count, outcome,
// and wall time.
func (m *ProbeMetrics) observeProbe(res *ProbeResult, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.probes.Inc()
	m.attempts.Add(int64(res.Attempts))
	switch res.Outcome {
	case OutcomeOK:
		m.outcomeOK.Inc()
	case OutcomeDown:
		m.outcomeDown.Inc()
	default:
		m.outcomeUnknown.Inc()
	}
	if res.Cloudflare {
		m.cloudflare.Inc()
	}
	m.probeTime.Observe(elapsed)
}

func (m *ProbeMetrics) retryRound() {
	if m == nil {
		return
	}
	m.retryRounds.Inc()
}

func (m *ProbeMetrics) breakerTripped() {
	if m == nil {
		return
	}
	m.breakerTrips.Inc()
}

func (m *ProbeMetrics) breakerSkipped() {
	if m == nil {
		return
	}
	m.breakerSkips.Inc()
}
