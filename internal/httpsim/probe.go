package httpsim

import (
	"context"
	"net/http"
	"sync"
)

// ProbeResult is the outcome of probing one hostname.
type ProbeResult struct {
	Host string
	// Cloudflare reports whether the response carried a cf-ray header.
	Cloudflare bool
	// Reachable is false when the host did not resolve or the request
	// failed entirely.
	Reachable bool
}

// Prober performs concurrent HEAD probes and classifies hosts by the
// cf-ray response header, replicating the paper's list-filtering step.
type Prober struct {
	// Client issues the requests; use Network.Client for simulation or a
	// stock client against the real internet.
	Client *http.Client
	// Concurrency bounds in-flight probes (default 32).
	Concurrency int
	// TryHTTPS controls whether https is attempted first with an http
	// fallback (default true via NewProber).
	TryHTTPS bool
}

// NewProber returns a Prober with defaults.
func NewProber(client *http.Client) *Prober {
	return &Prober{Client: client, Concurrency: 32, TryHTTPS: true}
}

// ProbeAll probes every host and returns results in input order. The
// context cancels outstanding probes.
func (p *Prober) ProbeAll(ctx context.Context, hosts []string) []ProbeResult {
	conc := p.Concurrency
	if conc <= 0 {
		conc = 32
	}
	results := make([]ProbeResult, len(hosts))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, h := range hosts {
		if ctx.Err() != nil {
			// Mark the rest unreachable and stop launching.
			for j := i; j < len(hosts); j++ {
				results[j] = ProbeResult{Host: hosts[j]}
			}
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, host string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = p.probeOne(ctx, host)
		}(i, h)
	}
	wg.Wait()
	return results
}

// probeOne issues a HEAD request (https first, then http) and inspects the
// cf-ray header.
func (p *Prober) probeOne(ctx context.Context, host string) ProbeResult {
	res := ProbeResult{Host: host}
	schemes := []string{"https", "http"}
	if !p.TryHTTPS {
		schemes = []string{"http"}
	}
	for _, scheme := range schemes {
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, scheme+"://"+host+"/", nil)
		if err != nil {
			continue
		}
		resp, err := p.Client.Do(req)
		if err != nil {
			continue
		}
		resp.Body.Close()
		res.Reachable = true
		if resp.Header.Get("Cf-Ray") != "" {
			res.Cloudflare = true
		}
		return res
	}
	return res
}

// CloudflareSet probes hosts and returns the subset served by Cloudflare.
func (p *Prober) CloudflareSet(ctx context.Context, hosts []string) map[string]struct{} {
	out := make(map[string]struct{})
	for _, r := range p.ProbeAll(ctx, hosts) {
		if r.Cloudflare {
			out[r.Host] = struct{}{}
		}
	}
	return out
}
