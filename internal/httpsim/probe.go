package httpsim

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"toplists/internal/faults"

	"toplists/internal/world"
)

// Outcome is the three-way classification of one probe: the zero value is
// Unknown, so a probe that never ran (canceled before launch, circuit
// open) is indistinguishable from one that exhausted its budget — both
// mean "no evidence either way", never "the host is down".
type Outcome uint8

const (
	// OutcomeUnknown means the probe could not establish anything: every
	// attempt failed transiently, the context was canceled, or the host's
	// circuit was open. Callers must not treat Unknown as "not served".
	OutcomeUnknown Outcome = iota
	// OutcomeOK means a usable HTTP response was classified.
	OutcomeOK
	// OutcomeDown means the host definitively does not exist (NXDOMAIN on
	// every scheme).
	OutcomeDown
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDown:
		return "down"
	default:
		return "unknown"
	}
}

// ProbeResult is the outcome of probing one hostname.
type ProbeResult struct {
	Host string
	// Cloudflare reports whether the response carried a cf-ray header.
	Cloudflare bool
	// Backend is the CDN backend the response's signature identified
	// (BackendNone when no known ray header was present). Cloudflare is
	// always Backend == BackendCdnflare, kept for callers predating the
	// multi-backend model.
	Backend world.Backend
	// Reachable is true when a response was classified (Outcome ==
	// OutcomeOK); kept for callers predating the three-way Outcome.
	Reachable bool
	// Outcome distinguishes a classified response from a definitive
	// NXDOMAIN from "no evidence" (transient failures, cancellation).
	Outcome Outcome
	// Attempts is how many HTTP requests the probe issued.
	Attempts int
}

// Prober performs concurrent HEAD probes and classifies hosts by the
// cf-ray response header, replicating the paper's list-filtering step.
//
// The zero knobs give the hardened client: transient failures (dial
// errors, timeouts, 5xx responses) are retried with deterministic
// exponential backoff, only NXDOMAIN is treated as definitive, and an
// exhausted budget yields OutcomeUnknown rather than a misclassification.
// SingleShot restores the fragile pre-hardening behavior for baselines.
type Prober struct {
	// Client issues the requests; use Network.Client for simulation or a
	// stock client against the real internet.
	Client *http.Client
	// Concurrency bounds in-flight probes (default 32).
	Concurrency int
	// TryHTTPS controls whether https is attempted first with an http
	// fallback (default true via NewProber).
	TryHTTPS bool

	// Retries is how many extra retry rounds (each trying every scheme)
	// a probe may use after the first before giving up as Unknown.
	Retries int
	// AttemptTimeout bounds each individual request, so a stalled dial or
	// response costs one attempt rather than the whole probe (0 = no
	// per-attempt bound).
	AttemptTimeout time.Duration
	// BackoffBase is the first retry's delay; each further round doubles
	// it (capped at 8x) and scales by a deterministic per-(host, round)
	// jitter in [0.5, 1). 0 disables waiting between rounds.
	BackoffBase time.Duration
	// BreakerThreshold opens a host's circuit after that many consecutive
	// transient failures: further attempts (and probes) of the host
	// short-circuit to Unknown until ResetBreakers. 0 disables the
	// breaker.
	BreakerThreshold int
	// Day is the virtual measurement day stamped into each attempt's
	// fault key; retry-on-next-day sweeps advance it between passes.
	Day int
	// SingleShot restores the pre-hardening classification the
	// fault-sensitivity experiment uses as its baseline: one round, any
	// HTTP response (5xx included) classifies immediately, and an
	// exhausted probe is conflated with "down". Context cancellation
	// still yields Unknown.
	SingleShot bool
	// Metrics, when set, receives per-probe telemetry (attempts,
	// outcomes, breaker activity). Nil disables recording.
	Metrics *ProbeMetrics

	mu      sync.Mutex
	strikes map[string]int
}

// NewProber returns a Prober with defaults: 32-way concurrency, https
// first, two retry rounds with 2ms base backoff, a 2s per-attempt bound,
// and an 8-strike circuit breaker.
func NewProber(client *http.Client) *Prober {
	return &Prober{
		Client:           client,
		Concurrency:      32,
		TryHTTPS:         true,
		Retries:          2,
		AttemptTimeout:   2 * time.Second,
		BackoffBase:      2 * time.Millisecond,
		BreakerThreshold: 8,
	}
}

// ProbeAll probes every host and returns results in input order. The
// context cancels outstanding probes; canceled or never-launched probes
// come back OutcomeUnknown, never Down.
func (p *Prober) ProbeAll(ctx context.Context, hosts []string) []ProbeResult {
	conc := p.Concurrency
	if conc <= 0 {
		conc = 32
	}
	results := make([]ProbeResult, len(hosts))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, h := range hosts {
		if ctx.Err() != nil {
			// Mark the rest Unknown (the zero Outcome) and stop launching.
			for j := i; j < len(hosts); j++ {
				results[j] = ProbeResult{Host: hosts[j]}
			}
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, host string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = p.probeOne(ctx, host)
		}(i, h)
	}
	wg.Wait()
	return results
}

// attemptOutcome classifies one request's result.
type attemptOutcome uint8

const (
	attemptResponse  attemptOutcome = iota // got an HTTP response
	attemptNoHost                          // NXDOMAIN: definitive
	attemptCanceled                        // the probe's own context ended
	attemptTransient                       // everything else: retryable
)

// probeOne probes one host: rounds of https-then-http attempts until a
// response classifies it, NXDOMAIN rules it down, the retry budget runs
// out, or its circuit opens.
func (p *Prober) probeOne(ctx context.Context, host string) ProbeResult {
	res := ProbeResult{Host: host}
	if p.Metrics != nil {
		start := time.Now()
		defer func() { p.Metrics.observeProbe(&res, time.Since(start)) }()
	}
	schemes := []string{"https", "http"}
	if !p.TryHTTPS {
		schemes = []string{"http"}
	}
	if p.breakerOpen(host) {
		p.Metrics.breakerSkipped()
		return res
	}
	retries := p.Retries
	if p.SingleShot {
		retries = 0
	}
	for round := 0; ; round++ {
		if round > 0 {
			p.Metrics.retryRound()
			if !p.backoffWait(ctx, host, round) {
				return res
			}
		}
		noHost := 0
		for _, scheme := range schemes {
			hdr, status, oc := p.tryOnce(ctx, host, scheme, res.Attempts)
			res.Attempts++
			switch oc {
			case attemptResponse:
				if p.SingleShot || status < 500 {
					res.Outcome = OutcomeOK
					res.Reachable = true
					res.Backend = classifyBackend(hdr)
					res.Cloudflare = res.Backend == world.BackendCdnflare
					p.breakerClear(host)
					return res
				}
				// A 5xx is a transient server-side failure: unusable for
				// classification (an intermediate error page carries no
				// cf-ray even for a fronted host), so retry.
				if p.breakerTrip(host) {
					return res
				}
			case attemptNoHost:
				noHost++
			case attemptCanceled:
				return res
			case attemptTransient:
				if p.breakerTrip(host) {
					return res
				}
			}
		}
		if noHost == len(schemes) {
			res.Outcome = OutcomeDown
			return res
		}
		if round >= retries {
			if p.SingleShot {
				// The legacy conflation, preserved deliberately: the
				// single-shot baseline cannot tell "failed" from "down".
				res.Outcome = OutcomeDown
			}
			return res
		}
	}
}

// tryOnce issues one keyed HEAD request. The fault key rides both the
// request context (for the dialer) and the probe header (for the server
// middleware), so a fault plan sees the same (host, day, attempt)
// coordinates on every channel.
func (p *Prober) tryOnce(ctx context.Context, host, scheme string, attempt int) (http.Header, int, attemptOutcome) {
	actx := ctx
	if p.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
	}
	key := faults.Key{Day: p.Day, Attempt: attempt}
	actx = faults.NewContext(actx, key)
	req, err := http.NewRequestWithContext(actx, http.MethodHead, scheme+"://"+host+"/", nil)
	if err != nil {
		return nil, 0, attemptTransient
	}
	req.Header.Set(faults.ProbeHeader, key.Encode())
	resp, err := p.Client.Do(req)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			// The probe's own context ended (not just this attempt's
			// timeout): stop without classifying.
			return nil, 0, attemptCanceled
		case errors.Is(err, ErrNoSuchHost):
			return nil, 0, attemptNoHost
		default:
			return nil, 0, attemptTransient
		}
	}
	resp.Body.Close()
	return resp.Header, resp.StatusCode, attemptResponse
}

// backoffWait sleeps the deterministic backoff before a retry round. It
// returns false when the context ends first.
func (p *Prober) backoffWait(ctx context.Context, host string, round int) bool {
	if p.BackoffBase <= 0 {
		return ctx.Err() == nil
	}
	d := p.BackoffBase << uint(round-1)
	if max := 8 * p.BackoffBase; d > max {
		d = max
	}
	d = time.Duration(float64(d) * faults.Jitter(host, round))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// breakerOpen reports whether the host's circuit is open.
func (p *Prober) breakerOpen(host string) bool {
	if p.BreakerThreshold <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.strikes[host] >= p.BreakerThreshold
}

// breakerTrip records one transient failure and reports whether the
// host's circuit just opened (or already was open).
func (p *Prober) breakerTrip(host string) bool {
	if p.BreakerThreshold <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.strikes == nil {
		p.strikes = make(map[string]int)
	}
	p.strikes[host]++
	if p.strikes[host] == p.BreakerThreshold {
		p.Metrics.breakerTripped()
	}
	return p.strikes[host] >= p.BreakerThreshold
}

// breakerClear forgets a host's strikes after a success.
func (p *Prober) breakerClear(host string) {
	if p.BreakerThreshold <= 0 {
		return
	}
	p.mu.Lock()
	delete(p.strikes, host)
	p.mu.Unlock()
}

// ResetBreakers closes every circuit — the half-open transition a
// retry-on-next-day sweep grants before re-probing Unknown hosts.
func (p *Prober) ResetBreakers() {
	p.mu.Lock()
	p.strikes = nil
	p.mu.Unlock()
}

// classifyBackend identifies the CDN backend from a response's signature:
// each backend stamps its own ray header, so the first match wins (a real
// response carries at most one).
func classifyBackend(hdr http.Header) world.Backend {
	for b := world.BackendCdnflare; b <= world.Backend(world.NumBackends); b++ {
		if hdr.Get(b.RayHeader()) != "" {
			return b
		}
	}
	return world.BackendNone
}

// CloudflareSet probes hosts and returns the subset served by Cloudflare.
func (p *Prober) CloudflareSet(ctx context.Context, hosts []string) map[string]struct{} {
	out := make(map[string]struct{})
	for _, r := range p.ProbeAll(ctx, hosts) {
		if r.Cloudflare {
			out[r.Host] = struct{}{}
		}
	}
	return out
}

// BackendSets probes hosts and returns, per deployed backend, the subset
// whose responses carried that backend's signature.
func (p *Prober) BackendSets(ctx context.Context, hosts []string) map[world.Backend]map[string]struct{} {
	out := make(map[world.Backend]map[string]struct{})
	for _, r := range p.ProbeAll(ctx, hosts) {
		if r.Backend == world.BackendNone {
			continue
		}
		set, ok := out[r.Backend]
		if !ok {
			set = make(map[string]struct{})
			out[r.Backend] = set
		}
		set[r.Host] = struct{}{}
	}
	return out
}
