package httpsim

import (
	"io"
	"net"
	"time"

	"toplists/internal/faults"
)

// truncateAfter is how many response bytes a DialTruncate connection lets
// through before cutting off — enough for a partial status line, never a
// complete set of headers.
const truncateAfter = 24

// stallLatency is how long a DialStall hangs before failing with
// faults.ErrStalled. It is fixed and far below any attempt timeout, so a
// stalled attempt always resolves to the same transient error on its own —
// classification never rides on a timeout racing the scheduler.
const stallLatency = 50 * time.Millisecond

// resetConn models an RST mid-exchange: the first read tears the pipe down
// and surfaces a reset. Closing the underlying conn unblocks the server
// side, whose pending pipe writes would otherwise stall forever.
type resetConn struct {
	net.Conn
}

func (c *resetConn) Read(p []byte) (int, error) {
	c.Conn.Close()
	return 0, faults.ErrReset
}

// truncConn models a response cut off mid-headers: it passes through a few
// bytes, then closes the pipe and reports EOF.
type truncConn struct {
	net.Conn
	remain int
}

func (c *truncConn) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		c.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.Conn.Read(p)
	c.remain -= n
	return n, err
}
