// Package httpsim provides the virtual HTTP layer of the study: an
// in-memory network of origin servers fronted by a Cloudflare-style edge
// proxy, plus the concurrent HEAD prober the evaluation uses to decide which
// top-list entries are Cloudflare-served (Section 4.3: "we perform a HTTP
// HEAD request against each website ... and remove any website that does
// not include the cf_ray HTTP header").
//
// Traffic flows through the real net/http client and server stacks over
// synchronous in-memory pipes, so everything a production prober would
// exercise — dialing, request writing, header parsing, redirects, timeouts —
// is exercised here, just without sockets.
package httpsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"toplists/internal/domain"
	"toplists/internal/world"
)

// ErrNoSuchHost is returned by the dialer for unregistered hostnames,
// standing in for NXDOMAIN.
var ErrNoSuchHost = errors.New("httpsim: no such host")

// memListener is a net.Listener fed by a channel of pipe ends.
type memListener struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn, 64), closed: make(chan struct{})}
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "httpsim", Net: "mem"}
}

// dial hands one end of a fresh pipe to the listener.
func (l *memListener) dial(ctx context.Context) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// hostInfo describes one registered hostname.
type hostInfo struct {
	cloudflare bool
	https      bool
	// redirectTo, when set, 301-redirects root requests to the given host
	// (the www-canonical pattern).
	redirectTo string
}

// Network is the virtual internet: a hostname registry, one edge server
// (Cloudflare) and one origin farm server, and a dialer that routes by
// hostname. It is safe for concurrent use after Start.
type Network struct {
	mu    sync.RWMutex
	hosts map[string]hostInfo

	edge   *memListener
	origin *memListener

	edgeSrv   *http.Server
	originSrv *http.Server

	rayCounter atomic.Uint64
	started    bool
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{hosts: make(map[string]hostInfo)}
}

// AddHost registers a hostname.
func (n *Network) AddHost(host string, cloudflare, https bool) {
	n.mu.Lock()
	n.hosts[domain.Normalize(host)] = hostInfo{cloudflare: cloudflare, https: https}
	n.mu.Unlock()
}

// AddWorld registers every hostname of every site in the world. Sites
// whose www hostname carries more traffic than the apex serve the
// www-canonical pattern: the apex 301-redirects to www.
func (n *Network) AddWorld(w *world.World) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		apex := hostInfo{cloudflare: s.Cloudflare, https: s.HTTPS}
		for sub, label := range s.Subdomains {
			if label == "www" && s.SubWeights[sub] > s.SubWeights[0] {
				apex.redirectTo = s.Hostname(sub)
			}
		}
		for sub := range s.Subdomains {
			info := hostInfo{cloudflare: s.Cloudflare, https: s.HTTPS}
			if sub == 0 {
				info = apex
			}
			n.hosts[s.Hostname(sub)] = info
		}
	}
	// Infrastructure names deliberately stay unregistered: they are not
	// websites, so probing them fails like it would in the field.
}

// lookup returns the host info.
func (n *Network) lookup(host string) (hostInfo, bool) {
	n.mu.RLock()
	h, ok := n.hosts[host]
	n.mu.RUnlock()
	return h, ok
}

// Start launches the edge and origin servers. Call Close when done.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.edge = newMemListener()
	n.origin = newMemListener()
	n.edgeSrv = &http.Server{Handler: http.HandlerFunc(n.serveEdge)}
	n.originSrv = &http.Server{Handler: http.HandlerFunc(n.serveOrigin)}
	go n.edgeSrv.Serve(n.edge)     //nolint:errcheck // returns on Close
	go n.originSrv.Serve(n.origin) //nolint:errcheck // returns on Close
}

// Close shuts both servers down.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		return
	}
	n.started = false
	n.edgeSrv.Close()
	n.originSrv.Close()
}

// hostOf strips the port from a dial address.
func hostOf(addr string) string {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	return host
}

// DialContext routes a dial to the edge (Cloudflare hosts) or the origin
// farm. It implements the http.Transport DialContext signature.
func (n *Network) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	host := domain.Normalize(hostOf(addr))
	info, ok := n.lookup(host)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchHost, host)
	}
	if info.cloudflare {
		return n.edge.dial(ctx)
	}
	return n.origin.dial(ctx)
}

// Client returns an *http.Client routed through the virtual network. TLS
// dials hand back a plain pipe (the simulation treats transport security as
// already established), so https:// URLs work against the in-memory stack.
func (n *Network) Client() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:       n.DialContext,
			DialTLSContext:    n.DialContext,
			MaxIdleConns:      256,
			DisableKeepAlives: false,
		},
	}
}

// serveEdge is the Cloudflare reverse proxy: it stamps the cf-ray header
// (and a Server banner) on every response for a host it fronts, then serves
// the origin content.
func (n *Network) serveEdge(w http.ResponseWriter, r *http.Request) {
	host := domain.Normalize(hostOf(r.Host))
	info, ok := n.lookup(host)
	if !ok || !info.cloudflare {
		// A direct-to-edge request for a host Cloudflare does not front.
		w.Header().Set("Server", "cloudflare")
		http.Error(w, "error 1001: DNS resolution error", http.StatusForbidden)
		return
	}
	ray := n.rayCounter.Add(1)
	w.Header().Set("Cf-Ray", fmt.Sprintf("%012x-SIM", ray))
	w.Header().Set("Server", "cloudflare")
	n.writeContent(w, r, host)
}

// serveOrigin serves hosts that are not behind the edge.
func (n *Network) serveOrigin(w http.ResponseWriter, r *http.Request) {
	host := domain.Normalize(hostOf(r.Host))
	if _, ok := n.lookup(host); !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Server", "origin/1.0")
	n.writeContent(w, r, host)
}

// writeContent emits a minimal page: enough for HEAD probing and simple GETs.
func (n *Network) writeContent(w http.ResponseWriter, r *http.Request, host string) {
	if info, ok := n.lookup(host); ok && info.redirectTo != "" && r.URL.Path == "/" {
		scheme := "http"
		if info.https {
			scheme = "https"
		}
		http.Redirect(w, r, scheme+"://"+info.redirectTo+"/", http.StatusMovedPermanently)
		return
	}
	if r.URL.Path != "/" && r.URL.Path != "/index.html" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	fmt.Fprintf(w, "<!doctype html><title>%s</title><h1>%s</h1>\n",
		htmlEscape(host), htmlEscape(host))
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("<", "&lt;", ">", "&gt;", "&", "&amp;")
	return r.Replace(s)
}
