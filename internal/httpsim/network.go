// Package httpsim provides the virtual HTTP layer of the study: an
// in-memory network of origin servers fronted by a Cloudflare-style edge
// proxy, plus the concurrent HEAD prober the evaluation uses to decide which
// top-list entries are Cloudflare-served (Section 4.3: "we perform a HTTP
// HEAD request against each website ... and remove any website that does
// not include the cf_ray HTTP header").
//
// Traffic flows through the real net/http client and server stacks over
// synchronous in-memory pipes, so everything a production prober would
// exercise — dialing, request writing, header parsing, redirects, timeouts —
// is exercised here, just without sockets.
package httpsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toplists/internal/domain"
	"toplists/internal/faults"
	"toplists/internal/obs"
	"toplists/internal/world"
)

// ErrNoSuchHost is returned by the dialer for unregistered hostnames,
// standing in for NXDOMAIN.
var ErrNoSuchHost = errors.New("httpsim: no such host")

// memListener is a net.Listener fed by a channel of pipe ends.
type memListener struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn, 64), closed: make(chan struct{})}
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener. It is idempotent, and it drains any
// queued-but-unaccepted conns so their dialers see the pipe close rather
// than hanging on a server that will never read.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		for {
			select {
			case c := <-l.conns:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "httpsim", Net: "mem"}
}

// dial hands one end of a fresh pipe to the listener. The closed channel
// is checked up front: the select below picks randomly among ready cases,
// so without the pre-check a dial racing Close could enqueue onto a
// listener that will never Accept again (Close's drain closes any loser of
// that race, and the pre-check makes dial-after-close fail promptly).
func (l *memListener) dial(ctx context.Context) (net.Conn, error) {
	select {
	case <-l.closed:
		return nil, net.ErrClosed
	default:
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// hostInfo describes one registered hostname.
type hostInfo struct {
	// backend is the CDN edge fronting the host (BackendNone = origin).
	backend world.Backend
	https   bool
	// redirectTo, when set, 301-redirects root requests to the given host
	// (the www-canonical pattern).
	redirectTo string
}

// Network is the virtual internet: a hostname registry, one edge server
// (Cloudflare) and one origin farm server, and a dialer that routes by
// hostname. It is safe for concurrent use after Start.
type Network struct {
	mu    sync.RWMutex
	hosts map[string]hostInfo

	edge   *memListener
	origin *memListener

	edgeSrv   *http.Server
	originSrv *http.Server

	rayCounter atomic.Uint64
	started    bool

	// plan, when set, injects deterministic faults into dials and
	// responses; see SetFaultPlan.
	planMu sync.RWMutex
	plan   *faults.Plan

	// metrics counts injected faults by class; set via SetObs, read with
	// atomic-pointer semantics through planMu for the same reason the plan
	// is. Nil (the default) counts nothing.
	metrics *faults.Metrics
}

// SetObs registers the network's fault-injection counters on reg. Call
// alongside SetFaultPlan; with no registry the network stays
// uninstrumented.
func (n *Network) SetObs(reg *obs.Registry) {
	n.planMu.Lock()
	n.metrics = faults.NewMetrics(reg)
	n.planMu.Unlock()
}

func (n *Network) faultMetrics() *faults.Metrics {
	n.planMu.RLock()
	defer n.planMu.RUnlock()
	return n.metrics
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{hosts: make(map[string]hostInfo)}
}

// AddHost registers a hostname fronted by the given backend (BackendNone
// for an origin-served host).
func (n *Network) AddHost(host string, backend world.Backend, https bool) {
	n.mu.Lock()
	n.hosts[domain.Normalize(host)] = hostInfo{backend: backend, https: https}
	n.mu.Unlock()
}

// AddWorld registers every hostname of every site in the world, each
// fronted by the site's serving backend (its primary CDN when deployed).
// Sites whose www hostname carries more traffic than the apex serve the
// www-canonical pattern: the apex 301-redirects to www.
func (n *Network) AddWorld(w *world.World) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		b := w.ServingBackend(s)
		apex := hostInfo{backend: b, https: s.HTTPS}
		for sub, label := range s.Subdomains {
			if label == "www" && s.SubWeights[sub] > s.SubWeights[0] {
				apex.redirectTo = s.Hostname(sub)
			}
		}
		for sub := range s.Subdomains {
			info := hostInfo{backend: b, https: s.HTTPS}
			if sub == 0 {
				info = apex
			}
			n.hosts[s.Hostname(sub)] = info
		}
	}
	// Infrastructure names deliberately stay unregistered: they are not
	// websites, so probing them fails like it would in the field.
}

// lookup returns the host info.
func (n *Network) lookup(host string) (hostInfo, bool) {
	n.mu.RLock()
	h, ok := n.hosts[host]
	n.mu.RUnlock()
	return h, ok
}

// Start launches the edge and origin servers. Call Close when done.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.edge = newMemListener()
	n.origin = newMemListener()
	n.edgeSrv = &http.Server{Handler: http.HandlerFunc(n.serveEdge)}
	n.originSrv = &http.Server{Handler: http.HandlerFunc(n.serveOrigin)}
	go n.edgeSrv.Serve(n.edge)     //nolint:errcheck // returns on Close
	go n.originSrv.Serve(n.origin) //nolint:errcheck // returns on Close
}

// Close shuts both servers down.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		return
	}
	n.started = false
	n.edgeSrv.Close()
	n.originSrv.Close()
}

// hostOf strips the port from a dial address.
func hostOf(addr string) string {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	return host
}

// SetFaultPlan installs (or, with nil, removes) the fault plan. Faults
// only strike requests that carry a faults.Key — the probe paths stamp one
// per attempt — so a plan's decisions stay pure functions of
// (host, day, attempt) no matter how requests interleave.
func (n *Network) SetFaultPlan(p *faults.Plan) {
	n.planMu.Lock()
	n.plan = p
	n.planMu.Unlock()
}

func (n *Network) faultPlan() *faults.Plan {
	n.planMu.RLock()
	defer n.planMu.RUnlock()
	return n.plan
}

// DialContext routes a dial to the edge (Cloudflare hosts) or the origin
// farm. It implements the http.Transport DialContext signature.
func (n *Network) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	host := domain.Normalize(hostOf(addr))
	info, ok := n.lookup(host)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchHost, host)
	}
	if p := n.faultPlan(); p.Enabled() {
		if key, ok := faults.FromContext(ctx); ok {
			kind := p.Dial(host, key)
			n.faultMetrics().Injected(kind)
			switch kind {
			case faults.DialRefused:
				return nil, fmt.Errorf("dial %s: %w", host, faults.ErrRefused)
			case faults.DialStall:
				// Hang for a fixed simulated latency, then fail. The stall
				// is bounded below any sane attempt timeout so classification
				// never depends on how the timeout races the scheduler.
				t := time.NewTimer(stallLatency)
				defer t.Stop()
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-t.C:
					return nil, fmt.Errorf("dial %s: %w", host, faults.ErrStalled)
				}
			case faults.DialReset:
				c, err := n.dialBackend(ctx, info)
				if err != nil {
					return nil, err
				}
				return &resetConn{Conn: c}, nil
			case faults.DialTruncate:
				c, err := n.dialBackend(ctx, info)
				if err != nil {
					return nil, err
				}
				return &truncConn{Conn: c, remain: truncateAfter}, nil
			}
		}
	}
	return n.dialBackend(ctx, info)
}

// dialBackend connects to the listener serving the host. All deployed CDN
// backends share one edge listener — what distinguishes them is the
// response signature the edge stamps, not the wire.
func (n *Network) dialBackend(ctx context.Context, info hostInfo) (net.Conn, error) {
	if info.backend != world.BackendNone {
		return n.edge.dial(ctx)
	}
	return n.origin.dial(ctx)
}

// Client returns an *http.Client routed through the virtual network. TLS
// dials hand back a plain pipe (the simulation treats transport security as
// already established), so https:// URLs work against the in-memory stack.
func (n *Network) Client() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:       n.DialContext,
			DialTLSContext:    n.DialContext,
			MaxIdleConns:      256,
			DisableKeepAlives: false,
		},
	}
}

// serveEdge is the CDN reverse proxy: it stamps the fronting backend's ray
// header (cf-ray for the Cloudflare-style backend) and Server banner on
// every response for a host it fronts, then serves the origin content.
func (n *Network) serveEdge(w http.ResponseWriter, r *http.Request) {
	host := domain.Normalize(hostOf(r.Host))
	if n.injectResponseFault(w, r, host) {
		return
	}
	info, ok := n.lookup(host)
	if !ok || info.backend == world.BackendNone {
		// A direct-to-edge request for a host no backend fronts.
		w.Header().Set("Server", "cloudflare")
		http.Error(w, "error 1001: DNS resolution error", http.StatusForbidden)
		return
	}
	ray := n.rayCounter.Add(1)
	w.Header().Set(info.backend.RayHeader(), fmt.Sprintf("%012x-SIM", ray))
	w.Header().Set("Server", info.backend.Banner())
	n.writeContent(w, r, host)
}

// injectResponseFault applies the fault plan to one response. It returns
// true when a fault consumed the request. While a plan is installed every
// response is marked Connection: close, so each keyed attempt dials fresh:
// whether a retry would reuse a pooled connection is timing-dependent, and
// letting it skip the dialer would make dial-fault decisions depend on
// scheduling. With no plan (the golden-tested configuration) responses are
// untouched.
func (n *Network) injectResponseFault(w http.ResponseWriter, r *http.Request, host string) bool {
	p := n.faultPlan()
	if !p.Enabled() {
		return false
	}
	w.Header().Set("Connection", "close")
	key, ok := faults.DecodeKey(r.Header.Get(faults.ProbeHeader))
	if !ok {
		return false
	}
	if p.Edge(host, key) == faults.Edge5xx {
		// A transient error from in front of the backend (overloaded load
		// balancer, upstream hiccup): no cf-ray header, the signature the
		// naive single-shot prober misreads as "not Cloudflare-served".
		n.faultMetrics().Injected(faults.Edge5xx)
		http.Error(w, "502 bad gateway (injected fault)", http.StatusBadGateway)
		return true
	}
	return false
}

// serveOrigin serves hosts that are not behind the edge.
func (n *Network) serveOrigin(w http.ResponseWriter, r *http.Request) {
	host := domain.Normalize(hostOf(r.Host))
	if n.injectResponseFault(w, r, host) {
		return
	}
	if _, ok := n.lookup(host); !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Server", "origin/1.0")
	n.writeContent(w, r, host)
}

// writeContent emits a minimal page: enough for HEAD probing and simple GETs.
func (n *Network) writeContent(w http.ResponseWriter, r *http.Request, host string) {
	if info, ok := n.lookup(host); ok && info.redirectTo != "" && r.URL.Path == "/" {
		scheme := "http"
		if info.https {
			scheme = "https"
		}
		http.Redirect(w, r, scheme+"://"+info.redirectTo+"/", http.StatusMovedPermanently)
		return
	}
	if r.URL.Path != "/" && r.URL.Path != "/index.html" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	fmt.Fprintf(w, "<!doctype html><title>%s</title><h1>%s</h1>\n",
		htmlEscape(host), htmlEscape(host))
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("<", "&lt;", ">", "&gt;", "&", "&amp;")
	return r.Replace(s)
}
