package httpsim

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestMemListenerDoubleClose: Close is idempotent.
func TestMemListenerDoubleClose(t *testing.T) {
	l := newMemListener()
	if err := l.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestMemListenerDialAfterClose: dials after Close fail promptly with
// net.ErrClosed instead of enqueueing onto a dead listener.
func TestMemListenerDialAfterClose(t *testing.T) {
	l := newMemListener()
	l.Close()
	done := make(chan error, 1)
	go func() {
		_, err := l.dial(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("dial after close: %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial after close hung")
	}
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept after close: %v, want net.ErrClosed", err)
	}
}

// TestMemListenerCloseDrainsQueued: a conn enqueued but never accepted is
// closed by Close, so its dialer's reads fail instead of blocking forever.
func TestMemListenerCloseDrainsQueued(t *testing.T) {
	l := newMemListener()
	c, err := l.dial(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	l.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read from drained conn succeeded; want closed-pipe error")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("read from drained conn blocked until deadline; Close did not drain it")
	}
}

// TestMemListenerConcurrentLifecycle hammers Accept, dial, and Close
// concurrently (run with -race): every dial must resolve promptly to a
// conn or net.ErrClosed, and nothing may deadlock.
func TestMemListenerConcurrentLifecycle(t *testing.T) {
	for round := 0; round < 20; round++ {
		l := newMemListener()
		var wg sync.WaitGroup

		// Accepter: serves until close, closing what it accepts.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()

		const dialers = 16
		errs := make([]error, dialers)
		for d := 0; d < dialers; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				c, err := l.dial(ctx)
				if err == nil {
					c.Close()
				}
				errs[d] = err
			}(d)
		}

		// Close races the dialers and the accepter.
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Close()
		}()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: lifecycle race deadlocked", round)
		}
		for d, err := range errs {
			if err != nil && !errors.Is(err, net.ErrClosed) {
				t.Fatalf("round %d dialer %d: %v, want nil or net.ErrClosed", round, d, err)
			}
		}
		l.Close()
	}
}
