package sketch

import (
	"fmt"
	"slices"

	"toplists/internal/snapshot"
)

// Distinct serialization: checkpoints need to persist month-spanning
// distinct counters (e.g. Chrome's per-country visitor sets) in whichever
// representation the run uses. The encoding is a tagged union — Exact
// carries its sorted key set, HLL its precision and register file — and
// is canonical: the same logical state always encodes to the same bytes.

const (
	distinctExact = 0
	distinctHLL   = 1
)

// EncodeDistinct appends d's canonical encoding to e.
func EncodeDistinct(e *snapshot.Encoder, d Distinct) {
	switch v := d.(type) {
	case *Exact:
		e.Uvarint(distinctExact)
		keys := make([]uint64, 0, len(v.seen))
		for k := range v.seen {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		e.Uvarint(uint64(len(keys)))
		// Delta-encode the sorted keys; random 64-bit hashes still cost
		// ~9 bytes each, but clustered key spaces compress well.
		var prev uint64
		for _, k := range keys {
			e.Uvarint(k - prev)
			prev = k
		}
	case *HLL:
		e.Uvarint(distinctHLL)
		e.Uvarint(uint64(v.p))
		e.Bytes(v.regs)
	default:
		panic(fmt.Sprintf("sketch: cannot encode Distinct of type %T", d))
	}
}

// DecodeDistinct reads one Distinct encoded by EncodeDistinct.
func DecodeDistinct(d *snapshot.Decoder) (Distinct, error) {
	switch tag := d.Uvarint(); tag {
	case distinctExact:
		n := d.Len(1)
		ex := &Exact{seen: make(map[uint64]struct{}, n)}
		var prev uint64
		for i := 0; i < n; i++ {
			prev += d.Uvarint()
			ex.seen[prev] = struct{}{}
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(ex.seen) != n {
			return nil, fmt.Errorf("%w: duplicate keys in Exact distinct set", snapshot.ErrCorrupt)
		}
		return ex, nil
	case distinctHLL:
		p := d.Uvarint()
		regs := d.Bytes()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if p < 4 || p > 18 || len(regs) != 1<<p {
			return nil, fmt.Errorf("%w: HLL precision %d with %d registers", snapshot.ErrCorrupt, p, len(regs))
		}
		return &HLL{p: uint8(p), regs: regs}, nil
	default:
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: unknown Distinct tag %d", snapshot.ErrCorrupt, tag)
	}
}
