package sketch

import (
	"testing"

	"toplists/internal/simrand"
)

// TestSketchHotPathZeroAllocs pins the shard-local update path at zero
// allocations per event: CountMin.Add, HLL.Add, and steady-state
// SpaceSaving.Add — including the eviction path, which deletes one key and
// inserts another on every call and is exactly the churn that would make a
// Go map grow in place. A regression here turns the million-client run
// into a GC benchmark.
func TestSketchHotPathZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short test caches")
	}

	cm := NewCountMin(1024, 4)
	src := simrand.New(1)
	if avg := testing.AllocsPerRun(200, func() {
		cm.Add(src.Uint64(), 1)
	}); avg != 0 {
		t.Errorf("CountMin.Add allocates %.1f per call", avg)
	}

	hll := NewHLL(11)
	if avg := testing.AllocsPerRun(200, func() {
		hll.Add(src.Uint64())
	}); avg != 0 {
		t.Errorf("HLL.Add allocates %.1f per call", avg)
	}

	// Fill the summary first so every subsequent distinct key takes the
	// eviction path; repeated keys take the update path. Both must be free.
	ss := NewSpaceSaving(256)
	for i := 0; i < 4096; i++ {
		ss.Add(src.Uint64(), 1)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		ss.Add(src.Uint64(), 1) // almost always a fresh key: evicts
	}); avg != 0 {
		t.Errorf("SpaceSaving.Add (eviction path) allocates %.3f per call", avg)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		ss.Add(42, 1) // tracked after the first call: updates
	}); avg != 0 {
		t.Errorf("SpaceSaving.Add (update path) allocates %.3f per call", avg)
	}
}
