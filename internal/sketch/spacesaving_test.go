package sketch

import (
	"testing"
	"testing/quick"

	"toplists/internal/simrand"
)

// ssLawsHold checks the space-saving guarantees of a summary against the
// exact counts of the stream it (directly or via merges) summarized:
//
//  1. every tracked count is an overestimate within its entry error,
//     and entry errors never exceed N/k;
//  2. every key with true weight > N/k is tracked.
func ssLawsHold(t *testing.T, s *SpaceSaving, truth map[uint64]uint64) {
	t.Helper()
	var n uint64
	for _, c := range truth {
		n += c
	}
	if s.N() != n {
		t.Fatalf("N = %d, want %d", s.N(), n)
	}
	bound := s.ErrorBound()
	for _, e := range s.Entries(nil) {
		true_ := truth[e.Key]
		if e.Count < true_ {
			t.Fatalf("key %d: count %d < true %d (space-saving must overestimate)", e.Key, e.Count, true_)
		}
		if e.Count-true_ > e.Err {
			t.Fatalf("key %d: overestimate %d exceeds entry error %d", e.Key, e.Count-true_, e.Err)
		}
		if e.Err > bound {
			t.Fatalf("key %d: entry error %d exceeds N/k bound %d", e.Key, e.Err, bound)
		}
	}
	for k, c := range truth {
		if c > bound {
			if _, _, ok := s.Count(k); !ok {
				t.Fatalf("heavy key %d (weight %d > N/k %d) was not retained", k, c, bound)
			}
		}
	}
}

// TestSpaceSavingLawsZipf runs the laws on a zipf-skewed stream, the shape
// of the traffic the engine actually produces.
func TestSpaceSavingLawsZipf(t *testing.T) {
	for _, k := range []int{8, 64, 512} {
		s := NewSpaceSaving(k)
		src := simrand.New(uint64(k))
		truth := make(map[uint64]uint64)
		for i := 0; i < 50000; i++ {
			// Approximate zipf via nested Intn: heavy head, long tail.
			key := uint64(src.Intn(1 + src.Intn(1+src.Intn(4000))))
			s.Add(key, 1)
			truth[key]++
		}
		ssLawsHold(t, s, truth)
	}
}

// TestSpaceSavingExactWhenUnderCapacity: with fewer distinct keys than k,
// nothing is ever evicted and counts are exact with zero error.
func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(128)
	truth := make(map[uint64]uint64)
	src := simrand.New(3)
	for i := 0; i < 10000; i++ {
		key := uint64(src.Intn(100))
		s.Add(key, 1)
		truth[key]++
	}
	if s.Len() != len(truth) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(truth))
	}
	for k, want := range truth {
		c, err, ok := s.Count(k)
		if !ok || c != want || err != 0 {
			t.Fatalf("key %d: (%d, %d, %v), want (%d, 0, true)", k, c, err, ok, want)
		}
	}
}

// TestSpaceSavingMergeLaws: merging per-shard summaries must satisfy the
// same two laws for the concatenated stream (the mergeable-summaries
// property the day barrier depends on).
func TestSpaceSavingMergeLaws(t *testing.T) {
	err := quick.Check(func(xs, ys, zs []uint16) bool {
		const k = 12
		truth := make(map[uint64]uint64)
		parts := make([]*SpaceSaving, 3)
		for i, stream := range [][]uint16{xs, ys, zs} {
			parts[i] = NewSpaceSaving(k)
			for _, x := range stream {
				key := uint64(x % 64)
				parts[i].Add(key, 1)
				truth[key]++
			}
		}
		merged := parts[0]
		merged.Merge(parts[1], nil)
		merged.Merge(parts[2], nil)

		var n uint64
		for _, c := range truth {
			n += c
		}
		if merged.N() != n {
			return false
		}
		bound := merged.ErrorBound()
		for _, e := range merged.Entries(nil) {
			if e.Count < truth[e.Key] || e.Count-truth[e.Key] > e.Err || e.Err > bound {
				return false
			}
		}
		for key, c := range truth {
			if c > bound {
				if _, _, ok := merged.Count(key); !ok {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSpaceSavingMergeCommutes: A←B and B←A hold identical contents. The
// barrier always merges in ascending shard order, but commutativity means
// that canonical order is a convention, not a correctness requirement.
func TestSpaceSavingMergeCommutes(t *testing.T) {
	err := quick.Check(func(xs, ys []uint16) bool {
		const k = 8
		build := func(stream []uint16) *SpaceSaving {
			s := NewSpaceSaving(k)
			for _, x := range stream {
				s.Add(uint64(x%32), 1)
			}
			return s
		}
		ab, ba := build(xs), build(ys)
		ab.Merge(build(ys), nil)
		ba.Merge(build(xs), nil)
		ea, eb := ab.Entries(nil), ba.Entries(nil)
		if len(ea) != len(eb) || ab.N() != ba.N() {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSpaceSavingMergeExactUnderCapacity: merging summaries that never
// evicted is the exact union — the property that makes the small-N sketch
// path agree with the exact oracle.
func TestSpaceSavingMergeExactUnderCapacity(t *testing.T) {
	a, b := NewSpaceSaving(64), NewSpaceSaving(64)
	for i := 0; i < 30; i++ {
		a.Add(uint64(i), uint64(i+1))
	}
	for i := 20; i < 50; i++ {
		b.Add(uint64(i), 2)
	}
	a.Merge(b, nil)
	for i := 0; i < 50; i++ {
		var want uint64
		if i < 30 {
			want += uint64(i + 1)
		}
		if i >= 20 {
			want += 2
		}
		c, err, ok := a.Count(uint64(i))
		if !ok || c != want || err != 0 {
			t.Fatalf("key %d: (%d, %d, %v), want (%d, 0, true)", i, c, err, ok, want)
		}
	}
}

// TestSpaceSavingEvictionDeterministic: equal streams produce equal
// summaries — including which keys survive eviction ties — so shard
// summaries are a pure function of shard contents.
func TestSpaceSavingEvictionDeterministic(t *testing.T) {
	build := func() []Entry {
		s := NewSpaceSaving(4)
		src := simrand.New(99)
		for i := 0; i < 5000; i++ {
			s.Add(uint64(src.Intn(40)), 1)
		}
		return s.Entries(nil)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("summary sizes differ between identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSpaceSavingEvictionCallback: Add reports the evicted key exactly when
// a full summary replaces its minimum, and the newcomer reuses the victim's
// slot — the hooks payload owners (per-key HLLs) rely on.
func TestSpaceSavingEvictionCallback(t *testing.T) {
	s := NewSpaceSaving(2)
	if _, _, evicted := s.Add(1, 5); evicted {
		t.Fatal("insert into non-full summary reported an eviction")
	}
	victimSlot, _, _ := s.Add(2, 3)
	if _, _, evicted := s.Add(1, 1); evicted {
		t.Fatal("update of a tracked key reported an eviction")
	}
	slot, key, evicted := s.Add(3, 1)
	if !evicted || key != 2 {
		t.Fatalf("Add(3) evicted (%d, %v), want (2, true)", key, evicted)
	}
	if slot != victimSlot {
		t.Fatalf("newcomer slot %d, want the victim's slot %d", slot, victimSlot)
	}
	if s.Slot(3) != slot || s.Slot(2) != -1 {
		t.Fatalf("Slot lookup after eviction: Slot(3)=%d Slot(2)=%d", s.Slot(3), s.Slot(2))
	}
	// The newcomer inherits the evicted minimum as its error bound.
	c, err, ok := s.Count(3)
	if !ok || c != 4 || err != 3 {
		t.Fatalf("newcomer tracked as (%d, %d, %v), want (4, 3, true)", c, err, ok)
	}
}

// TestSpaceSavingMergeDropCallback: re-truncation during merge reports
// every dropped key.
func TestSpaceSavingMergeDropCallback(t *testing.T) {
	a, b := NewSpaceSaving(2), NewSpaceSaving(2)
	a.Add(1, 10)
	a.Add(2, 1)
	b.Add(3, 10)
	b.Add(4, 1)
	dropped := map[uint64]bool{}
	a.Merge(b, func(key uint64) { dropped[key] = true })
	if len(dropped) != 2 || !dropped[2] || !dropped[4] {
		t.Fatalf("dropped %v, want {2, 4}", dropped)
	}
	if _, _, ok := a.Count(1); !ok {
		t.Fatal("heavy key 1 lost in merge")
	}
	if _, _, ok := a.Count(3); !ok {
		t.Fatal("heavy key 3 lost in merge")
	}
}

// FuzzSpaceSaving: arbitrary streams keep the two space-saving laws.
func FuzzSpaceSaving(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3, 1, 4, 5, 1}, uint8(3))
	f.Add([]byte{0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		k := int(kRaw)%16 + 1
		s := NewSpaceSaving(k)
		truth := make(map[uint64]uint64)
		for _, b := range raw {
			key := uint64(b % 48)
			s.Add(key, 1)
			truth[key]++
		}
		ssLawsHold(t, s, truth)
	})
}

// FuzzSketchMerge: random interleavings split across a random number of
// shards, merged in shard order, agree with sequential insertion — exactly
// for count-min and HLL, within the N/k bound for space-saving. This is
// the law the day barrier's canonical merge relies on.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(3))
	f.Add([]byte{200, 200, 1}, uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, nShardsRaw uint8) {
		nShards := int(nShardsRaw)%6 + 1
		const k = 8
		single := NewSpaceSaving(k)
		singleCM := NewCountMin(32, 3)
		singleHLL := NewHLL(6)
		shards := make([]*SpaceSaving, nShards)
		shardCMs := make([]*CountMin, nShards)
		shardHLLs := make([]*HLL, nShards)
		for i := range shards {
			shards[i] = NewSpaceSaving(k)
			shardCMs[i] = NewCountMin(32, 3)
			shardHLLs[i] = NewHLL(6)
		}
		truth := make(map[uint64]uint64)
		for i, b := range raw {
			key := uint64(b % 40)
			single.Add(key, 1)
			singleCM.Add(key, 1)
			singleHLL.Add(key)
			sh := i % nShards
			shards[sh].Add(key, 1)
			shardCMs[sh].Add(key, 1)
			shardHLLs[sh].Add(key)
			truth[key]++
		}
		merged := shards[0]
		mergedCM := shardCMs[0]
		mergedHLL := shardHLLs[0]
		for i := 1; i < nShards; i++ {
			merged.Merge(shards[i], nil)
			mergedCM.Merge(shardCMs[i])
			mergedHLL.Merge(shardHLLs[i])
		}

		// Space-saving: merged summary satisfies the laws for the full
		// stream, and merged counts differ from sequential counts by at
		// most the combined error bounds.
		ssLawsHold(t, merged, truth)
		seqBound, mergedBound := single.ErrorBound(), merged.ErrorBound()
		for _, e := range merged.Entries(nil) {
			if sc, _, ok := single.Count(e.Key); ok {
				diff := sc - e.Count
				if e.Count > sc {
					diff = e.Count - sc
				}
				if diff > seqBound+mergedBound {
					t.Fatalf("key %d: merged %d vs sequential %d differ beyond %d",
						e.Key, e.Count, sc, seqBound+mergedBound)
				}
			}
		}

		// Count-min and HLL merges are exact: identical grids/registers.
		for i, v := range singleCM.rows {
			if mergedCM.rows[i] != v {
				t.Fatalf("count-min cell %d: merged %d != sequential %d", i, mergedCM.rows[i], v)
			}
		}
		for i, r := range singleHLL.regs {
			if mergedHLL.regs[i] != r {
				t.Fatalf("HLL register %d: merged %d != sequential %d", i, mergedHLL.regs[i], r)
			}
		}
	})
}
