package sketch

// Config selects between exact and sketch-backed aggregation and sizes the
// sketches. The zero value (Enabled false) is the exact oracle: every
// consumer falls back to the precise data structures it used before the
// sketch layer existed, byte-identical to historical output. With Enabled
// set, consumers accumulate bounded mergeable summaries per traffic shard
// and combine them at the day barrier.
type Config struct {
	// Enabled switches sketch-backed aggregation on. Off (the default) is
	// the exact path.
	Enabled bool

	// Shards is the number of logical traffic shards whose summaries meet
	// at the day barrier (default 8). It is fixed independently of the
	// worker count: workers process logical shards, and the barrier merges
	// summaries in ascending shard order, so output is byte-identical at
	// any parallelism.
	Shards int

	// TopK is the space-saving capacity of each per-shard candidate
	// summary (default 4096). Published sketch-mode rankings are truncated
	// to the merged candidate set, so list depth is bounded by roughly
	// Shards×TopK rather than the universe size.
	TopK int

	// CMWidth and CMDepth size the count-min sketches estimating request
	// frequencies (defaults 8192×4, ≈256 KiB per combo per shard).
	CMWidth, CMDepth int

	// HLLPrecision is the register exponent of the per-key HyperLogLog
	// distinct counters (default 11: 2 KiB per tracked key, ≈2.3% standard
	// error; small counts fall in the near-exact linear-counting range).
	HLLPrecision uint8

	// ProfileK bounds the per-client-IP domain profile kept by the Secrank
	// voting reconstruction (default 64 — profiles beyond that are
	// truncated by space-saving rather than grown).
	ProfileK int
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.TopK <= 0 {
		c.TopK = 4096
	}
	if c.CMWidth <= 0 {
		c.CMWidth = 8192
	}
	if c.CMDepth <= 0 {
		c.CMDepth = 4
	}
	if c.HLLPrecision == 0 {
		c.HLLPrecision = 11
	}
	if c.ProfileK <= 0 {
		c.ProfileK = 64
	}
	return c
}

// NewDistinct returns a distinct counter per the configuration: exact when
// sketching is off, a HyperLogLog at the configured precision when on.
func (c Config) NewDistinct() Distinct {
	if !c.Enabled {
		return NewExact()
	}
	return NewHLL(c.HLLPrecision)
}

// NewCountMin returns a frequency sketch at the configured dimensions.
func (c Config) NewCountMin() *CountMin {
	return NewCountMin(c.CMWidth, c.CMDepth)
}

// NewTopK returns a candidate summary at the configured capacity.
func (c Config) NewTopK() *SpaceSaving {
	return NewSpaceSaving(c.TopK)
}

// NewTopKDistinct returns a candidate summary with per-key distinct
// counters at the configured capacity and precision.
func (c Config) NewTopKDistinct() *TopKDistinct {
	return NewTopKDistinct(c.TopK, c.HLLPrecision)
}

// NewProfile returns a bounded per-IP profile summary.
func (c Config) NewProfile() *SpaceSaving {
	return NewSpaceSaving(c.ProfileK)
}
