package sketch

import (
	"testing"
	"testing/quick"

	"toplists/internal/simrand"
)

// exactCounts is the oracle: a map-backed multiset.
func exactCounts(stream []uint64) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, k := range stream {
		m[k]++
	}
	return m
}

// TestCountMinNeverUndercounts is the first sketch law: for any stream,
// every key's estimate is at least its true count.
func TestCountMinNeverUndercounts(t *testing.T) {
	err := quick.Check(func(stream []uint64) bool {
		cm := NewCountMin(64, 3)
		for _, k := range stream {
			cm.Add(k, 1)
		}
		for k, want := range exactCounts(stream) {
			if cm.Estimate(k) < want {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCountMinExactWhenSparse: with far fewer distinct keys than the row
// width, collisions are rare and most estimates are exact; the heavy key's
// estimate is always within the error bound.
func TestCountMinExactWhenSparse(t *testing.T) {
	cm := NewCountMin(4096, 4)
	src := simrand.New(5)
	truth := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		k := uint64(src.Intn(300)) // 300 distinct keys in 4096 columns
		cm.Add(k, 1)
		truth[k]++
	}
	bound := cm.ErrorBound()
	exact := 0
	for k, want := range truth {
		got := cm.Estimate(k)
		if got < want {
			t.Fatalf("key %d: estimate %d < true %d", k, got, want)
		}
		if got-want > bound {
			t.Errorf("key %d: overestimate %d exceeds bound %d", k, got-want, bound)
		}
		if got == want {
			exact++
		}
	}
	if exact < len(truth)*9/10 {
		t.Errorf("only %d/%d estimates exact in the sparse regime", exact, len(truth))
	}
}

// TestCountMinMergeEqualsSingleStream: the count-min grid is a linear
// sketch, so merging per-shard sketches is exactly the sketch of the
// concatenated stream, regardless of how the stream is split.
func TestCountMinMergeEqualsSingleStream(t *testing.T) {
	err := quick.Check(func(xs, ys, zs []uint64) bool {
		single := NewCountMin(64, 4)
		for _, s := range [][]uint64{xs, ys, zs} {
			for _, k := range s {
				single.Add(k, 1)
			}
		}
		a, b, c := NewCountMin(64, 4), NewCountMin(64, 4), NewCountMin(64, 4)
		for _, k := range xs {
			a.Add(k, 1)
		}
		for _, k := range ys {
			b.Add(k, 1)
		}
		for _, k := range zs {
			c.Add(k, 1)
		}
		// Right-leaning merge order: a ← (b ← c) must equal the flat
		// stream too, pinning associativity alongside the sum itself.
		b.Merge(c)
		a.Merge(b)
		if a.N() != single.N() {
			return false
		}
		for i, v := range single.rows {
			if a.rows[i] != v {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCountMinMergeCommutes: cell-wise sums commute, so shard merge order
// cannot matter.
func TestCountMinMergeCommutes(t *testing.T) {
	err := quick.Check(func(xs, ys []uint64) bool {
		a1, b1 := NewCountMin(32, 2), NewCountMin(32, 2)
		a2, b2 := NewCountMin(32, 2), NewCountMin(32, 2)
		for _, k := range xs {
			a1.Add(k, 1)
			a2.Add(k, 1)
		}
		for _, k := range ys {
			b1.Add(k, 1)
			b2.Add(k, 1)
		}
		a1.Merge(b1) // a then b
		b2.Merge(a2) // b then a
		if a1.N() != b2.N() {
			return false
		}
		for i, v := range a1.rows {
			if b2.rows[i] != v {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountMinWeightedAddAndReset(t *testing.T) {
	cm := NewCountMin(16, 2)
	cm.Add(7, 10)
	cm.Add(7, 5)
	if got := cm.Estimate(7); got < 15 {
		t.Fatalf("weighted estimate %d < 15", got)
	}
	if cm.N() != 15 {
		t.Fatalf("N = %d, want 15", cm.N())
	}
	cm.Reset()
	if cm.N() != 0 || cm.Estimate(7) != 0 {
		t.Fatal("Reset did not clear the grid")
	}
}

func TestCountMinDimensionClamping(t *testing.T) {
	cm := NewCountMin(100, 0)
	if cm.Width() != 128 || cm.Depth() != 1 {
		t.Fatalf("dims %dx%d, want 128x1", cm.Width(), cm.Depth())
	}
	if cm.MemBytes() != 128*8 {
		t.Fatalf("MemBytes %d", cm.MemBytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging incompatible dimensions did not panic")
		}
	}()
	cm.Merge(NewCountMin(16, 1))
}

// FuzzCountMin feeds arbitrary key streams split at arbitrary points and
// checks the two laws that the aggregation path depends on: estimates
// never undercount, and a merge of the two halves is byte-equal to the
// single-stream sketch.
func FuzzCountMin(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0, 0, 0, 0, 9, 9}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, splitAt uint8) {
		stream := make([]uint64, 0, len(raw))
		for _, b := range raw {
			stream = append(stream, uint64(b%32))
		}
		split := 0
		if len(stream) > 0 {
			split = int(splitAt) % (len(stream) + 1)
		}
		single := NewCountMin(32, 3)
		a, b := NewCountMin(32, 3), NewCountMin(32, 3)
		for i, k := range stream {
			single.Add(k, 1)
			if i < split {
				a.Add(k, 1)
			} else {
				b.Add(k, 1)
			}
		}
		a.Merge(b)
		for i, v := range single.rows {
			if a.rows[i] != v {
				t.Fatalf("merged grid differs from single-stream at cell %d", i)
			}
		}
		for k, want := range exactCounts(stream) {
			if got := single.Estimate(k); got < want {
				t.Fatalf("key %d undercounted: %d < %d", k, got, want)
			}
		}
	})
}
