package sketch

// CountMin is a count-min sketch (Cormode & Muthukrishnan): a depth×width
// grid of counters where each key increments one counter per row, selected
// by a per-row hash. Estimates take the minimum over the rows, so they can
// only overestimate — never undercount — with error at most e·N/width at
// probability 1-(1/e)^depth over the hash choice.
//
// Counter placement is a pure function of (key, row), so two sketches with
// equal dimensions fed equal multisets hold identical grids, and Merge (a
// cell-wise sum) is exact: merging per-shard sketches equals feeding one
// sketch the concatenated stream, in any merge order. That property is what
// lets the traffic engine accumulate per-shard frequency summaries and
// combine them at the day barrier deterministically.
type CountMin struct {
	width int // power of two
	depth int
	mask  uint64
	rows  []uint64 // depth × width, row-major
	n     uint64   // total weight added
}

// cmRowSeed returns the fixed per-row hash seed: a splitmix64 step of the
// row index, the same for every sketch so equal configurations agree.
func cmRowSeed(row int) uint64 {
	z := uint64(row+1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewCountMin returns a sketch with the given width (rounded up to a power
// of two, minimum 16) and depth (clamped to [1, 16]).
func NewCountMin(width, depth int) *CountMin {
	if depth < 1 {
		depth = 1
	}
	if depth > 16 {
		depth = 16
	}
	w := 16
	for w < width {
		w <<= 1
	}
	return &CountMin{
		width: w,
		depth: depth,
		mask:  uint64(w - 1),
		rows:  make([]uint64, w*depth),
	}
}

// Width returns the (rounded) row width.
func (c *CountMin) Width() int { return c.width }

// Depth returns the number of rows.
func (c *CountMin) Depth() int { return c.depth }

// Add records weight n for the key.
func (c *CountMin) Add(key uint64, n uint64) {
	c.n += n
	base := 0
	for r := 0; r < c.depth; r++ {
		idx := mix(key^cmRowSeed(r)) & c.mask
		c.rows[base+int(idx)] += n
		base += c.width
	}
}

// Estimate returns the key's estimated total weight: an upper bound on the
// true weight (the sketch never undercounts).
func (c *CountMin) Estimate(key uint64) uint64 {
	base := 0
	est := ^uint64(0)
	for r := 0; r < c.depth; r++ {
		idx := mix(key^cmRowSeed(r)) & c.mask
		if v := c.rows[base+int(idx)]; v < est {
			est = v
		}
		base += c.width
	}
	return est
}

// N returns the total weight added.
func (c *CountMin) N() uint64 { return c.n }

// ErrorBound returns the standard additive error guarantee e·N/width
// (rounded up): with probability 1-(1/e)^depth an estimate exceeds the true
// weight by less than this.
func (c *CountMin) ErrorBound() uint64 {
	// e ≈ 2.71828; compute ceil(e*N/width) in integers to stay exact for
	// deterministic gauges: e*N ≈ N*2718281829/1e9.
	const eScaled = 2718281829 // e × 1e9, rounded up
	hi := c.n / 1_000_000_000
	lo := c.n % 1_000_000_000
	num := hi*eScaled + (lo*eScaled+999_999_999)/1_000_000_000
	return (num + uint64(c.width) - 1) / uint64(c.width)
}

// Merge folds another sketch of identical dimensions into this one. The
// result is exactly the sketch of the concatenated streams.
func (c *CountMin) Merge(o *CountMin) {
	if o.width != c.width || o.depth != c.depth {
		panic("sketch: merging incompatible CountMin dimensions")
	}
	for i, v := range o.rows {
		c.rows[i] += v
	}
	c.n += o.n
}

// Reset returns the sketch to empty for reuse.
func (c *CountMin) Reset() {
	clear(c.rows)
	c.n = 0
}

// MemBytes returns the logical memory footprint of the grid, a pure
// function of the configuration (safe for deterministic gauges).
func (c *CountMin) MemBytes() int { return len(c.rows) * 8 }
