package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"toplists/internal/simrand"
)

func TestExactBasic(t *testing.T) {
	e := NewExact()
	for i := 0; i < 100; i++ {
		e.Add(uint64(i % 10))
	}
	if e.Count() != 10 {
		t.Fatalf("Count = %v, want 10", e.Count())
	}
	e.Reset()
	if e.Count() != 0 {
		t.Fatalf("Count after Reset = %v", e.Count())
	}
}

func TestExactMerge(t *testing.T) {
	a, b := NewExact(), NewExact()
	for i := 0; i < 50; i++ {
		a.Add(uint64(i))
	}
	for i := 25; i < 75; i++ {
		b.Add(uint64(i))
	}
	a.Merge(b)
	if a.Count() != 75 {
		t.Fatalf("merged Count = %v, want 75", a.Count())
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 10000, 200000} {
		h := NewHLL(14)
		src := simrand.New(uint64(n))
		for i := 0; i < n; i++ {
			h.Add(src.Uint64())
		}
		got := h.Count()
		relErr := math.Abs(got-float64(n)) / float64(n)
		// Standard error for p=14 is ~0.81%; allow 5 sigma.
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate %v, rel err %.3f", n, got, relErr)
		}
	}
}

func TestHLLSequentialIDs(t *testing.T) {
	// Client IDs in the simulation are small sequential integers; the
	// internal mixer must make these safe.
	h := NewHLL(14)
	const n = 50000
	for i := 0; i < n; i++ {
		h.Add(uint64(i))
	}
	got := h.Count()
	if math.Abs(got-n)/n > 0.05 {
		t.Errorf("sequential IDs: estimate %v for n=%d", got, n)
	}
}

func TestHLLDuplicatesIdempotent(t *testing.T) {
	err := quick.Check(func(items []uint64) bool {
		if len(items) == 0 {
			return true
		}
		a := NewHLL(12)
		b := NewHLL(12)
		for _, it := range items {
			a.Add(it)
			b.Add(it)
			b.Add(it) // duplicates must not change the estimate
		}
		return a.Count() == b.Count()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	err := quick.Check(func(xs, ys []uint64) bool {
		merged := NewHLL(12)
		union := NewHLL(12)
		a := NewHLL(12)
		b := NewHLL(12)
		for _, x := range xs {
			a.Add(x)
			union.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			union.Add(y)
		}
		merged.Merge(a)
		merged.Merge(b)
		return merged.Count() == union.Count()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHLLMonotone(t *testing.T) {
	h := NewHLL(10)
	src := simrand.New(7)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		h.Add(src.Uint64())
		if i%500 == 0 {
			c := h.Count()
			if c < prev {
				t.Fatalf("estimate decreased: %v -> %v at %d", prev, c, i)
			}
			prev = c
		}
	}
}

func TestHLLReset(t *testing.T) {
	h := NewHLL(10)
	for i := 0; i < 1000; i++ {
		h.Add(uint64(i) * 7919)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatalf("Count after Reset = %v", h.Count())
	}
}

func TestMergeTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHLL(10).Merge(NewExact())
}

func TestHLLPrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHLL(10).Merge(NewHLL(12))
}

func TestNewHLLBounds(t *testing.T) {
	for _, p := range []uint8{0, 3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%d: expected panic", p)
				}
			}()
			NewHLL(p)
		}()
	}
}

func TestFactories(t *testing.T) {
	if _, ok := ExactFactory().(*Exact); !ok {
		t.Error("ExactFactory type")
	}
	if _, ok := HLLFactory(12)().(*HLL); !ok {
		t.Error("HLLFactory type")
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := NewHLL(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(uint64(i))
	}
}

func BenchmarkExactAdd(b *testing.B) {
	e := NewExact()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Add(uint64(i % 100000))
	}
}
