// Package sketch provides mergeable, memory-bounded stream summaries for
// the aggregation pipeline: exact and HyperLogLog distinct counters behind
// the Distinct interface, a count-min frequency sketch (CountMin), and a
// space-saving top-k summary (SpaceSaving), all sized through one Config.
//
// Every summary supports Merge and Reset, and merging per-shard summaries
// is either exactly (CountMin: cell-wise sums; HLL: register maxima) or
// within proven bounds (SpaceSaving) equal to summarizing the concatenated
// stream — which is what lets the traffic engine accumulate bounded state
// per shard and combine fixed-size summaries at the day barrier instead of
// replaying per-event buffers. With Config.Enabled off the factories fall
// back to exact structures, the oracle the sketch path is tested against.
package sketch

import "math"

// Distinct counts the approximate or exact number of distinct uint64 items.
type Distinct interface {
	// Add records an item. Items are expected to be pre-hashed or uniformly
	// distributed (client identities in the simulation are hashed IDs).
	Add(item uint64)
	// Count returns the estimated number of distinct items added.
	Count() float64
	// Merge folds another counter of the same concrete type into this one.
	// It panics on a type mismatch.
	Merge(other Distinct)
	// Reset returns the counter to empty for reuse.
	Reset()
}

// Exact is a map-backed exact distinct counter.
type Exact struct {
	seen map[uint64]struct{}
}

// NewExact returns an empty exact counter.
func NewExact() *Exact {
	return &Exact{seen: make(map[uint64]struct{})}
}

// Add implements Distinct.
func (e *Exact) Add(item uint64) { e.seen[item] = struct{}{} }

// Count implements Distinct.
func (e *Exact) Count() float64 { return float64(len(e.seen)) }

// Merge implements Distinct.
func (e *Exact) Merge(other Distinct) {
	o, ok := other.(*Exact)
	if !ok {
		panic("sketch: merging Exact with non-Exact")
	}
	for k := range o.seen {
		e.seen[k] = struct{}{}
	}
}

// Reset implements Distinct.
func (e *Exact) Reset() { clear(e.seen) }

// MemBytes returns the logical footprint of the seen-set.
func (e *Exact) MemBytes() int { return len(e.seen) * 16 }

// HLL is a HyperLogLog counter with 2^p registers and the standard
// small-range (linear counting) correction. p=14 gives a typical relative
// error of about 0.81%, plenty below the simulation's sampling noise.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL returns a HyperLogLog with 2^p registers, 4 <= p <= 18.
func NewHLL(p uint8) *HLL {
	if p < 4 || p > 18 {
		panic("sketch: HLL precision out of range [4,18]")
	}
	return &HLL{p: p, regs: make([]uint8, 1<<p)}
}

// mix applies a 64-bit finalizer so that sequential IDs are safe to Add.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add implements Distinct.
func (h *HLL) Add(item uint64) {
	x := mix(item)
	idx := x >> (64 - h.p)
	w := x<<h.p | 1<<(h.p-1) // ensure termination
	rho := uint8(1)
	for w&(1<<63) == 0 {
		rho++
		w <<= 1
	}
	if rho > h.regs[idx] {
		h.regs[idx] = rho
	}
}

// Count implements Distinct.
func (h *HLL) Count() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(h.regs)) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		return m * math.Log(m/float64(zeros))
	}
	return est
}

func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// Merge implements Distinct.
func (h *HLL) Merge(other Distinct) {
	o, ok := other.(*HLL)
	if !ok || o.p != h.p {
		panic("sketch: merging incompatible HLLs")
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// Reset implements Distinct.
func (h *HLL) Reset() { clear(h.regs) }

// Precision returns the register exponent p.
func (h *HLL) Precision() uint8 { return h.p }

// MemBytes returns the register array footprint, a pure function of the
// precision (safe for deterministic gauges).
func (h *HLL) MemBytes() int { return len(h.regs) }

// Factory builds fresh Distinct counters; the pipeline holds one per metric.
type Factory func() Distinct

// ExactFactory returns exact counters.
func ExactFactory() Distinct { return NewExact() }

// HLLFactory returns a factory of HLLs at the given precision.
func HLLFactory(p uint8) Factory {
	return func() Distinct { return NewHLL(p) }
}
