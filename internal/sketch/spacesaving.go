package sketch

import "sort"

// Entry is one tracked key of a SpaceSaving summary. Count is an upper
// bound on the key's true weight; the overestimate is at most Err, which is
// itself at most N/k. Slot identifies the entry's storage cell: slots are
// stable across Add calls (an eviction reuses the victim's slot for the
// newcomer), which lets callers keep per-key payloads in a slot-indexed
// slice with zero steady-state allocation. Merge and Reset renumber slots.
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
	Slot  int32
}

// SpaceSaving is the space-saving heavy-hitters summary (Metwally, Agrawal
// & El Abbadi): at most k tracked keys, each with a count and an error
// bound. Invariants, for every tracked key:
//
//	true weight ≤ Count ≤ true weight + Err,   Err ≤ N/k
//
// and every key whose true weight exceeds N/k is tracked. Eviction and
// merge ties are resolved by a fixed total order on (count, err, key), so
// summary contents are a pure function of the input stream — never of map
// iteration order or scheduling. Keys must therefore be stable identifiers
// (site IDs, interned-name hashes), not values that vary run to run.
//
// Merge implements the mergeable-summaries combination (Agarwal et al.;
// Cafaro, Pulimeno & Tempesta): counts of keys absent from one side are
// bounded by that side's minimum count, the union is re-truncated to the k
// largest, and both invariants above hold for the concatenated stream. A
// merge of summaries that never evicted (fewer than k distinct keys each)
// is the exact union.
//
// The key index is a linear-probing table with backward-shift deletion
// rather than a Go map: eviction churn (delete one key, insert another,
// forever) must not allocate, and Go maps occasionally grow in place to
// clean tombstones under exactly that workload.
type SpaceSaving struct {
	k int
	n uint64

	entries []ssEntry // slot-indexed; grows on demand up to k
	heap    []int32   // min-heap of slots, evictee at the root
	pos     []int32   // slot -> heap index

	// Open-addressing key index: tslots[i] is the slot of tkeys[i], or -1
	// for an empty cell. Sized to at least twice the entry count.
	tkeys  []uint64
	tslots []int32
	tmask  uint64
}

type ssEntry struct {
	key   uint64
	count uint64
	err   uint64
}

// NewSpaceSaving returns an empty summary tracking at most k keys (minimum
// 1). Storage grows with the number of distinct keys seen, up to k.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	s := &SpaceSaving{k: k}
	s.growIndex(16)
	return s
}

// K returns the summary's capacity.
func (s *SpaceSaving) K() int { return s.k }

// N returns the total weight added (including weight merged in).
func (s *SpaceSaving) N() uint64 { return s.n }

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// ErrorBound returns ceil(N/k), the worst-case overestimate of any count.
func (s *SpaceSaving) ErrorBound() uint64 {
	return (s.n + uint64(s.k) - 1) / uint64(s.k)
}

// --- key index -----------------------------------------------------------

func (s *SpaceSaving) growIndex(capacity int) {
	old := s.tkeys
	oldSlots := s.tslots
	s.tkeys = make([]uint64, capacity)
	s.tslots = make([]int32, capacity)
	for i := range s.tslots {
		s.tslots[i] = -1
	}
	s.tmask = uint64(capacity - 1)
	for i, slot := range oldSlots {
		if slot >= 0 {
			s.idxInsert(old[i], slot)
		}
	}
}

// idxFind returns the key's slot, or -1.
func (s *SpaceSaving) idxFind(key uint64) int32 {
	i := mix(key) & s.tmask
	for {
		if s.tslots[i] < 0 {
			return -1
		}
		if s.tkeys[i] == key {
			return s.tslots[i]
		}
		i = (i + 1) & s.tmask
	}
}

// idxInsert records key -> slot; the key must not be present.
func (s *SpaceSaving) idxInsert(key uint64, slot int32) {
	i := mix(key) & s.tmask
	for s.tslots[i] >= 0 {
		i = (i + 1) & s.tmask
	}
	s.tkeys[i] = key
	s.tslots[i] = slot
}

// idxDelete removes a present key using backward-shift deletion, leaving
// no tombstones (steady-state churn never allocates).
func (s *SpaceSaving) idxDelete(key uint64) {
	mask := s.tmask
	i := mix(key) & mask
	for s.tslots[i] < 0 || s.tkeys[i] != key {
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if s.tslots[j] < 0 {
			break
		}
		ideal := mix(s.tkeys[j]) & mask
		// Shift j's element into the hole at i unless its ideal cell lies
		// cyclically within (i, j] — then the probe chain still reaches it.
		if (j > i && (ideal <= i || ideal > j)) || (j < i && (ideal <= i && ideal > j)) {
			s.tkeys[i] = s.tkeys[j]
			s.tslots[i] = s.tslots[j]
			i = j
		}
	}
	s.tslots[i] = -1
}

// --- heap ----------------------------------------------------------------

// evictBefore reports whether slot a is a better eviction candidate than
// slot b: smaller count first, then larger error (less reliable), then
// larger key. A fixed total order keeps eviction deterministic.
func (s *SpaceSaving) evictBefore(a, b int32) bool {
	ea, eb := &s.entries[a], &s.entries[b]
	if ea.count != eb.count {
		return ea.count < eb.count
	}
	if ea.err != eb.err {
		return ea.err > eb.err
	}
	return ea.key > eb.key
}

func (s *SpaceSaving) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.evictBefore(s.heap[i], s.heap[parent]) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *SpaceSaving) siftDown(i int) {
	n := len(s.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && s.evictBefore(s.heap[l], s.heap[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && s.evictBefore(s.heap[r], s.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.swap(i, least)
		i = least
	}
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = int32(i)
	s.pos[s.heap[j]] = int32(j)
}

// --- updates -------------------------------------------------------------

// Add records weight n for the key and returns the key's entry slot. When
// the summary is full and the key is new, the current eviction candidate
// is replaced in place — its count inherited as the newcomer's error bound
// — and the evicted key is reported so callers can recycle any per-slot
// payload (e.g. an attached HLL). Steady-state Add never allocates.
func (s *SpaceSaving) Add(key uint64, n uint64) (slot int32, evicted uint64, didEvict bool) {
	s.n += n
	if slot = s.idxFind(key); slot >= 0 {
		s.entries[slot].count += n
		s.siftDown(int(s.pos[slot]))
		return slot, 0, false
	}
	if len(s.entries) < s.k {
		slot = int32(len(s.entries))
		if 2*(len(s.entries)+1) > len(s.tkeys) {
			s.growIndex(2 * len(s.tkeys))
		}
		s.entries = append(s.entries, ssEntry{key: key, count: n})
		s.heap = append(s.heap, slot)
		s.pos = append(s.pos, int32(len(s.heap)-1))
		s.idxInsert(key, slot)
		s.siftUp(len(s.heap) - 1)
		return slot, 0, false
	}
	slot = s.heap[0]
	e := &s.entries[slot]
	evicted = e.key
	s.idxDelete(evicted)
	min := e.count
	*e = ssEntry{key: key, count: min + n, err: min}
	s.idxInsert(key, slot)
	s.siftDown(0)
	return slot, evicted, true
}

// Count returns the tracked count and error bound for a key.
func (s *SpaceSaving) Count(key uint64) (count, err uint64, ok bool) {
	slot := s.idxFind(key)
	if slot < 0 {
		return 0, 0, false
	}
	return s.entries[slot].count, s.entries[slot].err, true
}

// Slot returns the key's entry slot, or -1 when untracked.
func (s *SpaceSaving) Slot(key uint64) int32 { return s.idxFind(key) }

// minCount returns the smallest tracked count when the summary is full, or
// 0 otherwise: the upper bound on the true weight of any untracked key.
func (s *SpaceSaving) minCount() uint64 {
	if len(s.entries) < s.k {
		return 0
	}
	return s.entries[s.heap[0]].count
}

// Entries appends the tracked keys to dst in canonical order — count
// descending, then error ascending, then key ascending — and returns it.
// The canonical order is a pure function of summary contents, never of
// insertion history, so it is safe to rank from.
func (s *SpaceSaving) Entries(dst []Entry) []Entry {
	for i := range s.entries {
		e := &s.entries[i]
		dst = append(dst, Entry{Key: e.key, Count: e.count, Err: e.err, Slot: int32(i)})
	}
	tail := dst[len(dst)-len(s.entries):]
	sortEntries(tail)
	return dst
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].Count != es[b].Count {
			return es[a].Count > es[b].Count
		}
		if es[a].Err != es[b].Err {
			return es[a].Err < es[b].Err
		}
		return es[a].Key < es[b].Key
	})
}

// Merge folds another summary (same capacity) into this one, implementing
// the mergeable-summaries combination. o is not modified. The invariants
// hold afterwards for the concatenated stream; keys dropped by the
// re-truncation are reported through drop (if non-nil) so callers can
// release per-key payloads. Merge renumbers slots — callers keeping
// slot-indexed payloads must rebuild them (see Slot). Merging runs at the
// day barrier, not on the per-event path, so it may allocate.
func (s *SpaceSaving) Merge(o *SpaceSaving, drop func(key uint64)) {
	if o.k != s.k {
		panic("sketch: merging SpaceSaving summaries of different capacity")
	}
	minS, minO := s.minCount(), o.minCount()
	combined := make([]Entry, 0, len(s.entries)+len(o.entries))
	for i := range s.entries {
		e := &s.entries[i]
		c, err := e.count, e.err
		if oc, oe, ok := o.Count(e.key); ok {
			c += oc
			err += oe
		} else {
			c += minO
			err += minO
		}
		combined = append(combined, Entry{Key: e.key, Count: c, Err: err})
	}
	for i := range o.entries {
		e := &o.entries[i]
		if s.idxFind(e.key) >= 0 {
			continue
		}
		combined = append(combined, Entry{Key: e.key, Count: e.count + minS, Err: e.err + minS})
	}
	sortEntries(combined)
	keep := combined
	if len(keep) > s.k {
		keep = combined[:s.k]
		if drop != nil {
			for _, e := range combined[s.k:] {
				drop(e.Key)
			}
		}
	}

	n := s.n + o.n
	s.Reset()
	s.n = n
	for _, e := range keep {
		slot := int32(len(s.entries))
		if 2*(len(s.entries)+1) > len(s.tkeys) {
			s.growIndex(2 * len(s.tkeys))
		}
		s.entries = append(s.entries, ssEntry{key: e.Key, count: e.Count, err: e.Err})
		s.heap = append(s.heap, slot)
		s.pos = append(s.pos, int32(len(s.heap)-1))
		s.idxInsert(e.Key, slot)
		s.siftUp(len(s.heap) - 1)
	}
}

// Reset returns the summary to empty for reuse, keeping capacity.
func (s *SpaceSaving) Reset() {
	s.entries = s.entries[:0]
	s.heap = s.heap[:0]
	s.pos = s.pos[:0]
	for i := range s.tslots {
		s.tslots[i] = -1
	}
	s.n = 0
}

// MemBytes returns the logical memory footprint: a function of the number
// of tracked keys only (safe for deterministic gauges).
func (s *SpaceSaving) MemBytes() int {
	return len(s.entries)*24 + len(s.heap)*4 + len(s.pos)*4 + len(s.tkeys)*12
}
