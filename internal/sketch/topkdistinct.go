package sketch

// TopKDistinct couples a SpaceSaving candidate summary with one HLL per
// tracked key: the shape of a bounded "unique visitors per name" aggregation.
// Candidate selection is by event volume (the space-saving count), while the
// published score per candidate is the HLL's distinct estimate. HLLs ride in
// a slot-indexed slice so the per-event path reuses the evicted key's
// counter in place and never allocates in steady state; evicted and merged
// counters are recycled through a free list.
type TopKDistinct struct {
	SS *SpaceSaving

	p        uint8
	payloads []*HLL // slot-indexed, parallel to SS entries
	free     []*HLL
}

// NewTopKDistinct returns an empty summary tracking at most k keys with
// 2^p-register HLL payloads.
func NewTopKDistinct(k int, p uint8) *TopKDistinct {
	return &TopKDistinct{SS: NewSpaceSaving(k), p: p}
}

func (t *TopKDistinct) alloc() *HLL {
	if n := len(t.free); n > 0 {
		h := t.free[n-1]
		t.free = t.free[:n-1]
		h.Reset()
		return h
	}
	return NewHLL(t.p)
}

// Add records one event for key carrying the distinct item (e.g. a client
// IP). When the summary is full the coldest key's counter is recycled for
// the newcomer, so a key's distinct estimate covers only its tracked span —
// the same information loss the space-saving count bound already admits.
func (t *TopKDistinct) Add(key uint64, item uint64) {
	slot, _, evicted := t.SS.Add(key, 1)
	if int(slot) == len(t.payloads) {
		t.payloads = append(t.payloads, t.alloc())
	} else if evicted {
		t.payloads[slot].Reset()
	}
	t.payloads[slot].Add(item)
}

// Distinct returns the tracked key's distinct-item estimate.
func (t *TopKDistinct) Distinct(key uint64) (float64, bool) {
	slot := t.SS.Slot(key)
	if slot < 0 {
		return 0, false
	}
	return t.payloads[slot].Count(), true
}

// DistinctAt returns the distinct-item estimate for an entry slot (as
// reported by Entries).
func (t *TopKDistinct) DistinctAt(slot int32) float64 {
	return t.payloads[slot].Count()
}

// Entries appends the tracked keys in canonical order; each entry's Slot
// indexes DistinctAt.
func (t *TopKDistinct) Entries(dst []Entry) []Entry { return t.SS.Entries(dst) }

// Merge folds another summary into this one: space-saving counts combine
// per the mergeable-summaries rule, and surviving keys' HLLs take register
// maxima over both sides (a key only one side tracked keeps that side's
// registers). o is not modified. Runs at the day barrier, so it may
// allocate.
func (t *TopKDistinct) Merge(o *TopKDistinct) {
	mine := make(map[uint64]*HLL, t.SS.Len())
	for _, e := range t.SS.Entries(nil) {
		mine[e.Key] = t.payloads[e.Slot]
	}
	theirs := make(map[uint64]*HLL, o.SS.Len())
	for _, e := range o.SS.Entries(nil) {
		theirs[e.Key] = o.payloads[e.Slot]
	}
	t.SS.Merge(o.SS, nil)

	t.payloads = make([]*HLL, t.SS.Len())
	for _, e := range t.SS.Entries(nil) {
		h := mine[e.Key]
		if h == nil {
			h = t.alloc()
		}
		if oh := theirs[e.Key]; oh != nil {
			h.Merge(oh)
		}
		t.payloads[e.Slot] = h
		delete(mine, e.Key)
	}
	// Counters of dropped keys go back to the pool.
	for _, h := range mine {
		t.free = append(t.free, h)
	}
}

// Reset empties the summary, returning every counter to the pool.
func (t *TopKDistinct) Reset() {
	t.SS.Reset()
	t.free = append(t.free, t.payloads...)
	t.payloads = t.payloads[:0]
}

// MemBytes returns the logical footprint: the space-saving summary plus one
// HLL per tracked key.
func (t *TopKDistinct) MemBytes() int {
	return t.SS.MemBytes() + len(t.payloads)*(1<<t.p)
}
