package providers

import (
	"strings"
	"testing"

	"toplists/internal/chrome"
	"toplists/internal/linkgraph"
	"toplists/internal/psl"
	"toplists/internal/rank"
	"toplists/internal/simrand"
	"toplists/internal/stats"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// fixture wires the full provider stack over a small world.
type fixture struct {
	w        *world.World
	alexa    *Alexa
	umbrella *Umbrella
	majestic *Majestic
	secrank  *Secrank
	tranco   *Tranco
	trexa    *Trexa
	crux     *Crux
	days     int
}

func buildFixture(t testing.TB, seed uint64, days int) *fixture {
	t.Helper()
	w := world.Generate(world.Config{Seed: seed, NumSites: 2000})
	l := psl.Default()
	g := linkgraph.Build(w, linkgraph.Config{}, simrand.New(seed).Derive("linkgraph"))

	f := &fixture{
		w:        w,
		alexa:    NewAlexa(w),
		umbrella: NewUmbrella(w, l),
		majestic: NewMajestic(w, g),
		secrank:  NewSecrank(w, l),
		days:     days,
	}
	tel := chrome.NewTelemetry(w)

	e := traffic.NewEngine(w, traffic.Config{Seed: seed + 1, NumClients: 1500, Days: days})
	e.AddSink(f.alexa)
	e.AddSink(f.umbrella)
	e.AddSink(f.secrank)
	e.AddSink(tel)
	e.Run()

	f.tranco = NewTranco(f.alexa, f.umbrella, f.majestic, l, nil)
	f.trexa = NewTrexa(f.alexa, f.tranco, l)
	for d := 0; d < days; d++ {
		f.tranco.ComputeDay(d)
		f.trexa.ComputeDay(d)
	}
	f.crux = NewCrux(tel, 2, rank.ScaledMagnitudes(w.NumSites()))
	return f
}

func (f *fixture) all() []List {
	return []List{f.alexa, f.majestic, f.secrank, f.tranco, f.trexa, f.umbrella, f.crux}
}

func TestAllProvidersProduceLists(t *testing.T) {
	f := buildFixture(t, 61, 3)
	for _, p := range f.all() {
		for d := 0; d < f.days; d++ {
			raw := p.Raw(d)
			if raw.Len() == 0 {
				t.Fatalf("%s day %d: empty list", p.Name(), d)
			}
			norm, st := p.Normalized(d, psl.Default())
			if norm.Len() == 0 {
				t.Fatalf("%s day %d: empty normalized list", p.Name(), d)
			}
			if st.Entries != raw.Len() {
				t.Fatalf("%s: stats entries %d != raw %d", p.Name(), st.Entries, raw.Len())
			}
		}
		if p.Name() == "" {
			t.Fatal("empty provider name")
		}
	}
}

func TestOnlyCruxIsBucketed(t *testing.T) {
	f := buildFixture(t, 61, 2)
	for _, p := range f.all() {
		want := p.Name() == "CrUX"
		if p.Bucketed() != want {
			t.Errorf("%s Bucketed = %v", p.Name(), p.Bucketed())
		}
	}
}

// TestPSLDeviationShape reproduces the Table 2 shape: domain-keyed lists
// deviate ~0%, Umbrella (FQDNs) and CrUX (origins) deviate heavily.
func TestPSLDeviationShape(t *testing.T) {
	f := buildFixture(t, 63, 2)
	l := psl.Default()
	dev := map[string]float64{}
	for _, p := range f.all() {
		_, st := p.Normalized(1, l)
		dev[p.Name()] = st.DeviationPct()
	}
	for _, name := range []string{"Alexa", "Majestic", "Secrank", "Tranco", "Trexa"} {
		if dev[name] > 5 {
			t.Errorf("%s deviation %.1f%%, want ~0", name, dev[name])
		}
	}
	if dev["Umbrella"] < 40 {
		t.Errorf("Umbrella deviation %.1f%%, want high", dev["Umbrella"])
	}
	if dev["CrUX"] < 30 {
		t.Errorf("CrUX deviation %.1f%%, want high", dev["CrUX"])
	}
}

func TestUmbrellaRanksBareSuffixesAtTop(t *testing.T) {
	f := buildFixture(t, 65, 2)
	raw := f.umbrella.Raw(1)
	l := psl.Default()
	// Some bare public suffix (e.g. "com") must appear in the top 10,
	// as ".com is ranked #1" in the real list.
	found := false
	for i := 1; i <= 10 && i <= raw.Len(); i++ {
		if l.IsPublicSuffix(raw.At(i)) {
			found = true
			break
		}
	}
	if !found {
		head := raw.Names()
		if len(head) > 10 {
			head = head[:10]
		}
		t.Errorf("no bare suffix in Umbrella top 10: %v", head)
	}
}

func TestUmbrellaIncludesInfraNames(t *testing.T) {
	f := buildFixture(t, 65, 2)
	raw := f.umbrella.Raw(1)
	infra := 0
	limit := raw.Len()
	if limit > 200 {
		limit = 200
	}
	for i := 1; i <= limit; i++ {
		name := raw.At(i)
		if strings.Contains(name, "telemetry") || strings.Contains(name, "update") ||
			strings.Contains(name, "push") || strings.Contains(name, "beacon") ||
			strings.Contains(name, "time") || strings.Contains(name, "ocsp") {
			infra++
		}
	}
	if infra == 0 {
		t.Error("no infrastructure names near the Umbrella head")
	}
}

func TestAlexaExcludesPrivateModeCategories(t *testing.T) {
	// Adult sites must be underrepresented in Alexa relative to their true
	// popularity: panel extensions see no private-mode loads.
	f := buildFixture(t, 67, 3)
	raw := f.alexa.Raw(2)
	adultInTop, adultInTruth := 0, 0
	n := 200
	for i := 1; i <= n && i <= raw.Len(); i++ {
		if id, ok := f.w.ByDomain(raw.At(i)); ok && f.w.Site(id).Category == world.Adult {
			adultInTop++
		}
	}
	for i := 0; i < n; i++ {
		if f.w.Site(int32(i)).Category == world.Adult {
			adultInTruth++
		}
	}
	if adultInTruth == 0 {
		t.Skip("no popular adult sites at this scale")
	}
	if adultInTop >= adultInTruth {
		t.Errorf("alexa top-%d has %d adult sites, truth has %d; expected fewer",
			n, adultInTop, adultInTruth)
	}
}

func TestSecrankIsChinaCentric(t *testing.T) {
	f := buildFixture(t, 69, 3)
	raw := f.secrank.Raw(2)
	cn, other := 0, 0
	limit := raw.Len()
	if limit > 300 {
		limit = 300
	}
	for i := 1; i <= limit; i++ {
		id, ok := f.w.ByDomain(raw.At(i))
		if !ok {
			continue // infra-derived domain
		}
		if f.w.Site(id).Home == world.CN {
			cn++
		} else {
			other++
		}
	}
	// CN produces ~21% of sites but ~100% of Secrank's vantage; its list
	// head must over-represent Chinese sites by a wide margin.
	if cn*2 < other {
		t.Errorf("secrank head: %d CN vs %d other; want CN-dominated", cn, other)
	}
}

func TestTrancoAveragesItsInputs(t *testing.T) {
	f := buildFixture(t, 71, 3)
	l := psl.Default()
	day := 2
	n := 300
	top := func(p List) []string {
		norm, _ := p.Normalized(day, l)
		names := norm.Names()
		if len(names) > n {
			names = names[:n]
		}
		return names
	}
	truth := f.w.TrueRank().Names()[:n]
	jac := func(p List) float64 { return stats.JaccardSlices(top(p), truth) }

	ja, jm, jt := jac(f.alexa), jac(f.majestic), jac(f.tranco)
	lo, hi := ja, jm
	if lo > hi {
		lo, hi = hi, lo
	}
	// Tranco should land in the general vicinity of its inputs — not
	// dramatically below the worst of them.
	if jt < lo*0.5 {
		t.Errorf("tranco jaccard %.3f far below inputs [%.3f, %.3f]", jt, lo, hi)
	}
}

func TestTrexaInterleavesWithoutDuplicates(t *testing.T) {
	f := buildFixture(t, 71, 2)
	raw := f.trexa.Raw(1)
	seen := map[string]bool{}
	for i := 1; i <= raw.Len(); i++ {
		name := raw.At(i)
		if seen[name] {
			t.Fatalf("duplicate %q in trexa", name)
		}
		seen[name] = true
	}
	// Trexa must contain everything from both inputs.
	a, _ := f.alexa.Normalized(1, psl.Default())
	for _, name := range a.Names() {
		if !seen[name] {
			t.Fatalf("alexa entry %q missing from trexa", name)
		}
	}
}

func TestTrexaWeightsTowardAlexa(t *testing.T) {
	f := buildFixture(t, 73, 2)
	a, _ := f.alexa.Normalized(1, psl.Default())
	if a.Len() < 30 {
		t.Skip("alexa list too small")
	}
	trexa := f.trexa.Raw(1)
	// Among the first 30 Trexa entries, Alexa-ranked names should be the
	// majority given the 2:1 interleave.
	fromAlexaTop := 0
	for i := 1; i <= 30; i++ {
		if r, ok := a.RankOf(trexa.At(i)); ok && r <= 30 {
			fromAlexaTop++
		}
	}
	if fromAlexaTop < 15 {
		t.Errorf("only %d of trexa top 30 from alexa top 30", fromAlexaTop)
	}
}

func TestCruxEntriesAreOrigins(t *testing.T) {
	f := buildFixture(t, 75, 2)
	for _, e := range f.crux.Entries() {
		if !strings.HasPrefix(e.Origin, "http://") && !strings.HasPrefix(e.Origin, "https://") {
			t.Fatalf("crux entry %q is not an origin", e.Origin)
		}
	}
	raw := f.crux.Raw(0)
	if raw.Len() != len(f.crux.Entries()) {
		t.Fatal("raw length mismatch")
	}
	// Raw is identical for every day: monthly dataset.
	if f.crux.Raw(1) != raw {
		t.Error("crux raw list should be the same monthly object")
	}
}

func TestCanonicalOrder(t *testing.T) {
	f := buildFixture(t, 75, 1)
	names := map[string]bool{}
	for _, p := range f.all() {
		names[p.Name()] = true
	}
	for _, want := range CanonicalOrder() {
		if !names[want] {
			t.Errorf("canonical name %q has no provider", want)
		}
	}
	if len(CanonicalOrder()) != 7 {
		t.Error("want 7 canonical names")
	}
}

func TestProvidersDeterministic(t *testing.T) {
	f1 := buildFixture(t, 77, 2)
	f2 := buildFixture(t, 77, 2)
	for i, p1 := range f1.all() {
		p2 := f2.all()[i]
		a, b := p1.Raw(1), p2.Raw(1)
		if a.Len() != b.Len() {
			t.Fatalf("%s lengths differ", p1.Name())
		}
		for j := 1; j <= a.Len(); j++ {
			if a.At(j) != b.At(j) {
				t.Fatalf("%s diverges at %d", p1.Name(), j)
			}
		}
	}
}
