package providers

import (
	"math"

	"toplists/internal/names"
	"toplists/internal/psl"
	"toplists/internal/rank"
	"toplists/internal/sketch"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// Secrank reconstructs the researcher-built Secrank list [34]: a
// voting-based ranking computed from the query stream of a major recursive
// resolver in China. Per the published description, each client IP "votes"
// for domains based on request volume and frequency of access, with IPs
// weighted by the domain diversity and total volume of their requests —
// heavy, diverse resolvers-behind-an-IP count more than single-purpose
// devices.
//
// The vantage is the bias: only Chinese clients are observed, which is why
// the paper finds Secrank matching China best, everywhere else terribly,
// and overlapping Cloudflare (rarely used by Chinese sites) least of all
// lists (Sections 5.1, 6.3).
type Secrank struct {
	traffic.BaseSink
	w   *world.World
	psl *psl.List
	tab *names.Table

	// infraApex memoizes per infra name the interned registrable domain a
	// query votes for, or noVote when the name has none.
	infraApex []names.ID

	// perIP accumulates today's per-IP query profile: domain -> count.
	perIP map[uint32]map[names.ID]int

	// Sketch mode (see sketchmode.go): bounded per-IP profile summaries
	// replace the perIP maps, merged into dayProfiles at the barrier.
	sk          sketch.Config
	dayProfiles map[uint32]*sketch.SpaceSaving
	profilePool []*sketch.SpaceSaving
	shardMem    int
	memPeak     int

	// dayVotes holds each frozen day's aggregated votes.
	dayVotes []map[names.ID]float64

	// Window is the trailing number of days averaged per published list;
	// the Secrank design goal is temporal stability (default 7).
	Window int

	lists []*rank.Ranking
}

// noVote marks an infra name without a registrable domain (a bare public
// suffix); queries for it cast no vote. No real ID can collide with it
// before the interner holds 2^32-1 names.
const noVote = names.ID(0xffffffff)

// NewSecrank returns a Secrank provider observing the Chinese resolver.
func NewSecrank(w *world.World, l *psl.List) *Secrank {
	s := &Secrank{w: w, psl: l, tab: w.Interner(), Window: 7}
	s.infraApex = make([]names.ID, len(w.Infra))
	for i, inf := range w.Infra {
		s.infraApex[i] = noVote
		if etld1, ok := l.RegisteredDomain(inf.FQDN); ok {
			s.infraApex[i] = s.tab.Intern(etld1)
		}
	}
	return s
}

// Name implements List.
func (s *Secrank) Name() string { return "Secrank" }

// Bucketed implements List.
func (s *Secrank) Bucketed() bool { return false }

// BeginDay implements traffic.Sink.
func (s *Secrank) BeginDay(day int, weekend bool) {
	if s.sk.Enabled {
		return
	}
	s.perIP = make(map[uint32]map[names.ID]int)
}

// OnDNSQuery implements traffic.Sink.
func (s *Secrank) OnDNSQuery(q *traffic.DNSQuery) {
	if q.Client.Country != world.CN {
		return // the resolver serves Chinese clients
	}
	var id names.ID
	if q.Site >= 0 {
		// Votes are for registrable domains.
		id = s.w.DomainID(q.Site)
	} else {
		id = s.infraApex[q.Infra]
		if id == noVote {
			return
		}
	}
	prof, ok := s.perIP[q.IP]
	if !ok {
		prof = make(map[names.ID]int, 8)
		s.perIP[q.IP] = prof
	}
	prof[id]++
}

// EndDay implements traffic.Sink: run the per-IP voting round.
func (s *Secrank) EndDay(day int) {
	if s.sk.Enabled {
		s.endDaySketch(day)
		return
	}
	votes := make(map[names.ID]float64)
	for _, prof := range s.perIP {
		var total int
		for _, c := range prof {
			total += c
		}
		if total == 0 {
			continue
		}
		// IP weight grows with domain diversity and (sub-linearly) volume.
		weight := math.Log2(1+float64(len(prof))) * math.Log2(2+float64(total))
		for id, c := range prof {
			votes[id] += weight * float64(c) / float64(total)
		}
	}
	s.publishDay(votes)
}

// publishDay appends the day's votes and publishes the trailing-window
// average — shared by the exact and sketch voting rounds.
func (s *Secrank) publishDay(votes map[names.ID]float64) {
	s.dayVotes = append(s.dayVotes, votes)

	window := s.Window
	if window > len(s.dayVotes) {
		window = len(s.dayVotes)
	}
	agg := make(map[names.ID]float64)
	for _, dv := range s.dayVotes[len(s.dayVotes)-window:] {
		for id, v := range dv {
			agg[id] += v
		}
	}
	scored := make([]rank.ScoredID, 0, len(agg))
	for id, v := range agg {
		scored = append(scored, rank.ScoredID{ID: id, Score: v / float64(window)})
	}
	s.lists = append(s.lists, rank.FromScoredIDs(s.tab, scored, rank.TieHashed))
}

// NumDays returns how many days have been published.
func (s *Secrank) NumDays() int { return len(s.lists) }

// Raw implements List.
func (s *Secrank) Raw(day int) *rank.Ranking { return s.lists[day] }

// Normalized implements List.
func (s *Secrank) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalized(s.Raw(day), l)
}

// NormalizedIn implements the memoized normalization fast path.
func (s *Secrank) NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalizedIn(s.Raw(day), nz)
}
