// Package providers implements the seven top lists the study evaluates:
// Alexa, Cisco Umbrella, Majestic, Secrank, Tranco, Trexa, and Google CrUX
// (Section 2). Each provider reconstructs its list from the slice of
// simulation events its real-world counterpart can observe — an extension
// panel, a corporate DNS resolver, a backlink crawl, a national resolver,
// amalgamation of other lists, or Chrome telemetry.
package providers

import (
	"sync"
	"sync/atomic"
	"time"

	"toplists/internal/obs"
	"toplists/internal/psl"
	"toplists/internal/rank"
)

// List is a top-list provider's published output.
type List interface {
	// Name returns the provider name as used in the paper's tables.
	Name() string
	// Raw returns the list snapshot published for day d, keyed the way the
	// provider publishes it (registrable domains, FQDNs, or origins).
	Raw(day int) *rank.Ranking
	// Normalized returns the day's list normalized to PSL registrable
	// domains with min-rank grouping (Section 4.2), along with deviation
	// statistics for Table 2.
	Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats)
	// Bucketed reports whether the list publishes only rank-order
	// magnitudes (true only for CrUX), in which case Spearman rank
	// correlation is undefined against it (Section 4.4).
	Bucketed() bool
}

// domainNormalized implements Normalized for lists whose entries are DNS
// names (domains or FQDNs).
func domainNormalized(r *rank.Ranking, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return r.NormalizePSL(l)
}

// internNormalized is the optional fast path of Normalized: providers that
// implement it normalize through a rank.Normalizer, whose per-interned-ID
// apex memo runs each name's PSL trie walk once per study instead of once
// per (list, day). All seven providers implement it.
type internNormalized interface {
	NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats)
}

// domainNormalizedIn implements NormalizedIn for DNS-name lists. A ranking
// whose IDs belong to a different table than the normalizer (free-standing
// fixtures) falls back to the uncached walk.
func domainNormalizedIn(r *rank.Ranking, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	if r.Table() != nz.Table() {
		return r.NormalizePSL(nz.PSL())
	}
	return r.NormalizePSLIn(nz)
}

// NormMemo memoizes PSL-normalized list snapshots per (list, day). It is
// the caching hook shared by the Tranco/Trexa amalgam construction (which
// re-reads its inputs' normalized snapshots across a trailing window every
// day) and the evaluation's derived-artifact store. It is safe for
// concurrent use: each (list, day) is normalized at most once, with
// singleflight deduplication — a second requester for an in-flight key
// waits for the first computation instead of repeating it.
type NormMemo struct {
	psl *psl.List
	// nz, when set, routes providers implementing internNormalized through
	// the study-wide apex memo.
	nz *rank.Normalizer
	// cm, when set, counts hits/misses/waits and build times. Read under mu.
	cm *obs.CacheMetrics
	mu sync.Mutex
	m  map[normMemoKey]*normMemoEntry
}

type normMemoKey struct {
	list string
	day  int
}

type normMemoEntry struct {
	once  sync.Once
	done  atomic.Bool
	r     *rank.Ranking
	stats rank.NormalizeStats
}

// NewNormMemo builds an empty memo normalizing against l, with no apex
// memo (each snapshot walks the PSL trie per name).
func NewNormMemo(l *psl.List) *NormMemo {
	return &NormMemo{psl: l, m: make(map[normMemoKey]*normMemoEntry)}
}

// NewInternedNormMemo builds an empty memo normalizing through nz, sharing
// its per-interned-name apex cache across every list and day.
func NewInternedNormMemo(nz *rank.Normalizer) *NormMemo {
	return &NormMemo{psl: nz.PSL(), nz: nz, m: make(map[normMemoKey]*normMemoEntry)}
}

// SetMetrics attaches cache instrumentation; nil detaches it.
func (m *NormMemo) SetMetrics(cm *obs.CacheMetrics) {
	m.mu.Lock()
	m.cm = cm
	m.mu.Unlock()
}

// Normalized returns the list's normalized day-d snapshot with its
// deviation statistics, computing it at most once per (list, day).
func (m *NormMemo) Normalized(l List, day int) (*rank.Ranking, rank.NormalizeStats) {
	key := normMemoKey{l.Name(), day}
	m.mu.Lock()
	cm := m.cm
	e, ok := m.m[key]
	if !ok {
		e = &normMemoEntry{}
		m.m[key] = e
	}
	m.mu.Unlock()
	if !ok {
		cm.Miss()
	} else {
		cm.Hit()
		if !e.done.Load() {
			cm.Wait()
		}
	}
	e.once.Do(func() {
		start := time.Now()
		defer func() {
			e.done.Store(true)
			cm.ObserveBuildSpan(start, time.Since(start))
		}()
		if in, ok := l.(internNormalized); ok && m.nz != nil {
			e.r, e.stats = in.NormalizedIn(day, m.nz)
			return
		}
		e.r, e.stats = l.Normalized(day, m.psl)
	})
	return e.r, e.stats
}

// InvalidateList drops every memoized day snapshot of the named list.
// The resident lifecycle uses it when a provider's published view is
// replaced wholesale (the month-to-date CrUX list is re-derived after a
// day advances); entries already handed to readers remain valid
// immutable rankings.
func (m *NormMemo) InvalidateList(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.m {
		if k.list == name {
			delete(m.m, k)
		}
	}
}

// monthNorm caches one normalization result for providers that publish a
// single snapshot for the whole month (Majestic, CrUX): every day's
// Normalized call returns the same list, so the grouping work runs once
// per distinct normalization source (PSL list or Normalizer) instead of
// once per day. Safe for concurrent use.
type monthNorm struct {
	mu    sync.Mutex
	key   any // the *psl.List or *rank.Normalizer the cache was filled for
	r     *rank.Ranking
	stats rank.NormalizeStats
}

func (m *monthNorm) get(key any, compute func() (*rank.Ranking, rank.NormalizeStats)) (*rank.Ranking, rank.NormalizeStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.key != key {
		m.r, m.stats = compute()
		m.key = key
	}
	return m.r, m.stats
}

// The canonical provider ordering used in tables and figures.
var canonicalOrder = []string{
	"Alexa", "Majestic", "Secrank", "Tranco", "Trexa", "Umbrella", "CrUX",
}

// CanonicalOrder returns the provider display order used by the paper's
// tables.
func CanonicalOrder() []string {
	return append([]string(nil), canonicalOrder...)
}
