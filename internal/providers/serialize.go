package providers

import (
	"fmt"
	"io"
	"slices"

	"toplists/internal/names"
	"toplists/internal/rank"
	"toplists/internal/snapshot"
)

// Provider checkpointing: each provider persists exactly its cross-day
// state — frozen day aggregates, published rankings, trailing-window
// tallies — and nothing per-day, since checkpoints are only taken at day
// boundaries where per-day accumulators are empty by construction. Every
// payload starts with a per-provider version uvarint so provider
// encodings evolve independently of the container schema, and every map
// is emitted in sorted key order so identical state always produces
// identical bytes (the Snapshot→Restore→Snapshot byte-identity the
// checkpoint tests pin).

const (
	alexaSnapVersion    = 1
	umbrellaSnapVersion = 1
	secrankSnapVersion  = 1
	trancoSnapVersion   = 1
	trexaSnapVersion    = 1
)

func checkSnapVersion(d *snapshot.Decoder, want uint64, provider string) error {
	got := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("%w: %s payload v%d, this build reads v%d", snapshot.ErrVersion, provider, got, want)
	}
	return nil
}

// encodeSiteMap emits a map keyed by site ID in sorted key order.
func encodeSiteMap(e *snapshot.Encoder, m map[int32]float64) {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Varint(int64(k))
		e.F64(m[k])
	}
}

func decodeSiteMap(d *snapshot.Decoder) map[int32]float64 {
	n := d.Len(2)
	m := make(map[int32]float64, n)
	for i := 0; i < n; i++ {
		k := int32(d.Varint())
		m[k] = d.F64()
	}
	return m
}

// encodeIDMap emits a map keyed by interned ID in sorted key order.
func encodeIDMap(e *snapshot.Encoder, m map[names.ID]float64) {
	keys := make([]names.ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Uvarint(uint64(k))
		e.F64(m[k])
	}
}

func decodeIDMap(d *snapshot.Decoder) map[names.ID]float64 {
	n := d.Len(2)
	m := make(map[names.ID]float64, n)
	for i := 0; i < n; i++ {
		k := names.ID(d.Uvarint())
		m[k] = d.F64()
	}
	return m
}

func encodeLists(e *snapshot.Encoder, lists []*rank.Ranking) {
	e.Uvarint(uint64(len(lists)))
	for _, r := range lists {
		rank.EncodeRanking(e, r)
	}
}

func decodeLists(d *snapshot.Decoder, tab *names.Table) ([]*rank.Ranking, error) {
	n := d.Len(1)
	lists := make([]*rank.Ranking, 0, n)
	for i := 0; i < n; i++ {
		r, err := rank.DecodeRanking(d, tab)
		if err != nil {
			return nil, err
		}
		if r == nil {
			return nil, fmt.Errorf("%w: nil ranking in published list sequence", snapshot.ErrCorrupt)
		}
		lists = append(lists, r)
	}
	return lists, nil
}

// Snapshot writes Alexa's cross-day state: the frozen per-day aggregates
// and the published rankings.
func (a *Alexa) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(alexaSnapVersion)
	e.Uvarint(uint64(len(a.days)))
	for _, day := range a.days {
		encodeSiteMap(&e, day.pageviews)
		encodeSiteMap(&e, day.visitors)
	}
	encodeLists(&e, a.lists)
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces Alexa's cross-day state from a Snapshot payload.
func (a *Alexa) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	if err := checkSnapVersion(d, alexaSnapVersion, "Alexa"); err != nil {
		return err
	}
	n := d.Len(1)
	days := make([]alexaDay, 0, n)
	for i := 0; i < n; i++ {
		days = append(days, alexaDay{
			pageviews: decodeSiteMap(d),
			visitors:  decodeSiteMap(d),
		})
	}
	lists, err := decodeLists(d, a.w.Interner())
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if len(lists) != len(days) {
		return fmt.Errorf("%w: Alexa has %d lists for %d days", snapshot.ErrCorrupt, len(lists), len(days))
	}
	a.days = days
	a.lists = lists
	return nil
}

// Snapshot writes Umbrella's cross-day state: the published rankings and
// the sketch memory peak. The FQDN/suffix interning memos are pure caches
// rebuilt on demand, and all sketch accumulators are day-scoped.
func (u *Umbrella) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(umbrellaSnapVersion)
	encodeLists(&e, u.lists)
	e.Int(u.memPeak)
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces Umbrella's cross-day state from a Snapshot payload.
func (u *Umbrella) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	if err := checkSnapVersion(d, umbrellaSnapVersion, "Umbrella"); err != nil {
		return err
	}
	lists, err := decodeLists(d, u.tab)
	if err != nil {
		return err
	}
	memPeak := d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	u.lists = lists
	u.memPeak = memPeak
	return nil
}

// Snapshot writes Secrank's cross-day state: the trailing-window vote
// tallies, the published rankings, and the sketch memory peak.
func (s *Secrank) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(secrankSnapVersion)
	e.Uvarint(uint64(len(s.dayVotes)))
	for _, votes := range s.dayVotes {
		encodeIDMap(&e, votes)
	}
	encodeLists(&e, s.lists)
	e.Int(s.memPeak)
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces Secrank's cross-day state from a Snapshot payload.
func (s *Secrank) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	if err := checkSnapVersion(d, secrankSnapVersion, "Secrank"); err != nil {
		return err
	}
	n := d.Len(1)
	dayVotes := make([]map[names.ID]float64, 0, n)
	for i := 0; i < n; i++ {
		dayVotes = append(dayVotes, decodeIDMap(d))
	}
	lists, err := decodeLists(d, s.tab)
	if err != nil {
		return err
	}
	memPeak := d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	if len(lists) != len(dayVotes) {
		return fmt.Errorf("%w: Secrank has %d lists for %d days", snapshot.ErrCorrupt, len(lists), len(dayVotes))
	}
	s.dayVotes = dayVotes
	s.lists = lists
	s.memPeak = memPeak
	return nil
}

// Snapshot writes Tranco's cross-day state: the published rankings. The
// Dowdall window re-reads input snapshots through the normalization memo,
// so no score state crosses days.
func (t *Tranco) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(trancoSnapVersion)
	encodeLists(&e, t.lists)
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces Tranco's published rankings from a Snapshot payload.
// tab is the study interner the restored ID sequences index into.
func (t *Tranco) Restore(r io.Reader, tab *names.Table) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	if err := checkSnapVersion(d, trancoSnapVersion, "Tranco"); err != nil {
		return err
	}
	lists, err := decodeLists(d, tab)
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	t.lists = lists
	return nil
}

// Snapshot writes Trexa's cross-day state: the published rankings.
func (t *Trexa) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(trexaSnapVersion)
	encodeLists(&e, t.lists)
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces Trexa's published rankings from a Snapshot payload.
func (t *Trexa) Restore(r io.Reader, tab *names.Table) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	if err := checkSnapVersion(d, trexaSnapVersion, "Trexa"); err != nil {
		return err
	}
	lists, err := decodeLists(d, tab)
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	t.lists = lists
	return nil
}
