package providers

import (
	"math"
	"sort"

	"toplists/internal/names"
	"toplists/internal/rank"
	"toplists/internal/sketch"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// Sketch mode for the DNS-fed providers. Each provider implements
// traffic.ShardedSink: one bounded summary per logical traffic shard,
// merged at the day barrier in canonical shard order (see traffic.Config.
// Sketch). The shard states never touch the shared name interner — worker
// goroutines key sketches by a stable hash of the name string (or by
// run-stable IDs) and the serial barrier/EndDay path resolves names to
// interned IDs, so output is byte-identical at every worker count.

// nameHash returns a run-stable 64-bit key for a DNS name: FNV-1a spread
// through the sketch finalizer. Interned IDs are NOT usable as sketch keys
// here — interning order depends on scheduling once shards run
// concurrently — but the hash of the string is a pure function of the name.
func nameHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// --- Umbrella -------------------------------------------------------------

// umbrellaShard accumulates one logical shard's resolver view: a
// space-saving candidate set over name hashes with a per-candidate HLL of
// client IPs. The hostname/suffix memos are per shard (no shared-map races)
// and survive Reset — they are month-stable facts, not day state.
type umbrellaShard struct {
	u   *Umbrella
	tkd *sketch.TopKDistinct

	// hostHash memoizes (site, subdomain)/infra -> name hash; suffixHash
	// memoizes fqdn hash -> credited suffix hash (self when none).
	hostHash   map[hostKey]uint64
	suffixHash map[uint64]uint64
	// nameOf records hash -> name for every key this shard may emit, so
	// the barrier can resolve merged candidates back to strings.
	nameOf map[uint64]string
}

// SetSketch switches the provider to sketch-backed aggregation. Must be
// called before the simulation starts.
func (u *Umbrella) SetSketch(cfg sketch.Config) {
	if !cfg.Enabled {
		return
	}
	u.sk = cfg.WithDefaults()
	u.dayTKD = u.sk.NewTopKDistinct()
	u.nameOf = make(map[uint64]string)
}

// NewShardState implements traffic.ShardedSink.
func (u *Umbrella) NewShardState() traffic.ShardState {
	if !u.sk.Enabled {
		u.SetSketch(sketch.Config{Enabled: true})
	}
	return &umbrellaShard{
		u:          u,
		tkd:        u.sk.NewTopKDistinct(),
		hostHash:   make(map[hostKey]uint64),
		suffixHash: make(map[uint64]uint64),
		nameOf:     make(map[uint64]string),
	}
}

// OnPageLoad implements traffic.ShardState; the resolver sees queries only.
func (us *umbrellaShard) OnPageLoad(*traffic.PageLoad) {}

// OnDNSQuery implements traffic.ShardState, mirroring the exact path's
// vantage filter and suffix-chain crediting.
func (us *umbrellaShard) OnDNSQuery(q *traffic.DNSQuery) {
	u := us.u
	if !q.AtWork && !q.Client.HomeOpenDNS {
		return
	}
	var key hostKey
	if q.Site >= 0 {
		if !q.AtWork && q.Client.FamilyFilter && familyFiltered[u.w.Site(q.Site).Category] {
			return
		}
		key = hostKey(q.Site)<<8 | hostKey(q.SubIdx)
	} else {
		key = -1 - hostKey(q.Infra)
	}
	h, ok := us.hostHash[key]
	if !ok {
		var fqdn string
		if q.Site >= 0 {
			fqdn = u.w.Site(q.Site).Hostname(int(q.SubIdx))
		} else {
			fqdn = u.w.Infra[q.Infra].FQDN
		}
		h = nameHash(fqdn)
		us.hostHash[key] = h
		us.nameOf[h] = fqdn
		sh := h
		if suffix, _ := u.psl.PublicSuffix(fqdn); suffix != "" && suffix != fqdn {
			sh = nameHash(suffix)
			us.nameOf[sh] = suffix
		}
		us.suffixHash[h] = sh
	}
	ip := uint64(q.IP)
	us.tkd.Add(h, ip)
	if sh := us.suffixHash[h]; sh != h {
		us.tkd.Add(sh, ip)
	}
}

// Reset implements traffic.ShardState: day state clears, memos persist.
func (us *umbrellaShard) Reset() { us.tkd.Reset() }

// MergeShard implements traffic.ShardedSink.
func (u *Umbrella) MergeShard(st traffic.ShardState) {
	us := st.(*umbrellaShard)
	u.shardMem += us.tkd.MemBytes()
	u.dayTKD.Merge(us.tkd)
	for h, s := range us.nameOf {
		if _, ok := u.nameOf[h]; !ok {
			u.nameOf[h] = s
		}
	}
}

// endDaySketch publishes the day's list from the merged candidate set:
// names scored by the quantized HLL unique-IP estimate, resolved to
// interned IDs in canonical candidate order (serial, so interning is safe).
func (u *Umbrella) endDaySketch(day int) {
	entries := u.dayTKD.Entries(nil)
	scored := make([]rank.ScoredID, 0, len(entries))
	for _, e := range entries {
		n := int(math.Round(u.dayTKD.DistinctAt(e.Slot)))
		if n < 1 {
			n = 1
		}
		id := u.tab.Intern(u.nameOf[e.Key])
		scored = append(scored, rank.ScoredID{ID: id, Score: quantize(n)})
	}
	u.lists = append(u.lists, rank.FromScoredIDs(u.tab, scored, rank.TieLexicographic))
	if m := u.shardMem + u.dayTKD.MemBytes(); m > u.memPeak {
		u.memPeak = m
	}
	u.shardMem = 0
	u.dayTKD.Reset()
}

// SketchMemPeak returns the high-water logical sketch footprint that met at
// a day barrier. Deterministic: a pure function of configuration and seed.
func (u *Umbrella) SketchMemPeak() int { return u.memPeak }

// --- Secrank --------------------------------------------------------------

// secrankShard accumulates one logical shard's per-IP domain profiles as
// bounded space-saving summaries. Keys are registrable-domain IDs, which
// are run-stable: site domains are interned deterministically at world
// generation and infra apexes at provider construction.
type secrankShard struct {
	s        *Secrank
	profiles map[uint32]*sketch.SpaceSaving
	pool     []*sketch.SpaceSaving
}

// SetSketch switches the provider to sketch-backed aggregation.
func (s *Secrank) SetSketch(cfg sketch.Config) {
	if !cfg.Enabled {
		return
	}
	s.sk = cfg.WithDefaults()
	s.dayProfiles = make(map[uint32]*sketch.SpaceSaving)
}

// NewShardState implements traffic.ShardedSink.
func (s *Secrank) NewShardState() traffic.ShardState {
	if !s.sk.Enabled {
		s.SetSketch(sketch.Config{Enabled: true})
	}
	return &secrankShard{s: s, profiles: make(map[uint32]*sketch.SpaceSaving)}
}

// OnPageLoad implements traffic.ShardState; the resolver sees queries only.
func (ss *secrankShard) OnPageLoad(*traffic.PageLoad) {}

// OnDNSQuery implements traffic.ShardState.
func (ss *secrankShard) OnDNSQuery(q *traffic.DNSQuery) {
	if q.Client.Country != world.CN {
		return
	}
	var id names.ID
	if q.Site >= 0 {
		id = ss.s.w.DomainID(q.Site)
	} else {
		id = ss.s.infraApex[q.Infra]
		if id == noVote {
			return
		}
	}
	prof, ok := ss.profiles[q.IP]
	if !ok {
		prof = ss.alloc()
		ss.profiles[q.IP] = prof
	}
	prof.Add(uint64(id), 1)
}

func (ss *secrankShard) alloc() *sketch.SpaceSaving {
	if n := len(ss.pool); n > 0 {
		p := ss.pool[n-1]
		ss.pool = ss.pool[:n-1]
		return p
	}
	return ss.s.sk.NewProfile()
}

// Reset implements traffic.ShardState, recycling the profile summaries.
// Recycling happens in sorted IP order for the same reason MergeShard
// merges in sorted order: pooled objects carry their capacity history, and
// a deterministic pool order keeps next-day assignments — and therefore the
// footprint gauges — reproducible.
func (ss *secrankShard) Reset() {
	ips := make([]uint32, 0, len(ss.profiles))
	for ip := range ss.profiles {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
	for _, ip := range ips {
		prof := ss.profiles[ip]
		prof.Reset()
		ss.pool = append(ss.pool, prof)
		delete(ss.profiles, ip)
	}
}

// MergeShard implements traffic.ShardedSink: per-IP profiles merge; an IP
// seen by several shards (shared office egress) combines per the
// space-saving merge rule. IPs merge in sorted order so pooled profile
// objects — whose retained capacities differ by growth history — are
// recycled to the same IPs on every run, keeping the footprint gauges a
// pure function of seed and configuration.
func (s *Secrank) MergeShard(st traffic.ShardState) {
	ss := st.(*secrankShard)
	ips := make([]uint32, 0, len(ss.profiles))
	for ip := range ss.profiles {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
	for _, ip := range ips {
		prof := ss.profiles[ip]
		s.shardMem += prof.MemBytes()
		day, ok := s.dayProfiles[ip]
		if !ok {
			day = s.allocProfile()
			s.dayProfiles[ip] = day
		}
		day.Merge(prof, nil)
	}
}

func (s *Secrank) allocProfile() *sketch.SpaceSaving {
	if n := len(s.profilePool); n > 0 {
		p := s.profilePool[n-1]
		s.profilePool = s.profilePool[:n-1]
		return p
	}
	return s.sk.NewProfile()
}

// endDaySketch runs the voting round over the bounded profiles. IPs vote in
// sorted order so the floating-point vote sums are a pure function of the
// profiles, not of map iteration. Profile truncation caps an IP's observed
// diversity at ProfileK — by design: one more way the reconstruction is an
// approximation of an approximation.
func (s *Secrank) endDaySketch(day int) {
	ips := make([]uint32, 0, len(s.dayProfiles))
	for ip := range s.dayProfiles {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })

	votes := make(map[names.ID]float64)
	var entries []sketch.Entry
	var mem int
	for _, ip := range ips {
		prof := s.dayProfiles[ip]
		mem += prof.MemBytes()
		total := prof.N()
		if total == 0 {
			continue
		}
		weight := math.Log2(1+float64(prof.Len())) * math.Log2(2+float64(total))
		entries = prof.Entries(entries[:0])
		for _, e := range entries {
			votes[names.ID(e.Key)] += weight * float64(e.Count) / float64(total)
		}
		prof.Reset()
		s.profilePool = append(s.profilePool, prof)
	}
	clear(s.dayProfiles)
	if m := s.shardMem + mem; m > s.memPeak {
		s.memPeak = m
	}
	s.shardMem = 0
	s.publishDay(votes)
}

// SketchMemPeak returns the high-water logical sketch footprint that met at
// a day barrier. Deterministic: a pure function of configuration and seed.
func (s *Secrank) SketchMemPeak() int { return s.memPeak }

// --- Alexa ----------------------------------------------------------------

// alexaShard accumulates one logical shard's panel observations. The
// distinct-visitor sets stay exact even in sketch mode: the panel is a few
// percent of the population, so the sets are bounded by panel volume and an
// exact merge keeps Alexa's sketch-mode output identical to the exact path.
type alexaShard struct {
	a         *Alexa
	pageviews map[int32]float64
	visitors  map[int32]sketch.Distinct
	pool      []sketch.Distinct
}

// NewShardState implements traffic.ShardedSink.
func (a *Alexa) NewShardState() traffic.ShardState {
	return &alexaShard{
		a:         a,
		pageviews: make(map[int32]float64),
		visitors:  make(map[int32]sketch.Distinct),
	}
}

// OnPageLoad implements traffic.ShardState, mirroring the exact path's
// panel filter and sensitivity thinning (both are deterministic in the
// event, not in any shared state).
func (as *alexaShard) OnPageLoad(pl *traffic.PageLoad) {
	if !as.a.observes(pl) {
		return
	}
	as.pageviews[pl.Site]++
	d, ok := as.visitors[pl.Site]
	if !ok {
		if n := len(as.pool); n > 0 {
			d = as.pool[n-1]
			as.pool = as.pool[:n-1]
			d.Reset()
		} else {
			d = sketch.NewExact()
		}
		as.visitors[pl.Site] = d
	}
	d.Add(uint64(pl.Client.ID))
}

// OnDNSQuery implements traffic.ShardState; the panel sees page loads only.
func (as *alexaShard) OnDNSQuery(*traffic.DNSQuery) {}

// Reset implements traffic.ShardState.
func (as *alexaShard) Reset() {
	clear(as.pageviews)
	for site, d := range as.visitors {
		as.pool = append(as.pool, d)
		delete(as.visitors, site)
	}
}

// MergeShard implements traffic.ShardedSink: additive pageview counts and
// exact set unions into the current day's accumulators, which EndDay then
// freezes exactly as on the event-stream path.
func (a *Alexa) MergeShard(st traffic.ShardState) {
	as := st.(*alexaShard)
	for site, v := range as.pageviews {
		a.pageviews[site] += v
	}
	for site, d := range as.visitors {
		day, ok := a.visitors[site]
		if !ok {
			day = sketch.NewExact()
			a.visitors[site] = day
		}
		day.Merge(d)
	}
}
