package providers

import (
	"toplists/internal/linkgraph"
	"toplists/internal/psl"
	"toplists/internal/rank"
	"toplists/internal/world"
)

// Majestic reconstructs the Majestic Million, which ranks sites "based on
// the number of backlinks" [20, 21] — specifically by referring-subnet and
// referring-domain diversity from Majestic's crawl.
//
// Because backlinks accrue to institutionally-linked categories (government,
// news, academia) and not to traffic-heavy but rarely-linked ones (adult,
// gambling), the list inherits exactly the inclusion biases of Table 3.
// The list changes slowly; the simulation publishes one snapshot for the
// whole month, matching the stability the real list exhibits day over day.
type Majestic struct {
	list *rank.Ranking
	norm monthNorm
}

// NewMajestic ranks the world by the link graph.
func NewMajestic(w *world.World, g *linkgraph.Graph) *Majestic {
	scored := make([]rank.ScoredID, 0, w.NumSites())
	for i := 0; i < w.NumSites(); i++ {
		// Majestic's published ordering leads with referring subnets and
		// breaks ties by referring domains.
		score := float64(g.RefSubnets(int32(i)))*1000 + float64(g.RefDomains(int32(i)))
		if score > 0 {
			scored = append(scored, rank.ScoredID{ID: w.DomainID(int32(i)), Score: score})
		}
	}
	return &Majestic{list: rank.FromScoredIDs(w.Interner(), scored, rank.TieLexicographic)}
}

// Name implements List.
func (m *Majestic) Name() string { return "Majestic" }

// Bucketed implements List.
func (m *Majestic) Bucketed() bool { return false }

// Raw implements List.
func (m *Majestic) Raw(day int) *rank.Ranking { return m.list }

// Normalized implements List. The snapshot is month-stable, so the
// normalization is computed once and shared by every day.
func (m *Majestic) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return m.norm.get(l, func() (*rank.Ranking, rank.NormalizeStats) {
		return domainNormalized(m.list, l)
	})
}

// NormalizedIn implements the memoized normalization fast path.
func (m *Majestic) NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	return m.norm.get(nz, func() (*rank.Ranking, rank.NormalizeStats) {
		return domainNormalizedIn(m.list, nz)
	})
}
