package providers

import (
	"toplists/internal/names"
	"toplists/internal/psl"
	"toplists/internal/rank"
)

// Tranco reconstructs the Tranco Top Million [18]: an amalgam of the Alexa,
// Umbrella, and Majestic lists over a trailing 30-day window, combined with
// the Dowdall rule — each domain scores the sum of reciprocal ranks across
// every (list, day) snapshot in the window. Input lists are normalized to
// registrable domains first, which is why the archived Tranco snapshots
// show 0% PSL deviation in Table 2.
//
// As the paper observes, amalgamation averages its inputs' accuracy and
// inherits their shared blind spots: Tranco lands mid-pack in Figure 2 and
// still under-includes adult and gambling sites in Table 3.
type Tranco struct {
	inputs []List
	psl    *psl.List
	// Window is the trailing number of days aggregated (default 30; runs
	// shorter than the window use every available day, documented in
	// DESIGN.md).
	Window int

	lists []*rank.Ranking
	// memo caches per-(list, day) normalized inputs so consecutive Tranco
	// days do not re-normalize the same snapshots. When shared with the
	// study's artifact store, the normalizations done here are reused by
	// the evaluation.
	memo *NormMemo
}

// NewTranco builds a Tranco provider over its three input lists. memo is
// the normalization cache to draw input snapshots through; nil builds a
// private one.
func NewTranco(alexa, umbrella, majestic List, l *psl.List, memo *NormMemo) *Tranco {
	if memo == nil {
		memo = NewNormMemo(l)
	}
	return &Tranco{
		inputs: []List{alexa, umbrella, majestic},
		psl:    l,
		Window: 30,
		memo:   memo,
	}
}

// Name implements List.
func (t *Tranco) Name() string { return "Tranco" }

// Bucketed implements List.
func (t *Tranco) Bucketed() bool { return false }

// ComputeDay builds and stores the published list for day d; days must be
// computed in order after the inputs have published day d. The Dowdall
// accumulation is keyed by interned ID: every input snapshot of a study
// shares the world's table, so no name strings are revisited.
func (t *Tranco) ComputeDay(day int) {
	var tab *names.Table
	scores := make(map[names.ID]float64)
	start := day - t.Window + 1
	if start < 0 {
		start = 0
	}
	for d := start; d <= day; d++ {
		for _, in := range t.inputs {
			norm, _ := t.memo.Normalized(in, d)
			if tab == nil {
				tab = norm.Table()
			} else if tab != norm.Table() {
				panic("providers: Tranco inputs ranked over different name tables")
			}
			for i, id := range norm.IDs() {
				scores[id] += 1 / float64(i+1)
			}
		}
	}
	scored := make([]rank.ScoredID, 0, len(scores))
	for id, v := range scores {
		scored = append(scored, rank.ScoredID{ID: id, Score: v})
	}
	t.lists = append(t.lists, rank.FromScoredIDs(tab, scored, rank.TieHashed))
}

// NumDays returns how many days have been computed.
func (t *Tranco) NumDays() int { return len(t.lists) }

// Raw implements List. Tranco publishes registrable domains already.
func (t *Tranco) Raw(day int) *rank.Ranking { return t.lists[day] }

// Normalized implements List.
func (t *Tranco) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalized(t.Raw(day), l)
}

// NormalizedIn implements the memoized normalization fast path.
func (t *Tranco) NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalizedIn(t.Raw(day), nz)
}

// Trexa reconstructs the Trexa list [35]: an interleave of Tranco and Alexa
// that additionally weights toward Alexa, built by Zeber et al. to better
// match observed Firefox browsing. The construction walks both lists,
// drawing from Alexa at a fixed cadence ratio and skipping duplicates.
type Trexa struct {
	alexa  List
	tranco *Tranco
	psl    *psl.List
	// AlexaWeight is how many Alexa entries are taken per Tranco entry
	// (default 2, the "additionally weighting towards Alexa" of the paper).
	AlexaWeight int

	lists []*rank.Ranking
}

// NewTrexa builds a Trexa provider. Normalized Alexa snapshots are drawn
// through the Tranco amalgam's memo, which already holds them.
func NewTrexa(alexa List, tranco *Tranco, l *psl.List) *Trexa {
	return &Trexa{alexa: alexa, tranco: tranco, psl: l, AlexaWeight: 2}
}

// Name implements List.
func (t *Trexa) Name() string { return "Trexa" }

// Bucketed implements List.
func (t *Trexa) Bucketed() bool { return false }

// ComputeDay builds and stores the published list for day d. The Tranco day
// must already be computed. The interleave walks both inputs by ID.
func (t *Trexa) ComputeDay(day int) {
	a, _ := t.tranco.memo.Normalized(t.alexa, day)
	tr := t.tranco.Raw(day)
	if a.Table() != tr.Table() {
		panic("providers: Trexa inputs ranked over different name tables")
	}
	seen := make(map[names.ID]struct{}, a.Len()+tr.Len())
	out := make([]names.ID, 0, a.Len()+tr.Len())
	ai, ti := 1, 1
	take := func(r *rank.Ranking, idx *int) {
		for *idx <= r.Len() {
			id := r.IDAt(*idx)
			*idx++
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
				return
			}
		}
	}
	for ai <= a.Len() || ti <= tr.Len() {
		for k := 0; k < t.AlexaWeight; k++ {
			take(a, &ai)
		}
		take(tr, &ti)
	}
	t.lists = append(t.lists, rank.MustFromIDs(a.Table(), out))
}

// NumDays returns how many days have been computed.
func (t *Trexa) NumDays() int { return len(t.lists) }

// Raw implements List.
func (t *Trexa) Raw(day int) *rank.Ranking { return t.lists[day] }

// Normalized implements List.
func (t *Trexa) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalized(t.Raw(day), l)
}

// NormalizedIn implements the memoized normalization fast path.
func (t *Trexa) NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalizedIn(t.Raw(day), nz)
}
