package providers

import (
	"strings"

	"toplists/internal/chrome"
	"toplists/internal/names"
	"toplists/internal/psl"
	"toplists/internal/rank"
)

// Crux wraps the public Chrome User Experience Report dataset (Section 2):
// monthly, keyed by web origin, ranked by completed page loads, published
// as rank-order-magnitude buckets only. The same monthly list is returned
// for every day of the month, matching how the real dataset updates.
type Crux struct {
	list *chrome.CruxList
	norm monthNorm
}

// NewCrux derives the month's public CrUX list from telemetry. minVisitors
// is the per-country privacy threshold; bk sets the magnitude cutoffs.
func NewCrux(t *chrome.Telemetry, minVisitors int, bk rank.Bucketer) *Crux {
	return &Crux{list: t.DeriveCrux(minVisitors, bk)}
}

// Name implements List.
func (c *Crux) Name() string { return "CrUX" }

// Bucketed implements List: CrUX publishes rank magnitudes, not ranks, so
// Spearman correlation cannot be computed against it (Section 4.4).
func (c *Crux) Bucketed() bool { return true }

// Raw implements List: entries are origins in the dataset's internal order.
func (c *Crux) Raw(day int) *rank.Ranking { return c.list.OriginRanking() }

// Normalized implements List: origins are stripped to their host and
// grouped by registrable domain with min-rank (Section 4.2). An entry
// deviates from the PSL form when its host is not itself a registrable
// domain (scheme differences alone do not count as deviation). The list is
// month-stable, so the grouping runs once and is shared by every day.
func (c *Crux) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return c.norm.get(l, func() (*rank.Ranking, rank.NormalizeStats) {
		return c.normalize(func(host string) (string, bool) {
			return l.RegisteredDomain(host)
		})
	})
}

// NormalizedIn implements the memoized normalization fast path; origin
// hosts are not themselves ranked names, so the host's apex is resolved
// through the normalizer's per-ID cache after interning the host.
func (c *Crux) NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	raw := c.Raw(0)
	if raw.Table() != nz.Table() {
		return c.Normalized(day, nz.PSL())
	}
	return c.norm.get(nz, func() (*rank.Ranking, rank.NormalizeStats) {
		tab := nz.Table()
		return c.normalize(func(host string) (string, bool) {
			apexID, ok := nz.Apex(tab.Intern(host))
			if !ok {
				return "", false
			}
			return tab.Lookup(apexID), true
		})
	})
}

// normalize groups origins by the registrable domain of their host, keyed
// by interned ID on the raw list's table, ordered by minimum origin rank.
func (c *Crux) normalize(apexOf func(host string) (string, bool)) (*rank.Ranking, rank.NormalizeStats) {
	raw := c.Raw(0)
	tab := raw.Table()
	stats := rank.NormalizeStats{Entries: raw.Len()}
	minRank := make(map[names.ID]int, raw.Len())
	for i := 1; i <= raw.Len(); i++ {
		host := hostOfOrigin(raw.At(i))
		etld1, ok := apexOf(host)
		if !ok {
			stats.Dropped++
			stats.Deviating++
			continue
		}
		if etld1 != host {
			stats.Deviating++
		}
		id := tab.Intern(etld1)
		if _, seen := minRank[id]; !seen {
			minRank[id] = i
		}
	}
	stats.Groups = len(minRank)
	scored := make([]rank.ScoredID, 0, len(minRank))
	for id, r := range minRank {
		scored = append(scored, rank.ScoredID{ID: id, Score: -float64(r)})
	}
	return rank.FromScoredIDs(tab, scored, rank.TieHashed), stats
}

// Entries exposes the published (origin, bucket) rows.
func (c *Crux) Entries() []chrome.CruxEntry { return c.list.Entries }

func hostOfOrigin(origin string) string {
	s := strings.TrimPrefix(origin, "https://")
	s = strings.TrimPrefix(s, "http://")
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return s
}
