package providers

import (
	"strings"

	"toplists/internal/chrome"
	"toplists/internal/psl"
	"toplists/internal/rank"
)

// Crux wraps the public Chrome User Experience Report dataset (Section 2):
// monthly, keyed by web origin, ranked by completed page loads, published
// as rank-order-magnitude buckets only. The same monthly list is returned
// for every day of the month, matching how the real dataset updates.
type Crux struct {
	list *chrome.CruxList
}

// NewCrux derives the month's public CrUX list from telemetry. minVisitors
// is the per-country privacy threshold; bk sets the magnitude cutoffs.
func NewCrux(t *chrome.Telemetry, minVisitors int, bk rank.Bucketer) *Crux {
	return &Crux{list: t.DeriveCrux(minVisitors, bk)}
}

// Name implements List.
func (c *Crux) Name() string { return "CrUX" }

// Bucketed implements List: CrUX publishes rank magnitudes, not ranks, so
// Spearman correlation cannot be computed against it (Section 4.4).
func (c *Crux) Bucketed() bool { return true }

// Raw implements List: entries are origins in the dataset's internal order.
func (c *Crux) Raw(day int) *rank.Ranking { return c.list.OriginRanking() }

// Normalized implements List: origins are stripped to their host and
// grouped by registrable domain with min-rank (Section 4.2). An entry
// deviates from the PSL form when its host is not itself a registrable
// domain (scheme differences alone do not count as deviation).
func (c *Crux) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	raw := c.Raw(day)
	stats := rank.NormalizeStats{Entries: raw.Len()}
	minRank := make(map[string]int, raw.Len())
	for i := 1; i <= raw.Len(); i++ {
		host := hostOfOrigin(raw.At(i))
		etld1, ok := l.RegisteredDomain(host)
		if !ok {
			stats.Dropped++
			stats.Deviating++
			continue
		}
		if etld1 != host {
			stats.Deviating++
		}
		if _, seen := minRank[etld1]; !seen {
			minRank[etld1] = i
		}
	}
	stats.Groups = len(minRank)
	scored := make([]rank.Scored, 0, len(minRank))
	for name, r := range minRank {
		scored = append(scored, rank.Scored{Name: name, Score: -float64(r)})
	}
	return rank.FromScores(scored, rank.TieHashed), stats
}

// Entries exposes the published (origin, bucket) rows.
func (c *Crux) Entries() []chrome.CruxEntry { return c.list.Entries }

func hostOfOrigin(origin string) string {
	s := strings.TrimPrefix(origin, "https://")
	s = strings.TrimPrefix(s, "http://")
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return s
}
