package providers

import (
	"testing"

	"toplists/internal/psl"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// findSiteOfCategory returns a site ID of the given category.
func findSiteOfCategory(w *world.World, cat world.Category) (int32, bool) {
	for i := 0; i < w.NumSites(); i++ {
		if w.Site(int32(i)).Category == cat {
			return int32(i), true
		}
	}
	return 0, false
}

func TestUmbrellaFamilyFilterDropsAdultQueries(t *testing.T) {
	w := world.Generate(world.Config{Seed: 81, NumSites: 2000})
	u := NewUmbrella(w, psl.Default())
	adult, ok := findSiteOfCategory(w, world.Adult)
	if !ok {
		t.Skip("no adult site at this scale")
	}
	news, ok := findSiteOfCategory(w, world.News)
	if !ok {
		t.Skip("no news site at this scale")
	}

	filtered := &traffic.Client{ID: 1, HomeOpenDNS: true, FamilyFilter: true}
	open := &traffic.Client{ID: 2, HomeOpenDNS: true}

	u.BeginDay(0, false)
	for _, q := range []traffic.DNSQuery{
		{Day: 0, Client: filtered, IP: 10, Site: adult, Infra: -1},
		{Day: 0, Client: filtered, IP: 10, Site: news, Infra: -1},
		{Day: 0, Client: open, IP: 20, Site: adult, Infra: -1},
	} {
		q := q
		u.OnDNSQuery(&q)
	}
	u.EndDay(0)

	raw := u.Raw(0)
	adultName := w.Site(adult).Hostname(0)
	newsName := w.Site(news).Hostname(0)
	if !raw.Contains(newsName) {
		t.Errorf("news query from filtered home missing")
	}
	if !raw.Contains(adultName) {
		t.Errorf("adult query from unfiltered home missing")
	}
	// The filtered household contributed no adult signal: the adult name
	// must have exactly one crediting IP (the unfiltered one), so its
	// quantized score equals a single-IP name's.
	if r1, _ := raw.RankOf(adultName); r1 == 0 {
		t.Error("adult name absent entirely")
	}
}

func TestUmbrellaIgnoresPlainHomeClients(t *testing.T) {
	w := world.Generate(world.Config{Seed: 82, NumSites: 500})
	u := NewUmbrella(w, psl.Default())
	plain := &traffic.Client{ID: 3} // neither enterprise-at-work nor OpenDNS
	u.BeginDay(0, false)
	q := traffic.DNSQuery{Day: 0, Client: plain, IP: 30, Site: 0, Infra: -1}
	u.OnDNSQuery(&q)
	u.EndDay(0)
	if u.Raw(0).Len() != 0 {
		t.Fatal("plain home client's queries counted")
	}
}

func TestAlexaPanelVisibilityThinsAdult(t *testing.T) {
	w := world.Generate(world.Config{Seed: 83, NumSites: 2000})
	adult, ok := findSiteOfCategory(w, world.Adult)
	if !ok {
		t.Skip("no adult site")
	}
	news, ok := findSiteOfCategory(w, world.News)
	if !ok {
		t.Skip("no news site")
	}

	a := NewAlexa(w)
	panelist := &traffic.Client{ID: 5, PanelJoinDay: 0, Platform: world.Windows}
	a.BeginDay(0, false)
	const loads = 400
	for i := 0; i < loads; i++ {
		pl := traffic.PageLoad{Day: 0, Site: adult, Client: panelist, Second: int32(i)}
		a.OnPageLoad(&pl)
		pl2 := traffic.PageLoad{Day: 0, Site: news, Client: panelist, Second: int32(i)}
		a.OnPageLoad(&pl2)
	}
	a.EndDay(0)
	pv := a.days[0].pageviews
	if pv[news] != loads {
		t.Fatalf("news pageviews = %v, want %d", pv[news], loads)
	}
	// Adult visibility is 0.12: expect roughly 12% of loads recorded.
	if pv[adult] > loads/4 || pv[adult] == 0 {
		t.Errorf("adult pageviews = %v of %d; thinning looks wrong", pv[adult], loads)
	}
}

func TestAlexaIgnoresNonPanelAndPrivate(t *testing.T) {
	w := world.Generate(world.Config{Seed: 84, NumSites: 300})
	a := NewAlexa(w)
	a.BeginDay(0, false)
	noPanel := &traffic.Client{ID: 1, PanelJoinDay: -1}
	joined := &traffic.Client{ID: 2, PanelJoinDay: 0}
	late := &traffic.Client{ID: 3, PanelJoinDay: 5}
	for _, pl := range []traffic.PageLoad{
		{Day: 0, Site: 0, Client: noPanel},
		{Day: 0, Site: 0, Client: joined, Private: true},
		{Day: 0, Site: 0, Client: late}, // joins day 5, this is day 0
	} {
		pl := pl
		a.OnPageLoad(&pl)
	}
	a.EndDay(0)
	if a.Raw(0).Len() != 0 {
		t.Fatal("ineligible loads were counted")
	}
}

func TestAlexaTrailingWindow(t *testing.T) {
	w := world.Generate(world.Config{Seed: 85, NumSites: 300})
	a := NewAlexa(w)
	panelist := &traffic.Client{ID: 9, PanelJoinDay: 0}
	// Day 0: heavy traffic to site 5; later days: nothing. The trailing
	// window keeps site 5 ranked on later days.
	for d := 0; d < 4; d++ {
		a.BeginDay(d, false)
		if d == 0 {
			for i := 0; i < 10; i++ {
				pl := traffic.PageLoad{Day: 0, Site: 5, Client: panelist, Second: int32(i)}
				a.OnPageLoad(&pl)
			}
		}
		a.EndDay(d)
	}
	if !a.Raw(3).Contains(w.Site(5).Domain) {
		t.Error("window-averaged rank lost the site")
	}
}

func TestSecrankWindowSmoothing(t *testing.T) {
	w := world.Generate(world.Config{Seed: 86, NumSites: 300})
	s := NewSecrank(w, psl.Default())
	s.Window = 3
	cn := &traffic.Client{ID: 1, Country: world.CN}
	for d := 0; d < 5; d++ {
		s.BeginDay(d, false)
		if d == 0 {
			q := traffic.DNSQuery{Day: 0, Client: cn, IP: 1, Site: 7, Infra: -1}
			s.OnDNSQuery(&q)
		}
		s.EndDay(d)
	}
	name := w.Site(7).Domain
	if !s.Raw(1).Contains(name) || !s.Raw(2).Contains(name) {
		t.Error("site dropped inside the smoothing window")
	}
	if s.Raw(4).Contains(name) {
		t.Error("site survived beyond the smoothing window")
	}
}

func TestSecrankIgnoresNonCN(t *testing.T) {
	w := world.Generate(world.Config{Seed: 87, NumSites: 300})
	s := NewSecrank(w, psl.Default())
	s.BeginDay(0, false)
	us := &traffic.Client{ID: 1, Country: world.US}
	q := traffic.DNSQuery{Day: 0, Client: us, IP: 1, Site: 0, Infra: -1}
	s.OnDNSQuery(&q)
	s.EndDay(0)
	if s.Raw(0).Len() != 0 {
		t.Fatal("non-CN query counted")
	}
}

func TestSecrankDiversityWeighting(t *testing.T) {
	w := world.Generate(world.Config{Seed: 88, NumSites: 300})
	s := NewSecrank(w, psl.Default())
	s.Window = 1
	s.BeginDay(0, false)
	// A diverse IP (queries two domains) and a single-purpose IP each
	// query site 3 once; a third domain gets only the diverse IP's vote.
	diverse := &traffic.Client{ID: 1, Country: world.CN}
	single := &traffic.Client{ID: 2, Country: world.CN}
	for _, q := range []traffic.DNSQuery{
		{Day: 0, Client: diverse, IP: 1, Site: 3, Infra: -1},
		{Day: 0, Client: diverse, IP: 1, Site: 4, Infra: -1},
		{Day: 0, Client: single, IP: 2, Site: 3, Infra: -1},
	} {
		q := q
		s.OnDNSQuery(&q)
	}
	s.EndDay(0)
	r := s.Raw(0)
	r3, _ := r.RankOf(w.Site(3).Domain)
	r4, _ := r.RankOf(w.Site(4).Domain)
	if r3 == 0 || r4 == 0 {
		t.Fatal("expected both domains ranked")
	}
	if r3 >= r4 {
		t.Errorf("site with two voters ranked %d, not above single-voter site %d", r3, r4)
	}
}
