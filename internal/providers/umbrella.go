package providers

import (
	"math"

	"toplists/internal/names"
	"toplists/internal/psl"
	"toplists/internal/rank"
	"toplists/internal/sketch"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// Umbrella reconstructs the Cisco Umbrella 1 Million: "the number of unique
// client IPs visiting each domain, relative to the sum of all requests to
// all domains" [33], computed from queries arriving at the corporate
// Umbrella resolver.
//
// Three properties of the real list fall out of the vantage:
//
//   - Entries are FQDNs, not websites; heavily-queried infrastructure names
//     (telemetry, NTP, updates) crowd the head.
//   - Bare public suffixes rank at the very top (".com is ranked #1"),
//     modeled by crediting each query's suffix chain.
//   - Ties deep in the list break alphabetically, the behaviour prior work
//     observed [25] and the paper blames for Umbrella's poor Spearman
//     correlations (Section 5.2).
type Umbrella struct {
	traffic.BaseSink
	w   *world.World
	psl *psl.List
	tab *names.Table

	// hostID memoizes the interned FQDN per (site, subdomain) or infra
	// name, so the month's query stream builds each hostname string once.
	hostID map[hostKey]names.ID
	// suffixID memoizes per FQDN the interned public suffix to credit;
	// the FQDN's own ID marks "no separate suffix" (empty, or the name is
	// itself a suffix).
	suffixID map[names.ID]names.ID

	// ips[id] is the set of client IPs that queried the name today. Plain
	// map sets: enterprise office IPs are few and heavily shared.
	ips map[names.ID]map[uint32]struct{}

	// Sketch mode (see sketchmode.go): bounded per-shard summaries replace
	// the ips sets, merged into dayTKD at the barrier.
	sk       sketch.Config
	dayTKD   *sketch.TopKDistinct
	nameOf   map[uint64]string
	shardMem int
	memPeak  int

	lists []*rank.Ranking
}

// hostKey identifies a queried FQDN: (site << 8) | subdomain index for
// website hostnames, -1-infra for infrastructure names.
type hostKey int64

// NewUmbrella returns an Umbrella provider observing the corporate resolver.
func NewUmbrella(w *world.World, l *psl.List) *Umbrella {
	return &Umbrella{
		w:        w,
		psl:      l,
		tab:      w.Interner(),
		hostID:   make(map[hostKey]names.ID),
		suffixID: make(map[names.ID]names.ID),
	}
}

// Name implements List.
func (u *Umbrella) Name() string { return "Umbrella" }

// Bucketed implements List.
func (u *Umbrella) Bucketed() bool { return false }

// BeginDay implements traffic.Sink.
func (u *Umbrella) BeginDay(day int, weekend bool) {
	if u.sk.Enabled {
		return
	}
	u.ips = make(map[names.ID]map[uint32]struct{})
}

// OnDNSQuery implements traffic.Sink.
func (u *Umbrella) OnDNSQuery(q *traffic.DNSQuery) {
	if !q.AtWork && !q.Client.HomeOpenDNS {
		// Umbrella's vantage is corporate egress plus the minority of home
		// networks pointed at OpenDNS.
		return
	}
	var key hostKey
	if q.Site >= 0 {
		if !q.AtWork && q.Client.FamilyFilter && familyFiltered[u.w.Site(q.Site).Category] {
			// The household's filtering policy answers with a block page;
			// blocked resolutions do not feed the popularity ranking.
			return
		}
		key = hostKey(q.Site)<<8 | hostKey(q.SubIdx)
	} else {
		key = -1 - hostKey(q.Infra)
	}
	id := u.fqdnID(key, q)
	u.credit(id, q.IP)
	// Umbrella counts the names clients actually query: the signal for one
	// website splits across its hostnames rather than aggregating by
	// registrable domain — a big part of why the list ranks websites
	// poorly even when it includes them (Section 5.2). Resolution of the
	// suffix chain (TLD servers) is also observed, which is how bare
	// suffixes like "com" top the list.
	if sid := u.suffixOf(id); sid != id {
		u.credit(sid, q.IP)
	}
}

// fqdnID returns the interned FQDN for a query, building the hostname
// string only on the first query of each (site, subdomain) or infra name.
func (u *Umbrella) fqdnID(key hostKey, q *traffic.DNSQuery) names.ID {
	if id, ok := u.hostID[key]; ok {
		return id
	}
	var fqdn string
	if q.Site >= 0 {
		fqdn = u.w.Site(q.Site).Hostname(int(q.SubIdx))
	} else {
		fqdn = u.w.Infra[q.Infra].FQDN
	}
	id := u.tab.Intern(fqdn)
	u.hostID[key] = id
	return id
}

// suffixOf returns the interned public suffix to credit for fqdn id, or id
// itself when no separate suffix should be credited.
func (u *Umbrella) suffixOf(id names.ID) names.ID {
	if sid, ok := u.suffixID[id]; ok {
		return sid
	}
	fqdn := u.tab.Lookup(id)
	sid := id
	if suffix, _ := u.psl.PublicSuffix(fqdn); suffix != "" && suffix != fqdn {
		sid = u.tab.Intern(suffix)
	}
	u.suffixID[id] = sid
	return sid
}

// familyFiltered lists the categories OpenDNS home filtering blocks.
var familyFiltered = func() [world.NumCategories]bool {
	var v [world.NumCategories]bool
	v[world.Adult] = true
	v[world.Gambling] = true
	v[world.Abuse] = true
	return v
}()

func (u *Umbrella) credit(id names.ID, ip uint32) {
	s, ok := u.ips[id]
	if !ok {
		s = make(map[uint32]struct{}, 4)
		u.ips[id] = s
	}
	s[ip] = struct{}{}
}

// EndDay implements traffic.Sink.
func (u *Umbrella) EndDay(day int) {
	if u.sk.Enabled {
		u.endDaySketch(day)
		return
	}
	scored := make([]rank.ScoredID, 0, len(u.ips))
	for id, set := range u.ips {
		scored = append(scored, rank.ScoredID{ID: id, Score: quantize(len(set))})
	}
	// Alphabetical tie-break: the signature Umbrella artifact.
	u.lists = append(u.lists, rank.FromScoredIDs(u.tab, scored, rank.TieLexicographic))
}

// quantize coarsens a unique-IP count to the resolution the published list
// evidently has: prior work observed "long strings of alphabetically sorted
// domains" [25], which means the underlying popularity score ties across
// large count ranges. A log2 grid reproduces those runs.
func quantize(count int) float64 {
	return math.Floor(math.Log2(float64(count)))
}

// NumDays returns how many days have been published.
func (u *Umbrella) NumDays() int { return len(u.lists) }

// Raw implements List.
func (u *Umbrella) Raw(day int) *rank.Ranking { return u.lists[day] }

// Normalized implements List.
func (u *Umbrella) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalized(u.Raw(day), l)
}

// NormalizedIn implements the memoized normalization fast path.
func (u *Umbrella) NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalizedIn(u.Raw(day), nz)
}
