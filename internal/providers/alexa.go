package providers

import (
	"math"

	"toplists/internal/psl"
	"toplists/internal/rank"
	"toplists/internal/sketch"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// Alexa reconstructs the Alexa Top Million: popularity inferred from a
// panel of users running partnered browser extensions. Per Alexa's public
// description, the daily rank combines "the average daily visitors and
// pageviews ... over the past 3 months" [3, 6]; the window here is the
// trailing part of the simulated month.
//
// The panel's documented blind spots are inherited from the event stream:
// the extension exists only on desktop, is absent from enterprise machines,
// and sees nothing in private browsing mode — which is how adult and
// gambling sites vanish from the list (Section 6.4, citing [15]).
type Alexa struct {
	traffic.BaseSink
	w *world.World

	// Per-day per-site accumulators for the current day.
	pageviews map[int32]float64
	visitors  map[int32]sketch.Distinct

	// days holds the frozen per-day aggregates.
	days []alexaDay

	lists []*rank.Ranking
}

type alexaDay struct {
	pageviews map[int32]float64
	visitors  map[int32]float64
}

// NewAlexa returns an Alexa provider observing panel traffic.
func NewAlexa(w *world.World) *Alexa {
	return &Alexa{w: w}
}

// Name implements List.
func (a *Alexa) Name() string { return "Alexa" }

// Bucketed implements List.
func (a *Alexa) Bucketed() bool { return false }

// BeginDay implements traffic.Sink.
func (a *Alexa) BeginDay(day int, weekend bool) {
	a.pageviews = make(map[int32]float64)
	a.visitors = make(map[int32]sketch.Distinct)
}

// panelVisibility is the fraction of a panelist's non-private loads of a
// sensitive category that the extension actually reports. Beyond private
// mode, panel members systematically hide sensitive browsing from an
// extension they know is watching (the behaviour documented in [15] and the
// reason the paper gives for Alexa's 0.27x adult inclusion odds).
var panelVisibility = func() [world.NumCategories]float64 {
	var v [world.NumCategories]float64
	for i := range v {
		v[i] = 1
	}
	v[world.Adult] = 0.12
	v[world.Gambling] = 0.18
	v[world.Abuse] = 0.5
	return v
}()

// observes reports whether the panel extension records this load: panel
// membership, private mode, and sensitivity thinning. All three are pure
// functions of the event, so exact and sketch paths share the filter.
func (a *Alexa) observes(pl *traffic.PageLoad) bool {
	if !pl.Client.OnPanel(pl.Day) || pl.Private {
		return false
	}
	// The sensitivity thinning below is the extension-side face of the
	// private-browsing mechanism; the NoPrivateBrowsing ablation disables
	// both together.
	if vis := panelVisibility[a.w.Site(pl.Site).Category]; vis < 1 && !a.w.Cfg.Ablate.NoPrivateBrowsing {
		// Deterministic thinning keyed by the load's identity.
		h := uint64(pl.Client.ID)<<40 ^ uint64(pl.Site)<<16 ^
			uint64(pl.Day)<<8 ^ uint64(pl.Second)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		if float64(h>>11)/(1<<53) >= vis {
			return false
		}
	}
	return true
}

// OnPageLoad implements traffic.Sink.
func (a *Alexa) OnPageLoad(pl *traffic.PageLoad) {
	if !a.observes(pl) {
		return
	}
	a.pageviews[pl.Site]++
	d, ok := a.visitors[pl.Site]
	if !ok {
		d = sketch.NewExact()
		a.visitors[pl.Site] = d
	}
	d.Add(uint64(pl.Client.ID))
}

// EndDay implements traffic.Sink: freeze the day and publish the ranking.
func (a *Alexa) EndDay(day int) {
	frozen := alexaDay{pageviews: a.pageviews, visitors: make(map[int32]float64, len(a.visitors))}
	for site, d := range a.visitors {
		frozen.visitors[site] = d.Count()
	}
	a.days = append(a.days, frozen)
	a.lists = append(a.lists, a.computeList())
}

// computeList ranks sites by the geometric mean of average daily visitors
// and average daily pageviews over the trailing window.
func (a *Alexa) computeList() *rank.Ranking {
	window := len(a.days)
	if window > 90 {
		window = 90
	}
	pv := make(map[int32]float64)
	vis := make(map[int32]float64)
	for _, d := range a.days[len(a.days)-window:] {
		for s, v := range d.pageviews {
			pv[s] += v
		}
		for s, v := range d.visitors {
			vis[s] += v
		}
	}
	scored := make([]rank.ScoredID, 0, len(pv))
	for s, p := range pv {
		score := math.Sqrt((p / float64(window)) * (vis[s] / float64(window)))
		scored = append(scored, rank.ScoredID{ID: a.w.DomainID(s), Score: score})
	}
	return rank.FromScoredIDs(a.w.Interner(), scored, rank.TieHashed)
}

// NumDays returns how many days have been published.
func (a *Alexa) NumDays() int { return len(a.lists) }

// Raw implements List.
func (a *Alexa) Raw(day int) *rank.Ranking { return a.lists[day] }

// Normalized implements List.
func (a *Alexa) Normalized(day int, l *psl.List) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalized(a.Raw(day), l)
}

// NormalizedIn implements the memoized normalization fast path.
func (a *Alexa) NormalizedIn(day int, nz *rank.Normalizer) (*rank.Ranking, rank.NormalizeStats) {
	return domainNormalizedIn(a.Raw(day), nz)
}
