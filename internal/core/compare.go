package core

import (
	"math"

	"toplists/internal/names"
	"toplists/internal/rank"
	"toplists/internal/stats"
)

// JaccardTopK returns the Jaccard index of the top-k sets of two rankings.
// Rankings over the same name table compare as ID bitsets; the string-set
// path remains for free-standing fixtures.
func JaccardTopK(a, b *rank.Ranking, k int) float64 {
	if a.Table() == b.Table() {
		return stats.JaccardIDs(a.TopSetIDs(k), b.TopSetIDs(k))
	}
	return stats.Jaccard(a.TopSet(k), b.TopSet(k))
}

// SpearmanTopK returns Spearman's rank correlation over the intersection of
// the top-k prefixes of two rankings, plus the intersection size. The
// correlation is computed on the ranks each list assigns to the shared
// elements, per Section 3.2.
func SpearmanTopK(a, b *rank.Ranking, k int) (rs float64, shared int, err error) {
	aTop := a.Top(k)
	var xs, ys []float64
	if a.Table() == b.Table() {
		for i := 1; i <= aTop.Len(); i++ {
			if rb, ok := b.RankOfID(aTop.IDAt(i)); ok && rb <= k {
				xs = append(xs, float64(i))
				ys = append(ys, float64(rb))
			}
		}
	} else {
		for i := 1; i <= aTop.Len(); i++ {
			if rb, ok := b.RankOf(aTop.At(i)); ok && rb <= k {
				xs = append(xs, float64(i))
				ys = append(ys, float64(rb))
			}
		}
	}
	rs, err = stats.Spearman(xs, ys)
	return rs, len(xs), err
}

// ListVsMetric is the Section 4.3 methodology for evaluating one top list
// against one Cloudflare metric:
//
//	To build comparable lists of sites, we filter out non Cloudflare-sites
//	from each top list and compare the subset of Cloudflare sites against
//	the same number of top sites from Cloudflare.
//
// list must be PSL-normalized; cf is the metric's ranked domain list;
// cfSet is the probed set of Cloudflare-served domains; k is the list
// magnitude under evaluation (e.g. the scaled "top 1M").
type ListVsMetric struct {
	// N is the number of Cloudflare-served sites found in the list's top k.
	N int
	// Jaccard compares that set against the metric's top-N set.
	Jaccard float64
	// Spearman correlates the ranks of the shared elements; valid only if
	// SpearmanOK (undefined for bucketed lists or empty intersections).
	Spearman   float64
	SpearmanOK bool
}

// EvalListVsMetric runs the Section 4.3 comparison. bucketed disables the
// Spearman computation (CrUX).
func EvalListVsMetric(list *rank.Ranking, cfSet map[string]struct{}, cf *rank.Ranking, k int, bucketed bool) ListVsMetric {
	top := list.Top(k)
	cfOnly := top.Filter(func(name string) bool {
		_, ok := cfSet[name]
		return ok
	})
	n := cfOnly.Len()
	res := ListVsMetric{N: n}
	if n == 0 {
		return res
	}
	cfTop := cf.Top(n)
	res.Jaccard = stats.Jaccard(cfOnly.TopSet(n), cfTop.TopSet(n))

	if bucketed {
		return res
	}
	var xs, ys []float64
	for i := 1; i <= n; i++ {
		name := cfOnly.At(i)
		if r, ok := cfTop.RankOf(name); ok {
			xs = append(xs, float64(i))
			ys = append(ys, float64(r))
		}
	}
	if rs, err := stats.Spearman(xs, ys); err == nil {
		res.Spearman = rs
		res.SpearmanOK = true
	}
	return res
}

// EvalListVsMetricIDs is the interned-evaluation form of EvalListVsMetric:
// cfSet is the probed Cloudflare set as a bitset over the study's name
// table (Artifacts.CFDomainIDs). Both rankings must be ranked over that
// same table — the experiment runners only pass study-owned artifacts, so
// a mismatch is an internal invariant violation, not an input error.
func EvalListVsMetricIDs(list *rank.Ranking, cfSet *names.Set, cf *rank.Ranking, k int, bucketed bool) ListVsMetric {
	if list.Table() != cf.Table() {
		panic("core: EvalListVsMetricIDs rankings use different name tables")
	}
	cfOnly := list.Top(k).FilterIDs(cfSet.Contains)
	n := cfOnly.Len()
	res := ListVsMetric{N: n}
	if n == 0 {
		return res
	}
	cfTop := cf.Top(n)
	res.Jaccard = stats.JaccardIDs(cfOnly.TopSetIDs(n), cfTop.TopSetIDs(n))

	if bucketed {
		return res
	}
	var xs, ys []float64
	for i := 1; i <= n; i++ {
		if r, ok := cfTop.RankOfID(cfOnly.IDAt(i)); ok {
			xs = append(xs, float64(i))
			ys = append(ys, float64(r))
		}
	}
	if rs, err := stats.Spearman(xs, ys); err == nil {
		res.Spearman = rs
		res.SpearmanOK = true
	}
	return res
}

// MeanListVsMetric averages daily ListVsMetric results (the paper reports
// month averages of daily comparisons).
func MeanListVsMetric(daily []ListVsMetric) ListVsMetric {
	if len(daily) == 0 {
		return ListVsMetric{}
	}
	var out ListVsMetric
	var jj, rs []float64
	var n float64
	for _, d := range daily {
		n += float64(d.N)
		jj = append(jj, d.Jaccard)
		if d.SpearmanOK {
			rs = append(rs, d.Spearman)
		}
	}
	out.N = int(math.Round(n / float64(len(daily))))
	out.Jaccard = stats.Mean(jj)
	if len(rs) > 0 {
		out.Spearman = stats.Mean(rs)
		out.SpearmanOK = true
	}
	return out
}
