package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"testing"

	"toplists/internal/obs"
	"toplists/internal/snapshot"
)

// checkpointedDir advances a study day by day with an every-day
// auto-checkpoint into a fresh snapshot directory, returning the dir.
// The study is closed before returning: recovery always starts cold.
func checkpointedDir(t *testing.T, cfg Config, days int) *snapshot.Dir {
	t.Helper()
	dir, err := snapshot.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(cfg)
	defer s.Close()
	s.SetAutoCheckpoint(1, func(day int, write func(io.Writer) error) error {
		_, _, err := dir.Write(write)
		return err
	})
	for i := 0; i < days; i++ {
		if err := s.AdvanceDay(context.Background()); err != nil {
			t.Fatalf("AdvanceDay(%d): %v", i, err)
		}
	}
	return dir
}

func TestRecoverResumesNewestGeneration(t *testing.T) {
	cfg := checkpointCfg(41, 5, false)
	dir := checkpointedDir(t, cfg, 3)

	reg := obs.NewRegistry()
	rec, err := Recover(dir, ResumeOptions{Workers: 1, Obs: reg}, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Study.Close()
	if rec.Gen.Seq != 3 || rec.Scanned != 1 || rec.Rejected != 0 {
		t.Fatalf("Recover = %+v, want newest generation first try", rec)
	}
	if got := rec.Study.Day(); got != 3 {
		t.Fatalf("recovered at day %d, want 3", got)
	}

	// The recovered study finishes the month byte-identically to a
	// straight run.
	straight := NewStudy(cfg)
	defer straight.Close()
	straight.Run()
	rec.Study.Run()
	if got, want := studyFingerprint(rec.Study), studyFingerprint(straight); got != want {
		t.Fatalf("recovered fingerprint %x, straight %x", got, want)
	}

	rep := reg.Snapshot()
	if rep.Volatile["recovery.candidates"] != 1 || rep.Volatile["recovery.resumed_gen"] != 3 {
		t.Fatalf("recovery telemetry: %+v", rep.Volatile)
	}
	// Crash/restart history must never leak into the resume-stable report.
	stable, err := rep.ResumeStable()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stable, []byte("recovery.")) {
		t.Fatalf("recovery.* counters leaked into the resume-stable subset:\n%s", stable)
	}
}

// damage mutates one generation file in place.
func damage(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(b), 0o666); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverFallsBackPastTornNewestGeneration(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"zero-length", func(b []byte) []byte { return nil }},
		{"bit-flipped", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[len(c)/2] ^= 0x20
			return c
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := checkpointedDir(t, checkpointCfg(43, 5, false), 3)
			newest, err := dir.Latest()
			if err != nil {
				t.Fatal(err)
			}
			damage(t, newest.Path, tc.mutate)

			reg := obs.NewRegistry()
			rec, err := Recover(dir, ResumeOptions{Workers: 1, Obs: reg}, nil)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer rec.Study.Close()
			if rec.Gen.Seq != 2 || rec.Rejected != 1 || rec.Scanned != 2 {
				t.Fatalf("Recover = %+v, want fallback to generation 2", rec)
			}
			if got := rec.Study.Day(); got != 2 {
				t.Fatalf("recovered at day %d, want 2", got)
			}
			if got := reg.Snapshot().Volatile["recovery.rejected"]; got < 1 {
				t.Fatalf("recovery.rejected = %d, want >= 1", got)
			}
		})
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	dir, err := snapshot.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, ResumeOptions{}, nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Recover over empty dir: %v, want ErrNoCheckpoint", err)
	}
}

func TestRecoverAllGenerationsRejected(t *testing.T) {
	dir := checkpointedDir(t, checkpointCfg(47, 4, false), 2)
	gens, err := dir.Generations()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gens {
		damage(t, g.Path, func(b []byte) []byte { return b[:len(b)/2] })
	}
	rec, err := Recover(dir, ResumeOptions{}, nil)
	if err == nil {
		t.Fatal("Recover accepted a directory of torn generations")
	}
	if errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-rejected must not look like no-checkpoint: %v", err)
	}
	if rec.Study != nil {
		t.Fatal("Recover returned a study alongside an error")
	}
	if rec.Rejected != 2 || rec.Scanned != 2 {
		t.Fatalf("Recover = %+v, want both generations rejected", rec)
	}
}

// TestAutoCheckpointCadence pins the SetAutoCheckpoint contract: the hook
// fires every n advanced days and on the final day, from a clean day
// boundary (each written snapshot resumes at exactly the hook's day), and
// a failing hook never aborts the study.
func TestAutoCheckpointCadence(t *testing.T) {
	cfg := checkpointCfg(53, 5, false)
	s := NewStudy(cfg)
	defer s.Close()

	type ckpt struct {
		day  int
		blob []byte
	}
	var got []ckpt
	s.SetAutoCheckpoint(2, func(day int, write func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return err
		}
		got = append(got, ckpt{day, buf.Bytes()})
		return nil
	})
	s.Run()

	wantDays := []int{2, 4, 5}
	if len(got) != len(wantDays) {
		t.Fatalf("hook fired %d times, want %d", len(got), len(wantDays))
	}
	for i, c := range got {
		if c.day != wantDays[i] {
			t.Fatalf("checkpoint %d at day %d, want %d", i, c.day, wantDays[i])
		}
		r, err := Resume(bytes.NewReader(c.blob), ResumeOptions{Workers: 1})
		if err != nil {
			t.Fatalf("resume hook checkpoint at day %d: %v", c.day, err)
		}
		if r.Day() != c.day {
			t.Fatalf("hook checkpoint resumed at day %d, want %d", r.Day(), c.day)
		}
		r.Close()
	}
	if v := s.Metrics().Snapshot().Volatile["checkpoint.auto"]; v != int64(len(wantDays)) {
		t.Fatalf("checkpoint.auto = %d, want %d", v, len(wantDays))
	}

	// A failing hook is counted, not fatal: the study still advances.
	fail := NewStudy(checkpointCfg(53, 2, false))
	defer fail.Close()
	fail.SetAutoCheckpoint(1, func(int, func(io.Writer) error) error {
		return errors.New("disk full")
	})
	if err := fail.AdvanceDay(context.Background()); err != nil {
		t.Fatalf("AdvanceDay with failing hook: %v", err)
	}
	if err := fail.Aborted(); err != nil {
		t.Fatalf("failing hook aborted the study: %v", err)
	}
	if v := fail.Metrics().Snapshot().Volatile["checkpoint.auto_failed"]; v != 1 {
		t.Fatalf("checkpoint.auto_failed = %d, want 1", v)
	}
}
