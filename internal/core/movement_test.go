package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"toplists/internal/rank"
	"toplists/internal/simrand"
)

// TestMovementConservation: every agreed domain lands in exactly one cell
// of the movement matrix, for arbitrary lists and bucketers.
func TestMovementConservation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		src := simrand.New(seed)
		n := int(nRaw%60) + 5
		bk := rank.ScaledMagnitudes(n * 10)

		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("site%d.com", i)
		}
		agreed := make(map[string]rank.Bucket)
		for _, name := range names {
			if src.Bernoulli(0.7) {
				agreed[name] = rank.Bucket(src.Intn(4))
			}
		}
		// A random sublist as the top list.
		var listNames []string
		for _, name := range names {
			if src.Bernoulli(0.5) {
				listNames = append(listNames, name)
			}
		}
		list := rank.MustNew(listNames)

		m := ComputeMovement(agreed, list, bk)
		total := 0
		for a := 0; a < rank.NumBuckets; a++ {
			for b := 0; b < rank.NumBuckets; b++ {
				if m.Matrix[a][b] < 0 {
					return false
				}
				total += m.Matrix[a][b]
			}
		}
		return total == len(agreed)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverrankBounds: the overrank percentages always lie in [0, 100] and
// the 2-magnitude share never exceeds the 1-magnitude share.
func TestOverrankBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		src := simrand.New(seed)
		n := int(nRaw%80) + 10
		bk := rank.ScaledMagnitudes(n * 20)

		agreed := make(map[string]rank.Bucket)
		var listNames []string
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("s%d.net", i)
			listNames = append(listNames, name)
			if src.Bernoulli(0.8) {
				agreed[name] = rank.Bucket(src.Intn(4))
			}
		}
		list := rank.MustNew(listNames)
		for idx := 0; idx < 2; idx++ {
			st := ComputeOverrank(agreed, list, bk, idx)
			if st.OverrankedPct < 0 || st.OverrankedPct > 100 {
				return false
			}
			if st.Overranked2Pct < 0 || st.Overranked2Pct > st.OverrankedPct {
				return false
			}
			if st.N < 0 || st.N > len(agreed) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAgreedBucketsSubsetProperty: the agreed set is always a subset of the
// intersection of both metric lists, and every assigned bucket matches the
// first list's own bucketing.
func TestAgreedBucketsSubsetProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		src := simrand.New(seed)
		n := int(nRaw%50) + 10
		bk := rank.ScaledMagnitudes(n)

		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("d%d.org", i)
		}
		perm1 := src.Perm(n)
		perm2 := src.Perm(n)
		l1 := make([]string, n)
		l2 := make([]string, 0, n)
		for i, p := range perm1 {
			l1[i] = names[p]
		}
		for _, p := range perm2 {
			if src.Bernoulli(0.8) {
				l2 = append(l2, names[p])
			}
		}
		m1 := rank.MustNew(l1)
		m3 := rank.MustNew(l2)
		agreed := AgreedBuckets(m1, m3, bk)
		for name, b := range agreed {
			r1, ok1 := m1.RankOf(name)
			r3, ok3 := m3.RankOf(name)
			if !ok1 || !ok3 {
				return false
			}
			if bk.BucketOf(r1) != b || bk.BucketOf(r3) != b {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStudyKDefaults(t *testing.T) {
	s := getStudy(t)
	if s.EvalK() != s.Bucketer.Magnitudes[2] {
		t.Errorf("EvalK = %d", s.EvalK())
	}
	if s.SpearmanK() != s.Bucketer.Magnitudes[3] {
		t.Errorf("SpearmanK = %d", s.SpearmanK())
	}
}
