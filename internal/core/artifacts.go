package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"toplists/internal/cfmetrics"
	"toplists/internal/chrome"
	"toplists/internal/names"
	"toplists/internal/obs"
	"toplists/internal/providers"
	"toplists/internal/rank"
	"toplists/internal/world"
)

// Artifacts is the study's memoized derived-data layer: every ranking or
// set the evaluation derives from the raw simulation output — PSL-normalized
// list snapshots, per-day Cloudflare metric rankings, month-aggregated
// Dowdall amalgams, Chrome telemetry cell rankings, and the probed set of
// Cloudflare-served domains — is computed exactly once per study and shared
// by all experiments.
//
// The store is safe for concurrent readers: each key is guarded by a
// sync.Once-style entry, so when experiments run in parallel a second
// requester for an in-flight artifact waits for the first computation
// (singleflight) instead of duplicating it. Values handed out are treated
// as immutable by all callers.
type Artifacts struct {
	s *Study

	// nz is the study-wide PSL normalizer: one apex-resolution cache over
	// the world's interned name table, shared by every normalization.
	nz *rank.Normalizer

	// norms memoizes PSL-normalized (list, day) snapshots. It is shared
	// with the Tranco/Trexa amalgam construction, so normalizations done
	// while building the study are already warm at evaluation time.
	norms *providers.NormMemo

	mu      sync.Mutex
	derived map[any]*rankingEntry

	// Cache instrumentation, one family per artifact kind. All nil-safe,
	// so a registry-less store records nothing.
	cmNorm      *obs.CacheMetrics
	cmCombo     *obs.CacheMetrics
	cmMonthly   *obs.CacheMetrics
	cmTelemetry *obs.CacheMetrics
	cfDomainsG  *obs.Gauge

	// cfMu guards the probed Cloudflare set. A plain mutex rather than a
	// sync.Once: a sweep aborted by context cancellation must not be
	// memoized as "the" answer, so only a completed sweep sets cfReady.
	cfMu      sync.Mutex
	cfReady   bool
	cfDomains map[string]struct{}
	cfIDs     *names.Set
}

type rankingEntry struct {
	once sync.Once
	done atomic.Bool
	r    *rank.Ranking
}

// Key types for the derived-ranking map. Each is a distinct comparable
// struct, so one map can hold every artifact family without collisions.
type (
	comboDayKey struct {
		day   int
		combo cfmetrics.Combo
	}
	monthlyKey struct {
		combo cfmetrics.Combo
	}
	telemetryKey struct {
		country  world.Country
		platform world.Platform
		metric   chrome.TelemetryMetric
	}
	// Edge keys carry the (vantage, backend) grid coordinates. The primary
	// edge (0, 0) aliases the un-keyed families above, so the default
	// configuration's cache metric counts are unchanged.
	edgeComboDayKey struct {
		vi, bi int
		day    int
		combo  cfmetrics.Combo
	}
	edgeMonthlyKey struct {
		vi, bi int
		combo  cfmetrics.Combo
	}
)

func newArtifacts(s *Study) *Artifacts {
	nz := rank.NewNormalizer(s.World.Interner(), s.PSL)
	a := &Artifacts{
		s:           s,
		nz:          nz,
		norms:       providers.NewInternedNormMemo(nz),
		derived:     make(map[any]*rankingEntry),
		cmNorm:      obs.NewCacheMetrics(s.obs, "artifacts.norm"),
		cmCombo:     obs.NewCacheMetrics(s.obs, "artifacts.combo"),
		cmMonthly:   obs.NewCacheMetrics(s.obs, "artifacts.monthly"),
		cmTelemetry: obs.NewCacheMetrics(s.obs, "artifacts.telemetry"),
		cfDomainsG:  s.obs.Gauge("artifacts.cf.domains"),
	}
	a.norms.SetMetrics(a.cmNorm)
	return a
}

// Normalizer returns the study-wide PSL normalizer; its per-interned-name
// apex cache is shared by every normalization in the study.
func (a *Artifacts) Normalizer() *rank.Normalizer { return a.nz }

// memoized returns the ranking for key, building it at most once even
// under concurrent requesters. cm (nil-safe) records the request against
// the key's artifact family.
func (a *Artifacts) memoized(key any, cm *obs.CacheMetrics, build func() *rank.Ranking) *rank.Ranking {
	a.mu.Lock()
	e, ok := a.derived[key]
	if !ok {
		e = &rankingEntry{}
		a.derived[key] = e
	}
	a.mu.Unlock()
	if !ok {
		cm.Miss()
	} else {
		cm.Hit()
		if !e.done.Load() {
			cm.Wait()
		}
	}
	e.once.Do(func() {
		start := time.Now()
		e.r = build()
		e.done.Store(true)
		cm.ObserveBuildSpan(start, time.Since(start))
	})
	return e.r
}

// invalidateMonthly drops the month-scoped derived artifacts — monthly
// Dowdall metric rankings and telemetry cell rankings — whose inputs grew
// when a day advanced. Day-scoped artifacts (per-day combo rankings,
// normalized day snapshots) are immutable once their day is published and
// survive. Called with the study lifecycle write-locked, so no reader is
// mid-flight; in batch runs the map is empty until evaluation begins and
// the sweep is a no-op.
func (a *Artifacts) invalidateMonthly() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for k := range a.derived {
		switch k.(type) {
		case monthlyKey, telemetryKey, edgeMonthlyKey:
			delete(a.derived, k)
		}
	}
}

// Normalized returns the list's PSL-normalized day-d snapshot (Section
// 4.2), computed at most once per (list, day) across the whole study.
func (a *Artifacts) Normalized(l providers.List, day int) *rank.Ranking {
	r, _ := a.norms.Normalized(l, day)
	return r
}

// NormalizedStats returns the normalized snapshot together with its
// deviation statistics (the Table 2 numbers).
func (a *Artifacts) NormalizedStats(l providers.List, day int) (*rank.Ranking, rank.NormalizeStats) {
	return a.norms.Normalized(l, day)
}

// ComboRanking returns the day's ranked domain list for one Cloudflare
// filter-aggregation combo, memoized per (day, combo).
func (a *Artifacts) ComboRanking(day int, c cfmetrics.Combo) *rank.Ranking {
	return a.memoized(comboDayKey{day, c}, a.cmCombo, func() *rank.Ranking {
		return a.s.Pipeline.DayRanking(day, c)
	})
}

// MetricRanking returns the day's ranking for a canonical Cloudflare
// metric, memoized per (day, metric).
func (a *Artifacts) MetricRanking(day int, m cfmetrics.Metric) *rank.Ranking {
	return a.ComboRanking(day, m.Combo())
}

// MonthlyMetric combines a metric's daily rankings into one month-level
// ranking by summing reciprocal ranks (the Dowdall rule, the same
// amalgamation Tranco uses), memoized per metric.
func (a *Artifacts) MonthlyMetric(m cfmetrics.Metric) *rank.Ranking {
	return a.memoized(monthlyKey{m.Combo()}, a.cmMonthly, func() *rank.Ranking {
		tab := a.s.World.Interner()
		scores := make(map[names.ID]float64)
		for d := 0; d < a.s.Pipeline.NumDays(); d++ {
			for i, id := range a.MetricRanking(d, m).IDs() {
				scores[id] += 1 / float64(i+1)
			}
		}
		scored := make([]rank.ScoredID, 0, len(scores))
		for id, v := range scores {
			scored = append(scored, rank.ScoredID{ID: id, Score: v})
		}
		return rank.FromScoredIDs(tab, scored, rank.TieHashed)
	})
}

// EdgeComboRanking returns the day's ranked domain list for one combo as
// observed by the (vi, bi) edge pipeline, memoized per (edge, day, combo).
// The primary edge (0, 0) shares the un-keyed ComboRanking memo.
func (a *Artifacts) EdgeComboRanking(vi, bi, day int, c cfmetrics.Combo) *rank.Ranking {
	if vi == 0 && bi == 0 {
		return a.ComboRanking(day, c)
	}
	return a.memoized(edgeComboDayKey{vi, bi, day, c}, a.cmCombo, func() *rank.Ranking {
		return a.s.Edges.At(vi, bi).DayRanking(day, c)
	})
}

// EdgeMetricRanking returns the day's ranking for a canonical metric as
// observed by the (vi, bi) edge pipeline.
func (a *Artifacts) EdgeMetricRanking(vi, bi, day int, m cfmetrics.Metric) *rank.Ranking {
	return a.EdgeComboRanking(vi, bi, day, m.Combo())
}

// EdgeMonthlyMetric is MonthlyMetric for one (vantage, backend) edge: the
// metric's daily rankings under that edge's visibility, Dowdall-combined
// into one month-level ranking. The primary edge shares the un-keyed memo.
func (a *Artifacts) EdgeMonthlyMetric(vi, bi int, m cfmetrics.Metric) *rank.Ranking {
	if vi == 0 && bi == 0 {
		return a.MonthlyMetric(m)
	}
	return a.memoized(edgeMonthlyKey{vi, bi, m.Combo()}, a.cmMonthly, func() *rank.Ranking {
		tab := a.s.World.Interner()
		scores := make(map[names.ID]float64)
		for d := 0; d < a.s.Edges.At(vi, bi).NumDays(); d++ {
			for i, id := range a.EdgeMetricRanking(vi, bi, d, m).IDs() {
				scores[id] += 1 / float64(i+1)
			}
		}
		scored := make([]rank.ScoredID, 0, len(scores))
		for id, v := range scores {
			scored = append(scored, rank.ScoredID{ID: id, Score: v})
		}
		return rank.FromScoredIDs(tab, scored, rank.TieHashed)
	})
}

// TelemetryRanking returns the month-aggregated Chrome telemetry ranking
// for a (country, platform, metric) cell, memoized per cell.
func (a *Artifacts) TelemetryRanking(c world.Country, p world.Platform, m chrome.TelemetryMetric) *rank.Ranking {
	return a.memoized(telemetryKey{c, p, m}, a.cmTelemetry, func() *rank.Ranking {
		return a.s.Telemetry.Ranking(c, p, m)
	})
}

// CFDomains returns the probed set of Cloudflare-served registrable
// domains (the cf-ray filter of Section 4.3), established exactly once per
// study: a multi-day probe sweep of every domain over the virtual network,
// keeping those that answer with a cf-ray header. Callers must not modify
// the returned set.
func (a *Artifacts) CFDomains() map[string]struct{} {
	mustProbe(a.ProbeCF(context.Background()))
	a.cfMu.Lock()
	defer a.cfMu.Unlock()
	return a.cfDomains
}

// CFDomainIDs is the interned form of CFDomains: the same probed set as a
// bitset over the world's name table, usable with rank.FilterIDs and
// stats.JaccardIDs. Built from the same single probe sweep.
func (a *Artifacts) CFDomainIDs() *names.Set {
	mustProbe(a.ProbeCF(context.Background()))
	a.cfMu.Lock()
	defer a.cfMu.Unlock()
	return a.cfIDs
}

func mustProbe(err error) {
	if err != nil {
		// Only a canceled context or a closed study can fail the sweep;
		// these callers probe under Background, and probing after Close is
		// a caller bug worth crashing on.
		panic(err)
	}
}

// ProbeCF establishes the Cloudflare set, probing at most once per study.
// Concurrent requesters wait for the in-flight sweep; a sweep aborted by
// ctx is not memoized, so the next caller retries. Experiments that honor
// cancellation call this (with their context) before touching CFDomains
// or CFDomainIDs.
func (a *Artifacts) ProbeCF(ctx context.Context) error {
	a.cfMu.Lock()
	defer a.cfMu.Unlock()
	if a.cfReady {
		return nil
	}
	hosts := make([]string, a.s.World.NumSites())
	for i := range hosts {
		hosts[i] = a.s.World.Site(int32(i)).Domain
	}
	cf, err := a.s.probeSweep(ctx, hosts)
	if err != nil {
		return err
	}
	ids := make([]names.ID, 0, len(cf))
	for name := range cf {
		// Every probed host is a site domain, interned at world build.
		if id, ok := a.s.World.Interner().Find(name); ok {
			ids = append(ids, id)
		}
	}
	a.cfDomains = cf
	a.cfIDs = names.NewSet(ids)
	a.cfReady = true
	a.cfDomainsG.Set(int64(len(cf)))
	return nil
}
