package core

import (
	"context"
	"errors"
	"testing"

	"toplists/internal/traffic"
)

func lifecycleCfg(seed uint64) Config {
	return Config{Seed: seed, NumSites: 300, NumClients: 60, Days: 3, Workers: 2}
}

// cancelOnDay cancels a context when the engine begins a given day, which
// aborts that day mid-flight: the cancellation is observed inside the
// shard loop, after the pre-start context check.
type cancelOnDay struct {
	traffic.BaseSink
	day    int
	cancel context.CancelFunc
}

func (c cancelOnDay) BeginDay(day int, weekend bool) {
	if day == c.day {
		c.cancel()
	}
}

// abortedStudy returns a study latched by a mid-day cancellation of day 1
// (day 0 completed cleanly).
func abortedStudy(t *testing.T) *Study {
	t.Helper()
	s := NewStudy(lifecycleCfg(17))
	ctx, cancel := context.WithCancel(context.Background())
	s.Engine.AddSink(cancelOnDay{day: 1, cancel: cancel})
	if err := s.AdvanceDay(ctx); err != nil {
		t.Fatalf("day 0 advancement failed: %v", err)
	}
	if err := s.AdvanceDay(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-day cancel returned %v, want context.Canceled", err)
	}
	return s
}

// TestStudyAbortSticky is the cancellation-trap satellite: a mid-day
// failure leaves the sinks torn, so every later lifecycle call must
// return the sticky ErrStudyAborted instead of silently re-running the
// engine over half-advanced state. The first caller still sees the
// original error (asserted in abortedStudy); only retries get the wrapper.
func TestStudyAbortSticky(t *testing.T) {
	s := abortedStudy(t)
	defer s.Close()

	if err := s.Aborted(); !errors.Is(err, ErrStudyAborted) {
		t.Fatalf("Aborted() = %v, want ErrStudyAborted", err)
	}
	if err := s.AdvanceDay(context.Background()); !errors.Is(err, ErrStudyAborted) {
		t.Fatalf("AdvanceDay after abort: %v, want ErrStudyAborted", err)
	}
	if err := s.RunContext(context.Background()); !errors.Is(err, ErrStudyAborted) {
		t.Fatalf("RunContext after abort: %v, want ErrStudyAborted", err)
	}
	if got := s.Day(); got != 1 {
		t.Fatalf("aborted study advanced to day %d, want stuck at 1", got)
	}
}

// TestPreStartCancelDoesNotLatch: a cancellation observed before a day
// begins leaves the study consistent at its boundary, so clearing the
// cancellation lets the run continue — only torn days latch.
func TestPreStartCancelDoesNotLatch(t *testing.T) {
	s := NewStudy(lifecycleCfg(29))
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.AdvanceDay(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled AdvanceDay: %v, want context.Canceled", err)
	}
	if err := s.Aborted(); err != nil {
		t.Fatalf("pre-start cancel latched the study: %v", err)
	}
	if err := s.RunContext(context.Background()); err != nil {
		t.Fatalf("run after cleared cancellation: %v", err)
	}
	if got := s.Day(); got != s.Cfg.Days {
		t.Fatalf("study at day %d after full run, want %d", got, s.Cfg.Days)
	}
}

// TestAdvanceDayLifecycle: days advance one at a time, the last
// advancement finalizes (CrUX published, Lists servable), and advancing a
// finished study reports traffic.ErrRunComplete.
func TestAdvanceDayLifecycle(t *testing.T) {
	s := NewStudy(lifecycleCfg(41))
	defer s.Close()
	for d := 0; d < s.Cfg.Days; d++ {
		if got := s.Day(); got != d {
			t.Fatalf("Day() = %d before advancing day %d", got, d)
		}
		if err := s.AdvanceDay(context.Background()); err != nil {
			t.Fatalf("AdvanceDay(%d): %v", d, err)
		}
	}
	if err := s.AdvanceDay(context.Background()); !errors.Is(err, traffic.ErrRunComplete) {
		t.Fatalf("AdvanceDay past end: %v, want ErrRunComplete", err)
	}
	if s.Crux == nil {
		t.Fatal("final advancement did not derive CrUX")
	}
	if got := len(s.Lists()); got != 7 {
		t.Fatalf("finalized study serves %d lists, want 7", got)
	}
	// RunContext on the finished study is a no-op, not a re-run.
	if err := s.RunContext(context.Background()); err != nil {
		t.Fatalf("RunContext on finished study: %v", err)
	}
}

// TestRankingFor: the day-scoped reader serves exactly the advanced days
// and rejects everything else by name or day.
func TestRankingFor(t *testing.T) {
	s := NewStudy(lifecycleCfg(53))
	defer s.Close()
	if _, err := s.RankingFor("Alexa", 0); err == nil {
		t.Fatal("RankingFor served day 0 before any advancement")
	}
	if err := s.AdvanceDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.ListNames() {
		r, err := s.RankingFor(name, 0)
		if err != nil {
			t.Fatalf("RankingFor(%s, 0): %v", name, err)
		}
		if r == nil {
			t.Fatalf("RankingFor(%s, 0): nil ranking", name)
		}
	}
	if _, err := s.RankingFor("Alexa", 1); err == nil {
		t.Fatal("RankingFor served the in-progress day")
	}
	if _, err := s.RankingFor("Alexa", -1); err == nil {
		t.Fatal("RankingFor served day -1")
	}
	if _, err := s.RankingFor("NoSuchList", 0); err == nil {
		t.Fatal("RankingFor served an unknown list")
	}
}

// TestCloseIdempotent is the Close-safety satellite: Close twice is fine,
// and the virtual network cannot be silently restarted afterwards — the
// probe path reports ErrStudyClosed instead.
func TestCloseIdempotent(t *testing.T) {
	s := NewStudy(lifecycleCfg(67))
	s.Run()
	if _, err := s.network(); err != nil {
		t.Fatalf("network() before Close: %v", err)
	}
	s.Close()
	s.Close() // must not panic or re-open
	if _, err := s.network(); !errors.Is(err, ErrStudyClosed) {
		t.Fatalf("network() after Close: %v, want ErrStudyClosed", err)
	}
	if _, err := s.newProber(); !errors.Is(err, ErrStudyClosed) {
		t.Fatalf("newProber() after Close: %v, want ErrStudyClosed", err)
	}
}
