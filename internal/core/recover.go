package core

import (
	"errors"
	"fmt"
	"os"

	"toplists/internal/obs"
	"toplists/internal/snapshot"
)

// ErrNoCheckpoint is returned by Recover when the checkpoint directory
// holds no generation at all — the caller should start a fresh study.
// It is distinct from the every-candidate-rejected case, which is an
// error: state exists but none of it is usable, and silently starting
// over would discard a month of aggregation.
var ErrNoCheckpoint = errors.New("core: no checkpoint generations to recover from")

// Recovered reports what the recovery supervisor did.
type Recovered struct {
	// Study is the resumed study.
	Study *Study
	// Gen is the generation it was resumed from.
	Gen snapshot.Gen
	// Scanned counts the candidate generations examined (newest-first);
	// Rejected counts how many were skipped as corrupt, truncated, or
	// otherwise unrestorable before one succeeded.
	Scanned, Rejected int
}

// Recover is the startup supervisor for a crash-interrupted resident
// study: it scans dir's generations newest-first and resumes the newest
// one that is intact. A corrupt, truncated, or version-skewed generation
// — the debris a SIGKILL or power loss mid-write can leave — is logged
// and skipped, never fatal, because an older intact generation costs only
// re-simulating a few deterministic days. Each candidate is first
// verified frame-by-frame (cheap CRC walk, no state touched), so a torn
// file cannot even partially restore; a candidate that passes Verify but
// still fails Resume (cross-validation, payload decode) is rejected the
// same way.
//
// Counters recorded on opt.Obs — recovery.candidates, recovery.rejected,
// and the recovery.resumed_gen gauge — are registered Volatile: how many
// times a deployment crashed is operational history, not a function of
// the seed, so they stay out of the deterministic and resume-stable
// report subsets.
//
// With no generations present, Recover returns ErrNoCheckpoint and the
// caller starts fresh. With generations present but all rejected, it
// returns an error wrapping the newest generation's failure: state
// existed and none of it was usable, which needs an operator, not a
// silent restart from day zero.
func Recover(dir *snapshot.Dir, opt ResumeOptions, log *obs.Logger) (Recovered, error) {
	gens, err := dir.Generations()
	if err != nil {
		return Recovered{}, err
	}
	if len(gens) == 0 {
		return Recovered{}, ErrNoCheckpoint
	}

	candidates := opt.Obs.Counter("recovery.candidates", obs.Volatile)
	rejected := opt.Obs.Counter("recovery.rejected", obs.Volatile)

	rec := Recovered{}
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		rec.Scanned++
		candidates.Inc()
		s, err := resumeGeneration(g, opt)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("generation %s: %w", g.Name(), err)
			}
			rec.Rejected++
			rejected.Inc()
			log.Errorf("recovery: rejecting generation %s: %v", g.Name(), err)
			continue
		}
		rec.Study, rec.Gen = s, g
		opt.Obs.Gauge("recovery.resumed_gen", obs.Volatile).Set(int64(g.Seq))
		if rec.Rejected > 0 {
			log.Infof("recovery: fell back %d generation(s) to %s (day %d)", rec.Rejected, g.Name(), s.Day())
		}
		return rec, nil
	}
	return rec, fmt.Errorf("core: all %d checkpoint generations rejected: %w", rec.Scanned, firstErr)
}

// resumeGeneration verifies one generation file's container integrity and
// resumes it. Verification runs first so a torn candidate is rejected
// before Resume can touch the caller's obs registry or build a world.
func resumeGeneration(g snapshot.Gen, opt ResumeOptions) (*Study, error) {
	f, err := os.Open(g.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := snapshot.Verify(f); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return Resume(f, opt)
}
