package core

import (
	"toplists/internal/names"
	"toplists/internal/rank"
)

// AgreedBuckets returns the domains that two Cloudflare metric rankings
// place into the same rank-magnitude bucket, with that bucket — the
// consensus baseline of Section 5.3 ("we restrict our analysis to the set
// of domains that two metrics that bookend pageloads ... both place into a
// given bucket").
func AgreedBuckets(m1, m3 *rank.Ranking, bk rank.Bucketer) map[string]rank.Bucket {
	out := make(map[string]rank.Bucket)
	for i := 1; i <= m1.Len(); i++ {
		name := m1.At(i)
		b1 := bk.BucketOf(i)
		if b1 == rank.BucketBeyond {
			continue
		}
		r3, ok := m3.RankOf(name)
		if !ok {
			continue
		}
		if bk.BucketOf(r3) == b1 {
			out[name] = b1
		}
	}
	return out
}

// AgreedBucketsIDs is the interned form of AgreedBuckets, keyed by ID on
// the rankings' shared name table. Both rankings must be ranked over the
// same table.
func AgreedBucketsIDs(m1, m3 *rank.Ranking, bk rank.Bucketer) map[names.ID]rank.Bucket {
	if m1.Table() != m3.Table() {
		panic("core: AgreedBucketsIDs rankings use different name tables")
	}
	out := make(map[names.ID]rank.Bucket)
	for i := 1; i <= m1.Len(); i++ {
		b1 := bk.BucketOf(i)
		if b1 == rank.BucketBeyond {
			continue
		}
		id := m1.IDAt(i)
		r3, ok := m3.RankOfID(id)
		if !ok {
			continue
		}
		if bk.BucketOf(r3) == b1 {
			out[id] = b1
		}
	}
	return out
}

// Movement is the rank-magnitude flow between the Cloudflare consensus
// buckets and a top list's buckets (the Sankey of Figure 5).
type Movement struct {
	// Matrix[cf][list] counts domains the Cloudflare consensus places in
	// bucket cf and the list places in bucket list.
	Matrix [rank.NumBuckets][rank.NumBuckets]int
	// Bucketer carries the cutoffs used.
	Bucketer rank.Bucketer
}

// ComputeMovement builds the flow between the agreed Cloudflare buckets and
// a (normalized) top list. Only domains present in the agreed set are
// considered, matching "we only consider movement of domains that are
// Cloudflare operated".
func ComputeMovement(agreed map[string]rank.Bucket, list *rank.Ranking, bk rank.Bucketer) Movement {
	m := Movement{Bucketer: bk}
	for name, cfB := range agreed {
		listB := rank.BucketBeyond
		if r, ok := list.RankOf(name); ok {
			listB = bk.BucketOf(r)
		}
		m.Matrix[cfB][listB]++
	}
	return m
}

// ComputeMovementIDs is the interned form of ComputeMovement. The list
// must be ranked over the table the agreed set was built on.
func ComputeMovementIDs(agreed map[names.ID]rank.Bucket, list *rank.Ranking, bk rank.Bucketer) Movement {
	m := Movement{Bucketer: bk}
	for id, cfB := range agreed {
		listB := rank.BucketBeyond
		if r, ok := list.RankOfID(id); ok {
			listB = bk.BucketOf(r)
		}
		m.Matrix[cfB][listB]++
	}
	return m
}

// OverrankStats quantifies the Section 5.3 headline numbers for the list's
// "top magnitude" prefix (topIdx indexes Bucketer.Magnitudes; 1 means the
// scaled "top 10K"): among agreed domains the list ranks within that
// prefix, the fraction Cloudflare places in a strictly less popular bucket,
// and the fraction two or more magnitudes less popular.
type OverrankStats struct {
	// N is the number of agreed Cloudflare domains in the list prefix.
	N int
	// OverrankedPct is the percentage with a less popular Cloudflare
	// bucket than the list bucket implies.
	OverrankedPct float64
	// Overranked2Pct is the percentage overranked by >= 2 magnitudes.
	Overranked2Pct float64
}

// ComputeOverrank computes OverrankStats for a list prefix.
func ComputeOverrank(agreed map[string]rank.Bucket, list *rank.Ranking, bk rank.Bucketer, topIdx int) OverrankStats {
	limit := bk.Magnitudes[topIdx]
	var st OverrankStats
	var over, over2 int
	top := list.Top(limit)
	for i := 1; i <= top.Len(); i++ {
		name := top.At(i)
		cfB, ok := agreed[name]
		if !ok {
			continue
		}
		st.N++
		listB := bk.BucketOf(i)
		if cfB > listB {
			over++
			if int(cfB)-int(listB) >= 2 {
				over2++
			}
		}
	}
	if st.N > 0 {
		st.OverrankedPct = 100 * float64(over) / float64(st.N)
		st.Overranked2Pct = 100 * float64(over2) / float64(st.N)
	}
	return st
}

// ComputeOverrankIDs is the interned form of ComputeOverrank. The list
// must be ranked over the table the agreed set was built on.
func ComputeOverrankIDs(agreed map[names.ID]rank.Bucket, list *rank.Ranking, bk rank.Bucketer, topIdx int) OverrankStats {
	limit := bk.Magnitudes[topIdx]
	var st OverrankStats
	var over, over2 int
	top := list.Top(limit)
	for i := 1; i <= top.Len(); i++ {
		cfB, ok := agreed[top.IDAt(i)]
		if !ok {
			continue
		}
		st.N++
		listB := bk.BucketOf(i)
		if cfB > listB {
			over++
			if int(cfB)-int(listB) >= 2 {
				over2++
			}
		}
	}
	if st.N > 0 {
		st.OverrankedPct = 100 * float64(over) / float64(st.N)
		st.Overranked2Pct = 100 * float64(over2) / float64(st.N)
	}
	return st
}
