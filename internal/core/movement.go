package core

import (
	"toplists/internal/rank"
)

// AgreedBuckets returns the domains that two Cloudflare metric rankings
// place into the same rank-magnitude bucket, with that bucket — the
// consensus baseline of Section 5.3 ("we restrict our analysis to the set
// of domains that two metrics that bookend pageloads ... both place into a
// given bucket").
func AgreedBuckets(m1, m3 *rank.Ranking, bk rank.Bucketer) map[string]rank.Bucket {
	out := make(map[string]rank.Bucket)
	for i := 1; i <= m1.Len(); i++ {
		name := m1.At(i)
		b1 := bk.BucketOf(i)
		if b1 == rank.BucketBeyond {
			continue
		}
		r3, ok := m3.RankOf(name)
		if !ok {
			continue
		}
		if bk.BucketOf(r3) == b1 {
			out[name] = b1
		}
	}
	return out
}

// Movement is the rank-magnitude flow between the Cloudflare consensus
// buckets and a top list's buckets (the Sankey of Figure 5).
type Movement struct {
	// Matrix[cf][list] counts domains the Cloudflare consensus places in
	// bucket cf and the list places in bucket list.
	Matrix [rank.NumBuckets][rank.NumBuckets]int
	// Bucketer carries the cutoffs used.
	Bucketer rank.Bucketer
}

// ComputeMovement builds the flow between the agreed Cloudflare buckets and
// a (normalized) top list. Only domains present in the agreed set are
// considered, matching "we only consider movement of domains that are
// Cloudflare operated".
func ComputeMovement(agreed map[string]rank.Bucket, list *rank.Ranking, bk rank.Bucketer) Movement {
	m := Movement{Bucketer: bk}
	for name, cfB := range agreed {
		listB := rank.BucketBeyond
		if r, ok := list.RankOf(name); ok {
			listB = bk.BucketOf(r)
		}
		m.Matrix[cfB][listB]++
	}
	return m
}

// OverrankStats quantifies the Section 5.3 headline numbers for the list's
// "top magnitude" prefix (topIdx indexes Bucketer.Magnitudes; 1 means the
// scaled "top 10K"): among agreed domains the list ranks within that
// prefix, the fraction Cloudflare places in a strictly less popular bucket,
// and the fraction two or more magnitudes less popular.
type OverrankStats struct {
	// N is the number of agreed Cloudflare domains in the list prefix.
	N int
	// OverrankedPct is the percentage with a less popular Cloudflare
	// bucket than the list bucket implies.
	OverrankedPct float64
	// Overranked2Pct is the percentage overranked by >= 2 magnitudes.
	Overranked2Pct float64
}

// ComputeOverrank computes OverrankStats for a list prefix.
func ComputeOverrank(agreed map[string]rank.Bucket, list *rank.Ranking, bk rank.Bucketer, topIdx int) OverrankStats {
	limit := bk.Magnitudes[topIdx]
	var st OverrankStats
	var over, over2 int
	top := list.Top(limit)
	for i := 1; i <= top.Len(); i++ {
		name := top.At(i)
		cfB, ok := agreed[name]
		if !ok {
			continue
		}
		st.N++
		listB := bk.BucketOf(i)
		if cfB > listB {
			over++
			if int(cfB)-int(listB) >= 2 {
				over2++
			}
		}
	}
	if st.N > 0 {
		st.OverrankedPct = 100 * float64(over) / float64(st.N)
		st.Overranked2Pct = 100 * float64(over2) / float64(st.N)
	}
	return st
}
