package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"toplists/internal/obs"
	"toplists/internal/snapshot"
)

// TestResumePartialFailureReleasesEverything drives Resume down every
// per-component error branch — frame by frame — and asserts the
// close-and-discard contract each time: no study escapes, no goroutine
// (listener) leaks, and the caller's obs registry stays fully usable by a
// later successful Resume. The damage is injected with the snapshot
// package's Scan/FixCRC helpers, so each case targets exactly one frame:
// a checksum failure (bit flip), a truncation at the frame boundary, and
// — for the engine frame — a CRC-valid payload carrying an out-of-range
// day cursor, which exercises the semantic rejection that fires after the
// obs counters were already delta-restored onto the caller's registry.
func TestResumePartialFailureReleasesEverything(t *testing.T) {
	s := NewStudy(checkpointCfg(61, 3, false))
	if err := s.AdvanceDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	good := snap(t, s)
	s.Close()

	frames, err := snapshot.Scan(good)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(frames) != 13 {
		t.Fatalf("checkpoint has %d frames, expected 13 (update this test for new components)", len(frames))
	}

	reg := obs.NewRegistry()
	baseline := runtime.NumGoroutine()

	mustFail := func(t *testing.T, b []byte, what string) {
		t.Helper()
		r, err := Resume(bytes.NewReader(b), ResumeOptions{Workers: 1, Obs: reg})
		if err == nil {
			t.Fatalf("%s: Resume accepted damaged checkpoint", what)
		}
		if r != nil {
			t.Fatalf("%s: Resume returned a study alongside error %v", what, err)
		}
	}

	for _, f := range frames {
		t.Run(f.Name, func(t *testing.T) {
			// Checksum branch: one payload bit flipped.
			if f.PayloadLen > 0 {
				b := bytes.Clone(good)
				b[f.PayloadOff+f.PayloadLen/2] ^= 0x08
				mustFail(t, b, "bit flip in "+f.Name)
			}
			// Truncation branch: the file ends where this frame starts.
			mustFail(t, good[:f.Off], "truncation before "+f.Name)
			// And mid-frame, in the payload.
			mustFail(t, good[:f.PayloadOff+f.PayloadLen/2], "truncation inside "+f.Name)
		})
	}

	t.Run("engine-cursor-out-of-range", func(t *testing.T) {
		// A CRC-valid engine frame carrying day 50 (same varint width as
		// day 1, far past a 3-day study): every earlier frame (names, obs
		// — already delta-restored) decodes fine, then the semantic check
		// rejects. The registry must survive that.
		var engine *snapshot.Frame
		for i := range frames {
			if frames[i].Name == "engine" {
				engine = &frames[i]
			}
		}
		if engine == nil {
			t.Fatal("no engine frame")
		}
		b := bytes.Clone(good)
		// Payload layout: uvarint version, varint day. Re-encode day=50.
		var e snapshot.Encoder
		e.Uvarint(1) // engineSnapVersion
		e.Int(50)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != engine.PayloadLen {
			t.Fatalf("re-encoded engine payload %d bytes, frame holds %d", buf.Len(), engine.PayloadLen)
		}
		copy(b[engine.PayloadOff:], buf.Bytes())
		snapshot.FixCRC(b, *engine)
		mustFail(t, b, "engine cursor out of range")
	})

	t.Run("mismatched-day-counts", func(t *testing.T) {
		// Engine cursor 0 with day-1 provider state: the cross-validation
		// branch at the very end of restoreInto, after every component
		// restored cleanly. This is the deepest discard path there is.
		var engine *snapshot.Frame
		for i := range frames {
			if frames[i].Name == "engine" {
				engine = &frames[i]
			}
		}
		b := bytes.Clone(good)
		var e snapshot.Encoder
		e.Uvarint(1)
		e.Int(0)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		pad := engine.PayloadLen - buf.Len()
		if pad < 0 {
			t.Fatalf("re-encoded engine payload %d bytes > frame %d", buf.Len(), engine.PayloadLen)
		}
		copy(b[engine.PayloadOff:], buf.Bytes())
		if pad > 0 {
			// A shorter varint leaves stale tail bytes the decoder's
			// Finish would reject before cross-validation; skip then.
			t.Skip("day-0 encoding narrower than day-1; branch covered when widths match")
		}
		snapshot.FixCRC(b, *engine)
		mustFail(t, b, "cross-validation day mismatch")
	})

	// After every failure branch, the registry is not wedged: a clean
	// Resume against it succeeds, its study serves, and the names.interned
	// gauge reads the new study's interner (GaugeFunc re-registration
	// replaced the closures the discarded attempts left behind).
	r, err := Resume(bytes.NewReader(good), ResumeOptions{Workers: 1, Obs: reg})
	if err != nil {
		t.Fatalf("clean Resume after failures: %v", err)
	}
	if _, err := r.RankingFor("Alexa", 0); err != nil {
		t.Fatalf("recovered study does not serve: %v", err)
	}
	rep := reg.Snapshot()
	if got, want := rep.Gauges["names.interned"], int64(r.Names().Len()); got != want {
		t.Fatalf("names.interned gauge = %d, live interner = %d (stale closure?)", got, want)
	}
	r.Close()

	// No error branch may leak a goroutine: the virtual network is never
	// started during restore, and a failed Resume closes the partial study
	// — so the count settles back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
