package core

import (
	"context"
	"time"

	"toplists/internal/httpsim"
)

// probeSweepDays is how many virtual days a probe sweep may spend on a
// host before giving up: hosts left Unknown after a day's retries are
// re-probed on the next day with fresh fault-plan coordinates and a
// closed circuit breaker, mirroring how the paper's crawls re-visit
// unreachable entries on later days rather than dropping them outright.
const probeSweepDays = 3

// newProber builds the study's hardened prober. The per-attempt bound is a
// pure safety net, set far above any plausible in-memory latency: injected
// stalls self-resolve on their own fixed schedule, so nothing should ever
// hit this timeout. That matters for determinism — a spurious timeout on a
// loaded machine would consume an attempt number and shift every later
// fault decision.
func (s *Study) newProber() (*httpsim.Prober, error) {
	n, err := s.network()
	if err != nil {
		return nil, err
	}
	p := httpsim.NewProber(n.Client())
	p.Concurrency = 64
	p.AttemptTimeout = 10 * time.Second
	p.BackoffBase = 200 * time.Microsecond
	p.Metrics = httpsim.NewProbeMetrics(s.obs)
	return p, nil
}

// probeSweep probes hosts with day-by-day retries and returns the set of
// Cloudflare-served hosts. Each sweep day re-probes only the hosts still
// Unknown, advancing the prober's virtual day (fresh fault rolls) and
// closing its breakers (the half-open transition). Hosts that stay
// Unknown after the final day are deterministically treated as not
// Cloudflare-served — the same conservative fallback the paper's
// filtering applies to unreachable entries.
func (s *Study) probeSweep(ctx context.Context, hosts []string) (map[string]struct{}, error) {
	defer s.obs.Span("phase.probe_sweep").End()
	prober, err := s.newProber()
	if err != nil {
		return nil, err
	}
	cf := make(map[string]struct{})
	pending := hosts
	tracer := s.obs.Tracer()
	for day := 0; day < probeSweepDays && len(pending) > 0; day++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prober.Day = day
		prober.ResetBreakers()
		roundStart := time.Now()
		var unknown []string
		for _, r := range prober.ProbeAll(ctx, pending) {
			switch {
			case r.Outcome == httpsim.OutcomeUnknown:
				unknown = append(unknown, r.Host)
			case r.Cloudflare:
				cf[r.Host] = struct{}{}
			}
		}
		tracer.Span("probe.round", "probe", int64(day), roundStart, time.Since(roundStart))
		pending = unknown
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cf, nil
}

// ProbeHosts probes arbitrary hostnames (FQDN or origin-host form) and
// reports which are Cloudflare-served; used for the per-entry coverage of
// Table 1. Concurrent callers each run their own probe sweep.
func (s *Study) ProbeHosts(hosts []string) map[string]struct{} {
	cf, err := s.ProbeHostsContext(context.Background(), hosts)
	if err != nil {
		// Background is never canceled; a sweep error is unreachable here.
		panic(err)
	}
	return cf
}

// ProbeHostsContext is ProbeHosts honoring ctx: cancellation mid-sweep
// returns the context's error rather than a partial (misclassified) set.
func (s *Study) ProbeHostsContext(ctx context.Context, hosts []string) (map[string]struct{}, error) {
	return s.probeSweep(ctx, hosts)
}
