package core

import (
	"context"
	"errors"
	"testing"
)

// TestProbeCFCanceledNotMemoized: a CF probe aborted by its context must
// not be memoized as the study's answer — the next caller gets a fresh,
// complete sweep.
func TestProbeCFCanceledNotMemoized(t *testing.T) {
	s := NewStudy(Config{Seed: 5, NumSites: 400, NumClients: 80, Days: 2})
	s.Run()
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Artifacts().ProbeCF(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ProbeCF under canceled context: %v, want context.Canceled", err)
	}

	if err := s.Artifacts().ProbeCF(context.Background()); err != nil {
		t.Fatalf("retry after canceled sweep: %v", err)
	}
	probed := s.CFDomains()
	want := s.World.CloudflareSet()
	if len(probed) != len(want) {
		t.Fatalf("probed %d CF domains after canceled first sweep, want %d", len(probed), len(want))
	}
	for d := range want {
		if _, ok := probed[d]; !ok {
			t.Errorf("missing %s", d)
		}
	}
}

// TestProbeHostsContextCanceled: the sweep surfaces cancellation as an
// error, never a partial set.
func TestProbeHostsContextCanceled(t *testing.T) {
	s := NewStudy(Config{Seed: 5, NumSites: 400, NumClients: 80, Days: 2})
	s.Run()
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set, err := s.ProbeHostsContext(ctx, []string{s.World.Site(0).Domain})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if set != nil {
		t.Errorf("canceled sweep returned a set of %d hosts", len(set))
	}
}

// TestFaultPlanDerivation: the fault seed is stable per study seed,
// distinct across seeds, and overridable.
func TestFaultPlanDerivation(t *testing.T) {
	a := NewStudy(Config{Seed: 1, NumSites: 400, FaultRate: 0.1})
	b := NewStudy(Config{Seed: 1, NumSites: 400, FaultRate: 0.1})
	c := NewStudy(Config{Seed: 2, NumSites: 400, FaultRate: 0.1})
	if a.FaultSeed() != b.FaultSeed() {
		t.Error("same study seed derived different fault seeds")
	}
	if a.FaultSeed() == c.FaultSeed() {
		t.Error("different study seeds derived the same fault seed")
	}
	d := NewStudy(Config{Seed: 1, NumSites: 400, FaultRate: 0.1, FaultSeed: 99})
	if d.FaultSeed() != 99 {
		t.Errorf("FaultSeed override ignored: %d", d.FaultSeed())
	}
	if NewStudy(Config{Seed: 1, NumSites: 400}).FaultPlan() != nil {
		t.Error("rate-0 study has a fault plan")
	}
}
