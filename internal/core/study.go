// Package core assembles the end-to-end study and implements the paper's
// evaluation methodology: the Cloudflare-filtered list comparisons of
// Section 4.3, the rank-magnitude movement analysis of Section 5.3, and the
// bias analyses of Section 6.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"toplists/internal/cfmetrics"
	"toplists/internal/chrome"
	"toplists/internal/dnssim"
	"toplists/internal/faults"
	"toplists/internal/httpsim"
	"toplists/internal/linkgraph"
	"toplists/internal/names"
	"toplists/internal/obs"
	"toplists/internal/providers"
	"toplists/internal/psl"
	"toplists/internal/rank"
	"toplists/internal/simrand"
	"toplists/internal/sketch"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// Config parameterizes a full study run.
type Config struct {
	// Seed drives the whole study.
	Seed uint64
	// NumSites is the universe size (default 10000).
	NumSites int
	// NumClients is the browsing population (default 3000).
	NumClients int
	// Days is the measurement window (default 28, February 2022).
	Days int
	// CruxMinVisitors is the CrUX privacy threshold (default 2).
	CruxMinVisitors int
	// TrackAllCombos enables all 21 filter-aggregation combinations in the
	// Cloudflare pipeline (needed for Figure 8); the seven canonical
	// metrics are always tracked.
	TrackAllCombos bool
	// EvalMagIdx selects the rank magnitude (index into the bucketer's
	// cutoffs) at which set-intersection (Jaccard) comparisons run. The
	// paper compares million-entry lists drawn from a quarter-billion-
	// domain web; in a compressed simulated universe the same head-vs-tail
	// tension lives at a smaller fraction of the universe, so the default
	// is index 2 (the scaled "100K"). See DESIGN.md, "Scale".
	EvalMagIdx int
	// Workers is the number of goroutines simulating clients within each
	// day, and the evaluation pool width for experiments.RunConcurrent
	// (0 = one per CPU, 1 = serial). Output is identical for every
	// setting; see traffic.Config.Workers.
	Workers int
	// SpearmanMagIdx selects the magnitude for rank-correlation
	// comparisons (default 3, the full scaled list). The paper's single
	// top-1M cut is simultaneously a tiny fraction of the web (set
	// scarcity) and the full depth of every list (rank-noise exposure); a
	// compressed universe needs two cuts to express both regimes.
	SpearmanMagIdx int
	// FaultRate enables deterministic fault injection across the virtual
	// network: the fraction (0..1) of probe attempts that hit an injected
	// failure — refused/reset/truncated/stalled dials, 5xx edge responses.
	// 0 (the default) leaves the network byte-identical to a study built
	// before fault injection existed.
	FaultRate float64
	// FaultSeed keys the fault plan independently of the study seed
	// (0 = derive from Seed), so fault-sensitivity sweeps can vary the
	// weather while holding the world fixed.
	FaultSeed uint64
	// Sketch switches the aggregation layer to bounded mergeable summaries
	// (see internal/sketch): each logical traffic shard accumulates
	// fixed-size sketches that merge at the day barrier, instead of the
	// engine replaying per-event buffers into exact per-site state. The
	// zero value (Enabled false) is the exact oracle, byte-identical to a
	// study built before the sketch layer existed.
	Sketch sketch.Config
	// Obs, when set, is the telemetry registry the study instruments
	// itself against; nil makes NewStudy create a private one (retrieve it
	// with Study.Metrics). Instrumentation never changes study output:
	// every count-valued metric is a pure function of (Seed, Config), and
	// timing-valued metrics are excluded from the report's deterministic
	// subset. See internal/obs.
	Obs *obs.Registry
	// Ablate disables selected mechanisms across the world and the
	// traffic engine for ablation studies (see experiments.RunAblations).
	Ablate Ablations
	// Sybils adds attacker-controlled clients (see experiments.RunAttack).
	Sybils []traffic.SybilSpec
	// Vantages is the number of measurement vantage points (default 1,
	// the transparent global vantage — the original single-edge model).
	// Additional vantages are placed by world.DefaultVantages and observe
	// the same traffic through per-country reachability filters.
	Vantages int
	// Backends is the number of deployed CDN backends (default 1, the
	// Cloudflare-style edge only). Additional backends get their own
	// adoption skew and header signatures; see world.Backend.
	Backends int
}

// Ablations aggregates the mechanism switches of the world and engine.
type Ablations struct {
	NoPrivateBrowsing bool
	NoOpenness        bool
	NoWeightBoost     bool
	NoPanelDistortion bool
	NoWorkSkew        bool
	NoRevisits        bool
}

func (c Config) withDefaults() Config {
	if c.NumSites == 0 {
		c.NumSites = 10_000
	}
	if c.NumClients == 0 {
		c.NumClients = 3_000
	}
	if c.Days == 0 {
		c.Days = 28
	}
	if c.CruxMinVisitors == 0 {
		c.CruxMinVisitors = 2
	}
	if c.EvalMagIdx == 0 {
		c.EvalMagIdx = 2
	}
	if c.SpearmanMagIdx == 0 {
		c.SpearmanMagIdx = 3
	}
	if c.Sketch.Enabled {
		c.Sketch = c.Sketch.WithDefaults()
	}
	if c.Vantages <= 0 {
		c.Vantages = 1
	}
	if c.Backends <= 0 {
		c.Backends = 1
	}
	return c
}

// Study is one fully-wired simulation run plus the observers needed for
// every experiment in the paper.
type Study struct {
	Cfg Config

	World     *world.World
	Engine    *traffic.Engine
	Pipeline  *cfmetrics.Pipeline
	Edges     *cfmetrics.PipelineSet
	DNS       *dnssim.Pool
	Telemetry *chrome.Telemetry
	Graph     *linkgraph.Graph
	PSL       *psl.List
	Bucketer  rank.Bucketer

	Alexa    *providers.Alexa
	Umbrella *providers.Umbrella
	Majestic *providers.Majestic
	Secrank  *providers.Secrank
	Tranco   *providers.Tranco
	Trexa    *providers.Trexa
	Crux     *providers.Crux

	// Network is the virtual HTTP layer used by the probe-based filtering.
	// It is started lazily under netMu; use network() to read it.
	Network *httpsim.Network
	netMu   sync.Mutex
	closed  bool

	// artifacts is the memoized derived-data layer shared by every
	// experiment; see Artifacts.
	artifacts *Artifacts

	// obs is the study's telemetry registry (never nil; see Config.Obs).
	obs *obs.Registry

	// lifeMu is the lifecycle lock: AdvanceDay (and batch RunContext)
	// write-hold it across a whole day — simulation, amalgam updates,
	// artifact invalidation — while concurrent readers (the resident
	// server's ranking/report/snapshot handlers) read-hold it. Readers
	// therefore always observe a complete day boundary, never a torn day.
	lifeMu sync.RWMutex

	// aborted latches the first failed advancement (see ErrStudyAborted).
	aborted error

	// ckptEvery/ckptFn implement auto-checkpointing from the advance path
	// (SetAutoCheckpoint): every ckptEvery advanced days, ckptFn runs with
	// the lifecycle write lock still held, so its snapshot is always at a
	// clean day boundary.
	ckptEvery int
	ckptFn    CheckpointFunc

	// cruxMu guards the lazily derived CrUX list; cruxDay is the engine
	// day count the current s.Crux was derived at (-1 = none yet).
	cruxMu  sync.Mutex
	cruxDay int

	ran bool
}

// ErrStudyAborted is the sticky error of a study whose advancement failed
// mid-day (shard panic, mid-simulation cancellation): the sinks hold a
// partial day, so every later AdvanceDay/RunContext call refuses to touch
// them rather than silently re-running the engine over half-advanced
// state.
var ErrStudyAborted = errors.New("core: study aborted by failed day advancement")

// ErrStudyClosed is returned when the virtual network is needed after
// Close: a closed study must not silently restart it.
var ErrStudyClosed = errors.New("core: study closed")

// NewStudy builds the world and wires every observer. Run must be called
// before reading lists or metrics.
func NewStudy(cfg Config) *Study {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	buildSpan := reg.Span("phase.build_world")
	w := world.Generate(world.Config{
		Seed:     cfg.Seed,
		NumSites: cfg.NumSites,
		Backends: cfg.Backends,
		Vantages: world.DefaultVantages(cfg.Vantages),
		Ablate: world.Ablations{
			NoPrivateBrowsing: cfg.Ablate.NoPrivateBrowsing,
			NoOpenness:        cfg.Ablate.NoOpenness,
			NoWeightBoost:     cfg.Ablate.NoWeightBoost,
		},
	})
	l := psl.Default()

	s := &Study{
		Cfg:      cfg,
		World:    w,
		PSL:      l,
		Bucketer: rank.ScaledMagnitudes(cfg.NumSites),
		Graph:    linkgraph.Build(w, linkgraph.Config{}, simrand.New(cfg.Seed).Derive("linkgraph")),
		obs:      reg,
	}
	reg.GaugeFunc("names.interned", func() int64 {
		return int64(w.Interner().Len())
	})

	combos := cfmetrics.MetricCombos()
	if cfg.TrackAllCombos {
		combos = cfmetrics.AllCombos()
	}
	// The edge grid: one pipeline per (vantage, backend). The primary at
	// (0, 0) is the paper's Cloudflare pipeline, wired exactly as before;
	// under the default 1-vantage, 1-backend config the grid has no extras
	// and the event path is unchanged.
	s.Edges = cfmetrics.NewPipelineSet(w, combos, cfmetrics.MetricCombos(), nil)
	s.Pipeline = s.Edges.Primary()
	// Each vantage runs its own caching resolver over the shared authority,
	// so DNS-side cache warmth diverges per vantage.
	vantageNames := make([]string, len(w.Vantages()))
	for i, v := range w.Vantages() {
		vantageNames[i] = v.Name
	}
	s.DNS = dnssim.NewPool(dnssim.NewWorldAuthority(w), vantageNames, nil)
	s.Telemetry = chrome.NewTelemetry(w)
	s.Alexa = providers.NewAlexa(w)
	s.Umbrella = providers.NewUmbrella(w, l)
	s.Majestic = providers.NewMajestic(w, s.Graph)
	s.Secrank = providers.NewSecrank(w, l)
	if cfg.Sketch.Enabled {
		s.Pipeline.SetSketch(cfg.Sketch)
		for _, p := range s.Edges.Extras() {
			p.SetSketch(cfg.Sketch)
		}
		s.Telemetry.SetSketch(cfg.Sketch)
		s.Umbrella.SetSketch(cfg.Sketch)
		s.Secrank.SetSketch(cfg.Sketch)
		// All sketch gauges are pure functions of (Seed, Config): logical
		// footprints and error bounds, not process measurements.
		reg.GaugeFunc("sketch.cf.mem_peak_bytes", func() int64 { return int64(s.Pipeline.SketchMemPeak()) })
		reg.GaugeFunc("sketch.cf.cm_errbound", func() int64 { return int64(s.Pipeline.SketchErrorBound()) })
		reg.GaugeFunc("sketch.umbrella.mem_peak_bytes", func() int64 { return int64(s.Umbrella.SketchMemPeak()) })
		reg.GaugeFunc("sketch.secrank.mem_peak_bytes", func() int64 { return int64(s.Secrank.SketchMemPeak()) })
		reg.GaugeFunc("sketch.chrome.mem_peak_bytes", func() int64 { return int64(s.Telemetry.SketchMemPeak()) })
	}

	s.Engine = traffic.NewEngine(w, traffic.Config{
		Seed:       cfg.Seed + 1,
		NumClients: cfg.NumClients,
		Days:       cfg.Days,
		Workers:    cfg.Workers,
		Sketch:     cfg.Sketch,
		Ablate: traffic.Ablations{
			NoPanelDistortion: cfg.Ablate.NoPanelDistortion,
			NoWorkSkew:        cfg.Ablate.NoWorkSkew,
			NoRevisits:        cfg.Ablate.NoRevisits,
		},
		Sybils: cfg.Sybils,
	})
	s.Engine.AddSink(s.Pipeline)
	s.Engine.AddSink(s.Telemetry)
	s.Engine.AddSink(s.Alexa)
	s.Engine.AddSink(s.Umbrella)
	s.Engine.AddSink(s.Secrank)
	// Extra edge pipelines ride after the original five sinks, so the
	// default configuration's sink order — and therefore its event replay
	// and goldens — is untouched.
	for _, p := range s.Edges.Extras() {
		s.Engine.AddSink(p)
	}
	s.Engine.SetObs(reg)
	s.artifacts = newArtifacts(s)
	// The amalgams are incremental consumers: each AdvanceDay feeds them
	// the day just simulated, drawing normalized input snapshots through
	// the artifact store's memo so that work is already warm at evaluation
	// time.
	s.Tranco = providers.NewTranco(s.Alexa, s.Umbrella, s.Majestic, s.PSL, s.artifacts.norms)
	s.Trexa = providers.NewTrexa(s.Alexa, s.Tranco, s.PSL)
	s.cruxDay = -1
	buildSpan.End()
	return s
}

// Run simulates the month and finalizes the amalgam and monthly lists.
// It panics on a shard failure; RunContext reports it as an error instead.
func (s *Study) Run() {
	if err := s.RunContext(context.Background()); err != nil {
		panic(err)
	}
}

// RunContext simulates every remaining day and finalizes the amalgam and
// monthly lists, honoring ctx: a pre-start cancellation returns the
// context's error with the study still consistent at its current day
// boundary, while a mid-day cancellation (or a panicking client shard,
// surfaced as a *traffic.ShardPanicError) leaves the sinks torn and
// latches the study — subsequent calls return an error wrapping
// ErrStudyAborted instead of silently re-running the engine over
// half-advanced sink state.
func (s *Study) RunContext(ctx context.Context) error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.ran {
		return nil
	}
	if s.aborted != nil {
		return s.aborted
	}
	for s.Engine.Day() < s.Cfg.Days {
		if err := s.advanceDayLocked(ctx); err != nil {
			return err
		}
		s.autoCheckpointLocked()
	}
	s.finalizeLocked()
	return nil
}

// AdvanceDay simulates exactly one day and feeds it through the
// incremental amalgams (Tranco/Trexa ComputeDay), invalidating the
// month-scoped derived artifacts it staled. Days advance strictly in
// order, exactly once (the engine's Day cursor is the guard); once every
// configured day has run it returns traffic.ErrRunComplete. The lifecycle
// lock is write-held for the whole advancement, so concurrent readers
// always see the previous complete day.
func (s *Study) AdvanceDay(ctx context.Context) error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.aborted != nil {
		return s.aborted
	}
	if err := s.advanceDayLocked(ctx); err != nil {
		return err
	}
	if s.Engine.Day() == s.Cfg.Days {
		s.finalizeLocked()
	}
	s.autoCheckpointLocked()
	return nil
}

// CheckpointFunc persists one auto-checkpoint: day is the number of fully
// advanced days, and write serializes the study at that boundary into any
// sink. The function runs from the advance path with the lifecycle write
// lock held — keep it bounded (a durable file write, not an upload).
type CheckpointFunc func(day int, write func(io.Writer) error) error

// SetAutoCheckpoint installs fn to run after every nth successful day
// advancement (and always after the final day), from inside the advance
// path itself. n < 1 or a nil fn disables auto-checkpointing. A failing
// fn never aborts the study — the advanced day is good even if the disk
// is not — it only bumps the volatile checkpoint.auto_failed counter;
// callers that need to surface the failure should do so inside fn.
func (s *Study) SetAutoCheckpoint(n int, fn CheckpointFunc) {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if n < 1 || fn == nil {
		s.ckptEvery, s.ckptFn = 0, nil
		return
	}
	s.ckptEvery, s.ckptFn = n, fn
}

// autoCheckpointLocked fires the auto-checkpoint hook when the just-
// completed day count hits the configured cadence. Callers hold lifeMu.
func (s *Study) autoCheckpointLocked() {
	if s.ckptFn == nil || s.ckptEvery < 1 {
		return
	}
	day := s.Engine.Day()
	if day%s.ckptEvery != 0 && day != s.Cfg.Days {
		return
	}
	span := s.obs.Span("phase.autocheckpoint")
	err := s.ckptFn(day, s.snapshotLocked)
	span.End()
	// Operational counters are volatile: how many auto-checkpoints a
	// process wrote depends on its crash/restart history, not on the seed.
	if err != nil {
		s.obs.Counter("checkpoint.auto_failed", obs.Volatile).Inc()
	} else {
		s.obs.Counter("checkpoint.auto", obs.Volatile).Inc()
	}
}

// advanceDayLocked runs one engine day plus the per-day amalgam updates.
// Callers hold lifeMu. A day-level failure latches s.aborted; the first
// caller still receives the original error (tests match on
// context.Canceled and *traffic.ShardPanicError), later callers get the
// sticky wrapper.
func (s *Study) advanceDayLocked(ctx context.Context) error {
	if err := s.Engine.AdvanceDay(ctx); err != nil {
		if s.Engine.Failed() != nil && s.aborted == nil {
			s.aborted = fmt.Errorf("%w: %v", ErrStudyAborted, err)
		}
		return err
	}
	day := s.Engine.Day() - 1
	amalgamSpan := s.obs.Span("phase.amalgam")
	s.Tranco.ComputeDay(day)
	s.Trexa.ComputeDay(day)
	amalgamSpan.End()
	// Month-scoped artifacts (monthly Dowdall rankings, telemetry cell
	// rankings) now cover one more day; drop the stale entries. Per-day
	// artifacts are immutable once their day is published and stay cached.
	s.artifacts.invalidateMonthly()
	return nil
}

// finalizeLocked marks the study fully run and derives the published
// CrUX list. Idempotent; callers hold lifeMu with the engine at Days.
func (s *Study) finalizeLocked() {
	if s.ran {
		return
	}
	s.cruxLocked()
	s.ran = true
}

// cruxLocked returns the CrUX list derived from telemetry as of the
// current day, rebuilding it only when a day advanced since the last
// derivation. Rebuilding replaces s.Crux, so the normalization memo's
// CrUX entries (keyed per day against the old instance) are dropped.
func (s *Study) cruxLocked() *providers.Crux {
	s.cruxMu.Lock()
	defer s.cruxMu.Unlock()
	day := s.Engine.Day()
	if s.Crux == nil || s.cruxDay != day {
		if s.Crux != nil {
			s.artifacts.norms.InvalidateList(s.Crux.Name())
		}
		s.Crux = providers.NewCrux(s.Telemetry, s.Cfg.CruxMinVisitors, s.Bucketer)
		s.cruxDay = day
	}
	return s.Crux
}

// Day returns the number of fully advanced (simulated, amalgamated) days.
func (s *Study) Day() int {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	return s.Engine.Day()
}

// Aborted returns the sticky abort error of a study whose advancement
// failed mid-day, or nil.
func (s *Study) Aborted() error {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	return s.aborted
}

// Lists returns the seven providers in canonical table order.
func (s *Study) Lists() []providers.List {
	s.mustRun()
	return []providers.List{
		s.Alexa, s.Majestic, s.Secrank, s.Tranco, s.Trexa, s.Umbrella, s.Crux,
	}
}

// RankedLists returns the providers that publish exact ranks (everything
// but CrUX), for analyses that need Spearman correlation.
func (s *Study) RankedLists() []providers.List {
	s.mustRun()
	return []providers.List{
		s.Alexa, s.Majestic, s.Secrank, s.Tranco, s.Trexa, s.Umbrella,
	}
}

func (s *Study) mustRun() {
	if !s.ran {
		panic("core: Study.Run not called")
	}
}

// Artifacts returns the study's memoized derived-data layer. It is safe
// for concurrent use by multiple experiment goroutines.
func (s *Study) Artifacts() *Artifacts { return s.artifacts }

// Metrics returns the study's telemetry registry — the one passed as
// Config.Obs, or the private registry NewStudy created. A nil study
// yields a nil registry, which records nothing and never panics.
func (s *Study) Metrics() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.obs
}

// Names returns the study's name table: every ranking the study produces
// is backed by IDs interned here.
func (s *Study) Names() *names.Table { return s.World.Interner() }

// ResetArtifacts discards every memoized derived artifact, forcing the
// next evaluation to recompute from the raw simulation output. It exists
// for benchmarks and tests that compare cold against warm evaluation; it
// must not be called concurrently with experiment readers.
func (s *Study) ResetArtifacts() { s.artifacts = newArtifacts(s) }

// CFDomains returns the set of Cloudflare-served registrable domains,
// established the way the paper does it: a HEAD probe of every domain over
// the (virtual) network, keeping those that answer with a cf-ray header.
// The probe runs once per study; see Artifacts.CFDomains.
func (s *Study) CFDomains() map[string]struct{} {
	return s.artifacts.CFDomains()
}

// FaultSeed returns the seed keying the study's fault plan: the
// configured override, or a stream derived from the study seed so two
// studies with equal seeds see identical weather.
func (s *Study) FaultSeed() uint64 {
	if s.Cfg.FaultSeed != 0 {
		return s.Cfg.FaultSeed
	}
	return simrand.New(s.Cfg.Seed).Derive("faults").Uint64()
}

// FaultPlan returns the study's fault plan, or nil when FaultRate is 0.
func (s *Study) FaultPlan() *faults.Plan {
	if s.Cfg.FaultRate <= 0 {
		return nil
	}
	return &faults.Plan{Seed: s.FaultSeed(), Rate: s.Cfg.FaultRate}
}

// network returns the virtual HTTP layer, starting it on first use. A
// configured FaultRate installs the study's fault plan before any probe
// can observe the network. After Close it returns ErrStudyClosed instead
// of silently restarting the network.
func (s *Study) network() (*httpsim.Network, error) {
	s.netMu.Lock()
	defer s.netMu.Unlock()
	if s.closed {
		return nil, ErrStudyClosed
	}
	if s.Network == nil {
		n := httpsim.NewNetwork()
		n.AddWorld(s.World)
		n.SetFaultPlan(s.FaultPlan())
		n.SetObs(s.obs)
		n.Start()
		s.Network = n
	}
	return s.Network, nil
}

// Close releases the virtual network, if started, and marks the study
// closed: any later attempt to probe (which would lazily restart the
// network) fails with ErrStudyClosed. Idempotent.
func (s *Study) Close() {
	s.netMu.Lock()
	defer s.netMu.Unlock()
	s.closed = true
	if s.Network != nil {
		s.Network.Close()
		s.Network = nil
	}
}

// ListNames returns the provider names servable by RankingFor, in the
// paper's canonical table order.
func (s *Study) ListNames() []string { return providers.CanonicalOrder() }

// RankingFor returns the published ranking of the named list for a
// 0-based day that has already been advanced. Day-indexed providers serve
// their archived snapshot; CrUX (which publishes one month-to-date list)
// serves the list derived from telemetry as of the current day. Safe for
// concurrent use with AdvanceDay: readers hold the lifecycle read lock,
// so they always see a complete day.
func (s *Study) RankingFor(list string, day int) (*rank.Ranking, error) {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	cur := s.Engine.Day()
	if day < 0 || day >= cur {
		return nil, fmt.Errorf("core: day %d not available (advanced through day %d)", day, cur-1)
	}
	switch list {
	case "Alexa":
		return s.Alexa.Raw(day), nil
	case "Majestic":
		return s.Majestic.Raw(day), nil
	case "Secrank":
		return s.Secrank.Raw(day), nil
	case "Tranco":
		return s.Tranco.Raw(day), nil
	case "Trexa":
		return s.Trexa.Raw(day), nil
	case "Umbrella":
		return s.Umbrella.Raw(day), nil
	case "CrUX":
		return s.cruxLocked().Raw(day), nil
	default:
		return nil, fmt.Errorf("core: unknown list %q", list)
	}
}

// Vantages returns the study's measurement vantage points in grid order.
func (s *Study) Vantages() []world.Vantage { return s.World.Vantages() }

// Backends returns the study's deployed CDN backends in grid order.
func (s *Study) Backends() []world.Backend { return s.World.Backends() }

// EdgeRankingFor returns the day's ranking of one canonical metric as
// observed by one (vantage, backend) edge pipeline, for a 0-based day that
// has already been advanced. metric is a cfmetrics.Metric key slug,
// vantage a vantage name, backend a backend slug; unknown keys error.
// Safe for concurrent use with AdvanceDay, like RankingFor.
func (s *Study) EdgeRankingFor(metric, vantage, backend string, day int) (*rank.Ranking, error) {
	m, ok := cfmetrics.MetricByKey(metric)
	if !ok {
		return nil, fmt.Errorf("core: unknown metric %q", metric)
	}
	vi, bi, ok := s.Edges.Index(vantage, backend)
	if !ok {
		return nil, fmt.Errorf("core: unknown edge (%q, %q)", vantage, backend)
	}
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	cur := s.Engine.Day()
	if day < 0 || day >= cur {
		return nil, fmt.Errorf("core: day %d not available (advanced through day %d)", day, cur-1)
	}
	return s.artifacts.EdgeMetricRanking(vi, bi, day, m), nil
}

// EvalK returns the list magnitude at which set comparisons run.
func (s *Study) EvalK() int {
	return s.Bucketer.Magnitudes[s.Cfg.EvalMagIdx]
}

// SpearmanK returns the magnitude at which rank correlations run.
func (s *Study) SpearmanK() int {
	return s.Bucketer.Magnitudes[s.Cfg.SpearmanMagIdx]
}

// Describe summarizes the run for logs.
func (s *Study) Describe() string {
	return fmt.Sprintf("study: seed=%d sites=%d clients=%d days=%d",
		s.Cfg.Seed, s.Cfg.NumSites, s.Cfg.NumClients, s.Cfg.Days)
}
