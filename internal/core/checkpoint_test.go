package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"toplists/internal/cfmetrics"
	"toplists/internal/dnssim"
	"toplists/internal/sketch"
	"toplists/internal/snapshot"
)

// checkpointCfg is deliberately tiny: the round-trip property test
// snapshots and resumes at every day boundary, rebuilding a world each
// time.
func checkpointCfg(seed uint64, days int, sketchOn bool) Config {
	return Config{
		Seed:           seed,
		NumSites:       400,
		NumClients:     80,
		Days:           days,
		TrackAllCombos: true,
		Workers:        2,
		Sketch:         sketch.Config{Enabled: sketchOn},
	}
}

func snap(t *testing.T, s *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripByteIdentical is the property test of the snapshot
// layer: at every day boundary k, Snapshot -> Resume -> Snapshot must
// reproduce the checkpoint byte for byte, in exact and sketch mode. The
// canonical encoding (sorted maps, fixed-width floats) is what makes this
// hold; any nondeterministic iteration order in a component would fail
// here immediately.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	for _, mode := range []bool{false, true} {
		t.Run(fmt.Sprintf("sketch=%v", mode), func(t *testing.T) {
			const days = 3
			s := NewStudy(checkpointCfg(23, days, mode))
			defer s.Close()
			for k := 0; ; k++ {
				a := snap(t, s)
				r, err := Resume(bytes.NewReader(a), ResumeOptions{Workers: 1})
				if err != nil {
					t.Fatalf("day %d: Resume: %v", k, err)
				}
				if got := r.Day(); got != k {
					t.Fatalf("day %d: resumed study at day %d", k, got)
				}
				b := snap(t, r)
				r.Close()
				if !bytes.Equal(a, b) {
					t.Fatalf("day %d: re-snapshot differs (%d vs %d bytes)", k, len(a), len(b))
				}
				if k == days {
					break
				}
				if err := s.AdvanceDay(context.Background()); err != nil {
					t.Fatalf("day %d: AdvanceDay: %v", k, err)
				}
			}
		})
	}
}

// TestResumeOracle pins the headline acceptance property at unit scale: a
// study checkpointed at day k, resumed (with a different worker count),
// and advanced to the end publishes byte-identical lists, Cloudflare
// combo lists, and CrUX output to a straight run — and its resume-stable
// report subset matches too. The full-size oracle is `make snapcheck`.
func TestResumeOracle(t *testing.T) {
	const days = 6
	for _, mode := range []bool{false, true} {
		t.Run(fmt.Sprintf("sketch=%v", mode), func(t *testing.T) {
			straight := NewStudy(checkpointCfg(91, days, mode))
			defer straight.Close()
			straight.Run()
			wantFP := studyFingerprint(straight)
			wantRep, err := straight.Metrics().Snapshot().ResumeStable()
			if err != nil {
				t.Fatal(err)
			}

			for _, k := range []int{1, 3, days} {
				src := NewStudy(checkpointCfg(91, days, mode))
				for i := 0; i < k; i++ {
					if err := src.AdvanceDay(context.Background()); err != nil {
						t.Fatalf("k=%d: AdvanceDay(%d): %v", k, i, err)
					}
				}
				b := snap(t, src)
				src.Close()

				r, err := Resume(bytes.NewReader(b), ResumeOptions{Workers: 3})
				if err != nil {
					t.Fatalf("k=%d: Resume: %v", k, err)
				}
				r.Run()
				if got := studyFingerprint(r); got != wantFP {
					t.Errorf("k=%d: fingerprint %x after resume, straight run %x", k, got, wantFP)
				}
				gotRep, err := r.Metrics().Snapshot().ResumeStable()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotRep, wantRep) {
					t.Errorf("k=%d: resume-stable report differs:\n--- straight ---\n%s\n--- resumed ---\n%s",
						k, wantRep, gotRep)
				}
				r.Close()
			}
		})
	}
}

// TestResumeRejectsDamage: corrupted, truncated, and version-skewed
// checkpoints are rejected with precise sentinel errors and never yield a
// study — no partial restore is observable.
func TestResumeRejectsDamage(t *testing.T) {
	s := NewStudy(checkpointCfg(5, 2, false))
	if err := s.AdvanceDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	good := snap(t, s)
	s.Close()

	mustFail := func(t *testing.T, b []byte, want error, what string) {
		t.Helper()
		r, err := Resume(bytes.NewReader(b), ResumeOptions{})
		if err == nil {
			t.Fatalf("%s: Resume accepted damaged checkpoint", what)
		}
		if r != nil {
			t.Fatalf("%s: Resume returned a study alongside error %v", what, err)
		}
		if want != nil && !errors.Is(err, want) {
			t.Errorf("%s: error %v, want %v", what, err, want)
		}
	}

	t.Run("magic", func(t *testing.T) {
		b := bytes.Clone(good)
		b[0] ^= 0xff
		mustFail(t, b, snapshot.ErrBadMagic, "flipped magic")
		mustFail(t, nil, snapshot.ErrBadMagic, "empty file")
	})

	t.Run("version", func(t *testing.T) {
		b := bytes.Clone(good)
		b[9] = 0x7f // container version little byte (big-endian u16 at [8:10])
		mustFail(t, b, snapshot.ErrVersion, "container version skew")
	})

	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(good); cut += 97 {
			mustFail(t, good[:cut], nil, fmt.Sprintf("cut at %d", cut))
		}
		mustFail(t, good[:len(good)-1], nil, "cut last byte")
	})

	t.Run("bitflip", func(t *testing.T) {
		for off := 10; off < len(good); off += 53 {
			b := bytes.Clone(good)
			b[off] ^= 0x04
			r, err := Resume(bytes.NewReader(b), ResumeOptions{})
			if err == nil {
				t.Fatalf("flip at %d: Resume accepted corrupted checkpoint", off)
			}
			if r != nil {
				t.Fatalf("flip at %d: Resume returned a study alongside error %v", off, err)
			}
		}
	})

	t.Run("trailing", func(t *testing.T) {
		mustFail(t, append(bytes.Clone(good), 0xee), nil, "trailing garbage")
	})
}

// TestSnapshotRefusesAbortedStudy: a study latched by a mid-day failure
// holds torn sink state; Snapshot must refuse to serialize it.
func TestSnapshotRefusesAbortedStudy(t *testing.T) {
	s := abortedStudy(t)
	defer s.Close()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); !errors.Is(err, ErrStudyAborted) {
		t.Fatalf("Snapshot on aborted study: %v, want ErrStudyAborted", err)
	}
	if buf.Len() > 0 {
		t.Fatalf("Snapshot wrote %d bytes before refusing", buf.Len())
	}
}

// TestSnapshotRoundTripMultiVantage extends the byte-identity property to
// the multi-edge state: a 3-vantage, 2-backend study — with per-vantage
// resolver caches deliberately warmed unevenly — must Snapshot -> Resume
// -> Snapshot byte-identically at every day boundary, and the resumed
// extra pipelines must publish the same day lists.
func TestSnapshotRoundTripMultiVantage(t *testing.T) {
	cfg := checkpointCfg(31, 2, false)
	cfg.Vantages = 3
	cfg.Backends = 2

	warmDNS := func(s *Study, n int) {
		for vi, name := range s.DNS.Names() {
			r, ok := s.DNS.Resolver(name)
			if !ok {
				t.Fatalf("no resolver for vantage %q", name)
			}
			for i := 0; i < n*(vi+1); i++ {
				site := s.World.Site(int32(i % s.World.NumSites()))
				r.Resolve(uint32(i), site.Hostname(0), dnssim.TypeA)
				r.Advance(60)
			}
		}
	}

	s := NewStudy(cfg)
	defer s.Close()
	if len(s.Vantages()) != 3 || len(s.Backends()) != 2 {
		t.Fatalf("grid is %dx%d, want 3x2", len(s.Vantages()), len(s.Backends()))
	}
	for k := 0; ; k++ {
		warmDNS(s, 5)
		a := snap(t, s)
		r, err := Resume(bytes.NewReader(a), ResumeOptions{Workers: 1})
		if err != nil {
			t.Fatalf("day %d: Resume: %v", k, err)
		}
		b := snap(t, r)
		if !bytes.Equal(a, b) {
			r.Close()
			t.Fatalf("day %d: re-snapshot differs (%d vs %d bytes)", k, len(a), len(b))
		}
		for i, p := range s.Edges.Extras() {
			q := r.Edges.Extras()[i]
			if p.NumDays() != q.NumDays() {
				t.Fatalf("day %d extra %d: %d vs %d days", k, i, p.NumDays(), q.NumDays())
			}
			for d := 0; d < p.NumDays(); d++ {
				for _, m := range cfmetrics.AllMetrics() {
					al, bl := p.DayList(d, m.Combo()), q.DayList(d, m.Combo())
					if len(al) != len(bl) {
						t.Fatalf("day %d extra %d metric %v: %d vs %d sites", d, i, m, len(al), len(bl))
					}
					for j := range al {
						if al[j] != bl[j] {
							t.Fatalf("day %d extra %d metric %v rank %d differs", d, i, m, j)
						}
					}
				}
			}
		}
		r.Close()
		if k == cfg.Days {
			break
		}
		if err := s.AdvanceDay(context.Background()); err != nil {
			t.Fatalf("day %d: AdvanceDay: %v", k, err)
		}
	}
}

// TestEdgeRankingFor covers the keyed ranking accessor: the primary edge
// serves the same ranking as the un-keyed path, regional edges serve
// their own, and unknown keys error instead of panicking.
func TestEdgeRankingFor(t *testing.T) {
	cfg := checkpointCfg(33, 2, false)
	cfg.Vantages = 2
	cfg.Backends = 2
	s := NewStudy(cfg)
	defer s.Close()
	s.Run()

	m := cfmetrics.MAllRequests
	primary, err := s.EdgeRankingFor(m.Key(), s.Vantages()[0].Name, "cdnflare", 1)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Artifacts().MetricRanking(1, m)
	if primary.Len() != want.Len() {
		t.Fatalf("primary edge ranking %d entries, un-keyed path %d", primary.Len(), want.Len())
	}
	regional, err := s.EdgeRankingFor(m.Key(), s.Vantages()[1].Name, "cdnflare", 1)
	if err != nil {
		t.Fatal(err)
	}
	if regional.Len() == 0 || regional.Len() > primary.Len() {
		t.Fatalf("regional edge ranking %d entries, primary %d", regional.Len(), primary.Len())
	}
	for _, bad := range [][3]string{
		{"bogus-metric", s.Vantages()[0].Name, "cdnflare"},
		{m.Key(), "bogus-vantage", "cdnflare"},
		{m.Key(), s.Vantages()[0].Name, "akamai"}, // not deployed at Backends=2
	} {
		if _, err := s.EdgeRankingFor(bad[0], bad[1], bad[2], 1); err == nil {
			t.Fatalf("EdgeRankingFor(%v) accepted unknown key", bad)
		}
	}
	if _, err := s.EdgeRankingFor(m.Key(), s.Vantages()[0].Name, "cdnflare", 99); err == nil {
		t.Fatal("EdgeRankingFor accepted out-of-range day")
	}
}
