package core

import (
	"bytes"
	"fmt"
	"io"
	"slices"

	"toplists/internal/obs"
	"toplists/internal/sketch"
	"toplists/internal/snapshot"
	"toplists/internal/traffic"
)

// Checkpoint/restore: a study snapshotted at a day boundary and resumed
// in a fresh process renders byte-identically to a study that never
// stopped. The snapshot carries exactly the state that crosses days —
// the deterministic config (from which the world is regenerated rather
// than stored), the interner table, the engine's day cursor, the
// deterministic telemetry counters, and every sink/provider's cross-day
// tallies. Per-day accumulators are reset at each BeginDay and are empty
// at every day boundary by construction, so they never appear in a
// snapshot; per-day randomness is derived statelessly from the seed and
// the day index, so no RNG state is carried either.

// Component names, in their fixed container order.
const (
	compMeta     = "meta"
	compNames    = "names"
	compEngine   = "engine"
	compObs      = "obs"
	compPipeline = "cf"
	compChrome   = "chrome"
	compAlexa    = "alexa"
	compUmbrella = "umbrella"
	compSecrank  = "secrank"
	compTranco   = "tranco"
	compTrexa    = "trexa"
	// compEdges holds the extra (vantage, backend) pipelines' cross-day
	// state, compDNS the per-vantage resolver pool. Both are always
	// written: under the default 1-vantage, 1-backend config they carry
	// only the grid shape, so the container layout stays uniform.
	compEdges = "edges"
	compDNS   = "dnsv"
)

const (
	metaSnapVersion   = 2
	engineSnapVersion = 1
	obsSnapVersion    = 1
)

// Snapshot writes a checkpoint of the study at its current day boundary.
// It holds the lifecycle read lock, so it can run concurrently with
// readers but never observes a mid-advancement (torn) day. An aborted
// study cannot be snapshotted: its sinks hold a partial day.
func (s *Study) Snapshot(w io.Writer) error {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	return s.snapshotLocked(w)
}

// snapshotLocked serializes the study without taking the lifecycle lock.
// It is the write function handed to auto-checkpoint hooks, which run
// from the advance path with the write lock already held — that is what
// guarantees an auto-checkpoint always lands on a clean day boundary.
func (s *Study) snapshotLocked(w io.Writer) error {
	if s.aborted != nil {
		return fmt.Errorf("core: cannot snapshot: %w", s.aborted)
	}
	defer s.obs.Span("phase.snapshot").End()
	sw, err := snapshot.NewWriter(w)
	if err != nil {
		return err
	}
	sw.Component(compMeta, s.snapshotMeta)
	sw.Component(compNames, s.World.Interner().Snapshot)
	sw.Component(compEngine, s.snapshotEngine)
	sw.Component(compObs, s.snapshotObs)
	sw.Component(compPipeline, s.Pipeline.Snapshot)
	sw.Component(compChrome, s.Telemetry.Snapshot)
	sw.Component(compAlexa, s.Alexa.Snapshot)
	sw.Component(compUmbrella, s.Umbrella.Snapshot)
	sw.Component(compSecrank, s.Secrank.Snapshot)
	sw.Component(compTranco, s.Tranco.Snapshot)
	sw.Component(compTrexa, s.Trexa.Snapshot)
	sw.Component(compEdges, s.Edges.Snapshot)
	sw.Component(compDNS, s.DNS.Snapshot)
	return sw.Close()
}

// snapshotMeta persists every config field that determines study output.
// Workers is deliberately absent: worker count never changes output, and
// a resume may pick a different one (ResumeOptions.Workers).
func (s *Study) snapshotMeta(w io.Writer) error {
	var e snapshot.Encoder
	cfg := s.Cfg
	e.Uvarint(metaSnapVersion)
	e.Uvarint(cfg.Seed)
	e.Int(cfg.NumSites)
	e.Int(cfg.NumClients)
	e.Int(cfg.Days)
	e.Int(cfg.CruxMinVisitors)
	e.Bool(cfg.TrackAllCombos)
	e.Int(cfg.EvalMagIdx)
	e.Int(cfg.SpearmanMagIdx)
	e.F64(cfg.FaultRate)
	e.Uvarint(cfg.FaultSeed)
	e.Bool(cfg.Sketch.Enabled)
	e.Int(cfg.Sketch.Shards)
	e.Int(cfg.Sketch.TopK)
	e.Int(cfg.Sketch.CMWidth)
	e.Int(cfg.Sketch.CMDepth)
	e.Uvarint(uint64(cfg.Sketch.HLLPrecision))
	e.Int(cfg.Sketch.ProfileK)
	e.Bool(cfg.Ablate.NoPrivateBrowsing)
	e.Bool(cfg.Ablate.NoOpenness)
	e.Bool(cfg.Ablate.NoWeightBoost)
	e.Bool(cfg.Ablate.NoPanelDistortion)
	e.Bool(cfg.Ablate.NoWorkSkew)
	e.Bool(cfg.Ablate.NoRevisits)
	e.Int(cfg.Vantages)
	e.Int(cfg.Backends)
	e.Uvarint(uint64(len(cfg.Sybils)))
	for _, sy := range cfg.Sybils {
		e.Varint(int64(sy.Site))
		e.Int(sy.Clients)
		e.F64(sy.LoadsPerDay)
		e.Int(sy.JoinDay)
	}
	_, err := e.WriteTo(w)
	return err
}

func decodeMeta(b []byte) (Config, error) {
	d := snapshot.NewDecoder(b)
	var cfg Config
	if v := d.Uvarint(); v != metaSnapVersion {
		if err := d.Err(); err != nil {
			return cfg, err
		}
		return cfg, fmt.Errorf("%w: meta payload v%d, this build reads v%d", snapshot.ErrVersion, v, metaSnapVersion)
	}
	cfg.Seed = d.Uvarint()
	cfg.NumSites = d.Int()
	cfg.NumClients = d.Int()
	cfg.Days = d.Int()
	cfg.CruxMinVisitors = d.Int()
	cfg.TrackAllCombos = d.Bool()
	cfg.EvalMagIdx = d.Int()
	cfg.SpearmanMagIdx = d.Int()
	cfg.FaultRate = d.F64()
	cfg.FaultSeed = d.Uvarint()
	cfg.Sketch = sketch.Config{
		Enabled:      d.Bool(),
		Shards:       d.Int(),
		TopK:         d.Int(),
		CMWidth:      d.Int(),
		CMDepth:      d.Int(),
		HLLPrecision: uint8(d.Uvarint()),
		ProfileK:     d.Int(),
	}
	cfg.Ablate = Ablations{
		NoPrivateBrowsing: d.Bool(),
		NoOpenness:        d.Bool(),
		NoWeightBoost:     d.Bool(),
		NoPanelDistortion: d.Bool(),
		NoWorkSkew:        d.Bool(),
		NoRevisits:        d.Bool(),
	}
	cfg.Vantages = d.Int()
	cfg.Backends = d.Int()
	n := d.Len(4)
	for i := 0; i < n; i++ {
		cfg.Sybils = append(cfg.Sybils, traffic.SybilSpec{
			Site:        int32(d.Varint()),
			Clients:     d.Int(),
			LoadsPerDay: d.F64(),
			JoinDay:     d.Int(),
		})
	}
	if err := d.Finish(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (s *Study) snapshotEngine(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(engineSnapVersion)
	e.Int(s.Engine.Day())
	_, err := e.WriteTo(w)
	return err
}

// snapshotObs persists the deterministic (non-volatile) counters, which
// are pure functions of (seed, config, days advanced). Restoring them by
// delta makes a resumed run's final counter totals match a straight
// run's. Gauges are not persisted: plain deterministic gauges are set by
// computations (the probe sweep) that re-run on demand, and gauge
// functions read live state.
func (s *Study) snapshotObs(w io.Writer) error {
	rep := s.obs.Snapshot()
	keys := make([]string, 0, len(rep.Counters))
	for k := range rep.Counters {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var e snapshot.Encoder
	e.Uvarint(obsSnapVersion)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.Varint(rep.Counters[k])
	}
	_, err := e.WriteTo(w)
	return err
}

func restoreObs(reg *obs.Registry, b []byte) error {
	d := snapshot.NewDecoder(b)
	if v := d.Uvarint(); v != obsSnapVersion {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: obs payload v%d, this build reads v%d", snapshot.ErrVersion, v, obsSnapVersion)
	}
	n := d.Len(2)
	for i := 0; i < n; i++ {
		name := d.String()
		v := d.Varint()
		if d.Err() != nil {
			return d.Err()
		}
		c := reg.Counter(name)
		c.Add(v - c.Value())
	}
	return d.Finish()
}

// ResumeOptions carries the per-process choices a restore may make
// differently from the checkpointing process; neither affects output.
type ResumeOptions struct {
	// Workers is the simulation/evaluation pool width (0 = one per CPU).
	Workers int
	// Obs is the telemetry registry to instrument the resumed study
	// against (nil = a fresh private registry). Deterministic counters
	// are restored onto it from the snapshot.
	Obs *obs.Registry
}

// Resume rebuilds a study from a checkpoint written by Study.Snapshot.
// The world is regenerated from the snapshotted config (cheaper and
// safer than persisting it), then every component is restored and
// cross-validated. On any error — bad magic, version skew, checksum or
// framing corruption, inconsistent day counts — the partially restored
// study is closed and discarded, and nil is returned: no partial restore
// is ever observable. The resumed study continues exactly where the
// original stopped: the next AdvanceDay simulates day k, and a study
// restored at its final day is immediately finalized and readable.
func Resume(r io.Reader, opt ResumeOptions) (*Study, error) {
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return nil, err
	}
	metaPayload, err := sr.Component(compMeta)
	if err != nil {
		return nil, err
	}
	cfg, err := decodeMeta(metaPayload)
	if err != nil {
		return nil, err
	}
	cfg.Workers = opt.Workers
	cfg.Obs = opt.Obs

	s := NewStudy(cfg)
	if err := restoreInto(s, sr); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func restoreInto(s *Study, sr *snapshot.Reader) error {
	payload := func(name string) ([]byte, error) { return sr.Component(name) }
	reader := func(name string, fn func(io.Reader) error) error {
		p, err := payload(name)
		if err != nil {
			return err
		}
		if err := fn(bytes.NewReader(p)); err != nil {
			return fmt.Errorf("component %q: %w", name, err)
		}
		return nil
	}

	if err := reader(compNames, s.World.Interner().Restore); err != nil {
		return err
	}

	p, err := payload(compEngine)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(p)
	if v := d.Uvarint(); v != engineSnapVersion {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: engine payload v%d, this build reads v%d", snapshot.ErrVersion, v, engineSnapVersion)
	}
	day := d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	if day < 0 || day > s.Cfg.Days {
		return fmt.Errorf("%w: engine cursor %d out of range [0, %d]", snapshot.ErrCorrupt, day, s.Cfg.Days)
	}

	p, err = payload(compObs)
	if err != nil {
		return err
	}
	if err := restoreObs(s.obs, p); err != nil {
		return err
	}

	if err := reader(compPipeline, s.Pipeline.Restore); err != nil {
		return err
	}
	if err := reader(compChrome, s.Telemetry.Restore); err != nil {
		return err
	}
	if err := reader(compAlexa, s.Alexa.Restore); err != nil {
		return err
	}
	if err := reader(compUmbrella, s.Umbrella.Restore); err != nil {
		return err
	}
	if err := reader(compSecrank, s.Secrank.Restore); err != nil {
		return err
	}
	tab := s.World.Interner()
	if err := reader(compTranco, func(r io.Reader) error { return s.Tranco.Restore(r, tab) }); err != nil {
		return err
	}
	if err := reader(compTrexa, func(r io.Reader) error { return s.Trexa.Restore(r, tab) }); err != nil {
		return err
	}
	if err := reader(compEdges, s.Edges.Restore); err != nil {
		return err
	}
	if err := reader(compDNS, s.DNS.Restore); err != nil {
		return err
	}
	if err := sr.End(); err != nil {
		return err
	}

	// Cross-validate: every day-indexed component must sit exactly at the
	// engine cursor, or the snapshot was assembled from mismatched states.
	for _, c := range []struct {
		name string
		days int
	}{
		{compPipeline, s.Pipeline.NumDays()},
		{compAlexa, s.Alexa.NumDays()},
		{compUmbrella, s.Umbrella.NumDays()},
		{compSecrank, s.Secrank.NumDays()},
		{compTranco, s.Tranco.NumDays()},
		{compTrexa, s.Trexa.NumDays()},
	} {
		if c.days != day {
			return fmt.Errorf("%w: component %q holds %d days, engine cursor %d", snapshot.ErrCorrupt, c.name, c.days, day)
		}
	}
	for _, p := range s.Edges.Extras() {
		if p.NumDays() != day {
			return fmt.Errorf("%w: edge pipeline %s/%s holds %d days, engine cursor %d",
				snapshot.ErrCorrupt, p.Vantage().Name, p.Backend(), p.NumDays(), day)
		}
	}
	if err := s.Engine.RestoreDay(day); err != nil {
		return err
	}
	if day == s.Cfg.Days {
		s.lifeMu.Lock()
		s.finalizeLocked()
		s.lifeMu.Unlock()
	}
	return nil
}
