package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"testing"

	"toplists/internal/cfmetrics"
	"toplists/internal/sketch"
)

// studyFingerprint digests everything the study publishes — the seven
// provider lists for every day, the daily ranked lists of all 21 Cloudflare
// filter-aggregation combos, and the CrUX origin/bucket dataset — into one
// hash. Two runs agree iff every published artifact is byte-identical.
func studyFingerprint(s *Study) uint64 {
	h := fnv.New64a()
	write := func(parts ...string) {
		for _, p := range parts {
			io.WriteString(h, p)
			h.Write([]byte{0})
		}
	}

	for _, l := range s.Lists() {
		for d := 0; d < s.Cfg.Days; d++ {
			write("list", l.Name(), fmt.Sprint(d))
			for _, name := range l.Raw(d).Names() {
				write(name)
			}
		}
	}

	for _, combo := range cfmetrics.AllCombos() {
		for d := 0; d < s.Pipeline.NumDays(); d++ {
			write("cf", combo.String(), fmt.Sprint(d))
			for _, id := range s.Pipeline.DayList(d, combo) {
				write(fmt.Sprint(id))
			}
		}
	}

	write("crux")
	for _, e := range s.Crux.Entries() {
		write(e.Origin, fmt.Sprint(e.Bucket))
	}
	return h.Sum64()
}

func runFingerprint(seed uint64, workers int) uint64 {
	return runFingerprintMode(seed, workers, false)
}

func runFingerprintMode(seed uint64, workers int, sketchMode bool) uint64 {
	s := NewStudy(Config{
		Seed:           seed,
		NumSites:       1500,
		NumClients:     300,
		Days:           4,
		TrackAllCombos: true,
		Workers:        workers,
		Sketch:         sketch.Config{Enabled: sketchMode},
	})
	s.Run()
	return studyFingerprint(s)
}

// TestStudyDeterminismAcrossWorkers is the end-to-end determinism oracle:
// a study run with the serial engine (workers=1) and runs with parallel
// sharded engines must publish byte-identical provider lists, Cloudflare
// combo lists, and CrUX output, for each seed.
func TestStudyDeterminismAcrossWorkers(t *testing.T) {
	workerCounts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, seed := range []uint64{2022, 7, 314159} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := runFingerprint(seed, 1)
			for _, workers := range workerCounts {
				if got := runFingerprint(seed, workers); got != want {
					t.Errorf("workers=%d fingerprint %#x, want %#x (serial)",
						workers, got, want)
				}
			}
		})
	}
}

// TestStudySketchDeterminismAcrossWorkers is the same oracle for sketch
// mode: the sketch path aggregates over fixed logical shards merged in
// canonical order at the day barrier, so its published output must also be
// byte-identical at every worker count — approximate relative to the exact
// path, but never schedule-dependent.
func TestStudySketchDeterminismAcrossWorkers(t *testing.T) {
	workerCounts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, seed := range []uint64{2022, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := runFingerprintMode(seed, 1, true)
			for _, workers := range workerCounts {
				if got := runFingerprintMode(seed, workers, true); got != want {
					t.Errorf("sketch workers=%d fingerprint %#x, want %#x (serial)",
						workers, got, want)
				}
			}
		})
	}
}

// TestStudyDeterminismRepeatable pins the weaker property the parallel
// oracle builds on: the same configuration twice produces the same
// fingerprint at all.
func TestStudyDeterminismRepeatable(t *testing.T) {
	if a, b := runFingerprint(11, 0), runFingerprint(11, 0); a != b {
		t.Fatalf("same config, different fingerprints: %#x vs %#x", a, b)
	}
}
