package core

import (
	"math"
	"testing"

	"toplists/internal/cfmetrics"
	"toplists/internal/rank"
	"toplists/internal/world"
)

// sharedStudy is built once: study runs are the expensive fixture here.
var sharedStudy *Study

func getStudy(t testing.TB) *Study {
	t.Helper()
	if sharedStudy == nil {
		sharedStudy = NewStudy(Config{
			Seed: 101, NumSites: 2500, NumClients: 1200, Days: 7,
		})
		sharedStudy.Run()
	}
	return sharedStudy
}

func TestStudyWiring(t *testing.T) {
	s := getStudy(t)
	if len(s.Lists()) != 7 {
		t.Fatalf("lists = %d", len(s.Lists()))
	}
	if len(s.RankedLists()) != 6 {
		t.Fatalf("ranked lists = %d", len(s.RankedLists()))
	}
	if s.Pipeline.NumDays() != 7 {
		t.Fatalf("pipeline days = %d", s.Pipeline.NumDays())
	}
	for _, p := range s.Lists() {
		if p.Raw(0).Len() == 0 {
			t.Fatalf("%s empty", p.Name())
		}
	}
}

func TestMustRunPanics(t *testing.T) {
	s := NewStudy(Config{Seed: 1, NumSites: 100, NumClients: 10, Days: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic before Run")
		}
	}()
	s.Lists()
}

func TestCFDomainsMatchWorld(t *testing.T) {
	s := getStudy(t)
	probed := s.CFDomains()
	truth := s.World.CloudflareSet()
	if len(probed) != len(truth) {
		t.Fatalf("probe found %d, world has %d", len(probed), len(truth))
	}
	for d := range probed {
		if _, ok := truth[d]; !ok {
			t.Fatalf("%s probed CF but is not", d)
		}
	}
}

func TestJaccardTopK(t *testing.T) {
	a := rank.MustNew([]string{"a", "b", "c", "d"})
	b := rank.MustNew([]string{"b", "a", "x", "y"})
	if jj := JaccardTopK(a, b, 2); jj != 1 {
		t.Errorf("top2 jaccard = %v", jj)
	}
	if jj := JaccardTopK(a, b, 4); math.Abs(jj-2.0/6.0) > 1e-12 {
		t.Errorf("top4 jaccard = %v", jj)
	}
}

func TestSpearmanTopK(t *testing.T) {
	a := rank.MustNew([]string{"a", "b", "c", "d", "e"})
	same := rank.MustNew([]string{"a", "b", "c", "d", "e"})
	rs, n, err := SpearmanTopK(a, same, 5)
	if err != nil || n != 5 || math.Abs(rs-1) > 1e-12 {
		t.Errorf("identical lists: rs=%v n=%d err=%v", rs, n, err)
	}
	rev := rank.MustNew([]string{"e", "d", "c", "b", "a"})
	rs, _, err = SpearmanTopK(a, rev, 5)
	if err != nil || math.Abs(rs+1) > 1e-12 {
		t.Errorf("reversed lists: rs=%v err=%v", rs, err)
	}
}

func TestEvalListVsMetricPerfectList(t *testing.T) {
	// A list identical to the CF metric must score Jaccard 1, Spearman 1.
	cf := rank.MustNew([]string{"a.com", "b.com", "c.com", "d.com"})
	cfSet := map[string]struct{}{
		"a.com": {}, "b.com": {}, "c.com": {}, "d.com": {},
	}
	res := EvalListVsMetric(cf, cfSet, cf, 4, false)
	if res.N != 4 || res.Jaccard != 1 || !res.SpearmanOK || math.Abs(res.Spearman-1) > 1e-12 {
		t.Errorf("res = %+v", res)
	}
}

func TestEvalListVsMetricFiltersNonCF(t *testing.T) {
	cf := rank.MustNew([]string{"a.com", "b.com"})
	cfSet := map[string]struct{}{"a.com": {}, "b.com": {}}
	list := rank.MustNew([]string{"x.com", "a.com", "y.com", "b.com"})
	res := EvalListVsMetric(list, cfSet, cf, 4, false)
	if res.N != 2 {
		t.Fatalf("N = %d, want 2 (non-CF filtered)", res.N)
	}
	if res.Jaccard != 1 {
		t.Errorf("jaccard = %v", res.Jaccard)
	}
}

func TestEvalListVsMetricBucketed(t *testing.T) {
	cf := rank.MustNew([]string{"a.com", "b.com"})
	cfSet := map[string]struct{}{"a.com": {}, "b.com": {}}
	res := EvalListVsMetric(cf, cfSet, cf, 2, true)
	if res.SpearmanOK {
		t.Error("bucketed list must not get a Spearman value")
	}
	if res.Jaccard != 1 {
		t.Error("bucketed list still gets Jaccard")
	}
}

func TestEvalListVsMetricEmpty(t *testing.T) {
	cf := rank.MustNew([]string{"a.com"})
	list := rank.MustNew([]string{"x.com"})
	res := EvalListVsMetric(list, map[string]struct{}{"a.com": {}}, cf, 1, false)
	if res.N != 0 || res.Jaccard != 0 || res.SpearmanOK {
		t.Errorf("res = %+v", res)
	}
}

func TestMeanListVsMetric(t *testing.T) {
	daily := []ListVsMetric{
		{N: 10, Jaccard: 0.2, Spearman: 0.5, SpearmanOK: true},
		{N: 20, Jaccard: 0.4, Spearman: 0.7, SpearmanOK: true},
	}
	m := MeanListVsMetric(daily)
	if m.N != 15 || math.Abs(m.Jaccard-0.3) > 1e-12 || math.Abs(m.Spearman-0.6) > 1e-12 {
		t.Errorf("mean = %+v", m)
	}
	if got := MeanListVsMetric(nil); got.N != 0 {
		t.Error("empty mean")
	}
}

func TestMeanListVsMetricRoundsN(t *testing.T) {
	// The mean intersection size rounds to the nearest integer rather than
	// truncating: 10,11 averages to 10.5 and reports 11, while 10,10,11
	// averages to 10.33 and reports 10.
	up := []ListVsMetric{{N: 10}, {N: 11}}
	if got := MeanListVsMetric(up).N; got != 11 {
		t.Errorf("mean N of 10,11 = %d, want 11 (round half up)", got)
	}
	down := []ListVsMetric{{N: 10}, {N: 10}, {N: 11}}
	if got := MeanListVsMetric(down).N; got != 10 {
		t.Errorf("mean N of 10,10,11 = %d, want 10", got)
	}
}

func TestAgreedBuckets(t *testing.T) {
	bk := rank.Bucketer{Magnitudes: [4]int{2, 4, 8, 16}}
	m1 := rank.MustNew([]string{"a", "b", "c", "d", "e", "f"})
	m3 := rank.MustNew([]string{"b", "a", "e", "c", "d", "f"})
	agreed := AgreedBuckets(m1, m3, bk)
	// a: m1 rank1 (bucket0), m3 rank2 (bucket0) -> agreed bucket0.
	if b, ok := agreed["a"]; !ok || b != rank.Bucket1K {
		t.Errorf("a: %v %v", b, ok)
	}
	// e: m1 rank5 (bucket2), m3 rank3 (bucket1) -> disagree.
	if _, ok := agreed["e"]; ok {
		t.Error("e should disagree")
	}
}

func TestComputeMovementAndOverrank(t *testing.T) {
	bk := rank.Bucketer{Magnitudes: [4]int{2, 4, 8, 16}}
	agreed := map[string]rank.Bucket{
		"a": rank.Bucket1K,  // CF says head
		"b": rank.Bucket10K, // CF says 2nd bucket
		"c": rank.Bucket1M,  // CF says 4th bucket
	}
	// List ranks: a at 1 (bucket0: correct), c at 2 (bucket0: overranked
	// by 3), b missing (underranked to beyond).
	list := rank.MustNew([]string{"a", "c"})
	mv := ComputeMovement(agreed, list, bk)
	if mv.Matrix[rank.Bucket1K][rank.Bucket1K] != 1 {
		t.Error("a flow")
	}
	if mv.Matrix[rank.Bucket1M][rank.Bucket1K] != 1 {
		t.Error("c flow")
	}
	if mv.Matrix[rank.Bucket10K][rank.BucketBeyond] != 1 {
		t.Error("b flow")
	}

	st := ComputeOverrank(agreed, list, bk, 0)
	if st.N != 2 {
		t.Fatalf("N = %d", st.N)
	}
	if math.Abs(st.OverrankedPct-50) > 1e-9 || math.Abs(st.Overranked2Pct-50) > 1e-9 {
		t.Errorf("overrank = %+v", st)
	}
}

func TestCategoryBiasRecoversPlantedBias(t *testing.T) {
	s := getStudy(t)
	day := s.Cfg.Days - 1
	cfTop := s.Pipeline.MetricRanking(day, cfmetrics.MAllRequests)
	list, _ := s.Alexa.Normalized(day, s.PSL)
	odds, err := CategoryBias(s.World, cfTop, list, s.Bucketer.Magnitudes[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(odds) != world.NumCategories {
		t.Fatalf("rows = %d", len(odds))
	}
	byCat := map[world.Category]CategoryOdds{}
	for _, o := range odds {
		byCat[o.Category] = o
		if o.OddsRatio < 0 || math.IsNaN(o.OddsRatio) {
			t.Fatalf("bad OR for %v: %v", o.Category, o.OddsRatio)
		}
	}
	adult := byCat[world.Adult]
	if adult.Included+adult.Excluded > 5 && adult.OddsRatio >= 1 {
		t.Errorf("Alexa adult OR = %.2f, want < 1 (private-browsing bias)", adult.OddsRatio)
	}
}

func TestCompareListToChromeCell(t *testing.T) {
	list := rank.MustNew([]string{"a", "b", "c", "x"})
	cell := rank.MustNew([]string{"a", "b", "c"})
	res := CompareListToChromeCell(list, cell, 4)
	if res.Jaccard != 1 || !res.SpearmanOK || math.Abs(res.Spearman-1) > 1e-12 {
		t.Errorf("res = %+v", res)
	}
	empty := CompareListToChromeCell(rank.MustNew([]string{"q"}), cell, 1)
	if empty.Jaccard != 0 || empty.SpearmanOK {
		t.Errorf("empty = %+v", empty)
	}
}

// TestStudyEndToEndDeterminism: two studies with identical configs must
// produce byte-identical lists — the repo-level reproducibility guarantee.
func TestStudyEndToEndDeterminism(t *testing.T) {
	build := func() *Study {
		s := NewStudy(Config{Seed: 404, NumSites: 800, NumClients: 200, Days: 3})
		s.Run()
		return s
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	for i, la := range a.Lists() {
		lb := b.Lists()[i]
		ra, rb := la.Raw(2), lb.Raw(2)
		if ra.Len() != rb.Len() {
			t.Fatalf("%s: lengths differ (%d vs %d)", la.Name(), ra.Len(), rb.Len())
		}
		for j := 1; j <= ra.Len(); j++ {
			if ra.At(j) != rb.At(j) {
				t.Fatalf("%s diverges at rank %d: %q vs %q", la.Name(), j, ra.At(j), rb.At(j))
			}
		}
	}
	for d := 0; d < 3; d++ {
		for _, m := range cfmetrics.AllMetrics() {
			la := a.Pipeline.DayList(d, m.Combo())
			lb := b.Pipeline.DayList(d, m.Combo())
			if len(la) != len(lb) {
				t.Fatalf("metric %v day %d lengths differ", m, d)
			}
			for j := range la {
				if la[j] != lb[j] {
					t.Fatalf("metric %v day %d diverges at %d", m, d, j)
				}
			}
		}
	}
}
