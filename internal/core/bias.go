package core

import (
	"math"
	"toplists/internal/rank"
	"toplists/internal/stats"
	"toplists/internal/world"
)

// CategoryOdds is one Table 3 cell: the odds that a category's websites are
// included by a top list, relative to all other categories.
type CategoryOdds struct {
	Category world.Category
	// OddsRatio is exp(beta) of a univariate logistic regression of list
	// inclusion on category membership.
	OddsRatio float64
	// PValue is the Bonferroni-adjusted Wald p-value (x NumCategories).
	PValue float64
	// Significant reports p < 0.01 after the correction, the paper's bar.
	Significant bool
	// Included/Excluded are the raw contingency counts for the category.
	Included, Excluded int
}

// CategoryBias runs the Section 6.4 analysis for one list: the universe is
// the Cloudflare top-K domains (by the all-requests metric on the chosen
// day), the outcome is membership in the list, and each category is
// regressed against all other domains as control.
func CategoryBias(w *world.World, cfTop *rank.Ranking, list *rank.Ranking, topK int) ([]CategoryOdds, error) {
	universe := cfTop.Top(topK)
	n := universe.Len()
	cats := make([]world.Category, n)
	included := make([]bool, n)
	if interned := cfTop.Table() == w.Interner() && list.Table() == w.Interner(); interned {
		// Site domains are interned in true-rank order, so a universe
		// entry's ID resolves to its site without touching the name string.
		for i := 1; i <= n; i++ {
			id := universe.IDAt(i)
			site, ok := w.SiteOfID(id)
			if !ok {
				continue
			}
			cats[i-1] = w.Site(site).Category
			included[i-1] = list.ContainsID(id)
		}
	} else {
		for i := 1; i <= n; i++ {
			name := universe.At(i)
			id, ok := w.ByDomain(name)
			if !ok {
				continue
			}
			cats[i-1] = w.Site(id).Category
			included[i-1] = list.Contains(name)
		}
	}

	out := make([]CategoryOdds, 0, world.NumCategories)
	feat := make([][]float64, n)
	for i := range feat {
		feat[i] = []float64{0}
	}
	for _, cat := range world.AllCategories() {
		var a, b, c, d int // exposed-in, exposed-out, control-in, control-out
		for i := 0; i < n; i++ {
			exposed := cats[i] == cat
			feat[i][0] = 0
			if exposed {
				feat[i][0] = 1
			}
			switch {
			case exposed && included[i]:
				a++
			case exposed && !included[i]:
				b++
			case included[i]:
				c++
			default:
				d++
			}
		}
		odds := CategoryOdds{Category: cat, Included: a, Excluded: b}
		switch {
		case a+b == 0:
			// No sites of this category in the universe; report a neutral,
			// insignificant row.
			odds.OddsRatio = 1
			odds.PValue = 1
		case a == 0 || b == 0 || c == 0 || d == 0:
			// Perfect separation: IRLS diverges, so use the
			// Haldane-Anscombe-corrected 2x2 odds ratio with its Wald
			// standard error instead.
			odds.OddsRatio = stats.OddsRatio2x2(a, b, c, d)
			se := math.Sqrt(1/(float64(a)+0.5) + 1/(float64(b)+0.5) +
				1/(float64(c)+0.5) + 1/(float64(d)+0.5))
			z := math.Log(odds.OddsRatio) / se
			odds.PValue = stats.Bonferroni(stats.TwoSidedP(z), world.NumCategories)
			odds.Significant = odds.PValue < 0.01
		default:
			res, err := stats.Logit(feat, included)
			if err != nil {
				odds.OddsRatio = stats.OddsRatio2x2(a, b, c, d)
				odds.PValue = 1
				break
			}
			odds.OddsRatio = res.OddsRatio(1)
			odds.PValue = stats.Bonferroni(res.PValue(1), world.NumCategories)
			odds.Significant = odds.PValue < 0.01
		}
		out = append(out, odds)
	}
	return out, nil
}

// CellComparison is one (country, platform) comparison of a list against
// Chrome telemetry, used by the platform (Figure 4) and country (Figure 7)
// bias analyses.
type CellComparison struct {
	Country  world.Country
	Platform world.Platform
	Jaccard  float64
	Spearman float64
	// SpearmanOK is false when the intersection was too small.
	SpearmanOK bool
}

// CompareListToChromeCell evaluates a normalized list against the Chrome
// telemetry ranking for one (country, platform) cell at magnitude k,
// comparing the list's intersection with the cell's observed domains
// against the cell's own top sites — the same construction as the
// Cloudflare comparison, with Chrome as the reference.
func CompareListToChromeCell(list *rank.Ranking, cell *rank.Ranking, k int) CellComparison {
	var out CellComparison
	top := list.Top(k)
	interned := list.Table() == cell.Table()
	var inCell *rank.Ranking
	if interned {
		inCell = top.FilterIDs(cell.ContainsID)
	} else {
		inCell = top.Filter(cell.Contains)
	}
	n := inCell.Len()
	if n == 0 {
		return out
	}
	if n > cell.Len() {
		n = cell.Len()
	}
	cellTop := cell.Top(n)
	var xs, ys []float64
	if interned {
		out.Jaccard = stats.JaccardIDs(inCell.TopSetIDs(n), cellTop.TopSetIDs(n))
		for i := 1; i <= inCell.Len(); i++ {
			if r, ok := cellTop.RankOfID(inCell.IDAt(i)); ok {
				xs = append(xs, float64(i))
				ys = append(ys, float64(r))
			}
		}
	} else {
		out.Jaccard = stats.Jaccard(inCell.TopSet(n), cellTop.TopSet(n))
		for i := 1; i <= inCell.Len(); i++ {
			if r, ok := cellTop.RankOf(inCell.At(i)); ok {
				xs = append(xs, float64(i))
				ys = append(ys, float64(r))
			}
		}
	}
	if rs, err := stats.Spearman(xs, ys); err == nil {
		out.Spearman = rs
		out.SpearmanOK = true
	}
	return out
}
