package linkgraph

import (
	"testing"

	"toplists/internal/simrand"
	"toplists/internal/world"
)

func buildTestGraph(t testing.TB, seed uint64) (*world.World, *Graph) {
	t.Helper()
	w := world.Generate(world.Config{Seed: seed, NumSites: 4000})
	g := Build(w, Config{}, simrand.New(seed).Derive("linkgraph"))
	return w, g
}

func TestBuildDeterministic(t *testing.T) {
	_, g1 := buildTestGraph(t, 5)
	_, g2 := buildTestGraph(t, 5)
	if g1.Edges() != g2.Edges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.Edges(), g2.Edges())
	}
	for i := 0; i < g1.NumSites(); i++ {
		if g1.RefDomains(int32(i)) != g2.RefDomains(int32(i)) {
			t.Fatalf("refdomains differ at %d", i)
		}
	}
}

func TestGraphNonTrivial(t *testing.T) {
	_, g := buildTestGraph(t, 6)
	if g.Edges() < g.NumSites() {
		t.Fatalf("suspiciously few edges: %d", g.Edges())
	}
	withLinks := 0
	for i := 0; i < g.NumSites(); i++ {
		if g.RefDomains(int32(i)) > 0 {
			withLinks++
		}
		if g.RefSubnets(int32(i)) > g.RefDomains(int32(i)) {
			t.Fatalf("site %d: subnets %d > domains %d", i,
				g.RefSubnets(int32(i)), g.RefDomains(int32(i)))
		}
	}
	if withLinks < g.NumSites()/10 {
		t.Fatalf("only %d sites have any backlinks", withLinks)
	}
}

func TestPopularSitesGetMoreLinks(t *testing.T) {
	_, g := buildTestGraph(t, 7)
	n := g.NumSites()
	head, tail := 0, 0
	for i := 0; i < n/10; i++ {
		head += g.RefDomains(int32(i))
	}
	for i := n - n/10; i < n; i++ {
		tail += g.RefDomains(int32(i))
	}
	if head <= tail*2 {
		t.Errorf("head links %d not >> tail links %d", head, tail)
	}
}

// TestCategoryLinkBias verifies the planted mechanism: government sites
// attract far more backlinks per unit popularity than adult sites.
func TestCategoryLinkBias(t *testing.T) {
	w := world.Generate(world.Config{Seed: 9, NumSites: 12000})
	g := Build(w, Config{}, simrand.New(9).Derive("linkgraph"))
	perCat := make(map[world.Category][2]float64) // links, weight
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		v := perCat[s.Category]
		v[0] += float64(g.RefDomains(s.ID))
		v[1] += s.Weight
		perCat[s.Category] = v
	}
	gov := perCat[world.Government]
	adult := perCat[world.Adult]
	if gov[1] == 0 || adult[1] == 0 {
		t.Skip("missing category at this scale")
	}
	govRate := gov[0] / gov[1]
	adultRate := adult[0] / adult[1]
	if govRate < 5*adultRate {
		t.Errorf("gov links/weight %.1f not >> adult %.1f", govRate, adultRate)
	}
}

func TestNonPublicSitesUnlinked(t *testing.T) {
	w, g := buildTestGraph(t, 11)
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		if s.NonPublic && g.RefDomains(s.ID) != 0 {
			t.Fatalf("non-public site %s has %d backlinks", s.Domain, g.RefDomains(s.ID))
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	w := world.Generate(world.Config{Seed: 2, NumSites: 10000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(w, Config{}, simrand.New(2).Derive("linkgraph"))
	}
}
