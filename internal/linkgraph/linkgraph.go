// Package linkgraph generates the synthetic hyperlink graph over the
// world's websites. It is the substrate the Majestic provider ranks from:
// Majestic orders sites by backlink counts, a signal that correlates only
// loosely with visits ("there is little evidence to support that the number
// of links to a website correlates strongly with page views", Section 5.1).
//
// The graph is built with preferential attachment on a *link attractiveness*
// score: a sublinear function of true popularity multiplied by the
// category's link propensity. Government, news, and academic sites
// accumulate far more links than their traffic alone would earn; adult,
// gambling, and parked domains accumulate almost none. Those are exactly
// the biases Table 3 finds in the Majestic list.
package linkgraph

import (
	"math"

	"toplists/internal/simrand"
	"toplists/internal/world"
)

// Config parameterizes graph generation.
type Config struct {
	// MeanOutLinks is the mean number of external links per source site
	// (default 12).
	MeanOutLinks float64
	// PopularityExponent is the exponent applied to true weight when
	// computing link attractiveness (default 0.4 — deliberately
	// sublinear, which decorrelates backlinks from traffic).
	PopularityExponent float64
	// AttractNoise is the log-sigma of per-site multiplicative noise on
	// link attractiveness (default 1.2): which sites get linked is only
	// loosely coupled to which get visited.
	AttractNoise float64
}

func (c Config) withDefaults() Config {
	if c.MeanOutLinks == 0 {
		c.MeanOutLinks = 12
	}
	if c.PopularityExponent == 0 {
		c.PopularityExponent = 0.4
	}
	if c.AttractNoise == 0 {
		c.AttractNoise = 1.2
	}
	return c
}

// Graph holds the generated backlink structure, aggregated to the counts
// the Majestic provider needs.
type Graph struct {
	// refDomains[i] is the number of distinct referring registrable
	// domains linking to site i.
	refDomains []int32
	// refSubnets[i] approximates referring /24 diversity (Majestic's
	// secondary signal); in the simulation one source domain maps to one
	// subnet with occasional shared hosting.
	refSubnets []int32
	edges      int
}

// Build generates the link graph for a world. Deterministic in
// (world seed, cfg).
func Build(w *world.World, cfg Config, src *simrand.Source) *Graph {
	cfg = cfg.withDefaults()
	n := w.NumSites()
	g := &Graph{
		refDomains: make([]int32, n),
		refSubnets: make([]int32, n),
	}

	attract := make([]float64, n)
	noiseSrc := src.Derive("attract")
	for i := 0; i < n; i++ {
		s := w.Site(int32(i))
		if s.NonPublic {
			// Non-public sites are not linked from the public web by
			// definition; they attract no backlinks.
			attract[i] = 0
			continue
		}
		attract[i] = math.Pow(s.Weight, cfg.PopularityExponent) *
			s.Category.Info().LinkPropensity *
			noiseSrc.At(i).LogNormal(0, cfg.AttractNoise)
	}
	// Guard against a degenerate all-zero world (tiny configs).
	var total float64
	for _, a := range attract {
		total += a
	}
	if total == 0 {
		return g
	}
	alias := simrand.NewAlias(attract)

	// seen tracks (source, target) pairs so a source domain counts once per
	// target, like distinct referring domains do.
	seen := make(map[int64]struct{}, n*int(cfg.MeanOutLinks))
	linkSrc := src.Derive("links")
	for source := 0; source < n; source++ {
		ss := linkSrc.At(source)
		// Popular sites host more pages and therefore more outbound links.
		// Non-public sites still link out; they just aren't linked to.
		out := ss.Poisson(cfg.MeanOutLinks * (0.5 + 2*headness(source, n)))
		for e := 0; e < out; e++ {
			target := alias.Draw(ss)
			if target == source {
				continue
			}
			key := int64(source)*int64(n) + int64(target)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			g.refDomains[target]++
			// ~85% of distinct referring domains sit on distinct /24s;
			// shared hosting collapses the rest.
			if ss.Bernoulli(0.85) {
				g.refSubnets[target]++
			}
			g.edges++
		}
	}
	return g
}

func headness(i, n int) float64 {
	return 1 / (1 + float64(i)/(0.01*float64(n)+1))
}

// RefDomains returns the distinct referring-domain count for a site.
func (g *Graph) RefDomains(siteID int32) int { return int(g.refDomains[siteID]) }

// RefSubnets returns the referring-subnet count for a site.
func (g *Graph) RefSubnets(siteID int32) int { return int(g.refSubnets[siteID]) }

// Edges returns the total number of distinct links in the graph.
func (g *Graph) Edges() int { return g.edges }

// NumSites returns the number of nodes.
func (g *Graph) NumSites() int { return len(g.refDomains) }
