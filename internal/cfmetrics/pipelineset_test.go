package cfmetrics

import (
	"bytes"
	"errors"
	"testing"

	"toplists/internal/snapshot"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

func multiEdgeWorld(t testing.TB, vantages, backends int) *world.World {
	t.Helper()
	return world.Generate(world.Config{
		Seed:     21,
		NumSites: 2000,
		Backends: backends,
		Vantages: world.DefaultVantages(vantages),
	})
}

func runPipelineSet(t testing.TB, vantages, backends, days int) (*world.World, *PipelineSet) {
	t.Helper()
	w := multiEdgeWorld(t, vantages, backends)
	ps := NewPipelineSet(w, AllCombos(), MetricCombos(), nil)
	e := traffic.NewEngine(w, traffic.Config{Seed: 22, NumClients: 500, Days: days})
	e.AddSink(ps.Primary())
	for _, p := range ps.Extras() {
		e.AddSink(p)
	}
	e.Run()
	return w, ps
}

func TestPipelineSetShape(t *testing.T) {
	w := multiEdgeWorld(t, 3, 2)
	ps := NewPipelineSet(w, AllCombos(), MetricCombos(), nil)
	if len(ps.Vantages()) != 3 || len(ps.Backends()) != 2 {
		t.Fatalf("grid is %dx%d, want 3x2", len(ps.Vantages()), len(ps.Backends()))
	}
	if got := len(ps.Extras()); got != 5 {
		t.Fatalf("extras = %d, want 5", got)
	}
	if ps.Primary() != ps.At(0, 0) {
		t.Fatal("primary is not grid (0,0)")
	}
	if ps.Primary().Backend() != world.BackendCdnflare {
		t.Fatalf("primary backend = %v", ps.Primary().Backend())
	}
	if ps.Primary().Vantage().Name != "global" {
		t.Fatalf("primary vantage = %q", ps.Primary().Vantage().Name)
	}
	if p, ok := ps.Lookup("eu-central", "edgecast"); !ok || p.Vantage().Name != "eu-central" || p.Backend() != world.BackendEdgecast {
		t.Fatalf("Lookup(eu-central, edgecast) = %v, %v", p, ok)
	}
	if _, ok := ps.Lookup("nope", "edgecast"); ok {
		t.Fatal("Lookup accepted unknown vantage")
	}
	if _, ok := ps.Lookup("global", "akamai"); ok {
		t.Fatal("Lookup accepted undeployed backend")
	}
}

// TestPipelineSetPrimaryMatchesSingleEdge pins the refactor's core
// promise: the grid's primary pipeline produces exactly the lists the
// original single-edge pipeline did, even when extras run alongside it.
func TestPipelineSetPrimaryMatchesSingleEdge(t *testing.T) {
	const days = 2
	_, single := runPipeline(t, AllCombos(), days)
	_, ps := runPipelineSet(t, 3, 2, days)
	multi := ps.Primary()
	if single.NumDays() != multi.NumDays() {
		t.Fatalf("days: %d vs %d", single.NumDays(), multi.NumDays())
	}
	for d := 0; d < days; d++ {
		for _, c := range AllCombos() {
			a, b := single.DayList(d, c), multi.DayList(d, c)
			if len(a) != len(b) {
				t.Fatalf("day %d combo %v: %d vs %d sites", d, c, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("day %d combo %v rank %d: site %d vs %d", d, c, i, a[i], b[i])
				}
			}
		}
	}
}

// TestPipelineSetVantagesDiverge checks non-transparent vantages actually
// lose events: a regional vantage's all-requests day total must be below
// the transparent global vantage's.
func TestPipelineSetVantagesDiverge(t *testing.T) {
	_, ps := runPipelineSet(t, 3, 2, 1)
	c := MAllRequests.Combo()
	global := ps.At(0, 0)
	for vi := 1; vi < len(ps.Vantages()); vi++ {
		regional := ps.At(vi, 0)
		if v := regional.Vantage(); v.Transparent() {
			t.Fatalf("vantage %q should not be transparent", regional.Vantage().Name)
		}
		g, r := len(global.DayList(0, c)), len(regional.DayList(0, c))
		if r == 0 {
			t.Fatalf("vantage %q saw nothing", regional.Vantage().Name)
		}
		if r > g {
			t.Fatalf("vantage %q ranked %d sites, global ranked %d", regional.Vantage().Name, r, g)
		}
	}
}

func setSnap(t *testing.T, ps *PipelineSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ps.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPipelineSetSnapshotRoundTrip(t *testing.T) {
	w, ps := runPipelineSet(t, 3, 2, 2)
	snap := setSnap(t, ps)

	ps2 := NewPipelineSet(w, AllCombos(), MetricCombos(), nil)
	if err := ps2.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, setSnap(t, ps2)) {
		t.Fatal("restored set re-serializes differently")
	}
	for i, p := range ps.Extras() {
		q := ps2.Extras()[i]
		if p.NumDays() != q.NumDays() {
			t.Fatalf("extra %d days: %d vs %d", i, p.NumDays(), q.NumDays())
		}
		for d := 0; d < p.NumDays(); d++ {
			for _, c := range MetricCombos() {
				a, b := p.DayList(d, c), q.DayList(d, c)
				if len(a) != len(b) {
					t.Fatalf("extra %d day %d combo %v: %d vs %d", i, d, c, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("extra %d day %d combo %v rank %d differs", i, d, c, j)
					}
				}
			}
		}
	}
}

func TestPipelineSetRestoreRejectsDamage(t *testing.T) {
	w, ps := runPipelineSet(t, 3, 2, 1)
	snap := setSnap(t, ps)

	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
			ps2 := NewPipelineSet(w, AllCombos(), MetricCombos(), nil)
			if err := ps2.Restore(bytes.NewReader(snap[:n])); err == nil {
				t.Fatalf("restore accepted %d/%d bytes", n, len(snap))
			}
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte{}, snap...)
		bad[0] = pipelineSetSnapVersion + 1
		ps2 := NewPipelineSet(w, AllCombos(), MetricCombos(), nil)
		if err := ps2.Restore(bytes.NewReader(bad)); !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("version skew error = %v, want ErrVersion", err)
		}
	})
	t.Run("shape-mismatch", func(t *testing.T) {
		w2 := multiEdgeWorld(t, 2, 2)
		ps2 := NewPipelineSet(w2, AllCombos(), MetricCombos(), nil)
		if err := ps2.Restore(bytes.NewReader(snap)); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("shape mismatch error = %v, want ErrCorrupt", err)
		}
	})
}

func TestMetricKeys(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range AllMetrics() {
		k := m.Key()
		if k == "" || seen[k] {
			t.Fatalf("metric %v key %q empty or duplicated", m, k)
		}
		seen[k] = true
		got, ok := MetricByKey(k)
		if !ok || got != m {
			t.Fatalf("MetricByKey(%q) = %v, %v", k, got, ok)
		}
	}
	if _, ok := MetricByKey("bogus"); ok {
		t.Fatal("MetricByKey accepted unknown key")
	}
}
