package cfmetrics

import (
	"testing"

	"toplists/internal/sketch"
	"toplists/internal/stats"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// TestHLLPipelineApproximatesExact verifies the large-scale configuration:
// a pipeline using HyperLogLog distinct counters produces nearly the same
// ranked lists as exact counting.
func TestHLLPipelineApproximatesExact(t *testing.T) {
	w := world.Generate(world.Config{Seed: 61, NumSites: 2000})
	exact := NewPipeline(w, MetricCombos(), nil)
	approx := NewPipeline(w, MetricCombos(), sketch.HLLFactory(14))

	e := traffic.NewEngine(w, traffic.Config{Seed: 62, NumClients: 800, Days: 2})
	e.AddSink(exact)
	e.AddSink(approx)
	e.Run()

	for _, m := range []Metric{MUniqueIP, MUniqueIPRoot, MUniqueIPBrowsers} {
		a := exact.MetricRanking(0, m)
		b := approx.MetricRanking(0, m)
		k := 200
		if k > a.Len() {
			k = a.Len()
		}
		jj := stats.Jaccard(a.TopSet(k), b.TopSet(k))
		if jj < 0.9 {
			t.Errorf("%v: HLL vs exact top-%d Jaccard = %.3f, want >= 0.9", m, k, jj)
		}
	}
	// Count-based metrics are unaffected by the distinct-counter choice.
	for _, m := range []Metric{MAllRequests, MRootRequests} {
		a := exact.DayList(0, m.Combo())
		b := approx.DayList(0, m.Combo())
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", m)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: count metric diverged at %d", m, i)
			}
		}
	}
}
