package cfmetrics

import (
	"math"

	"toplists/internal/sketch"
	"toplists/internal/traffic"
)

// Sketch mode. With SetSketch the pipeline stops keeping exact per-site
// state and aggregates through bounded mergeable summaries instead: each
// logical traffic shard accumulates, per tracked combo, a space-saving
// candidate set plus a count-min frequency sketch (count aggregations) or a
// space-saving set with per-candidate HLLs (unique aggregations). The day
// barrier merges shard summaries in canonical order; bot batches accumulate
// in a dedicated summary that EndDay merges last, so every summary's adds
// precede its merges and the space-saving N/k bounds hold.
//
// The published day list is the merged candidate set ranked by
// min(space-saving count, count-min estimate) — both are overestimates, so
// the minimum is the tighter one and is exact whenever the summaries never
// evicted — or by the per-candidate HLL estimate rounded to an integer, so
// small-count ties re-form exactly as on the exact path and the shared
// deterministic tiebreak applies to the same groups.

// pipelineShard is the bounded accumulation state for one (logical shard,
// pipeline) pair, and doubles as the pipeline's own day/bot state.
type pipelineShard struct {
	p   *Pipeline
	ss  []*sketch.SpaceSaving  // per combo, count aggregations
	cm  []*sketch.CountMin     // per combo, count aggregations
	tkd []*sketch.TopKDistinct // per combo, unique aggregations
}

func (p *Pipeline) newPipelineShard() *pipelineShard {
	sh := &pipelineShard{
		p:   p,
		ss:  make([]*sketch.SpaceSaving, len(p.combos)),
		cm:  make([]*sketch.CountMin, len(p.combos)),
		tkd: make([]*sketch.TopKDistinct, len(p.combos)),
	}
	for i, c := range p.combos {
		if c.Agg == AggCount {
			sh.ss[i] = p.sk.NewTopK()
			sh.cm[i] = p.sk.NewCountMin()
		} else {
			sh.tkd[i] = p.sk.NewTopKDistinct()
		}
	}
	return sh
}

// OnPageLoad implements traffic.ShardState.
func (sh *pipelineShard) OnPageLoad(pl *traffic.PageLoad) {
	if !sh.p.observes[pl.Site] || !sh.p.seesPage(pl) {
		return
	}
	site := uint64(uint32(pl.Site))
	for i, c := range sh.p.combos {
		n := filterContribution(c.Filter, pl)
		if n <= 0 {
			continue
		}
		switch c.Agg {
		case AggCount:
			sh.ss[i].Add(site, uint64(n))
			sh.cm[i].Add(site, uint64(n))
		case AggUniqueIP:
			sh.tkd[i].Add(site, uint64(pl.IP))
		default:
			sh.tkd[i].Add(site, ipua(pl.IP, pl.Client.UA))
		}
	}
}

// OnDNSQuery implements traffic.ShardState; the log pipeline sees HTTP
// traffic only.
func (sh *pipelineShard) OnDNSQuery(*traffic.DNSQuery) {}

// onBotBatch folds a bot batch into the shard, mirroring the exact path's
// contribution rules.
func (sh *pipelineShard) onBotBatch(bb *traffic.BotBatch) {
	if !sh.p.observes[bb.Site] || !sh.p.seesBot(bb) {
		return
	}
	site := uint64(uint32(bb.Site))
	for i, c := range sh.p.combos {
		n := botContribution(c.Filter, bb)
		if n <= 0 {
			continue
		}
		switch c.Agg {
		case AggCount:
			sh.ss[i].Add(site, uint64(n))
			sh.cm[i].Add(site, uint64(n))
		default:
			k := len(bb.IPs) * n / bb.Requests
			if k < 1 {
				k = 1
			}
			for _, ip := range bb.IPs[:k] {
				key := uint64(ip)
				if c.Agg == AggUniqueIPUA {
					key = ipua(ip, botUA)
				}
				sh.tkd[i].Add(site, key)
			}
		}
	}
}

// merge folds another shard's summaries into this one.
func (sh *pipelineShard) merge(o *pipelineShard) {
	for i := range sh.p.combos {
		if sh.ss[i] != nil {
			sh.ss[i].Merge(o.ss[i], nil)
			sh.cm[i].Merge(o.cm[i])
		} else {
			sh.tkd[i].Merge(o.tkd[i])
		}
	}
}

// Reset implements traffic.ShardState.
func (sh *pipelineShard) Reset() {
	for i := range sh.p.combos {
		if sh.ss[i] != nil {
			sh.ss[i].Reset()
			sh.cm[i].Reset()
		} else {
			sh.tkd[i].Reset()
		}
	}
}

// memBytes returns the shard's logical footprint.
func (sh *pipelineShard) memBytes() int {
	var n int
	for i := range sh.p.combos {
		if sh.ss[i] != nil {
			n += sh.ss[i].MemBytes() + sh.cm[i].MemBytes()
		} else {
			n += sh.tkd[i].MemBytes()
		}
	}
	return n
}

// SetSketch switches the pipeline to sketch-backed aggregation. Must be
// called before the simulation starts; the exact per-site state is released.
func (p *Pipeline) SetSketch(cfg sketch.Config) {
	if !cfg.Enabled {
		return
	}
	p.sk = cfg.WithDefaults()
	p.counts = nil
	p.distinct = nil
	p.dayState = p.newPipelineShard()
	p.botState = p.newPipelineShard()
}

// SketchEnabled reports whether the pipeline aggregates through sketches.
func (p *Pipeline) SketchEnabled() bool { return p.sk.Enabled }

// NewShardState implements traffic.ShardedSink.
func (p *Pipeline) NewShardState() traffic.ShardState {
	return p.newPipelineShard()
}

// MergeShard implements traffic.ShardedSink: fold one logical shard's
// summaries into the day state. Called in ascending shard order.
func (p *Pipeline) MergeShard(st traffic.ShardState) {
	sh := st.(*pipelineShard)
	p.shardMem += sh.memBytes()
	p.dayState.merge(sh)
}

// endDaySketch freezes the day's ranked lists from the merged summaries.
func (p *Pipeline) endDaySketch(day int) {
	p.dayState.merge(p.botState)

	lists := make([][]int32, len(p.combos))
	var entries []sketch.Entry
	for i, c := range p.combos {
		entries = entries[:0]
		var scored []scoredSite
		if c.Agg == AggCount {
			entries = p.dayState.ss[i].Entries(entries)
			for _, e := range entries {
				v := e.Count
				if est := p.dayState.cm[i].Estimate(e.Key); est < v {
					v = est
				}
				if v > 0 {
					scored = append(scored, scoredSite{int32(uint32(e.Key)), float64(v)})
				}
			}
			if b := p.dayState.cm[i].ErrorBound(); b > p.errBound {
				p.errBound = b
			}
		} else {
			entries = p.dayState.tkd[i].Entries(entries)
			for _, e := range entries {
				// Round the distinct estimate so equal-true-count tie
				// groups re-form and the shared tiebreak orders them
				// exactly as the exact path would.
				if v := math.Round(p.dayState.tkd[i].DistinctAt(e.Slot)); v > 0 {
					scored = append(scored, scoredSite{int32(uint32(e.Key)), v})
				}
			}
		}
		lists[i] = rankScored(scored)
	}
	p.days = append(p.days, lists)

	if m := p.shardMem + p.dayState.memBytes() + p.botState.memBytes(); m > p.memPeak {
		p.memPeak = m
	}
	p.shardMem = 0
	p.dayState.Reset()
	p.botState.Reset()
}

// SketchMemPeak returns the high-water logical footprint of all sketch
// state that met at a day barrier (shard states at merge time plus the
// day and bot summaries). A pure function of the configuration and seed,
// safe for deterministic gauges.
func (p *Pipeline) SketchMemPeak() int { return p.memPeak }

// SketchErrorBound returns the largest count-min error bound (ceil(e·N/w))
// any day's merged frequency sketch reached.
func (p *Pipeline) SketchErrorBound() uint64 { return p.errBound }
