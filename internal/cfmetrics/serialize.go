package cfmetrics

import (
	"fmt"
	"io"

	"toplists/internal/snapshot"
)

const pipelineSnapVersion = 1

// Snapshot writes the pipeline's cross-day state: the per-day ranked site
// lists for every tracked combo, plus the sketch error bound and memory
// peak. Count and distinct accumulators are day-scoped (reset each
// BeginDay) so a day-boundary checkpoint never has them in flight.
func (p *Pipeline) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(pipelineSnapVersion)
	e.Uvarint(uint64(len(p.combos)))
	e.Uvarint(uint64(len(p.days)))
	for _, day := range p.days {
		if len(day) != len(p.combos) {
			return fmt.Errorf("cfmetrics: day has %d combo lists, tracking %d", len(day), len(p.combos))
		}
		for _, ids := range day {
			e.Uvarint(uint64(len(ids)))
			for _, id := range ids {
				e.Varint(int64(id))
			}
		}
	}
	e.Uvarint(p.errBound)
	e.Int(p.memPeak)
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces the pipeline's cross-day state from a Snapshot
// payload. The snapshot must track exactly the combos this pipeline was
// built with.
func (p *Pipeline) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	ver := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if ver != pipelineSnapVersion {
		return fmt.Errorf("%w: Pipeline payload v%d, this build reads v%d", snapshot.ErrVersion, ver, pipelineSnapVersion)
	}
	// nCombos cross-checks the pipeline's tracking config; it is not an
	// item count to be read from the payload, so no Len plausibility guard.
	nCombos := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if nCombos != len(p.combos) {
		return fmt.Errorf("%w: Pipeline tracks %d combos, snapshot has %d", snapshot.ErrCorrupt, len(p.combos), nCombos)
	}
	nDays := d.Len(1)
	numSites := int64(p.w.NumSites())
	days := make([][][]int32, 0, nDays)
	for i := 0; i < nDays; i++ {
		day := make([][]int32, nCombos)
		for c := 0; c < nCombos; c++ {
			n := d.Len(1)
			ids := make([]int32, n)
			for j := 0; j < n; j++ {
				v := d.Varint()
				if d.Err() != nil {
					return d.Err()
				}
				if v < 0 || v >= numSites {
					return fmt.Errorf("%w: Pipeline day %d combo %d site %d out of range %d", snapshot.ErrCorrupt, i, c, v, numSites)
				}
				ids[j] = int32(v)
			}
			day[c] = ids
		}
		days = append(days, day)
	}
	errBound := d.Uvarint()
	memPeak := d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	p.days = days
	p.errBound = errBound
	p.memPeak = memPeak
	return nil
}
