package cfmetrics

import (
	"testing"

	"toplists/internal/stats"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

func runPipeline(t testing.TB, combos []Combo, days int) (*world.World, *Pipeline) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 21, NumSites: 2000})
	e := traffic.NewEngine(w, traffic.Config{Seed: 22, NumClients: 500, Days: days})
	p := NewPipeline(w, combos, nil)
	e.AddSink(p)
	e.Run()
	return w, p
}

func TestComboEnumeration(t *testing.T) {
	combos := AllCombos()
	if len(combos) != 21 {
		t.Fatalf("len(AllCombos) = %d", len(combos))
	}
	seen := map[Combo]bool{}
	for _, c := range combos {
		if seen[c] {
			t.Fatalf("duplicate combo %v", c)
		}
		seen[c] = true
		if c.String() == "" {
			t.Fatal("empty combo name")
		}
	}
	if len(AllMetrics()) != 7 || len(MetricCombos()) != 7 {
		t.Fatal("canonical metric count")
	}
	mseen := map[Combo]bool{}
	for _, m := range AllMetrics() {
		c := m.Combo()
		if mseen[c] {
			t.Fatalf("metric combo %v duplicated", c)
		}
		mseen[c] = true
		if m.String() == "" {
			t.Fatal("empty metric name")
		}
	}
}

func TestRequestBased(t *testing.T) {
	wantTrue := []Metric{MAllRequests, MTLSHandshakes, MRootRequests, MTopBrowserRequests}
	wantFalse := []Metric{MUniqueIP, MUniqueIPRoot, MUniqueIPBrowsers}
	for _, m := range wantTrue {
		if !m.RequestBased() {
			t.Errorf("%v should be request-based", m)
		}
	}
	for _, m := range wantFalse {
		if m.RequestBased() {
			t.Errorf("%v should not be request-based", m)
		}
	}
}

func TestPipelineOnlySeesCloudflare(t *testing.T) {
	w, p := runPipeline(t, MetricCombos(), 2)
	for d := 0; d < p.NumDays(); d++ {
		for _, m := range AllMetrics() {
			for _, id := range p.DayList(d, m.Combo()) {
				if !w.Site(id).Cloudflare() {
					t.Fatalf("day %d metric %v ranked non-CF site %d", d, m, id)
				}
			}
		}
	}
}

func TestPipelineProducesDailyLists(t *testing.T) {
	_, p := runPipeline(t, MetricCombos(), 3)
	if p.NumDays() != 3 {
		t.Fatalf("NumDays = %d", p.NumDays())
	}
	for _, m := range AllMetrics() {
		ids := p.DayList(0, m.Combo())
		if len(ids) == 0 {
			t.Fatalf("metric %v produced empty list", m)
		}
		seen := map[int32]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("metric %v duplicate site", m)
			}
			seen[id] = true
		}
	}
}

func TestRootLoadsBoundRequests(t *testing.T) {
	// Section 3.4: root loads and all requests bookend page loads, so the
	// all-requests score must dominate root loads for every site. Compare
	// list membership head: the top list by requests should rank more
	// total volume than root loads.
	_, p := runPipeline(t, []Combo{
		{FilterAll, AggCount}, {FilterRoot, AggCount},
	}, 1)
	all := p.DayList(0, Combo{FilterAll, AggCount})
	root := p.DayList(0, Combo{FilterRoot, AggCount})
	if len(root) > len(all) {
		t.Fatalf("more sites with root loads (%d) than with requests (%d)", len(root), len(all))
	}
}

func TestMetricsCorrelatedButDistinct(t *testing.T) {
	w, p := runPipeline(t, MetricCombos(), 1)
	_ = w
	all := p.MetricRanking(0, MAllRequests)
	root := p.MetricRanking(0, MRootRequests)
	// They must overlap substantially but not be identical (Figure 1).
	jj := stats.JaccardSlices(topN(all.Names(), 200), topN(root.Names(), 200))
	if jj < 0.1 {
		t.Errorf("all vs root Jaccard = %.3f, too low", jj)
	}
	if jj > 0.99 {
		t.Errorf("all vs root Jaccard = %.3f, suspiciously identical", jj)
	}
}

func topN(names []string, n int) []string {
	if n > len(names) {
		n = len(names)
	}
	return names[:n]
}

func TestDayRankingMatchesDayList(t *testing.T) {
	w, p := runPipeline(t, MetricCombos(), 1)
	ids := p.DayList(0, MAllRequests.Combo())
	r := p.MetricRanking(0, MAllRequests)
	if r.Len() != len(ids) {
		t.Fatal("length mismatch")
	}
	for i, id := range ids {
		if r.At(i+1) != w.Site(id).Domain {
			t.Fatalf("rank %d: %q != %q", i+1, r.At(i+1), w.Site(id).Domain)
		}
	}
}

func TestUntrackedComboPanics(t *testing.T) {
	_, p := runPipeline(t, []Combo{{FilterAll, AggCount}}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for untracked combo")
		}
	}()
	p.DayList(0, Combo{FilterTLS, AggCount})
}

func TestUniqueIPLessThanRequests(t *testing.T) {
	w, p := runPipeline(t, []Combo{
		{FilterAll, AggCount}, {FilterAll, AggUniqueIP},
	}, 1)
	_ = w
	counts := p.DayList(0, Combo{FilterAll, AggCount})
	ips := p.DayList(0, Combo{FilterAll, AggUniqueIP})
	// Both lists should rank the same universe of sites (every request has
	// an IP), just in different orders.
	if len(counts) != len(ips) {
		t.Fatalf("site coverage differs: %d vs %d", len(counts), len(ips))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, p1 := runPipeline(t, MetricCombos(), 2)
	_, p2 := runPipeline(t, MetricCombos(), 2)
	for d := 0; d < 2; d++ {
		for _, m := range AllMetrics() {
			a := p1.DayList(d, m.Combo())
			b := p2.DayList(d, m.Combo())
			if len(a) != len(b) {
				t.Fatalf("day %d metric %v lengths differ", d, m)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("day %d metric %v diverges at %d", d, m, i)
				}
			}
		}
	}
}

func BenchmarkPipelineDay(b *testing.B) {
	w := world.Generate(world.Config{Seed: 1, NumSites: 5000})
	e := traffic.NewEngine(w, traffic.Config{Seed: 2, NumClients: 800, Days: 28})
	p := NewPipeline(w, MetricCombos(), nil)
	e.AddSink(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Day() == e.Cfg.Days {
			b.StopTimer()
			e = traffic.NewEngine(w, traffic.Config{Seed: 2, NumClients: 800, Days: 28})
			e.AddSink(p)
			b.StartTimer()
		}
		e.RunDay(e.Day())
	}
}
