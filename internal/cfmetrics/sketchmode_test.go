package cfmetrics

import (
	"testing"

	"toplists/internal/sketch"
	"toplists/internal/stats"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// runSketchPipeline mirrors runPipeline with sketch aggregation enabled in
// both the engine and the pipeline.
func runSketchPipeline(t testing.TB, combos []Combo, days int) *Pipeline {
	t.Helper()
	w := world.Generate(world.Config{Seed: 21, NumSites: 2000})
	sk := sketch.Config{Enabled: true}.WithDefaults()
	e := traffic.NewEngine(w, traffic.Config{Seed: 22, NumClients: 500, Days: days, Sketch: sk})
	p := NewPipeline(w, combos, nil)
	p.SetSketch(sk)
	e.AddSink(p)
	e.Run()
	return p
}

// TestSketchCountMetricsExactUnderCapacity: with the universe smaller than
// the space-saving capacity nothing ever evicts, the space-saving count is
// the true count, and min(count, count-min estimate) is exact — so every
// count-aggregation day list must be byte-identical to the exact pipeline,
// tiebreaks included.
func TestSketchCountMetricsExactUnderCapacity(t *testing.T) {
	const days = 3
	_, exact := runPipeline(t, MetricCombos(), days)
	sk := runSketchPipeline(t, MetricCombos(), days)

	for _, m := range AllMetrics() {
		if !m.RequestBased() {
			continue
		}
		for d := 0; d < days; d++ {
			a, b := exact.DayList(d, m.Combo()), sk.DayList(d, m.Combo())
			if len(a) != len(b) {
				t.Fatalf("%v day %d: exact %d sites, sketch %d", m, d, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v day %d rank %d: exact site %d, sketch site %d",
						m, d, i+1, a[i], b[i])
				}
			}
		}
	}
}

// TestSketchUniqueMetricsAgree: unique-visitor metrics go through per-key
// HLLs, so sketch lists are approximate — but at this scale the estimates
// sit in the near-exact linear-counting range and the published heads must
// agree almost everywhere with the exact oracle.
func TestSketchUniqueMetricsAgree(t *testing.T) {
	const days = 3
	_, exact := runPipeline(t, MetricCombos(), days)
	sk := runSketchPipeline(t, MetricCombos(), days)

	for _, m := range AllMetrics() {
		if m.RequestBased() {
			continue
		}
		for d := 0; d < days; d++ {
			a, b := exact.DayList(d, m.Combo()), sk.DayList(d, m.Combo())
			k := 200
			if k > len(a) {
				k = len(a)
			}
			if k > len(b) {
				k = len(b)
			}
			if j := stats.JaccardSlices(a[:k], b[:k]); j < 0.97 {
				t.Errorf("%v day %d: top-%d Jaccard %.3f < 0.97", m, d, k, j)
			}
		}
	}
}

// TestSketchShardHotPathZeroAllocs pins the per-event cost of the sketch
// aggregation path: once a shard state has seen every site, folding further
// page loads allocates nothing.
func TestSketchShardHotPathZeroAllocs(t *testing.T) {
	w := world.Generate(world.Config{Seed: 21, NumSites: 2000})
	p := NewPipeline(w, MetricCombos(), nil)
	p.SetSketch(sketch.Config{Enabled: true})
	sh := p.NewShardState()

	cl := &traffic.Client{ID: 7, UA: 0x9e3779b97f4a7c15}
	pl := &traffic.PageLoad{
		Client: cl, Root: true, Subresources: 9,
		HTMLRequests: 3, RefererRequests: 1, TLSConns: 2,
	}
	numSites := int32(w.NumSites())
	for s := int32(0); s < numSites; s++ {
		pl.Site = s
		pl.IP = uint32(40 + s%997)
		sh.OnPageLoad(pl)
	}

	var i uint64
	allocs := testing.AllocsPerRun(4096, func() {
		i++
		pl.Site = int32(i % uint64(numSites))
		pl.IP = uint32(1000 + i%257)
		sh.OnPageLoad(pl)
	})
	if allocs != 0 {
		t.Fatalf("sketch shard OnPageLoad allocates %.1f objects per event", allocs)
	}
}
