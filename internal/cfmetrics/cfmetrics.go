// Package cfmetrics implements the server-side popularity metrics of
// Section 3: the Cloudflare log pipeline. It observes the HTTP footprint of
// Cloudflare-served sites only, applies the paper's seven filters and three
// aggregations (21 combinations, Figure 8), and produces daily ranked lists
// per metric. The seven canonical metrics of Figure 1 are the named subset
// used for the top-list evaluation.
package cfmetrics

import (
	"fmt"
	"sort"

	"toplists/internal/names"
	"toplists/internal/rank"
	"toplists/internal/simrand"
	"toplists/internal/sketch"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// Filter is one of the seven request filters of Section 3.1.
type Filter uint8

// The filters.
const (
	FilterAll         Filter = iota // all HTTP(S) requests
	FilterHTML                      // limited to text/html responses
	Filter200                       // limited to 200 responses
	FilterReferer                   // limited to non-null Referer
	FilterTopBrowsers               // limited to the top 5 browsers
	FilterTLS                       // TLS handshakes
	FilterRoot                      // root page loads (GET /)
	NumFilters        = 7
)

// String implements fmt.Stringer.
func (f Filter) String() string {
	return [...]string{
		"all-requests", "html-requests", "200-requests", "referer-requests",
		"top-browser-requests", "tls-handshakes", "root-loads",
	}[f]
}

// Agg is one of the three aggregations of Section 3.1.
type Agg uint8

// The aggregations.
const (
	AggCount      Agg = iota // raw request count
	AggUniqueIP              // unique client IPs per day
	AggUniqueIPUA            // unique (client IP, user agent) tuples per day
	NumAggs       = 3
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	return [...]string{"count", "unique-ip", "unique-ip-ua"}[a]
}

// Combo is a (filter, aggregation) pair — one of the 21 candidate popularity
// definitions.
type Combo struct {
	Filter Filter
	Agg    Agg
}

// String implements fmt.Stringer.
func (c Combo) String() string { return fmt.Sprintf("%s/%s", c.Filter, c.Agg) }

// AllCombos returns all 21 filter-aggregation combinations, in filter-major
// order (the layout of Figure 8).
func AllCombos() []Combo {
	out := make([]Combo, 0, NumFilters*NumAggs)
	for f := Filter(0); f < NumFilters; f++ {
		for a := Agg(0); a < NumAggs; a++ {
			out = append(out, Combo{f, a})
		}
	}
	return out
}

// Metric names one of the seven canonical Cloudflare metrics selected in
// Section 3.3 (Figure 1).
type Metric uint8

// The canonical metrics, in the order of Figure 1.
const (
	MAllRequests        Metric = iota // (1) all HTTP(S) requests
	MTLSHandshakes                    // (2) TLS handshakes
	MRootRequests                     // (3) HTTP requests for root page
	MTopBrowserRequests               // (4) requests from top 5 browsers
	MUniqueIP                         // (5) unique client IPs
	MUniqueIPRoot                     // (6) unique IPs accessing root page
	MUniqueIPBrowsers                 // (7) unique IPs from top 5 browsers
	NumMetrics          = 7
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	return [...]string{
		"All HTTP Requests", "TLS Handshakes", "Root Page Requests",
		"Top-Browser Requests", "Unique IPs", "Unique IPs (Root)",
		"Unique IPs (Browsers)",
	}[m]
}

// Key is the metric's stable API slug, used by the resident server's
// per-(vantage, backend) ranking routes.
func (m Metric) Key() string {
	return [...]string{
		"all-requests", "tls-handshakes", "root-requests",
		"top-browser-requests", "unique-ips", "unique-ips-root",
		"unique-ips-browsers",
	}[m]
}

// MetricByKey resolves a metric API slug (as produced by Key).
func MetricByKey(key string) (Metric, bool) {
	for _, m := range AllMetrics() {
		if m.Key() == key {
			return m, true
		}
	}
	return 0, false
}

// Combo returns the metric's filter-aggregation pair.
func (m Metric) Combo() Combo {
	switch m {
	case MAllRequests:
		return Combo{FilterAll, AggCount}
	case MTLSHandshakes:
		return Combo{FilterTLS, AggCount}
	case MRootRequests:
		return Combo{FilterRoot, AggCount}
	case MTopBrowserRequests:
		return Combo{FilterTopBrowsers, AggCount}
	case MUniqueIP:
		return Combo{FilterAll, AggUniqueIP}
	case MUniqueIPRoot:
		return Combo{FilterRoot, AggUniqueIP}
	default:
		return Combo{FilterTopBrowsers, AggUniqueIP}
	}
}

// RequestBased reports whether the metric counts requests (as opposed to
// requestors); Section 5.1 observes perfect agreement among request-based
// metrics when rank-ordering top lists.
func (m Metric) RequestBased() bool {
	return m.Combo().Agg == AggCount
}

// AllMetrics returns the seven canonical metrics in order.
func AllMetrics() []Metric {
	out := make([]Metric, NumMetrics)
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

// MetricCombos returns the combos of the seven canonical metrics.
func MetricCombos() []Combo {
	out := make([]Combo, NumMetrics)
	for i, m := range AllMetrics() {
		out[i] = m.Combo()
	}
	return out
}

// filterContribution returns how many of a page load's requests pass the
// filter.
func filterContribution(f Filter, pl *traffic.PageLoad) int {
	switch f {
	case FilterAll:
		return pl.Requests()
	case FilterHTML:
		return pl.HTMLRequests
	case Filter200:
		return pl.Requests() - pl.Non200
	case FilterReferer:
		return pl.RefererRequests
	case FilterTopBrowsers:
		if pl.Client.Browser.TopFive() {
			return pl.Requests()
		}
		return 0
	case FilterTLS:
		return pl.TLSConns
	default: // FilterRoot
		if pl.Root {
			return 1
		}
		return 0
	}
}

// botContribution returns how many of a bot batch's requests pass the
// filter. Bots are never top-5 browsers.
func botContribution(f Filter, bb *traffic.BotBatch) int {
	switch f {
	case FilterAll:
		return bb.Requests
	case FilterHTML:
		return bb.HTMLRequests
	case Filter200:
		return bb.Requests - bb.Non200
	case FilterReferer:
		return bb.RefererRequests
	case FilterTopBrowsers:
		return 0
	case FilterTLS:
		return bb.TLSConns
	default: // FilterRoot
		return bb.RootRequests
	}
}

// Pipeline is one edge-log processor: the request stream of one CDN
// backend as observed from one measurement vantage. It implements
// traffic.Sink and accumulates, for each tracked combo, a ranked site list
// per day. The default pipeline — the transparent global vantage watching
// the Cloudflare-style backend — is the paper's Cloudflare log pipeline,
// byte-identical to the pre-multi-vantage implementation.
type Pipeline struct {
	traffic.BaseSink

	w       *world.World
	combos  []Combo
	factory sketch.Factory

	// Edge identity: the backend whose logs these are and the vantage they
	// are observed from. A transparent vantage (full reach everywhere)
	// short-circuits the visibility test, so the default configuration
	// never consults the reach hash.
	vantage     world.Vantage
	backend     world.Backend
	transparent bool
	// reachSeed keys the deterministic per-event visibility decision for
	// non-transparent vantages; derived from (world seed, vantage name).
	reachSeed uint64

	// observes[i] reports whether site i serves traffic through this
	// pipeline's backend (primary or secondary).
	observes []bool

	// Current-day state, one entry per tracked combo.
	counts   [][]float64                 // combo -> site -> score
	distinct []map[int32]sketch.Distinct // combo -> site -> counter (unique aggs)

	// Sketch-mode state (see sketchmode.go): bounded summaries replacing
	// the exact arrays. dayState accumulates the barrier's shard merges,
	// botState the day's bot batches (merged last at EndDay).
	sk       sketch.Config
	dayState *pipelineShard
	botState *pipelineShard
	shardMem int
	memPeak  int
	errBound uint64

	// days[d][comboIdx] is the ranked site-ID list for that day and combo.
	days [][][]int32
}

// NewPipeline builds the primary pipeline — the transparent global vantage
// observing the Cloudflare-style backend, the paper's configuration — for
// the given combos. A nil factory defaults to exact distinct counting.
func NewPipeline(w *world.World, combos []Combo, factory sketch.Factory) *Pipeline {
	return NewEdgePipeline(w, combos, factory, w.Vantages()[0], world.BackendCdnflare)
}

// NewEdgePipeline builds the edge-log pipeline of one (vantage, backend)
// pair: it observes the sites on the backend, filtered by the vantage's
// per-country reach. A nil factory defaults to exact distinct counting.
func NewEdgePipeline(w *world.World, combos []Combo, factory sketch.Factory, v world.Vantage, b world.Backend) *Pipeline {
	if factory == nil {
		factory = sketch.ExactFactory
	}
	p := &Pipeline{
		w:           w,
		combos:      combos,
		factory:     factory,
		vantage:     v,
		backend:     b,
		transparent: v.Transparent(),
		reachSeed:   simrand.New(w.Cfg.Seed).Derive("vantage-reach").Derive(v.Name).Uint64(),
		observes:    make([]bool, w.NumSites()),
	}
	for i := 0; i < w.NumSites(); i++ {
		p.observes[i] = w.Site(int32(i)).OnBackend(b)
	}
	p.counts = make([][]float64, len(combos))
	p.distinct = make([]map[int32]sketch.Distinct, len(combos))
	for i, c := range combos {
		if c.Agg == AggCount {
			p.counts[i] = make([]float64, w.NumSites())
		} else {
			p.distinct[i] = make(map[int32]sketch.Distinct)
		}
	}
	return p
}

// Vantage returns the vantage the pipeline observes from.
func (p *Pipeline) Vantage() world.Vantage { return p.vantage }

// Backend returns the backend whose logs the pipeline processes.
func (p *Pipeline) Backend() world.Backend { return p.backend }

// seesPage decides whether this pipeline's vantage observes a page load.
// The decision is a pure function of the event's content (never of worker
// scheduling): a deterministic hash of (reach seed, client, site, time)
// thresholded against the vantage's reach into the client's country. The
// transparent vantage sees everything.
func (p *Pipeline) seesPage(pl *traffic.PageLoad) bool {
	if p.transparent {
		return true
	}
	r := p.vantage.Reach[pl.Client.Country]
	if r >= 1 {
		return true
	}
	if r <= 0 {
		return false
	}
	h := reachMix(p.reachSeed,
		uint64(uint32(pl.Client.ID))<<32|uint64(uint32(pl.Site)),
		uint64(uint32(pl.Day))<<32|uint64(uint32(pl.Second))<<8|uint64(pl.SubIdx))
	return float64(h>>11)/(1<<53) < r
}

// seesBot decides whether the vantage observes a bot batch. Bots carry no
// client country, so the batch is gated on the site's home country reach,
// keyed by (site, day).
func (p *Pipeline) seesBot(bb *traffic.BotBatch) bool {
	if p.transparent {
		return true
	}
	r := p.vantage.Reach[p.w.Site(bb.Site).Home]
	if r >= 1 {
		return true
	}
	if r <= 0 {
		return false
	}
	h := reachMix(p.reachSeed, uint64(uint32(bb.Site)), uint64(uint32(bb.Day)))
	return float64(h>>11)/(1<<53) < r
}

// reachMix is a 64-bit mix of the visibility key (splitmix64 finalizer
// over the xor-combined words).
func reachMix(seed, a, b uint64) uint64 {
	x := seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BeginDay implements traffic.Sink.
func (p *Pipeline) BeginDay(day int, weekend bool) {
	if p.sk.Enabled {
		return // day and bot summaries are reset at EndDay
	}
	for i := range p.combos {
		if p.counts[i] != nil {
			for j := range p.counts[i] {
				p.counts[i][j] = 0
			}
		}
		if p.distinct[i] != nil {
			clear(p.distinct[i])
		}
	}
}

// OnPageLoad implements traffic.Sink.
func (p *Pipeline) OnPageLoad(pl *traffic.PageLoad) {
	if !p.observes[pl.Site] || !p.seesPage(pl) {
		return
	}
	for i, c := range p.combos {
		n := filterContribution(c.Filter, pl)
		if n <= 0 {
			continue
		}
		switch c.Agg {
		case AggCount:
			p.counts[i][pl.Site] += float64(n)
		case AggUniqueIP:
			p.addDistinct(i, pl.Site, uint64(pl.IP))
		default:
			p.addDistinct(i, pl.Site, ipua(pl.IP, pl.Client.UA))
		}
	}
}

// OnBotBatch implements traffic.Sink. Bot batches arrive on the engine
// goroutine after the day's barrier; in sketch mode they accumulate in a
// dedicated summary that EndDay merges after the shard states.
func (p *Pipeline) OnBotBatch(bb *traffic.BotBatch) {
	if p.sk.Enabled {
		p.botState.onBotBatch(bb)
		return
	}
	if !p.observes[bb.Site] || !p.seesBot(bb) {
		return
	}
	for i, c := range p.combos {
		n := botContribution(c.Filter, bb)
		if n <= 0 {
			continue
		}
		switch c.Agg {
		case AggCount:
			p.counts[i][bb.Site] += float64(n)
		default:
			// All of the batch's IPs pass proportionally to the share of
			// requests passing the filter, at least one.
			k := len(bb.IPs) * n / bb.Requests
			if k < 1 {
				k = 1
			}
			for _, ip := range bb.IPs[:k] {
				key := uint64(ip)
				if c.Agg == AggUniqueIPUA {
					key = ipua(ip, botUA)
				}
				p.addDistinct(i, bb.Site, key)
			}
		}
	}
}

// botUA is the user-agent hash bucket for non-browser clients.
const botUA = 0xb07b07b07b07b07

func ipua(ip uint32, ua uint64) uint64 {
	x := uint64(ip) ^ ua*0x9e3779b97f4a7c15
	x ^= x >> 29
	return x
}

func (p *Pipeline) addDistinct(combo int, site int32, key uint64) {
	d, ok := p.distinct[combo][site]
	if !ok {
		d = p.factory()
		p.distinct[combo][site] = d
	}
	d.Add(key)
}

// EndDay implements traffic.Sink: it freezes the day's ranked lists.
func (p *Pipeline) EndDay(day int) {
	if p.sk.Enabled {
		p.endDaySketch(day)
		return
	}
	lists := make([][]int32, len(p.combos))
	for i, c := range p.combos {
		var scored []scoredSite
		if c.Agg == AggCount {
			for site, v := range p.counts[i] {
				if v > 0 {
					scored = append(scored, scoredSite{int32(site), v})
				}
			}
		} else {
			for site, d := range p.distinct[i] {
				if v := d.Count(); v > 0 {
					scored = append(scored, scoredSite{site, v})
				}
			}
		}
		lists[i] = rankScored(scored)
	}
	p.days = append(p.days, lists)
}

// rankScored orders the day's scored sites — score descending, with the
// deterministic information-free tiebreak — and returns the site IDs.
func rankScored(scored []scoredSite) []int32 {
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].score != scored[b].score {
			return scored[a].score > scored[b].score
		}
		return mix32(scored[a].site) < mix32(scored[b].site)
	})
	ids := make([]int32, len(scored))
	for j, s := range scored {
		ids[j] = s.site
	}
	return ids
}

type scoredSite struct {
	site  int32
	score float64
}

func mix32(v int32) uint32 {
	x := uint32(v) * 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// NumDays returns how many days have been frozen.
func (p *Pipeline) NumDays() int { return len(p.days) }

// Tracks reports whether the pipeline was configured with the combo.
func (p *Pipeline) Tracks(c Combo) bool {
	for _, have := range p.combos {
		if have == c {
			return true
		}
	}
	return false
}

// comboIndex returns the tracked index of a combo.
func (p *Pipeline) comboIndex(c Combo) int {
	for i, have := range p.combos {
		if have == c {
			return i
		}
	}
	panic(fmt.Sprintf("cfmetrics: combo %v not tracked", c))
}

// DayList returns the ranked site IDs for a day and combo.
func (p *Pipeline) DayList(day int, c Combo) []int32 {
	return p.days[day][p.comboIndex(c)]
}

// DayRanking returns the day's ranked list for a combo as a domain Ranking.
// The pipeline already ranks dense site IDs, which are interner IDs for the
// sites' domains by the world's construction, so no strings are touched.
func (p *Pipeline) DayRanking(day int, c Combo) *rank.Ranking {
	sites := p.DayList(day, c)
	ids := make([]names.ID, len(sites))
	for i, s := range sites {
		ids[i] = p.w.DomainID(s)
	}
	return rank.MustFromIDs(p.w.Interner(), ids)
}

// MetricRanking returns the day's ranking for a canonical metric.
func (p *Pipeline) MetricRanking(day int, m Metric) *rank.Ranking {
	return p.DayRanking(day, m.Combo())
}
