package cfmetrics

import (
	"testing"

	"toplists/internal/traffic"
	"toplists/internal/world"
)

func TestFilterContributionTable(t *testing.T) {
	browser := &traffic.Client{Browser: traffic.Chrome}
	niche := &traffic.Client{Browser: traffic.Other}
	pl := &traffic.PageLoad{
		Client:          browser,
		Root:            true,
		Subresources:    10, // 11 requests total
		HTMLRequests:    2,
		RefererRequests: 10,
		Non200:          1,
		TLSConns:        3,
	}
	cases := []struct {
		filter Filter
		want   int
	}{
		{FilterAll, 11},
		{FilterHTML, 2},
		{Filter200, 10},
		{FilterReferer, 10},
		{FilterTopBrowsers, 11},
		{FilterTLS, 3},
		{FilterRoot, 1},
	}
	for _, c := range cases {
		if got := filterContribution(c.filter, pl); got != c.want {
			t.Errorf("%v: %d, want %d", c.filter, got, c.want)
		}
	}

	// Niche browsers fail the top-5 filter; deep links fail the root filter.
	pl.Client = niche
	if got := filterContribution(FilterTopBrowsers, pl); got != 0 {
		t.Errorf("niche browser contributed %d", got)
	}
	pl.Root = false
	if got := filterContribution(FilterRoot, pl); got != 0 {
		t.Errorf("deep link contributed %d root loads", got)
	}
}

func TestBotContributionTable(t *testing.T) {
	bb := &traffic.BotBatch{
		Requests:        100,
		RootRequests:    30,
		HTMLRequests:    45,
		RefererRequests: 8,
		Non200:          18,
		TLSConns:        65,
	}
	cases := []struct {
		filter Filter
		want   int
	}{
		{FilterAll, 100},
		{FilterHTML, 45},
		{Filter200, 82},
		{FilterReferer, 8},
		{FilterTopBrowsers, 0}, // bots are never top-5 browsers
		{FilterTLS, 65},
		{FilterRoot, 30},
	}
	for _, c := range cases {
		if got := botContribution(c.filter, bb); got != c.want {
			t.Errorf("%v: %d, want %d", c.filter, got, c.want)
		}
	}
}

func TestFilterAndAggStrings(t *testing.T) {
	for f := Filter(0); f < NumFilters; f++ {
		if f.String() == "" {
			t.Errorf("filter %d unnamed", f)
		}
	}
	for a := Agg(0); a < NumAggs; a++ {
		if a.String() == "" {
			t.Errorf("agg %d unnamed", a)
		}
	}
	if c := (Combo{FilterTLS, AggUniqueIP}); c.String() != "tls-handshakes/unique-ip" {
		t.Errorf("combo string = %q", c.String())
	}
}

func TestPipelineTracks(t *testing.T) {
	w := world.Generate(world.Config{Seed: 1, NumSites: 50})
	p := NewPipeline(w, []Combo{{FilterAll, AggCount}}, nil)
	if !p.Tracks(Combo{FilterAll, AggCount}) {
		t.Error("tracked combo reported untracked")
	}
	if p.Tracks(Combo{FilterTLS, AggCount}) {
		t.Error("untracked combo reported tracked")
	}
}
