package cfmetrics

import (
	"bytes"
	"fmt"
	"io"

	"toplists/internal/sketch"
	"toplists/internal/snapshot"
	"toplists/internal/world"
)

// PipelineSet is the full grid of edge-log pipelines for a study: one
// Pipeline per (vantage, backend) pair of the world's configuration. The
// primary pipeline at grid position (0, 0) — the first configured vantage
// watching the Cloudflare-style backend — is the paper's log pipeline and
// is wired into the study exactly as before; the remaining pipelines are
// extras the study appends after its original sinks, so a 1-vantage,
// 1-backend configuration has zero extras and an unchanged event path.
type PipelineSet struct {
	vantages []world.Vantage
	backends []world.Backend
	pipes    [][]*Pipeline // [vantage index][backend index]
}

// NewPipelineSet builds the pipeline grid for the world's configured
// vantages and backends. The primary pipeline tracks primaryCombos (the
// full combo study of the paper); every other pipeline tracks extraCombos
// (typically the seven canonical metrics). A nil factory defaults to exact
// distinct counting.
func NewPipelineSet(w *world.World, primaryCombos, extraCombos []Combo, factory sketch.Factory) *PipelineSet {
	vantages := w.Vantages()
	backends := w.Backends()
	ps := &PipelineSet{
		vantages: vantages,
		backends: backends,
		pipes:    make([][]*Pipeline, len(vantages)),
	}
	for vi, v := range vantages {
		ps.pipes[vi] = make([]*Pipeline, len(backends))
		for bi, b := range backends {
			combos := extraCombos
			if vi == 0 && bi == 0 {
				combos = primaryCombos
			}
			ps.pipes[vi][bi] = NewEdgePipeline(w, combos, factory, v, b)
		}
	}
	return ps
}

// Primary returns the paper's pipeline: the first vantage watching the
// Cloudflare-style backend.
func (ps *PipelineSet) Primary() *Pipeline { return ps.pipes[0][0] }

// Vantages returns the configured vantages in grid order.
func (ps *PipelineSet) Vantages() []world.Vantage { return ps.vantages }

// Backends returns the deployed backends in grid order.
func (ps *PipelineSet) Backends() []world.Backend { return ps.backends }

// At returns the pipeline at a grid position.
func (ps *PipelineSet) At(vi, bi int) *Pipeline { return ps.pipes[vi][bi] }

// Index resolves a vantage name and backend slug to grid coordinates.
func (ps *PipelineSet) Index(vantage, backend string) (vi, bi int, ok bool) {
	vi, bi = -1, -1
	for i, v := range ps.vantages {
		if v.Name == vantage {
			vi = i
			break
		}
	}
	for i, b := range ps.backends {
		if b.String() == backend {
			bi = i
			break
		}
	}
	if vi < 0 || bi < 0 {
		return 0, 0, false
	}
	return vi, bi, true
}

// Lookup resolves a pipeline by vantage name and backend slug.
func (ps *PipelineSet) Lookup(vantage, backend string) (*Pipeline, bool) {
	vi, bi, ok := ps.Index(vantage, backend)
	if !ok {
		return nil, false
	}
	return ps.pipes[vi][bi], true
}

// Extras returns every non-primary pipeline in canonical vantage-major
// order — the order they are appended as sinks and serialized in.
func (ps *PipelineSet) Extras() []*Pipeline {
	var out []*Pipeline
	for vi := range ps.pipes {
		for bi := range ps.pipes[vi] {
			if vi == 0 && bi == 0 {
				continue
			}
			out = append(out, ps.pipes[vi][bi])
		}
	}
	return out
}

// SetSketch switches every pipeline in the grid to sketch-backed
// aggregation. Must be called before the simulation starts.
func (ps *PipelineSet) SetSketch(cfg sketch.Config) {
	for vi := range ps.pipes {
		for bi := range ps.pipes[vi] {
			ps.pipes[vi][bi].SetSketch(cfg)
		}
	}
}

const pipelineSetSnapVersion = 1

// Snapshot writes the cross-day state of every extra pipeline, in
// canonical grid order, prefixed by the grid shape for cross-validation.
// The primary pipeline is serialized separately (its own checkpoint
// component, unchanged from the single-edge format).
func (ps *PipelineSet) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(pipelineSetSnapVersion)
	e.Uvarint(uint64(len(ps.vantages)))
	e.Uvarint(uint64(len(ps.backends)))
	for _, p := range ps.Extras() {
		var buf bytes.Buffer
		if err := p.Snapshot(&buf); err != nil {
			return fmt.Errorf("cfmetrics: edge pipeline %s/%s: %w", p.vantage.Name, p.backend, err)
		}
		e.Bytes(buf.Bytes())
	}
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces the cross-day state of every extra pipeline from a
// Snapshot payload. The snapshot's grid shape must match this set's.
func (ps *PipelineSet) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	ver := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if ver != pipelineSetSnapVersion {
		return fmt.Errorf("%w: PipelineSet payload v%d, this build reads v%d", snapshot.ErrVersion, ver, pipelineSetSnapVersion)
	}
	nV := int(d.Uvarint())
	nB := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if nV != len(ps.vantages) || nB != len(ps.backends) {
		return fmt.Errorf("%w: PipelineSet is %dx%d, snapshot has %dx%d",
			snapshot.ErrCorrupt, len(ps.vantages), len(ps.backends), nV, nB)
	}
	for _, p := range ps.Extras() {
		payload := d.Bytes()
		if err := d.Err(); err != nil {
			return err
		}
		if err := p.Restore(bytes.NewReader(payload)); err != nil {
			return fmt.Errorf("cfmetrics: edge pipeline %s/%s: %w", p.vantage.Name, p.backend, err)
		}
	}
	return d.Finish()
}
