package chrome

import (
	"strings"
	"testing"

	"toplists/internal/rank"
	"toplists/internal/stats"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

func runTelemetry(t testing.TB) (*world.World, *Telemetry) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 31, NumSites: 1500})
	e := traffic.NewEngine(w, traffic.Config{Seed: 32, NumClients: 1200, Days: 7})
	tel := NewTelemetry(w)
	e.AddSink(tel)
	e.Run()
	return w, tel
}

func TestTelemetryOnlyChromeSync(t *testing.T) {
	w := world.Generate(world.Config{Seed: 33, NumSites: 500})
	tel := NewTelemetry(w)
	site := firstPublicSite(w)
	noSync := &traffic.Client{ID: 1, Browser: traffic.Firefox}
	tel.OnPageLoad(&traffic.PageLoad{Site: site, Client: noSync, Completed: true})
	sync := &traffic.Client{ID: 2, Browser: traffic.Chrome, ChromeSync: true}
	tel.OnPageLoad(&traffic.PageLoad{Site: site, Client: sync, Private: true, Completed: true})
	if r := tel.Ranking(world.US, world.Windows, InitiatedPageLoads); r.Len() != 0 {
		t.Fatal("non-sync or private loads were recorded")
	}
	tel.OnPageLoad(&traffic.PageLoad{Site: site, Client: sync, Completed: true, DwellSec: 9})
	if r := tel.Ranking(world.US, world.Windows, InitiatedPageLoads); r.Len() != 1 {
		t.Fatal("sync load not recorded")
	}
	if r := tel.Ranking(world.US, world.Android, InitiatedPageLoads); r.Len() != 0 {
		t.Fatal("recorded under wrong platform")
	}
}

func firstPublicSite(w *world.World) int32 {
	for i := 0; i < w.NumSites(); i++ {
		if !w.Site(int32(i)).NonPublic {
			return int32(i)
		}
	}
	panic("no public site")
}

func TestNonPublicExcluded(t *testing.T) {
	w, tel := runTelemetry(t)
	for _, c := range world.AllCountries() {
		for _, p := range world.AllPlatforms() {
			for _, m := range AllTelemetryMetrics() {
				r := tel.Ranking(c, p, m)
				for _, name := range r.Names() {
					id, _ := w.ByDomain(name)
					if w.Site(id).NonPublic {
						t.Fatalf("non-public domain %s in telemetry", name)
					}
				}
			}
		}
	}
}

func TestInitiatedDominatesCompleted(t *testing.T) {
	_, tel := runTelemetry(t)
	ini := tel.Ranking(world.US, world.Windows, InitiatedPageLoads)
	com := tel.Ranking(world.US, world.Windows, CompletedPageLoads)
	if com.Len() > ini.Len() {
		t.Fatalf("completed sites %d > initiated sites %d", com.Len(), ini.Len())
	}
	if ini.Len() == 0 {
		t.Fatal("no US/Windows telemetry at this scale")
	}
}

// TestIntraChromeConsistency verifies the Figure 6 property: the three
// Chrome metrics agree with each other more strongly than typical
// cross-vantage comparisons (Jaccard 0.73-0.86 in the paper).
func TestIntraChromeConsistency(t *testing.T) {
	_, tel := runTelemetry(t)
	ini := tel.Ranking(world.US, world.Windows, InitiatedPageLoads)
	com := tel.Ranking(world.US, world.Windows, CompletedPageLoads)
	n := 300
	jj := stats.JaccardSlices(ini.Names()[:min(n, ini.Len())], com.Names()[:min(n, com.Len())])
	if jj < 0.6 {
		t.Errorf("initiated vs completed Jaccard = %.3f, want high", jj)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDeriveCrux(t *testing.T) {
	w, tel := runTelemetry(t)
	bk := rank.ScaledMagnitudes(w.NumSites())
	crux := tel.DeriveCrux(2, bk)
	if crux.Len() == 0 {
		t.Fatal("empty CrUX list")
	}
	if crux.OriginRanking().Len() != crux.Len() {
		t.Fatal("ranking length mismatch")
	}
	prev := rank.Bucket(0)
	for i, e := range crux.Entries {
		if !strings.HasPrefix(e.Origin, "https://") && !strings.HasPrefix(e.Origin, "http://") {
			t.Fatalf("entry %d is not an origin: %q", i, e.Origin)
		}
		if e.Bucket < prev {
			t.Fatalf("bucket order violated at %d", i)
		}
		prev = e.Bucket
		if want := bk.BucketOf(i + 1); e.Bucket != want {
			t.Fatalf("entry %d bucket %v, want %v", i, e.Bucket, want)
		}
	}
}

func TestCruxThresholdFilters(t *testing.T) {
	_, tel := runTelemetry(t)
	bk := rank.PaperBucketer
	loose := tel.DeriveCrux(1, bk)
	strict := tel.DeriveCrux(8, bk)
	if strict.Len() >= loose.Len() {
		t.Fatalf("threshold did not filter: strict %d >= loose %d", strict.Len(), loose.Len())
	}
}

func TestCruxMultipleOriginsPerSite(t *testing.T) {
	w, tel := runTelemetry(t)
	_ = w
	crux := tel.DeriveCrux(1, rank.PaperBucketer)
	hosts := map[string]int{}
	multi := false
	for _, e := range crux.Entries {
		host := strings.TrimPrefix(strings.TrimPrefix(e.Origin, "https://"), "http://")
		base := host
		if i := strings.Index(host, "."); i >= 0 && (strings.HasPrefix(host, "www.") || strings.Count(host, ".") > 1) {
			base = host[strings.Index(host, ".")+1:]
		}
		hosts[base]++
		if hosts[base] > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("expected at least one site with multiple origins (www + apex)")
	}
}

func TestMetricStrings(t *testing.T) {
	for _, m := range AllTelemetryMetrics() {
		if m.String() == "" {
			t.Fatal("empty metric name")
		}
	}
}

func TestDeriveCruxCountry(t *testing.T) {
	w, tel := runTelemetry(t)
	bk := rank.ScaledMagnitudes(w.NumSites())
	global := tel.DeriveCrux(1, bk)
	for _, c := range []world.Country{world.US, world.CN, world.JP} {
		local := tel.DeriveCruxCountry(c, 1, bk)
		if local.Len() == 0 {
			t.Fatalf("%v: empty country CrUX", c)
		}
		if local.Len() >= global.Len() {
			t.Errorf("%v list (%d) not smaller than global (%d)", c, local.Len(), global.Len())
		}
		// Every local origin must exist globally.
		for _, e := range local.Entries {
			if !global.OriginRanking().Contains(e.Origin) {
				t.Fatalf("%v origin %q missing from global list", c, e.Origin)
			}
		}
	}
	// The CN list should be dominated by CN-homed sites; the US list not.
	cnShare := func(c world.Country) float64 {
		l := tel.DeriveCruxCountry(c, 1, bk)
		cn, total := 0, 0
		limit := l.Len()
		if limit > 100 {
			limit = 100
		}
		for _, e := range l.Entries[:limit] {
			host := strings.TrimPrefix(strings.TrimPrefix(e.Origin, "https://"), "http://")
			for i := 0; i < w.NumSites(); i++ {
				s := w.Site(int32(i))
				if s.Domain == host || strings.HasSuffix(host, "."+s.Domain) {
					total++
					if s.Home == world.CN {
						cn++
					}
					break
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(cn) / float64(total)
	}
	if cnShare(world.CN) <= cnShare(world.US) {
		t.Errorf("CN-list CN-share %.2f not above US-list CN-share %.2f",
			cnShare(world.CN), cnShare(world.US))
	}
}
