// Package chrome implements the Chrome telemetry vantage point of Section 6:
// per-(country, platform) popularity metrics computed from the page loads of
// Chrome users who opted into history sync and usage-statistics reporting.
//
// Three client metrics are produced (Figure 6): initiated page loads,
// completed page loads, and total time on site. The public CrUX dataset
// (the list evaluated in Section 5) is derived from the same data: monthly
// completed page loads, keyed by web origin, subject to a per-country
// minimum-visitors privacy threshold, and published as rank-magnitude
// buckets only.
package chrome

import (
	"toplists/internal/rank"
	"toplists/internal/sketch"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

// TelemetryMetric is one of the three client-side popularity metrics.
type TelemetryMetric uint8

// The metrics of Figure 6.
const (
	InitiatedPageLoads TelemetryMetric = iota
	CompletedPageLoads
	TimeOnSite
	NumTelemetryMetrics = 3
)

// String implements fmt.Stringer.
func (m TelemetryMetric) String() string {
	return [...]string{"Initiated Pageloads", "Completed Pageloads", "Time On Site"}[m]
}

// AllTelemetryMetrics returns the three metrics in order.
func AllTelemetryMetrics() []TelemetryMetric {
	return []TelemetryMetric{InitiatedPageLoads, CompletedPageLoads, TimeOnSite}
}

// cellKey identifies a (country, platform, metric) accumulator slice.
func cellKey(c world.Country, p world.Platform, m TelemetryMetric) int {
	return (int(c)*world.NumPlatforms+int(p))*int(NumTelemetryMetrics) + int(m)
}

// originKey identifies a (site, subdomain) origin for CrUX accounting.
type originKey struct {
	site int32
	sub  uint8
}

// Telemetry is the Chrome data collector. It implements traffic.Sink.
//
// Only page loads from clients with ChromeSync are observed; private-mode
// loads never enter history and are excluded, as are loads of non-public
// domains (Section 6.1).
type Telemetry struct {
	traffic.BaseSink

	w *world.World

	// cells[cellKey] -> per-site accumulated metric value.
	cells [][]float64

	// originCompleted accumulates monthly completed page loads per origin
	// for the CrUX derivation.
	originCompleted map[originKey]float64
	// countryVisitors tracks distinct visitors per (country, site) for the
	// privacy threshold.
	countryVisitors map[int64]sketch.Distinct

	// Sketch mode (see sketchmode.go): shard states mirror the accumulators
	// and visitor counters become coarse HLLs.
	sk       sketch.Config
	shardMem int
	memPeak  int
}

// NewTelemetry builds a collector for the world.
func NewTelemetry(w *world.World) *Telemetry {
	t := &Telemetry{
		w:               w,
		cells:           make([][]float64, world.NumCountries*world.NumPlatforms*int(NumTelemetryMetrics)),
		originCompleted: make(map[originKey]float64),
		countryVisitors: make(map[int64]sketch.Distinct),
	}
	for i := range t.cells {
		t.cells[i] = make([]float64, w.NumSites())
	}
	return t
}

// OnPageLoad implements traffic.Sink.
func (t *Telemetry) OnPageLoad(pl *traffic.PageLoad) {
	c := pl.Client
	if !c.ChromeSync || pl.Private {
		return
	}
	site := t.w.Site(pl.Site)
	if site.NonPublic {
		return
	}
	t.cells[cellKey(c.Country, c.Platform, InitiatedPageLoads)][pl.Site]++
	if pl.Completed {
		t.cells[cellKey(c.Country, c.Platform, CompletedPageLoads)][pl.Site]++
		t.cells[cellKey(c.Country, c.Platform, TimeOnSite)][pl.Site] += pl.DwellSec

		t.originCompleted[originKey{pl.Site, pl.SubIdx}]++
		vk := int64(c.Country)<<32 | int64(pl.Site)
		d, ok := t.countryVisitors[vk]
		if !ok {
			d = t.newDistinct()
			t.countryVisitors[vk] = d
		}
		d.Add(uint64(c.ID))
	}
}

// Ranking returns the month-aggregated ranked domain list for a country,
// platform, and metric. Sites with zero observed value are absent.
func (t *Telemetry) Ranking(c world.Country, p world.Platform, m TelemetryMetric) *rank.Ranking {
	vals := t.cells[cellKey(c, p, m)]
	scored := make([]rank.ScoredID, 0, 1024)
	for site, v := range vals {
		if v > 0 {
			scored = append(scored, rank.ScoredID{ID: t.w.DomainID(int32(site)), Score: v})
		}
	}
	return rank.FromScoredIDs(t.w.Interner(), scored, rank.TieHashed)
}

// CruxEntry is one origin in the public CrUX dataset.
type CruxEntry struct {
	Origin string
	// Bucket is the published rank magnitude; CrUX does not publish exact
	// ranks (Section 2).
	Bucket rank.Bucket
}

// CruxList is the public CrUX dataset for the month: origins with
// rank-magnitude buckets only.
type CruxList struct {
	Entries []CruxEntry
	// ranking preserves the internal (unpublished) completed-page-load
	// order used to assign buckets; the evaluation uses it only to truncate
	// to magnitudes, mirroring how researchers consume CrUX as a set.
	ranking *rank.Ranking
}

// DeriveCrux computes the public CrUX list: origins ordered by monthly
// completed page loads, filtered to origins of sites with at least
// minVisitors distinct visitors in some country, bucketed by the given
// bucketer.
func (t *Telemetry) DeriveCrux(minVisitors int, bk rank.Bucketer) *CruxList {
	passes := make(map[int32]bool)
	for vk, d := range t.countryVisitors {
		if int(d.Count()) >= minVisitors {
			passes[int32(vk&0xffffffff)] = true
		}
	}
	scored := make([]rank.Scored, 0, len(t.originCompleted))
	for key, v := range t.originCompleted {
		if !passes[key.site] {
			continue
		}
		site := t.w.Site(key.site)
		scheme := "https://"
		if !site.HTTPS {
			scheme = "http://"
		}
		scored = append(scored, rank.Scored{Name: scheme + site.Hostname(int(key.sub)), Score: v})
	}
	r := rank.FromScoresIn(t.w.Interner(), scored, rank.TieHashed)
	entries := make([]CruxEntry, r.Len())
	for i := 1; i <= r.Len(); i++ {
		entries[i-1] = CruxEntry{Origin: r.At(i), Bucket: bk.BucketOf(i)}
	}
	return &CruxList{Entries: entries, ranking: r}
}

// OriginRanking returns the internal origin ordering (not public in the real
// dataset; used for truncation to magnitude sets).
func (c *CruxList) OriginRanking() *rank.Ranking { return c.ranking }

// DeriveCruxCountry computes a per-country CrUX dataset, mirroring the real
// dataset's country-specific tables: origins ranked by the month's
// completed page loads from that country's clients (both platforms),
// subject to the same privacy threshold.
func (t *Telemetry) DeriveCruxCountry(country world.Country, minVisitors int, bk rank.Bucketer) *CruxList {
	// Per-country completed loads are tracked per (site, platform) in the
	// telemetry cells; the per-origin split is global, so the per-country
	// list distributes the site's completed loads across its origins using
	// the global origin shares.
	siteTotals := make(map[int32]float64)
	for key, v := range t.originCompleted {
		siteTotals[key.site] += v
	}
	scored := make([]rank.Scored, 0, len(t.originCompleted))
	for key, v := range t.originCompleted {
		vk := int64(country)<<32 | int64(key.site)
		d, ok := t.countryVisitors[vk]
		if !ok || int(d.Count()) < minVisitors {
			continue
		}
		countryLoads := t.cells[cellKey(country, world.Windows, CompletedPageLoads)][key.site] +
			t.cells[cellKey(country, world.Android, CompletedPageLoads)][key.site]
		if countryLoads == 0 {
			continue
		}
		share := v / siteTotals[key.site]
		site := t.w.Site(key.site)
		scheme := "https://"
		if !site.HTTPS {
			scheme = "http://"
		}
		scored = append(scored, rank.Scored{
			Name:  scheme + site.Hostname(int(key.sub)),
			Score: countryLoads * share,
		})
	}
	r := rank.FromScoresIn(t.w.Interner(), scored, rank.TieHashed)
	entries := make([]CruxEntry, r.Len())
	for i := 1; i <= r.Len(); i++ {
		entries[i-1] = CruxEntry{Origin: r.At(i), Bucket: bk.BucketOf(i)}
	}
	return &CruxList{Entries: entries, ranking: r}
}

// Len returns the number of published origins.
func (c *CruxList) Len() int { return len(c.Entries) }
