package chrome

import (
	"fmt"
	"io"
	"slices"

	"toplists/internal/sketch"
	"toplists/internal/snapshot"
)

const telemetrySnapVersion = 1

// Snapshot writes the collector's month-spanning state: the metric cells
// (sparsely — most sites never accumulate a value in most cells), the
// per-origin completed-load tallies, and the per-(country, site) distinct
// visitor counters in whichever representation (exact set or HLL) the run
// uses. Maps are emitted in sorted key order for canonical bytes.
func (t *Telemetry) Snapshot(w io.Writer) error {
	var e snapshot.Encoder
	e.Uvarint(telemetrySnapVersion)
	e.Uvarint(uint64(len(t.cells)))
	for _, vals := range t.cells {
		nz := 0
		for _, v := range vals {
			if v != 0 {
				nz++
			}
		}
		e.Uvarint(uint64(len(vals)))
		e.Uvarint(uint64(nz))
		for site, v := range vals {
			if v != 0 {
				e.Uvarint(uint64(site))
				e.F64(v)
			}
		}
	}

	origins := make([]originKey, 0, len(t.originCompleted))
	for k := range t.originCompleted {
		origins = append(origins, k)
	}
	slices.SortFunc(origins, func(a, b originKey) int {
		if a.site != b.site {
			return int(a.site) - int(b.site)
		}
		return int(a.sub) - int(b.sub)
	})
	e.Uvarint(uint64(len(origins)))
	for _, k := range origins {
		e.Varint(int64(k.site))
		e.Uvarint(uint64(k.sub))
		e.F64(t.originCompleted[k])
	}

	vkeys := make([]int64, 0, len(t.countryVisitors))
	for k := range t.countryVisitors {
		vkeys = append(vkeys, k)
	}
	slices.Sort(vkeys)
	e.Uvarint(uint64(len(vkeys)))
	for _, k := range vkeys {
		e.Varint(k)
		sketch.EncodeDistinct(&e, t.countryVisitors[k])
	}

	e.Int(t.memPeak)
	_, err := e.WriteTo(w)
	return err
}

// Restore replaces the collector's month-spanning state from a Snapshot
// payload.
func (t *Telemetry) Restore(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	ver := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if ver != telemetrySnapVersion {
		return fmt.Errorf("%w: Telemetry payload v%d, this build reads v%d", snapshot.ErrVersion, ver, telemetrySnapVersion)
	}
	// nCells and each cell's size cross-check the collector's geometry;
	// they are not payload item counts (cells are stored sparsely), so no
	// Len plausibility guard applies.
	nCells := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if nCells != len(t.cells) {
		return fmt.Errorf("%w: Telemetry has %d cells, snapshot %d", snapshot.ErrCorrupt, len(t.cells), nCells)
	}
	cells := make([][]float64, nCells)
	for i := 0; i < nCells; i++ {
		size := int(d.Uvarint())
		if d.Err() == nil && size != len(t.cells[i]) {
			return fmt.Errorf("%w: Telemetry cell %d sized %d, snapshot %d", snapshot.ErrCorrupt, i, len(t.cells[i]), size)
		}
		vals := make([]float64, size)
		nz := d.Len(9)
		for j := 0; j < nz; j++ {
			site := d.Uvarint()
			v := d.F64()
			if d.Err() != nil {
				return d.Err()
			}
			if site >= uint64(size) {
				return fmt.Errorf("%w: Telemetry cell %d site %d out of range %d", snapshot.ErrCorrupt, i, site, size)
			}
			vals[site] = v
		}
		cells[i] = vals
	}

	nOrigins := d.Len(3)
	originCompleted := make(map[originKey]float64, nOrigins)
	for i := 0; i < nOrigins; i++ {
		site := int32(d.Varint())
		sub := uint8(d.Uvarint())
		originCompleted[originKey{site, sub}] = d.F64()
	}

	nVisitors := d.Len(3)
	countryVisitors := make(map[int64]sketch.Distinct, nVisitors)
	for i := 0; i < nVisitors; i++ {
		k := d.Varint()
		dist, err := sketch.DecodeDistinct(d)
		if err != nil {
			return err
		}
		countryVisitors[k] = dist
	}

	memPeak := d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	t.cells = cells
	t.originCompleted = originCompleted
	t.countryVisitors = countryVisitors
	t.memPeak = memPeak
	return nil
}
