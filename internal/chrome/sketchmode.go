package chrome

import (
	"toplists/internal/sketch"
	"toplists/internal/traffic"
)

// Sketch mode. The telemetry aggregates are already mergeable — metric cells
// and origin counts are additive, visitor sets union — so the shard states
// mirror the collector's own accumulators and the barrier folds them in
// ascending shard order. The one representation change: per-(country, site)
// visitor counters become coarse HyperLogLogs, so a shard contributes a
// fixed 2^cruxHLLPrecision bytes per key instead of a set of client IDs.

// cruxHLLPrecision sizes the sketch-mode visitor counters. They only gate
// the CrUX privacy threshold, so 64 registers (64 B per key, near-exact
// linear counting at threshold scale) replace the exact ID sets.
const cruxHLLPrecision = 6

// SetSketch switches the collector to sketch-backed aggregation. Must be
// called before the simulation starts.
func (t *Telemetry) SetSketch(cfg sketch.Config) {
	t.sk = cfg
}

// newDistinct builds a visitor counter for the current mode.
func (t *Telemetry) newDistinct() sketch.Distinct {
	if t.sk.Enabled {
		return sketch.NewHLL(cruxHLLPrecision)
	}
	return sketch.NewExact()
}

// telemetryShard accumulates one logical shard's telemetry. Cell slices are
// allocated lazily — a shard only pays for the (country, platform, metric)
// combinations its clients produce — and retained across days.
type telemetryShard struct {
	t               *Telemetry
	cells           [][]float64
	originCompleted map[originKey]float64
	countryVisitors map[int64]sketch.Distinct
	pool            []sketch.Distinct
}

// NewShardState implements traffic.ShardedSink.
func (t *Telemetry) NewShardState() traffic.ShardState {
	return &telemetryShard{
		t:               t,
		cells:           make([][]float64, len(t.cells)),
		originCompleted: make(map[originKey]float64),
		countryVisitors: make(map[int64]sketch.Distinct),
	}
}

func (sh *telemetryShard) cell(i int) []float64 {
	c := sh.cells[i]
	if c == nil {
		c = make([]float64, sh.t.w.NumSites())
		sh.cells[i] = c
	}
	return c
}

// OnPageLoad implements traffic.ShardState, mirroring the exact path's
// filter and contributions with shard-local targets.
func (sh *telemetryShard) OnPageLoad(pl *traffic.PageLoad) {
	c := pl.Client
	if !c.ChromeSync || pl.Private {
		return
	}
	if sh.t.w.Site(pl.Site).NonPublic {
		return
	}
	sh.cell(cellKey(c.Country, c.Platform, InitiatedPageLoads))[pl.Site]++
	if pl.Completed {
		sh.cell(cellKey(c.Country, c.Platform, CompletedPageLoads))[pl.Site]++
		sh.cell(cellKey(c.Country, c.Platform, TimeOnSite))[pl.Site] += pl.DwellSec

		sh.originCompleted[originKey{pl.Site, pl.SubIdx}]++
		vk := int64(c.Country)<<32 | int64(pl.Site)
		d, ok := sh.countryVisitors[vk]
		if !ok {
			if n := len(sh.pool); n > 0 {
				d = sh.pool[n-1]
				sh.pool = sh.pool[:n-1]
				d.Reset()
			} else {
				d = sh.t.newDistinct()
			}
			sh.countryVisitors[vk] = d
		}
		d.Add(uint64(c.ID))
	}
}

// OnDNSQuery implements traffic.ShardState; telemetry sees page loads only.
func (sh *telemetryShard) OnDNSQuery(*traffic.DNSQuery) {}

// Reset implements traffic.ShardState, keeping allocations for the next day.
func (sh *telemetryShard) Reset() {
	for _, c := range sh.cells {
		if c != nil {
			clear(c)
		}
	}
	clear(sh.originCompleted)
	for vk, d := range sh.countryVisitors {
		sh.pool = append(sh.pool, d)
		delete(sh.countryVisitors, vk)
	}
}

// memBytes returns the shard's logical footprint.
func (sh *telemetryShard) memBytes() int {
	var n int
	for _, c := range sh.cells {
		if c != nil {
			n += len(c) * 8
		}
	}
	n += len(sh.originCompleted) * 24
	n += len(sh.countryVisitors) * ((1 << cruxHLLPrecision) + 24)
	return n
}

// MergeShard implements traffic.ShardedSink: additive cells and origin
// counts, register-maxima visitor merges. Called in ascending shard order,
// so the floating-point cell sums are byte-identical at any worker count.
func (t *Telemetry) MergeShard(st traffic.ShardState) {
	sh := st.(*telemetryShard)
	t.shardMem += sh.memBytes()
	if t.shardMem > t.memPeak {
		t.memPeak = t.shardMem
	}
	for i, src := range sh.cells {
		if src == nil {
			continue
		}
		dst := t.cells[i]
		for s, v := range src {
			if v != 0 {
				dst[s] += v
			}
		}
	}
	for key, v := range sh.originCompleted {
		t.originCompleted[key] += v
	}
	for vk, d := range sh.countryVisitors {
		month, ok := t.countryVisitors[vk]
		if !ok {
			month = t.newDistinct()
			t.countryVisitors[vk] = month
		}
		month.Merge(d)
	}
}

// BeginDay implements traffic.Sink: the shard-footprint tally restarts each
// day (shard states are merged and reset at every day barrier).
func (t *Telemetry) BeginDay(day int, weekend bool) { t.shardMem = 0 }

// SketchMemPeak returns the high-water logical footprint of the shard states
// that met at a day barrier. A pure function of configuration and seed.
func (t *Telemetry) SketchMemPeak() int { return t.memPeak }
