package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCell is a deliberately tiny configuration so the grid tests stay
// fast; the full-size path is exercised by cmd/sweep in CI's sweepsmoke.
func testCell(workers int) Cell {
	return Cell{
		Seed: 11, Sites: 600, Clients: 150, Days: 2,
		Workers: workers, Vantages: 1, Backends: 1,
		Experiments: []string{"tab2"},
	}
}

// TestSweepCellDeterminism pins the cell contract: the same cell run at
// workers {1, 4, auto} yields a byte-identical deterministic report
// subset and an identical render hash — the property that makes CSV rows
// comparable across machines with different core counts.
func TestSweepCellDeterminism(t *testing.T) {
	ctx := context.Background()
	base, err := RunCell(ctx, testCell(4))
	if err != nil {
		t.Fatalf("RunCell(workers=4): %v", err)
	}
	baseDet, err := base.Deterministic()
	if err != nil {
		t.Fatalf("Deterministic: %v", err)
	}
	for _, workers := range []int{1, 0} {
		rep, err := RunCell(ctx, testCell(workers))
		if err != nil {
			t.Fatalf("RunCell(workers=%d): %v", workers, err)
		}
		det, err := rep.Deterministic()
		if err != nil {
			t.Fatalf("Deterministic: %v", err)
		}
		if !bytes.Equal(det, baseDet) {
			t.Errorf("workers=%d: deterministic subset differs from workers=4", workers)
		}
		if rep.Meta["render_sha256"] != base.Meta["render_sha256"] {
			t.Errorf("workers=%d: render hash %s != %s", workers,
				rep.Meta["render_sha256"], base.Meta["render_sha256"])
		}
	}
}

// TestSweepRunResumeCSV drives a 2-cell grid end to end: every cell gets
// a valid report file, re-running skips all completed cells, deleting one
// report re-runs exactly that cell, and the merged CSV carries the cell
// parameters and deterministic counters.
func TestSweepRunResumeCSV(t *testing.T) {
	dir := t.TempDir()
	g := Grid{
		Seeds: []uint64{11, 12}, Sites: []int{600}, Clients: []int{150},
		Days: []int{2}, Experiments: []string{"tab2"},
	}
	opt := Options{OutDir: dir, Parallel: 2, Resume: true}

	results, err := Run(context.Background(), g, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.Skipped {
			t.Errorf("cell %s: skipped on a fresh directory", r.Cell.Name())
		}
		rep, err := LoadReport(r.Path)
		if err != nil {
			t.Fatalf("cell %s: report invalid: %v", r.Cell.Name(), err)
		}
		if rep.Meta["cell"] != r.Cell.Name() {
			t.Errorf("cell %s: meta cell = %q", r.Cell.Name(), rep.Meta["cell"])
		}
		if rep.Counters["engine.events.pageload"] == 0 {
			t.Errorf("cell %s: no pageload counter in report", r.Cell.Name())
		}
	}

	// Re-run: every cell must be skipped, reports reloaded for the CSV.
	again, err := Run(context.Background(), g, opt)
	if err != nil {
		t.Fatalf("Run (resume): %v", err)
	}
	for _, r := range again {
		if !r.Skipped {
			t.Errorf("cell %s: re-ran despite existing report", r.Cell.Name())
		}
		if r.Report == nil {
			t.Errorf("cell %s: skipped cell did not reload its report", r.Cell.Name())
		}
	}

	// Delete one report: only that cell re-runs.
	if err := os.Remove(again[0].Path); err != nil {
		t.Fatal(err)
	}
	third, err := Run(context.Background(), g, opt)
	if err != nil {
		t.Fatalf("Run (partial resume): %v", err)
	}
	if third[0].Skipped || !third[1].Skipped {
		t.Errorf("partial resume: skipped = {%v, %v}, want {false, true}",
			third[0].Skipped, third[1].Skipped)
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, third); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), csv.String())
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "cell" || header[1] != "seed" {
		t.Errorf("CSV header starts %v", header[:2])
	}
	if !strings.Contains(lines[0], "engine.events.pageload") {
		t.Errorf("CSV header missing deterministic counters: %s", lines[0])
	}
	if !strings.Contains(lines[0], "phase:phase.amalgam_ns") {
		t.Errorf("CSV header missing phase totals: %s", lines[0])
	}
	for i, row := range lines[1:] {
		if cols := strings.Count(row, ","); cols != strings.Count(lines[0], ",") {
			t.Errorf("row %d has %d separators, header has %d", i, cols, strings.Count(lines[0], ","))
		}
	}

	// Both seeds must produce the same metric key set but different
	// render hashes (different worlds).
	if third[0].Report.Meta["render_sha256"] == third[1].Report.Meta["render_sha256"] {
		t.Error("distinct seeds produced identical render hashes")
	}
}

// TestGridCellsDefaults: an empty grid is one default cell; axes multiply.
func TestGridCellsDefaults(t *testing.T) {
	cells := Grid{}.Cells()
	if len(cells) != 1 {
		t.Fatalf("empty grid expands to %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Seed != 2022 || c.Sites != 20000 || c.Clients != 3000 || c.Days != 14 {
		t.Errorf("default cell = %+v", c)
	}
	if len(c.Experiments) < 8 {
		t.Errorf("default experiments = %v, want the full paper set", c.Experiments)
	}
	grid := Grid{Seeds: []uint64{1, 2, 3}, Sketch: []bool{false, true}}
	if got := len(grid.Cells()); got != 6 {
		t.Errorf("3 seeds x 2 modes = %d cells, want 6", got)
	}
	names := map[string]bool{}
	for _, c := range grid.Cells() {
		if names[c.Name()] {
			t.Errorf("duplicate cell name %s", c.Name())
		}
		names[c.Name()] = true
	}
}

// TestWriteReportAtomic: a torn temp file is never visible under the
// report name, and LoadReport rejects junk.
func TestWriteReportAtomic(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(junk); err == nil {
		t.Error("LoadReport accepted junk")
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadReport accepted a missing file")
	}
}
