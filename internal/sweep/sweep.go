// Package sweep is the declarative grid runner behind cmd/sweep: it
// expands a parameter grid over {seed, clients, sites, days, workers,
// faultrate, sketch, vantages×backends} into cells, executes each cell as
// one full study + evaluation on a bounded pool, and leaves behind one
// toplists-run-report/v1 JSON per cell plus a merged CSV.
//
// Two properties make the sweep usable as the paper-grid regeneration
// entry point (ROADMAP item 5):
//
//   - Cells are resumable: a cell whose report file already exists and
//     parses is skipped, so an interrupted sweep picks up where it
//     stopped and a finished sweep re-run is free.
//
//   - Cell reports carry the deterministic counter subset, so any two
//     cells that differ only in Workers must agree byte-for-byte on it
//     (TestSweepCellDeterminism pins this), and every cell stamps a
//     render hash over its experiment output for cross-config
//     fingerprinting.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"toplists"
	"toplists/internal/obs"
)

// Cell is one point of the grid: a complete study configuration plus the
// experiment set to evaluate on it.
type Cell struct {
	Seed        uint64
	Sites       int
	Clients     int
	Days        int
	Workers     int
	FaultRate   float64
	Sketch      bool
	Vantages    int
	Backends    int
	Experiments []string // expanded experiment IDs ("all" already resolved)
}

// Name returns the cell's filename-safe identity slug; the per-cell
// report is written to <outdir>/<Name>.json. Every grid axis appears, so
// two distinct cells can never collide.
func (c Cell) Name() string {
	mode := "exact"
	if c.Sketch {
		mode = "sketch"
	}
	return fmt.Sprintf("seed%d_n%d_c%d_d%d_w%d_f%s_%s_v%d_b%d",
		c.Seed, c.Sites, c.Clients, c.Days, c.Workers,
		strconv.FormatFloat(c.FaultRate, 'g', -1, 64), mode, c.Vantages, c.Backends)
}

// meta returns the cell parameters as report Meta entries.
func (c Cell) meta() map[string]string {
	mode := "exact"
	if c.Sketch {
		mode = "sketch"
	}
	return map[string]string{
		"cell":        c.Name(),
		"seed":        strconv.FormatUint(c.Seed, 10),
		"sites":       strconv.Itoa(c.Sites),
		"clients":     strconv.Itoa(c.Clients),
		"days":        strconv.Itoa(c.Days),
		"workers":     strconv.Itoa(c.Workers),
		"faultrate":   strconv.FormatFloat(c.FaultRate, 'g', -1, 64),
		"mode":        mode,
		"vantages":    strconv.Itoa(c.Vantages),
		"backends":    strconv.Itoa(c.Backends),
		"experiments": strings.Join(c.Experiments, ","),
	}
}

// Grid is the declarative cross-product specification. Empty axes take
// the single default value noted on each field; Cells expands the full
// cross product in canonical (row-major, declaration order) order.
type Grid struct {
	Seeds      []uint64  // default {2022}
	Sites      []int     // default {20000}
	Clients    []int     // default {3000}
	Days       []int     // default {14}
	Workers    []int     // default {0} (one per CPU)
	FaultRates []float64 // default {0}
	Sketch     []bool    // default {false}
	Vantages   []int     // default {1}
	Backends   []int     // default {1}

	// Experiments is the evaluation set per cell; "all" expands to every
	// paper experiment. Default {"all"}.
	Experiments []string
}

func (g Grid) withDefaults() Grid {
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{2022}
	}
	if len(g.Sites) == 0 {
		g.Sites = []int{20000}
	}
	if len(g.Clients) == 0 {
		g.Clients = []int{3000}
	}
	if len(g.Days) == 0 {
		g.Days = []int{14}
	}
	if len(g.Workers) == 0 {
		g.Workers = []int{0}
	}
	if len(g.FaultRates) == 0 {
		g.FaultRates = []float64{0}
	}
	if len(g.Sketch) == 0 {
		g.Sketch = []bool{false}
	}
	if len(g.Vantages) == 0 {
		g.Vantages = []int{1}
	}
	if len(g.Backends) == 0 {
		g.Backends = []int{1}
	}
	if len(g.Experiments) == 0 {
		g.Experiments = []string{"all"}
	}
	return g
}

// ExpandExperiments resolves "all" to the full canonical experiment list.
func ExpandExperiments(ids []string) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if id != "all" {
			out = append(out, id)
			continue
		}
		for _, e := range toplists.Experiments() {
			out = append(out, e.ID)
		}
	}
	return out
}

// Cells expands the grid's cross product.
func (g Grid) Cells() []Cell {
	g = g.withDefaults()
	exps := ExpandExperiments(g.Experiments)
	var cells []Cell
	for _, seed := range g.Seeds {
		for _, sites := range g.Sites {
			for _, clients := range g.Clients {
				for _, days := range g.Days {
					for _, workers := range g.Workers {
						for _, fr := range g.FaultRates {
							for _, sk := range g.Sketch {
								for _, v := range g.Vantages {
									for _, b := range g.Backends {
										cells = append(cells, Cell{
											Seed: seed, Sites: sites, Clients: clients,
											Days: days, Workers: workers, FaultRate: fr,
											Sketch: sk, Vantages: v, Backends: b,
											Experiments: exps,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// Options configures a sweep run.
type Options struct {
	// OutDir receives one <cell>.json report per cell plus, via WriteCSV,
	// the merged CSV. Created if missing.
	OutDir string
	// Parallel is how many cells run concurrently (default 1; each cell
	// already parallelizes internally via its Workers setting, so cell-
	// level parallelism pays off mainly for grids of small cells).
	Parallel int
	// Resume skips cells whose report file already exists and parses,
	// loading the existing report for the merged CSV instead of re-running.
	Resume bool
	// Log receives per-cell progress (nil is silent).
	Log *obs.Logger
}

// CellResult is one cell's outcome.
type CellResult struct {
	Cell    Cell
	Path    string      // report file location
	Skipped bool        // true when Resume found a valid existing report
	WallNS  int64       // cell wall time (0 when skipped)
	Report  *obs.Report // the written (or reloaded) report
	Err     error
}

// Run executes every cell of the grid, honoring resume, and returns one
// result per cell in grid order. Cell failures don't abort the sweep;
// the first error is returned after all cells settle (ctx cancellation
// aborts promptly).
func Run(ctx context.Context, g Grid, opt Options) ([]CellResult, error) {
	cells := g.Cells()
	if opt.OutDir == "" {
		return nil, fmt.Errorf("sweep: Options.OutDir is required")
	}
	if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	par := opt.Parallel
	if par < 1 {
		par = 1
	}
	results := make([]CellResult, len(cells))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = runOne(ctx, c, opt)
		}(i, c)
	}
	wg.Wait()
	var firstErr error
	for i := range results {
		if results[i].Err != nil {
			firstErr = fmt.Errorf("sweep: cell %s: %w", results[i].Cell.Name(), results[i].Err)
			break
		}
	}
	return results, firstErr
}

// runOne executes (or resumes) one cell and persists its report.
func runOne(ctx context.Context, c Cell, opt Options) CellResult {
	res := CellResult{Cell: c, Path: filepath.Join(opt.OutDir, c.Name()+".json")}
	if opt.Resume {
		if rep, err := LoadReport(res.Path); err == nil {
			res.Skipped = true
			res.Report = rep
			opt.Log.Infof("cell %s: report exists, skipping", c.Name())
			return res
		}
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	opt.Log.Infof("cell %s: running", c.Name())
	start := time.Now()
	rep, err := RunCell(ctx, c)
	res.WallNS = int64(time.Since(start))
	if err != nil {
		res.Err = err
		opt.Log.Errorf("cell %s: %v", c.Name(), err)
		return res
	}
	rep.Meta["wall_ns"] = strconv.FormatInt(res.WallNS, 10)
	res.Report = rep
	if err := writeReportAtomic(rep, res.Path); err != nil {
		res.Err = err
		return res
	}
	opt.Log.Infof("cell %s: done in %v", c.Name(), time.Duration(res.WallNS).Round(time.Millisecond))
	return res
}

// RunCell executes one cell in isolation: fresh registry, full study
// build, concurrent experiment evaluation, render-to-hash, and a report
// snapshot stamped with the cell parameters, the render hash, wall-phase
// totals, and peak RSS. The deterministic subset of the returned report
// is a pure function of the cell with Workers excluded — byte-identical
// at every worker count.
func RunCell(ctx context.Context, c Cell) (*obs.Report, error) {
	reg := obs.NewRegistry()
	// fig8 needs the 21-combination tracking; turning it on only when the
	// cell evaluates fig8 keeps every other cell at the 7-metric cost.
	allCombos := false
	for _, id := range c.Experiments {
		if id == "fig8" {
			allCombos = true
		}
	}
	study, err := toplists.RunContext(ctx, toplists.Config{
		Seed:      c.Seed,
		Sites:     c.Sites,
		Clients:   c.Clients,
		Days:      c.Days,
		Workers:   c.Workers,
		FaultRate: c.FaultRate,
		Sketch:    c.Sketch,
		Vantages:  c.Vantages,
		Backends:  c.Backends,
		AllCombos: allCombos,
		Obs:       reg,
	})
	if err != nil {
		return nil, err
	}
	defer study.Close()
	outcomes, err := study.RunExperimentsContext(ctx, c.Experiments)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	for _, oc := range outcomes {
		if oc.Err != nil {
			return nil, fmt.Errorf("experiment %s: %w", oc.ID, oc.Err)
		}
		if err := oc.Result.Render(h); err != nil {
			return nil, fmt.Errorf("experiment %s: render: %w", oc.ID, err)
		}
	}
	rep := reg.Snapshot()
	rep.Meta = c.meta()
	rep.Meta["render_sha256"] = hex.EncodeToString(h.Sum(nil))
	if rss := maxRSSKB(); rss > 0 {
		// Process-wide high-water mark: with Parallel > 1 concurrent
		// cells share the number, so treat it as an upper bound.
		rep.Meta["rss_hwm_kb"] = strconv.FormatInt(rss, 10)
	}
	return rep, nil
}

// LoadReport reads a per-cell report back, verifying the schema. Used by
// resume and by CSV merging over previously completed cells.
func LoadReport(path string) (*obs.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep obs.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	if rep.Schema != obs.Schema {
		return nil, fmt.Errorf("sweep: %s: schema %q, want %q", path, rep.Schema, obs.Schema)
	}
	return &rep, nil
}

// writeReportAtomic writes the report via a temp file + rename, so a
// crash mid-write can never leave a truncated file that resume would
// mistake for a completed cell (LoadReport would reject it anyway, but a
// clean directory beats a torn one).
func writeReportAtomic(rep *obs.Report, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cell-*.tmp")
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// maxRSSKB reads the process's peak resident set (VmHWM) in KiB from
// /proc/self/status; 0 when unavailable (non-Linux).
func maxRSSKB() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// cellColumns is the canonical cell-parameter column order for the
// merged CSV.
var cellColumns = []string{
	"cell", "seed", "sites", "clients", "days", "workers", "faultrate",
	"mode", "vantages", "backends", "experiments", "render_sha256",
	"wall_ns", "rss_hwm_kb",
}

// WriteCSV merges the sweep's reports into one CSV: cell parameter
// columns, wall/RSS, then the sorted union of every deterministic counter
// and gauge, then per-phase wall totals as phase:<name>_ns. Cells missing
// a metric (failed, or a different mode) leave the field empty.
func WriteCSV(w io.Writer, results []CellResult) error {
	countersU := map[string]struct{}{}
	phasesU := map[string]struct{}{}
	for _, r := range results {
		if r.Report == nil {
			continue
		}
		for k := range r.Report.Counters {
			countersU[k] = struct{}{}
		}
		for k := range r.Report.Gauges {
			countersU[k] = struct{}{}
		}
		for k := range r.Report.Phases {
			phasesU[k] = struct{}{}
		}
	}
	counterCols := make([]string, 0, len(countersU))
	for k := range countersU {
		counterCols = append(counterCols, k)
	}
	sort.Strings(counterCols)
	phaseCols := make([]string, 0, len(phasesU))
	for k := range phasesU {
		phaseCols = append(phaseCols, k)
	}
	sort.Strings(phaseCols)

	header := append([]string{}, cellColumns...)
	header = append(header, counterCols...)
	for _, p := range phaseCols {
		header = append(header, "phase:"+p+"_ns")
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range results {
		if r.Report == nil {
			continue
		}
		row := make([]string, 0, len(header))
		for _, col := range cellColumns {
			row = append(row, csvField(r.Report.Meta[col]))
		}
		for _, col := range counterCols {
			if v, ok := r.Report.Counters[col]; ok {
				row = append(row, strconv.FormatInt(v, 10))
			} else if v, ok := r.Report.Gauges[col]; ok {
				row = append(row, strconv.FormatInt(v, 10))
			} else {
				row = append(row, "")
			}
		}
		for _, col := range phaseCols {
			if p, ok := r.Report.Phases[col]; ok {
				row = append(row, strconv.FormatInt(p.TotalNS, 10))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// csvField quotes a value when it contains CSV metacharacters (the
// experiments list carries commas).
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
