package experiments

import (
	"strings"
	"testing"

	"toplists/internal/core"
)

func TestAttackLeverageAsymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs multiple full studies")
	}
	res, err := RunAttack(core.Config{
		Seed:       2024,
		NumSites:   6000,
		NumClients: 1500,
		Days:       7,
		EvalMagIdx: 1,
	}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	t.Logf("target true rank %d; baseline alexa=%d tranco=%d cf=%d; attacked alexa=%d tranco=%d cf=%d",
		res.TargetTrueRank, res.BaselineAlexaRank, res.BaselineTrancoRank,
		res.BaselineCFRank, row.AlexaRank, row.TrancoRank, row.CFRank)

	// The attack must catapult the target up the Alexa ranking.
	if row.AlexaRank == 0 {
		t.Fatal("attacked target unranked in Alexa")
	}
	if res.BaselineAlexaRank != 0 && row.AlexaRank >= res.BaselineAlexaRank {
		t.Errorf("attack did not improve Alexa rank: %d -> %d",
			res.BaselineAlexaRank, row.AlexaRank)
	}
	if row.AlexaRank > 100 {
		t.Errorf("attacked Alexa rank %d, expected well inside the head", row.AlexaRank)
	}

	// Tranco dampens: the achieved Tranco rank stays far worse than the
	// achieved Alexa rank.
	if row.TrancoRank != 0 && row.TrancoRank < row.AlexaRank*3 {
		t.Errorf("Tranco rank %d too close to Alexa rank %d: amalgam not damping",
			row.TrancoRank, row.AlexaRank)
	}

	// The server-side truth barely moves: the CF rank must stay an order
	// of magnitude worse than the manipulated Alexa rank.
	if row.CFRank != 0 && row.CFRank < row.AlexaRank*5 {
		t.Errorf("CF rank %d moved too much vs Alexa %d", row.CFRank, row.AlexaRank)
	}

	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Manipulation") {
		t.Error("render missing title")
	}
}

func TestAttackNeedsBudgets(t *testing.T) {
	if _, err := RunAttack(core.Config{}, nil); err == nil {
		t.Fatal("empty budget list accepted")
	}
}
