package experiments

import (
	"fmt"
	"io"

	"toplists/internal/report"
)

// SurveyUsage records how research papers consume top lists, per the
// paper's Section 2 survey of USENIX Security, IMC, NSDI, SOUPS, NDSS, and
// WWW in 2021. These are constants from the paper's text, not simulation
// outputs; they justify Jaccard as the primary evaluation metric
// (Section 4.4) and CrUX's bucket-only format being adequate for research.
type SurveyUsage struct {
	Use    string
	Papers int
	Pct    float64
}

// PaperSurvey returns the Section 2 survey rows.
func PaperSurvey() []SurveyUsage {
	return []SurveyUsage{
		{"as an unordered set only", 50, 85},
		{"using website rank directly", 9, 15},
		{"both set and rank (subset of the above)", 5, 8},
	}
}

// ScheitleVenueUsage records the 2018 finding the introduction cites: the
// share of papers per research area that build on a top list [27].
var ScheitleVenueUsage = []SurveyUsage{
	{"Internet measurement venues", 0, 22},
	{"security venues", 0, 9},
	{"web venues", 0, 8},
	{"networking venues", 0, 6},
}

// SurveyResult renders the literature-survey constants as a table.
type SurveyResult struct{}

// ID implements Result.
func (SurveyResult) ID() string { return "survey" }

// Render implements Result.
func (SurveyResult) Render(w io.Writer) error {
	tbl := report.NewTable(
		"Section 2 survey: how papers at six 2021 venues use top lists",
		"Usage", "Papers", "Share")
	for _, row := range PaperSurvey() {
		tbl.AddRow(row.Use, fmt.Sprintf("%d", row.Papers), fmt.Sprintf("%.0f%%", row.Pct))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	tbl2 := report.NewTable(
		"Scheitle et al. 2018: papers relying on a top list, by research area",
		"Area", "Share of papers")
	for _, row := range ScheitleVenueUsage {
		tbl2.AddRow(row.Use, fmt.Sprintf("%.0f%%", row.Pct))
	}
	return tbl2.Render(w)
}
