package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/faults"
	"toplists/internal/httpsim"
	"toplists/internal/names"
	"toplists/internal/report"
)

// faultSenseRates are the injected fault rates the ablation sweeps: the
// clean baseline, routine background weather, a bad measurement day, and
// a pathological outage.
var faultSenseRates = []float64{0, 0.01, 0.05, 0.20}

// faultSenseMaxHosts caps the probed universe so the sweep's HTTP work
// stays bounded on large studies; the cap keeps the head of the site
// table, which is where the evaluation's CF filtering matters.
const faultSenseMaxHosts = 1500

// faultSenseDays matches the core probe sweep's retry-on-next-day budget.
const faultSenseDays = 3

// FaultSenseRow is the sweep's outcome at one injected fault rate, for
// one prober discipline.
type FaultSenseRow struct {
	Rate float64
	// Naive is the single-shot prober (one round, any response
	// classifies, exhausted conflated with down); Resilient is the
	// hardened retry-and-sweep prober.
	Naive, Resilient FaultSenseCell
}

// FaultSenseCell compares one prober's probed CF set against the world's
// server-side truth over the probed hosts.
type FaultSenseCell struct {
	// CF is the size of the probed Cloudflare set.
	CF int
	// Missed is how many truly Cloudflare-served hosts the probe lost
	// (false negatives); False is how many it wrongly included.
	Missed, False int
	// Jaccard is the probed set's Jaccard index against the truth set —
	// 1.0 means the fault weather did not move the filter at all.
	Jaccard float64
	// EvalJaccard is the fig2-style list-vs-metric Jaccard computed with
	// this probed set standing in for the CF filter; compare against
	// FaultSenseResult.TruthEvalJaccard to see how probe faults propagate
	// into the paper's headline comparison.
	EvalJaccard float64
}

// FaultSenseResult is the fault-sensitivity ablation (an extension beyond
// the paper): the same CF-filter probe run under increasing deterministic
// fault rates, once with a naive single-shot prober and once with the
// hardened prober, against the world's ground truth.
type FaultSenseResult struct {
	Hosts   int
	TruthCF int
	// TruthEvalJaccard is the list-vs-metric Jaccard under the true CF
	// set — the drift-free reference for every cell's EvalJaccard.
	TruthEvalJaccard float64
	Rows             []FaultSenseRow
}

// ID implements Result.
func (r *FaultSenseResult) ID() string { return "faultsense" }

// RunFaultSense runs the sweep. Each rate gets its own virtual network
// (the shared study network keeps the study's configured weather), seeded
// from the study's fault seed so the sweep is as reproducible as the
// study itself.
func RunFaultSense(ctx context.Context, s *core.Study) (Result, error) {
	w := s.World
	nHosts := w.NumSites()
	if nHosts > faultSenseMaxHosts {
		nHosts = faultSenseMaxHosts
	}
	hosts := make([]string, nHosts)
	truth := make(map[string]struct{})
	for i := 0; i < nHosts; i++ {
		site := w.Site(int32(i))
		hosts[i] = site.Domain
		if site.Cloudflare() {
			truth[site.Domain] = struct{}{}
		}
	}

	// The ranking-drift probe: one representative exact-rank list against
	// one canonical metric on the evaluation day, re-filtered by each
	// probed set. Uses only probe-independent artifacts, so it never races
	// the shared study network.
	day := evalDay(s)
	l := s.RankedLists()[0]
	m := cfmetrics.AllMetrics()[0]
	norm := s.Artifacts().Normalized(l, day)
	cfRank := s.Artifacts().MetricRanking(day, m)
	tab := s.Names()
	evalWith := func(set map[string]struct{}) float64 {
		return core.EvalListVsMetricIDs(norm, interned(tab, set), cfRank, s.EvalK(), l.Bucketed()).Jaccard
	}

	res := &FaultSenseResult{
		Hosts:            nHosts,
		TruthCF:          len(truth),
		TruthEvalJaccard: evalWith(truth),
	}
	for _, rate := range faultSenseRates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, err := faultSenseAtRate(ctx, s, hosts, truth, rate, evalWith)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// faultSenseAtRate probes hosts over a fresh network at one fault rate
// with both prober disciplines.
func faultSenseAtRate(ctx context.Context, s *core.Study, hosts []string,
	truth map[string]struct{}, rate float64, evalWith func(map[string]struct{}) float64) (FaultSenseRow, error) {
	n := httpsim.NewNetwork()
	n.AddWorld(s.World)
	if rate > 0 {
		n.SetFaultPlan(&faults.Plan{Seed: s.FaultSeed(), Rate: rate})
	}
	n.Start()
	defer n.Close()

	row := FaultSenseRow{Rate: rate}

	naive := httpsim.NewProber(n.Client())
	naive.Concurrency = 64
	naive.SingleShot = true
	naive.AttemptTimeout = 10 * time.Second
	naiveCF := make(map[string]struct{})
	for _, r := range naive.ProbeAll(ctx, hosts) {
		if r.Cloudflare {
			naiveCF[r.Host] = struct{}{}
		}
	}
	if err := ctx.Err(); err != nil {
		return row, err
	}
	row.Naive = scoreCFSet(naiveCF, truth)
	row.Naive.EvalJaccard = evalWith(naiveCF)

	resilient := httpsim.NewProber(n.Client())
	resilient.Concurrency = 64
	resilient.AttemptTimeout = 10 * time.Second
	resilient.BackoffBase = 200 * time.Microsecond
	resilientCF := make(map[string]struct{})
	pending := hosts
	for day := 0; day < faultSenseDays && len(pending) > 0; day++ {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		resilient.Day = day
		resilient.ResetBreakers()
		var unknown []string
		for _, r := range resilient.ProbeAll(ctx, pending) {
			switch {
			case r.Outcome == httpsim.OutcomeUnknown:
				unknown = append(unknown, r.Host)
			case r.Cloudflare:
				resilientCF[r.Host] = struct{}{}
			}
		}
		pending = unknown
	}
	if err := ctx.Err(); err != nil {
		return row, err
	}
	row.Resilient = scoreCFSet(resilientCF, truth)
	row.Resilient.EvalJaccard = evalWith(resilientCF)
	return row, nil
}

// scoreCFSet compares a probed CF set against the truth set.
func scoreCFSet(probed, truth map[string]struct{}) FaultSenseCell {
	c := FaultSenseCell{CF: len(probed)}
	inter := 0
	for h := range truth {
		if _, ok := probed[h]; ok {
			inter++
		} else {
			c.Missed++
		}
	}
	for h := range probed {
		if _, ok := truth[h]; !ok {
			c.False++
		}
	}
	union := len(truth) + len(probed) - inter
	if union > 0 {
		c.Jaccard = float64(inter) / float64(union)
	} else {
		c.Jaccard = 1
	}
	return c
}

// Recovery returns the fraction of truly Cloudflare-served hosts a cell's
// probe recovered, in [0, 1].
func (r *FaultSenseResult) Recovery(c FaultSenseCell) float64 {
	if r.TruthCF == 0 {
		return 1
	}
	return float64(r.TruthCF-c.Missed) / float64(r.TruthCF)
}

// RowAt returns the sweep row for a rate.
func (r *FaultSenseResult) RowAt(rate float64) (FaultSenseRow, bool) {
	for _, row := range r.Rows {
		if row.Rate == rate {
			return row, true
		}
	}
	return FaultSenseRow{}, false
}

// interned converts a string-keyed domain set to a bitset over the name
// table; names outside the table (impossible for probed site domains) are
// dropped.
func interned(tab *names.Table, set map[string]struct{}) *names.Set {
	ids := make([]names.ID, 0, len(set))
	for name := range set {
		if id, ok := tab.Find(name); ok {
			ids = append(ids, id)
		}
	}
	return names.NewSet(ids)
}

// Render implements Result.
func (r *FaultSenseResult) Render(w io.Writer) error {
	tbl := report.NewTable(
		fmt.Sprintf("Fault sensitivity of the Cloudflare filter (%d hosts, %d truly CF, truth eval JJ %.3f)",
			r.Hosts, r.TruthCF, r.TruthEvalJaccard),
		"Fault rate", "Prober", "|CF set|", "Missed", "False", "Set JJ", "Recovery", "Eval drift")
	for _, row := range r.Rows {
		for _, side := range []struct {
			name string
			cell FaultSenseCell
		}{{"single-shot", row.Naive}, {"resilient", row.Resilient}} {
			drift := side.cell.EvalJaccard - r.TruthEvalJaccard
			if drift < 0 {
				drift = -drift
			}
			tbl.AddRow(
				fmt.Sprintf("%.0f%%", row.Rate*100),
				side.name,
				fmt.Sprintf("%d", side.cell.CF),
				fmt.Sprintf("%d", side.cell.Missed),
				fmt.Sprintf("%d", side.cell.False),
				fmt.Sprintf("%.3f", side.cell.Jaccard),
				fmt.Sprintf("%.1f%%", 100*r.Recovery(side.cell)),
				fmt.Sprintf("%.3f", drift),
			)
		}
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "Single-shot probing conflates transient failure with absence; the"+
		" hardened prober retries with fresh fault-plan coordinates across virtual days.")
	return err
}
