package experiments

import (
	"fmt"
	"io"

	"toplists/internal/core"
	"toplists/internal/report"
	"toplists/internal/stats"
)

// StabilityResult reproduces the background claims the paper builds on
// (Section 2, citing Scheitle et al.): top lists are temporally unstable
// and share little with one another — and the Tranco amalgam exists
// precisely to damp the instability. This is an extension artifact, not a
// numbered figure.
type StabilityResult struct {
	Lists []string
	// DayOverDay[list] is the mean Jaccard similarity between consecutive
	// daily snapshots of the list's top-K.
	DayOverDay []float64
	// Pairwise[i][j] is the Jaccard similarity between lists i and j on
	// the final day, at top-K.
	Pairwise [][]float64
	TopK     int
	Days     int
}

// ID implements Result.
func (r *StabilityResult) ID() string { return "stability" }

// RunStability computes the stability and cross-list agreement profile.
func RunStability(s *core.Study) *StabilityResult {
	lists := s.Lists()
	art := s.Artifacts()
	k := s.EvalK()
	days := s.Cfg.Days

	res := &StabilityResult{TopK: k, Days: days}
	for _, l := range lists {
		res.Lists = append(res.Lists, l.Name())
	}

	for _, l := range lists {
		var sims []float64
		for d := 1; d < days; d++ {
			prev := art.Normalized(l, d-1)
			cur := art.Normalized(l, d)
			sims = append(sims, core.JaccardTopK(prev, cur, k))
		}
		res.DayOverDay = append(res.DayOverDay, stats.Mean(sims))
	}

	day := days - 1
	res.Pairwise = newMatrix(len(lists))
	for i := range lists {
		for j := range lists {
			a := art.Normalized(lists[i], day)
			b := art.Normalized(lists[j], day)
			res.Pairwise[i][j] = core.JaccardTopK(a, b, k)
		}
	}
	return res
}

// DayOverDayFor returns a list's mean day-over-day similarity.
func (r *StabilityResult) DayOverDayFor(list string) float64 {
	for i, n := range r.Lists {
		if n == list {
			return r.DayOverDay[i]
		}
	}
	return 0
}

// MeanPairwise returns the average Jaccard between distinct lists — the
// "little agreement between top lists" number.
func (r *StabilityResult) MeanPairwise() float64 {
	var sum float64
	var n int
	for i := range r.Pairwise {
		for j := range r.Pairwise[i] {
			if i == j {
				continue
			}
			sum += r.Pairwise[i][j]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render implements Result.
func (r *StabilityResult) Render(w io.Writer) error {
	tbl := report.NewTable(
		fmt.Sprintf("List Stability (extension; top-%d, %d days)", r.TopK, r.Days),
		"List", "day-over-day JJ")
	for i, l := range r.Lists {
		tbl.AddRow(l, fmt.Sprintf("%.3f", r.DayOverDay[i]))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	hm := &report.Heatmap{
		Title:     "Cross-List Agreement (Jaccard, final day)",
		RowLabels: r.Lists, ColLabels: r.Lists, Values: r.Pairwise,
	}
	if err := hm.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmean agreement between distinct lists: %.3f\n", r.MeanPairwise())
	return nil
}
