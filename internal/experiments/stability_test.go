package experiments

import (
	"strings"
	"testing"
)

func TestStability(t *testing.T) {
	s := getStudy(t)
	r := RunStability(s)
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "List Stability") {
		t.Error("render missing title")
	}

	// Tranco's design goal (Le Pochat et al.): more temporally stable
	// than its volatile inputs.
	tranco := r.DayOverDayFor("Tranco")
	alexa := r.DayOverDayFor("Alexa")
	umbrella := r.DayOverDayFor("Umbrella")
	t.Logf("day-over-day: tranco=%.3f alexa=%.3f umbrella=%.3f", tranco, alexa, umbrella)
	if tranco <= alexa || tranco <= umbrella {
		t.Errorf("Tranco stability %.3f not above Alexa %.3f / Umbrella %.3f",
			tranco, alexa, umbrella)
	}

	// Scheitle et al.: lists have little intersection with one another —
	// far less than any list has with its own yesterday.
	var maxDayOverDay float64
	for _, v := range r.DayOverDay {
		if v > maxDayOverDay {
			maxDayOverDay = v
		}
	}
	if mp := r.MeanPairwise(); mp >= maxDayOverDay {
		t.Errorf("cross-list agreement %.3f not below best self-similarity %.3f",
			mp, maxDayOverDay)
	}

	// The pairwise matrix is symmetric with unit diagonal.
	for i := range r.Pairwise {
		if r.Pairwise[i][i] < 0.999 {
			t.Errorf("diagonal [%d] = %v", i, r.Pairwise[i][i])
		}
		for j := range r.Pairwise[i] {
			if r.Pairwise[i][j] != r.Pairwise[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestSurveyRender(t *testing.T) {
	var b strings.Builder
	if err := (SurveyResult{}).Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"85%", "unordered set", "Scheitle"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("survey missing %q", want)
		}
	}
	if (SurveyResult{}).ID() != "survey" {
		t.Error("id")
	}
	rows := PaperSurvey()
	if len(rows) != 3 || rows[0].Papers != 50 {
		t.Errorf("survey rows = %+v", rows)
	}
}
