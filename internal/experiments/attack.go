package experiments

import (
	"fmt"
	"io"
	"sync"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/report"
	"toplists/internal/traffic"
)

// AttackResult measures list manipulation (an extension reproducing the
// threat model behind Tranco [18] and the infiltration attacks of
// Rweyemamu et al. [26]): an attacker joins the Alexa panel with a handful
// of machines that browse one mid-tail target site all month. The same real
// traffic is a rounding error at the Cloudflare edge but a large slice of
// the sparse panel, so the target rockets up Alexa while the amalgam and
// the server-side truth barely move.
type AttackResult struct {
	// TargetTrueRank is the target's ground-truth popularity rank.
	TargetTrueRank int
	// Rows, one per attacker budget (number of Sybil machines).
	Rows []AttackRow
	// BaselineAlexaRank etc. record the no-attack ranks (0 = unranked).
	BaselineAlexaRank, BaselineTrancoRank, BaselineCFRank int
	Scale                                                 core.Config
}

// AttackRow is the outcome for one attacker budget.
type AttackRow struct {
	// Sybils is the number of attacker machines.
	Sybils int
	// AlexaRank, TrancoRank, CFRank are the target's achieved ranks on the
	// final day (0 = unranked).
	AlexaRank, TrancoRank, CFRank int
}

// ID implements Result.
func (r *AttackResult) ID() string { return "attack" }

// RunAttack runs the baseline plus one study per budget. The target is the
// site at one third of the universe depth — popular enough to be measured,
// far from the head.
func RunAttack(scale core.Config, budgets []int) (*AttackResult, error) {
	if len(budgets) == 0 {
		return nil, fmt.Errorf("experiments: attack needs at least one budget")
	}
	probe := core.NewStudy(scale)
	target := int32(probe.World.NumSites() / 3)
	targetDomain := probe.World.Site(target).Domain

	res := &AttackResult{TargetTrueRank: int(target) + 1, Scale: scale}

	measure := func(sybils int) (alexa, tranco, cf int) {
		cfg := scale
		if sybils > 0 {
			// Each machine stays low-volume: the attack's power comes from
			// panel leverage, not raw traffic.
			cfg.Sybils = []traffic.SybilSpec{{
				Site: target, Clients: sybils, LoadsPerDay: 10, JoinDay: 0,
			}}
		}
		s := core.NewStudy(cfg)
		s.Run()
		defer s.Close()
		day := evalDay(s)
		aList, _ := s.Alexa.Normalized(day, s.PSL)
		alexa, _ = aList.RankOf(targetDomain)
		tranco, _ = s.Tranco.Raw(day).RankOf(targetDomain)
		cf, _ = s.Artifacts().MetricRanking(day, cfmetrics.MAllRequests).RankOf(targetDomain)
		return alexa, tranco, cf
	}

	// The baseline and each budget are independent studies; run them in
	// parallel.
	type outcome struct{ alexa, tranco, cf int }
	outcomes := make([]outcome, len(budgets)+1)
	var wg sync.WaitGroup
	for i, b := range append([]int{0}, budgets...) {
		wg.Add(1)
		go func(i, b int) {
			defer wg.Done()
			a, tr, cf := measure(b)
			outcomes[i] = outcome{a, tr, cf}
		}(i, b)
	}
	wg.Wait()
	res.BaselineAlexaRank = outcomes[0].alexa
	res.BaselineTrancoRank = outcomes[0].tranco
	res.BaselineCFRank = outcomes[0].cf
	for i, b := range budgets {
		o := outcomes[i+1]
		res.Rows = append(res.Rows, AttackRow{Sybils: b, AlexaRank: o.alexa, TrancoRank: o.tranco, CFRank: o.cf})
	}
	return res, nil
}

// Render implements Result.
func (r *AttackResult) Render(w io.Writer) error {
	tbl := report.NewTable(
		fmt.Sprintf("List Manipulation (extension): Sybil panel attack on true-rank-%d site (sites=%d clients=%d days=%d)",
			r.TargetTrueRank, r.Scale.NumSites, r.Scale.NumClients, r.Scale.Days),
		"Sybil machines", "Alexa rank", "Tranco rank", "Cloudflare rank")
	fmtRank := func(v int) string {
		if v == 0 {
			return "unranked"
		}
		return fmt.Sprintf("%d", v)
	}
	tbl.AddRow("0 (baseline)", fmtRank(r.BaselineAlexaRank),
		fmtRank(r.BaselineTrancoRank), fmtRank(r.BaselineCFRank))
	for _, row := range r.Rows {
		tbl.AddRow(fmt.Sprintf("%d", row.Sybils), fmtRank(row.AlexaRank),
			fmtRank(row.TrancoRank), fmtRank(row.CFRank))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\nreading: a handful of machines hijacks Alexa's sparse panel;\n")
	io.WriteString(w, "the 30-day multi-list amalgam and the edge's request volume resist.\n")
	return nil
}
