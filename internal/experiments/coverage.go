package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"toplists/internal/core"
	"toplists/internal/psl"
	"toplists/internal/report"
)

// Table1Result holds Cloudflare coverage of top lists (Table 1): the
// percentage of each list's entries, at each rank magnitude, that are
// served by Cloudflare per the HEAD probe.
type Table1Result struct {
	Lists      []string
	Magnitudes []int
	// CoveragePct[list][magnitude].
	CoveragePct [][]float64
	Day         int
}

// ID implements Result.
func (r *Table1Result) ID() string { return "tab1" }

// RunTable1 computes Table 1 by probing each list's raw entries on the
// evaluation day. The probe sweep honors ctx; cancellation returns the
// context's error rather than a table built from a partial probe.
func RunTable1(ctx context.Context, s *core.Study) (*Table1Result, error) {
	lists := s.Lists()
	day := evalDay(s)
	res := &Table1Result{Day: day, Magnitudes: s.Bucketer.Magnitudes[:]}

	// One probe over the union of all entries keeps the HTTP work linear.
	union := make(map[string]struct{})
	rawTops := make([][]string, len(lists))
	for li, l := range lists {
		raw := l.Raw(day)
		limit := s.Bucketer.Magnitudes[3]
		if limit > raw.Len() {
			limit = raw.Len()
		}
		hosts := make([]string, 0, limit)
		for i := 1; i <= limit; i++ {
			h := entryHost(raw.At(i))
			hosts = append(hosts, h)
			union[h] = struct{}{}
		}
		rawTops[li] = hosts
		res.Lists = append(res.Lists, l.Name())
	}
	all := make([]string, 0, len(union))
	for h := range union {
		all = append(all, h)
	}
	cf, err := s.ProbeHostsContext(ctx, all)
	if err != nil {
		return nil, err
	}

	res.CoveragePct = make([][]float64, len(lists))
	for li := range lists {
		res.CoveragePct[li] = make([]float64, len(res.Magnitudes))
		for mi, mag := range res.Magnitudes {
			n := mag
			if n > len(rawTops[li]) {
				n = len(rawTops[li])
			}
			if n == 0 {
				continue
			}
			hit := 0
			for _, h := range rawTops[li][:n] {
				if _, ok := cf[h]; ok {
					hit++
				}
			}
			res.CoveragePct[li][mi] = 100 * float64(hit) / float64(n)
		}
	}
	return res, nil
}

// Coverage returns one list's coverage at magnitude index mi.
func (r *Table1Result) Coverage(list string, mi int) float64 {
	for li, n := range r.Lists {
		if n == list {
			return r.CoveragePct[li][mi]
		}
	}
	return 0
}

// entryHost converts a raw list entry (domain, FQDN, or origin) to a
// probeable hostname.
func entryHost(entry string) string {
	s := strings.TrimPrefix(entry, "https://")
	s = strings.TrimPrefix(s, "http://")
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Render implements Result.
func (r *Table1Result) Render(w io.Writer) error {
	headers := []string{"Top List"}
	for mi := range r.Magnitudes {
		headers = append(headers, magLabel(r.Magnitudes[mi]))
	}
	tbl := report.NewTable("Table 1: Cloudflare Coverage of Top Lists (%)", headers...)
	for li, l := range r.Lists {
		cells := []string{l}
		for mi := range r.Magnitudes {
			cells = append(cells, fmt.Sprintf("%.2f", r.CoveragePct[li][mi]))
		}
		tbl.AddRow(cells...)
	}
	return tbl.Render(w)
}

func magLabel(m int) string {
	switch {
	case m >= 1_000_000 && m%1_000_000 == 0:
		return fmt.Sprintf("%dM", m/1_000_000)
	case m >= 1_000 && m%1_000 == 0:
		return fmt.Sprintf("%dK", m/1_000)
	default:
		return fmt.Sprintf("%d", m)
	}
}

// Table2Result holds the PSL deviation analysis (Table 2): the percentage
// of each list's entries, per magnitude, that are not already registrable
// domains.
type Table2Result struct {
	Lists        []string
	Magnitudes   []int
	DeviationPct [][]float64
	Day          int
}

// ID implements Result.
func (r *Table2Result) ID() string { return "tab2" }

// RunTable2 computes Table 2.
func RunTable2(s *core.Study) *Table2Result {
	lists := s.Lists()
	day := evalDay(s)
	res := &Table2Result{Day: day, Magnitudes: s.Bucketer.Magnitudes[:]}
	res.DeviationPct = make([][]float64, len(lists))
	for li, l := range lists {
		res.Lists = append(res.Lists, l.Name())
		res.DeviationPct[li] = make([]float64, len(res.Magnitudes))
		raw := l.Raw(day)
		for mi, mag := range res.Magnitudes {
			n := mag
			if n > raw.Len() {
				n = raw.Len()
			}
			if n == 0 {
				continue
			}
			dev := 0
			for i := 1; i <= n; i++ {
				if deviatesFromPSL(raw.At(i), s.PSL) {
					dev++
				}
			}
			res.DeviationPct[li][mi] = 100 * float64(dev) / float64(n)
		}
	}
	return res
}

// deviatesFromPSL reports whether a raw entry is not already in PSL
// registrable-domain form. Origins are judged by their host.
func deviatesFromPSL(entry string, l *psl.List) bool {
	host := entryHost(entry)
	etld1, ok := l.RegisteredDomain(host)
	return !ok || etld1 != host
}

// Deviation returns one list's deviation at magnitude index mi.
func (r *Table2Result) Deviation(list string, mi int) float64 {
	for li, n := range r.Lists {
		if n == list {
			return r.DeviationPct[li][mi]
		}
	}
	return 0
}

// Render implements Result.
func (r *Table2Result) Render(w io.Writer) error {
	headers := []string{"Top List"}
	for _, m := range r.Magnitudes {
		headers = append(headers, magLabel(m))
	}
	tbl := report.NewTable("Table 2: Percent of Entries Deviating from Public Suffix List", headers...)
	for li, l := range r.Lists {
		cells := []string{l}
		for mi := range r.Magnitudes {
			cells = append(cells, fmt.Sprintf("%.2f", r.DeviationPct[li][mi]))
		}
		tbl.AddRow(cells...)
	}
	return tbl.Render(w)
}
