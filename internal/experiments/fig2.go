package experiments

import (
	"fmt"
	"io"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/report"
	"toplists/internal/stats"
)

// Fig2Result holds the headline evaluation (Figure 2): each top list
// against each of the seven Cloudflare metrics, using the Section 4.3
// methodology, averaged over all days.
type Fig2Result struct {
	Lists   []string
	Metrics []cfmetrics.Metric
	// Cells[list][metric] is the month-averaged comparison.
	Cells [][]core.ListVsMetric
	// MetricAgreement is the pairwise Spearman correlation between the
	// seven metrics' orderings of the lists by Jaccard — the paper's
	// "perfect agreement" finding (rs = 1.0 for all pairs).
	MetricAgreement [][]float64
	TopK            int
}

// ID implements Result.
func (r *Fig2Result) ID() string { return "fig2" }

// RunFig2 computes Figure 2.
func RunFig2(s *core.Study) *Fig2Result {
	lists := s.Lists()
	metrics := cfmetrics.AllMetrics()
	k := s.EvalK()
	art := s.Artifacts()
	cfSet := art.CFDomainIDs()

	res := &Fig2Result{Metrics: metrics, TopK: k}
	for _, l := range lists {
		res.Lists = append(res.Lists, l.Name())
	}
	res.Cells = make([][]core.ListVsMetric, len(lists))

	deepK := s.SpearmanK()
	days := s.Pipeline.NumDays()
	for li, l := range lists {
		res.Cells[li] = make([]core.ListVsMetric, len(metrics))
		for mi, m := range metrics {
			var daily []core.ListVsMetric
			for d := 0; d < days; d++ {
				norm := art.Normalized(l, d)
				cf := art.MetricRanking(d, m)
				// Set intersection is judged at the scarce head cut; rank
				// correlation over the full list depth, where tail noise
				// (alphabetical runs, panel starvation) lives.
				ev := core.EvalListVsMetricIDs(norm, cfSet, cf, k, l.Bucketed())
				if !l.Bucketed() {
					deep := core.EvalListVsMetricIDs(norm, cfSet, cf, deepK, false)
					ev.Spearman, ev.SpearmanOK = deep.Spearman, deep.SpearmanOK
				}
				daily = append(daily, ev)
			}
			res.Cells[li][mi] = core.MeanListVsMetric(daily)
		}
	}
	res.MetricAgreement = metricAgreement(res)
	return res
}

// metricAgreement computes, for each pair of metrics, the Spearman
// correlation between their orderings of the lists by Jaccard index.
func metricAgreement(res *Fig2Result) [][]float64 {
	n := len(res.Metrics)
	perMetric := make([][]float64, n)
	for mi := 0; mi < n; mi++ {
		scores := make([]float64, len(res.Lists))
		for li := range res.Lists {
			scores[li] = res.Cells[li][mi].Jaccard
		}
		perMetric[mi] = scores
	}
	out := newMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rs, err := stats.Spearman(perMetric[i], perMetric[j])
			if err != nil {
				rs = 0
			}
			out[i][j] = rs
		}
	}
	return out
}

// MinMetricAgreement returns the smallest pairwise agreement — 1.0 means
// the metrics rank the lists' accuracy identically.
func (r *Fig2Result) MinMetricAgreement() float64 {
	lo := 1.0
	for i := range r.MetricAgreement {
		for j := range r.MetricAgreement[i] {
			if r.MetricAgreement[i][j] < lo {
				lo = r.MetricAgreement[i][j]
			}
		}
	}
	return lo
}

// JaccardRange returns the min and max Jaccard a list achieves across the
// seven metrics, the form the paper quotes ("CrUX: JJ = 0.23-0.43").
func (r *Fig2Result) JaccardRange(list string) (lo, hi float64) {
	lo, hi = 1, 0
	for li, name := range r.Lists {
		if name != list {
			continue
		}
		for mi := range r.Metrics {
			v := r.Cells[li][mi].Jaccard
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// MeanJaccard returns a list's Jaccard averaged over the seven metrics.
func (r *Fig2Result) MeanJaccard(list string) float64 {
	for li, name := range r.Lists {
		if name != list {
			continue
		}
		var vals []float64
		for mi := range r.Metrics {
			vals = append(vals, r.Cells[li][mi].Jaccard)
		}
		return stats.Mean(vals)
	}
	return 0
}

// MeanSpearman returns a list's Spearman averaged over metrics (NaN-free:
// lists without Spearman return ok=false).
func (r *Fig2Result) MeanSpearman(list string) (float64, bool) {
	for li, name := range r.Lists {
		if name != list {
			continue
		}
		var vals []float64
		for mi := range r.Metrics {
			if r.Cells[li][mi].SpearmanOK {
				vals = append(vals, r.Cells[li][mi].Spearman)
			}
		}
		if len(vals) == 0 {
			return 0, false
		}
		return stats.Mean(vals), true
	}
	return 0, false
}

// Render implements Result.
func (r *Fig2Result) Render(w io.Writer) error {
	cols := make([]string, len(r.Metrics))
	for i, m := range r.Metrics {
		cols[i] = m.String()
	}
	jj := &report.Heatmap{
		Title:     "Figure 2a: Top Lists vs Cloudflare Metrics (Jaccard)",
		RowLabels: r.Lists, ColLabels: shortLabels(cols),
		Values: make([][]float64, len(r.Lists)),
	}
	rs := &report.Heatmap{
		Title:     "Figure 2b: Top Lists vs Cloudflare Metrics (Spearman)",
		RowLabels: r.Lists, ColLabels: shortLabels(cols),
		Values:  make([][]float64, len(r.Lists)),
		Missing: make([][]bool, len(r.Lists)),
	}
	for li := range r.Lists {
		jj.Values[li] = make([]float64, len(r.Metrics))
		rs.Values[li] = make([]float64, len(r.Metrics))
		rs.Missing[li] = make([]bool, len(r.Metrics))
		for mi := range r.Metrics {
			jj.Values[li][mi] = r.Cells[li][mi].Jaccard
			rs.Values[li][mi] = r.Cells[li][mi].Spearman
			rs.Missing[li][mi] = !r.Cells[li][mi].SpearmanOK
		}
	}
	if err := jj.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	if err := rs.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nMinimum pairwise metric agreement on list ordering (Spearman): %.2f\n",
		r.MinMetricAgreement())
	return nil
}
