package experiments

import (
	"context"
	"fmt"
	"io"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/names"
	"toplists/internal/rank"
	"toplists/internal/report"
	"toplists/internal/world"
)

// VantageEdge is the disagreement profile of one (vantage, backend) edge
// pipeline against the ground truth its backend could have observed.
type VantageEdge struct {
	Vantage string
	Backend string
	// Ranked is the number of sites the edge's monthly list ranks.
	Ranked int
	// Jaccard compares the edge's monthly top-K against the backend-
	// restricted ground-truth top-K.
	Jaccard float64
	// Spearman correlates shared top-K ranks against the same truth;
	// valid only if SpearmanOK.
	Spearman   float64
	SpearmanOK bool
	// MovedShare is the fraction of backend-served domains (bucketed by
	// ground-truth rank magnitude) the edge places in a different
	// magnitude bucket — the per-vantage Figure 5 headline number.
	MovedShare float64
	// HomeShare is the fraction of the edge's top-K homed in the
	// vantage's own country; HomeBias is that share divided by the
	// transparent global vantage's share for the same country and
	// backend (1 = no home-country bias, >1 = over-represents home).
	HomeShare float64
	HomeBias  float64
}

// VantagesResult is the multi-vantage disagreement analysis: how much the
// measured popularity ranking depends on where you measure from.
type VantagesResult struct {
	Vantages []string
	Backends []string
	// Edges holds one profile per (vantage, backend), vantage-major.
	Edges []VantageEdge
	// Divergence[i][j] is the Jaccard similarity between vantage i's and
	// vantage j's monthly top-K on the primary (Cloudflare-style)
	// backend — the cross-vantage rank divergence matrix.
	Divergence [][]float64
	TopK       int
	Metric     string
}

// ID implements Result.
func (r *VantagesResult) ID() string { return "vantages" }

// RunVantages computes the per-vantage disagreement analysis from the
// study's edge pipeline grid. With the default single transparent vantage
// the result degenerates to a one-row table with zero divergence, which is
// exactly the single-edge model's claim.
func RunVantages(ctx context.Context, s *core.Study) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	art := s.Artifacts()
	w := s.World
	k := s.EvalK()
	truth := w.TrueRank()
	metric := cfmetrics.MAllRequests

	res := &VantagesResult{TopK: k, Metric: metric.String()}
	for _, v := range s.Vantages() {
		res.Vantages = append(res.Vantages, v.Name)
	}
	for _, b := range s.Backends() {
		res.Backends = append(res.Backends, b.String())
	}

	// Ground truth per backend: the true global ranking restricted to the
	// sites that serve any traffic through that backend — what a perfect,
	// loss-free observer of the backend's edge would rank.
	truthOn := make([]*rank.Ranking, len(s.Backends()))
	onSets := make([]*names.Set, len(s.Backends()))
	for bi, b := range s.Backends() {
		ids := make([]names.ID, 0, w.NumSites())
		for i := 0; i < w.NumSites(); i++ {
			if w.Site(int32(i)).OnBackend(b) {
				ids = append(ids, w.DomainID(int32(i)))
			}
		}
		onSets[bi] = names.NewSet(ids)
		truthOn[bi] = truth.FilterIDs(onSets[bi].Contains)
	}

	homeShare := func(r *rank.Ranking, home world.Country) float64 {
		top := r.Top(k)
		if top.Len() == 0 {
			return 0
		}
		var n int
		for i := 1; i <= top.Len(); i++ {
			if id, ok := w.ByDomain(top.At(i)); ok && w.Site(id).Home == home {
				n++
			}
		}
		return float64(n) / float64(top.Len())
	}

	for vi, v := range s.Vantages() {
		for bi := range s.Backends() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			monthly := art.EdgeMonthlyMetric(vi, bi, metric)
			edge := VantageEdge{
				Vantage: v.Name,
				Backend: res.Backends[bi],
				Ranked:  monthly.Len(),
				Jaccard: core.JaccardTopK(monthly, truthOn[bi], k),
			}
			if rs, shared, err := core.SpearmanTopK(monthly, truthOn[bi], k); err == nil && shared > 2 {
				edge.Spearman, edge.SpearmanOK = rs, true
			}

			// Bucket the backend's domains by true rank magnitude and count
			// how many the edge's view moves to a different magnitude.
			agreed := make(map[names.ID]rank.Bucket)
			for i := 1; i <= truthOn[bi].Len(); i++ {
				if b := s.Bucketer.BucketOf(i); b != rank.BucketBeyond {
					agreed[truthOn[bi].IDAt(i)] = b
				}
			}
			mv := core.ComputeMovementIDs(agreed, monthly, s.Bucketer)
			var stayed, total int
			for a := 0; a < rank.NumBuckets; a++ {
				for b := 0; b < rank.NumBuckets; b++ {
					total += mv.Matrix[a][b]
					if a == b {
						stayed += mv.Matrix[a][b]
					}
				}
			}
			if total > 0 {
				edge.MovedShare = 1 - float64(stayed)/float64(total)
			}

			edge.HomeShare = homeShare(monthly, v.Country)
			if base := homeShare(art.EdgeMonthlyMetric(0, bi, metric), v.Country); base > 0 {
				edge.HomeBias = edge.HomeShare / base
			}
			res.Edges = append(res.Edges, edge)
		}
	}

	res.Divergence = newMatrix(len(res.Vantages))
	for i := range res.Vantages {
		for j := range res.Vantages {
			a := art.EdgeMonthlyMetric(i, 0, metric)
			b := art.EdgeMonthlyMetric(j, 0, metric)
			res.Divergence[i][j] = core.JaccardTopK(a, b, k)
		}
	}
	return res, nil
}

// EdgeFor returns the profile of one (vantage, backend) edge.
func (r *VantagesResult) EdgeFor(vantage, backend string) (VantageEdge, bool) {
	for _, e := range r.Edges {
		if e.Vantage == vantage && e.Backend == backend {
			return e, true
		}
	}
	return VantageEdge{}, false
}

// MinDivergence returns the smallest cross-vantage Jaccard — the worst
// pairwise disagreement between vantages on the primary backend.
func (r *VantagesResult) MinDivergence() float64 {
	min := 1.0
	for i := range r.Divergence {
		for j := range r.Divergence {
			if i != j && r.Divergence[i][j] < min {
				min = r.Divergence[i][j]
			}
		}
	}
	return min
}

// Render implements Result.
func (r *VantagesResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Vantage disagreement: %s, top-%d (%d vantages x %d backends)\n\n",
		r.Metric, r.TopK, len(r.Vantages), len(r.Backends))

	t := report.NewTable("Per-edge view vs backend ground truth",
		"Vantage", "Backend", "Ranked", "Jaccard", "Spearman", "Moved", "HomeShare", "HomeBias")
	for _, e := range r.Edges {
		sp := "n/a"
		if e.SpearmanOK {
			sp = fmt.Sprintf("%.3f", e.Spearman)
		}
		t.AddRow(e.Vantage, e.Backend, fmt.Sprintf("%d", e.Ranked),
			fmt.Sprintf("%.3f", e.Jaccard), sp, fmt.Sprintf("%.3f", e.MovedShare),
			fmt.Sprintf("%.3f", e.HomeShare), fmt.Sprintf("%.2f", e.HomeBias))
	}
	if err := t.Render(w); err != nil {
		return err
	}

	m := report.NewTable("Cross-vantage rank divergence (Jaccard of monthly top-K, cdnflare backend)",
		append([]string{"Vantage"}, r.Vantages...)...)
	for i, v := range r.Vantages {
		row := []string{v}
		for j := range r.Vantages {
			row = append(row, fmt.Sprintf("%.3f", r.Divergence[i][j]))
		}
		m.AddRow(row...)
	}
	return m.Render(w)
}
