package experiments

import (
	"testing"

	"toplists/internal/cfmetrics"
	"toplists/internal/psl"
)

func TestEntryHost(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "example.com"},
		{"www.example.com", "www.example.com"},
		{"https://example.com", "example.com"},
		{"http://example.com:8080", "example.com"},
		{"https://shop.example.co.uk", "shop.example.co.uk"},
	}
	for _, c := range cases {
		if got := entryHost(c.in); got != c.want {
			t.Errorf("entryHost(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDeviatesFromPSL(t *testing.T) {
	l := psl.Default()
	cases := []struct {
		in   string
		want bool
	}{
		{"example.com", false},
		{"www.example.com", true},
		{"https://example.com", false}, // origin of a registrable domain
		{"https://www.example.com", true},
		{"com", true}, // bare suffix has no registrable domain
		{"example.co.uk", false},
		{"a.b.example.co.uk", true},
	}
	for _, c := range cases {
		if got := deviatesFromPSL(c.in, l); got != c.want {
			t.Errorf("deviatesFromPSL(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMagLabel(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{1000, "1K"}, {10000, "10K"}, {1000000, "1M"}, {250, "250"}, {2500, "2500"},
	}
	for _, c := range cases {
		if got := magLabel(c.in); got != c.want {
			t.Errorf("magLabel(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestShortLabelsAndIndexLabels(t *testing.T) {
	in := []string{"short", "averyveryverylongname"}
	out := shortLabels(in)
	if out[0] != "short" || len(out[1]) != 10 {
		t.Errorf("shortLabels = %v", out)
	}
	idx := indexLabels(3)
	if idx[0] != "1" || idx[2] != "3" {
		t.Errorf("indexLabels = %v", idx)
	}
	if itoa(0) != "0" || itoa(1234) != "1234" {
		t.Error("itoa")
	}
}

func TestDoubled(t *testing.T) {
	out := doubled([]string{"Alexa", "Umbrella"})
	if len(out) != 4 || out[0] != "Alexa J" || out[3] != "Umbrel S" {
		t.Errorf("doubled = %v", out)
	}
}

func TestMonthlyMetricAggregation(t *testing.T) {
	s := getStudy(t)
	m := s.Artifacts().MonthlyMetric(cfmetrics.MAllRequests)
	if m.Len() == 0 {
		t.Fatal("empty monthly metric")
	}
	// The monthly head should be a superset-ish blend of daily heads: the
	// day-0 top entry must rank highly in the aggregate.
	day0 := s.Pipeline.MetricRanking(0, cfmetrics.MAllRequests)
	top := day0.At(1)
	r, ok := m.RankOf(top)
	if !ok || r > 10 {
		t.Errorf("day-0 #1 %q has monthly rank %d (%v)", top, r, ok)
	}
	// Aggregate covers at least as many sites as any single day.
	if m.Len() < day0.Len() {
		t.Errorf("monthly %d < day0 %d", m.Len(), day0.Len())
	}
}

func TestArtifactStoreReuse(t *testing.T) {
	s := getStudy(t)
	art := s.Artifacts()
	a := art.Normalized(s.Alexa, 0)
	b := art.Normalized(s.Alexa, 0)
	if a != b {
		t.Error("store did not reuse the normalized list")
	}
	if art.Normalized(s.Alexa, 1) == a {
		t.Error("different days share a store entry")
	}
	if art.MetricRanking(0, cfmetrics.MAllRequests) != art.MetricRanking(0, cfmetrics.MAllRequests) {
		t.Error("store did not reuse the metric ranking")
	}
	if art.MonthlyMetric(cfmetrics.MAllRequests) != art.MonthlyMetric(cfmetrics.MAllRequests) {
		t.Error("store did not reuse the monthly amalgam")
	}
}
