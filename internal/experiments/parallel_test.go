package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"toplists/internal/core"
)

// evalOracleCfg is the fixture for the evaluation-determinism oracle: small
// enough to build twice (once serial, once shared) under -race, with every
// combo tracked so fig8 participates.
var evalOracleCfg = core.Config{
	Seed:           2022,
	NumSites:       1500,
	NumClients:     300,
	Days:           4,
	TrackAllCombos: true,
	EvalMagIdx:     1,
}

// TestConcurrentEvaluationMatchesSerial is the evaluation analogue of the
// traffic engine's determinism-across-workers test: every experiment, run
// concurrently (and twice over, so each memoized artifact has many
// simultaneous requesters) against one shared study, must render
// byte-identically to a serial run against a fresh study of the same
// configuration. Run it with -race to also exercise the artifact store's
// singleflight paths.
func TestConcurrentEvaluationMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full studies")
	}
	runners := append(All(), Extensions()...)

	serial := core.NewStudy(evalOracleCfg)
	serial.Run()
	defer serial.Close()
	want := make(map[string]string, len(runners))
	for _, oc := range RunConcurrent(context.Background(), serial, runners, 1) {
		if oc.Err != nil {
			t.Fatalf("serial %s: %v", oc.Runner.ID, oc.Err)
		}
		var b strings.Builder
		if err := oc.Result.Render(&b); err != nil {
			t.Fatalf("serial render %s: %v", oc.Runner.ID, err)
		}
		want[oc.Runner.ID] = b.String()
	}

	shared := core.NewStudy(evalOracleCfg)
	shared.Run()
	defer shared.Close()

	const rounds = 2
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for _, r := range runners {
			wg.Add(1)
			go func(round int, r Runner) {
				defer wg.Done()
				res, err := r.Run(context.Background(), shared)
				if err != nil {
					t.Errorf("round %d %s: %v", round, r.ID, err)
					return
				}
				var b strings.Builder
				if err := res.Render(&b); err != nil {
					t.Errorf("round %d render %s: %v", round, r.ID, err)
					return
				}
				if b.String() != want[r.ID] {
					t.Errorf("round %d %s: concurrent render differs from serial fresh-study render", round, r.ID)
				}
			}(round, r)
		}
	}
	wg.Wait()
}

// TestRunConcurrentOrderAndEquivalence pins RunConcurrent's contract:
// outcomes come back in input order regardless of completion order, and the
// parallel pool renders byte-identically to the serial (workers=1) path over
// the same warmed study.
func TestRunConcurrentOrderAndEquivalence(t *testing.T) {
	s := getStudy(t)
	runners := append(All(), Extensions()...)

	render := func(ocs []Outcome) map[string]string {
		t.Helper()
		out := make(map[string]string, len(ocs))
		for i, oc := range ocs {
			if oc.Runner.ID != runners[i].ID {
				t.Fatalf("outcome %d is %s, want %s (input order violated)", i, oc.Runner.ID, runners[i].ID)
			}
			if oc.Err != nil {
				t.Fatalf("%s: %v", oc.Runner.ID, oc.Err)
			}
			var b strings.Builder
			if err := oc.Result.Render(&b); err != nil {
				t.Fatalf("render %s: %v", oc.Runner.ID, err)
			}
			out[oc.Runner.ID] = b.String()
		}
		return out
	}

	serial := render(RunConcurrent(context.Background(), s, runners, 1))
	parallel := render(RunConcurrent(context.Background(), s, runners, 0))
	for id, want := range serial {
		if parallel[id] != want {
			t.Errorf("%s: parallel render differs from serial", id)
		}
	}
}
