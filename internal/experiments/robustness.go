package experiments

import (
	"fmt"
	"io"
	"sync"

	"toplists/internal/core"
	"toplists/internal/report"
	"toplists/internal/stats"
	"toplists/internal/world"
)

// RobustnessResult replicates the study's headline numbers across
// independent seeds — the reproducibility analysis the paper could not run
// (it had one February). Each row is one headline metric; each column one
// replication.
type RobustnessResult struct {
	Seeds   []uint64
	Metrics []string
	// Values[metric][seed].
	Values [][]float64
	Scale  core.Config
}

// ID implements Result.
func (r *RobustnessResult) ID() string { return "robustness" }

// headlineMetricNames lists what RunRobustness measures per seed.
var headlineMetricNames = []string{
	"CrUX mean Jaccard",
	"Umbrella mean Jaccard",
	"Alexa mean Jaccard",
	"Secrank mean Jaccard",
	"metric agreement (min rs)",
	"Alexa overranked % (10K)",
	"CrUX overranked % (10K)",
	"CrUX adult odds ratio",
}

// RunRobustness replicates the headline metrics over the given seeds at the
// given scale. Cost is len(seeds) full studies.
func RunRobustness(scale core.Config, seeds []uint64) (*RobustnessResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: robustness needs at least one seed")
	}
	res := &RobustnessResult{Seeds: seeds, Scale: scale}
	res.Metrics = append(res.Metrics, headlineMetricNames...)
	res.Values = make([][]float64, len(headlineMetricNames))
	for i := range res.Values {
		res.Values[i] = make([]float64, len(seeds))
	}

	// Replications are independent and deterministic per seed; run them in
	// parallel.
	var wg sync.WaitGroup
	for si, seed := range seeds {
		wg.Add(1)
		go func(si int, seed uint64) {
			defer wg.Done()
			cfg := scale
			cfg.Seed = seed
			s := core.NewStudy(cfg)
			s.Run()
			fig2 := RunFig2(s)
			fig5 := RunFig5(s)
			for mi, name := range headlineMetricNames {
				switch name {
				case "CrUX mean Jaccard":
					res.Values[mi][si] = fig2.MeanJaccard("CrUX")
				case "Umbrella mean Jaccard":
					res.Values[mi][si] = fig2.MeanJaccard("Umbrella")
				case "Alexa mean Jaccard":
					res.Values[mi][si] = fig2.MeanJaccard("Alexa")
				case "Secrank mean Jaccard":
					res.Values[mi][si] = fig2.MeanJaccard("Secrank")
				case "metric agreement (min rs)":
					res.Values[mi][si] = fig2.MinMetricAgreement()
				case "Alexa overranked % (10K)":
					res.Values[mi][si] = fig5.OverrankFor("Alexa", 1).OverrankedPct
				case "CrUX overranked % (10K)":
					res.Values[mi][si] = fig5.OverrankFor("CrUX", 1).OverrankedPct
				case "CrUX adult odds ratio":
					res.Values[mi][si] = categoryOdds(s, s.Crux.Normalized, world.Adult)
				}
			}
			s.Close()
		}(si, seed)
	}
	wg.Wait()
	return res, nil
}

// Row returns one metric's per-seed values.
func (r *RobustnessResult) Row(metric string) []float64 {
	for i, m := range r.Metrics {
		if m == metric {
			return r.Values[i]
		}
	}
	return nil
}

// Render implements Result.
func (r *RobustnessResult) Render(w io.Writer) error {
	tbl := report.NewTable(
		fmt.Sprintf("Headline Robustness Across %d Seeds (extension; sites=%d clients=%d days=%d)",
			len(r.Seeds), r.Scale.NumSites, r.Scale.NumClients, r.Scale.Days),
		"Metric", "Mean", "StdDev", "Min", "Max")
	for i, m := range r.Metrics {
		vals := r.Values[i]
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		tbl.AddRow(m,
			fmt.Sprintf("%.3f", stats.Mean(vals)),
			fmt.Sprintf("%.3f", stats.StdDev(vals)),
			fmt.Sprintf("%.3f", lo),
			fmt.Sprintf("%.3f", hi))
	}
	return tbl.Render(w)
}
