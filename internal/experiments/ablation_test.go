package experiments

import (
	"strings"
	"testing"

	"toplists/internal/core"
)

// TestAblations validates the mechanism inventory of DESIGN.md: disabling
// each planted mechanism moves its target finding in the documented
// direction. This is the check the paper could never run — it requires
// owning the ground truth.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs seven full studies")
	}
	res, err := RunAblations(core.Config{
		Seed:       99,
		NumSites:   8000,
		NumClients: 1800,
		Days:       7,
		EvalMagIdx: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		t.Logf("%-32s base=%.3f ablated=%.3f (want higher: %v)",
			row.Mechanism, row.Base, row.Ablated, row.WantHigher)
		if !row.AsExpected() {
			t.Errorf("%s: ablation moved %s the wrong way (%.3f -> %.3f, want higher=%v)",
				row.Mechanism, row.Metric, row.Base, row.Ablated, row.WantHigher)
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Mechanism Ablations") {
		t.Error("render missing title")
	}
}
