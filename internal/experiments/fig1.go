package experiments

import (
	"errors"
	"io"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/rank"
	"toplists/internal/report"
	"toplists/internal/stats"
)

// Fig1Result holds the intra-Cloudflare consistency matrices of Figure 1:
// pairwise Jaccard and Spearman between the seven canonical metrics,
// averaged over all days.
type Fig1Result struct {
	Metrics  []cfmetrics.Metric
	Jaccard  [][]float64
	Spearman [][]float64
	// TopK is the list magnitude compared.
	TopK int
}

// ID implements Result.
func (r *Fig1Result) ID() string { return "fig1" }

// RunFig1 computes Figure 1.
func RunFig1(s *core.Study) *Fig1Result {
	metrics := cfmetrics.AllMetrics()
	k := s.EvalK()
	res := &Fig1Result{Metrics: metrics, TopK: k}
	n := len(metrics)
	res.Jaccard = newMatrix(n)
	res.Spearman = newMatrix(n)

	art := s.Artifacts()
	days := s.Pipeline.NumDays()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var jjs, rss []float64
			for d := 0; d < days; d++ {
				a := art.MetricRanking(d, metrics[i])
				b := art.MetricRanking(d, metrics[j])
				jjs = append(jjs, core.JaccardTopK(a, b, k))
				if rs, _, err := core.SpearmanTopK(a, b, k); err == nil {
					rss = append(rss, rs)
				}
			}
			res.Jaccard[i][j] = stats.Mean(jjs)
			res.Spearman[i][j] = stats.Mean(rss)
		}
	}
	return res
}

// OffDiagonalRange returns the min and max off-diagonal Jaccard values —
// the paper's intra-Cloudflare band (0.28-0.82) that CrUX is judged
// against.
func (r *Fig1Result) OffDiagonalRange() (lo, hi float64) {
	lo, hi = 1, 0
	for i := range r.Jaccard {
		for j := range r.Jaccard[i] {
			if i == j {
				continue
			}
			v := r.Jaccard[i][j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// Render implements Result.
func (r *Fig1Result) Render(w io.Writer) error {
	labels := make([]string, len(r.Metrics))
	for i, m := range r.Metrics {
		labels[i] = m.String()
	}
	hm := &report.Heatmap{
		Title:     "Figure 1a: Intra-Cloudflare Metric Consistency (Jaccard)",
		RowLabels: labels, ColLabels: shortLabels(labels),
		Values: r.Jaccard,
	}
	if err := hm.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	hm2 := &report.Heatmap{
		Title:     "Figure 1b: Intra-Cloudflare Metric Consistency (Spearman)",
		RowLabels: labels, ColLabels: shortLabels(labels),
		Values: r.Spearman,
	}
	return hm2.Render(w)
}

func shortLabels(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		if len(l) > 10 {
			l = l[:10]
		}
		out[i] = l
	}
	return out
}

func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// Fig8Result holds the 21-combo consistency matrices of Appendix Figure 8,
// computed on a single day.
type Fig8Result struct {
	Combos   []cfmetrics.Combo
	Jaccard  [][]float64
	Spearman [][]float64
	Day      int
	TopK     int
}

// ID implements Result.
func (r *Fig8Result) ID() string { return "fig8" }

// ErrNeedAllCombos is returned when the study was not configured with
// TrackAllCombos.
var ErrNeedAllCombos = errors.New("experiments: fig8 requires Config.TrackAllCombos")

// RunFig8 computes Figure 8 on day 0 (the paper uses February 1).
func RunFig8(s *core.Study) (*Fig8Result, error) {
	combos := cfmetrics.AllCombos()
	res := &Fig8Result{Combos: combos, Day: 0, TopK: s.EvalK()}
	n := len(combos)
	res.Jaccard = newMatrix(n)
	res.Spearman = newMatrix(n)

	rankings := make([]*rank.Ranking, n)
	for i, c := range combos {
		if !s.Pipeline.Tracks(c) {
			return nil, ErrNeedAllCombos
		}
		rankings[i] = s.Artifacts().ComboRanking(0, c)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			res.Jaccard[i][j] = core.JaccardTopK(rankings[i], rankings[j], res.TopK)
			if rs, _, err := core.SpearmanTopK(rankings[i], rankings[j], res.TopK); err == nil {
				res.Spearman[i][j] = rs
			}
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig8Result) Render(w io.Writer) error {
	labels := make([]string, len(r.Combos))
	for i, c := range r.Combos {
		labels[i] = c.String()
	}
	hm := &report.Heatmap{
		Title:     "Figure 8a: All 21 Filter-Aggregation Combos (Jaccard, day 1)",
		RowLabels: labels, ColLabels: indexLabels(len(labels)),
		Values: r.Jaccard,
	}
	if err := hm.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	hm2 := &report.Heatmap{
		Title:     "Figure 8b: All 21 Filter-Aggregation Combos (Spearman, day 1)",
		RowLabels: labels, ColLabels: indexLabels(len(labels)),
		Values: r.Spearman,
	}
	return hm2.Render(w)
}

func indexLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = itoa(i + 1)
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
