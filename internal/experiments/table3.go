package experiments

import (
	"fmt"
	"io"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/report"
	"toplists/internal/world"
)

// Table3Result holds the category-bias regression (Table 3): the odds of a
// category's sites being included by each list, against the Cloudflare
// top-100K universe.
type Table3Result struct {
	Lists []string
	// Odds[list] are the per-category rows for that list.
	Odds [][]core.CategoryOdds
	Day  int
	TopK int
}

// ID implements Result.
func (r *Table3Result) ID() string { return "tab3" }

// RunTable3 computes Table 3 on the evaluation day, restricted to the
// (scaled) top-100K Cloudflare domains as in Section 6.4.
func RunTable3(s *core.Study) (*Table3Result, error) {
	day := evalDay(s)
	topK := s.Bucketer.Magnitudes[2]
	art := s.Artifacts()
	cfTop := art.MetricRanking(day, cfmetrics.MAllRequests)

	res := &Table3Result{Day: day, TopK: topK}
	for _, l := range s.Lists() {
		odds, err := core.CategoryBias(s.World, cfTop, art.Normalized(l, day), topK)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 3 for %s: %w", l.Name(), err)
		}
		res.Lists = append(res.Lists, l.Name())
		res.Odds = append(res.Odds, odds)
	}
	return res, nil
}

// OddsFor returns the odds row for (list, category).
func (r *Table3Result) OddsFor(list string, cat world.Category) (core.CategoryOdds, bool) {
	for li, n := range r.Lists {
		if n != list {
			continue
		}
		for _, o := range r.Odds[li] {
			if o.Category == cat {
				return o, true
			}
		}
	}
	return core.CategoryOdds{}, false
}

// Render implements Result.
func (r *Table3Result) Render(w io.Writer) error {
	headers := append([]string{"Category"}, r.Lists...)
	tbl := report.NewTable(
		fmt.Sprintf("Table 3: Odds of Website Inclusion by Category (CF top %d, day %d; '-' = not significant at p<0.01 Bonferroni)",
			r.TopK, r.Day+1),
		headers...)
	for _, cat := range world.AllCategories() {
		cells := []string{cat.String()}
		for li := range r.Lists {
			var cell string
			for _, o := range r.Odds[li] {
				if o.Category != cat {
					continue
				}
				if o.Significant {
					cell = fmt.Sprintf("%.2f", o.OddsRatio)
				} else {
					cell = "-"
				}
			}
			cells = append(cells, cell)
		}
		tbl.AddRow(cells...)
	}
	return tbl.Render(w)
}
