package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"toplists/internal/core"
)

func vantageStudy(t *testing.T, vantages, backends int) *core.Study {
	t.Helper()
	s := core.NewStudy(core.Config{
		Seed:       47,
		NumSites:   600,
		NumClients: 120,
		Days:       3,
		Workers:    2,
		Vantages:   vantages,
		Backends:   backends,
	})
	t.Cleanup(s.Close)
	s.Run()
	return s
}

func runVantages(t *testing.T, s *core.Study) *VantagesResult {
	t.Helper()
	res, err := RunVantages(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return res.(*VantagesResult)
}

func TestVantagesSingleEdgeDegenerates(t *testing.T) {
	s := vantageStudy(t, 1, 1)
	r := runVantages(t, s)
	if len(r.Edges) != 1 || len(r.Vantages) != 1 || len(r.Backends) != 1 {
		t.Fatalf("single-edge result has %d edges, %d vantages, %d backends",
			len(r.Edges), len(r.Vantages), len(r.Backends))
	}
	if r.Divergence[0][0] != 1 {
		t.Fatalf("self-divergence = %v, want 1", r.Divergence[0][0])
	}
	e := r.Edges[0]
	if e.Vantage != "global" || e.Backend != "cdnflare" {
		t.Fatalf("edge = %s/%s", e.Vantage, e.Backend)
	}
	if e.Jaccard <= 0 || e.Ranked == 0 {
		t.Fatalf("degenerate edge: %+v", e)
	}
}

func TestVantagesDisagreementAppears(t *testing.T) {
	s := vantageStudy(t, 3, 2)
	r := runVantages(t, s)
	if want := 3 * 2; len(r.Edges) != want {
		t.Fatalf("%d edges, want %d", len(r.Edges), want)
	}
	// The transparent global vantage must be the best (or tied-best)
	// observer of its own backend, and regional vantages must actually
	// diverge from it.
	global, ok := r.EdgeFor("global", "cdnflare")
	if !ok {
		t.Fatal("no global/cdnflare edge")
	}
	var sawDivergence bool
	for i, v := range r.Vantages {
		if i == 0 {
			continue
		}
		e, ok := r.EdgeFor(v, "cdnflare")
		if !ok {
			t.Fatalf("no %s/cdnflare edge", v)
		}
		if e.Ranked > global.Ranked {
			t.Errorf("vantage %s ranked %d sites, global only %d", v, e.Ranked, global.Ranked)
		}
		if r.Divergence[0][i] < 1 {
			sawDivergence = true
		}
		if r.Divergence[0][i] != r.Divergence[i][0] {
			t.Errorf("divergence matrix asymmetric at (0,%d)", i)
		}
	}
	if !sawDivergence {
		t.Error("no regional vantage diverged from the global view")
	}
	if r.MinDivergence() >= 1 {
		t.Error("MinDivergence = 1 with non-transparent vantages")
	}
}

func TestVantagesRender(t *testing.T) {
	s := vantageStudy(t, 2, 2)
	r := runVantages(t, s)
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Vantage disagreement", "cdnflare", "edgecast", "Cross-vantage rank divergence"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestVantagesRegisteredAsExtension(t *testing.T) {
	if _, ok := Lookup("vantages"); !ok {
		t.Fatal("vantages experiment not registered")
	}
	// It must NOT be in All(): RenderAll is golden-pinned and the default
	// single-edge render must stay byte-identical.
	for _, r := range All() {
		if r.ID == "vantages" {
			t.Fatal("vantages must not join the golden-pinned All() set")
		}
	}
}
