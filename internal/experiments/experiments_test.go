package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"toplists/internal/core"
	"toplists/internal/world"
)

// The experiments share one moderately-sized study: it is the expensive
// fixture, and every test below reads from it without mutating it.
var (
	studyOnce sync.Once
	study     *core.Study
)

func getStudy(t testing.TB) *core.Study {
	t.Helper()
	studyOnce.Do(func() {
		study = core.NewStudy(core.Config{
			Seed:           2022,
			NumSites:       20000,
			NumClients:     3000,
			Days:           14,
			TrackAllCombos: true,
			// At this population the daily Cloudflare lists rank a few
			// thousand sites, so comparisons run at the scaled "10K"
			// magnitude to keep k well under the list lengths.
			EvalMagIdx: 1,
		})
		study.Run()
	})
	return study
}

func renderOK(t *testing.T, r Result) {
	t.Helper()
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatalf("%s render: %v", r.ID(), err)
	}
	if b.Len() == 0 {
		t.Fatalf("%s rendered nothing", r.ID())
	}
}

func TestRegistry(t *testing.T) {
	runners := All()
	if len(runners) != 11 {
		t.Fatalf("runners = %d, want 11", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := Lookup(r.ID); !ok {
			t.Fatalf("Lookup(%s) failed", r.ID)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

func TestFig1IntraCloudflare(t *testing.T) {
	s := getStudy(t)
	r := RunFig1(s)
	renderOK(t, r)
	n := len(r.Metrics)
	for i := 0; i < n; i++ {
		if r.Jaccard[i][i] < 0.999 {
			t.Errorf("diagonal jaccard [%d][%d] = %v", i, i, r.Jaccard[i][i])
		}
		for j := 0; j < n; j++ {
			if r.Jaccard[i][j] != r.Jaccard[j][i] {
				t.Errorf("jaccard not symmetric at (%d,%d)", i, j)
			}
			if r.Jaccard[i][j] < 0 || r.Jaccard[i][j] > 1 {
				t.Errorf("jaccard out of range: %v", r.Jaccard[i][j])
			}
		}
	}
	lo, hi := r.OffDiagonalRange()
	// The paper's band is 0.28-0.82: metrics disagree but are related.
	if lo < 0.05 || hi > 0.98 || lo >= hi {
		t.Errorf("off-diagonal band [%.2f, %.2f] implausible", lo, hi)
	}
}

func TestFig2Headline(t *testing.T) {
	s := getStudy(t)
	r := RunFig2(s)
	renderOK(t, r)

	// Finding 1: the seven metrics rank the lists' accuracy identically
	// (paper: rs = 1.0 for all pairs; we allow tiny wiggle).
	if agree := r.MinMetricAgreement(); agree < 0.85 {
		t.Errorf("min metric agreement = %.3f, want ~1.0", agree)
	}

	// Finding 2: CrUX captures popular sites best, by a notable margin.
	crux := r.MeanJaccard("CrUX")
	umbrella := r.MeanJaccard("Umbrella")
	alexa := r.MeanJaccard("Alexa")
	majestic := r.MeanJaccard("Majestic")
	secrank := r.MeanJaccard("Secrank")
	tranco := r.MeanJaccard("Tranco")
	trexa := r.MeanJaccard("Trexa")
	t.Logf("mean JJ: crux=%.3f umbrella=%.3f tranco=%.3f trexa=%.3f alexa=%.3f majestic=%.3f secrank=%.3f",
		crux, umbrella, tranco, trexa, alexa, majestic, secrank)

	for name, v := range map[string]float64{
		"Umbrella": umbrella, "Alexa": alexa, "Majestic": majestic,
		"Secrank": secrank, "Tranco": tranco, "Trexa": trexa,
	} {
		if crux <= v {
			t.Errorf("CrUX JJ %.3f not above %s %.3f", crux, name, v)
		}
	}
	// Finding 3: Secrank overlaps least.
	for name, v := range map[string]float64{
		"Umbrella": umbrella, "Alexa": alexa, "Majestic": majestic,
		"CrUX": crux, "Tranco": tranco, "Trexa": trexa,
	} {
		if secrank >= v {
			t.Errorf("Secrank JJ %.3f not below %s %.3f", secrank, name, v)
		}
	}
	// Finding 4: Umbrella comes second.
	if umbrella <= alexa || umbrella <= majestic {
		t.Errorf("Umbrella %.3f not above Alexa %.3f / Majestic %.3f",
			umbrella, alexa, majestic)
	}

	// Finding 5: only CrUX reaches the intra-Cloudflare band.
	f1 := RunFig1(s)
	bandLo, _ := f1.OffDiagonalRange()
	if _, cruxHi := r.JaccardRange("CrUX"); cruxHi < bandLo*0.8 {
		t.Errorf("CrUX best JJ %.3f far below intra-CF band floor %.3f", cruxHi, bandLo)
	}

	// Finding 6: the Alexa/Tranco/Trexa group leads the rank-order
	// (Spearman) evaluation and Majestic/Secrank trail it. (The paper also
	// places Umbrella in the trailing group; at simulation scale the
	// Cloudflare∩Umbrella intersection only reaches the head of the list,
	// where reach-based ordering is genuinely accurate, so Umbrella's
	// Spearman does not degrade below Alexa's here — see EXPERIMENTS.md.)
	rs := func(name string) float64 {
		v, ok := r.MeanSpearman(name)
		if !ok {
			t.Fatalf("%s has no Spearman", name)
		}
		return v
	}
	strong := (rs("Alexa") + rs("Tranco") + rs("Trexa")) / 3
	weak := (rs("Umbrella") + rs("Majestic") + rs("Secrank")) / 3
	t.Logf("rs: alexa=%.3f tranco=%.3f trexa=%.3f umbrella=%.3f majestic=%.3f secrank=%.3f",
		rs("Alexa"), rs("Tranco"), rs("Trexa"), rs("Umbrella"), rs("Majestic"), rs("Secrank"))
	if strong <= weak {
		t.Errorf("strong-group Spearman %.3f not above weak group %.3f", strong, weak)
	}
	if rs("Majestic") >= rs("Alexa") || rs("Secrank") >= rs("Alexa") {
		t.Errorf("Majestic %.3f / Secrank %.3f not below Alexa %.3f",
			rs("Majestic"), rs("Secrank"), rs("Alexa"))
	}
	// CrUX never gets a Spearman value.
	if _, ok := r.MeanSpearman("CrUX"); ok {
		t.Error("CrUX must have no Spearman")
	}
}

func TestFig3Temporal(t *testing.T) {
	s := getStudy(t)
	r := RunFig3(s)
	renderOK(t, r)
	if r.Days != s.Cfg.Days || len(r.Lists) != 7 {
		t.Fatalf("shape: %d days, %d lists", r.Days, len(r.Lists))
	}
	weekends := 0
	for _, w := range r.Weekend {
		if w {
			weekends++
		}
	}
	if weekends != 4 { // 14 days starting Tuesday -> 2 weekends
		t.Errorf("weekend days = %d, want 4", weekends)
	}
	// Umbrella's vantage empties on weekends: its Jaccard must show the
	// weekly periodicity the paper reports.
	jjWd, jjWe, _, _ := r.WeekdayWeekendSplit("Umbrella")
	if jjWd <= jjWe {
		t.Errorf("Umbrella weekday JJ %.3f not above weekend %.3f", jjWd, jjWe)
	}
	// CrUX is a fixed monthly list; its daily variation should be modest.
	li := -1
	for i, n := range r.Lists {
		if n == "CrUX" {
			li = i
		}
	}
	for d := 0; d < r.Days; d++ {
		if r.SpearmanOK[li][d] {
			t.Fatal("CrUX got a daily Spearman")
		}
	}
}

func TestTable1Coverage(t *testing.T) {
	s := getStudy(t)
	r, err := RunTable1(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, r)
	// Largest-magnitude column comparisons (index 3 = scaled "1M").
	crux := r.Coverage("CrUX", 3)
	umbrella := r.Coverage("Umbrella", 3)
	secrank := r.Coverage("Secrank", 3)
	alexa := r.Coverage("Alexa", 3)
	t.Logf("coverage@max: crux=%.1f alexa=%.1f umbrella=%.1f secrank=%.1f",
		crux, alexa, umbrella, secrank)
	if crux <= umbrella {
		t.Errorf("CrUX coverage %.1f not above Umbrella %.1f", crux, umbrella)
	}
	if secrank >= alexa {
		t.Errorf("Secrank coverage %.1f not below Alexa %.1f", secrank, alexa)
	}
	if umbrella >= alexa {
		t.Errorf("Umbrella coverage %.1f not below Alexa %.1f (FQDN/infra entries)", umbrella, alexa)
	}
	for li := range r.Lists {
		for mi := range r.Magnitudes {
			v := r.CoveragePct[li][mi]
			if v < 0 || v > 100 {
				t.Fatalf("coverage out of range: %v", v)
			}
		}
	}
}

func TestTable2PSLDeviation(t *testing.T) {
	s := getStudy(t)
	r := RunTable2(s)
	renderOK(t, r)
	for _, domainList := range []string{"Alexa", "Majestic", "Secrank", "Tranco", "Trexa"} {
		if v := r.Deviation(domainList, 3); v > 10 {
			t.Errorf("%s deviation %.1f%%, want ~0", domainList, v)
		}
	}
	if v := r.Deviation("Umbrella", 3); v < 40 {
		t.Errorf("Umbrella deviation %.1f%%, want high", v)
	}
	if v := r.Deviation("CrUX", 3); v < 30 {
		t.Errorf("CrUX deviation %.1f%%, want high", v)
	}
}

func TestFig5Movement(t *testing.T) {
	s := getStudy(t)
	r := RunFig5(s)
	renderOK(t, r)
	if r.AgreedCount == 0 {
		t.Fatal("empty consensus set")
	}
	alexa := r.OverrankFor("Alexa", 1)
	crux := r.OverrankFor("CrUX", 1)
	t.Logf("top-10K overrank: alexa n=%d %.1f%%/%.1f%%, crux n=%d %.1f%%/%.1f%%",
		alexa.N, alexa.OverrankedPct, alexa.Overranked2Pct,
		crux.N, crux.OverrankedPct, crux.Overranked2Pct)
	if alexa.N == 0 || crux.N == 0 {
		t.Fatal("no measurable domains in list prefixes")
	}
	// Paper: Alexa 70% overranked vs CrUX 47.1%; and 27.2% vs 1% for >= 2
	// magnitudes. Require the directional gap.
	if alexa.OverrankedPct <= crux.OverrankedPct {
		t.Errorf("Alexa overrank %.1f%% not above CrUX %.1f%%",
			alexa.OverrankedPct, crux.OverrankedPct)
	}
	if alexa.Overranked2Pct <= crux.Overranked2Pct {
		t.Errorf("Alexa 2-mag overrank %.1f%% not above CrUX %.1f%%",
			alexa.Overranked2Pct, crux.Overranked2Pct)
	}
}

func TestFig6IntraChrome(t *testing.T) {
	s := getStudy(t)
	r := RunFig6(s)
	renderOK(t, r)
	lo6, _ := r.OffDiagonalRange()
	lo1, _ := RunFig1(s).OffDiagonalRange()
	t.Logf("intra-chrome floor %.3f vs intra-CF floor %.3f", lo6, lo1)
	// The paper finds Chrome metrics notably more internally consistent
	// than the Cloudflare metrics.
	if lo6 <= lo1 {
		t.Errorf("intra-Chrome floor %.3f not above intra-CF floor %.3f", lo6, lo1)
	}
}

func TestFig4PlatformBias(t *testing.T) {
	s := getStudy(t)
	r := RunFig4(s)
	renderOK(t, r)
	if len(r.Lists) != 6 {
		t.Fatalf("lists = %v (CrUX must be excluded)", r.Lists)
	}
	positive := 0
	var sum float64
	for _, l := range r.Lists {
		adv := r.DesktopAdvantage(l)
		sum += adv
		if adv > 0 {
			positive++
		}
		t.Logf("%s desktop advantage: %+.4f", l, adv)
	}
	// Paper: every list approximates desktop better than mobile. Require a
	// strong majority plus a positive average at simulation scale.
	if positive < 4 || sum <= 0 {
		t.Errorf("desktop advantage: %d/6 positive, mean %+.4f", positive, sum/6)
	}
}

func TestFig7CountryBias(t *testing.T) {
	s := getStudy(t)
	r := RunFig7(s)
	renderOK(t, r)
	// Secrank matches China best.
	if got := r.BestCountry("Secrank"); got != world.CN {
		t.Errorf("Secrank best country = %v, want CN", got)
	}
	// All lists poorly represent Japan: JP never the best-matched country,
	// and each list's JP score is below its own cross-country mean.
	for li, l := range r.Lists {
		if r.BestCountry(l) == world.JP {
			t.Errorf("%s best country is JP", l)
		}
		var sum float64
		for ci := range r.Countries {
			sum += r.Jaccard[li][ci]
		}
		mean := sum / float64(len(r.Countries))
		if jp := r.JaccardFor(l, world.JP); jp >= mean {
			t.Errorf("%s JP jaccard %.3f not below its mean %.3f", l, jp, mean)
		}
	}
	// Umbrella skews toward the US: its US score beats its mean.
	var umbSum float64
	for ci := range r.Countries {
		umbSum += r.JaccardFor("Umbrella", r.Countries[ci])
	}
	if us := r.JaccardFor("Umbrella", world.US); us <= umbSum/float64(len(r.Countries)) {
		t.Errorf("Umbrella US %.3f not above its mean %.3f", us, umbSum/11)
	}
}

func TestFig8AllCombos(t *testing.T) {
	s := getStudy(t)
	r, err := RunFig8(s)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, r)
	if len(r.Combos) != 21 {
		t.Fatalf("combos = %d", len(r.Combos))
	}
	// Redundancy findings of Section 3.2: 200-filter behaves like the
	// unfiltered counts.
	idxAll, idx200 := 0, 6 // (FilterAll, AggCount)=index 0, (Filter200, AggCount)=index 6
	if r.Combos[idxAll].String() != "all-requests/count" || r.Combos[idx200].String() != "200-requests/count" {
		t.Fatalf("combo layout changed: %v %v", r.Combos[idxAll], r.Combos[idx200])
	}
	if r.Spearman[idxAll][idx200] < 0.9 {
		t.Errorf("all vs 200 Spearman %.3f, want near 1 (paper: 0.97)", r.Spearman[idxAll][idx200])
	}
	if r.Jaccard[idxAll][idx200] < 0.7 {
		t.Errorf("all vs 200 Jaccard %.3f, want high (paper: 0.84)", r.Jaccard[idxAll][idx200])
	}
}

func TestFig8RequiresAllCombos(t *testing.T) {
	s := core.NewStudy(core.Config{Seed: 5, NumSites: 300, NumClients: 100, Days: 1})
	s.Run()
	if _, err := RunFig8(s); err != ErrNeedAllCombos {
		t.Fatalf("err = %v, want ErrNeedAllCombos", err)
	}
}

func TestTable3CategoryBias(t *testing.T) {
	s := getStudy(t)
	r, err := RunTable3(s)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, r)
	if len(r.Lists) != 7 {
		t.Fatalf("lists = %d", len(r.Lists))
	}
	// Adult odds: under-included by Alexa (private mode) and Umbrella
	// (enterprise blocking); CrUX the only list that accounts for them.
	aAlexa, _ := r.OddsFor("Alexa", world.Adult)
	aUmbrella, _ := r.OddsFor("Umbrella", world.Adult)
	aCrux, _ := r.OddsFor("CrUX", world.Adult)
	t.Logf("adult OR: alexa=%.2f umbrella=%.2f crux=%.2f",
		aAlexa.OddsRatio, aUmbrella.OddsRatio, aCrux.OddsRatio)
	if aAlexa.OddsRatio >= 1 {
		t.Errorf("Alexa adult OR %.2f, want < 1", aAlexa.OddsRatio)
	}
	if aUmbrella.OddsRatio >= 1 {
		t.Errorf("Umbrella adult OR %.2f, want < 1", aUmbrella.OddsRatio)
	}
	if aCrux.OddsRatio <= aAlexa.OddsRatio || aCrux.OddsRatio <= aUmbrella.OddsRatio {
		t.Errorf("CrUX adult OR %.2f not above Alexa %.2f / Umbrella %.2f",
			aCrux.OddsRatio, aAlexa.OddsRatio, aUmbrella.OddsRatio)
	}
	// Majestic skews toward government sites (backlinks).
	gMaj, _ := r.OddsFor("Majestic", world.Government)
	pMaj, _ := r.OddsFor("Majestic", world.Parked)
	t.Logf("majestic OR: gov=%.2f parked=%.2f", gMaj.OddsRatio, pMaj.OddsRatio)
	if gMaj.OddsRatio <= 1 {
		t.Errorf("Majestic government OR %.2f, want > 1", gMaj.OddsRatio)
	}
	if pMaj.OddsRatio >= gMaj.OddsRatio {
		t.Errorf("Majestic parked OR %.2f not below government %.2f",
			pMaj.OddsRatio, gMaj.OddsRatio)
	}
}

func TestRunnersExecuteAll(t *testing.T) {
	s := getStudy(t)
	for _, runner := range All() {
		res, err := runner.Run(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", runner.ID, err)
		}
		if res.ID() != runner.ID {
			t.Fatalf("%s returned id %s", runner.ID, res.ID())
		}
		renderOK(t, res)
	}
}
