package experiments

import (
	"fmt"
	"io"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/report"
	"toplists/internal/stats"
)

// Fig3Result holds the temporal stability analysis (Figure 3): each list
// evaluated daily against the all-HTTP-requests metric over the month.
type Fig3Result struct {
	Lists   []string
	Days    int
	Weekend []bool
	// Jaccard[list][day] and Spearman[list][day]; SpearmanOK flags CrUX
	// and degenerate days.
	Jaccard    [][]float64
	Spearman   [][]float64
	SpearmanOK [][]bool
	TopK       int
}

// ID implements Result.
func (r *Fig3Result) ID() string { return "fig3" }

// RunFig3 computes Figure 3.
func RunFig3(s *core.Study) *Fig3Result {
	lists := s.Lists()
	k := s.EvalK()
	art := s.Artifacts()
	cfSet := art.CFDomainIDs()
	days := s.Pipeline.NumDays()

	res := &Fig3Result{Days: days, TopK: k}
	for _, l := range lists {
		res.Lists = append(res.Lists, l.Name())
	}
	for d := 0; d < days; d++ {
		res.Weekend = append(res.Weekend, s.Engine.IsWeekend(d))
	}
	res.Jaccard = make([][]float64, len(lists))
	res.Spearman = make([][]float64, len(lists))
	res.SpearmanOK = make([][]bool, len(lists))
	for li, l := range lists {
		res.Jaccard[li] = make([]float64, days)
		res.Spearman[li] = make([]float64, days)
		res.SpearmanOK[li] = make([]bool, days)
		for d := 0; d < days; d++ {
			cf := art.MetricRanking(d, cfmetrics.MAllRequests)
			norm := art.Normalized(l, d)
			ev := core.EvalListVsMetricIDs(norm, cfSet, cf, k, l.Bucketed())
			res.Jaccard[li][d] = ev.Jaccard
			if !l.Bucketed() {
				deep := core.EvalListVsMetricIDs(norm, cfSet, cf, s.SpearmanK(), false)
				res.Spearman[li][d] = deep.Spearman
				res.SpearmanOK[li][d] = deep.SpearmanOK
			}
		}
	}
	return res
}

// WeekdayWeekendSplit returns a list's mean Jaccard and Spearman on
// weekdays vs weekends — the periodicity signal of Section 5.4.
func (r *Fig3Result) WeekdayWeekendSplit(list string) (jjWeekday, jjWeekend, rsWeekday, rsWeekend float64) {
	li := r.listIndex(list)
	if li < 0 {
		return
	}
	var jwd, jwe, rwd, rwe []float64
	for d := 0; d < r.Days; d++ {
		if r.Weekend[d] {
			jwe = append(jwe, r.Jaccard[li][d])
			if r.SpearmanOK[li][d] {
				rwe = append(rwe, r.Spearman[li][d])
			}
		} else {
			jwd = append(jwd, r.Jaccard[li][d])
			if r.SpearmanOK[li][d] {
				rwd = append(rwd, r.Spearman[li][d])
			}
		}
	}
	return stats.Mean(jwd), stats.Mean(jwe), stats.Mean(rwd), stats.Mean(rwe)
}

// LateMonthImprovement returns the change in a list's mean Jaccard from the
// first three weeks to the final week (positive = improved late in the
// month, the paper's Alexa observation).
func (r *Fig3Result) LateMonthImprovement(list string) float64 {
	li := r.listIndex(list)
	if li < 0 || r.Days < 8 {
		return 0
	}
	cut := r.Days - 7
	return stats.Mean(r.Jaccard[li][cut:]) - stats.Mean(r.Jaccard[li][:cut])
}

func (r *Fig3Result) listIndex(list string) int {
	for i, n := range r.Lists {
		if n == list {
			return i
		}
	}
	return -1
}

// Render implements Result.
func (r *Fig3Result) Render(w io.Writer) error {
	tbl := report.NewTable("Figure 3: Daily Correlation vs All-HTTP-Requests (J=Jaccard, S=Spearman)",
		append([]string{"Day"}, doubled(r.Lists)...)...)
	for d := 0; d < r.Days; d++ {
		cells := make([]string, 0, 1+2*len(r.Lists))
		day := fmt.Sprintf("%02d", d+1)
		if r.Weekend[d] {
			day += "*"
		}
		cells = append(cells, day)
		for li := range r.Lists {
			cells = append(cells, fmt.Sprintf("%.3f", r.Jaccard[li][d]))
			if r.SpearmanOK[li][d] {
				cells = append(cells, fmt.Sprintf("%.3f", r.Spearman[li][d]))
			} else {
				cells = append(cells, "-")
			}
		}
		tbl.AddRow(cells...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "(* = weekend)\n\nWeekday/weekend split:\n")
	split := report.NewTable("", "List", "JJ weekday", "JJ weekend", "rs weekday", "rs weekend", "late-month dJJ")
	for _, l := range r.Lists {
		jwd, jwe, rwd, rwe := r.WeekdayWeekendSplit(l)
		split.AddRowf(l, fmt.Sprintf("%.3f", jwd), fmt.Sprintf("%.3f", jwe),
			fmt.Sprintf("%.3f", rwd), fmt.Sprintf("%.3f", rwe),
			fmt.Sprintf("%+.3f", r.LateMonthImprovement(l)))
	}
	return split.Render(w)
}

func doubled(lists []string) []string {
	out := make([]string, 0, 2*len(lists))
	for _, l := range lists {
		short := l
		if len(short) > 6 {
			short = short[:6]
		}
		out = append(out, short+" J", short+" S")
	}
	return out
}
