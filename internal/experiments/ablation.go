package experiments

import (
	"fmt"
	"io"
	"sync"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/psl"
	"toplists/internal/rank"
	"toplists/internal/report"
	"toplists/internal/world"
)

// AblationRow measures one mechanism's contribution to one finding: the
// target metric with the mechanism on (Base) and off (Ablated).
type AblationRow struct {
	// Mechanism names the disabled mechanism.
	Mechanism string
	// Finding names the paper finding the mechanism drives.
	Finding string
	// Metric names the measured quantity.
	Metric  string
	Base    float64
	Ablated float64
	// WantHigher reports the expected direction of Ablated relative to
	// Base (true: removing the mechanism should raise the metric).
	WantHigher bool
}

// AsExpected reports whether the ablation moved the metric in the
// documented direction.
func (r AblationRow) AsExpected() bool {
	if r.WantHigher {
		return r.Ablated > r.Base
	}
	return r.Ablated < r.Base
}

// AblationResult is the mechanism-ablation study: not a paper artifact but
// the validation DESIGN.md promises — each planted mechanism measurably
// produces the finding attributed to it.
type AblationResult struct {
	Rows []AblationRow
	// Scale records the per-study configuration used.
	Scale core.Config
}

// ID implements Result.
func (r *AblationResult) ID() string { return "ablate" }

// RunAblations runs a baseline study plus one study per disabled mechanism
// at the given scale and measures each mechanism's target metric. The scale
// should be small: seven full studies run.
func RunAblations(scale core.Config) (*AblationResult, error) {
	res := &AblationResult{Scale: scale}

	// The seven studies are independent; build them in parallel and read
	// metrics sequentially afterwards.
	ablations := []core.Ablations{
		{},
		{NoPrivateBrowsing: true},
		{NoOpenness: true},
		{NoPanelDistortion: true},
		{NoWorkSkew: true},
		{NoRevisits: true},
		{NoWeightBoost: true},
	}
	studies := make([]*core.Study, len(ablations))
	var wg sync.WaitGroup
	for i, ab := range ablations {
		wg.Add(1)
		go func(i int, ab core.Ablations) {
			defer wg.Done()
			cfg := scale
			cfg.Ablate = ab
			s := core.NewStudy(cfg)
			s.Run()
			studies[i] = s
		}(i, ab)
	}
	wg.Wait()
	base := studies[0]
	defer base.Close()
	build := func(ab core.Ablations) *core.Study {
		for i := range ablations {
			if ablations[i] == ab {
				return studies[i]
			}
		}
		panic("experiments: unknown ablation")
	}

	// Mechanism 1: private browsing drives Alexa's adult under-inclusion.
	{
		ablated := build(core.Ablations{NoPrivateBrowsing: true})
		res.Rows = append(res.Rows, AblationRow{
			Mechanism:  "private browsing",
			Finding:    "Alexa excludes adult sites (Table 3)",
			Metric:     "Alexa adult odds ratio",
			Base:       adultOdds(base, base.Alexa.Normalized),
			Ablated:    adultOdds(ablated, ablated.Alexa.Normalized),
			WantHigher: true,
		})
		ablated.Close()
	}

	// Mechanism 2: cross-border closure drives Secrank's global blindness.
	{
		ablated := build(core.Ablations{NoOpenness: true})
		res.Rows = append(res.Rows, AblationRow{
			Mechanism:  "country openness asymmetry",
			Finding:    "Secrank overlaps Cloudflare least (Fig. 2)",
			Metric:     "Secrank mean Jaccard vs CF metrics",
			Base:       meanJaccard(base, "Secrank"),
			Ablated:    meanJaccard(ablated, "Secrank"),
			WantHigher: true,
		})
		ablated.Close()
	}

	// Mechanism 3: panel distortion drives Alexa's rank inflation.
	{
		ablated := build(core.Ablations{NoPanelDistortion: true})
		res.Rows = append(res.Rows, AblationRow{
			Mechanism:  "panel demographic distortion",
			Finding:    "Alexa over-ranks its head (Fig. 5)",
			Metric:     "Alexa overranked % (scaled top-10K)",
			Base:       RunFig5(base).OverrankFor("Alexa", 1).OverrankedPct,
			Ablated:    RunFig5(ablated).OverrankFor("Alexa", 1).OverrankedPct,
			WantHigher: false,
		})
		ablated.Close()
	}

	// Mechanism 4: work-skewed browsing tilts Umbrella's category mix.
	{
		ablated := build(core.Ablations{NoWorkSkew: true})
		res.Rows = append(res.Rows, AblationRow{
			Mechanism:  "workday browsing skew",
			Finding:    "corporate vantage over-includes work categories (§5.2, Table 3)",
			Metric:     "Umbrella business odds ratio",
			Base:       categoryOdds(base, base.Umbrella.Normalized, world.Business),
			Ablated:    categoryOdds(ablated, ablated.Umbrella.Normalized, world.Business),
			WantHigher: false,
		})
		ablated.Close()
	}

	// Mechanism 5: revisit loyalty separates counts from visitors.
	{
		ablated := build(core.Ablations{NoRevisits: true})
		res.Rows = append(res.Rows, AblationRow{
			Mechanism:  "within-day revisit loyalty",
			Finding:    "request vs requestor metrics diverge (Fig. 1)",
			Metric:     "Jaccard(all-requests, unique-IPs)",
			Base:       countVsUniqueJaccard(base),
			Ablated:    countVsUniqueJaccard(ablated),
			WantHigher: true,
		})
		ablated.Close()
	}

	// Mechanism 6: category traffic boosts keep adult sites above the
	// CrUX privacy threshold.
	{
		ablated := build(core.Ablations{NoWeightBoost: true})
		res.Rows = append(res.Rows, AblationRow{
			Mechanism:  "category traffic boosts",
			Finding:    "CrUX is the only list accounting for adult sites (Table 3)",
			Metric:     "CrUX adult odds ratio",
			Base:       adultOdds(base, base.Crux.Normalized),
			Ablated:    adultOdds(ablated, ablated.Crux.Normalized),
			WantHigher: false,
		})
		ablated.Close()
	}

	return res, nil
}

// adultOdds computes the adult-category inclusion odds ratio for a list
// given its Normalized method.
func adultOdds(s *core.Study, normalized func(int, *psl.List) (*rank.Ranking, rank.NormalizeStats)) float64 {
	return categoryOdds(s, normalized, world.Adult)
}

// categoryOdds computes one category's inclusion odds ratio for a list.
func categoryOdds(s *core.Study, normalized func(int, *psl.List) (*rank.Ranking, rank.NormalizeStats), cat world.Category) float64 {
	day := evalDay(s)
	cfTop := s.Artifacts().MetricRanking(day, cfmetrics.MAllRequests)
	list, _ := normalized(day, s.PSL)
	odds, err := core.CategoryBias(s.World, cfTop, list, s.Bucketer.Magnitudes[2])
	if err != nil {
		return 0
	}
	for _, o := range odds {
		if o.Category == cat {
			return o.OddsRatio
		}
	}
	return 0
}

func meanJaccard(s *core.Study, list string) float64 {
	return RunFig2(s).MeanJaccard(list)
}

// countVsUniqueJaccard returns the Figure 1 cell between all-requests and
// unique-IPs.
func countVsUniqueJaccard(s *core.Study) float64 {
	r := RunFig1(s)
	var i, j int
	for idx, m := range r.Metrics {
		switch m {
		case cfmetrics.MAllRequests:
			i = idx
		case cfmetrics.MUniqueIP:
			j = idx
		}
	}
	return r.Jaccard[i][j]
}

// Render implements Result.
func (r *AblationResult) Render(w io.Writer) error {
	tbl := report.NewTable(
		fmt.Sprintf("Mechanism Ablations (sites=%d clients=%d days=%d)",
			r.Scale.NumSites, r.Scale.NumClients, r.Scale.Days),
		"Mechanism", "Finding", "Metric", "Base", "Ablated", "Direction")
	for _, row := range r.Rows {
		dir := "as expected"
		if !row.AsExpected() {
			dir = "UNEXPECTED"
		}
		tbl.AddRow(row.Mechanism, row.Finding, row.Metric,
			fmt.Sprintf("%.3f", row.Base), fmt.Sprintf("%.3f", row.Ablated), dir)
	}
	return tbl.Render(w)
}
