// Package experiments regenerates every table and figure of the paper's
// evaluation from a core.Study run. Each experiment returns a typed result
// with the headline numbers accessible programmatically and a Render method
// producing the paper-style artifact as text.
package experiments

import (
	"io"

	"toplists/internal/core"
	"toplists/internal/providers"
	"toplists/internal/rank"
)

// Result is a runnable experiment's output.
type Result interface {
	// ID is the paper artifact identifier ("fig2", "tab3", ...).
	ID() string
	// Render writes the artifact as text.
	Render(w io.Writer) error
}

// Runner executes one experiment against a study.
type Runner struct {
	ID   string
	Name string
	Run  func(s *core.Study) (Result, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig1", "Intra-Cloudflare metric consistency", func(s *core.Study) (Result, error) { return RunFig1(s), nil }},
		{"fig2", "Top lists vs Cloudflare metrics", func(s *core.Study) (Result, error) { return RunFig2(s), nil }},
		{"fig3", "Popularity metrics over time", func(s *core.Study) (Result, error) { return RunFig3(s), nil }},
		{"fig4", "Top list performance by platform", func(s *core.Study) (Result, error) { return RunFig4(s), nil }},
		{"fig5", "Rank-magnitude movement", func(s *core.Study) (Result, error) { return RunFig5(s), nil }},
		{"fig6", "Intra-Chrome metric consistency", func(s *core.Study) (Result, error) { return RunFig6(s), nil }},
		{"fig7", "Top list performance by country", func(s *core.Study) (Result, error) { return RunFig7(s), nil }},
		{"fig8", "All 21 filter-aggregation combos", func(s *core.Study) (Result, error) { return RunFig8(s) }},
		{"tab1", "Cloudflare coverage of top lists", func(s *core.Study) (Result, error) { return RunTable1(s), nil }},
		{"tab2", "PSL deviation of top lists", func(s *core.Study) (Result, error) { return RunTable2(s), nil }},
		{"tab3", "Odds of inclusion by category", func(s *core.Study) (Result, error) { return RunTable3(s) }},
	}
}

// Extensions returns the analyses that go beyond the paper's artifacts.
// (The mechanism-ablation study is separate — see RunAblations — because it
// builds its own fleet of studies rather than reading one.)
func Extensions() []Runner {
	return []Runner{
		{"stability", "List stability and cross-list agreement (extension)",
			func(s *core.Study) (Result, error) { return RunStability(s), nil }},
		{"survey", "Section 2 literature-survey constants",
			func(s *core.Study) (Result, error) { return SurveyResult{}, nil }},
	}
}

// Lookup finds a runner by ID among the paper artifacts and extensions.
func Lookup(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	for _, r := range Extensions() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// normCache memoizes per-(list, day) normalized rankings; experiments share
// one per study invocation.
type normCache struct {
	s *core.Study
	m map[normKey]*rank.Ranking
}

type normKey struct {
	list string
	day  int
}

func newNormCache(s *core.Study) *normCache {
	return &normCache{s: s, m: make(map[normKey]*rank.Ranking)}
}

func (c *normCache) get(l providers.List, day int) *rank.Ranking {
	key := normKey{l.Name(), day}
	if r, ok := c.m[key]; ok {
		return r
	}
	r, _ := l.Normalized(day, c.s.PSL)
	c.m[key] = r
	return r
}

// evalDay is the evaluation day used by single-day analyses (the paper uses
// February 1 for Figure 8 and Table 3; we use the final day so trailing-
// window lists are warmed up, documented in EXPERIMENTS.md).
func evalDay(s *core.Study) int { return s.Cfg.Days - 1 }
