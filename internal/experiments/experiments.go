// Package experiments regenerates every table and figure of the paper's
// evaluation from a core.Study run. Each experiment returns a typed result
// with the headline numbers accessible programmatically and a Render method
// producing the paper-style artifact as text.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"toplists/internal/core"
)

// Result is a runnable experiment's output.
type Result interface {
	// ID is the paper artifact identifier ("fig2", "tab3", ...).
	ID() string
	// Render writes the artifact as text.
	Render(w io.Writer) error
}

// Runner executes one experiment against a study. Run honors ctx:
// experiments that probe the virtual network check it before and during
// the sweep, and a canceled context yields the context's error rather
// than a partial result.
type Runner struct {
	ID   string
	Name string
	Run  func(ctx context.Context, s *core.Study) (Result, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig1", "Intra-Cloudflare metric consistency", func(ctx context.Context, s *core.Study) (Result, error) { return RunFig1(s), nil }},
		{"fig2", "Top lists vs Cloudflare metrics", func(ctx context.Context, s *core.Study) (Result, error) {
			// The CF probe is the only part of fig2 that can block on the
			// network; run it cancellably before the pure evaluation.
			if err := s.Artifacts().ProbeCF(ctx); err != nil {
				return nil, err
			}
			return RunFig2(s), nil
		}},
		{"fig3", "Popularity metrics over time", func(ctx context.Context, s *core.Study) (Result, error) {
			if err := s.Artifacts().ProbeCF(ctx); err != nil {
				return nil, err
			}
			return RunFig3(s), nil
		}},
		{"fig4", "Top list performance by platform", func(ctx context.Context, s *core.Study) (Result, error) { return RunFig4(s), nil }},
		{"fig5", "Rank-magnitude movement", func(ctx context.Context, s *core.Study) (Result, error) { return RunFig5(s), nil }},
		{"fig6", "Intra-Chrome metric consistency", func(ctx context.Context, s *core.Study) (Result, error) { return RunFig6(s), nil }},
		{"fig7", "Top list performance by country", func(ctx context.Context, s *core.Study) (Result, error) { return RunFig7(s), nil }},
		{"fig8", "All 21 filter-aggregation combos", func(ctx context.Context, s *core.Study) (Result, error) { return RunFig8(s) }},
		{"tab1", "Cloudflare coverage of top lists", func(ctx context.Context, s *core.Study) (Result, error) { return RunTable1(ctx, s) }},
		{"tab2", "PSL deviation of top lists", func(ctx context.Context, s *core.Study) (Result, error) { return RunTable2(s), nil }},
		{"tab3", "Odds of inclusion by category", func(ctx context.Context, s *core.Study) (Result, error) { return RunTable3(s) }},
	}
}

// Extensions returns the analyses that go beyond the paper's artifacts.
// (The mechanism-ablation study is separate — see RunAblations — because it
// builds its own fleet of studies rather than reading one.)
func Extensions() []Runner {
	return []Runner{
		{"stability", "List stability and cross-list agreement (extension)",
			func(ctx context.Context, s *core.Study) (Result, error) { return RunStability(s), nil }},
		{"survey", "Section 2 literature-survey constants",
			func(ctx context.Context, s *core.Study) (Result, error) { return SurveyResult{}, nil }},
		{"faultsense", "Probe-fault sensitivity of the Cloudflare filter (extension)",
			RunFaultSense},
		{"vantages", "Per-vantage, per-backend edge disagreement (extension)",
			RunVantages},
	}
}

// Lookup finds a runner by ID among the paper artifacts and extensions.
func Lookup(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	for _, r := range Extensions() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// Outcome pairs a runner with its result or error, in the order the
// runners were submitted.
type Outcome struct {
	Runner Runner
	Result Result
	Err    error
}

// PanicError reports a panic recovered from one experiment runner: the
// experiment keeps its slot in the outcome list (as this error) instead
// of taking down the whole evaluation pool.
type PanicError struct {
	ID    string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment %s panicked: %v\n%s", e.ID, e.Value, e.Stack)
}

// safeRun executes one runner, converting a panic into a *PanicError.
// Each experiment gets its own eval.<id> phase, and the shared outcome
// counters (pre-registered by RunConcurrent) tally how the pool fared.
func safeRun(ctx context.Context, s *core.Study, r Runner) (res Result, err error) {
	m := s.Metrics()
	span := m.Span("eval." + r.ID)
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{ID: r.ID, Value: v, Stack: debug.Stack()}
			m.Counter("eval.panics").Inc()
		}
		span.End()
		if err != nil {
			m.Counter("eval.failed").Inc()
		} else {
			m.Counter("eval.completed").Inc()
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.Run(ctx, s)
}

// RunConcurrent executes the runners against one shared study on a bounded
// worker pool and returns their outcomes in input order, regardless of
// completion order. workers follows the study's Config.Workers semantics:
// 0 means one worker per CPU, 1 forces the serial path (the oracle the
// parallel path is tested against). Runners read every derived artifact
// through the study's Artifacts store, so concurrent execution computes
// each shared artifact exactly once. A canceled ctx stops launching
// runners (already-launched ones observe it through their own checks) and
// marks the rest with the context's error; a panicking runner is reported
// in its outcome slot as a *PanicError.
func RunConcurrent(ctx context.Context, s *core.Study, runners []Runner, workers int) []Outcome {
	out := make([]Outcome, len(runners))
	// Pre-register the pool's outcome counters so the run report's key set
	// is the same whether or not any experiment fails. The counts
	// themselves are deterministic; only timings vary with the pool width.
	m := s.Metrics()
	m.Counter("eval.completed")
	m.Counter("eval.failed")
	m.Counter("eval.panics")
	queueWait := m.Histogram("eval.queue_wait")
	tracer := m.Tracer()
	defer m.Span("phase.evaluate").End()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}
	if workers <= 1 {
		for i, r := range runners {
			res, err := safeRun(ctx, s, r)
			out[i] = Outcome{Runner: r, Result: res, Err: err}
		}
		return out
	}
	// submittedAt is when the index hit the (unbuffered) channel, so the
	// worker's receive delay is exactly how long the runner sat waiting
	// for a free pool slot.
	type submission struct {
		i           int
		submittedAt time.Time
	}
	idx := make(chan submission)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sub := range idx {
				wait := time.Since(sub.submittedAt)
				queueWait.Observe(wait)
				r := runners[sub.i]
				tracer.Span("eval.queue_wait."+r.ID, "experiments", int64(sub.i), sub.submittedAt, wait)
				res, err := safeRun(ctx, s, r)
				out[sub.i] = Outcome{Runner: r, Result: res, Err: err}
			}
		}()
	}
	for i := range runners {
		idx <- submission{i, time.Now()}
	}
	close(idx)
	wg.Wait()
	return out
}

// evalDay is the evaluation day used by single-day analyses (the paper uses
// February 1 for Figure 8 and Table 3; we use the final day so trailing-
// window lists are warmed up, documented in EXPERIMENTS.md).
func evalDay(s *core.Study) int { return s.Cfg.Days - 1 }
