package experiments

import (
	"strings"
	"testing"

	"toplists/internal/core"
)

func TestRobustnessAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs multiple full studies")
	}
	res, err := RunRobustness(core.Config{
		NumSites:   6000,
		NumClients: 1500,
		Days:       7,
		EvalMagIdx: 1,
	}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != len(headlineMetricNames) {
		t.Fatalf("metrics = %d", len(res.Metrics))
	}

	crux := res.Row("CrUX mean Jaccard")
	umbrella := res.Row("Umbrella mean Jaccard")
	secrank := res.Row("Secrank mean Jaccard")
	for i := range res.Seeds {
		t.Logf("seed %d: crux=%.3f umbrella=%.3f secrank=%.3f",
			res.Seeds[i], crux[i], umbrella[i], secrank[i])
		// The core finding must hold under every replication, not just on
		// the tuned seed.
		if crux[i] <= umbrella[i] {
			t.Errorf("seed %d: CrUX %.3f not above Umbrella %.3f",
				res.Seeds[i], crux[i], umbrella[i])
		}
		if secrank[i] >= crux[i] {
			t.Errorf("seed %d: Secrank %.3f not below CrUX %.3f",
				res.Seeds[i], secrank[i], crux[i])
		}
	}

	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Robustness") {
		t.Error("render missing title")
	}
}

func TestRobustnessNeedsSeeds(t *testing.T) {
	if _, err := RunRobustness(core.Config{}, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}
