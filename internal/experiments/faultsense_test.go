package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"toplists/internal/core"
)

// TestFaultSenseRecovery pins the robustness acceptance numbers: under a
// 5% injected fault rate the hardened prober recovers at least 99% of the
// truly Cloudflare-served hosts with no false positives, while the
// single-shot baseline visibly misclassifies.
func TestFaultSenseRecovery(t *testing.T) {
	s := getStudy(t)
	res, err := RunFaultSense(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*FaultSenseResult)
	renderOK(t, r)

	clean, ok := r.RowAt(0)
	if !ok {
		t.Fatal("no rate-0 row")
	}
	for name, c := range map[string]FaultSenseCell{"naive": clean.Naive, "resilient": clean.Resilient} {
		if c.Missed != 0 || c.False != 0 || c.Jaccard != 1 {
			t.Errorf("rate 0 %s prober not perfect: %+v", name, c)
		}
	}
	if d := clean.Resilient.EvalJaccard - r.TruthEvalJaccard; d != 0 {
		t.Errorf("rate 0 eval drift %v, want 0", d)
	}

	row, ok := r.RowAt(0.05)
	if !ok {
		t.Fatal("no 5% row")
	}
	if rec := r.Recovery(row.Resilient); rec < 0.99 {
		t.Errorf("resilient recovery %.4f at 5%% faults, want >= 0.99 (missed %d of %d)",
			rec, row.Resilient.Missed, r.TruthCF)
	}
	if row.Resilient.False != 0 {
		t.Errorf("resilient prober fabricated %d Cloudflare hosts", row.Resilient.False)
	}
	if row.Naive.Missed <= row.Resilient.Missed {
		t.Errorf("single-shot missed %d, resilient %d: baseline should degrade more",
			row.Naive.Missed, row.Resilient.Missed)
	}
	if row.Naive.Missed == 0 {
		t.Error("single-shot prober lost nothing at 5% faults; the ablation shows no contrast")
	}

	worst, ok := r.RowAt(0.20)
	if !ok {
		t.Fatal("no 20% row")
	}
	if r.Recovery(worst.Resilient) <= r.Recovery(worst.Naive) {
		t.Errorf("at 20%% faults resilient recovery %.4f not above naive %.4f",
			r.Recovery(worst.Resilient), r.Recovery(worst.Naive))
	}
}

// TestFaultSenseDeterministic: the sweep is a pure function of the study
// seed — two runs render byte-identically.
func TestFaultSenseDeterministic(t *testing.T) {
	s := getStudy(t)
	render := func() string {
		res, err := RunFaultSense(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("two faultsense sweeps over one study rendered differently")
	}
}

// TestRunConcurrentPanicRunner: a panicking experiment is reported in its
// outcome slot as a *PanicError; the rest of the pool completes.
func TestRunConcurrentPanicRunner(t *testing.T) {
	runners := []Runner{
		{"ok-a", "fine", func(ctx context.Context, s *core.Study) (Result, error) { return SurveyResult{}, nil }},
		{"boom", "panics", func(ctx context.Context, s *core.Study) (Result, error) { panic("experiment exploded") }},
		{"ok-b", "fine", func(ctx context.Context, s *core.Study) (Result, error) { return SurveyResult{}, nil }},
	}
	// The runners never touch the study, so none is needed.
	for _, workers := range []int{1, 3} {
		out := RunConcurrent(context.Background(), nil, runners, workers)
		var pe *PanicError
		if !errors.As(out[1].Err, &pe) {
			t.Fatalf("workers=%d: boom outcome err %v, want *PanicError", workers, out[1].Err)
		}
		if pe.ID != "boom" || pe.Value != "experiment exploded" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic error incomplete: id=%s value=%v stack=%d bytes",
				workers, pe.ID, pe.Value, len(pe.Stack))
		}
		if out[0].Err != nil || out[2].Err != nil {
			t.Errorf("workers=%d: healthy runners failed: %v, %v", workers, out[0].Err, out[2].Err)
		}
	}
}

// TestRunConcurrentCanceled: a pre-canceled context fails every outcome
// with the context's error without running anything.
func TestRunConcurrentCanceled(t *testing.T) {
	ran := false
	runners := []Runner{
		{"x", "x", func(ctx context.Context, s *core.Study) (Result, error) { ran = true; return SurveyResult{}, nil }},
		{"y", "y", func(ctx context.Context, s *core.Study) (Result, error) { ran = true; return SurveyResult{}, nil }},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, oc := range RunConcurrent(ctx, nil, runners, 1) {
		if !errors.Is(oc.Err, context.Canceled) {
			t.Errorf("%s: err %v, want context.Canceled", oc.Runner.ID, oc.Err)
		}
	}
	if ran {
		t.Error("a runner executed under a pre-canceled context")
	}
}
