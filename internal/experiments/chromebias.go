package experiments

import (
	"fmt"
	"io"

	"toplists/internal/chrome"
	"toplists/internal/core"
	"toplists/internal/report"
	"toplists/internal/stats"
	"toplists/internal/world"
)

// Fig6Result holds the intra-Chrome consistency matrices (Figure 6):
// pairwise Jaccard and Spearman between the three telemetry metrics,
// averaged over every (country, platform) cell.
type Fig6Result struct {
	Metrics  []chrome.TelemetryMetric
	Jaccard  [][]float64
	Spearman [][]float64
	TopK     int
}

// ID implements Result.
func (r *Fig6Result) ID() string { return "fig6" }

// RunFig6 computes Figure 6.
func RunFig6(s *core.Study) *Fig6Result {
	metrics := chrome.AllTelemetryMetrics()
	k := s.EvalK()
	art := s.Artifacts()
	res := &Fig6Result{Metrics: metrics, TopK: k}
	n := len(metrics)
	res.Jaccard = newMatrix(n)
	res.Spearman = newMatrix(n)

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var jjs, rss []float64
			for _, c := range world.AllCountries() {
				for _, p := range world.AllPlatforms() {
					a := art.TelemetryRanking(c, p, metrics[i])
					b := art.TelemetryRanking(c, p, metrics[j])
					if a.Len() == 0 || b.Len() == 0 {
						continue
					}
					jjs = append(jjs, core.JaccardTopK(a, b, k))
					if rs, _, err := core.SpearmanTopK(a, b, k); err == nil {
						rss = append(rss, rs)
					}
				}
			}
			res.Jaccard[i][j] = stats.Mean(jjs)
			res.Spearman[i][j] = stats.Mean(rss)
		}
	}
	return res
}

// OffDiagonalRange returns the min/max off-diagonal Jaccard — the paper
// reports 0.73-0.86, well above the intra-Cloudflare band.
func (r *Fig6Result) OffDiagonalRange() (lo, hi float64) {
	lo, hi = 1, 0
	for i := range r.Jaccard {
		for j := range r.Jaccard[i] {
			if i == j {
				continue
			}
			if v := r.Jaccard[i][j]; v < lo {
				lo = v
			}
			if v := r.Jaccard[i][j]; v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// Render implements Result.
func (r *Fig6Result) Render(w io.Writer) error {
	labels := make([]string, len(r.Metrics))
	for i, m := range r.Metrics {
		labels[i] = m.String()
	}
	jj := &report.Heatmap{
		Title:     "Figure 6a: Intra-Chrome Metric Consistency (Jaccard)",
		RowLabels: labels, ColLabels: shortLabels(labels), Values: r.Jaccard,
	}
	if err := jj.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	rs := &report.Heatmap{
		Title:     "Figure 6b: Intra-Chrome Metric Consistency (Spearman)",
		RowLabels: labels, ColLabels: shortLabels(labels), Values: r.Spearman,
	}
	return rs.Render(w)
}

// Fig4Result holds the platform-bias analysis (Figure 4): each ranked list
// against per-platform Chrome data, averaged over countries. CrUX is
// excluded because it derives from the same data (Section 6.2).
type Fig4Result struct {
	Lists     []string
	Platforms []world.Platform
	// Jaccard[list][platform], Spearman[list][platform].
	Jaccard  [][]float64
	Spearman [][]float64
	TopK     int
}

// ID implements Result.
func (r *Fig4Result) ID() string { return "fig4" }

// RunFig4 computes Figure 4 using month-aggregated telemetry and the final
// day's list snapshots.
func RunFig4(s *core.Study) *Fig4Result {
	lists := s.RankedLists()
	day := evalDay(s)
	art := s.Artifacts()
	k := s.EvalK()
	res := &Fig4Result{Platforms: world.AllPlatforms(), TopK: k}
	for _, l := range lists {
		res.Lists = append(res.Lists, l.Name())
	}
	res.Jaccard = make([][]float64, len(lists))
	res.Spearman = make([][]float64, len(lists))
	for li, l := range lists {
		res.Jaccard[li] = make([]float64, len(res.Platforms))
		res.Spearman[li] = make([]float64, len(res.Platforms))
		norm := art.Normalized(l, day)
		for pi, p := range res.Platforms {
			var jjs, rss []float64
			for _, c := range world.AllCountries() {
				cell := art.TelemetryRanking(c, p, chrome.CompletedPageLoads)
				if cell.Len() == 0 {
					continue
				}
				cmp := core.CompareListToChromeCell(norm, cell, k)
				jjs = append(jjs, cmp.Jaccard)
				if cmp.SpearmanOK {
					rss = append(rss, cmp.Spearman)
				}
			}
			res.Jaccard[li][pi] = stats.Mean(jjs)
			res.Spearman[li][pi] = stats.Mean(rss)
		}
	}
	return res
}

// DesktopAdvantage returns jj(Windows) - jj(Android) for a list; positive
// means the list better matches desktop behaviour, the universal finding of
// Section 6.2.
func (r *Fig4Result) DesktopAdvantage(list string) float64 {
	for li, n := range r.Lists {
		if n == list {
			return r.Jaccard[li][0] - r.Jaccard[li][1]
		}
	}
	return 0
}

// Render implements Result.
func (r *Fig4Result) Render(w io.Writer) error {
	cols := make([]string, len(r.Platforms))
	for i, p := range r.Platforms {
		cols[i] = p.String()
	}
	jj := &report.Heatmap{
		Title:     "Figure 4a: Top List Performance by Platform (Jaccard)",
		RowLabels: r.Lists, ColLabels: cols, Values: r.Jaccard, Format: "%.3f",
	}
	if err := jj.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	rs := &report.Heatmap{
		Title:     "Figure 4b: Top List Performance by Platform (Spearman)",
		RowLabels: r.Lists, ColLabels: cols, Values: r.Spearman, Format: "%.3f",
	}
	return rs.Render(w)
}

// Fig7Result holds the country-bias analysis (Figure 7): each ranked list
// against per-country Chrome data, averaged over platforms.
type Fig7Result struct {
	Lists     []string
	Countries []world.Country
	Jaccard   [][]float64
	Spearman  [][]float64
	TopK      int
}

// ID implements Result.
func (r *Fig7Result) ID() string { return "fig7" }

// RunFig7 computes Figure 7.
func RunFig7(s *core.Study) *Fig7Result {
	lists := s.RankedLists()
	day := evalDay(s)
	art := s.Artifacts()
	k := s.EvalK()
	res := &Fig7Result{Countries: world.AllCountries(), TopK: k}
	for _, l := range lists {
		res.Lists = append(res.Lists, l.Name())
	}
	res.Jaccard = make([][]float64, len(lists))
	res.Spearman = make([][]float64, len(lists))
	for li, l := range lists {
		res.Jaccard[li] = make([]float64, len(res.Countries))
		res.Spearman[li] = make([]float64, len(res.Countries))
		norm := art.Normalized(l, day)
		for ci, c := range res.Countries {
			var jjs, rss []float64
			for _, p := range world.AllPlatforms() {
				cell := art.TelemetryRanking(c, p, chrome.CompletedPageLoads)
				if cell.Len() == 0 {
					continue
				}
				cmp := core.CompareListToChromeCell(norm, cell, k)
				jjs = append(jjs, cmp.Jaccard)
				if cmp.SpearmanOK {
					rss = append(rss, cmp.Spearman)
				}
			}
			res.Jaccard[li][ci] = stats.Mean(jjs)
			res.Spearman[li][ci] = stats.Mean(rss)
		}
	}
	return res
}

// JaccardFor returns jj for (list, country).
func (r *Fig7Result) JaccardFor(list string, c world.Country) float64 {
	for li, n := range r.Lists {
		if n == list {
			for ci, have := range r.Countries {
				if have == c {
					return r.Jaccard[li][ci]
				}
			}
		}
	}
	return 0
}

// BestCountry returns the country a list matches best by Jaccard.
func (r *Fig7Result) BestCountry(list string) world.Country {
	best, bestV := world.US, -1.0
	for li, n := range r.Lists {
		if n != list {
			continue
		}
		for ci, c := range r.Countries {
			if r.Jaccard[li][ci] > bestV {
				best, bestV = c, r.Jaccard[li][ci]
			}
		}
	}
	return best
}

// Render implements Result.
func (r *Fig7Result) Render(w io.Writer) error {
	cols := make([]string, len(r.Countries))
	for i, c := range r.Countries {
		cols[i] = c.String()
	}
	jj := &report.Heatmap{
		Title:     "Figure 7 (top): Top List Performance by Country (Jaccard)",
		RowLabels: r.Lists, ColLabels: cols, Values: r.Jaccard, Format: "%.3f",
	}
	if err := jj.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\n")
	rs := &report.Heatmap{
		Title:     "Figure 7 (bottom): Top List Performance by Country (Spearman)",
		RowLabels: r.Lists, ColLabels: cols, Values: r.Spearman, Format: "%.3f",
	}
	if err := rs.Render(w); err != nil {
		return err
	}
	io.WriteString(w, "\nBest-matched country per list:\n")
	for _, l := range r.Lists {
		fmt.Fprintf(w, "  %-10s %s\n", l, r.BestCountry(l))
	}
	return nil
}
