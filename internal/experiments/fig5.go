package experiments

import (
	"fmt"
	"io"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/rank"
	"toplists/internal/report"
)

// Fig5Result holds the rank-magnitude movement analysis (Figure 5 and the
// Section 5.3 headline numbers) for every list, against the set of domains
// the two bookend Cloudflare metrics bucket identically.
type Fig5Result struct {
	Lists []string
	// Movements[list] is the CF-bucket -> list-bucket flow matrix.
	Movements []core.Movement
	// Overrank[list][magIdx] are the overranking stats for the list's
	// (scaled) top-1K and top-10K prefixes (magIdx 0 and 1).
	Overrank [][]core.OverrankStats
	// AgreedCount is the size of the consensus domain set.
	AgreedCount int
	Day         int
}

// ID implements Result.
func (r *Fig5Result) ID() string { return "fig5" }

// RunFig5 computes Figure 5. The Cloudflare consensus buckets come from
// month-aggregated metric lists (reciprocal-rank combination of the daily
// lists, memoized in the artifact store): a single day of simulated traffic
// does not reach deep enough into the tail to bucket it stably, whereas the
// real Cloudflare vantage does.
func RunFig5(s *core.Study) *Fig5Result {
	day := evalDay(s)
	art := s.Artifacts()
	m1 := art.MonthlyMetric(cfmetrics.MAllRequests)
	m3 := art.MonthlyMetric(cfmetrics.MRootRequests)
	agreed := core.AgreedBucketsIDs(m1, m3, s.Bucketer)

	res := &Fig5Result{Day: day, AgreedCount: len(agreed)}
	for _, l := range s.Lists() {
		norm := art.Normalized(l, day)
		res.Lists = append(res.Lists, l.Name())
		res.Movements = append(res.Movements, core.ComputeMovementIDs(agreed, norm, s.Bucketer))
		res.Overrank = append(res.Overrank, []core.OverrankStats{
			core.ComputeOverrankIDs(agreed, norm, s.Bucketer, 0),
			core.ComputeOverrankIDs(agreed, norm, s.Bucketer, 1),
		})
	}
	return res
}

// OverrankFor returns the overrank stats for a list at magnitude index 0
// (top-1K) or 1 (top-10K).
func (r *Fig5Result) OverrankFor(list string, magIdx int) core.OverrankStats {
	for i, n := range r.Lists {
		if n == list {
			return r.Overrank[i][magIdx]
		}
	}
	return core.OverrankStats{}
}

// Render implements Result.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Figure 5: Rank-Magnitude Movement (consensus set: %d domains, day %d)\n\n",
		r.AgreedCount, r.Day+1)
	labels := bucketLabels()
	for i, list := range r.Lists {
		// The paper draws Alexa and CrUX; all lists are rendered here with
		// the same construction.
		flows := make([][]int, rank.NumBuckets)
		for a := 0; a < rank.NumBuckets; a++ {
			flows[a] = make([]int, rank.NumBuckets)
			for b := 0; b < rank.NumBuckets; b++ {
				flows[a][b] = r.Movements[i].Matrix[a][b]
			}
		}
		sk := &report.Sankey{
			Title:      fmt.Sprintf("Cloudflare -> %s", list),
			FromLabels: labels,
			ToLabels:   labels,
			Flows:      flows,
		}
		if err := sk.Render(w); err != nil {
			return err
		}
		io.WriteString(w, "\n")
	}
	tbl := report.NewTable("Section 5.3: Overranking by List Prefix",
		"List", "top-1K n", "over %", ">=2 mag %", "top-10K n", "over %", ">=2 mag %")
	for i, list := range r.Lists {
		o0, o1 := r.Overrank[i][0], r.Overrank[i][1]
		tbl.AddRow(list,
			itoa(o0.N), fmt.Sprintf("%.1f", o0.OverrankedPct), fmt.Sprintf("%.1f", o0.Overranked2Pct),
			itoa(o1.N), fmt.Sprintf("%.1f", o1.OverrankedPct), fmt.Sprintf("%.1f", o1.Overranked2Pct))
	}
	return tbl.Render(w)
}

func bucketLabels() []string {
	out := make([]string, rank.NumBuckets)
	for b := 0; b < rank.NumBuckets; b++ {
		out[b] = rank.Bucket(b).String()
	}
	return out
}
