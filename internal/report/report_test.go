package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "List", "1K", "10K")
	tbl.AddRowf("Alexa", 14.97, 23.16)
	tbl.AddRow("CrUX", "24.00") // short row: last cell empty
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Demo", "List", "Alexa", "14.97", "CrUX"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, underline, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x", "overflow")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "overflow") {
		t.Error("overflow cell rendered")
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:     "JJ",
		RowLabels: []string{"Alexa", "CrUX"},
		ColLabels: []string{"m1", "m2"},
		Values:    [][]float64{{0.13, 0.19}, {0.23, 0.43}},
		Missing:   [][]bool{{false, false}, {false, true}},
	}
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"0.13", "0.43"} {
		if want == "0.43" {
			if strings.Contains(out, want) {
				t.Errorf("missing cell rendered: %s", out)
			}
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Error("missing marker absent")
	}
}

func TestSankeyRender(t *testing.T) {
	s := &Sankey{
		Title:      "Movement",
		FromLabels: []string{"1-1K", "1K-10K", "10K-100K"},
		ToLabels:   []string{"1-1K", "1K-10K", "10K-100K"},
		Flows: [][]int{
			{5, 2, 10},
			{0, 3, 0},
			{1, 0, 0},
		},
	}
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "1-1K") || !strings.Contains(out, "#") {
		t.Errorf("sankey output malformed:\n%s", out)
	}
	// The (0 -> 2) flow jumps two buckets: must carry the drastic marker.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "1-1K") && strings.Contains(line, "10K-100K") &&
			strings.Contains(line, "!") && strings.Contains(line, "10") {
			found = true
		}
	}
	if !found {
		t.Errorf("drastic flow not marked:\n%s", out)
	}
}
