package report

import (
	"encoding/csv"
	"fmt"
	"io"
)

// RenderCSV writes the table as CSV (header row first). The title is not
// part of the CSV payload.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCSV writes the heatmap as CSV with row labels in the first column.
// Missing cells render empty.
func (h *Heatmap) RenderCSV(w io.Writer) error {
	format := h.Format
	if format == "" {
		format = "%.4f"
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{""}, h.ColLabels...)); err != nil {
		return err
	}
	for i, rl := range h.RowLabels {
		row := make([]string, 0, len(h.ColLabels)+1)
		row = append(row, rl)
		for j := range h.ColLabels {
			if h.Missing != nil && h.Missing[i][j] {
				row = append(row, "")
				continue
			}
			row = append(row, fmt.Sprintf(format, h.Values[i][j]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	write := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", joinCells(cells))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if err := write(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

func joinCells(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += " | "
		}
		out += c
	}
	return out
}
