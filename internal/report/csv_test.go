package report

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("Ignored Title", "List", "Coverage")
	tbl.AddRow("Alexa", "23.12")
	tbl.AddRow("CrUX", "23.57")
	var b strings.Builder
	if err := tbl.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "List" || recs[2][1] != "23.57" {
		t.Fatalf("records = %v", recs)
	}
	if strings.Contains(b.String(), "Ignored Title") {
		t.Error("title leaked into CSV")
	}
}

func TestHeatmapRenderCSV(t *testing.T) {
	h := &Heatmap{
		RowLabels: []string{"a", "b"},
		ColLabels: []string{"x", "y"},
		Values:    [][]float64{{1, 2}, {3, 4}},
		Missing:   [][]bool{{false, true}, {false, false}},
	}
	var b strings.Builder
	if err := h.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if recs[1][2] != "" {
		t.Errorf("missing cell = %q, want empty", recs[1][2])
	}
	if recs[2][1] != "3.0000" {
		t.Errorf("cell = %q", recs[2][1])
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := NewTable("Coverage", "List", "1K")
	tbl.AddRow("Alexa", "14.97")
	var b strings.Builder
	if err := tbl.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### Coverage", "| List | 1K |", "| --- | --- |", "| Alexa | 14.97 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
