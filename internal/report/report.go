// Package report renders experiment results as aligned text tables,
// numeric heatmaps, and text Sankey flows — the forms in which the paper's
// tables and figures are regenerated on a terminal.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// renders with 2 decimals, everything else via %v.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.2f", v)
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Heatmap renders a labeled matrix of values, the text analogue of the
// paper's correlation heatmaps.
type Heatmap struct {
	Title     string
	RowLabels []string
	ColLabels []string
	Values    [][]float64
	// Missing marks cells to render as "-" (e.g. Spearman vs CrUX).
	Missing [][]bool
	// Format is the cell format (default "%.2f").
	Format string
}

// Render writes the heatmap as a table.
func (h *Heatmap) Render(w io.Writer) error {
	format := h.Format
	if format == "" {
		format = "%.2f"
	}
	tbl := NewTable(h.Title, append([]string{""}, h.ColLabels...)...)
	for i, rl := range h.RowLabels {
		cells := make([]string, 0, len(h.ColLabels)+1)
		cells = append(cells, rl)
		for j := range h.ColLabels {
			if h.Missing != nil && h.Missing[i][j] {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf(format, h.Values[i][j]))
		}
		tbl.AddRow(cells...)
	}
	return tbl.Render(w)
}

// Sankey renders a movement matrix as text flows: one line per nonzero
// (from, to) pair with a magnitude bar, ordered by source then target.
type Sankey struct {
	Title      string
	FromLabels []string
	ToLabels   []string
	Flows      [][]int
}

// Render writes the flows.
func (s *Sankey) Render(w io.Writer) error {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", s.Title, strings.Repeat("=", len(s.Title)))
	}
	max := 0
	for _, row := range s.Flows {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	for i, row := range s.Flows {
		for j, v := range row {
			if v == 0 {
				continue
			}
			bar := 1
			if max > 0 {
				bar = 1 + v*30/max
			}
			marker := " "
			switch {
			case j > i+1:
				marker = "!" // drastic mismatch (>= 2 magnitudes)
			case j == i+1 || j == i-1:
				marker = "~" // off by one
			case j < i-1:
				marker = "!"
			}
			fmt.Fprintf(&b, "%-10s -> %-10s %s %-6d %s\n",
				s.FromLabels[i], s.ToLabels[j], marker, v, strings.Repeat("#", bar))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
