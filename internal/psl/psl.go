// Package psl implements the Mozilla Public Suffix List matching algorithm.
//
// The study normalizes every top list to PSL-defined registrable domains
// (Section 4.2): entries are grouped by eTLD+1 and each group keeps its
// smallest (most popular) rank. This package provides the matcher that the
// normalization is built on: rule parsing in the upstream file format,
// wildcard ("*.ck") and exception ("!www.ck") rules, and the default "*"
// rule for unlisted TLDs, per the algorithm published at publicsuffix.org.
package psl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"toplists/internal/domain"
)

// RuleKind distinguishes the three kinds of PSL rules.
type RuleKind uint8

const (
	// Normal is a plain suffix rule such as "co.uk".
	Normal RuleKind = iota
	// Wildcard is a rule such as "*.ck" matching any single label under it.
	Wildcard
	// Exception is a rule such as "!www.ck" carving a hole in a wildcard.
	Exception
)

// Rule is one parsed PSL rule.
type Rule struct {
	// Labels holds the rule's labels in reverse order (TLD first), with the
	// wildcard or exception marker stripped.
	Labels []string
	Kind   RuleKind
}

// node is a trie node keyed by reversed labels.
type node struct {
	children map[string]*node
	// terminal rule kinds present at this node.
	normal    bool
	wildcard  bool // a "*" child rule rooted here
	exception bool
}

// List is a compiled Public Suffix List.
type List struct {
	root  node
	rules int
}

// ErrNoRules is returned by Parse when the input contains no rules.
var ErrNoRules = errors.New("psl: no rules in input")

// Parse reads rules in the upstream publicsuffix.org file format: one rule
// per line, "//" comments, blank lines ignored. Rules are normalized to
// lowercase.
func Parse(r io.Reader) (*List, error) {
	l := &List{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		// The upstream file terminates rules at the first whitespace.
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			text = text[:i]
		}
		if err := l.Add(text); err != nil {
			return nil, fmt.Errorf("psl: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l.rules == 0 {
		return nil, ErrNoRules
	}
	return l, nil
}

// MustParse is Parse for static inputs; it panics on error.
func MustParse(s string) *List {
	l, err := Parse(strings.NewReader(s))
	if err != nil {
		panic(err)
	}
	return l
}

// Add inserts a single rule given in PSL text form (possibly with "!" or
// "*." markers).
func (l *List) Add(rule string) error {
	kind := Normal
	switch {
	case strings.HasPrefix(rule, "!"):
		kind = Exception
		rule = rule[1:]
	case strings.HasPrefix(rule, "*."):
		kind = Wildcard
		rule = rule[2:]
	case rule == "*":
		kind = Wildcard
		rule = ""
	}
	rule = domain.Normalize(rule)
	if rule == "" && kind != Wildcard {
		return errors.New("empty rule")
	}
	var labels []string
	if rule != "" {
		labels = domain.Labels(rule)
		for _, lab := range labels {
			if lab == "" || lab == "*" {
				return fmt.Errorf("invalid label in rule %q", rule)
			}
		}
	}
	n := &l.root
	for i := len(labels) - 1; i >= 0; i-- {
		lab := labels[i]
		if n.children == nil {
			n.children = make(map[string]*node)
		}
		child, ok := n.children[lab]
		if !ok {
			child = &node{}
			n.children[lab] = child
		}
		n = child
	}
	switch kind {
	case Normal:
		n.normal = true
	case Wildcard:
		n.wildcard = true
	case Exception:
		n.exception = true
	}
	l.rules++
	return nil
}

// Len returns the number of rules in the list.
func (l *List) Len() int { return l.rules }

// PublicSuffix returns the public suffix of the normalized name per the PSL
// algorithm: the longest matching rule wins, exception rules match as one
// label shorter, and if no rule matches the TLD itself is the suffix
// (implicit "*" rule). The second result reports whether an explicit (ICANN
// or private) rule matched, as opposed to the implicit default.
func (l *List) PublicSuffix(name string) (suffix string, explicit bool) {
	name = domain.Normalize(name)
	if name == "" {
		return "", false
	}
	labels := domain.Labels(name)
	// Walk the trie from the TLD inward, tracking the deepest match.
	// matchLen is the number of labels in the winning suffix.
	matchLen := 0
	n := &l.root
	for depth := 1; depth <= len(labels); depth++ {
		lab := labels[len(labels)-depth]
		if n.wildcard {
			// A wildcard at the parent matches this label (depth labels),
			// unless an exception rule for this exact label exists.
			if child, ok := n.children[lab]; ok && child.exception {
				if depth-1 > matchLen {
					matchLen = depth - 1
				}
				explicit = true
				// An exception terminates this branch of matching: rules
				// below an exception are not defined by the PSL format.
				n = child
				continue
			}
			if depth > matchLen {
				matchLen = depth
				explicit = true
			}
		}
		child, ok := n.children[lab]
		if !ok {
			break
		}
		if child.normal && depth > matchLen {
			matchLen = depth
			explicit = true
		}
		n = child
	}
	// Check for a wildcard hanging off the final node (e.g. name "ck",
	// rule "*.ck": the wildcard does not match "ck" itself, but "ck" may
	// still have a normal rule; nothing to do here beyond the loop).
	if matchLen == 0 {
		// Implicit default rule "*": the TLD is the public suffix.
		matchLen = 1
	}
	start := len(name)
	for i := 0; i < matchLen; i++ {
		start = strings.LastIndexByte(name[:start], '.')
		if start < 0 {
			return name, explicit
		}
	}
	return name[start+1:], explicit
}

// RegisteredDomain returns the eTLD+1 for the name: the public suffix plus
// one more label. It returns "" if the name is itself a public suffix (or
// empty), in which case ok is false.
func (l *List) RegisteredDomain(name string) (etld1 string, ok bool) {
	name = domain.Normalize(name)
	suffix, _ := l.PublicSuffix(name)
	if suffix == "" || len(name) <= len(suffix) {
		return "", false
	}
	// name must end with "." + suffix.
	rest := name[:len(name)-len(suffix)]
	if !strings.HasSuffix(rest, ".") {
		return "", false
	}
	rest = rest[:len(rest)-1]
	if rest == "" {
		return "", false
	}
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		rest = rest[i+1:]
	}
	return rest + "." + suffix, true
}

// IsPublicSuffix reports whether the name exactly equals its public suffix.
func (l *List) IsPublicSuffix(name string) bool {
	name = domain.Normalize(name)
	if name == "" {
		return false
	}
	suffix, _ := l.PublicSuffix(name)
	return suffix == name
}
