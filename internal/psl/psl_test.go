package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct {
		name     string
		suffix   string
		explicit bool
	}{
		{"example.com", "com", true},
		{"www.example.com", "com", true},
		{"example.co.uk", "co.uk", true},
		{"a.b.example.co.uk", "co.uk", true},
		{"example.de", "de", true},
		{"example.unknowntld", "unknowntld", false}, // implicit * rule
		{"sub.example.unknowntld", "unknowntld", false},
		{"com", "com", true},
		{"co.uk", "co.uk", true},
		{"uk", "uk", true},
		{"user.github.io", "github.io", true},
		{"github.io", "github.io", true},
		{"myshop.blogspot.com", "blogspot.com", true},
	}
	for _, c := range cases {
		got, explicit := l.PublicSuffix(c.name)
		if got != c.suffix || explicit != c.explicit {
			t.Errorf("PublicSuffix(%q) = (%q, %v), want (%q, %v)",
				c.name, got, explicit, c.suffix, c.explicit)
		}
	}
}

func TestWildcardAndException(t *testing.T) {
	l := Default()
	cases := []struct {
		name   string
		suffix string
	}{
		{"ck", "ck"},
		{"foo.ck", "foo.ck"},     // *.ck
		{"bar.foo.ck", "foo.ck"}, // *.ck
		{"www.ck", "ck"},         // !www.ck exception
		{"sub.www.ck", "ck"},     // under the exception
		{"anything.kh", "anything.kh"},
		{"x.anything.kh", "anything.kh"},
	}
	for _, c := range cases {
		got, _ := l.PublicSuffix(c.name)
		if got != c.suffix {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.name, got, c.suffix)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	l := Default()
	cases := []struct {
		name  string
		etld1 string
		ok    bool
	}{
		{"example.com", "example.com", true},
		{"www.example.com", "example.com", true},
		{"a.b.c.example.co.uk", "example.co.uk", true},
		{"com", "", false},
		{"co.uk", "", false},
		{"", "", false},
		{"user.github.io", "user.github.io", true},
		{"deep.user.github.io", "user.github.io", true},
		{"www.ck", "www.ck", true}, // exception rule: www.ck is registrable
		{"a.www.ck", "www.ck", true},
		{"bar.foo.ck", "bar.foo.ck", true},
		{"foo.ck", "", false}, // wildcard makes foo.ck itself a suffix
		{"shop.example.unknowntld", "example.unknowntld", true},
	}
	for _, c := range cases {
		got, ok := l.RegisteredDomain(c.name)
		if got != c.etld1 || ok != c.ok {
			t.Errorf("RegisteredDomain(%q) = (%q, %v), want (%q, %v)",
				c.name, got, ok, c.etld1, c.ok)
		}
	}
}

func TestIsPublicSuffix(t *testing.T) {
	l := Default()
	for _, s := range []string{"com", "co.uk", "github.io", "foo.ck", "unknowntld"} {
		if !l.IsPublicSuffix(s) {
			t.Errorf("IsPublicSuffix(%q) = false, want true", s)
		}
	}
	for _, s := range []string{"example.com", "www.ck", "x.github.io", ""} {
		if l.IsPublicSuffix(s) {
			t.Errorf("IsPublicSuffix(%q) = true, want false", s)
		}
	}
}

func TestParseFormat(t *testing.T) {
	input := `// comment line

com
 co.uk trailing junk after space
!www.ck
*.ck
`
	l, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if s, _ := l.PublicSuffix("a.co.uk"); s != "co.uk" {
		t.Errorf("co.uk rule not parsed: %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("// only comments\n")); err != ErrNoRules {
		t.Errorf("want ErrNoRules, got %v", err)
	}
	if _, err := Parse(strings.NewReader("bad..rule\n")); err == nil {
		t.Error("double-dot rule should fail")
	}
	if _, err := Parse(strings.NewReader("a.*.b\n")); err == nil {
		t.Error("interior wildcard should fail")
	}
}

func TestCaseAndDotNormalization(t *testing.T) {
	l := Default()
	if s, _ := l.PublicSuffix("WWW.Example.COM."); s != "com" {
		t.Errorf("normalization failed: %q", s)
	}
	if d, ok := l.RegisteredDomain("WWW.Example.COM."); !ok || d != "example.com" {
		t.Errorf("RegisteredDomain normalization failed: %q %v", d, ok)
	}
}

// Property: the registered domain, when defined, always ends with the public
// suffix and has exactly one more label than it.
func TestRegisteredDomainProperty(t *testing.T) {
	l := Default()
	suffixes := []string{"com", "co.uk", "de", "github.io", "unknowntld", "ck", "foo.ck"}
	err := quick.Check(func(aRaw, bRaw uint8, sfxIdx uint8) bool {
		labels := []string{
			string(rune('a' + aRaw%26)),
			string(rune('a'+bRaw%26)) + "x",
		}
		name := strings.Join(labels, ".") + "." + suffixes[int(sfxIdx)%len(suffixes)]
		etld1, ok := l.RegisteredDomain(name)
		if !ok {
			return true
		}
		suffix, _ := l.PublicSuffix(name)
		if !strings.HasSuffix(etld1, "."+suffix) {
			return false
		}
		head := strings.TrimSuffix(etld1, "."+suffix)
		return head != "" && !strings.Contains(head, ".")
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: RegisteredDomain is idempotent — the eTLD+1 of an eTLD+1 is
// itself.
func TestRegisteredDomainIdempotent(t *testing.T) {
	l := Default()
	names := []string{
		"www.example.com", "a.b.example.co.uk", "x.user.github.io",
		"a.www.ck", "deep.bar.foo.ck", "sub.site.unknowntld",
	}
	for _, n := range names {
		d1, ok := l.RegisteredDomain(n)
		if !ok {
			t.Fatalf("RegisteredDomain(%q) not ok", n)
		}
		d2, ok := l.RegisteredDomain(d1)
		if !ok || d2 != d1 {
			t.Errorf("not idempotent: %q -> %q -> %q (%v)", n, d1, d2, ok)
		}
	}
}

func BenchmarkPublicSuffix(b *testing.B) {
	l := Default()
	names := []string{
		"www.example.com", "a.b.c.example.co.uk", "user.github.io",
		"example.de", "foo.unknowntld",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.PublicSuffix(names[i%len(names)])
	}
}

func BenchmarkRegisteredDomain(b *testing.B) {
	l := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.RegisteredDomain("a.b.example.co.uk")
	}
}
