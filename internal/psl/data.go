package psl

import "sync"

// defaultRules is an embedded snapshot of the Public Suffix List covering the
// suffixes used by the synthetic universe plus the classic wildcard and
// exception rules. It follows the upstream file format so that Parse is
// exercised on realistic input. The full upstream list is ~10k rules; the
// simulation only ever mints names under suffixes listed here, so this
// subset is lossless for the study.
const defaultRules = `// ===BEGIN ICANN DOMAINS===

// generic TLDs
com
net
org
info
biz
app
dev
xyz
online
site
shop
blog
io
co
me
tv
cc
ai
edu
gov
mil
int

// United Kingdom
uk
ac.uk
co.uk
gov.uk
ltd.uk
me.uk
net.uk
org.uk
plc.uk
sch.uk

// Germany
de

// Brazil
br
com.br
net.br
org.br
gov.br
edu.br
blog.br
app.br

// Japan
jp
ac.jp
ad.jp
co.jp
ed.jp
go.jp
gr.jp
lg.jp
ne.jp
or.jp

// China
cn
ac.cn
com.cn
edu.cn
gov.cn
net.cn
org.cn

// India
in
co.in
firm.in
gen.in
gov.in
ind.in
net.in
org.in

// Indonesia
id
ac.id
biz.id
co.id
go.id
my.id
net.id
or.id
sch.id
web.id

// Egypt
eg
com.eg
edu.eg
gov.eg
net.eg
org.eg

// Nigeria
ng
com.ng
edu.ng
gov.ng
net.ng
org.ng

// South Africa
za
ac.za
co.za
edu.za
gov.za
net.za
org.za
web.za

// United States
us
k12.us

// Cook Islands: wildcard plus exception, the canonical tricky case
ck
*.ck
!www.ck

// Kenya (wildcard example retained from older list versions)
*.kh

// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===

// Hosting platforms (private-section rules): sites hosted here are their
// own registrable domains one level down.
github.io
gitlab.io
netlify.app
pages.dev
workers.dev
herokuapp.com
blogspot.com
wordpress.com
appspot.com
web.app
firebaseapp.com
vercel.app
s3.amazonaws.com
cloudfront.net

// ===END PRIVATE DOMAINS===
`

var (
	defaultOnce sync.Once
	defaultList *List
)

// Default returns the embedded snapshot list, compiled once.
func Default() *List {
	defaultOnce.Do(func() {
		defaultList = MustParse(defaultRules)
	})
	return defaultList
}
