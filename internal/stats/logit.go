package stats

import (
	"errors"
	"fmt"
	"math"
)

// LogitResult holds a fitted logistic regression.
type LogitResult struct {
	// Coef holds the fitted coefficients; Coef[0] is the intercept.
	Coef []float64
	// StdErr holds the Wald standard errors of the coefficients.
	StdErr []float64
	// Iterations is the number of IRLS iterations performed.
	Iterations int
	// Converged reports whether the fit reached the tolerance.
	Converged bool
}

// OddsRatio returns exp(beta_j) for the j-th coefficient (0 = intercept).
func (r *LogitResult) OddsRatio(j int) float64 { return math.Exp(r.Coef[j]) }

// ZScore returns the Wald z statistic for coefficient j.
func (r *LogitResult) ZScore(j int) float64 {
	if r.StdErr[j] == 0 {
		return math.Inf(1)
	}
	return r.Coef[j] / r.StdErr[j]
}

// PValue returns the two-sided Wald p-value for coefficient j.
func (r *LogitResult) PValue(j int) float64 { return TwoSidedP(r.ZScore(j)) }

// Logit fits a logistic regression of the binary outcomes y on the feature
// rows x (without an intercept column; one is added internally) using
// iteratively reweighted least squares. It returns an error if the data is
// degenerate (empty, mismatched, or a singular information matrix).
//
// The category-bias analysis (Table 3) calls this with a single binary
// feature per category; the implementation is nonetheless general.
func Logit(x [][]float64, y []bool) (*LogitResult, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, errors.New("stats: logit: empty or mismatched data")
	}
	k := len(x[0]) + 1 // with intercept
	for i := range x {
		if len(x[i])+1 != k {
			return nil, errors.New("stats: logit: ragged feature rows")
		}
	}

	beta := make([]float64, k)
	xtwx := make([][]float64, k)
	for i := range xtwx {
		xtwx[i] = make([]float64, k)
	}
	grad := make([]float64, k)
	row := make([]float64, k)

	const (
		maxIter = 50
		tol     = 1e-8
		// Clamp fitted probabilities away from 0/1 to stabilize separated
		// data. Categories that are perfectly separated in small samples
		// then produce huge-but-finite coefficients rather than NaN.
		eps = 1e-9
	)

	res := &LogitResult{Coef: beta, StdErr: make([]float64, k)}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		for i := range xtwx {
			clearRow(xtwx[i])
		}
		clearRow(grad)
		for i := 0; i < n; i++ {
			row[0] = 1
			copy(row[1:], x[i])
			eta := 0.0
			for j := 0; j < k; j++ {
				eta += beta[j] * row[j]
			}
			p := 1 / (1 + math.Exp(-eta))
			if p < eps {
				p = eps
			} else if p > 1-eps {
				p = 1 - eps
			}
			w := p * (1 - p)
			yi := 0.0
			if y[i] {
				yi = 1
			}
			r := yi - p
			for a := 0; a < k; a++ {
				grad[a] += row[a] * r
				wa := w * row[a]
				for b := a; b < k; b++ {
					xtwx[a][b] += wa * row[b]
				}
			}
		}
		for a := 0; a < k; a++ {
			for b := 0; b < a; b++ {
				xtwx[a][b] = xtwx[b][a]
			}
		}
		delta, err := solve(xtwx, grad)
		if err != nil {
			return nil, fmt.Errorf("stats: logit: %w", err)
		}
		var maxStep float64
		for j := 0; j < k; j++ {
			beta[j] += delta[j]
			if s := math.Abs(delta[j]); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < tol {
			res.Converged = true
			break
		}
	}

	// Standard errors from the inverse information matrix at the optimum.
	inv, err := invert(xtwx)
	if err != nil {
		return nil, fmt.Errorf("stats: logit covariance: %w", err)
	}
	for j := 0; j < k; j++ {
		v := inv[j][j]
		if v < 0 {
			v = 0
		}
		res.StdErr[j] = math.Sqrt(v)
	}
	return res, nil
}

func clearRow(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// solve solves A x = b by Gaussian elimination with partial pivoting,
// without modifying its arguments.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, errors.New("singular matrix")
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}

// invert returns the inverse of a by solving against the identity.
func invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	inv := make([][]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if inv[i] == nil {
				inv[i] = make([]float64, n)
			}
			inv[i][j] = col[i]
		}
	}
	return inv, nil
}

// OddsRatio2x2 returns the sample odds ratio of a 2x2 contingency table:
// (a/b) / (c/d) where a,b are exposed included/excluded counts and c,d are
// unexposed included/excluded counts. A Haldane-Anscombe 0.5 correction is
// applied when any cell is zero.
func OddsRatio2x2(a, b, c, d int) float64 {
	fa, fb, fc, fd := float64(a), float64(b), float64(c), float64(d)
	if a == 0 || b == 0 || c == 0 || d == 0 {
		fa += 0.5
		fb += 0.5
		fc += 0.5
		fd += 0.5
	}
	return (fa / fb) / (fc / fd)
}
