package stats

import (
	"fmt"
	"testing"

	"toplists/internal/names"
)

// benchJaccardSets builds two half-overlapping top-k sets of size n, in
// both the string-map and ID-bitset representations, mirroring the fig1/
// fig2 hot path (sets are memoized per ranking; the comparison is what
// runs per pair).
func benchJaccardSets(n int) (a, b map[string]struct{}, as, bs *names.Set) {
	tab := names.NewTable()
	a = make(map[string]struct{}, n)
	b = make(map[string]struct{}, n)
	var aIDs, bIDs []names.ID
	for i := 0; i < n+n/2; i++ {
		name := fmt.Sprintf("site-%06d.example", i)
		id := tab.Intern(name)
		if i < n {
			a[name] = struct{}{}
			aIDs = append(aIDs, id)
		}
		if i >= n/2 {
			b[name] = struct{}{}
			bIDs = append(bIDs, id)
		}
	}
	return a, b, names.NewSet(aIDs), names.NewSet(bIDs)
}

func BenchmarkJaccard(b *testing.B) {
	x, y, _, _ := benchJaccardSets(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Jaccard(x, y) <= 0 {
			b.Fatal("bad jaccard")
		}
	}
}

func BenchmarkJaccardIDs(b *testing.B) {
	_, _, x, y := benchJaccardSets(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if JaccardIDs(x, y) <= 0 {
			b.Fatal("bad jaccard")
		}
	}
}
