package stats

import (
	"math"
	"testing"

	"toplists/internal/simrand"
)

// TestLogitRecoverCoefficients generates data from a known logistic model and
// verifies the fit recovers the coefficients.
func TestLogitRecoverCoefficients(t *testing.T) {
	src := simrand.New(11)
	const n = 20000
	trueBeta := []float64{-0.5, 1.2, -0.8} // intercept, b1, b2
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x1 := src.NormFloat64()
		x2 := src.NormFloat64()
		eta := trueBeta[0] + trueBeta[1]*x1 + trueBeta[2]*x2
		p := 1 / (1 + math.Exp(-eta))
		x[i] = []float64{x1, x2}
		y[i] = src.Bernoulli(p)
	}
	res, err := Logit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for j, want := range trueBeta {
		if math.Abs(res.Coef[j]-want) > 0.1 {
			t.Errorf("beta[%d] = %v, want ~%v", j, res.Coef[j], want)
		}
	}
}

// TestLogitBinaryPredictorMatchesOddsRatio checks the well-known identity:
// a univariate logistic regression on a binary predictor has
// exp(beta1) equal to the 2x2 contingency-table odds ratio.
func TestLogitBinaryPredictorMatchesOddsRatio(t *testing.T) {
	// a=30 exposed-included, b=70 exposed-excluded,
	// c=200 unexposed-included, d=700 unexposed-excluded.
	a, b, c, d := 30, 70, 200, 700
	var x [][]float64
	var y []bool
	add := func(feat float64, out bool, count int) {
		for i := 0; i < count; i++ {
			x = append(x, []float64{feat})
			y = append(y, out)
		}
	}
	add(1, true, a)
	add(1, false, b)
	add(0, true, c)
	add(0, false, d)

	res, err := Logit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantOR := OddsRatio2x2(a, b, c, d) // (30/70)/(200/700) = 1.5
	if math.Abs(wantOR-1.5) > 1e-12 {
		t.Fatalf("sanity: OddsRatio2x2 = %v", wantOR)
	}
	if got := res.OddsRatio(1); math.Abs(got-wantOR) > 1e-6 {
		t.Errorf("logit OR = %v, want %v", got, wantOR)
	}
	// The Wald SE of log OR for a 2x2 table is sqrt(1/a+1/b+1/c+1/d).
	wantSE := math.Sqrt(1.0/30 + 1.0/70 + 1.0/200 + 1.0/700)
	if got := res.StdErr[1]; math.Abs(got-wantSE) > 1e-4 {
		t.Errorf("logit SE = %v, want %v", got, wantSE)
	}
}

func TestLogitSignificance(t *testing.T) {
	// Strong effect with large n: p-value must be tiny. No effect: large.
	src := simrand.New(5)
	var x [][]float64
	var y []bool
	for i := 0; i < 5000; i++ {
		exposed := i%2 == 0
		f := 0.0
		p := 0.2
		if exposed {
			f = 1
			p = 0.6
		}
		x = append(x, []float64{f, src.Float64() - 0.5}) // second feature is noise
		y = append(y, src.Bernoulli(p))
	}
	res, err := Logit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.PValue(1); p > 1e-6 {
		t.Errorf("strong effect p = %v, want tiny", p)
	}
	if p := res.PValue(2); p < 0.001 {
		t.Errorf("noise feature p = %v, suspiciously small", p)
	}
}

func TestLogitErrors(t *testing.T) {
	if _, err := Logit(nil, nil); err == nil {
		t.Error("empty data must error")
	}
	if _, err := Logit([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Error("mismatched lengths must error")
	}
	if _, err := Logit([][]float64{{1}, {1, 2}}, []bool{true, false}); err == nil {
		t.Error("ragged rows must error")
	}
	// Perfectly collinear features -> singular information matrix.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {1, 2}}
	y := []bool{true, false, true, false}
	if _, err := Logit(x, y); err == nil {
		t.Error("collinear features must error")
	}
}

func TestOddsRatio2x2ZeroCell(t *testing.T) {
	or := OddsRatio2x2(0, 10, 5, 5)
	if math.IsNaN(or) || math.IsInf(or, 0) || or <= 0 {
		t.Errorf("zero-cell OR = %v, want finite positive", or)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solve = %v, want [1 3]", x)
	}
	// solve must not mutate inputs.
	if a[0][0] != 2 || b[1] != 10 {
		t.Error("solve mutated its arguments")
	}
}

func TestInvertIdentityProperty(t *testing.T) {
	src := simrand.New(21)
	for trial := 0; trial < 20; trial++ {
		n := src.Intn(4) + 2
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = src.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominant, well-conditioned
		}
		inv, err := invert(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check A * inv ~= I.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a[i][k] * inv[k][j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-8 {
					t.Fatalf("trial %d: (A*inv)[%d][%d] = %v", trial, i, j, s)
				}
			}
		}
	}
}

func BenchmarkLogitFit(b *testing.B) {
	src := simrand.New(3)
	const n = 5000
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{src.Float64()}
		y[i] = src.Bernoulli(0.3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Logit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpearman(b *testing.B) {
	src := simrand.New(4)
	const n = 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Spearman(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
