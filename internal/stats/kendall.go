package stats

import "math"

// KendallTau returns Kendall's tau-b rank correlation between xs and ys,
// handling ties in either variable. It is the concordance measure used by
// the top-list comparison literature (e.g. the Tranco evaluation) alongside
// Spearman's coefficient.
//
// The implementation is the O(n^2) pair scan — exact, allocation-free, and
// fast enough for the intersection sizes this study produces. For n < 2 or
// fully-tied inputs it returns ErrShortData.
func KendallTau(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errLengthMismatch
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrShortData
	}
	var concordant, discordant, tiesX, tiesY int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(xs[i] - xs[j])
			dy := sign(ys[i] - ys[j])
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx == dy:
				concordant++
			default:
				discordant++
			}
		}
	}
	pairs := int64(n) * int64(n-1) / 2
	denom := math.Sqrt(float64(pairs-tiesX)) * math.Sqrt(float64(pairs-tiesY))
	if denom == 0 {
		return 0, ErrShortData
	}
	return float64(concordant-discordant) / denom, nil
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
