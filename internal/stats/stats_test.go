package stats

import (
	"math"
	"testing"
	"testing/quick"

	"toplists/internal/names"
	"toplists/internal/simrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !almostEq(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson negative = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("short data must error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatch must error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance must error")
	}
}

func TestRanksTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	ranks := Ranks([]float64{5, 5, 5})
	for _, r := range ranks {
		if r != 2 {
			t.Fatalf("all-tied ranks = %v, want all 2", ranks)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is invariant to monotone transforms; Pearson is not.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // monotone
	}
	rs, err := Spearman(xs, ys)
	if err != nil || !almostEq(rs, 1, 1e-12) {
		t.Errorf("Spearman = %v, %v, want 1", rs, err)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic textbook example (no ties): rs = 1 - 6*sum(d^2)/(n(n^2-1)).
	xs := []float64{86, 97, 99, 100, 101, 103, 106, 110, 112, 113}
	ys := []float64{0, 20, 28, 27, 50, 29, 7, 17, 6, 12}
	rs, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rs, -0.17575757575, 1e-9) {
		t.Errorf("Spearman = %v, want -0.1757...", rs)
	}
}

func TestSpearmanBounds(t *testing.T) {
	src := simrand.New(42)
	err := quick.Check(func(seed uint64) bool {
		s := simrand.New(seed)
		n := s.Intn(50) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(s.Intn(10))
			ys[i] = float64(s.Intn(10))
		}
		rs, err := Spearman(xs, ys)
		if err != nil {
			return true // zero-variance draws are fine to skip
		}
		return rs >= -1-1e-9 && rs <= 1+1e-9
	}, &quick.Config{MaxCount: 200, Rand: nil})
	_ = src
	if err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	mk := func(keys ...string) map[string]struct{} {
		m := make(map[string]struct{})
		for _, k := range keys {
			m[k] = struct{}{}
		}
		return m
	}
	cases := []struct {
		a, b map[string]struct{}
		want float64
	}{
		{mk("a", "b"), mk("a", "b"), 1},
		{mk("a", "b"), mk("c", "d"), 0},
		{mk("a", "b", "c"), mk("b", "c", "d"), 0.5},
		{mk(), mk(), 1},
		{mk("a"), mk(), 0},
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("case %d: Jaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestJaccardPaperExample(t *testing.T) {
	// Section 4.4: two lists of 100 with 90 shared -> JJ = 0.818...
	a := make([]int, 100)
	b := make([]int, 100)
	for i := 0; i < 100; i++ {
		a[i] = i
		b[i] = i
		if i >= 90 {
			b[i] = 1000 + i
		}
	}
	if got := JaccardSlices(a, b); !almostEq(got, 90.0/110.0, 1e-12) {
		t.Errorf("Jaccard = %v, want %v", got, 90.0/110.0)
	}
}

// TestJaccardEmptyConvention pins the "two empty sets ⇒ 1.0" convention on
// every Jaccard code path: the map form, the slice form, and the
// interned-ID bitset form.
func TestJaccardEmptyConvention(t *testing.T) {
	if got := Jaccard(map[string]struct{}{}, map[string]struct{}{}); got != 1 {
		t.Errorf("Jaccard(∅,∅) = %v, want 1", got)
	}
	if got := JaccardSlices([]string(nil), []string{}); got != 1 {
		t.Errorf("JaccardSlices(∅,∅) = %v, want 1", got)
	}
	if got := JaccardIDs(names.NewSet(nil), names.NewSet(nil)); got != 1 {
		t.Errorf("JaccardIDs(∅,∅) = %v, want 1", got)
	}
	// One-sided empties are 0, not 1, on all three paths.
	if got := Jaccard(map[string]struct{}{"a": {}}, map[string]struct{}{}); got != 0 {
		t.Errorf("Jaccard({a},∅) = %v, want 0", got)
	}
	if got := JaccardSlices([]string{"a"}, nil); got != 0 {
		t.Errorf("JaccardSlices({a},∅) = %v, want 0", got)
	}
	if got := JaccardIDs(names.NewSet([]names.ID{3}), names.NewSet(nil)); got != 0 {
		t.Errorf("JaccardIDs({3},∅) = %v, want 0", got)
	}
}

// TestJaccardIDsMatchesJaccard cross-checks the bitset form against the
// map form on random ID sets.
func TestJaccardIDsMatchesJaccard(t *testing.T) {
	err := quick.Check(func(xs, ys []uint16) bool {
		ax, ay := make([]names.ID, len(xs)), make([]names.ID, len(ys))
		mx, my := map[names.ID]struct{}{}, map[names.ID]struct{}{}
		for i, x := range xs {
			ax[i] = names.ID(x)
			mx[names.ID(x)] = struct{}{}
		}
		for i, y := range ys {
			ay[i] = names.ID(y)
			my[names.ID(y)] = struct{}{}
		}
		return JaccardIDs(names.NewSet(ax), names.NewSet(ay)) == Jaccard(mx, my)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestJaccardSlicesDuplicates(t *testing.T) {
	// Duplicates collapse on both sides: {a,a,b} vs {b,b,c} = {a,b}∩{b,c}.
	if got := JaccardSlices([]string{"a", "a", "b"}, []string{"b", "b", "c"}); !almostEq(got, 1.0/3.0, 1e-12) {
		t.Errorf("JaccardSlices dup = %v, want 1/3", got)
	}
}

func TestJaccardSymmetric(t *testing.T) {
	err := quick.Check(func(xs, ys []uint8) bool {
		return almostEq(JaccardSlices(xs, ys), JaccardSlices(ys, xs), 1e-15)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-4) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTwoSidedP(t *testing.T) {
	if p := TwoSidedP(1.959963985); !almostEq(p, 0.05, 1e-4) {
		t.Errorf("TwoSidedP(1.96) = %v, want 0.05", p)
	}
	if p := TwoSidedP(0); !almostEq(p, 1, 1e-12) {
		t.Errorf("TwoSidedP(0) = %v, want 1", p)
	}
}

func TestBonferroni(t *testing.T) {
	if got := Bonferroni(0.01, 22); !almostEq(got, 0.22, 1e-12) {
		t.Errorf("Bonferroni = %v", got)
	}
	if got := Bonferroni(0.2, 22); got != 1 {
		t.Errorf("Bonferroni clamp = %v", got)
	}
}

func TestInterpretation(t *testing.T) {
	cases := []struct {
		r    float64
		want string
	}{
		{0.05, "negligible"}, {-0.2, "weak"}, {0.5, "moderate"},
		{0.8, "strong"}, {0.95, "very strong"},
	}
	for _, c := range cases {
		if got := Interpretation(c.r); got != c.want {
			t.Errorf("Interpretation(%v) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestKendallTauKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if tau, err := KendallTau(xs, xs); err != nil || !almostEq(tau, 1, 1e-12) {
		t.Errorf("identical: %v, %v", tau, err)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if tau, _ := KendallTau(xs, rev); !almostEq(tau, -1, 1e-12) {
		t.Errorf("reversed: %v", tau)
	}
	// Classic worked example: tau = (C-D)/n(n-1)/2 without ties.
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 3, 2, 4}
	// Pairs: C=5, D=1 -> tau = 4/6.
	if tau, _ := KendallTau(a, b); !almostEq(tau, 4.0/6.0, 1e-12) {
		t.Errorf("worked example: %v", tau)
	}
}

func TestKendallTauTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 3, 4}
	tau, err := KendallTau(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// tau-b with one tie in x: C=5, D=0, pairs=6, tiesX=1.
	want := 5.0 / (math.Sqrt(5) * math.Sqrt(6))
	if !almostEq(tau, want, 1e-12) {
		t.Errorf("tau-b = %v, want %v", tau, want)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatch accepted")
	}
	if _, err := KendallTau([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("fully tied input accepted")
	}
}

func TestKendallTauBounds(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := simrand.New(seed)
		n := s.Intn(30) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(s.Intn(8))
			ys[i] = float64(s.Intn(8))
		}
		tau, err := KendallTau(xs, ys)
		if err != nil {
			return true
		}
		return tau >= -1-1e-9 && tau <= 1+1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKendallSpearmanAgreement: on untied data the two coefficients must
// broadly agree in sign and ordering strength.
func TestKendallSpearmanAgreement(t *testing.T) {
	src := simrand.New(17)
	for trial := 0; trial < 20; trial++ {
		n := 30
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = float64(i) + 10*src.NormFloat64()
		}
		tau, err1 := KendallTau(xs, ys)
		rs, err2 := Spearman(xs, ys)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if (tau > 0.2 && rs < 0) || (tau < -0.2 && rs > 0) {
			t.Errorf("trial %d: tau %v vs rs %v disagree in sign", trial, tau, rs)
		}
	}
}
