// Package stats implements the statistical machinery of the study:
// Jaccard index and Spearman rank correlation for list comparison
// (Sections 3.2 and 4.3), and logistic regression with Wald tests and
// Bonferroni correction for the category-bias analysis (Section 6.4).
package stats

import (
	"errors"
	"math"
	"sort"

	"toplists/internal/names"
)

// Errors returned by the estimators.
var (
	// ErrShortData is returned when an estimator has too few observations.
	ErrShortData = errors.New("stats: too few observations")
	// errLengthMismatch is returned for paired inputs of unequal length.
	errLengthMismatch = errors.New("stats: length mismatch")
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrShortData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Ranks returns the fractional (average-tie) ranks of xs, 1-based, as used
// by Spearman's rank correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank of the tie group [i, j]
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns Spearman's rank correlation coefficient between xs and
// ys, handling ties by averaging ranks (the standard definition: Pearson
// correlation of the rank vectors).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrShortData
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Jaccard returns |a ∩ b| / |a ∪ b| for two sets of strings. Two empty sets
// have Jaccard index 1 by convention (they are identical).
func Jaccard[K comparable](a, b map[K]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// JaccardIDs returns |a ∩ b| / |a ∪ b| for two interned-ID bitsets over
// the same names.Table — the hot-path form of Jaccard, one popcount sweep
// instead of a string-map walk. Two empty sets have Jaccard index 1 by
// convention (they are identical), matching Jaccard.
func JaccardIDs(a, b *names.Set) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	inter := a.IntersectCount(b)
	union := a.Len() + b.Len() - inter
	return float64(inter) / float64(union)
}

// JaccardSlices is Jaccard over two slices, treating them as sets
// (duplicates within a slice count once). One scratch map tracks both
// sides: values 1/2 mark distinct members of a (2 = also seen in b),
// 3 marks members of b absent from a.
func JaccardSlices[K comparable](a, b []K) float64 {
	m := make(map[K]uint8, len(a))
	for _, k := range a {
		m[k] = 1
	}
	na := len(m)
	inter, bOnly := 0, 0
	for _, k := range b {
		switch m[k] {
		case 1:
			inter++
			m[k] = 2
		case 0:
			bOnly++
			m[k] = 3
		}
	}
	if na == 0 && bOnly == 0 {
		return 1
	}
	return float64(inter) / float64(na+bOnly)
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// TwoSidedP returns the two-sided p-value for a standard-normal test
// statistic z.
func TwoSidedP(z float64) float64 {
	return 2 * (1 - NormalCDF(math.Abs(z)))
}

// Bonferroni adjusts a p-value for m comparisons, clamping at 1.
func Bonferroni(p float64, m int) float64 {
	adj := p * float64(m)
	if adj > 1 {
		return 1
	}
	return adj
}

// Interpretation buckets a correlation magnitude per the guidance quoted in
// Section 4.4 of the paper.
func Interpretation(r float64) string {
	a := math.Abs(r)
	switch {
	case a < 0.10:
		return "negligible"
	case a < 0.40:
		return "weak"
	case a < 0.70:
		return "moderate"
	case a < 0.90:
		return "strong"
	default:
		return "very strong"
	}
}
