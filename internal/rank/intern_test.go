package rank

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"toplists/internal/names"
	"toplists/internal/psl"
)

// TestFromScoredIDsMatchesFromScores pins the core byte-identity invariant
// of the interned refactor: sorting ScoredIDs must produce exactly the
// order sorting the corresponding Scored strings produces, for both tie
// policies, because ties are decided by the name (or its hash), never by
// the ID.
func TestFromScoredIDsMatchesFromScores(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tie := range []Tie{TieLexicographic, TieHashed} {
		tab := names.NewTable()
		var scored []Scored
		var scoredIDs []ScoredID
		for i := 0; i < 500; i++ {
			name := fmt.Sprintf("site-%03d.example", rng.Intn(10_000))
			// Coarse scores force plenty of ties.
			score := float64(rng.Intn(8))
			if _, dup := tab.Find(name); dup {
				continue
			}
			scored = append(scored, Scored{Name: name, Score: score})
			scoredIDs = append(scoredIDs, ScoredID{ID: tab.Intern(name), Score: score})
		}
		byName := FromScoresIn(tab, scored, tie)
		byID := FromScoredIDs(tab, scoredIDs, tie)
		if !reflect.DeepEqual(byName.Names(), byID.Names()) {
			t.Errorf("tie=%d: FromScoredIDs order differs from FromScores", tie)
		}
	}
}

func TestTopSetIDsMatchesTopSet(t *testing.T) {
	r := MustNew([]string{"a.com", "b.com", "c.com", "d.com", "e.com"})
	for _, k := range []int{0, 1, 3, 5, 99} {
		strs := r.TopSet(k)
		ids := r.TopSetIDs(k)
		if len(strs) != ids.Len() {
			t.Fatalf("k=%d: |TopSet|=%d |TopSetIDs|=%d", k, len(strs), ids.Len())
		}
		for name := range strs {
			id, ok := r.Table().Find(name)
			if !ok || !ids.Contains(id) {
				t.Errorf("k=%d: %q in TopSet but not in TopSetIDs", k, name)
			}
		}
		if r.TopSetIDs(k) != ids {
			t.Errorf("k=%d: TopSetIDs not memoized", k)
		}
	}
}

func TestRankOfIDAndContainsID(t *testing.T) {
	tab := names.NewTable()
	r, err := NewIn(tab, []string{"a.com", "b.com", "c.com"})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"a.com", "b.com", "c.com"} {
		id, _ := tab.Find(name)
		if rk, ok := r.RankOfID(id); !ok || rk != i+1 {
			t.Errorf("RankOfID(%q) = %d,%v want %d,true", name, rk, ok, i+1)
		}
		if !r.ContainsID(id) {
			t.Errorf("ContainsID(%q) = false", name)
		}
	}
	absent := tab.Intern("zzz.com")
	if _, ok := r.RankOfID(absent); ok || r.ContainsID(absent) {
		t.Error("absent ID reported present")
	}
	// RankOf on a never-interned name must not grow the table.
	before := tab.Len()
	if _, ok := r.RankOf("never-interned.example"); ok {
		t.Error("RankOf found a never-interned name")
	}
	if tab.Len() != before {
		t.Errorf("RankOf grew the table: %d -> %d", before, tab.Len())
	}
}

func TestFilterIDsMatchesFilter(t *testing.T) {
	r := MustNew([]string{"a.com", "bb.com", "c.com", "dd.com"})
	byName := r.Filter(func(name string) bool { return len(name) == 5 })
	byID := r.FilterIDs(func(id names.ID) bool { return len(r.Table().Lookup(id)) == 5 })
	if !reflect.DeepEqual(byName.Names(), byID.Names()) {
		t.Errorf("FilterIDs = %v, Filter = %v", byID.Names(), byName.Names())
	}
}

func TestDuplicateDetectionSinglePass(t *testing.T) {
	tab := names.NewTable()
	if _, err := NewIn(tab, []string{"a.com", "b.com", "a.com"}); err == nil {
		t.Error("NewIn accepted a duplicate name")
	}
	id := tab.Intern("x.com")
	if _, err := FromIDs(tab, []names.ID{id, tab.Intern("y.com"), id}); err == nil {
		t.Error("FromIDs accepted a duplicate ID")
	}
	// A ranking constructed from unique input must not retain an index
	// until a lookup asks for one.
	r, err := NewIn(tab, []string{"u.com", "v.com"})
	if err != nil {
		t.Fatal(err)
	}
	if r.pos != nil {
		t.Error("construction built the rank index eagerly")
	}
	r.RankOf("u.com")
	if r.pos == nil {
		t.Error("lookup did not build the rank index")
	}
}

// TestNormalizePSLInMatchesNormalizePSL checks the memoized apex path
// renders the same ranking and stats as the direct PSL walk, and that the
// normalizer's cache returns stable answers on repeat queries.
func TestNormalizePSLInMatchesNormalizePSL(t *testing.T) {
	tab := names.NewTable()
	r, err := NewIn(tab, []string{
		"com",
		"www.google.com",
		"api.google.com",
		"example.co.uk",
		"cdn.shop.example.de",
	})
	if err != nil {
		t.Fatal(err)
	}
	nz := NewNormalizer(tab, psl.Default())

	wantR, wantStats := r.NormalizePSL(psl.Default())
	for pass := 0; pass < 2; pass++ { // second pass hits the warm apex cache
		gotR, gotStats := r.NormalizePSLIn(nz)
		if !reflect.DeepEqual(gotR.Names(), wantR.Names()) {
			t.Errorf("pass %d: NormalizePSLIn = %v, want %v", pass, gotR.Names(), wantR.Names())
		}
		if gotStats != wantStats {
			t.Errorf("pass %d: stats = %+v, want %+v", pass, gotStats, wantStats)
		}
	}

	id, _ := tab.Find("www.google.com")
	apex1, ok1 := nz.Apex(id)
	apex2, ok2 := nz.Apex(id)
	if !ok1 || !ok2 || apex1 != apex2 {
		t.Errorf("Apex unstable: (%d,%v) then (%d,%v)", apex1, ok1, apex2, ok2)
	}
	if got := tab.Lookup(apex1); got != "google.com" {
		t.Errorf("Apex(www.google.com) = %q, want google.com", got)
	}
	suffix, _ := tab.Find("com")
	if _, ok := nz.Apex(suffix); ok {
		t.Error("Apex accepted a bare public suffix")
	}
}

func TestNormalizePSLInWrongTablePanics(t *testing.T) {
	r := MustNew([]string{"a.com"})
	nz := NewNormalizer(names.NewTable(), psl.Default())
	defer func() {
		if recover() == nil {
			t.Error("NormalizePSLIn accepted a normalizer over a foreign table")
		}
	}()
	r.NormalizePSLIn(nz)
}
