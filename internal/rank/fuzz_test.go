package rank

import "testing"

// FuzzScaledMagnitudes checks the bucketer construction over degenerate
// universe sizes: the cutoffs must always be strictly increasing, at least
// 1, and consistent with BucketOf at every boundary.
func FuzzScaledMagnitudes(f *testing.F) {
	for _, n := range []int{-1_000_000, -1, 0, 1, 2, 3, 9, 10, 999, 1_000,
		1_001, 999_999, 1_000_000, 1_000_001, 1 << 40, 1<<62 + 12345} {
		f.Add(n)
	}
	f.Fuzz(func(t *testing.T, n int) {
		b := ScaledMagnitudes(n)
		prev := 0
		for i, m := range b.Magnitudes {
			if m < 1 {
				t.Fatalf("ScaledMagnitudes(%d) cutoff %d = %d < 1", n, i, m)
			}
			if m <= prev {
				t.Fatalf("ScaledMagnitudes(%d) cutoffs not strictly increasing: %v",
					n, b.Magnitudes)
			}
			prev = m
		}
		// Boundary consistency: each cutoff lands in its own bucket, the
		// next rank in the next bucket.
		for i, m := range b.Magnitudes {
			if got := b.BucketOf(m); got != Bucket(i) {
				t.Fatalf("ScaledMagnitudes(%d): BucketOf(%d) = %v, want %v",
					n, m, got, Bucket(i))
			}
			if got := b.BucketOf(m + 1); got != Bucket(i+1) {
				t.Fatalf("ScaledMagnitudes(%d): BucketOf(%d) = %v, want %v",
					n, m+1, got, Bucket(i+1))
			}
		}
		for i := range b.Magnitudes {
			if b.Label(i) == "" {
				t.Fatalf("ScaledMagnitudes(%d): empty label at %d", n, i)
			}
		}
	})
}

// FuzzBucketer feeds arbitrary (even non-monotonic) cutoffs and ranks to
// BucketOf: it must never panic, always return a valid bucket, honor the
// unranked convention, and stay monotone for sane cutoffs.
func FuzzBucketer(f *testing.F) {
	f.Add(1000, 10_000, 100_000, 1_000_000, 500)
	f.Add(1, 2, 3, 4, 0)
	f.Add(0, 0, 0, 0, -77)
	f.Add(-5, 1<<50, -9, 3, 1<<52)
	f.Add(20, 200, 2000, 20000, 20001)
	f.Fuzz(func(t *testing.T, m0, m1, m2, m3, rank int) {
		bk := Bucketer{Magnitudes: [4]int{m0, m1, m2, m3}}
		got := bk.BucketOf(rank)
		if got > BucketBeyond {
			t.Fatalf("BucketOf(%d) with cutoffs %v = %d, out of range",
				rank, bk.Magnitudes, got)
		}
		if rank <= 0 && got != BucketBeyond {
			t.Fatalf("BucketOf(%d) = %v, want BucketBeyond for unranked", rank, got)
		}
		if rank > 0 {
			// The returned bucket must be the first cutoff admitting rank.
			for i, m := range bk.Magnitudes {
				if rank <= m {
					if got != Bucket(i) {
						t.Fatalf("BucketOf(%d) cutoffs %v = %v, want first admitting %v",
							rank, bk.Magnitudes, got, Bucket(i))
					}
					return
				}
			}
			if got != BucketBeyond {
				t.Fatalf("BucketOf(%d) cutoffs %v = %v, want BucketBeyond",
					rank, bk.Magnitudes, got)
			}
		}
	})
}

// TestBucketOfMonotone pins the monotonicity BucketOf must provide for
// increasing cutoffs (the fuzz targets cannot assert it across two calls).
func TestBucketOfMonotone(t *testing.T) {
	bk := ScaledMagnitudes(20_000)
	last := Bucket1K
	for r := 1; r <= 25_000; r++ {
		b := bk.BucketOf(r)
		if b < last {
			t.Fatalf("BucketOf(%d) = %v below BucketOf(%d) = %v", r, b, r-1, last)
		}
		last = b
	}
	if last != BucketBeyond {
		t.Fatalf("rank past the largest cutoff = %v, want BucketBeyond", last)
	}
}
