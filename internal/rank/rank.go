// Package rank provides the ranked-list data model shared by every top-list
// provider and by the Cloudflare metric pipeline: ordered rankings,
// score-to-rank conversion with explicit tie-breaking, truncation,
// rank-magnitude buckets, and the PSL normalization of Section 4.2.
//
// A Ranking is backed by dense interner IDs (see package names): rank
// lookups, membership tests, and top-k sets operate on integers, and the
// string form is materialized only at the I/O boundary (CSV, report
// rendering, error messages). IDs never influence ordering — every sort and
// tie-break is decided by scores and by the name strings (or their
// precomputed hashes), so an ID-backed ranking renders byte-identically to
// its string-backed ancestor.
package rank

import (
	"fmt"
	"sort"
	"sync"

	"toplists/internal/names"
	"toplists/internal/psl"
)

// sharedTab is the interner behind the string-only constructors (New,
// MustNew, FromScores, ReadCSV). Rankings inside a study are built against
// the study world's table instead; the shared table exists so that
// free-standing rankings (tests, CSV fixtures, examples) keep working
// unchanged and still compare by ID among themselves.
var sharedTab = names.NewTable()

// Ranking is an ordered list of names, most popular first. Ranks are
// 1-based. The ID sequence is immutable after construction; the rank index
// and top-k sets are derived lazily under sync.Once-style guards, so a
// Ranking is safe for concurrent use by multiple goroutines.
type Ranking struct {
	tab *names.Table
	ids []names.ID

	// pos maps ID -> 0-based index. It is built at most once, on first
	// lookup, so rankings that are only iterated (truncations, filtered
	// intermediates) never pay for it.
	posOnce sync.Once
	pos     map[names.ID]int32

	// strs memoizes the Names() materialization; hot paths never build it.
	strOnce sync.Once
	strs    []string

	// topSets and topIDSets memoize TopSet/TopSetIDs results per k: the
	// evaluation asks for the same few cuts (EvalK, SpearmanK) of
	// long-lived rankings over and over across experiments.
	topMu     sync.Mutex
	topSets   map[int]map[string]struct{}
	topIDSets map[int]*names.Set
}

// New builds a Ranking from name strings in rank order, interning them in
// the package's shared table. Duplicate names are an error: a list must
// rank each name once.
func New(list []string) (*Ranking, error) {
	return NewIn(sharedTab, list)
}

// NewIn is New against an explicit interner table.
func NewIn(tab *names.Table, list []string) (*Ranking, error) {
	ids := make([]names.ID, len(list))
	var scratch bitScratch
	for i, n := range list {
		id := tab.Intern(n)
		if scratch.testAndSet(id) {
			return nil, fmt.Errorf("rank: duplicate name %q", n)
		}
		ids[i] = id
	}
	return &Ranking{tab: tab, ids: ids}, nil
}

// MustNew is New for inputs known to be unique; it panics on error.
func MustNew(list []string) *Ranking {
	r, err := New(list)
	if err != nil {
		panic(err)
	}
	return r
}

// FromIDs builds a Ranking from interned IDs in rank order. Duplicate IDs
// are an error.
func FromIDs(tab *names.Table, ids []names.ID) (*Ranking, error) {
	var scratch bitScratch
	for _, id := range ids {
		if scratch.testAndSet(id) {
			return nil, fmt.Errorf("rank: duplicate name %q", tab.Lookup(id))
		}
	}
	return &Ranking{tab: tab, ids: ids}, nil
}

// MustFromIDs is FromIDs for inputs known to be unique; it panics on error.
func MustFromIDs(tab *names.Table, ids []names.ID) *Ranking {
	r, err := FromIDs(tab, ids)
	if err != nil {
		panic(err)
	}
	return r
}

// bitScratch is a throwaway duplicate detector over dense IDs: one bit per
// ID, grown on demand, discarded after construction. Duplicate checking is
// a single pass and leaves no retained index behind — the rank index is
// still built lazily, only if a lookup ever needs it.
type bitScratch struct{ words []uint64 }

// testAndSet reports whether id was already marked, marking it.
func (b *bitScratch) testAndSet(id names.ID) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		grown := make([]uint64, w+w/2+1)
		copy(grown, b.words)
		b.words = grown
	}
	bit := uint64(1) << (id & 63)
	if b.words[w]&bit != 0 {
		return true
	}
	b.words[w] |= bit
	return false
}

// fromUniqueIDs wraps IDs already known to be pairwise distinct (slices
// derived from an existing Ranking), deferring the index build until a
// rank lookup actually needs it.
func fromUniqueIDs(tab *names.Table, ids []names.ID) *Ranking {
	return &Ranking{tab: tab, ids: ids}
}

// index returns the ID -> 0-based-index map, building it on first use.
// Duplicates keep their first index (New rejects them for external input).
func (r *Ranking) index() map[names.ID]int32 {
	r.posOnce.Do(func() {
		pos := make(map[names.ID]int32, len(r.ids))
		for i, id := range r.ids {
			if _, dup := pos[id]; !dup {
				pos[id] = int32(i)
			}
		}
		r.pos = pos
	})
	return r.pos
}

// Table returns the interner table the ranking's IDs belong to. IDs from
// rankings over different tables are unrelated; core's comparison helpers
// check table identity before taking an ID fast path.
func (r *Ranking) Table() *names.Table { return r.tab }

// Len returns the number of ranked names.
func (r *Ranking) Len() int { return len(r.ids) }

// At returns the name at 1-based rank i.
func (r *Ranking) At(i int) string { return r.tab.Lookup(r.ids[i-1]) }

// IDAt returns the interned ID at 1-based rank i.
func (r *Ranking) IDAt(i int) names.ID { return r.ids[i-1] }

// IDs returns the underlying rank-ordered IDs. Callers must not modify the
// returned slice.
func (r *Ranking) IDs() []names.ID { return r.ids }

// Names returns the rank-ordered names, materialized once on first call.
// Callers must not modify the returned slice.
func (r *Ranking) Names() []string {
	r.strOnce.Do(func() {
		strs := make([]string, len(r.ids))
		for i, id := range r.ids {
			strs[i] = r.tab.Lookup(id)
		}
		r.strs = strs
	})
	return r.strs
}

// RankOf returns the 1-based rank of name, or (0, false) if absent. Names
// never interned anywhere cannot be ranked here, so the lookup does not
// grow the table.
func (r *Ranking) RankOf(name string) (int, bool) {
	id, ok := r.tab.Find(name)
	if !ok {
		return 0, false
	}
	return r.RankOfID(id)
}

// RankOfID returns the 1-based rank of id, or (0, false) if absent.
func (r *Ranking) RankOfID(id names.ID) (int, bool) {
	i, ok := r.index()[id]
	if !ok {
		return 0, false
	}
	return int(i) + 1, true
}

// Contains reports whether name appears in the ranking.
func (r *Ranking) Contains(name string) bool {
	id, ok := r.tab.Find(name)
	if !ok {
		return false
	}
	return r.ContainsID(id)
}

// ContainsID reports whether id appears in the ranking.
func (r *Ranking) ContainsID(id names.ID) bool {
	_, ok := r.index()[id]
	return ok
}

// Top returns a new Ranking of the first k names (all names if k exceeds
// the length).
func (r *Ranking) Top(k int) *Ranking {
	if k > len(r.ids) {
		k = len(r.ids)
	}
	if k < 0 {
		k = 0
	}
	return fromUniqueIDs(r.tab, r.ids[:k:k])
}

// TopSet returns the top-k names as a string set, memoized per k. Callers
// must not modify the returned set. Hot paths use TopSetIDs instead.
func (r *Ranking) TopSet(k int) map[string]struct{} {
	k = r.clampK(k)
	r.topMu.Lock()
	defer r.topMu.Unlock()
	if s, ok := r.topSets[k]; ok {
		return s
	}
	s := make(map[string]struct{}, k)
	for _, id := range r.ids[:k] {
		s[r.tab.Lookup(id)] = struct{}{}
	}
	if r.topSets == nil {
		r.topSets = make(map[int]map[string]struct{})
	}
	r.topSets[k] = s
	return s
}

// TopSetIDs returns the top-k IDs as a bitset, memoized per k. Callers
// must not modify the returned set.
func (r *Ranking) TopSetIDs(k int) *names.Set {
	k = r.clampK(k)
	r.topMu.Lock()
	defer r.topMu.Unlock()
	if s, ok := r.topIDSets[k]; ok {
		return s
	}
	s := names.NewSet(r.ids[:k])
	if r.topIDSets == nil {
		r.topIDSets = make(map[int]*names.Set)
	}
	r.topIDSets[k] = s
	return s
}

func (r *Ranking) clampK(k int) int {
	if k > len(r.ids) {
		k = len(r.ids)
	}
	if k < 0 {
		k = 0
	}
	return k
}

// Filter returns a new Ranking keeping only names for which keep returns
// true, preserving order.
func (r *Ranking) Filter(keep func(name string) bool) *Ranking {
	out := make([]names.ID, 0, len(r.ids))
	for _, id := range r.ids {
		if keep(r.tab.Lookup(id)) {
			out = append(out, id)
		}
	}
	return fromUniqueIDs(r.tab, out)
}

// FilterIDs returns a new Ranking keeping only IDs for which keep returns
// true, preserving order.
func (r *Ranking) FilterIDs(keep func(id names.ID) bool) *Ranking {
	out := make([]names.ID, 0, len(r.ids))
	for _, id := range r.ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return fromUniqueIDs(r.tab, out)
}

// Scored pairs a name with a raw popularity score.
type Scored struct {
	Name  string
	Score float64
}

// ScoredID pairs an interned name with a raw popularity score.
type ScoredID struct {
	ID    names.ID
	Score float64
}

// Tie selects the tie-breaking policy used when converting scores to ranks.
type Tie uint8

const (
	// TieLexicographic breaks score ties alphabetically, as Cisco Umbrella
	// has been observed to do ("long strings of alphabetically sorted
	// domains", Section 5.2).
	TieLexicographic Tie = iota
	// TieHashed breaks ties by a stable hash of the name, modeling lists
	// whose tie order carries no information.
	TieHashed
)

// FromScores sorts items by descending score into a Ranking over the
// shared table, breaking ties per the policy. The input slice is sorted in
// place.
func FromScores(items []Scored, tie Tie) *Ranking {
	return FromScoresIn(sharedTab, items, tie)
}

// FromScoresIn is FromScores against an explicit interner table.
func FromScoresIn(tab *names.Table, items []Scored, tie Tie) *Ranking {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		switch tie {
		case TieHashed:
			return strHash(items[a].Name) < strHash(items[b].Name)
		default:
			return items[a].Name < items[b].Name
		}
	})
	ids := make([]names.ID, len(items))
	var scratch bitScratch
	for i, it := range items {
		id := tab.Intern(it.Name)
		if scratch.testAndSet(id) {
			panic(fmt.Sprintf("rank: duplicate name %q", it.Name))
		}
		ids[i] = id
	}
	return &Ranking{tab: tab, ids: ids}
}

// FromScoredIDs sorts items by descending score into a Ranking, breaking
// ties per the policy. Ties are still decided by the name — its bytes for
// TieLexicographic, its precomputed string hash for TieHashed — never by
// the ID, so the order matches FromScores over the corresponding strings
// exactly. The input slice is sorted in place.
func FromScoredIDs(tab *names.Table, items []ScoredID, tie Tie) *Ranking {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		switch tie {
		case TieHashed:
			return tab.Hash(items[a].ID) < tab.Hash(items[b].ID)
		default:
			return tab.Lookup(items[a].ID) < tab.Lookup(items[b].ID)
		}
	})
	ids := make([]names.ID, len(items))
	var scratch bitScratch
	for i, it := range items {
		if scratch.testAndSet(it.ID) {
			panic(fmt.Sprintf("rank: duplicate name %q", tab.Lookup(it.ID)))
		}
		ids[i] = it.ID
	}
	return &Ranking{tab: tab, ids: ids}
}

func strHash(s string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// NormalizeStats reports how much a PSL normalization changed a list; the
// deviation fraction is what Table 2 of the paper tabulates.
type NormalizeStats struct {
	// Entries is the number of input names.
	Entries int
	// Deviating is the number of input names that were not already PSL
	// registrable domains (e.g. FQDNs or names carrying subdomains).
	Deviating int
	// Dropped is the number of input names with no registrable domain
	// (names that are themselves public suffixes, such as Umbrella's
	// high-ranked bare TLD entries).
	Dropped int
	// Groups is the number of distinct registrable domains in the output.
	Groups int
}

// DeviationPct returns the percentage of entries that deviated from the PSL
// registrable-domain form.
func (s NormalizeStats) DeviationPct() float64 {
	if s.Entries == 0 {
		return 0
	}
	return 100 * float64(s.Deviating) / float64(s.Entries)
}

// NormalizePSL groups the ranking's names by PSL registrable domain,
// assigning each group the smallest (most popular) rank among its members
// (Section 4.2). The output ranking is ordered by that minimum rank. Names
// that are themselves public suffixes are dropped and counted.
//
// Each name's registrable domain is recomputed from the PSL trie; study
// code uses NormalizePSLIn, which memoizes the apex per interned ID.
func (r *Ranking) NormalizePSL(list *psl.List) (*Ranking, NormalizeStats) {
	return r.normalize(func(id names.ID) (names.ID, bool) {
		etld1, ok := list.RegisteredDomain(r.tab.Lookup(id))
		if !ok {
			return 0, false
		}
		return r.tab.Intern(etld1), true
	})
}

// NormalizePSLIn is NormalizePSL through a Normalizer, which caches each
// interned name's registrable domain once per study instead of re-walking
// the PSL trie per (list, day). The normalizer must be bound to the
// ranking's own table.
func (r *Ranking) NormalizePSLIn(nz *Normalizer) (*Ranking, NormalizeStats) {
	if nz.tab != r.tab {
		panic("rank: NormalizePSLIn: normalizer bound to a different table")
	}
	return r.normalize(nz.Apex)
}

// normalize implements PSL grouping over any apex resolver. Appending each
// group at first encounter walks ranks in increasing order, so the output
// is ordered by minimum member rank — the same order the string
// implementation produced by sorting group keys on their minimum index.
func (r *Ranking) normalize(apex func(names.ID) (names.ID, bool)) (*Ranking, NormalizeStats) {
	stats := NormalizeStats{Entries: len(r.ids)}
	var seen bitScratch
	out := make([]names.ID, 0, len(r.ids))
	for _, id := range r.ids {
		apexID, ok := apex(id)
		if !ok {
			stats.Dropped++
			stats.Deviating++ // a bare public suffix is by definition not registrable
			continue
		}
		if apexID != id {
			stats.Deviating++
		}
		if !seen.testAndSet(apexID) {
			out = append(out, apexID)
		}
	}
	stats.Groups = len(out)
	return fromUniqueIDs(r.tab, out), stats
}
