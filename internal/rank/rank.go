// Package rank provides the ranked-list data model shared by every top-list
// provider and by the Cloudflare metric pipeline: ordered rankings,
// score-to-rank conversion with explicit tie-breaking, truncation,
// rank-magnitude buckets, and the PSL normalization of Section 4.2.
package rank

import (
	"fmt"
	"sort"
	"sync"

	"toplists/internal/psl"
)

// Ranking is an ordered list of names, most popular first. Ranks are
// 1-based. The name sequence is immutable after construction; the rank
// index and top-k sets are derived lazily under sync.Once-style guards, so
// a Ranking is safe for concurrent use by multiple goroutines.
type Ranking struct {
	names []string

	// pos maps name -> 0-based index. It is built at most once, on first
	// lookup, so rankings that are only iterated (truncations, filtered
	// intermediates) never pay for it.
	posOnce sync.Once
	pos     map[string]int

	// topSets memoizes TopSet results per k: the evaluation asks for the
	// same few cuts (EvalK, SpearmanK) of long-lived rankings over and
	// over across experiments.
	topMu   sync.Mutex
	topSets map[int]map[string]struct{}
}

// New builds a Ranking from names in rank order. Duplicate names are an
// error: a list must rank each name once.
func New(names []string) (*Ranking, error) {
	r := &Ranking{names: names}
	if len(r.index()) != len(names) {
		seen := make(map[string]struct{}, len(names))
		for _, n := range names {
			if _, dup := seen[n]; dup {
				return nil, fmt.Errorf("rank: duplicate name %q", n)
			}
			seen[n] = struct{}{}
		}
	}
	return r, nil
}

// fromUnique wraps names already known to be pairwise distinct (slices
// derived from an existing Ranking), deferring the index build until a
// rank lookup actually needs it.
func fromUnique(names []string) *Ranking {
	return &Ranking{names: names}
}

// index returns the name -> 0-based-index map, building it on first use.
// Duplicates keep their first index (New rejects them for external input).
func (r *Ranking) index() map[string]int {
	r.posOnce.Do(func() {
		pos := make(map[string]int, len(r.names))
		for i, n := range r.names {
			if _, dup := pos[n]; !dup {
				pos[n] = i
			}
		}
		r.pos = pos
	})
	return r.pos
}

// MustNew is New for inputs known to be unique; it panics on error.
func MustNew(names []string) *Ranking {
	r, err := New(names)
	if err != nil {
		panic(err)
	}
	return r
}

// Len returns the number of ranked names.
func (r *Ranking) Len() int { return len(r.names) }

// At returns the name at 1-based rank i.
func (r *Ranking) At(i int) string { return r.names[i-1] }

// Names returns the underlying rank-ordered names. Callers must not modify
// the returned slice.
func (r *Ranking) Names() []string { return r.names }

// RankOf returns the 1-based rank of name, or (0, false) if absent.
func (r *Ranking) RankOf(name string) (int, bool) {
	i, ok := r.index()[name]
	if !ok {
		return 0, false
	}
	return i + 1, true
}

// Contains reports whether name appears in the ranking.
func (r *Ranking) Contains(name string) bool {
	_, ok := r.index()[name]
	return ok
}

// Top returns a new Ranking of the first k names (all names if k exceeds
// the length).
func (r *Ranking) Top(k int) *Ranking {
	if k > len(r.names) {
		k = len(r.names)
	}
	if k < 0 {
		k = 0
	}
	return fromUnique(r.names[:k:k])
}

// TopSet returns the top-k names as a set, memoized per k. Callers must
// not modify the returned set.
func (r *Ranking) TopSet(k int) map[string]struct{} {
	if k > len(r.names) {
		k = len(r.names)
	}
	if k < 0 {
		k = 0
	}
	r.topMu.Lock()
	defer r.topMu.Unlock()
	if s, ok := r.topSets[k]; ok {
		return s
	}
	s := make(map[string]struct{}, k)
	for _, n := range r.names[:k] {
		s[n] = struct{}{}
	}
	if r.topSets == nil {
		r.topSets = make(map[int]map[string]struct{})
	}
	r.topSets[k] = s
	return s
}

// Filter returns a new Ranking keeping only names for which keep returns
// true, preserving order.
func (r *Ranking) Filter(keep func(name string) bool) *Ranking {
	out := make([]string, 0, len(r.names))
	for _, n := range r.names {
		if keep(n) {
			out = append(out, n)
		}
	}
	return fromUnique(out)
}

// Scored pairs a name with a raw popularity score.
type Scored struct {
	Name  string
	Score float64
}

// Tie selects the tie-breaking policy used when converting scores to ranks.
type Tie uint8

const (
	// TieLexicographic breaks score ties alphabetically, as Cisco Umbrella
	// has been observed to do ("long strings of alphabetically sorted
	// domains", Section 5.2).
	TieLexicographic Tie = iota
	// TieHashed breaks ties by a stable hash of the name, modeling lists
	// whose tie order carries no information.
	TieHashed
)

// FromScores sorts items by descending score into a Ranking, breaking ties
// per the policy. The input slice is sorted in place.
func FromScores(items []Scored, tie Tie) *Ranking {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		switch tie {
		case TieHashed:
			return strHash(items[a].Name) < strHash(items[b].Name)
		default:
			return items[a].Name < items[b].Name
		}
	})
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.Name
	}
	return MustNew(names)
}

func strHash(s string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// NormalizeStats reports how much a PSL normalization changed a list; the
// deviation fraction is what Table 2 of the paper tabulates.
type NormalizeStats struct {
	// Entries is the number of input names.
	Entries int
	// Deviating is the number of input names that were not already PSL
	// registrable domains (e.g. FQDNs or names carrying subdomains).
	Deviating int
	// Dropped is the number of input names with no registrable domain
	// (names that are themselves public suffixes, such as Umbrella's
	// high-ranked bare TLD entries).
	Dropped int
	// Groups is the number of distinct registrable domains in the output.
	Groups int
}

// DeviationPct returns the percentage of entries that deviated from the PSL
// registrable-domain form.
func (s NormalizeStats) DeviationPct() float64 {
	if s.Entries == 0 {
		return 0
	}
	return 100 * float64(s.Deviating) / float64(s.Entries)
}

// NormalizePSL groups the ranking's names by PSL registrable domain,
// assigning each group the smallest (most popular) rank among its members
// (Section 4.2). The output ranking is ordered by that minimum rank. Names
// that are themselves public suffixes are dropped and counted.
func (r *Ranking) NormalizePSL(list *psl.List) (*Ranking, NormalizeStats) {
	stats := NormalizeStats{Entries: len(r.names)}
	minRank := make(map[string]int, len(r.names))
	for i, name := range r.names {
		etld1, ok := list.RegisteredDomain(name)
		if !ok {
			stats.Dropped++
			stats.Deviating++ // a bare public suffix is by definition not registrable
			continue
		}
		if etld1 != name {
			stats.Deviating++
		}
		if _, seen := minRank[etld1]; !seen {
			minRank[etld1] = i
		}
	}
	stats.Groups = len(minRank)
	out := make([]string, 0, len(minRank))
	for name := range minRank {
		out = append(out, name)
	}
	sort.Slice(out, func(a, b int) bool { return minRank[out[a]] < minRank[out[b]] })
	return MustNew(out), stats
}
