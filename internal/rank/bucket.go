package rank

import "fmt"

// Bucket is a rank-order-of-magnitude bucket as published by CrUX and used
// throughout the paper's evaluation: top 1K, 10K, 100K, 1M, and beyond.
type Bucket uint8

// The rank-magnitude buckets of the study, in increasing-rank order.
const (
	Bucket1K Bucket = iota
	Bucket10K
	Bucket100K
	Bucket1M
	BucketBeyond // ranked outside the largest magnitude, or unranked
)

// NumBuckets is the number of distinct Bucket values.
const NumBuckets = int(BucketBeyond) + 1

// Bucketer assigns ranks to magnitude buckets. The paper uses the fixed
// magnitudes 1K/10K/100K/1M; scaled-down simulation runs keep the same
// decade structure over a smaller universe (see ScaledMagnitudes), so a
// Bucketer carries its cutoffs explicitly.
type Bucketer struct {
	// Magnitudes holds exactly NumBuckets-1 increasing rank cutoffs.
	Magnitudes [NumBuckets - 1]int
}

// PaperBucketer uses the magnitudes of the paper: 1K, 10K, 100K, 1M.
var PaperBucketer = Bucketer{Magnitudes: [4]int{1_000, 10_000, 100_000, 1_000_000}}

// ScaledMagnitudes returns a Bucketer preserving the paper's decade
// structure over a universe of n names: cutoffs at n/1000, n/100, n/10, n
// (each at least 1 and strictly increasing).
func ScaledMagnitudes(n int) Bucketer {
	if n >= 1_000_000 {
		return PaperBucketer
	}
	var b Bucketer
	div := 1000
	prev := 0
	for i := range b.Magnitudes {
		m := n / div
		if m <= prev {
			m = prev + 1
		}
		b.Magnitudes[i] = m
		prev = m
		div /= 10
	}
	return b
}

// BucketOf returns the bucket for a 1-based rank. Non-positive ranks (the
// convention for "unranked") map to BucketBeyond.
func (bk Bucketer) BucketOf(rank int) Bucket {
	if rank <= 0 {
		return BucketBeyond
	}
	for i, m := range bk.Magnitudes {
		if rank <= m {
			return Bucket(i)
		}
	}
	return BucketBeyond
}

// BucketOfName returns the bucket a ranking places a name into.
func (bk Bucketer) BucketOfName(r *Ranking, name string) Bucket {
	rk, ok := r.RankOf(name)
	if !ok {
		return BucketBeyond
	}
	return bk.BucketOf(rk)
}

// Label renders the human-readable column header for bucket index i
// ("1K", "10K", ...), using K/M abbreviations.
func (bk Bucketer) Label(i int) string {
	if i >= len(bk.Magnitudes) {
		return "beyond"
	}
	m := bk.Magnitudes[i]
	switch {
	case m >= 1_000_000 && m%1_000_000 == 0:
		return fmt.Sprintf("%dM", m/1_000_000)
	case m >= 1_000 && m%1_000 == 0:
		return fmt.Sprintf("%dK", m/1_000)
	default:
		return fmt.Sprintf("%d", m)
	}
}

// String implements fmt.Stringer for the bucket itself.
func (b Bucket) String() string {
	switch b {
	case Bucket1K:
		return "mag-1"
	case Bucket10K:
		return "mag-2"
	case Bucket100K:
		return "mag-3"
	case Bucket1M:
		return "mag-4"
	default:
		return "beyond"
	}
}
