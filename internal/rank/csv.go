package rank

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the ranking in the de-facto top-list CSV format used by
// Alexa, Umbrella, and Majestic downloads: "rank,name" with no header.
func (r *Ranking) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, id := range r.ids {
		name := r.tab.Lookup(id)
		if _, err := fmt.Fprintf(bw, "%d,%s\n", i+1, name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses "rank,name" lines into a Ranking. Ranks must be the
// sequence 1..n in order; anything else is a malformed list snapshot.
func ReadCSV(r io.Reader) (*Ranking, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.ReuseRecord = true
	var names []string
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("rank: csv: %w", err)
		}
		line++
		got, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("rank: csv line %d: bad rank %q", line, rec[0])
		}
		if got != line {
			return nil, fmt.Errorf("rank: csv line %d: rank %d out of sequence", line, got)
		}
		if rec[1] == "" {
			return nil, fmt.Errorf("rank: csv line %d: empty name", line)
		}
		names = append(names, rec[1])
	}
	return New(names)
}
