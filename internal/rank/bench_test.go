package rank

import (
	"fmt"
	"testing"

	"toplists/internal/names"
)

// benchIDs builds a table with n interned site-like names and returns the
// rank-ordered IDs.
func benchIDs(n int) (*names.Table, []names.ID) {
	tab := names.NewTable()
	ids := make([]names.ID, n)
	for i := range ids {
		ids[i] = tab.Intern(fmt.Sprintf("site-%06d.example", i))
	}
	return tab, ids
}

// BenchmarkRankingTopSet and BenchmarkRankingTopSetIDs measure a cold top-k
// set build (the memo is per Ranking, so each iteration constructs a fresh
// ranking; the construction cost is identical in both and cancels out).
func BenchmarkRankingTopSet(b *testing.B) {
	tab, ids := benchIDs(20_000)
	k := len(ids) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := MustFromIDs(tab, ids)
		if len(r.TopSet(k)) != k {
			b.Fatal("bad set")
		}
	}
}

func BenchmarkRankingTopSetIDs(b *testing.B) {
	tab, ids := benchIDs(20_000)
	k := len(ids) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := MustFromIDs(tab, ids)
		if r.TopSetIDs(k).Len() != k {
			b.Fatal("bad set")
		}
	}
}

// BenchmarkRankingRankOf and BenchmarkRankingRankOfID measure warm rank
// lookups: the string path resolves the name through the interner first.
func BenchmarkRankingRankOf(b *testing.B) {
	tab, ids := benchIDs(20_000)
	r := MustFromIDs(tab, ids)
	queries := make([]string, len(ids))
	for i, id := range ids {
		queries[i] = tab.Lookup(id)
	}
	r.RankOf(queries[0]) // build the index outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.RankOf(queries[i%len(queries)]); !ok {
			b.Fatal("missing")
		}
	}
}

func BenchmarkRankingRankOfID(b *testing.B) {
	tab, ids := benchIDs(20_000)
	r := MustFromIDs(tab, ids)
	r.RankOfID(ids[0]) // build the index outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.RankOfID(ids[i%len(ids)]); !ok {
			b.Fatal("missing")
		}
	}
}
