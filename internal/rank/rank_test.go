package rank

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"toplists/internal/psl"
)

func TestNewAndLookup(t *testing.T) {
	r := MustNew([]string{"a.com", "b.com", "c.com"})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.At(1) != "a.com" || r.At(3) != "c.com" {
		t.Error("At order wrong")
	}
	if rk, ok := r.RankOf("b.com"); !ok || rk != 2 {
		t.Errorf("RankOf(b.com) = %d, %v", rk, ok)
	}
	if _, ok := r.RankOf("zzz"); ok {
		t.Error("absent name found")
	}
	if !r.Contains("a.com") || r.Contains("nope") {
		t.Error("Contains wrong")
	}
}

func TestNewDuplicate(t *testing.T) {
	if _, err := New([]string{"a.com", "a.com"}); err == nil {
		t.Fatal("duplicate must error")
	}
}

func TestTopAndTopSet(t *testing.T) {
	r := MustNew([]string{"a", "b", "c", "d"})
	top := r.Top(2)
	if top.Len() != 2 || top.At(1) != "a" || top.At(2) != "b" {
		t.Error("Top(2) wrong")
	}
	if r.Top(99).Len() != 4 {
		t.Error("Top beyond length should clamp")
	}
	if r.Top(-1).Len() != 0 {
		t.Error("Top(-1) should be empty")
	}
	s := r.TopSet(3)
	if len(s) != 3 {
		t.Error("TopSet size")
	}
	if _, ok := s["d"]; ok {
		t.Error("TopSet included rank 4")
	}
}

func TestFilter(t *testing.T) {
	r := MustNew([]string{"a.com", "b.net", "c.com", "d.org"})
	f := r.Filter(func(n string) bool { return strings.HasSuffix(n, ".com") })
	if !reflect.DeepEqual(f.Names(), []string{"a.com", "c.com"}) {
		t.Errorf("Filter = %v", f.Names())
	}
}

func TestFromScoresAndTies(t *testing.T) {
	items := []Scored{
		{"bbb.com", 5}, {"aaa.com", 5}, {"ccc.com", 9}, {"ddd.com", 1},
	}
	r := FromScores(append([]Scored(nil), items...), TieLexicographic)
	want := []string{"ccc.com", "aaa.com", "bbb.com", "ddd.com"}
	if !reflect.DeepEqual(r.Names(), want) {
		t.Errorf("lexicographic = %v, want %v", r.Names(), want)
	}

	rh := FromScores(append([]Scored(nil), items...), TieHashed)
	if rh.At(1) != "ccc.com" || rh.At(4) != "ddd.com" {
		t.Error("hashed tie-break must preserve score ordering")
	}
}

func TestFromScoresDeterministic(t *testing.T) {
	items := func() []Scored {
		return []Scored{{"x", 1}, {"y", 1}, {"z", 1}, {"w", 1}}
	}
	a := FromScores(items(), TieHashed)
	b := FromScores(items(), TieHashed)
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Error("hashed tie-break not deterministic")
	}
}

func TestBucketOf(t *testing.T) {
	bk := PaperBucketer
	cases := []struct {
		rank int
		want Bucket
	}{
		{1, Bucket1K}, {1000, Bucket1K}, {1001, Bucket10K},
		{10000, Bucket10K}, {10001, Bucket100K}, {100000, Bucket100K},
		{100001, Bucket1M}, {1000000, Bucket1M}, {1000001, BucketBeyond},
		{0, BucketBeyond}, {-5, BucketBeyond},
	}
	for _, c := range cases {
		if got := bk.BucketOf(c.rank); got != c.want {
			t.Errorf("BucketOf(%d) = %v, want %v", c.rank, got, c.want)
		}
	}
}

func TestBucketMonotoneProperty(t *testing.T) {
	err := quick.Check(func(a, b, nRaw uint32) bool {
		bk := ScaledMagnitudes(int(nRaw%2_000_000) + 1)
		ra, rb := int(a%2_000_000)+1, int(b%2_000_000)+1
		if ra > rb {
			ra, rb = rb, ra
		}
		return bk.BucketOf(ra) <= bk.BucketOf(rb)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestScaledMagnitudes(t *testing.T) {
	bk := ScaledMagnitudes(200_000)
	want := [4]int{200, 2_000, 20_000, 200_000}
	if bk.Magnitudes != want {
		t.Errorf("ScaledMagnitudes(200k) = %v, want %v", bk.Magnitudes, want)
	}
	if got := ScaledMagnitudes(5_000_000); got != PaperBucketer {
		t.Errorf("large n should give paper magnitudes, got %v", got)
	}
	// Tiny n must still produce strictly increasing cutoffs.
	tiny := ScaledMagnitudes(3)
	prev := 0
	for _, m := range tiny.Magnitudes {
		if m <= prev {
			t.Fatalf("non-increasing cutoffs: %v", tiny.Magnitudes)
		}
		prev = m
	}
}

func TestBucketerLabels(t *testing.T) {
	if PaperBucketer.Label(0) != "1K" || PaperBucketer.Label(3) != "1M" {
		t.Errorf("labels = %q %q", PaperBucketer.Label(0), PaperBucketer.Label(3))
	}
	if ScaledMagnitudes(5000).Label(0) != "5" {
		t.Errorf("scaled label = %q", ScaledMagnitudes(5000).Label(0))
	}
	if PaperBucketer.Label(9) != "beyond" {
		t.Error("out-of-range label")
	}
}

func TestBucketOfName(t *testing.T) {
	names := make([]string, 1500)
	for i := range names {
		names[i] = "site" + strings.Repeat("x", 1) + itoa(i)
	}
	r := MustNew(names)
	bk := PaperBucketer
	if bk.BucketOfName(r, names[0]) != Bucket1K {
		t.Error("rank 1 bucket")
	}
	if bk.BucketOfName(r, names[1200]) != Bucket10K {
		t.Error("rank 1201 bucket")
	}
	if bk.BucketOfName(r, "missing") != BucketBeyond {
		t.Error("missing bucket")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestBucketString(t *testing.T) {
	seen := map[string]bool{}
	for b := Bucket(0); int(b) < NumBuckets; b++ {
		s := b.String()
		if s == "" || seen[s] {
			t.Errorf("bucket %d string %q empty or duplicate", b, s)
		}
		seen[s] = true
	}
}

func TestNormalizePSL(t *testing.T) {
	// Umbrella-style FQDN list: multiple names per registrable domain,
	// plus a bare public suffix that must be dropped.
	r := MustNew([]string{
		"com",                 // rank 1: bare suffix, dropped
		"www.google.com",      // rank 2 -> google.com
		"api.google.com",      // rank 3 -> google.com (dup)
		"example.co.uk",       // rank 4 -> example.co.uk (already registrable)
		"cdn.shop.example.de", // rank 5 -> example.de
	})
	norm, stats := r.NormalizePSL(psl.Default())
	want := []string{"google.com", "example.co.uk", "example.de"}
	if !reflect.DeepEqual(norm.Names(), want) {
		t.Errorf("normalized = %v, want %v", norm.Names(), want)
	}
	if stats.Entries != 5 || stats.Dropped != 1 || stats.Groups != 3 {
		t.Errorf("stats = %+v", stats)
	}
	// Deviating: "com", "www.google.com", "api.google.com",
	// "cdn.shop.example.de" = 4 of 5.
	if stats.Deviating != 4 {
		t.Errorf("Deviating = %d, want 4", stats.Deviating)
	}
	if pct := stats.DeviationPct(); pct != 80 {
		t.Errorf("DeviationPct = %v, want 80", pct)
	}
}

func TestNormalizePSLAlreadyNormal(t *testing.T) {
	r := MustNew([]string{"google.com", "example.co.uk", "foo.de"})
	norm, stats := r.NormalizePSL(psl.Default())
	if !reflect.DeepEqual(norm.Names(), r.Names()) {
		t.Error("already-normal list changed")
	}
	if stats.Deviating != 0 || stats.DeviationPct() != 0 {
		t.Errorf("stats = %+v, want no deviation", stats)
	}
}

func TestNormalizePSLMinRankKept(t *testing.T) {
	r := MustNew([]string{
		"a.example.com", // rank 1 -> example.com
		"other.net",     // rank 2
		"example.com",   // rank 3 -> example.com, but rank 1 already holds
	})
	norm, _ := r.NormalizePSL(psl.Default())
	if rk, _ := norm.RankOf("example.com"); rk != 1 {
		t.Errorf("example.com rank = %d, want 1 (min rank)", rk)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := MustNew([]string{"google.com", "youtube.com", "example.co.uk"})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Names(), r.Names()) {
		t.Errorf("round trip = %v", got.Names())
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"1,a.com\n3,b.com\n", // gap in sequence
		"0,a.com\n",          // rank 0
		"x,a.com\n",          // non-numeric
		"1,a.com,extra\n",    // too many fields
		"1,\n",               // empty name
	}
	for _, in := range bad {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", in)
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	r, err := ReadCSV(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Error("empty CSV should give empty ranking")
	}
}
