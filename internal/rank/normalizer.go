package rank

import (
	"sync"
	"sync/atomic"

	"toplists/internal/names"
	"toplists/internal/psl"
)

// Normalizer memoizes PSL registrable-domain resolution per interned name:
// the trie walk for each distinct name runs once per study, no matter how
// many (list, day) snapshots mention it. It is safe for concurrent use by
// every evaluation goroutine.
type Normalizer struct {
	tab  *names.Table
	list *psl.List

	// chunks is the ID-indexed apex cache, published as a grow-only slice
	// of fixed chunks so reads are lock-free while the table keeps
	// interning. Entries encode: 0 = not yet computed, 1 = no registrable
	// domain (dropped), otherwise apex ID + 2. Racing recomputes of the
	// same entry store the same value (Intern is idempotent), so a benign
	// duplicate walk is the only cost of contention.
	mu     sync.Mutex
	chunks atomic.Pointer[[]*apexChunk]
}

const (
	apexChunkBits = 12
	apexChunkSize = 1 << apexChunkBits

	apexUnknown = 0
	apexDropped = 1
	apexBias    = 2
)

type apexChunk [apexChunkSize]atomic.Uint32

// NewNormalizer binds a memoizing normalizer to an interner table and a
// public-suffix list.
func NewNormalizer(tab *names.Table, list *psl.List) *Normalizer {
	return &Normalizer{tab: tab, list: list}
}

// PSL returns the bound public-suffix list.
func (n *Normalizer) PSL() *psl.List { return n.list }

// Table returns the bound interner table.
func (n *Normalizer) Table() *names.Table { return n.tab }

// Apex returns the interned registrable domain of id's name, or ok=false
// if the name has none (it is itself a public suffix). The name deviates
// from registrable form exactly when the returned apex differs from id.
func (n *Normalizer) Apex(id names.ID) (names.ID, bool) {
	if enc := n.load(id); enc != apexUnknown {
		if enc == apexDropped {
			return 0, false
		}
		return names.ID(enc - apexBias), true
	}
	etld1, ok := n.list.RegisteredDomain(n.tab.Lookup(id))
	enc := uint32(apexDropped)
	var apexID names.ID
	if ok {
		apexID = n.tab.Intern(etld1)
		enc = uint32(apexID) + apexBias
	}
	n.store(id, enc)
	return apexID, ok
}

func (n *Normalizer) load(id names.ID) uint32 {
	chunks := n.chunks.Load()
	if chunks == nil {
		return apexUnknown
	}
	ci := int(id >> apexChunkBits)
	if ci >= len(*chunks) {
		return apexUnknown
	}
	return (*chunks)[ci][id&(apexChunkSize-1)].Load()
}

func (n *Normalizer) store(id names.ID, enc uint32) {
	ci := int(id >> apexChunkBits)
	chunks := n.chunks.Load()
	if chunks == nil || ci >= len(*chunks) {
		n.mu.Lock()
		chunks = n.chunks.Load()
		if chunks == nil || ci >= len(*chunks) {
			var grown []*apexChunk
			if chunks != nil {
				grown = make([]*apexChunk, ci+1, 2*(ci+1))
				copy(grown, *chunks)
			} else {
				grown = make([]*apexChunk, ci+1)
			}
			for i := range grown {
				if grown[i] == nil {
					grown[i] = new(apexChunk)
				}
			}
			n.chunks.Store(&grown)
			chunks = &grown
		}
		n.mu.Unlock()
	}
	(*chunks)[ci][id&(apexChunkSize-1)].Store(enc)
}
