package rank

import (
	"fmt"

	"toplists/internal/names"
	"toplists/internal/snapshot"
)

// Ranking serialization: a ranking is persisted as its ID sequence in
// rank order. Interner IDs are stable across a checkpoint/restore cycle
// because the interner table itself is restored first, in ID order, so
// the sequence alone reconstructs the ranking exactly.

// EncodeRanking appends r's ID sequence to e. A nil ranking encodes as a
// distinguished marker so optional slots round-trip.
func EncodeRanking(e *snapshot.Encoder, r *Ranking) {
	if r == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Uvarint(uint64(len(r.ids)))
	for _, id := range r.ids {
		e.Uvarint(uint64(id))
	}
}

// DecodeRanking reads one ranking encoded by EncodeRanking, validating
// every ID against the (already restored) interner table and rejecting
// duplicates, so a corrupted payload cannot produce an inconsistent
// ranking.
func DecodeRanking(d *snapshot.Decoder, tab *names.Table) (*Ranking, error) {
	present := d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	n := d.Len(1)
	ids := make([]names.ID, n)
	limit := uint64(tab.Len())
	for i := 0; i < n; i++ {
		v := d.Uvarint()
		if v >= limit && d.Err() == nil {
			return nil, fmt.Errorf("%w: ranking ID %d out of interner range %d", snapshot.ErrCorrupt, v, limit)
		}
		ids[i] = names.ID(v)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	r, err := FromIDs(tab, ids)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return r, nil
}
