package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer is the run-timeline tier of the telemetry stack: where counters
// say how much work happened and histograms say how long it took in
// aggregate, the tracer records *when* — a timeline of spans exported as
// Chrome trace_event JSON, openable in Perfetto or chrome://tracing.
//
// Events are split across two stores with different loss guarantees:
//
//   - Phase-boundary events (explicit Begin/End marks and completed phase
//     spans) are rare — a handful per run — and are never dropped. They
//     live in a mutex-guarded slice.
//
//   - Fine-grained spans (per-shard simulate slices, artifact builds,
//     queue waits) can number in the hundreds of thousands. They go into a
//     fixed-capacity ring claimed by an atomic cursor: writing is
//     lock-free and allocation-free, and once the ring wraps the oldest
//     spans are overwritten. Dropped reports how many were lost.
//
// All methods are nil-safe, so instrumented code pays one branch when no
// tracer is attached — the same contract as every other obs primitive.
//
// The ring is written without per-slot synchronization, so snapshotting
// (Events, WriteJSON) is only well-defined after the traced workload has
// quiesced — the same "snapshot at a barrier" contract as Report.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	bound []Event // phase-boundary events; never dropped

	ring []Event
	next atomic.Uint64 // total ring events ever claimed
}

// Event is one trace entry. TS and Dur are nanoseconds relative to the
// tracer's epoch; Ph is the Chrome trace_event phase ('B' begin, 'E' end,
// 'X' complete span).
type Event struct {
	Name string
	Cat  string
	Ph   byte
	TID  int64
	TS   int64
	Dur  int64
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity: large enough to hold every span of a reference
// month at a few thousand clients, small enough to stay a few megabytes.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer whose span ring holds capacity events
// (DefaultTraceCapacity if capacity <= 0). The epoch — ts 0 in the
// export — is the moment of creation.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		epoch: time.Now(),
		bound: make([]Event, 0, 256),
		ring:  make([]Event, capacity),
	}
}

// Begin records a phase-boundary begin mark. Begin/End pairs must nest
// properly per timeline (Chrome's duration-event rule); concurrent or
// overlapping work should use Span instead. Safe on nil.
func (t *Tracer) Begin(name, cat string) {
	if t == nil {
		return
	}
	ev := Event{Name: name, Cat: cat, Ph: 'B', TS: time.Since(t.epoch).Nanoseconds()}
	t.mu.Lock()
	t.bound = append(t.bound, ev)
	t.mu.Unlock()
}

// End records the phase-boundary end mark matching the most recent Begin
// of the same name. Safe on nil.
func (t *Tracer) End(name, cat string) {
	if t == nil {
		return
	}
	ev := Event{Name: name, Cat: cat, Ph: 'E', TS: time.Since(t.epoch).Nanoseconds()}
	t.mu.Lock()
	t.bound = append(t.bound, ev)
	t.mu.Unlock()
}

// Phase records a completed phase span into the never-dropped store.
// Phase spans are low-frequency (once per study phase, once per
// experiment) and may overlap across goroutines, so they are emitted as
// complete 'X' events rather than B/E pairs. Safe on nil.
func (t *Tracer) Phase(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	ev := Event{Name: name, Cat: "phase", Ph: 'X', TS: start.Sub(t.epoch).Nanoseconds(), Dur: int64(d)}
	t.mu.Lock()
	t.bound = append(t.bound, ev)
	t.mu.Unlock()
}

// Span records a completed fine-grained span into the bounded ring. This
// is the hot path: claiming a slot is one atomic add and writing it
// allocates nothing, so per-shard and per-build instrumentation can call
// it from any goroutine. Oldest spans are overwritten once the ring
// wraps. Safe on nil.
func (t *Tracer) Span(name, cat string, tid int64, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	slot := t.next.Add(1) - 1
	ev := &t.ring[slot%uint64(len(t.ring))]
	ev.Name = name
	ev.Cat = cat
	ev.Ph = 'X'
	ev.TID = tid
	ev.TS = start.Sub(t.epoch).Nanoseconds()
	ev.Dur = int64(d)
}

// Dropped returns how many ring spans have been overwritten (0 on nil).
// Phase-boundary events are never dropped.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n <= uint64(len(t.ring)) {
		return 0
	}
	return int64(n - uint64(len(t.ring)))
}

// Len returns the number of events currently held (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := int(t.next.Load())
	if n > len(t.ring) {
		n = len(t.ring)
	}
	t.mu.Lock()
	n += len(t.bound)
	t.mu.Unlock()
	return n
}

// Events returns a snapshot of all held events sorted by timestamp, with
// negative timestamps clamped to zero and a synthetic 'E' appended for
// any dangling 'B' so the set is always balanced. Call only after the
// traced workload has quiesced.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.bound), len(t.bound)+len(t.ring))
	copy(out, t.bound)
	t.mu.Unlock()
	n := int(t.next.Load())
	if n > len(t.ring) {
		n = len(t.ring)
	}
	out = append(out, t.ring[:n]...)
	var maxTS int64
	for i := range out {
		if out[i].TS < 0 {
			out[i].TS = 0
		}
		if out[i].Dur < 0 {
			out[i].Dur = 0
		}
		if end := out[i].TS + out[i].Dur; end > maxTS {
			maxTS = end
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	// Balance dangling begins: a crash or early export mid-phase must not
	// produce a malformed timeline. Each unmatched B gets a synthetic E at
	// the latest known timestamp.
	type key struct{ name, cat string }
	open := make(map[key]int)
	for _, ev := range out {
		switch ev.Ph {
		case 'B':
			open[key{ev.Name, ev.Cat}]++
		case 'E':
			open[key{ev.Name, ev.Cat}]--
		}
	}
	for k, n := range open {
		for ; n > 0; n-- {
			out = append(out, Event{Name: k.name, Cat: k.cat, Ph: 'E', TS: maxTS})
		}
	}
	return out
}

// WriteJSON writes the held events as a Chrome trace_event JSON object
// ({"traceEvents": [...]}, timestamps in microseconds). The output loads
// directly in Perfetto and chrome://tracing. Safe on nil (writes an empty
// trace). Call only after the traced workload has quiesced.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range t.Events() {
		sep := ","
		if i == 0 {
			sep = ""
		}
		var err error
		if ev.Ph == 'X' {
			_, err = fmt.Fprintf(bw, "%s{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"dur\":%d}\n",
				sep, ev.Name, ev.Cat, ev.TID, ev.TS/1e3, ev.Dur/1e3)
		} else {
			_, err = fmt.Fprintf(bw, "%s{\"name\":%q,\"cat\":%q,\"ph\":%q,\"pid\":1,\"tid\":%d,\"ts\":%d}\n",
				sep, ev.Name, ev.Cat, string(ev.Ph), ev.TID, ev.TS/1e3)
		}
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// SetTracer attaches t to the registry: phase spans recorded through
// Registry.Span / Phase.Start from now on also emit timeline events, and
// components that capture the tracer at setup (engine, artifact store,
// experiment pool) will find it via Tracer. Attach before building the
// study so setup phases are captured. Safe on a nil registry.
func (r *Registry) SetTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.tracer.Store(t)
	r.mu.Lock()
	for _, p := range r.phases {
		p.tracer.Store(t)
	}
	r.mu.Unlock()
}

// Tracer returns the attached tracer, or nil if none. Safe on nil.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer.Load()
}
