package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Error("re-registering a counter returned a different instance")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Max(3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after Max(3) = %d, want 7", got)
	}
	g.Max(11)
	if got := g.Value(); got != 11 {
		t.Errorf("gauge after Max(11) = %d, want 11", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	r.Gauge("g").Set(3)
	r.GaugeFunc("gf", func() int64 { return 1 })
	r.Histogram("h").Observe(time.Second)
	sp := r.Span("p")
	sp.End()
	var m *CacheMetrics
	m.Hit()
	m.Miss()
	m.Wait()
	m.ObserveBuild(time.Second)
	var l *Logger
	l.Infof("dropped")
	rep := r.Snapshot()
	if rep.Schema != Schema {
		t.Errorf("nil snapshot schema = %q", rep.Schema)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Second, -time.Second} {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	rep := r.Snapshot()
	ds, ok := rep.Durations["h"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if ds.MinNS != -int64(time.Second) {
		t.Errorf("min = %d, want %d", ds.MinNS, -int64(time.Second))
	}
	if ds.MaxNS != int64(time.Second) {
		t.Errorf("max = %d, want %d", ds.MaxNS, int64(time.Second))
	}
	if ds.P99NS < int64(time.Second)/2 {
		t.Errorf("p99 = %d, implausibly below the max bucket", ds.P99NS)
	}
	if ds.P50NS <= 0 || ds.P50NS > int64(2*time.Millisecond) {
		t.Errorf("p50 = %d, want within a bucket of 1ms", ds.P50NS)
	}
}

func TestBucketIndexProperties(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5 * time.Hour, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestSpanRecordsPhase(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("phase.x")
	time.Sleep(time.Millisecond)
	sp.End()
	p := r.Phase("phase.x")
	if p.Total() < time.Millisecond/2 {
		t.Errorf("phase total = %v, want >= ~1ms", p.Total())
	}
	rep := r.Snapshot()
	ps, ok := rep.Phases["phase.x"]
	if !ok || ps.Count != 1 {
		t.Fatalf("phase stats = %+v, ok=%v", ps, ok)
	}
}

func TestContextSpan(t *testing.T) {
	r := NewRegistry()
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("FromContext did not round-trip the registry")
	}
	Span(ctx, "ctx.phase").End()
	if r.Snapshot().Phases["ctx.phase"].Count != 1 {
		t.Error("context span did not record")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext on a bare context should be nil")
	}
	Span(context.Background(), "inert").End() // must not panic
}

// TestDeterministicSubset: volatile metrics stay out of the deterministic
// bytes; two registries with the same deterministic activity but different
// volatile activity produce identical Deterministic output.
func TestDeterministicSubset(t *testing.T) {
	build := func(waits int64, dur time.Duration) []byte {
		r := NewRegistry()
		r.Counter("events").Add(100)
		r.Gauge("size").Set(42)
		r.Counter("pool.waits", Volatile).Add(waits)
		r.Gauge("pool.width", Volatile).Set(waits)
		r.Histogram("phase").Observe(dur)
		b, err := r.Snapshot().Deterministic()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build(3, time.Millisecond)
	b := build(9, time.Hour)
	if !bytes.Equal(a, b) {
		t.Errorf("deterministic bytes differ:\n%s\nvs\n%s", a, b)
	}
	var sub struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(a, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Schema != Schema || sub.Counters["events"] != 100 || sub.Gauges["size"] != 42 {
		t.Errorf("deterministic subset content wrong: %+v", sub)
	}
	if _, ok := sub.Counters["pool.waits"]; ok {
		t.Error("volatile counter leaked into the deterministic subset")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(1)
	r.GaugeFunc("live", func() int64 { return n })
	n = 17
	if got := r.Snapshot().Gauges["live"]; got != 17 {
		t.Errorf("gauge func = %d, want 17 (must be read at snapshot time)", got)
	}
}

func TestSummaryAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.events.pageload").Add(12345)
	r.Gauge("names.interned").Set(99)
	r.Counter("cache.waits", Volatile).Add(2)
	r.Histogram("engine.day").Observe(3 * time.Millisecond)
	r.Span("phase.simulate").End()
	rep := r.Snapshot()
	rep.Meta = map[string]string{"seed": "7"}

	var sum strings.Builder
	if err := rep.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run phases", "engine.events.pageload", "12345", "names.interned", "volatile", "engine.day"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Schema != Schema || back.Meta["seed"] != "7" || back.Counters["engine.events.pageload"] != 12345 {
		t.Errorf("round-tripped report wrong: %+v", back)
	}
}

// TestHotPathZeroAllocs is the zero-overhead guard of the obs primitives:
// the operations that sit on simulation and probe hot paths — counter
// increments, gauge stores, histogram observations, and span start/stop on
// a cached phase — must allocate nothing.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist")
	p := r.Phase("hot.phase")
	checks := []struct {
		name string
		fn   func()
	}{
		{"counter.add", func() { c.Add(3) }},
		{"gauge.set", func() { g.Set(9) }},
		{"gauge.max", func() { g.Max(12) }},
		{"hist.observe", func() { h.Observe(5 * time.Microsecond) }},
		{"phase.span", func() { p.Start().End() }},
		{"registry.span", func() { r.Span("hot.phase").End() }},
	}
	for _, ck := range checks {
		if allocs := testing.AllocsPerRun(200, ck.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", ck.name, allocs)
		}
	}
	// Nil variants must be free too: uninstrumented components pay only a
	// branch.
	var nc *Counter
	var nh *Histogram
	if allocs := testing.AllocsPerRun(200, func() { nc.Inc(); nh.Observe(1) }); allocs != 0 {
		t.Errorf("nil primitives allocate: %.1f allocs/op", allocs)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// registration, increments, observations, spans, and snapshots all racing —
// and then checks the totals. Run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.count").Inc()
				r.Counter("shared.volatile", Volatile).Inc()
				r.Gauge("shared.gauge").Max(int64(i))
				r.Histogram("shared.hist").Observe(time.Duration(i) * time.Microsecond)
				sp := r.Span("shared.phase")
				sp.End()
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	rep := r.Snapshot()
	if got := rep.Counters["shared.count"]; got != workers*iters {
		t.Errorf("shared.count = %d, want %d", got, workers*iters)
	}
	if got := rep.Volatile["shared.volatile"]; got != workers*iters {
		t.Errorf("shared.volatile = %d, want %d", got, workers*iters)
	}
	if got := rep.Durations["shared.hist"].Count; got != workers*iters {
		t.Errorf("hist count = %d, want %d", got, workers*iters)
	}
	if got := rep.Phases["shared.phase"].Count; got != workers*iters {
		t.Errorf("phase count = %d, want %d", got, workers*iters)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Errorf("e1")
	l.Infof("i1")
	l.Debugf("d1")
	got := buf.String()
	if !strings.Contains(got, "e1") || !strings.Contains(got, "i1") {
		t.Errorf("error/info dropped at LevelInfo: %q", got)
	}
	if strings.Contains(got, "d1") {
		t.Errorf("debug leaked at LevelInfo: %q", got)
	}
	if !l.Enabled(LevelInfo) || l.Enabled(LevelDebug) {
		t.Error("Enabled thresholds wrong")
	}
	buf.Reset()
	q := NewLogger(&buf, LevelError)
	q.Infof("hidden")
	q.Errorf("shown")
	if got := buf.String(); got != "shown\n" {
		t.Errorf("quiet logger wrote %q, want only the error", got)
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe.attempts").Add(3)
	d, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "probe.attempts") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars: code %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}
