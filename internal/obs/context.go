package obs

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying the registry, so layers that receive
// only a context (experiment runners, probe paths) can open spans without
// new plumbing.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the registry carried by ctx, or nil.
func FromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}

// Span opens a span on the named phase of the context's registry. With no
// registry in ctx the returned span is inert.
func Span(ctx context.Context, name string) SpanTimer {
	return FromContext(ctx).Span(name)
}
