package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level is a Logger verbosity threshold.
type Level int8

const (
	// LevelError keeps only failures (-quiet).
	LevelError Level = iota
	// LevelInfo is the default: progress and diagnostics.
	LevelInfo
	// LevelDebug adds per-step detail (-v).
	LevelDebug
)

// Logger is the diagnostic channel of the binaries: everything that is not
// a rendered paper artifact goes through a Logger bound to stderr, so
// stdout stays a byte-exact transcript no matter how runs interleave. Each
// message is written with a single Write under a mutex, so concurrent
// loggers never interleave partial lines. A nil *Logger discards
// everything.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
}

// NewLogger returns a logger writing messages at or below level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Errorf logs at LevelError. Safe on nil.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Infof logs at LevelInfo. Safe on nil.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs at LevelDebug. Safe on nil.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Enabled reports whether messages at level would be written. Safe on nil.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level <= l.level
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if len(msg) == 0 || msg[len(msg)-1] != '\n' {
		msg += "\n"
	}
	l.mu.Lock()
	io.WriteString(l.w, msg) //nolint:errcheck // diagnostics are best-effort
	l.mu.Unlock()
}
