package obs

import (
	"testing"
	"time"
)

// FuzzBucketIndex pins the histogram bucketer's safety properties over the
// whole int64 duration range, negatives and extremes included: the index
// always lands in [0, NumBuckets), non-positive durations collapse to
// bucket 0, the chosen bucket's bounds actually contain the value, and the
// mapping is monotone (a longer duration never maps to a smaller bucket).
func FuzzBucketIndex(f *testing.F) {
	for _, seed := range []int64{-1 << 62, -1, 0, 1, 2, 3, 999, 1 << 20, 1<<63 - 1} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, ns int64) {
		d := time.Duration(ns)
		i := bucketIndex(d)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d, out of [0, %d)", ns, i, NumBuckets)
		}
		if ns <= 0 && i != 0 {
			t.Fatalf("bucketIndex(%d) = %d, want 0 for non-positive", ns, i)
		}
		if ns > 0 {
			if ns > BucketUpperBound(i) {
				t.Fatalf("bucketIndex(%d) = %d but upper bound is %d", ns, i, BucketUpperBound(i))
			}
			if i > 1 && ns <= BucketUpperBound(i-1) {
				t.Fatalf("bucketIndex(%d) = %d but fits bucket %d (bound %d)", ns, i, i-1, BucketUpperBound(i-1))
			}
			if ns < 1<<62 && bucketIndex(time.Duration(2*ns)) < i {
				t.Fatalf("bucketIndex not monotone at %d", ns)
			}
		}
		// Observing must never panic, whatever the value.
		var h Histogram
		h.Observe(d)
		if h.Count() != 1 {
			t.Fatalf("observe(%d) lost the observation", ns)
		}
	})
}
