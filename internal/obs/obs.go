// Package obs is the study's self-measurement layer: a dependency-free
// registry of counters, gauges, and fixed-bucket duration histograms, plus
// span-style phase timers, a leveled diagnostic logger, and the run-report
// sinks (human summary, versioned JSON, live /metrics endpoint).
//
// The package is built around two invariants the rest of the system relies
// on:
//
//  1. Instrumentation can never perturb outputs. Metrics read the wall
//     clock, but nothing downstream of a metric ever does: no simulation or
//     evaluation decision branches on a counter, gauge, or duration, so
//     goldens stay byte-identical with telemetry enabled.
//
//  2. Count-valued metrics are deterministic. Every counter and
//     non-volatile gauge measures how much work was done, not when or by
//     whom — event totals, cache hits and misses, fault injections, probe
//     outcomes — so their values are identical across worker counts and
//     repeated runs of the same seed. Timing-dependent observations
//     (durations, queue waits, singleflight waits, pool widths) are
//     registered Volatile and excluded from the report's deterministic
//     subset, which the obscheck oracle pins.
//
// Hot-path cost is held to zero allocations: Counter.Add, Gauge.Set,
// Histogram.Observe, and Phase span start/stop allocate nothing (guarded by
// TestHotPathZeroAllocs), and every primitive is nil-safe so uninstrumented
// components pay only a predictable nil check.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Option modifies how a metric is registered.
type Option uint8

const (
	// Volatile marks a metric whose value legitimately varies across worker
	// counts or runs of the same seed (durations, pool widths, singleflight
	// waits). Volatile metrics are excluded from Report.Deterministic.
	Volatile Option = 1 << iota
)

func volatile(opts []Option) bool {
	for _, o := range opts {
		if o&Volatile != 0 {
			return true
		}
	}
	return false
}

// Counter is a monotonically increasing atomic count. The zero value is
// usable; a nil *Counter is a no-op, so components can hold unregistered
// metric fields at a predictable branch's cost.
type Counter struct {
	name     string
	volatile bool
	v        atomic.Int64
}

// Add adds n to the counter. Safe on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds 1 to the counter. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic point-in-time value. A nil *Gauge is a no-op.
type Gauge struct {
	name     string
	volatile bool
	v        atomic.Int64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v is larger. Safe on nil.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds a run's metrics. All methods are safe for concurrent use,
// and every accessor is get-or-create and idempotent: asking twice for the
// same name returns the same metric. A nil *Registry is fully inert — every
// accessor returns nil, which every primitive tolerates — so instrumented
// code needs no "is telemetry on" branches.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]gaugeFn
	hists    map[string]*Histogram
	phases   map[string]*Phase
	tracer   atomic.Pointer[Tracer]
}

type gaugeFn struct {
	fn       func() int64
	volatile bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]gaugeFn),
		hists:    make(map[string]*Histogram),
		phases:   make(map[string]*Phase),
	}
}

// Counter returns the named counter, registering it on first use. Safe on
// nil (returns nil).
func (r *Registry) Counter(name string, opts ...Option) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, volatile: volatile(opts)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Safe on nil.
func (r *Registry) Gauge(name string, opts ...Option) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, volatile: volatile(opts)}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time (the interner-size pattern: the source of truth already exists, so
// mirroring it into an atomic would just risk staleness). Re-registering a
// name replaces its function. Safe on nil.
func (r *Registry) GaugeFunc(name string, fn func() int64, opts ...Option) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = gaugeFn{fn: fn, volatile: volatile(opts)}
	r.mu.Unlock()
}

// Histogram returns the named duration histogram, registering it on first
// use. Histograms record wall-clock observations and are always volatile.
// Safe on nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Phase returns the named phase timer, registering it on first use. Safe
// on nil.
func (r *Registry) Phase(name string) *Phase {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.phases[name]
	if !ok {
		p = &Phase{name: name}
		p.tracer.Store(r.tracer.Load())
		r.phases[name] = p
	}
	return p
}

// sortedKeys returns m's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
