package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// decodeTrace parses a WriteJSON export, failing the test on malformed
// JSON. Returned events carry Chrome field names (ts/dur in microseconds).
type jsonTraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	PID  int64  `json:"pid"`
	TID  int64  `json:"tid"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
}

func decodeTrace(t *testing.T, b []byte) []jsonTraceEvent {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []jsonTraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v\n%s", err, b)
	}
	return doc.TraceEvents
}

// TestTraceExportValidity pins the export contract: the JSON is
// well-formed, timestamps are monotonic and non-negative, durations are
// non-negative, and every B has a matching E.
func TestTraceExportValidity(t *testing.T) {
	tr := NewTracer(128)
	tr.Begin("run", "cmd")
	base := time.Now()
	for i := 0; i < 300; i++ { // overfill the ring: oldest spans drop
		tr.Span("engine.shard", "engine", int64(i%4), base, time.Duration(i)*time.Microsecond)
	}
	tr.Phase("phase.simulate", base, 5*time.Millisecond)
	tr.End("run", "cmd")
	tr.Begin("dangling", "cmd") // must be balanced by a synthetic E

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	evs := decodeTrace(t, buf.Bytes())
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	open := map[string]int{}
	lastTS := int64(-1)
	for i, ev := range evs {
		if ev.TS < 0 {
			t.Errorf("event %d (%s): negative ts %d", i, ev.Name, ev.TS)
		}
		if ev.Dur < 0 {
			t.Errorf("event %d (%s): negative dur %d", i, ev.Name, ev.Dur)
		}
		// Synthetic balancing E events are appended after the sort; only
		// require monotonicity over the sorted prefix.
		if ev.Ph != "E" && ev.TS < lastTS {
			t.Errorf("event %d (%s): ts %d < previous %d — not monotonic", i, ev.Name, ev.TS, lastTS)
		}
		if ev.Ph != "E" {
			lastTS = ev.TS
		}
		switch ev.Ph {
		case "B":
			open[ev.Name+"\x00"+ev.Cat]++
		case "E":
			open[ev.Name+"\x00"+ev.Cat]--
		case "X":
		default:
			t.Errorf("event %d: unexpected ph %q", i, ev.Ph)
		}
	}
	for k, n := range open {
		if n != 0 {
			t.Errorf("unbalanced B/E for %q: %d", k, n)
		}
	}
	if tr.Dropped() != 300-128 {
		t.Errorf("Dropped = %d, want %d", tr.Dropped(), 300-128)
	}
}

// TestTraceRingNeverDropsPhaseBoundaries floods the bounded ring far past
// capacity and checks that every phase-boundary event — B/E marks and
// completed phase spans — still exports.
func TestTraceRingNeverDropsPhaseBoundaries(t *testing.T) {
	tr := NewTracer(64)
	base := time.Now()
	const phases = 40 // well above what a 64-slot ring could retain alongside the flood
	for i := 0; i < phases; i++ {
		tr.Begin("phase.mark", "phase")
		for j := 0; j < 100; j++ {
			tr.Span("flood", "test", 0, base, time.Microsecond)
		}
		tr.Phase("phase.work", base, time.Millisecond)
		tr.End("phase.mark", "phase")
	}
	var b, e, x int
	for _, ev := range tr.Events() {
		switch {
		case ev.Ph == 'B' && ev.Name == "phase.mark":
			b++
		case ev.Ph == 'E' && ev.Name == "phase.mark":
			e++
		case ev.Ph == 'X' && ev.Name == "phase.work":
			x++
		}
	}
	if b != phases || e != phases || x != phases {
		t.Fatalf("phase-boundary events dropped: B=%d E=%d X=%d, want %d each", b, e, x, phases)
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected the flood to overflow the ring")
	}
}

// TestTraceConcurrentSpans hammers the ring from many goroutines (the
// -race proof of the lock-free claim path), then checks the export still
// holds exactly capacity events.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTracer(256)
	base := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Span("span", "test", int64(w), base, time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 256 {
		t.Fatalf("Events() = %d, want full ring 256", got)
	}
	if tr.Dropped() != 8*1000-256 {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), 8*1000-256)
	}
}

// TestTracerNilSafe: every method must be a no-op on a nil tracer, and a
// nil export must still be valid JSON.
func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Begin("a", "b")
	tr.End("a", "b")
	tr.Phase("p", time.Now(), time.Second)
	tr.Span("s", "c", 0, time.Now(), time.Second)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer holds state")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if evs := decodeTrace(t, buf.Bytes()); len(evs) != 0 {
		t.Fatalf("nil tracer exported %d events", len(evs))
	}
}

// TestTraceSpanZeroAlloc pins the event hot path: recording a ring span
// allocates nothing whether a tracer is attached or not, and a phase span
// through a registry without a tracer stays free.
func TestTraceSpanZeroAlloc(t *testing.T) {
	tr := NewTracer(1024)
	base := time.Now()
	if allocs := testing.AllocsPerRun(200, func() {
		tr.Span("hot", "engine", 3, base, time.Microsecond)
	}); allocs != 0 {
		t.Errorf("attached Tracer.Span: %.1f allocs/op, want 0", allocs)
	}
	var nt *Tracer
	if allocs := testing.AllocsPerRun(200, func() {
		nt.Span("hot", "engine", 3, base, time.Microsecond)
	}); allocs != 0 {
		t.Errorf("nil Tracer.Span: %.1f allocs/op, want 0", allocs)
	}
	// Unattached registry: phase span start/stop must stay allocation-free
	// (the pre-tracer contract — one extra nil-check branch only).
	r := NewRegistry()
	p := r.Phase("hot.phase")
	if allocs := testing.AllocsPerRun(200, func() { p.Start().End() }); allocs != 0 {
		t.Errorf("unattached phase span: %.1f allocs/op, want 0", allocs)
	}
}

// TestRegistrySetTracer: phases created before and after attachment both
// emit timeline events, and detaching is not required for snapshots.
func TestRegistrySetTracer(t *testing.T) {
	r := NewRegistry()
	before := r.Phase("before")
	tr := NewTracer(16)
	r.SetTracer(tr)
	if r.Tracer() != tr {
		t.Fatal("Tracer() did not return the attached tracer")
	}
	after := r.Phase("after")
	before.Start().End()
	after.Start().End()
	var names []string
	for _, ev := range tr.Events() {
		names = append(names, ev.Name)
	}
	if len(names) != 2 {
		t.Fatalf("want 2 phase events, got %v", names)
	}
	// Nil registry: attachment is inert.
	var nr *Registry
	nr.SetTracer(tr)
	if nr.Tracer() != nil {
		t.Fatal("nil registry returned a tracer")
	}
}
