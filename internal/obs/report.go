package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Schema identifies the run-report JSON layout. Bump the version when a
// field changes meaning or moves section; adding a new metric name is not a
// schema change.
//
// Layout (all sections use lexically sorted metric names):
//
//	schema    string             this constant
//	meta      map[string]string  run parameters (seed, sizes, flags); free-form
//	counters  map[string]int64   deterministic counts: identical for a given
//	                             (seed, config) at every worker count
//	gauges    map[string]int64   deterministic point-in-time values
//	volatile  map[string]int64   counts/values that may vary across worker
//	                             counts or runs (pool widths, wait events)
//	durations map[string]DurationStats  wall-clock histograms
//	phases    map[string]PhaseStats     span timings per run phase
//
// The deterministic subset — schema, counters, gauges — is what
// Report.Deterministic marshals and what `make obscheck` pins byte-for-byte
// across worker counts.
const Schema = "toplists-run-report/v1"

// Report is one registry snapshot, shaped for JSON (see Schema).
type Report struct {
	Schema    string                   `json:"schema"`
	Meta      map[string]string        `json:"meta,omitempty"`
	Counters  map[string]int64         `json:"counters"`
	Gauges    map[string]int64         `json:"gauges"`
	Volatile  map[string]int64         `json:"volatile,omitempty"`
	Durations map[string]DurationStats `json:"durations,omitempty"`
	Phases    map[string]PhaseStats    `json:"phases,omitempty"`
}

// DurationStats summarizes one histogram. Quantiles are bucket upper
// bounds (log2 buckets), so they are order-of-magnitude accurate.
type DurationStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	P50NS   int64 `json:"p50_ns"`
	P90NS   int64 `json:"p90_ns"`
	P99NS   int64 `json:"p99_ns"`
}

// PhaseStats summarizes one phase's spans. P50/P99 are log2 bucket upper
// bounds, like DurationStats.
type PhaseStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
	P50NS   int64 `json:"p50_ns"`
	P99NS   int64 `json:"p99_ns"`
}

// Snapshot captures the registry's current state. Safe on nil (returns an
// empty, schema-stamped report) and safe to call while metrics are still
// being written — each value is read atomically, though cross-metric
// consistency is only guaranteed once the run has quiesced.
func (r *Registry) Snapshot() *Report {
	rep := &Report{
		Schema:    Schema,
		Counters:  map[string]int64{},
		Gauges:    map[string]int64{},
		Volatile:  map[string]int64{},
		Durations: map[string]DurationStats{},
		Phases:    map[string]PhaseStats{},
	}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]gaugeFn, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	phases := make(map[string]*Phase, len(r.phases))
	for k, v := range r.phases {
		phases[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		if c.volatile {
			rep.Volatile[name] = c.Value()
		} else {
			rep.Counters[name] = c.Value()
		}
	}
	for name, g := range gauges {
		if g.volatile {
			rep.Volatile[name] = g.Value()
		} else {
			rep.Gauges[name] = g.Value()
		}
	}
	for name, gf := range gaugeFns {
		if gf.volatile {
			rep.Volatile[name] = gf.fn()
		} else {
			rep.Gauges[name] = gf.fn()
		}
	}
	for name, h := range hists {
		if h.Count() == 0 {
			continue
		}
		rep.Durations[name] = DurationStats{
			Count:   h.count.Load(),
			TotalNS: h.sum.Load(),
			MinNS:   h.min.Load(),
			MaxNS:   h.max.Load(),
			P50NS:   h.quantile(0.50),
			P90NS:   h.quantile(0.90),
			P99NS:   h.quantile(0.99),
		}
	}
	for name, p := range phases {
		if p.count.Load() == 0 {
			continue
		}
		rep.Phases[name] = PhaseStats{
			Count:   p.count.Load(),
			TotalNS: p.totalNS.Load(),
			MaxNS:   p.maxNS.Load(),
			P50NS:   p.quantile(0.50),
			P99NS:   p.quantile(0.99),
		}
	}
	return rep
}

// Deterministic marshals the report's deterministic subset — schema,
// counters, and non-volatile gauges — as indented JSON. encoding/json
// writes map keys in sorted order, so for a fixed (seed, config) these
// bytes are identical at every worker count; the obscheck oracle compares
// them directly.
func (rep *Report) Deterministic() ([]byte, error) {
	sub := struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}{rep.Schema, rep.Counters, rep.Gauges}
	return json.MarshalIndent(sub, "", "  ")
}

// ResumeStable marshals the subset of the deterministic report that is
// additionally invariant under checkpoint/restore: a study resumed at day
// k and advanced to the end must produce these bytes identically to a
// straight run. Two deterministic families are excluded by name prefix:
// "artifacts." (cache hit/miss tallies depend on which computations the
// lifecycle path already performed — a resumed run re-normalizes window
// inputs a straight run had warm) and "sketch." (memory peaks depend on
// pool and shard capacity history that checkpoints deliberately do not
// carry). Both remain pure functions of (seed, config, lifecycle path)
// and stay in Deterministic.
func (rep *Report) ResumeStable() ([]byte, error) {
	stable := func(m map[string]int64) map[string]int64 {
		out := make(map[string]int64, len(m))
		for k, v := range m {
			if strings.HasPrefix(k, "artifacts.") || strings.HasPrefix(k, "sketch.") {
				continue
			}
			out[k] = v
		}
		return out
	}
	sub := struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}{rep.Schema, stable(rep.Counters), stable(rep.Gauges)}
	return json.MarshalIndent(sub, "", "  ")
}

// WriteJSON writes the full report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteSummary renders the report as an aligned human-readable table: run
// phases first (the "where did the wall time go" view), then durations,
// then deterministic counts and gauges, then volatile values. Intended for
// stderr at run end; never stdout, which stays a pure paper transcript.
func (rep *Report) WriteSummary(w io.Writer) error {
	if len(rep.Phases) > 0 {
		fmt.Fprintf(w, "--- run phases ---\n")
		var total int64
		for _, p := range rep.Phases {
			total += p.TotalNS
		}
		for _, name := range sortedKeys(rep.Phases) {
			p := rep.Phases[name]
			fmt.Fprintf(w, "%-34s %10s  x%-5d p50 %-9s p99 %-9s max %-10s %4.1f%%\n",
				name, fmtNS(p.TotalNS), p.Count, fmtNS(p.P50NS), fmtNS(p.P99NS), fmtNS(p.MaxNS),
				100*float64(p.TotalNS)/float64(max64(total, 1)))
		}
	}
	if len(rep.Durations) > 0 {
		fmt.Fprintf(w, "--- durations ---\n")
		for _, name := range sortedKeys(rep.Durations) {
			d := rep.Durations[name]
			fmt.Fprintf(w, "%-34s %10s  x%-7d p50 %-9s p99 %-9s max %s\n",
				name, fmtNS(d.TotalNS), d.Count, fmtNS(d.P50NS), fmtNS(d.P99NS), fmtNS(d.MaxNS))
		}
	}
	if len(rep.Counters) > 0 || len(rep.Gauges) > 0 {
		fmt.Fprintf(w, "--- counters (deterministic) ---\n")
		for _, name := range sortedKeys(rep.Counters) {
			fmt.Fprintf(w, "%-42s %12d\n", name, rep.Counters[name])
		}
		for _, name := range sortedKeys(rep.Gauges) {
			fmt.Fprintf(w, "%-42s %12d\n", name, rep.Gauges[name])
		}
	}
	if len(rep.Volatile) > 0 {
		fmt.Fprintf(w, "--- volatile ---\n")
		for _, name := range sortedKeys(rep.Volatile) {
			fmt.Fprintf(w, "%-42s %12d\n", name, rep.Volatile[name])
		}
	}
	return nil
}

// fmtNS renders nanoseconds with time.Duration's formatting, rounded to
// keep the table narrow.
func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		d = d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		d = d.Round(10 * time.Microsecond)
	default:
		d = d.Round(10 * time.Nanosecond)
	}
	return d.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
