package obs

import (
	"testing"
	"time"
)

// The obs primitive costs, recorded in BENCH_obs.json: these are the
// per-event prices the instrumented hot paths pay.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	p := NewRegistry().Phase("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Start().End()
	}
}

func BenchmarkRegistrySpan(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("bench").End()
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.Counter("c" + string(rune('a'+i%26)) + string(rune('a'+i/26))).Add(int64(i))
		r.Histogram("h" + string(rune('a'+i%26)) + string(rune('a'+i/26))).Observe(time.Duration(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
