package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every duration histogram: bucket
// i holds observations whose nanosecond value has bit length i, i.e.
// durations in (2^(i-1), 2^i - 1] ns, with bucket 0 taking everything
// non-positive. 64 buckets cover the full int64 nanosecond range, so no
// observation is ever out of range and Observe never branches on bounds.
const NumBuckets = 64

// bucketIndex maps a duration to its histogram bucket. Non-positive
// durations (clock adjustments, zero-cost spans) land in bucket 0 rather
// than corrupting an index — the property FuzzBucketIndex pins.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// BucketUpperBound returns the inclusive upper bound (in nanoseconds) of
// bucket i, and a very large sentinel for the last bucket.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(uint64(1)<<uint(i) - 1)
}

// Histogram is a fixed-bucket log2 duration histogram. Observe is lock-free
// and allocation-free; all fields are atomics so concurrent shards can
// hammer one histogram without coordination. Durations are wall-clock
// observations, so histograms are always volatile: they appear in the run
// report's duration section, never in its deterministic subset.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid when count > 0
	max     atomic.Int64 // nanoseconds
	buckets [NumBuckets]atomic.Int64
}

// Observe records one duration. Safe on nil.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(ns)
	if h.count.Add(1) == 1 {
		// First observation seeds min; a racing second observer that loses
		// this store is reconciled by the CAS loops below.
		h.min.Store(ns)
	}
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// quantile returns the approximate q-quantile (0..1) as the upper bound of
// the bucket where the cumulative count crosses q.
func (h *Histogram) quantile(q float64) int64 {
	return bucketQuantile(h.count.Load(), &h.buckets, q)
}

// bucketQuantile is the shared quantile kernel for Histogram and Phase:
// the upper bound of the log2 bucket where the cumulative count crosses q.
func bucketQuantile(total int64, buckets *[NumBuckets]atomic.Int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += buckets[i].Load()
		if cum > target {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(NumBuckets - 1)
}

// Phase accumulates span-style timings for one named phase of the run:
// how many times it ran, total and maximum wall time, plus the same log2
// buckets as Histogram so the summary can report phase p50/p99. Record and
// the Start/End pair are allocation-free. If the owning registry has a
// Tracer attached, completed spans also land on the run timeline.
type Phase struct {
	name    string
	count   atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
	buckets [NumBuckets]atomic.Int64
	tracer  atomic.Pointer[Tracer]
}

// Record adds one completed timing. Safe on nil.
func (p *Phase) Record(d time.Duration) {
	if p == nil {
		return
	}
	ns := int64(d)
	p.count.Add(1)
	p.totalNS.Add(ns)
	p.buckets[bucketIndex(d)].Add(1)
	for {
		cur := p.maxNS.Load()
		if ns <= cur || p.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns the approximate q-quantile of recorded spans.
func (p *Phase) quantile(q float64) int64 {
	return bucketQuantile(p.count.Load(), &p.buckets, q)
}

// Total returns the accumulated wall time (0 on nil).
func (p *Phase) Total() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.totalNS.Load())
}

// Start opens a span on the phase. Safe on nil.
func (p *Phase) Start() SpanTimer {
	return SpanTimer{p: p, start: time.Now()}
}

// SpanTimer is an open span: a phase plus its start time, held by value so
// starting and ending a span allocates nothing.
type SpanTimer struct {
	p     *Phase
	start time.Time
}

// End closes the span, recording its duration into the phase — and onto
// the run timeline when a tracer is attached (one nil-check branch
// otherwise). Safe on the zero value.
func (s SpanTimer) End() {
	if s.p == nil {
		return
	}
	d := time.Since(s.start)
	s.p.Record(d)
	if t := s.p.tracer.Load(); t != nil {
		t.Phase(s.p.name, s.start, d)
	}
}

// Span opens a span on the named phase of r. Safe on a nil registry (the
// returned span is inert).
func (r *Registry) Span(name string) SpanTimer {
	return r.Phase(name).Start()
}
