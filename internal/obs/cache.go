package obs

import "time"

// CacheMetrics instruments one memoized artifact family (normalized
// snapshots, combo rankings, telemetry cells, ...). The hit/miss split is
// defined so both counts stay deterministic under concurrency:
//
//   - Miss: this request created the family's entry for its key. Exactly
//     one requester per distinct key ever counts a miss, no matter how many
//     race for it, so misses == distinct keys built.
//   - Hit: the entry already existed, whether or not its build had
//     finished. Hits == requests - misses, and the request sequence is a
//     pure function of the experiment set.
//   - Wait: the subset of hits that arrived while the build was still in
//     flight (singleflight waiters). Which requester wins a race is
//     scheduling, so waits are registered Volatile.
//
// A nil *CacheMetrics is a no-op.
type CacheMetrics struct {
	Hits   *Counter
	Misses *Counter
	Waits  *Counter
	Build  *Histogram

	// prefix and tracer put completed builds on the run timeline (one
	// "<prefix>.build" span per distinct key) when a tracer was attached
	// to the registry at registration time.
	prefix string
	tracer *Tracer
}

// NewCacheMetrics registers the family's metrics under prefix (e.g.
// "artifacts.norm" yields artifacts.norm.hits / .misses / .waits /
// .build). Safe on a nil registry (returns a usable no-op).
func NewCacheMetrics(r *Registry, prefix string) *CacheMetrics {
	return &CacheMetrics{
		Hits:   r.Counter(prefix + ".hits"),
		Misses: r.Counter(prefix + ".misses"),
		Waits:  r.Counter(prefix+".waits", Volatile),
		Build:  r.Histogram(prefix + ".build"),
		prefix: prefix,
		tracer: r.Tracer(),
	}
}

// Hit records a request that found an existing entry. Safe on nil.
func (m *CacheMetrics) Hit() {
	if m != nil {
		m.Hits.Inc()
	}
}

// Miss records the request that created an entry. Safe on nil.
func (m *CacheMetrics) Miss() {
	if m != nil {
		m.Misses.Inc()
	}
}

// Wait records a hit that had to wait for an in-flight build. Safe on nil.
func (m *CacheMetrics) Wait() {
	if m != nil {
		m.Waits.Inc()
	}
}

// ObserveBuild records one entry's build time — and, when a tracer is
// attached, a "<prefix>.build" span on the run timeline starting at
// start. Safe on nil.
func (m *CacheMetrics) ObserveBuild(d time.Duration) {
	if m != nil {
		m.Build.Observe(d)
	}
}

// ObserveBuildSpan is ObserveBuild plus the timeline span; callers that
// know the build's start time use this so the trace shows when the build
// ran, not just how long it took. Safe on nil.
func (m *CacheMetrics) ObserveBuildSpan(start time.Time, d time.Duration) {
	if m == nil {
		return
	}
	m.Build.Observe(d)
	m.tracer.Span(m.prefix+".build", "artifacts", 0, start, d)
}
