package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is a live telemetry endpoint: GET /metrics returns the
// registry's full JSON report, /debug/vars the process expvars, and
// /debug/pprof/* the standard profiling handlers. It exists for poking at
// a long run from another terminal; nothing in the pipeline reads from it.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// ServeDebug binds addr (e.g. "localhost:6060"; :0 picks a free port) and
// serves r's telemetry in the background until Close.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w) //nolint:errcheck // client went away
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{srv: &http.Server{Handler: mux}, lis: lis}
	go d.srv.Serve(lis) //nolint:errcheck // returns on Close
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
