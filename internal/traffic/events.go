// Package traffic simulates the browsing population: who visits which sites,
// from which network vantage, on which platform and browser, day by day over
// the measurement month (February 2022 in the paper).
//
// The engine is the single source of events. Every observer in the study —
// the Cloudflare log pipeline, the Chrome telemetry collector, the Alexa
// extension panel, and the DNS resolvers behind Umbrella and Secrank — is a
// Sink that sees only the slice of events its real-world counterpart could
// see. All list biases emerge from those restricted vantages.
package traffic

import "toplists/internal/world"

// Browser identifies the client's web browser. The first five values are
// the "top 5 most popular browsers" of the paper's filter (1.4); Other
// stands for the long tail of niche browsers.
type Browser uint8

// The simulated browsers.
const (
	Chrome Browser = iota
	Safari
	Firefox
	Edge
	Samsung
	Other
	NumBrowsers = 6
)

// TopFive reports whether the browser is one of the five most popular.
func (b Browser) TopFive() bool { return b < Other }

// String implements fmt.Stringer.
func (b Browser) String() string {
	return [...]string{"Chrome", "Safari", "Firefox", "Edge", "Samsung", "Other"}[b]
}

// PageLoad is one user-initiated page load and its server-side footprint.
type PageLoad struct {
	Day     int
	Weekend bool
	// Second is the time of day, used for DNS cache expiry.
	Second int32

	Site   int32
	SubIdx uint8 // index into the site's Subdomains

	Client *Client
	// IP is the client's egress IP for this page load (enterprise clients
	// egress via their office on workdays and from home otherwise).
	IP uint32
	// AtWork reports whether the load went through the corporate network
	// (and therefore through the Umbrella resolver).
	AtWork bool

	// Private marks a private-browsing-mode load: invisible to
	// extension-based panels and to Chrome history-based telemetry.
	Private bool

	// Root marks a load of the root page (GET /).
	Root bool
	// Subresources is the number of additional HTTP requests the page
	// issued (images, scripts, frames).
	Subresources int
	// HTMLRequests is how many requests carried a text/html response
	// (the main document plus frames).
	HTMLRequests int
	// RefererRequests is how many requests carried a non-empty Referer.
	RefererRequests int
	// Non200 is how many requests returned a non-200 status.
	Non200 int
	// TLSConns is the number of TLS handshakes (0 for plain-HTTP sites).
	TLSConns int

	// Completed reports whether the page reached First Contentful Paint,
	// the event CrUX counts.
	Completed bool
	// DwellSec is the time spent on the page afterwards.
	DwellSec float64
}

// Requests returns the total number of HTTP requests for the load.
func (pl *PageLoad) Requests() int { return 1 + pl.Subresources }

// BotBatch summarizes one day of non-browser (crawler, spam-tool, API)
// traffic against one site. Server-side vantage points see it; client-side
// vantage points do not.
type BotBatch struct {
	Day  int
	Site int32

	Requests     int
	RootRequests int
	HTMLRequests int
	// RefererRequests counts bot requests carrying a Referer (few do).
	RefererRequests int
	Non200          int
	TLSConns        int
	// IPs are the distinct bot source addresses used.
	IPs []uint32
}

// DNSQuery is one query arriving at a recursive resolver (i.e. after the
// client-side cache). Exactly one of Site/Infra is >= 0.
type DNSQuery struct {
	Day    int
	Client *Client
	IP     uint32
	// AtWork selects the resolver: corporate queries go through Umbrella.
	AtWork bool

	Site   int32 // site ID, or -1
	SubIdx uint8 // hostname index when Site >= 0
	Infra  int32 // infrastructure-name index, or -1
}

// Sink receives the slice of simulation events an observer can see. The
// engine calls BeginDay/EndDay around each simulated day; events arrive in
// deterministic order.
type Sink interface {
	BeginDay(day int, weekend bool)
	OnPageLoad(pl *PageLoad)
	OnBotBatch(bb *BotBatch)
	OnDNSQuery(q *DNSQuery)
	EndDay(day int)
}

// ShardState is the bounded per-shard accumulation state of a ShardedSink:
// a fixed-size summary (sketches, small maps) that one logical traffic
// shard's events fold into. The engine owns the lifecycle — states are
// created once per (sink, logical shard), updated from exactly one worker
// goroutine at a time, merged at the day barrier, and Reset for reuse the
// next day. Implementations must not touch shared sink state from
// OnPageLoad/OnDNSQuery.
type ShardState interface {
	OnPageLoad(pl *PageLoad)
	OnDNSQuery(q *DNSQuery)
	// Reset returns the state to empty for the next day, keeping capacity.
	Reset()
}

// ShardedSink is a Sink that can aggregate through bounded per-shard
// summaries instead of a replayed event stream. In sketch mode (see
// Config.Sketch) the engine feeds each logical shard's page loads and DNS
// queries into a ShardState and, at the day barrier, hands the states back
// via MergeShard in ascending logical-shard order — a canonical merge
// order, so sink contents are byte-identical at every worker count. Bot
// batches and Begin/EndDay still arrive through the plain Sink interface,
// on the engine goroutine.
type ShardedSink interface {
	Sink
	// NewShardState returns a fresh, empty per-shard accumulator.
	NewShardState() ShardState
	// MergeShard folds a shard's summary into the sink's day state. Called
	// serially, in ascending logical-shard order, between the day's barrier
	// and EndDay. The state remains owned by the engine (it is Reset and
	// reused); implementations must copy or merge, not retain.
	MergeShard(st ShardState)
}

// BaseSink is a no-op Sink for embedding; observers override only the
// events their vantage point can see.
type BaseSink struct{}

// BeginDay implements Sink.
func (BaseSink) BeginDay(int, bool) {}

// OnPageLoad implements Sink.
func (BaseSink) OnPageLoad(*PageLoad) {}

// OnBotBatch implements Sink.
func (BaseSink) OnBotBatch(*BotBatch) {}

// OnDNSQuery implements Sink.
func (BaseSink) OnDNSQuery(*DNSQuery) {}

// EndDay implements Sink.
func (BaseSink) EndDay(int) {}

// Client is one simulated browsing user/device.
type Client struct {
	ID       int32
	Country  world.Country
	Platform world.Platform
	Browser  Browser
	// UA is a stable hash of (browser, platform, version) standing in for
	// the User-Agent string.
	UA uint64

	// HomeIP is the client's residential egress address.
	HomeIP uint32
	// OfficeIP is the shared corporate egress for enterprise clients.
	OfficeIP uint32
	// Enterprise marks clients behind a corporate network on workdays.
	Enterprise bool
	// HomeOpenDNS marks non-enterprise clients whose home network resolves
	// through the Umbrella/OpenDNS service every day.
	HomeOpenDNS bool
	// FamilyFilter marks HomeOpenDNS households using the service's
	// content filtering; their queries to filtered categories resolve to
	// block pages and never feed the popularity ranking.
	FamilyFilter bool

	// ChromeSync marks Chrome users with history sync and usage statistics
	// enabled: the population CrUX aggregates.
	ChromeSync bool
	// PanelJoinDay is the day the client's Alexa browser extension became
	// active, or -1 for clients who never join the panel.
	PanelJoinDay int16

	// DailyRate is the mean number of page loads per weekday.
	DailyRate float32
	// WeekendFactor multiplies DailyRate on weekends.
	WeekendFactor float32

	// FixedSite, when >= 0, makes the client a Sybil: every page load goes
	// to this one site. Sybils model the panel-infiltration attacks of
	// Rweyemamu et al. [26] that motivated Tranco's hardening [18].
	FixedSite int32
}

// OnPanel reports whether the client's Alexa extension is active on day d.
func (c *Client) OnPanel(d int) bool {
	return c.PanelJoinDay >= 0 && int(c.PanelJoinDay) <= d
}
