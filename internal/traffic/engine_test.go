package traffic

import (
	"testing"

	"toplists/internal/obs"
	"toplists/internal/world"
)

func testSetup(t testing.TB, seed uint64, clients, days int) (*world.World, *Engine) {
	t.Helper()
	w := world.Generate(world.Config{Seed: seed, NumSites: 1500})
	e := NewEngine(w, Config{Seed: seed + 1, NumClients: clients, Days: days})
	return w, e
}

// recorder captures aggregate statistics about the event stream.
type recorder struct {
	BaseSink
	pageLoads    int
	botBatches   int
	dnsQueries   int
	infraQueries int
	days         []bool // weekend flags per day
	ended        int

	bySite     map[int32]int
	byDay      []int
	private    int
	atWork     int
	reqTotal   int
	botReqs    int
	violations []string
}

func newRecorder(days int) *recorder {
	return &recorder{bySite: make(map[int32]int), byDay: make([]int, days)}
}

func (r *recorder) BeginDay(d int, weekend bool) { r.days = append(r.days, weekend) }
func (r *recorder) EndDay(d int)                 { r.ended++ }

func (r *recorder) OnPageLoad(pl *PageLoad) {
	r.pageLoads++
	r.bySite[pl.Site]++
	r.byDay[pl.Day]++
	r.reqTotal += pl.Requests()
	if pl.Private {
		r.private++
	}
	if pl.AtWork {
		r.atWork++
	}
	if pl.Subresources < 0 || pl.Non200 > pl.Requests() ||
		pl.HTMLRequests > pl.Requests() || pl.RefererRequests > pl.Requests() {
		r.violations = append(r.violations, "request accounting")
	}
	if pl.TLSConns > pl.Requests() {
		r.violations = append(r.violations, "more TLS conns than requests")
	}
	if pl.Second < 0 || pl.Second >= 86400 {
		r.violations = append(r.violations, "bad second")
	}
}

func (r *recorder) OnBotBatch(bb *BotBatch) {
	r.botBatches++
	r.botReqs += bb.Requests
	if bb.Requests <= 0 || len(bb.IPs) == 0 {
		r.violations = append(r.violations, "empty bot batch")
	}
	if bb.RootRequests > bb.Requests || bb.Non200 > bb.Requests {
		r.violations = append(r.violations, "bot accounting")
	}
}

func (r *recorder) OnDNSQuery(q *DNSQuery) {
	r.dnsQueries++
	if q.Infra >= 0 {
		r.infraQueries++
		if q.Site != -1 {
			r.violations = append(r.violations, "query with both site and infra")
		}
	}
}

func TestEngineBasicRun(t *testing.T) {
	_, e := testSetup(t, 1, 300, 7)
	r := newRecorder(7)
	e.AddSink(r)
	e.Run()

	if len(r.violations) > 0 {
		t.Fatalf("violations: %v (x%d)", r.violations[0], len(r.violations))
	}
	if r.ended != 7 || len(r.days) != 7 {
		t.Fatalf("day hooks: begin %d end %d", len(r.days), r.ended)
	}
	// ~300 clients * ~14 loads * 7 days.
	if r.pageLoads < 10000 || r.pageLoads > 60000 {
		t.Fatalf("page loads = %d, outside plausible range", r.pageLoads)
	}
	if r.botBatches == 0 || r.dnsQueries == 0 || r.infraQueries == 0 {
		t.Fatal("missing event kinds")
	}
	if r.private == 0 {
		t.Fatal("no private-mode loads at all")
	}
	if r.atWork == 0 {
		t.Fatal("no enterprise at-work loads")
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() (int, int, int) {
		_, e := testSetup(t, 9, 200, 3)
		r := newRecorder(3)
		e.AddSink(r)
		e.Run()
		return r.pageLoads, r.dnsQueries, r.botReqs
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestWeekendPattern(t *testing.T) {
	// Start weekday 1 (Tuesday): days 4,5 of week one are Sat/Sun.
	_, e := testSetup(t, 3, 200, 7)
	r := newRecorder(7)
	e.AddSink(r)
	e.Run()
	wantWeekend := []bool{false, false, false, false, true, true, false}
	for d, w := range wantWeekend {
		if r.days[d] != w {
			t.Errorf("day %d weekend = %v, want %v", d, r.days[d], w)
		}
	}
}

func TestPopularSitesGetMoreTraffic(t *testing.T) {
	w, e := testSetup(t, 5, 400, 5)
	r := newRecorder(5)
	e.AddSink(r)
	e.Run()
	head, tail := 0, 0
	for site, n := range r.bySite {
		if int(site) < w.NumSites()/10 {
			head += n
		} else if int(site) > w.NumSites()/2 {
			tail += n
		}
	}
	if head < 5*tail {
		t.Errorf("head traffic %d not >> tail traffic %d", head, tail)
	}
}

func TestEnterpriseWeekendRouting(t *testing.T) {
	_, e := testSetup(t, 7, 400, 7)
	ws := &workSink{}
	e.AddSink(ws)
	e.Run()
	if ws.workWeekend != 0 {
		t.Errorf("AtWork loads on weekend: %d", ws.workWeekend)
	}
	if ws.workWeekday == 0 {
		t.Error("no AtWork loads on weekdays")
	}
	if ws.officeIPHome != 0 {
		t.Errorf("%d at-work loads from home IP", ws.officeIPHome)
	}
}

type workSink struct {
	BaseSink
	workWeekend  int
	workWeekday  int
	officeIPHome int
}

func (s *workSink) OnPageLoad(pl *PageLoad) {
	if pl.AtWork {
		if pl.Weekend {
			s.workWeekend++
		} else {
			s.workWeekday++
		}
		if pl.IP != pl.Client.OfficeIP {
			s.officeIPHome++
		}
	}
}

func TestDNSCacheSuppressesQueries(t *testing.T) {
	// DNS queries after client caching must be far fewer than page loads
	// for heavy repeat visitors, but nonzero.
	_, e := testSetup(t, 11, 300, 3)
	r := newRecorder(3)
	e.AddSink(r)
	e.Run()
	siteQueries := r.dnsQueries - r.infraQueries
	if siteQueries <= 0 {
		t.Fatal("no site DNS queries")
	}
	if siteQueries >= r.pageLoads {
		t.Errorf("queries %d >= page loads %d; cache not effective", siteQueries, r.pageLoads)
	}
}

func TestPanelComposition(t *testing.T) {
	w := world.Generate(world.Config{Seed: 2, NumSites: 800})
	e := NewEngine(w, Config{Seed: 3, NumClients: 5000, Days: 1})
	var panel0, panelLate, enterprisePanel, mobilePanel int
	for i := range e.Clients {
		c := &e.Clients[i]
		if c.PanelJoinDay == 0 {
			panel0++
		} else if c.PanelJoinDay > 0 {
			panelLate++
		}
		if c.PanelJoinDay >= 0 {
			if c.Enterprise {
				enterprisePanel++
			}
			if c.Platform == world.Android {
				mobilePanel++
			}
		}
	}
	if panel0 == 0 || panelLate == 0 {
		t.Fatalf("panel cohorts: day0=%d late=%d", panel0, panelLate)
	}
	if enterprisePanel != 0 || mobilePanel != 0 {
		t.Errorf("panel must be home desktop only: enterprise=%d mobile=%d",
			enterprisePanel, mobilePanel)
	}
	c := Client{PanelJoinDay: 20}
	if c.OnPanel(19) || !c.OnPanel(20) || !c.OnPanel(25) {
		t.Error("OnPanel window wrong")
	}
	never := Client{PanelJoinDay: -1}
	if never.OnPanel(5) {
		t.Error("PanelJoinDay=-1 must never be on panel")
	}
}

func TestClientPopulationShape(t *testing.T) {
	w := world.Generate(world.Config{Seed: 4, NumSites: 800})
	e := NewEngine(w, Config{Seed: 5, NumClients: 8000, Days: 1})
	var android, chromeSync, enterprise int
	countryCounts := make(map[world.Country]int)
	for i := range e.Clients {
		c := &e.Clients[i]
		countryCounts[c.Country]++
		if c.Platform == world.Android {
			android++
		}
		if c.ChromeSync {
			chromeSync++
			if c.Browser != Chrome {
				t.Fatal("non-Chrome client with ChromeSync")
			}
		}
		if c.Enterprise {
			enterprise++
			if c.OfficeIP == 0 {
				t.Fatal("enterprise client without office IP")
			}
		}
		if c.DailyRate < 1 {
			t.Fatal("client with zero rate")
		}
	}
	n := float64(len(e.Clients))
	if f := float64(android) / n; f < 0.45 || f < 0.3 {
		if f < 0.3 {
			t.Errorf("android share %.2f too low", f)
		}
	}
	if chromeSync == 0 || enterprise == 0 {
		t.Error("missing client classes")
	}
	// Every country should be represented at this population size.
	for _, c := range world.AllCountries() {
		if countryCounts[c] == 0 {
			t.Errorf("no clients in %v", c)
		}
	}
}

func TestBotShareByCategory(t *testing.T) {
	w, e := testSetup(t, 13, 400, 3)
	human := make(map[world.Category]int)
	bots := make(map[world.Category]int)
	cs := &catSink{w: w, human: human, bots: bots}
	e.AddSink(cs)
	e.Run()
	if bots[world.Abuse] == 0 {
		t.Skip("no abuse traffic at this scale")
	}
	abuseRatio := float64(bots[world.Abuse]) / float64(bots[world.Abuse]+human[world.Abuse])
	newsRatio := float64(bots[world.News]) / float64(bots[world.News]+human[world.News]+1)
	if abuseRatio <= newsRatio {
		t.Errorf("abuse bot ratio %.2f not > news %.2f", abuseRatio, newsRatio)
	}
}

type catSink struct {
	BaseSink
	w     *world.World
	human map[world.Category]int
	bots  map[world.Category]int
}

func (s *catSink) OnPageLoad(pl *PageLoad) {
	s.human[s.w.Site(pl.Site).Category] += pl.Requests()
}

func (s *catSink) OnBotBatch(bb *BotBatch) {
	s.bots[s.w.Site(bb.Site).Category] += bb.Requests
}

func BenchmarkEngineDay(b *testing.B)       { benchEngineDay(b, false) }
func BenchmarkEngineDayTraced(b *testing.B) { benchEngineDay(b, true) }

// benchEngineDay measures one simulated day; with traced set, a live
// Tracer is attached through the registry, so the pair pins the cost of
// run-timeline tracing on the engine's hottest path (the budget is <=2%,
// recorded in BENCH_trace.json).
func benchEngineDay(b *testing.B, traced bool) {
	w := world.Generate(world.Config{Seed: 1, NumSites: 5000})
	reg := obs.NewRegistry()
	if traced {
		reg.SetTracer(obs.NewTracer(0))
	}
	fresh := func() *Engine {
		e := NewEngine(w, Config{Seed: 2, NumClients: 1000, Days: 28})
		e.AddSink(&BaseSink{})
		e.SetObs(reg)
		return e
	}
	e := fresh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Day() == e.Cfg.Days {
			// Days advance in order exactly once; refresh the engine
			// off-clock to measure another month.
			b.StopTimer()
			e = fresh()
			b.StartTimer()
		}
		e.RunDay(e.Day())
	}
}
