package traffic

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"toplists/internal/simrand"
)

// Sketch-mode execution model. The day's clients are split into
// Cfg.Sketch.Shards fixed LOGICAL shards — a pure function of the
// population size, independent of the worker count. Workers pull logical
// shards from a shared counter; each shard's events fold into bounded
// per-shard accumulators (one ShardState per ShardedSink) instead of an
// event buffer. After the barrier the engine merges the states into the
// sinks in ascending logical-shard order — a canonical order, so sink
// contents are byte-identical whether one worker processed all shards or
// eight workers raced through them. Sinks that do not implement ShardedSink
// still get the exact replayed event stream via a per-shard buffer.

// logicalShard is the reusable per-day state of one logical shard.
type logicalShard struct {
	scratch   *clientScratch
	states    []ShardState // parallel to Engine.shardedSinks
	buf       dayBuffer    // events for plain (non-sharded) sinks
	humanReqs []int32
}

// splitSinks partitions the registered sinks once: sharded sinks aggregate
// through ShardStates, the rest through buffered replay.
func (e *Engine) splitSinks() {
	if e.sinksSplit {
		return
	}
	e.sinksSplit = true
	for _, s := range e.sinks {
		if ss, ok := s.(ShardedSink); ok {
			e.shardedSinks = append(e.shardedSinks, ss)
		} else {
			e.plainSinks = append(e.plainSinks, s)
		}
	}
}

// ensureLogical lazily builds (and retains across days) n logical shards.
func (e *Engine) ensureLogical(n int) {
	for len(e.logical) < n {
		ls := &logicalShard{
			scratch:   newClientScratch(),
			humanReqs: make([]int32, e.W.NumSites()),
		}
		for _, ss := range e.shardedSinks {
			ls.states = append(ls.states, ss.NewShardState())
		}
		e.logical = append(e.logical, ls)
	}
}

// runDayClientsSharded simulates the day's clients over the fixed logical
// shards and merges the resulting summaries at the barrier. nw bounds the
// number of concurrent workers; every value of nw produces byte-identical
// sink contents.
func (e *Engine) runDayClientsSharded(ctx context.Context, d int, weekend bool, daySrc *simrand.Source, nw int) error {
	e.splitSinks()
	shards := shardRanges(len(e.Clients), e.Cfg.Sketch.Shards)
	e.ensureLogical(len(shards))
	if nw > len(shards) {
		nw = len(shards)
	}

	errs := make([]error, len(shards))
	shardNS := make([]int64, len(shards))
	buffered := len(e.plainSinks) > 0
	runShard := func(si int) {
		ls := e.logical[si]
		ls.buf.reset()
		for i := range ls.humanReqs {
			ls.humanReqs[i] = 0
		}
		start := time.Now()
		out := shardOut{
			buffered:  buffered,
			buf:       &ls.buf,
			humanReqs: ls.humanReqs,
			states:    ls.states,
		}
		errs[si] = e.simulateShard(ctx, si, d, weekend, daySrc, ls.scratch, &out, shards[si].Lo, shards[si].Hi)
		out.flushCounts(&e.metrics)
		dur := time.Since(start)
		shardNS[si] = int64(dur)
		e.metrics.tracer.Span("engine.shard", "engine", int64(si), start, dur)
	}
	if nw <= 1 {
		for si := range shards {
			runShard(si)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					si := int(next.Add(1)) - 1
					if si >= len(shards) {
						return
					}
					runShard(si)
				}
			}()
		}
		wg.Wait()
	}
	e.observeShardSkew(shardNS)

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// The barrier merge: ascending logical-shard order, fixed-size
	// summaries into sharded sinks, buffered replay for the rest.
	for si := range shards {
		ls := e.logical[si]
		for i, v := range ls.humanReqs {
			e.humanReqs[i] += v
		}
		for j, ss := range e.shardedSinks {
			ss.MergeShard(ls.states[j])
			ls.states[j].Reset()
		}
		if buffered {
			ls.buf.replay(e.plainSinks)
		}
	}
	return nil
}
