package traffic

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"toplists/internal/obs"
	"toplists/internal/simrand"
	"toplists/internal/sketch"
	"toplists/internal/world"
)

// Config parameterizes the traffic engine.
type Config struct {
	// Seed drives all engine randomness (independent of the world seed).
	Seed uint64
	// NumClients is the simulated browsing population size. Negative means
	// an explicitly empty population (0 is the default of 2000).
	NumClients int
	// Days is the number of simulated days (default 28: February 2022).
	Days int
	// StartWeekday is the weekday of day 0, with 0 = Monday. February 1,
	// 2022 was a Tuesday, so the default is 1.
	StartWeekday int
	// MeanDailyPageLoads is the population log-mean of page loads per
	// client per weekday (default 14).
	MeanDailyPageLoads float64
	// PanelShare is the base probability that an eligible (home, desktop)
	// client runs the Alexa extension (default 0.035, scaled per country).
	PanelShare float64
	// PanelExpansionDay is the day index on which a second panel cohort
	// activates, modeling the unexplained late-February accuracy jump the
	// paper observed for Alexa (default 20 = February 21). Negative
	// disables the expansion.
	PanelExpansionDay int
	// PanelExpansionFactor is the relative size of the second cohort
	// (default 1.5: the panel grows 2.5x).
	PanelExpansionFactor float64
	// ChromeSyncShare is the fraction of Chrome users with history sync
	// and usage statistics enabled (default 0.55).
	ChromeSyncShare float64
	// InfraQueriesPerDay is the mean number of background DNS queries per
	// client device per day to infrastructure names (default 30).
	InfraQueriesPerDay float64
	// OfficeSize is the number of enterprise clients sharing one corporate
	// egress IP (default 25). Shared egress saturates Umbrella's
	// unique-IP counts at the head of its list, one of the mechanisms
	// behind its weak rank correlations (Section 5.2).
	OfficeSize int
	// RevisitProb is the probability that a page load revisits a site the
	// client already visited today, weighted by site stickiness (default
	// 0.45). Revisits decouple page-load counts from unique-visitor
	// counts, the divergence Figure 1 measures between aggregations.
	RevisitProb float64
	// HomeOpenDNSShare is the fraction of non-enterprise clients whose
	// home network resolves through the Umbrella/OpenDNS service (default
	// 0.025).
	HomeOpenDNSShare float64
	// Workers is the number of goroutines simulating clients within a day.
	// 0 (the default) uses one worker per available CPU; 1 forces the
	// serial legacy path, which the parallel path is tested against. Every
	// setting produces the identical event stream: workers emit into
	// per-shard buffers that are replayed into sinks in client order.
	Workers int
	// Sketch enables bounded per-shard aggregation: the day's clients are
	// split into Sketch.Shards fixed logical shards (independent of
	// Workers), sinks implementing ShardedSink accumulate one summary per
	// logical shard, and the day barrier merges the summaries in ascending
	// shard order instead of replaying per-event buffers. Off (the zero
	// value) leaves the engine byte-identical to the exact path.
	Sketch sketch.Config
	// Ablate disables selected engine mechanisms for ablation studies.
	Ablate Ablations
	// Sybils adds attacker-controlled clients to the population.
	Sybils []SybilSpec
}

// SybilSpec describes one coordinated set of attacker clients: panel-joined
// machines that browse a single target site all day, every day. They
// generate real traffic (every vantage point sees it), but their leverage
// differs enormously by vantage: a handful of Sybils is a rounding error in
// edge logs and a large fraction of a sparse extension panel.
type SybilSpec struct {
	// Site is the target site ID.
	Site int32
	// Clients is the number of attacker machines.
	Clients int
	// LoadsPerDay is each machine's daily page-load volume.
	LoadsPerDay float64
	// JoinDay is when the machines join the Alexa panel.
	JoinDay int
}

// Ablations switches individual engine mechanisms off so their effect on
// the study's findings can be measured in isolation.
type Ablations struct {
	// NoPanelDistortion makes Alexa-panel clients browse like everyone
	// else (no demographic skew, no Certify boosts).
	NoPanelDistortion bool
	// NoWorkSkew makes at-work browsing identical to home browsing.
	NoWorkSkew bool
	// NoRevisits disables within-day revisit loyalty: every page load is
	// an independent draw, so page loads track unique visitors exactly.
	NoRevisits bool
}

func (c Config) withDefaults() Config {
	if c.NumClients == 0 {
		c.NumClients = 2000
	}
	if c.NumClients < 0 {
		// Explicitly empty population (edge-path tests): only Sybils and
		// bots generate traffic.
		c.NumClients = 0
	}
	if c.Workers < 0 {
		c.Workers = 1
	}
	if c.Days <= 0 {
		c.Days = 28
	}
	if c.StartWeekday == 0 {
		c.StartWeekday = 1 // Tuesday, like February 1, 2022
	}
	if c.MeanDailyPageLoads == 0 {
		c.MeanDailyPageLoads = 14
	}
	if c.PanelShare == 0 {
		c.PanelShare = 0.035
	}
	if c.PanelExpansionDay == 0 {
		c.PanelExpansionDay = 20
	}
	if c.PanelExpansionFactor == 0 {
		c.PanelExpansionFactor = 1.5
	}
	if c.ChromeSyncShare == 0 {
		c.ChromeSyncShare = 0.55
	}
	if c.InfraQueriesPerDay == 0 {
		c.InfraQueriesPerDay = 30
	}
	if c.OfficeSize == 0 {
		c.OfficeSize = 25
	}
	if c.RevisitProb == 0 {
		c.RevisitProb = 0.45
	}
	if c.HomeOpenDNSShare == 0 {
		c.HomeOpenDNSShare = 0.025
	}
	if c.Ablate.NoRevisits {
		c.RevisitProb = -1
	}
	if c.Sketch.Enabled {
		c.Sketch = c.Sketch.WithDefaults()
	}
	return c
}

// panelCountryBoost scales panel membership by country. The Alexa panel
// skews toward markets where the partnered extensions are distributed —
// the mechanism behind Alexa's country profile in Figure 7 (good on the
// US, China, and sub-Saharan Africa; very poor on Japan).
var panelCountryBoost = [world.NumCountries]float64{
	world.US: 1.6, world.GB: 1.0, world.DE: 0.8, world.BR: 0.9,
	world.IN: 0.6, world.ID: 0.6, world.JP: 0.15, world.NG: 3.2,
	world.EG: 1.0, world.ZA: 3.0, world.CN: 1.4,
}

// openDNSCountryBoost scales home-OpenDNS adoption by country: the service
// is US-centric, which (with the US-heavy enterprise base) is the mechanism
// behind Umbrella's US skew in Figure 7.
var openDNSCountryBoost = [world.NumCountries]float64{
	world.US: 2.5, world.GB: 1.2, world.DE: 0.7, world.BR: 0.6,
	world.IN: 0.6, world.ID: 0.5, world.JP: 0.3, world.NG: 0.6,
	world.EG: 0.5, world.ZA: 0.7, world.CN: 0.05,
}

// Engine generates the simulated month of browsing.
type Engine struct {
	W   *world.World
	Cfg Config

	Clients []Client
	sinks   []Sink

	siteAliases [world.NumCountries * world.NumPlatforms]*simrand.Alias
	// panelAliases are the distorted site choices of panel-demographic
	// clients (see world.PanelDistortion); workAliases those of enterprise
	// clients during the workday (world.WorkDistortion).
	panelAliases [world.NumCountries * world.NumPlatforms]*simrand.Alias
	workAliases  [world.NumCountries * world.NumPlatforms]*simrand.Alias
	infraAlias   *simrand.Alias
	root         *simrand.Source

	// humanReqs accumulates per-site human request counts for the current
	// day; bot volume is derived from it at day end. Workers accumulate
	// into private copies that are summed after the day's barrier.
	humanReqs []int32

	// serialScratch and workers hold per-day reusable simulation state for
	// the serial and parallel paths respectively.
	serialScratch *clientScratch
	workers       []*workerState

	// Sketch-mode state: the fixed logical shards and the one-time split of
	// sinks into sharded and plain (see sharded.go).
	logical      []*logicalShard
	shardedSinks []ShardedSink
	plainSinks   []Sink
	sinksSplit   bool

	// day is the lifecycle cursor: the index of the next day AdvanceDay
	// will simulate. It is the engine's only cross-day state — each day
	// derives its randomness statelessly from the root source — which is
	// what makes a run checkpointable at any day boundary.
	day int
	// failed latches the first day-level error. Sinks are left mid-day
	// when a day fails, so every later AdvanceDay refuses to run rather
	// than feed them a second, inconsistent copy of the day.
	failed error

	// testHook, when set, runs before each client-day simulation; tests
	// use it to inject panics and cancellation races into shards.
	testHook func(client, day int)

	// metrics holds the engine's telemetry; the zero value (no SetObs) is
	// fully inert via nil-safe obs primitives.
	metrics engineMetrics
}

// engineMetrics is the engine's view of the run registry. Event counters
// are deterministic — workers accumulate per-shard totals locally and
// flush once per shard, so the sums are identical at every worker count.
// Durations, the pool width, and shard skew are wall-clock or
// scheduling-dependent and registered Volatile.
type engineMetrics struct {
	pageLoads   *obs.Counter // engine.events.pageload
	dnsQueries  *obs.Counter // engine.events.dnsquery
	botBatches  *obs.Counter // engine.events.botbatch
	botRequests *obs.Counter // engine.events.botrequests
	days        *obs.Counter // engine.days

	workers   *obs.Gauge     // engine.workers (volatile)
	dayTime   *obs.Histogram // engine.day
	shardTime *obs.Histogram // engine.shard
	// skewPctMax is the worst per-day shard imbalance seen so far:
	// 100 * (slowest shard - mean shard) / mean shard. High skew means the
	// contiguous client sharding is leaving workers idle.
	skewPctMax *obs.Gauge // engine.shard.skew_pct_max (volatile)
	simPhase   *obs.Phase // phase.simulate

	// tracer, when attached, receives per-day and per-shard timeline spans.
	// Nil (the common case) costs one branch per span site.
	tracer *obs.Tracer
}

// SetObs attaches the engine to a run registry. Call before Run; without
// it the engine is uninstrumented and pays only nil checks.
func (e *Engine) SetObs(reg *obs.Registry) {
	e.metrics = engineMetrics{
		pageLoads:   reg.Counter("engine.events.pageload"),
		dnsQueries:  reg.Counter("engine.events.dnsquery"),
		botBatches:  reg.Counter("engine.events.botbatch"),
		botRequests: reg.Counter("engine.events.botrequests"),
		days:        reg.Counter("engine.days"),
		workers:     reg.Gauge("engine.workers", obs.Volatile),
		dayTime:     reg.Histogram("engine.day"),
		shardTime:   reg.Histogram("engine.shard"),
		skewPctMax:  reg.Gauge("engine.shard.skew_pct_max", obs.Volatile),
		simPhase:    reg.Phase("phase.simulate"),
		tracer:      reg.Tracer(),
	}
}

// NewEngine builds the client population and samplers. Deterministic in
// (world, cfg).
func NewEngine(w *world.World, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		W:         w,
		Cfg:       cfg,
		root:      simrand.New(cfg.Seed).Derive("traffic"),
		humanReqs: make([]int32, w.NumSites()),
	}
	e.buildClients()
	panelDistort := w.PanelDistortion()
	workDistort := w.WorkDistortion()
	for c := 0; c < world.NumCountries; c++ {
		for p := 0; p < world.NumPlatforms; p++ {
			base := w.SiteWeights(world.Country(c), world.Platform(p))
			baseAlias := simrand.NewAlias(base)
			e.siteAliases[c*world.NumPlatforms+p] = baseAlias
			e.panelAliases[c*world.NumPlatforms+p] = baseAlias
			e.workAliases[c*world.NumPlatforms+p] = baseAlias
			if !cfg.Ablate.NoPanelDistortion {
				panel := make([]float64, len(base))
				for i := range base {
					panel[i] = base[i] * panelDistort[i]
				}
				e.panelAliases[c*world.NumPlatforms+p] = simrand.NewAlias(panel)
			}
			if !cfg.Ablate.NoWorkSkew {
				work := make([]float64, len(base))
				for i := range base {
					work[i] = base[i] * workDistort[i]
				}
				e.workAliases[c*world.NumPlatforms+p] = simrand.NewAlias(work)
			}
		}
	}
	infraW := make([]float64, len(w.Infra))
	for i, inf := range w.Infra {
		infraW[i] = inf.QueryWeight
	}
	e.infraAlias = simrand.NewAlias(infraW)
	return e
}

// AddSink registers an observer. Sinks must be added before Run.
func (e *Engine) AddSink(s Sink) { e.sinks = append(e.sinks, s) }

func (e *Engine) buildClients() {
	countryW := make([]float64, world.NumCountries)
	for i, ci := range world.Countries() {
		countryW[i] = ci.ClientShare
	}
	countryAlias := simrand.NewAlias(countryW)
	src := e.root.Derive("clients")

	e.Clients = make([]Client, e.Cfg.NumClients)
	officeCounters := make(map[int32]int32) // per-country office sequence
	for i := range e.Clients {
		cs := src.At(i)
		c := &e.Clients[i]
		c.ID = int32(i)
		c.Country = world.Country(countryAlias.Draw(cs))
		ci := c.Country.Info()

		if cs.Bernoulli(ci.MobileShare) {
			c.Platform = world.Android
		} else {
			c.Platform = world.Windows
		}
		c.Browser = drawBrowser(cs, ci.ChromeShare, c.Platform)
		c.UA = uaHash(c.Browser, c.Platform, uint8(cs.Intn(8)))

		c.HomeIP = ipFor("home", uint64(i))
		c.Enterprise = cs.Bernoulli(ci.EnterpriseShare)
		if !c.Enterprise {
			c.HomeOpenDNS = cs.Bernoulli(e.Cfg.HomeOpenDNSShare * openDNSCountryBoost[c.Country])
			if c.HomeOpenDNS {
				// Content filtering is the main reason home networks point
				// at OpenDNS in the first place.
				c.FamilyFilter = cs.Bernoulli(0.65)
			}
		}
		if c.Enterprise {
			// Group enterprise clients of a country into shared offices.
			key := int32(c.Country)
			officeIdx := officeCounters[key] / int32(e.Cfg.OfficeSize)
			officeCounters[key]++
			c.OfficeIP = ipFor("office", uint64(c.Country)<<32|uint64(officeIdx))
		}

		if c.Browser == Chrome {
			c.ChromeSync = cs.Bernoulli(e.Cfg.ChromeSyncShare)
		}

		// The Alexa extension only exists on desktop, and enterprise
		// machines don't allow it.
		c.PanelJoinDay = -1
		if c.Platform == world.Windows && !c.Enterprise {
			p := e.Cfg.PanelShare * panelCountryBoost[c.Country]
			if cs.Bernoulli(p) {
				c.PanelJoinDay = 0
			} else if e.Cfg.PanelExpansionDay >= 0 &&
				cs.Bernoulli(p*e.Cfg.PanelExpansionFactor) {
				c.PanelJoinDay = int16(e.Cfg.PanelExpansionDay)
			}
		}

		c.FixedSite = -1
		c.DailyRate = float32(clampF(cs.LogNormal(lnF(e.Cfg.MeanDailyPageLoads), 0.8), 1, 250))
		if c.Enterprise {
			c.WeekendFactor = float32(0.35 + 0.2*cs.Float64())
		} else {
			c.WeekendFactor = float32(1.1 + 0.4*cs.Float64())
		}
	}
	e.addSybils()
}

// addSybils appends the attacker clients after the organic population.
func (e *Engine) addSybils() {
	for _, spec := range e.Cfg.Sybils {
		for i := 0; i < spec.Clients; i++ {
			id := int32(len(e.Clients))
			e.Clients = append(e.Clients, Client{
				ID:            id,
				Country:       world.US,
				Platform:      world.Windows,
				Browser:       Chrome,
				UA:            uaHash(Chrome, world.Windows, 0),
				HomeIP:        ipFor("sybil", uint64(id)),
				PanelJoinDay:  int16(spec.JoinDay),
				DailyRate:     float32(spec.LoadsPerDay),
				WeekendFactor: 1,
				FixedSite:     spec.Site,
			})
		}
	}
}

func drawBrowser(src *simrand.Source, chromeShare float64, p world.Platform) Browser {
	if src.Bernoulli(chromeShare) {
		return Chrome
	}
	r := src.Float64()
	if p == world.Android {
		switch {
		case r < 0.52:
			return Samsung
		case r < 0.84:
			return Firefox
		default:
			return Other
		}
	}
	switch {
	case r < 0.38:
		return Edge
	case r < 0.66:
		return Firefox
	case r < 0.88:
		return Safari
	default:
		return Other
	}
}

func uaHash(b Browser, p world.Platform, version uint8) uint64 {
	x := uint64(b)<<16 | uint64(p)<<8 | uint64(version)
	x ^= x << 25
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x
}

func ipFor(kind string, id uint64) uint32 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= 1099511628211
	}
	h ^= id
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 31
	return uint32(h)
}

func lnF(x float64) float64 {
	// log-mean such that the log-normal median equals x.
	return ln(x)
}

// IsWeekend reports whether day d is a Saturday or Sunday.
func (e *Engine) IsWeekend(d int) bool {
	wd := (e.Cfg.StartWeekday + d) % 7
	return wd == 5 || wd == 6
}

// Run simulates all configured days, feeding every registered sink. A
// shard panic (which RunContext would return as an error) crashes, as it
// did before panic recovery existed.
func (e *Engine) Run() {
	if err := e.RunContext(context.Background()); err != nil {
		panic(err)
	}
}

// ErrRunComplete is returned by AdvanceDay once every configured day has
// been simulated.
var ErrRunComplete = errors.New("traffic: all configured days already simulated")

// ErrEngineAborted is returned by AdvanceDay after an earlier day failed:
// the sinks were left mid-day, so no further advancement is allowed.
var ErrEngineAborted = errors.New("traffic: engine aborted by earlier day failure")

// Day returns the lifecycle cursor: the number of fully simulated days,
// equivalently the index of the next day AdvanceDay will run.
func (e *Engine) Day() int { return e.day }

// Failed reports the first day-level error, or nil. A pre-start context
// cancellation (no day work performed) does not count as a failure.
func (e *Engine) Failed() error { return e.failed }

// RestoreDay repositions the lifecycle cursor after the sinks have been
// restored from a checkpoint taken at day d. It is only valid on a fresh
// engine that has not simulated anything yet.
func (e *Engine) RestoreDay(d int) error {
	if e.failed != nil {
		return e.failed
	}
	if e.day != 0 {
		return fmt.Errorf("traffic: RestoreDay(%d): engine already at day %d", d, e.day)
	}
	if d < 0 || d > e.Cfg.Days {
		return fmt.Errorf("traffic: RestoreDay(%d): out of range [0, %d]", d, e.Cfg.Days)
	}
	e.day = d
	return nil
}

// AdvanceDay simulates exactly one day — the one at the Day cursor — and
// advances the cursor. Days advance strictly in order, exactly once: the
// cursor is the guard against out-of-order or double advancement, for both
// the buffered-replay and sketch-sharded paths. Once all configured days
// have run it returns ErrRunComplete. A failed day (shard panic, mid-day
// cancellation) latches: the sinks are mid-day and every subsequent call
// returns an error wrapping ErrEngineAborted. A cancellation observed
// before any day work starts is returned as ctx's error without latching,
// since the sinks are still consistent at the previous day boundary.
func (e *Engine) AdvanceDay(ctx context.Context) error {
	if e.failed != nil {
		return fmt.Errorf("%w: %v", ErrEngineAborted, e.failed)
	}
	if e.day >= e.Cfg.Days {
		return ErrRunComplete
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.runDay(ctx, e.day); err != nil {
		e.failed = err
		return err
	}
	e.day++
	return nil
}

// RunContext simulates all remaining days, stopping early with ctx's
// error when it is canceled. A panic inside a client shard is recovered
// and returned as a *ShardPanicError identifying the shard, instead of
// crashing the process. On error the sinks are left mid-day and the
// engine refuses to advance further (see AdvanceDay).
func (e *Engine) RunContext(ctx context.Context) error {
	sp := e.metrics.simPhase.Start()
	defer sp.End()
	for e.day < e.Cfg.Days {
		if err := e.AdvanceDay(ctx); err != nil {
			return err
		}
	}
	return nil
}

// RunDay simulates a single day, which must be the day at the Day cursor:
// sinks accumulate state day over day, so the lifecycle forbids skipping
// or repeating days. With more than one worker configured the day's
// clients are simulated concurrently in contiguous shards; the event
// stream the sinks observe is identical for every worker count (see
// parallel.go). Like Run, a shard panic propagates.
func (e *Engine) RunDay(d int) {
	if d != e.day {
		panic(fmt.Sprintf("traffic: RunDay(%d): cursor is at day %d; days advance in order, exactly once", d, e.day))
	}
	if err := e.AdvanceDay(context.Background()); err != nil {
		panic(err)
	}
}

func (e *Engine) runDay(ctx context.Context, d int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dayStart := time.Now()
	weekend := e.IsWeekend(d)
	for _, s := range e.sinks {
		s.BeginDay(d, weekend)
	}
	for i := range e.humanReqs {
		e.humanReqs[i] = 0
	}

	daySrc := e.root.Derive("day").At(d)
	var err error
	nw := e.workerCount()
	e.metrics.workers.Set(int64(nw))
	if e.Cfg.Sketch.Enabled {
		err = e.runDayClientsSharded(ctx, d, weekend, daySrc, nw)
	} else if nw > 1 {
		err = e.runDayClientsParallel(ctx, d, weekend, daySrc, nw)
	} else {
		if e.serialScratch == nil {
			e.serialScratch = newClientScratch()
		}
		shardStart := time.Now()
		out := shardOut{sinks: e.sinks, humanReqs: e.humanReqs}
		err = e.simulateShard(ctx, 0, d, weekend, daySrc, e.serialScratch, &out, 0, len(e.Clients))
		shardDur := time.Since(shardStart)
		e.metrics.shardTime.Observe(shardDur)
		e.metrics.tracer.Span("engine.shard", "engine", 0, shardStart, shardDur)
		out.flushCounts(&e.metrics)
	}
	if err != nil {
		return err
	}
	e.simulateBots(d, daySrc.Derive("bots"))

	for _, s := range e.sinks {
		s.EndDay(d)
	}
	e.metrics.days.Inc()
	dayDur := time.Since(dayStart)
	e.metrics.dayTime.Observe(dayDur)
	e.metrics.tracer.Span("engine.day", "engine", int64(d), dayStart, dayDur)
	return nil
}

// clientScratch is per-client-day reusable state.
type clientScratch struct {
	// lastQuery maps a DNS name key to the expiry second of its cached
	// answer. TTLs are < 1 day so the cache never spans days.
	lastQuery map[uint32]int32
	times     []int32
	// visited holds today's distinct sites with their stickiness weights,
	// for the revisit draw.
	visited      []visitedSite
	visitedTotal float64
}

type visitedSite struct {
	site int32
	w    float64
}

func newClientScratch() *clientScratch {
	return &clientScratch{lastQuery: make(map[uint32]int32, 64)}
}

// pickVisited draws a site from today's visited set, weighted by
// stickiness.
func (sc *clientScratch) pickVisited(src *simrand.Source) int32 {
	r := src.Float64() * sc.visitedTotal
	for _, v := range sc.visited {
		r -= v.w
		if r < 0 {
			return v.site
		}
	}
	return sc.visited[len(sc.visited)-1].site
}

func (e *Engine) simulateClientDay(c *Client, d int, weekend bool, src *simrand.Source, sc *clientScratch, out *shardOut) {
	rate := float64(c.DailyRate)
	if weekend {
		rate *= float64(c.WeekendFactor)
	}
	n := src.Poisson(rate)

	atWork := c.Enterprise && !weekend
	ip := c.HomeIP
	if atWork {
		ip = c.OfficeIP
	}

	clear(sc.lastQuery)
	sc.times = sc.times[:0]
	sc.visited = sc.visited[:0]
	sc.visitedTotal = 0
	for j := 0; j < n; j++ {
		sc.times = append(sc.times, int32(src.Intn(86400)))
	}
	slices.Sort(sc.times)

	aliasIdx := int(c.Country)*world.NumPlatforms + int(c.Platform)
	alias := e.siteAliases[aliasIdx]
	workAlias := alias
	if atWork {
		// A chunk of workday browsing on the corporate network skews
		// toward work categories; the rest is ordinary personal browsing.
		workAlias = e.workAliases[aliasIdx]
	} else if c.PanelJoinDay >= 0 {
		// Panel-demographic clients browse a skewed slice of the web
		// whether or not the extension is active yet.
		alias = e.panelAliases[aliasIdx]
	}
	var (
		pl PageLoad
		q  DNSQuery
	)
	for j := 0; j < n; j++ {
		var siteID int32
		switch {
		case c.FixedSite >= 0:
			siteID = c.FixedSite
		case len(sc.visited) > 0 && src.Bernoulli(e.Cfg.RevisitProb):
			siteID = sc.pickVisited(src)
		default:
			draw := alias
			if atWork && src.Bernoulli(0.4) {
				draw = workAlias
			}
			siteID = int32(draw.Draw(src))
			sc.visited = append(sc.visited, visitedSite{siteID, float64(e.W.Site(siteID).Stickiness)})
			sc.visitedTotal += float64(e.W.Site(siteID).Stickiness)
		}
		site := e.W.Site(siteID)
		cat := site.Category.Info()

		// Corporate networks block certain categories at the DNS layer;
		// employees don't reach those sites from work at all.
		if atWork && src.Bernoulli(cat.EnterpriseBlocked) {
			continue
		}

		subIdx := drawSubdomain(src, site)
		t := sc.times[j]

		pl = PageLoad{
			Day:     d,
			Weekend: weekend,
			Second:  t,
			Site:    siteID,
			SubIdx:  subIdx,
			Client:  c,
			IP:      ip,
			AtWork:  atWork,
			Private: src.Bernoulli(float64(site.PrivateShare)),
			Root:    src.Bernoulli(float64(site.EntryShare)),
		}
		pl.Subresources = src.Poisson(float64(site.SubresMean))
		pl.HTMLRequests = 1 + src.Binomial(pl.Subresources, 0.05)
		pl.RefererRequests = pl.Subresources
		if src.Bernoulli(0.62) { // navigated via a link rather than typed
			pl.RefererRequests++
		}
		pl.Non200 = src.Binomial(pl.Requests(), 0.05)
		if site.HTTPS {
			pl.TLSConns = 1 + src.Binomial(pl.Subresources, 0.13)
		}
		pl.Completed = src.Bernoulli(float64(site.CompletionProb))
		pl.DwellSec = src.LogNormal(float64(site.DwellMu), float64(site.DwellSigma))

		out.humanReqs[siteID] += int32(pl.Requests())

		// DNS: client-side cache by (site, hostname); a resolver query is
		// emitted only on cache miss or expiry.
		key := uint32(siteID)<<4 | uint32(subIdx)
		if exp, ok := sc.lastQuery[key]; !ok || t >= exp {
			sc.lastQuery[key] = t + site.DNSTTL
			q = DNSQuery{
				Day: d, Client: c, IP: ip, AtWork: atWork,
				Site: siteID, SubIdx: subIdx, Infra: -1,
			}
			out.dnsQuery(&q)
		}

		out.pageLoad(&pl)
	}

	// Background device queries to infrastructure names (OS telemetry,
	// updates, push). These happen regardless of browsing volume.
	nInfra := src.Poisson(e.Cfg.InfraQueriesPerDay)
	for j := 0; j < nInfra; j++ {
		idx := int32(e.infraAlias.Draw(src))
		q = DNSQuery{
			Day: d, Client: c, IP: ip, AtWork: atWork,
			Site: -1, Infra: idx,
		}
		out.dnsQuery(&q)
	}
}

func drawSubdomain(src *simrand.Source, site *world.Site) uint8 {
	r := float32(src.Float64())
	var acc float32
	for i, w := range site.SubWeights {
		acc += w
		if r < acc {
			return uint8(i)
		}
	}
	return 0
}

// botFloor is the baseline daily crawler/bot request volume per category.
// Abuse (spam/scan) targets draw orders of magnitude more automated traffic
// than their human popularity earns — the divergence that separates the
// all-requests metric from the browser-filtered one.
var botFloor = [world.NumCategories]float64{
	world.Abuse:  1500,
	world.Parked: 80,
}

// simulateBots emits per-site daily bot traffic: a floor of crawler
// activity for every site plus volume proportional to human traffic per the
// site's bot share.
func (e *Engine) simulateBots(d int, src *simrand.Source) {
	n := e.W.NumSites()
	var nBatches, nReqs int64
	var bb BotBatch
	for i := 0; i < n; i++ {
		site := e.W.Site(int32(i))
		bs := float64(site.BotShare)
		floor := botFloor[site.Category]
		if floor == 0 {
			floor = 4
		}
		// Crawl volume decays slowly with obscurity.
		floor *= 0.3 + headnessOf(i, n)
		mean := floor + float64(e.humanReqs[i])*bs/(1-bs)
		ss := src.At(i)
		reqs := ss.Poisson(mean)
		if reqs == 0 {
			continue
		}
		bb = BotBatch{
			Day:             d,
			Site:            int32(i),
			Requests:        reqs,
			RootRequests:    ss.Binomial(reqs, 0.30),
			HTMLRequests:    ss.Binomial(reqs, 0.45),
			RefererRequests: ss.Binomial(reqs, 0.08),
			Non200:          ss.Binomial(reqs, 0.18),
		}
		if site.HTTPS {
			bb.TLSConns = ss.Binomial(reqs, 0.65)
		}
		nIPs := 1 + ss.Poisson(sqrtF(float64(reqs)))
		bb.IPs = make([]uint32, nIPs)
		for k := range bb.IPs {
			bb.IPs[k] = ipFor("bot", uint64(ss.Intn(65536)))
		}
		nBatches++
		nReqs += int64(reqs)
		for _, s := range e.sinks {
			s.OnBotBatch(&bb)
		}
	}
	e.metrics.botBatches.Add(nBatches)
	e.metrics.botRequests.Add(nReqs)
}

func headnessOf(i, n int) float64 {
	return 1 / (1 + float64(i)/(0.01*float64(n)+1))
}
