package traffic

import "math"

func ln(x float64) float64    { return math.Log(x) }
func sqrtF(x float64) float64 { return math.Sqrt(x) }

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
