package traffic

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"toplists/internal/simrand"
)

// observeShardSkew records each shard's wall time and updates the
// worst-imbalance gauge: the percentage by which the slowest shard of the
// day exceeded the mean shard. All volatile — scheduling decides these.
func (e *Engine) observeShardSkew(shardNS []int64) {
	if len(shardNS) == 0 {
		return
	}
	var sum, slowest int64
	for _, ns := range shardNS {
		e.metrics.shardTime.Observe(time.Duration(ns))
		sum += ns
		if ns > slowest {
			slowest = ns
		}
	}
	if mean := sum / int64(len(shardNS)); mean > 0 {
		e.metrics.skewPctMax.Max(100 * (slowest - mean) / mean)
	}
}

// The parallel execution model shards a day's clients into contiguous
// ranges, one per worker. Each worker simulates its range with private
// scratch state and a private event buffer; no sink is touched from a
// worker goroutine. After the barrier the buffers are replayed into the
// sinks shard by shard in ascending client order, so every sink observes
// the exact event stream the serial engine would have produced. Determinism
// is preserved by construction: per-client RNG streams are derived by index
// (daySrc.At(i)), never shared, and the replay order is a pure function of
// client IDs.

// Event kind tags for dayBuffer.kinds.
const (
	evPageLoad uint8 = iota
	evDNSQuery
)

// dayBuffer records, in emission order, the events one worker's client
// shard produced. Events are stored by value in per-kind slices; kinds
// preserves the interleaving so replay reproduces the serial call order.
// Buffers are reused across days to keep steady-state allocations flat.
type dayBuffer struct {
	kinds   []uint8
	loads   []PageLoad
	queries []DNSQuery
}

func (b *dayBuffer) reset() {
	b.kinds = b.kinds[:0]
	b.loads = b.loads[:0]
	b.queries = b.queries[:0]
}

// replay feeds the buffered events to the sinks in emission order.
func (b *dayBuffer) replay(sinks []Sink) {
	li, qi := 0, 0
	for _, k := range b.kinds {
		switch k {
		case evPageLoad:
			pl := &b.loads[li]
			li++
			for _, s := range sinks {
				s.OnPageLoad(pl)
			}
		default:
			q := &b.queries[qi]
			qi++
			for _, s := range sinks {
				s.OnDNSQuery(q)
			}
		}
	}
}

// shardOut is where simulateClientDay emits events and per-site human
// request counts. The serial path forwards events straight to the sinks and
// accumulates into the engine's humanReqs; a worker appends to its private
// buffer and counts instead. In sketch mode, states carries the logical
// shard's bounded accumulators: every event folds into them immediately,
// and only plain (non-sharded) sinks still go through sinks/buf.
type shardOut struct {
	buffered  bool
	sinks     []Sink
	buf       *dayBuffer
	humanReqs []int32
	states    []ShardState

	// nLoads and nQueries count this shard's events locally (plain fields,
	// no atomics), flushed to the shared counters once per shard: the per-
	// event cost of telemetry is two register increments, and the flushed
	// totals are identical at every worker count.
	nLoads, nQueries int64
}

// flushCounts adds the shard's event tallies to the engine counters and
// zeroes them for reuse.
func (o *shardOut) flushCounts(m *engineMetrics) {
	m.pageLoads.Add(o.nLoads)
	m.dnsQueries.Add(o.nQueries)
	o.nLoads, o.nQueries = 0, 0
}

func (o *shardOut) pageLoad(pl *PageLoad) {
	o.nLoads++
	for _, st := range o.states {
		st.OnPageLoad(pl)
	}
	if o.buffered {
		o.buf.kinds = append(o.buf.kinds, evPageLoad)
		o.buf.loads = append(o.buf.loads, *pl)
		return
	}
	for _, s := range o.sinks {
		s.OnPageLoad(pl)
	}
}

func (o *shardOut) dnsQuery(q *DNSQuery) {
	o.nQueries++
	for _, st := range o.states {
		st.OnDNSQuery(q)
	}
	if o.buffered {
		o.buf.kinds = append(o.buf.kinds, evDNSQuery)
		o.buf.queries = append(o.buf.queries, *q)
		return
	}
	for _, s := range o.sinks {
		s.OnDNSQuery(q)
	}
}

// workerState is one worker's reusable per-day state.
type workerState struct {
	scratch   *clientScratch
	buf       dayBuffer
	humanReqs []int32
}

// shardRange is a half-open range [Lo, Hi) of client indices.
type shardRange struct {
	Lo, Hi int
}

// shardRanges splits n clients into at most k contiguous ranges of
// near-equal size (the first n%k ranges are one larger). Only non-empty
// ranges are returned.
func shardRanges(n, k int) []shardRange {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]shardRange, 0, k)
	size, rem := n/k, n%k
	lo := 0
	for w := 0; w < k; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		out = append(out, shardRange{lo, hi})
		lo = hi
	}
	return out
}

// workerCount resolves the configured Workers knob for the current
// population: 0 means one worker per available CPU, and the count never
// exceeds the number of clients (a worker with no clients is pointless).
func (e *Engine) workerCount() int {
	nw := e.Cfg.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(e.Clients) {
		nw = len(e.Clients)
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// ensureWorkers lazily builds (and retains across days) n worker states.
func (e *Engine) ensureWorkers(n int) {
	for len(e.workers) < n {
		e.workers = append(e.workers, &workerState{
			scratch:   newClientScratch(),
			humanReqs: make([]int32, e.W.NumSites()),
		})
	}
}

// ShardPanicError reports a panic recovered inside one client shard: which
// shard, which clients it covered, the panic value, and the stack at the
// panic site. It propagates through RunContext instead of crashing the
// whole run.
type ShardPanicError struct {
	Day, Shard int
	// Lo, Hi is the shard's half-open client range.
	Lo, Hi int
	Value  any
	Stack  []byte
}

// Error implements error.
func (e *ShardPanicError) Error() string {
	return fmt.Sprintf("traffic: day %d shard %d (clients [%d,%d)) panicked: %v\n%s",
		e.Day, e.Shard, e.Lo, e.Hi, e.Value, e.Stack)
}

// simulateShard runs one contiguous client range, converting a panic into
// a *ShardPanicError and polling ctx between clients. It is the shared
// body of the serial path (one shard spanning everyone) and each parallel
// worker.
func (e *Engine) simulateShard(ctx context.Context, shard, d int, weekend bool,
	daySrc *simrand.Source, sc *clientScratch, out *shardOut, lo, hi int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &ShardPanicError{Day: d, Shard: shard, Lo: lo, Hi: hi, Value: v, Stack: debug.Stack()}
		}
	}()
	for i := lo; i < hi; i++ {
		if (i-lo)%64 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if e.testHook != nil {
			e.testHook(i, d)
		}
		e.simulateClientDay(&e.Clients[i], d, weekend, daySrc.At(i), sc, out)
	}
	return nil
}

// runDayClientsParallel simulates the day's clients across nw workers and
// replays the buffered events into the sinks in ascending client order. On
// error (a canceled context or a panicked shard) the buffers are not
// replayed and the first failing shard's error — in shard order, which is
// deterministic — is returned.
func (e *Engine) runDayClientsParallel(ctx context.Context, d int, weekend bool, daySrc *simrand.Source, nw int) error {
	shards := shardRanges(len(e.Clients), nw)
	e.ensureWorkers(len(shards))

	errs := make([]error, len(shards))
	shardNS := make([]int64, len(shards))
	var wg sync.WaitGroup
	for w, r := range shards {
		ws := e.workers[w]
		ws.buf.reset()
		for i := range ws.humanReqs {
			ws.humanReqs[i] = 0
		}
		wg.Add(1)
		go func(w int, ws *workerState, lo, hi int) {
			defer wg.Done()
			start := time.Now()
			out := shardOut{buffered: true, buf: &ws.buf, humanReqs: ws.humanReqs}
			errs[w] = e.simulateShard(ctx, w, d, weekend, daySrc, ws.scratch, &out, lo, hi)
			out.flushCounts(&e.metrics)
			dur := time.Since(start)
			shardNS[w] = int64(dur)
			e.metrics.tracer.Span("engine.shard", "engine", int64(w), start, dur)
		}(w, ws, r.Lo, r.Hi)
	}
	wg.Wait()
	e.observeShardSkew(shardNS)

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for w := range shards {
		ws := e.workers[w]
		for i, v := range ws.humanReqs {
			e.humanReqs[i] += v
		}
		ws.buf.replay(e.sinks)
	}
	return nil
}
