package traffic

import (
	"fmt"
	"hash/fnv"
	"testing"

	"toplists/internal/obs"
	"toplists/internal/world"
)

// hashSink folds every event field-by-field into a running hash, so two
// runs agree iff their sinks observed identical event streams in identical
// order.
type hashSink struct {
	h      uint64
	events int
}

func (s *hashSink) mix(vs ...uint64) {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vs {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	s.h = s.h*0x100000001b3 ^ h.Sum64()
	s.events++
}

func (s *hashSink) BeginDay(d int, weekend bool) {
	w := uint64(0)
	if weekend {
		w = 1
	}
	s.mix(1, uint64(d), w)
}

func (s *hashSink) EndDay(d int) { s.mix(2, uint64(d)) }

func (s *hashSink) OnPageLoad(pl *PageLoad) {
	s.mix(3, uint64(pl.Day), uint64(pl.Second), uint64(pl.Site),
		uint64(pl.SubIdx), uint64(pl.Client.ID), uint64(pl.IP),
		b2u(pl.AtWork), b2u(pl.Private), b2u(pl.Root),
		uint64(pl.Subresources), uint64(pl.HTMLRequests),
		uint64(pl.RefererRequests), uint64(pl.Non200), uint64(pl.TLSConns),
		b2u(pl.Completed), uint64(int64(pl.DwellSec*1e6)))
}

func (s *hashSink) OnBotBatch(bb *BotBatch) {
	vs := []uint64{4, uint64(bb.Day), uint64(bb.Site), uint64(bb.Requests),
		uint64(bb.RootRequests), uint64(bb.HTMLRequests),
		uint64(bb.RefererRequests), uint64(bb.Non200), uint64(bb.TLSConns)}
	for _, ip := range bb.IPs {
		vs = append(vs, uint64(ip))
	}
	s.mix(vs...)
}

func (s *hashSink) OnDNSQuery(q *DNSQuery) {
	s.mix(5, uint64(q.Day), uint64(q.Client.ID), uint64(q.IP),
		b2u(q.AtWork), uint64(q.Site), uint64(q.SubIdx), uint64(q.Infra))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// engineHash runs a full engine with the given worker count and returns the
// event-stream hash.
func engineHash(t testing.TB, seed uint64, clients, days, workers int) (uint64, int) {
	t.Helper()
	w := world.Generate(world.Config{Seed: seed, NumSites: 1200})
	e := NewEngine(w, Config{
		Seed: seed + 1, NumClients: clients, Days: days, Workers: workers,
	})
	hs := &hashSink{}
	e.AddSink(hs)
	e.Run()
	return hs.h, hs.events
}

// TestParallelMatchesSerial is the engine-level determinism oracle: the
// sharded parallel path must deliver the exact event stream of the serial
// path, for several worker counts, including counts that exceed the
// population.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 42, 9000} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			wantH, wantN := engineHash(t, seed, 150, 3, 1)
			if wantN == 0 {
				t.Fatal("serial run produced no events")
			}
			for _, workers := range []int{2, 3, 8, 151, 1000} {
				gotH, gotN := engineHash(t, seed, 150, 3, workers)
				if gotN != wantN || gotH != wantH {
					t.Errorf("workers=%d: events=%d hash=%#x, want events=%d hash=%#x",
						workers, gotN, gotH, wantN, wantH)
				}
			}
		})
	}
}

// TestParallelRace exercises the concurrent shard path with enough workers
// and days that `go test -race` can observe any unsynchronized access to
// engine state, scratch buffers, or sinks.
func TestParallelRace(t *testing.T) {
	w := world.Generate(world.Config{Seed: 77, NumSites: 1000})
	e := NewEngine(w, Config{Seed: 78, NumClients: 400, Days: 4, Workers: 8})
	r := newRecorder(4)
	e.AddSink(r)
	e.Run()
	if len(r.violations) > 0 {
		t.Fatalf("violations: %v (x%d)", r.violations[0], len(r.violations))
	}
	if r.pageLoads == 0 || r.dnsQueries == 0 || r.botBatches == 0 {
		t.Fatal("parallel run produced no events")
	}
	if r.ended != 4 {
		t.Fatalf("EndDay calls = %d, want 4", r.ended)
	}
}

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, k    int
		wantLen int
	}{
		{0, 4, 0}, {-3, 4, 0}, {10, 0, 0}, {10, -1, 0},
		{10, 1, 1}, {10, 3, 3}, {10, 10, 10}, {3, 10, 3}, {1, 1, 1},
	}
	for _, c := range cases {
		got := shardRanges(c.n, c.k)
		if len(got) != c.wantLen {
			t.Errorf("shardRanges(%d,%d) len = %d, want %d", c.n, c.k, len(got), c.wantLen)
			continue
		}
		// Ranges must tile [0, n) contiguously, ascending, all non-empty.
		next := 0
		for _, r := range got {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Errorf("shardRanges(%d,%d) = %v: bad range %v", c.n, c.k, got, r)
				break
			}
			next = r.Hi
		}
		if c.wantLen > 0 && next != c.n {
			t.Errorf("shardRanges(%d,%d) covers [0,%d), want [0,%d)", c.n, c.k, next, c.n)
		}
	}
}

// TestRunWithNoSinks covers the zero-registered-sinks edge path: the engine
// must simulate the full day (both serially and in parallel) without
// anything to observe it.
func TestRunWithNoSinks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := world.Generate(world.Config{Seed: 21, NumSites: 600})
		e := NewEngine(w, Config{Seed: 22, NumClients: 50, Days: 2, Workers: workers})
		e.Run() // must not panic
	}
}

// TestRunWithNoClients covers the empty-population edge path (NumClients <
// 0 requests zero clients): only bot traffic remains, and day hooks still
// fire in order.
func TestRunWithNoClients(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		w := world.Generate(world.Config{Seed: 23, NumSites: 600})
		e := NewEngine(w, Config{Seed: 24, NumClients: -1, Days: 2, Workers: workers})
		if len(e.Clients) != 0 {
			t.Fatalf("NumClients=-1 built %d clients", len(e.Clients))
		}
		r := newRecorder(2)
		e.AddSink(r)
		e.Run()
		if r.pageLoads != 0 || r.dnsQueries != 0 {
			t.Errorf("workers=%d: client events from empty population: %d loads, %d queries",
				workers, r.pageLoads, r.dnsQueries)
		}
		if r.botBatches == 0 {
			t.Errorf("workers=%d: no bot traffic with empty population", workers)
		}
		if r.ended != 2 || len(r.days) != 2 {
			t.Errorf("workers=%d: day hooks: begin %d end %d", workers, len(r.days), r.ended)
		}
	}
}

// TestRunWithNoSinksAndNoClients combines both edge paths.
func TestRunWithNoSinksAndNoClients(t *testing.T) {
	w := world.Generate(world.Config{Seed: 25, NumSites: 400})
	e := NewEngine(w, Config{Seed: 26, NumClients: -1, Days: 1})
	e.Run() // must not panic
}

// TestSimulateClientDayAllocsFlat guards the hot path's allocation profile
// across the parallel refactor: once scratch and buffers are warm, a
// client-day must not allocate per event. The small constant budget covers
// the two event structs that escape into sink interface calls plus
// occasional growth of reused buffers. Telemetry is attached so the guard
// also covers the instrumented path: event counting and the per-shard
// flush must stay allocation-free.
func TestSimulateClientDayAllocsFlat(t *testing.T) {
	w := world.Generate(world.Config{Seed: 31, NumSites: 600})
	e := NewEngine(w, Config{Seed: 32, NumClients: 40, Days: 1})
	e.SetObs(obs.NewRegistry())
	sc := newClientScratch()
	var buf dayBuffer
	out := shardOut{buffered: true, buf: &buf, humanReqs: make([]int32, w.NumSites())}
	daySrc := e.root.Derive("day").At(0)

	run := func() {
		buf.reset()
		for i := range e.Clients {
			e.simulateClientDay(&e.Clients[i], 0, false, daySrc.At(i), sc, &out)
		}
		out.flushCounts(&e.metrics)
	}
	run() // warm scratch, maps, and buffer capacity
	if e.metrics.pageLoads.Value() == 0 {
		t.Fatal("instrumented run recorded no page loads")
	}

	// 40 client-days per run; daySrc.At allocates one Source per client.
	// Allow the per-client constants but nothing proportional to events
	// (a per-event regression would cost hundreds of allocs here).
	perRun := testing.AllocsPerRun(20, run)
	if perRun > float64(3*len(e.Clients)) {
		t.Errorf("allocs per 40-client day = %.0f, want <= %d (per-event allocation crept in?)",
			perRun, 3*len(e.Clients))
	}
}

// BenchmarkEngineParallel sweeps worker counts over a fixed engine day so
// the speedup (or single-core overhead) of the sharded path lands in the
// performance trajectory.
func BenchmarkEngineParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := world.Generate(world.Config{Seed: 1, NumSites: 5000})
			e := NewEngine(w, Config{
				Seed: 2, NumClients: 1000, Days: 28, Workers: workers,
			})
			e.AddSink(&BaseSink{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e.Day() == e.Cfg.Days {
					b.StopTimer()
					e = NewEngine(w, Config{
						Seed: 2, NumClients: 1000, Days: 28, Workers: workers,
					})
					e.AddSink(&BaseSink{})
					b.StartTimer()
				}
				e.RunDay(e.Day())
			}
		})
	}
}
