package traffic

import (
	"testing"

	"toplists/internal/world"
)

// distinctSink measures page loads vs distinct (client, day, site) visits.
type distinctSink struct {
	BaseSink
	loads    int
	distinct map[[2]int32]map[int32]struct{} // (client, day) -> sites
}

func newDistinctSink() *distinctSink {
	return &distinctSink{distinct: make(map[[2]int32]map[int32]struct{})}
}

func (s *distinctSink) OnPageLoad(pl *PageLoad) {
	s.loads++
	key := [2]int32{pl.Client.ID, int32(pl.Day)}
	set, ok := s.distinct[key]
	if !ok {
		set = make(map[int32]struct{})
		s.distinct[key] = set
	}
	set[pl.Site] = struct{}{}
}

func (s *distinctSink) distinctVisits() int {
	n := 0
	for _, set := range s.distinct {
		n += len(set)
	}
	return n
}

func TestAblateNoRevisits(t *testing.T) {
	w := world.Generate(world.Config{Seed: 31, NumSites: 2000})
	run := func(ab Ablations) (loads, distinct int) {
		e := NewEngine(w, Config{Seed: 32, NumClients: 300, Days: 3, Ablate: ab})
		s := newDistinctSink()
		e.AddSink(s)
		e.Run()
		return s.loads, s.distinctVisits()
	}
	baseLoads, baseDistinct := run(Ablations{})
	ablLoads, ablDistinct := run(Ablations{NoRevisits: true})

	baseRatio := float64(baseLoads) / float64(baseDistinct)
	ablRatio := float64(ablLoads) / float64(ablDistinct)
	t.Logf("loads/distinct: base %.2f, no-revisits %.2f", baseRatio, ablRatio)
	if baseRatio < 1.2 {
		t.Errorf("revisit loyalty missing: loads/distinct = %.2f", baseRatio)
	}
	// Without revisits, draws are nearly independent: the ratio collapses
	// toward 1 (a little above, from independent repeat draws of the head).
	if ablRatio >= baseRatio {
		t.Errorf("no-revisits ratio %.2f not below base %.2f", ablRatio, baseRatio)
	}
}

// categoryMix measures at-work category shares with and without work skew.
func TestAblateNoWorkSkew(t *testing.T) {
	w := world.Generate(world.Config{Seed: 33, NumSites: 4000})
	run := func(ab Ablations) map[world.Category]int {
		e := NewEngine(w, Config{Seed: 34, NumClients: 800, Days: 3, Ablate: ab})
		counts := make(map[world.Category]int)
		cs := &workCatSink{w: w, counts: counts}
		e.AddSink(cs)
		e.Run()
		return counts
	}
	base := run(Ablations{})
	flat := run(Ablations{NoWorkSkew: true})
	total := func(m map[world.Category]int) int {
		n := 0
		for _, v := range m {
			n += v
		}
		return n
	}
	bt, ft := total(base), total(flat)
	if bt == 0 || ft == 0 {
		t.Skip("no at-work traffic at this scale")
	}
	baseBiz := float64(base[world.Business]) / float64(bt)
	flatBiz := float64(flat[world.Business]) / float64(ft)
	t.Logf("at-work business share: base %.3f, ablated %.3f", baseBiz, flatBiz)
	if baseBiz <= flatBiz {
		t.Errorf("work skew did not raise business share (%.3f vs %.3f)", baseBiz, flatBiz)
	}
}

type workCatSink struct {
	BaseSink
	w      *world.World
	counts map[world.Category]int
}

func (s *workCatSink) OnPageLoad(pl *PageLoad) {
	if pl.AtWork {
		s.counts[s.w.Site(pl.Site).Category]++
	}
}

func TestAblateNoPanelDistortion(t *testing.T) {
	w := world.Generate(world.Config{Seed: 35, NumSites: 4000})
	run := func(ab Ablations) map[world.Category]int {
		e := NewEngine(w, Config{Seed: 36, NumClients: 3000, Days: 2, Ablate: ab})
		counts := make(map[world.Category]int)
		ps := &panelCatSink{w: w, counts: counts}
		e.AddSink(ps)
		e.Run()
		return counts
	}
	base := run(Ablations{})
	flat := run(Ablations{NoPanelDistortion: true})
	share := func(m map[world.Category]int, cat world.Category) float64 {
		n := 0
		for _, v := range m {
			n += v
		}
		if n == 0 {
			return 0
		}
		return float64(m[cat]) / float64(n)
	}
	baseTech := share(base, world.Technology)
	flatTech := share(flat, world.Technology)
	t.Logf("panel technology share: base %.3f, ablated %.3f", baseTech, flatTech)
	if baseTech <= flatTech {
		t.Errorf("panel distortion did not raise technology share (%.3f vs %.3f)",
			baseTech, flatTech)
	}
}

type panelCatSink struct {
	BaseSink
	w      *world.World
	counts map[world.Category]int
}

func (s *panelCatSink) OnPageLoad(pl *PageLoad) {
	if pl.Client.PanelJoinDay >= 0 && !pl.AtWork {
		s.counts[s.w.Site(pl.Site).Category]++
	}
}

func TestHomeOpenDNSPopulation(t *testing.T) {
	w := world.Generate(world.Config{Seed: 37, NumSites: 500})
	e := NewEngine(w, Config{Seed: 38, NumClients: 8000, Days: 1})
	var odns, filtered, enterpriseODNS int
	for i := range e.Clients {
		c := &e.Clients[i]
		if c.HomeOpenDNS {
			odns++
			if c.FamilyFilter {
				filtered++
			}
			if c.Enterprise {
				enterpriseODNS++
			}
		} else if c.FamilyFilter {
			t.Fatal("family filter without OpenDNS")
		}
	}
	if odns == 0 {
		t.Fatal("no home OpenDNS users")
	}
	if enterpriseODNS != 0 {
		t.Fatal("enterprise client marked home OpenDNS")
	}
	if filtered == 0 || filtered == odns {
		t.Errorf("family filtering: %d of %d, want a strict subset", filtered, odns)
	}
}
