package traffic

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"toplists/internal/world"
)

func panicTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	w := world.Generate(world.Config{Seed: 61, NumSites: 200})
	return NewEngine(w, Config{Seed: 61, NumClients: 200, Days: 2, Workers: workers})
}

// TestShardPanicBecomesError is the panic-recovery satellite: a panicking
// client simulation surfaces as a *ShardPanicError naming the shard and
// carrying the stack, from both the parallel pool and the serial path,
// instead of crashing the run.
func TestShardPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := panicTestEngine(t, workers)
		e.testHook = func(client, day int) {
			if client == 137 && day == 1 {
				panic("injected client panic")
			}
		}
		err := e.RunContext(context.Background())
		var spe *ShardPanicError
		if !errors.As(err, &spe) {
			t.Fatalf("workers=%d: RunContext error %v, want *ShardPanicError", workers, err)
		}
		if spe.Day != 1 || spe.Lo > 137 || spe.Hi <= 137 {
			t.Errorf("workers=%d: panic located at day %d clients [%d,%d), want day 1 covering client 137",
				workers, spe.Day, spe.Lo, spe.Hi)
		}
		if spe.Value != "injected client panic" {
			t.Errorf("workers=%d: panic value %v", workers, spe.Value)
		}
		if !strings.Contains(string(spe.Stack), "simulateShard") {
			t.Errorf("workers=%d: stack does not reach the shard body:\n%s", workers, spe.Stack)
		}
		if workers > 1 && (spe.Shard < 0 || spe.Shard >= 4) {
			t.Errorf("workers=%d: shard index %d out of range", workers, spe.Shard)
		}
	}
}

// TestRunPanicsWithoutContext: the legacy Run entry point preserves its
// crash-on-panic contract.
func TestRunPanicsWithoutContext(t *testing.T) {
	e := panicTestEngine(t, 2)
	e.testHook = func(client, day int) {
		if client == 3 {
			panic("boom")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run swallowed the shard panic")
		}
	}()
	e.Run()
}

// TestRunContextCancel: canceling mid-run stops promptly with the context
// error and skips the remaining days.
func TestRunContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := panicTestEngine(t, workers)
		ctx, cancel := context.WithCancel(context.Background())
		var began int
		e.AddSink(countingSink{days: &began})
		e.testHook = func(client, day int) {
			if day == 0 && client == 100 {
				cancel()
			}
		}
		start := time.Now()
		err := e.RunContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: RunContext error %v, want context.Canceled", workers, err)
		}
		if began > 1 {
			t.Errorf("workers=%d: %d days began after day-0 cancel", workers, began)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("workers=%d: cancel took %v to take effect", workers, elapsed)
		}
	}
}

// TestPreCanceledContext: a context canceled before the run begins stops
// before any sink sees a day.
func TestPreCanceledContext(t *testing.T) {
	e := panicTestEngine(t, 2)
	var began int
	e.AddSink(countingSink{days: &began})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error %v, want context.Canceled", err)
	}
	if began != 0 {
		t.Errorf("%d days began under a pre-canceled context", began)
	}
}

// countingSink counts BeginDay calls.
type countingSink struct {
	BaseSink
	days *int
}

func (s countingSink) BeginDay(d int, weekend bool) { *s.days++ }
