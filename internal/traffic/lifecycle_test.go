package traffic

import (
	"context"
	"errors"
	"testing"

	"toplists/internal/world"
)

func lifecycleEngine(t *testing.T, days int) *Engine {
	t.Helper()
	w := world.Generate(world.Config{Seed: 71, NumSites: 200})
	return NewEngine(w, Config{Seed: 71, NumClients: 100, Days: days, Workers: 2})
}

// TestAdvanceDayCursor: AdvanceDay simulates days strictly in order,
// exactly once, and reports ErrRunComplete once the configured window is
// exhausted.
func TestAdvanceDayCursor(t *testing.T) {
	e := lifecycleEngine(t, 3)
	var began int
	e.AddSink(countingSink{days: &began})
	for d := 0; d < 3; d++ {
		if got := e.Day(); got != d {
			t.Fatalf("Day() = %d before advancing day %d", got, d)
		}
		if err := e.AdvanceDay(context.Background()); err != nil {
			t.Fatalf("AdvanceDay(%d): %v", d, err)
		}
	}
	if began != 3 {
		t.Fatalf("sinks saw %d days, want 3", began)
	}
	if err := e.AdvanceDay(context.Background()); !errors.Is(err, ErrRunComplete) {
		t.Fatalf("AdvanceDay past end: %v, want ErrRunComplete", err)
	}
	if began != 3 {
		t.Fatalf("completed engine re-ran a day (%d began)", began)
	}
}

// TestAdvanceDayLatchesFailure: a mid-day failure latches the engine;
// every later advancement reports ErrEngineAborted instead of re-running
// the day over half-fed sinks.
func TestAdvanceDayLatchesFailure(t *testing.T) {
	e := lifecycleEngine(t, 3)
	e.testHook = func(client, day int) {
		if day == 1 && client == 17 {
			panic("injected")
		}
	}
	if err := e.AdvanceDay(context.Background()); err != nil {
		t.Fatalf("day 0: %v", err)
	}
	err := e.AdvanceDay(context.Background())
	var spe *ShardPanicError
	if !errors.As(err, &spe) {
		t.Fatalf("day 1: %v, want *ShardPanicError", err)
	}
	if got := e.Failed(); got == nil {
		t.Fatal("failure did not latch")
	}
	if err := e.AdvanceDay(context.Background()); !errors.Is(err, ErrEngineAborted) {
		t.Fatalf("advancement after failure: %v, want ErrEngineAborted", err)
	}
	if got := e.Day(); got != 1 {
		t.Fatalf("failed engine advanced to day %d, want stuck at 1", got)
	}
}

// TestAdvanceDayPreCancelUnlatched: a cancellation observed before the
// day starts returns the context error without latching — the engine is
// still at a clean boundary and can continue once the pressure clears.
func TestAdvanceDayPreCancelUnlatched(t *testing.T) {
	e := lifecycleEngine(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.AdvanceDay(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled AdvanceDay: %v, want context.Canceled", err)
	}
	if e.Failed() != nil {
		t.Fatalf("pre-start cancel latched the engine: %v", e.Failed())
	}
	if err := e.RunContext(context.Background()); err != nil {
		t.Fatalf("run after cleared cancellation: %v", err)
	}
	if got := e.Day(); got != 2 {
		t.Fatalf("engine at day %d after full run, want 2", got)
	}
}

// TestRestoreDay: the cursor restore used by checkpoint resume accepts
// exactly the fresh-engine, in-range case.
func TestRestoreDay(t *testing.T) {
	e := lifecycleEngine(t, 5)
	if err := e.RestoreDay(3); err != nil {
		t.Fatalf("RestoreDay(3) on fresh engine: %v", err)
	}
	if got := e.Day(); got != 3 {
		t.Fatalf("Day() = %d after RestoreDay(3)", got)
	}
	if err := e.RestoreDay(2); err == nil {
		t.Fatal("RestoreDay on advanced engine succeeded")
	}
	for _, bad := range []int{-1, 6} {
		if err := lifecycleEngine(t, 5).RestoreDay(bad); err == nil {
			t.Fatalf("RestoreDay(%d) out of range succeeded", bad)
		}
	}
}

// TestRunDayOutOfOrderPanics: the legacy RunDay keeps its contract by
// panicking when called with anything but the cursor day.
func TestRunDayOutOfOrderPanics(t *testing.T) {
	e := lifecycleEngine(t, 3)
	e.RunDay(0)
	defer func() {
		if recover() == nil {
			t.Fatal("RunDay(2) with cursor at 1 did not panic")
		}
	}()
	e.RunDay(2)
}
