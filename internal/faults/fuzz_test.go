package faults

import "testing"

// FuzzFaultPlan asserts plan decisions are pure functions of their key: any
// (seed, rate, host, day, attempt) evaluated twice agrees with itself,
// always lands in the valid kind set for its channel, and a disabled plan
// never injects.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), 0.05, "example.com", 0, 0)
	f.Add(uint64(2022), 0.2, "a.b.c.example", 27, 7)
	f.Add(uint64(0), 0.0, "", -1, -3)
	f.Add(^uint64(0), 1.0, "x", 1<<20, 1<<20)
	f.Fuzz(func(t *testing.T, seed uint64, rate float64, host string, day, attempt int) {
		if rate < 0 || rate > 1 || rate != rate {
			return
		}
		p := &Plan{Seed: seed, Rate: rate}
		k := Key{Day: day, Attempt: attempt}

		d1, d2 := p.Dial(host, k), p.Dial(host, k)
		e1, e2 := p.Edge(host, k), p.Edge(host, k)
		n1, n2 := p.DNS(host, k), p.DNS(host, k)
		if d1 != d2 || e1 != e2 || n1 != n2 {
			t.Fatalf("impure decision: dial %v/%v edge %v/%v dns %v/%v", d1, d2, e1, e2, n1, n2)
		}
		switch d1 {
		case None, DialRefused, DialReset, DialTruncate, DialStall:
		default:
			t.Fatalf("Dial returned non-dial kind %v", d1)
		}
		if e1 != None && e1 != Edge5xx {
			t.Fatalf("Edge returned non-edge kind %v", e1)
		}
		switch n1 {
		case None, DNSServFail, DNSNXDomain, DNSTruncate, DNSDrop:
		default:
			t.Fatalf("DNS returned non-DNS kind %v", n1)
		}
		if rate == 0 && (d1 != None || e1 != None || n1 != None) {
			t.Fatal("zero-rate plan injected a fault")
		}
	})
}
