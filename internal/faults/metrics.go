package faults

import "toplists/internal/obs"

// numKinds is the count of declared fault kinds (None included, unused).
const numKinds = int(DNSDrop) + 1

// Metrics counts injected faults by class. Because every injection is a
// pure function of (plan seed, class, host, day, attempt) and the attempt
// sequences themselves are deterministic, these counters are part of the
// run report's deterministic subset. A nil *Metrics is a no-op, and all
// class counters are registered up front so the report's key set does not
// depend on which faults happened to fire.
type Metrics struct {
	injected [numKinds]*obs.Counter
}

// NewMetrics registers one faults.injected.<kind> counter per fault class
// on r. Safe on a nil registry (returns a usable no-op).
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{}
	for k := DialRefused; k <= DNSDrop; k++ {
		m.injected[k] = r.Counter("faults.injected." + k.String())
	}
	return m
}

// Injected records one injected fault of kind k. None and unknown kinds
// are ignored. Safe on nil.
func (m *Metrics) Injected(k Kind) {
	if m == nil || k == None || int(k) >= numKinds {
		return
	}
	m.injected[k].Inc()
}
