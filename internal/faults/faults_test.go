package faults

import (
	"context"
	"math"
	"testing"
)

// TestDecisionsArePure pins the core contract: the same (seed, class, host,
// key) always yields the same kind, and distinct plans with the same seed
// agree.
func TestDecisionsArePure(t *testing.T) {
	a := &Plan{Seed: 42, Rate: 0.2}
	b := &Plan{Seed: 42, Rate: 0.2}
	for day := 0; day < 4; day++ {
		for attempt := 0; attempt < 8; attempt++ {
			k := Key{Day: day, Attempt: attempt}
			for _, host := range []string{"a.example", "b.example", "zzz.test"} {
				if a.Dial(host, k) != b.Dial(host, k) {
					t.Fatalf("Dial(%s, %+v) differs between identical plans", host, k)
				}
				if a.Edge(host, k) != b.Edge(host, k) {
					t.Fatalf("Edge(%s, %+v) differs between identical plans", host, k)
				}
				if a.DNS(host, k) != b.DNS(host, k) {
					t.Fatalf("DNS(%s, %+v) differs between identical plans", host, k)
				}
			}
		}
	}
}

// TestRateZeroAndNilInjectNothing: both the nil plan and a zero rate are
// the perfect-weather network.
func TestRateZeroAndNilInjectNothing(t *testing.T) {
	var nilPlan *Plan
	zero := &Plan{Seed: 7}
	for attempt := 0; attempt < 32; attempt++ {
		k := Key{Attempt: attempt}
		for _, p := range []*Plan{nilPlan, zero} {
			if p.Enabled() {
				t.Fatal("disabled plan reports Enabled")
			}
			if p.Dial("h.example", k) != None || p.Edge("h.example", k) != None || p.DNS("h.example", k) != None {
				t.Fatal("disabled plan injected a fault")
			}
		}
	}
}

// TestFaultRatesApproximateBudget checks the observed fault frequency over
// many hosts lands near the configured rate and split.
func TestFaultRatesApproximateBudget(t *testing.T) {
	p := &Plan{Seed: 99, Rate: 0.10}
	const n = 40_000
	var dial, edge, dns int
	kinds := make(map[Kind]int)
	for i := 0; i < n; i++ {
		host := "host-" + itoa(i) + ".example"
		k := Key{Day: i % 3, Attempt: i % 5}
		if d := p.Dial(host, k); d != None {
			dial++
			kinds[d]++
		}
		if p.Edge(host, k) != None {
			edge++
		}
		if d := p.DNS(host, k); d != None {
			dns++
			kinds[d]++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		f := float64(got) / n
		if math.Abs(f-want) > 0.015 {
			t.Errorf("%s rate %.4f, want ~%.4f", name, f, want)
		}
	}
	check("dial", dial, dialShare*p.Rate)
	check("edge", edge, edgeShare*p.Rate)
	check("dns", dns, p.Rate)
	for _, k := range []Kind{DialRefused, DialReset, DialTruncate, DialStall} {
		if kinds[k] == 0 {
			t.Errorf("dial kind %v never drawn in %d rolls", k, n)
		}
	}
	for _, k := range []Kind{DNSServFail, DNSNXDomain, DNSTruncate, DNSDrop} {
		if kinds[k] == 0 {
			t.Errorf("dns kind %v never drawn in %d rolls", k, n)
		}
	}
}

// TestSeedAndKeyIndependence: changing any key component or the seed
// changes at least some decisions (no degenerate hashing).
func TestSeedAndKeyIndependence(t *testing.T) {
	base := &Plan{Seed: 1, Rate: 0.5}
	other := &Plan{Seed: 2, Rate: 0.5}
	var diffSeed, diffDay, diffAttempt int
	for i := 0; i < 2000; i++ {
		host := "host-" + itoa(i) + ".example"
		k := Key{Day: 0, Attempt: 0}
		if base.Dial(host, k) != other.Dial(host, k) {
			diffSeed++
		}
		if base.Dial(host, k) != base.Dial(host, Key{Day: 1}) {
			diffDay++
		}
		if base.Dial(host, k) != base.Dial(host, Key{Attempt: 1}) {
			diffAttempt++
		}
	}
	if diffSeed == 0 || diffDay == 0 || diffAttempt == 0 {
		t.Fatalf("decisions insensitive to inputs: seed=%d day=%d attempt=%d", diffSeed, diffDay, diffAttempt)
	}
}

// TestKeyContextRoundTrip covers the two plumbing channels: the dial
// context and the probe header.
func TestKeyContextRoundTrip(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context reports a key")
	}
	k := Key{Day: 3, Attempt: 11}
	got, ok := FromContext(NewContext(context.Background(), k))
	if !ok || got != k {
		t.Fatalf("FromContext = %+v, %v; want %+v", got, ok, k)
	}

	dk, ok := DecodeKey(k.Encode())
	if !ok || dk != k {
		t.Fatalf("DecodeKey(%q) = %+v, %v; want %+v", k.Encode(), dk, ok, k)
	}
	for _, bad := range []string{"", "3", "3.", ".11", "a.b", "3.11.2x"} {
		if _, ok := DecodeKey(bad); ok && bad != "3.11.2x" {
			t.Errorf("DecodeKey(%q) unexpectedly ok", bad)
		}
	}
}

// TestJitterBoundsAndDeterminism pins the backoff jitter's range and
// purity.
func TestJitterBoundsAndDeterminism(t *testing.T) {
	seen := make(map[float64]bool)
	for i := 0; i < 500; i++ {
		host := "host-" + itoa(i) + ".example"
		for round := 1; round < 4; round++ {
			j := Jitter(host, round)
			if j < 0.5 || j >= 1.0 {
				t.Fatalf("Jitter(%s, %d) = %v out of [0.5, 1)", host, round, j)
			}
			if j != Jitter(host, round) {
				t.Fatalf("Jitter(%s, %d) not deterministic", host, round)
			}
			seen[j] = true
		}
	}
	if len(seen) < 100 {
		t.Fatalf("jitter too clustered: %d distinct values over 1500 draws", len(seen))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
