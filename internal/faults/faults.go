// Package faults is the simulation's failure model: a seed-deterministic
// plan of transport and DNS faults injected into the virtual network.
//
// The real probing step the paper relies on (Section 4.3's HEAD-probe for
// the cf-ray header) runs over an internet full of transient refusals,
// resets, stalls, flaky 5xxs, and lame DNS delegations; a probe lost to any
// of them silently reclassifies a site as "not Cloudflare-served" and skews
// every downstream comparison. This package reproduces that weather inside
// the simulation without giving up reproducibility: every fault decision is
// a pure function of (plan seed, fault class, host, virtual day, attempt
// index) — never the wall clock, never a shared RNG, never a mutable
// counter in the request path — so the same seed yields byte-identical runs
// at any concurrency, and a zero rate is exactly the perfect-weather
// network the golden tests pin.
package faults

import (
	"context"
	"errors"
	"strconv"
	"strings"
)

// Kind identifies one injected fault.
type Kind uint8

// The fault kinds. The Dial* kinds surface in the dialer, Edge5xx in the
// HTTP proxy middleware, and the DNS* kinds in the DNS server wrapper.
const (
	None Kind = iota
	// DialRefused fails the dial immediately (connection refused).
	DialRefused
	// DialReset connects, then resets on the first response read.
	DialReset
	// DialTruncate connects, then cuts the response off mid-headers.
	DialTruncate
	// DialStall connects nothing and hangs for a fixed simulated latency
	// (or until the attempt's context ends, whichever is sooner) before
	// failing. The stall duration is bounded so a probe's classification
	// never depends on how its per-attempt timeout races real scheduling
	// delays — timing must not be able to alter outcomes.
	DialStall
	// Edge5xx answers with a 502 from in front of the edge, without the
	// cf-ray header a healthy edge response would carry.
	Edge5xx
	// DNSServFail answers SERVFAIL.
	DNSServFail
	// DNSNXDomain answers NXDOMAIN for a name that exists.
	DNSNXDomain
	// DNSTruncate answers with the TC bit set and no records.
	DNSTruncate
	// DNSDrop swallows the datagram.
	DNSDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case DialRefused:
		return "dial-refused"
	case DialReset:
		return "dial-reset"
	case DialTruncate:
		return "dial-truncate"
	case DialStall:
		return "dial-stall"
	case Edge5xx:
		return "edge-5xx"
	case DNSServFail:
		return "dns-servfail"
	case DNSNXDomain:
		return "dns-nxdomain"
	case DNSTruncate:
		return "dns-truncate"
	case DNSDrop:
		return "dns-drop"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Errors surfaced by the fault-injecting dialer and connections.
var (
	ErrRefused = errors.New("faults: connection refused")
	ErrReset   = errors.New("faults: connection reset by peer")
	ErrStalled = errors.New("faults: connection stalled")
)

// Key locates one probe attempt in virtual time. Day is the virtual
// measurement day (retry-on-next-day sweeps advance it), Attempt the
// attempt index within the probe of one host. Together with the host name
// they fully determine every fault decision.
type Key struct {
	Day     int
	Attempt int
}

type ctxKey struct{}

// NewContext returns ctx carrying the attempt key, read by the
// fault-injecting dialer.
func NewContext(ctx context.Context, k Key) context.Context {
	return context.WithValue(ctx, ctxKey{}, k)
}

// FromContext extracts the attempt key, if one is present.
func FromContext(ctx context.Context) (Key, bool) {
	k, ok := ctx.Value(ctxKey{}).(Key)
	return k, ok
}

// ProbeHeader is the request header probers stamp with Key.Encode so
// server-side middleware (which never sees the dial context) can key its
// own fault decisions on the same attempt.
const ProbeHeader = "X-Sim-Probe-Key"

// Encode renders the key for ProbeHeader.
func (k Key) Encode() string {
	return strconv.Itoa(k.Day) + "." + strconv.Itoa(k.Attempt)
}

// DecodeKey parses a ProbeHeader value.
func DecodeKey(s string) (Key, bool) {
	day, attempt, ok := strings.Cut(s, ".")
	if !ok {
		return Key{}, false
	}
	d, err1 := strconv.Atoi(day)
	a, err2 := strconv.Atoi(attempt)
	if err1 != nil || err2 != nil {
		return Key{}, false
	}
	return Key{Day: d, Attempt: a}, true
}

// Plan decides which faults strike which attempts. A nil plan, or one with
// Rate 0, injects nothing. Plans are immutable and safe for concurrent use:
// they hold no state, and every decision method is a pure function of its
// arguments.
type Plan struct {
	// Seed keys every decision; two plans with the same seed and rate make
	// identical calls forever.
	Seed uint64
	// Rate is the per-attempt fault probability in [0, 1]. An attempt
	// rolls once per channel: dial-level faults take ~3/4 of the budget,
	// edge-response faults the remaining ~1/4, and DNS faults the full
	// rate on the (separate) DNS wire path.
	Rate float64
}

// Enabled reports whether the plan injects anything; safe on nil.
func (p *Plan) Enabled() bool { return p != nil && p.Rate > 0 }

// dialShare and edgeShare split an HTTP attempt's fault budget between the
// dialer and the response path.
const (
	dialShare = 0.75
	edgeShare = 0.25
)

// Dial decides the dial-level fault for one attempt at a host. The four
// dial kinds split the dial share of the rate evenly.
func (p *Plan) Dial(host string, k Key) Kind {
	if !p.Enabled() {
		return None
	}
	x := p.roll("dial", host, k)
	if frac(x) >= dialShare*p.Rate {
		return None
	}
	return [...]Kind{DialRefused, DialReset, DialTruncate, DialStall}[x&3]
}

// Edge decides the response-level fault for one attempt at a host.
func (p *Plan) Edge(host string, k Key) Kind {
	if !p.Enabled() {
		return None
	}
	if frac(p.roll("edge", host, k)) < edgeShare*p.Rate {
		return Edge5xx
	}
	return None
}

// DNS decides the wire fault for one query attempt of a name. The four DNS
// kinds split the rate evenly.
func (p *Plan) DNS(name string, k Key) Kind {
	if !p.Enabled() {
		return None
	}
	x := p.roll("dns", name, k)
	if frac(x) >= p.Rate {
		return None
	}
	return [...]Kind{DNSServFail, DNSNXDomain, DNSTruncate, DNSDrop}[x&3]
}

// roll hashes (seed, class, name, day, attempt) into one well-mixed word:
// FNV-1a over the inputs, finished with the splitmix64 mixer so every bit
// avalanches. The selector bits (low) and the probability bits (high, via
// frac) come from the same word but disjoint ranges.
func (p *Plan) roll(class, name string, k Key) uint64 {
	h := uint64(14695981039346656037)
	h = foldWord(h, p.Seed)
	h = foldString(h, class)
	h = foldString(h, name)
	h = foldWord(h, uint64(int64(k.Day)))
	h = foldWord(h, uint64(int64(k.Attempt)))
	return mix64(h)
}

// Jitter returns a deterministic backoff multiplier in [0.5, 1.0) keyed on
// (host, retry round): enough spread to desynchronize retry schedules,
// with none of the wall-clock dependence of rand-based jitter.
func Jitter(host string, round int) float64 {
	h := uint64(14695981039346656037)
	h = foldString(h, host)
	h = foldWord(h, uint64(int64(round)))
	return 0.5 + frac(mix64(h))/2
}

func foldWord(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// frac maps the top 53 bits of x to [0, 1).
func frac(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
