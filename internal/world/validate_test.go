package world

import (
	"strings"
	"testing"
)

// TestConfigValidate is the table-driven contract of Config.Validate:
// out-of-range values produce explicit errors naming the field instead of
// being silently clamped, and zero values stay valid (they take defaults).
func TestConfigValidate(t *testing.T) {
	badVantages := DefaultVantages(2)
	badVantages[1].Reach[0] = 1.5
	dupVantages := []Vantage{GlobalVantage(), GlobalVantage()}
	regionalFirst := []Vantage{regionalVantage("eu-central", DE)}
	noName := DefaultVantages(2)
	noName[1].Name = ""
	negLatency := DefaultVantages(2)
	negLatency[1].LatencyMS[3] = -1

	cases := []struct {
		name    string
		cfg     Config
		wantErr string // empty = valid
	}{
		{"zero config is valid", Config{}, ""},
		{"full default-shaped config", Config{Seed: 7, NumSites: 100, Backends: 1, Vantages: DefaultVantages(1)}, ""},
		{"multi-edge config", Config{NumSites: 50, Backends: NumBackends, Vantages: DefaultVantages(MaxVantages)}, ""},
		{"negative sites", Config{NumSites: -1}, "NumSites -1 negative"},
		{"negative infra names", Config{InfraNames: -3}, "InfraNames -3 negative"},
		{"negative zipf exponent", Config{ZipfS: -0.5}, "ZipfS -0.5 negative"},
		{"negative popularity noise", Config{PopNoise: -1}, "PopNoise -1 negative"},
		{"https share above one", Config{HTTPSShare: 1.5}, "HTTPSShare 1.5 outside [0, 1]"},
		{"negative non-public share", Config{NonPublicShare: -0.1}, "NonPublicShare -0.1 outside [0, 1]"},
		{"multi-cdn share above one", Config{MultiCDNShare: 2}, "MultiCDNShare 2 outside [0, 1]"},
		{"cf base above one", Config{CFBase: 1.01}, "CFBase 1.01 outside [0, 1]"},
		{"extra cdn base negative", Config{ExtraCDNBase: -0.2}, "ExtraCDNBase -0.2 outside [0, 1]"},
		{"negative backend count", Config{Backends: -1}, "Backends -1 outside"},
		{"backend count beyond deployable", Config{Backends: NumBackends + 1}, "Backends 4 outside"},
		{"vantage reach above one", Config{Vantages: badVantages}, "reach[US] = 1.5 outside [0, 1]"},
		{"vantage negative latency", Config{Vantages: negLatency}, "latency[BR] = -1 negative"},
		{"vantage without name", Config{Vantages: noName}, "empty name"},
		{"duplicate vantage names", Config{Vantages: dupVantages}, `duplicate vantage name "global"`},
		{"regional vantage first", Config{Vantages: regionalFirst}, `vantage 0 ("eu-central") must be transparent`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestGenerateRejectsInvalidConfig pins that Generate refuses out-of-range
// configs loudly (panic with the Validate error) rather than clamping.
func TestGenerateRejectsInvalidConfig(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Generate accepted an invalid config")
		}
		err, ok := v.(error)
		if !ok || !strings.Contains(err.Error(), "CFBase") {
			t.Fatalf("panic value = %v, want the CFBase validation error", v)
		}
	}()
	Generate(Config{NumSites: 10, CFBase: 7})
}
