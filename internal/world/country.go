package world

// Country identifies one of the simulated client countries. The set matches
// the eleven countries of the paper's Chrome analysis (Section 6.1): ten
// designated by the Chrome team for fidelity and diversity, plus China as a
// comparison point for Secrank.
type Country uint8

// The simulated countries.
const (
	US Country = iota
	GB
	DE
	BR
	IN
	ID
	JP
	NG
	EG
	ZA
	CN
	NumCountries = 11
)

// String returns the ISO 3166-1 alpha-2 code.
func (c Country) String() string {
	return countryInfos[c].Code
}

// CountryInfo holds the static per-country parameters of the simulation.
type CountryInfo struct {
	Code string
	Name string

	// ClientShare is the country's share of the simulated browsing
	// population. Shares sum to 1.
	ClientShare float64
	// MobileShare is the fraction of the country's clients on Android (the
	// rest are Windows desktop).
	MobileShare float64
	// EnterpriseShare is the fraction of clients behind a corporate network
	// whose DNS egresses through the simulated Cisco Umbrella resolver.
	EnterpriseShare float64
	// SiteShare is the country's share of website production (where sites
	// are "from"); the global web over-indexes on the US relative to its
	// browsing population.
	SiteShare float64
	// Localness is the mean insularity of the country's sites: how much of
	// a local site's audience is domestic. Japan's web is the most
	// insular in the simulation, which is the mechanism behind "all top
	// lists poorly represent Japan" (Section 6.3).
	Localness float64
	// Openness scales how much the country's *clients* consume foreign
	// sites. China's near-zero openness models the Great Firewall: a
	// resolver there (Secrank's vantage) observes almost exclusively the
	// domestic web, which is why Secrank misses the Cloudflare-visible web
	// so badly (Section 5.1).
	Openness float64
	// ChromeShare is the fraction of the country's clients using Chrome
	// (the rest use other top-5 browsers); Chrome telemetry and CrUX only
	// observe Chrome clients who opted into sync.
	ChromeShare float64
	// CFAdoption scales Cloudflare adoption for sites homed in the
	// country; Chinese sites essentially never proxy through Cloudflare.
	CFAdoption float64
	// TLDs are the suffixes used for the country's local sites, sampled by
	// the paired weights. Global sites draw from generic TLDs instead.
	TLDs   []string
	TLDWts []float64
}

var countryInfos = [NumCountries]CountryInfo{
	US: {
		Code: "US", Name: "United States",
		ClientShare: 0.16, MobileShare: 0.44, EnterpriseShare: 0.30,
		SiteShare: 0.34, Localness: 0.35, Openness: 1.0, ChromeShare: 0.52, CFAdoption: 1.0,
		TLDs: []string{"com", "org", "net", "us", "io", "co"}, TLDWts: []float64{0.6, 0.12, 0.1, 0.05, 0.08, 0.05},
	},
	GB: {
		Code: "GB", Name: "United Kingdom",
		ClientShare: 0.05, MobileShare: 0.46, EnterpriseShare: 0.22,
		SiteShare: 0.07, Localness: 0.40, Openness: 1.0, ChromeShare: 0.48, CFAdoption: 0.95,
		TLDs: []string{"co.uk", "uk", "org.uk", "com"}, TLDWts: []float64{0.5, 0.1, 0.1, 0.3},
	},
	DE: {
		Code: "DE", Name: "Germany",
		ClientShare: 0.06, MobileShare: 0.40, EnterpriseShare: 0.20,
		SiteShare: 0.07, Localness: 0.55, Openness: 0.9, ChromeShare: 0.45, CFAdoption: 0.8,
		TLDs: []string{"de", "com"}, TLDWts: []float64{0.75, 0.25},
	},
	BR: {
		Code: "BR", Name: "Brazil",
		ClientShare: 0.08, MobileShare: 0.64, EnterpriseShare: 0.08,
		SiteShare: 0.06, Localness: 0.55, Openness: 0.9, ChromeShare: 0.75, CFAdoption: 0.85,
		TLDs: []string{"com.br", "br", "com"}, TLDWts: []float64{0.6, 0.1, 0.3},
	},
	IN: {
		Code: "IN", Name: "India",
		ClientShare: 0.17, MobileShare: 0.78, EnterpriseShare: 0.07,
		SiteShare: 0.07, Localness: 0.45, Openness: 0.95, ChromeShare: 0.80, CFAdoption: 0.9,
		TLDs: []string{"in", "co.in", "com"}, TLDWts: []float64{0.4, 0.2, 0.4},
	},
	ID: {
		Code: "ID", Name: "Indonesia",
		ClientShare: 0.07, MobileShare: 0.80, EnterpriseShare: 0.05,
		SiteShare: 0.04, Localness: 0.55, Openness: 0.9, ChromeShare: 0.78, CFAdoption: 0.85,
		TLDs: []string{"co.id", "id", "com"}, TLDWts: []float64{0.45, 0.2, 0.35},
	},
	JP: {
		Code: "JP", Name: "Japan",
		ClientShare: 0.08, MobileShare: 0.56, EnterpriseShare: 0.06,
		SiteShare: 0.08, Localness: 0.85, Openness: 0.55, ChromeShare: 0.40, CFAdoption: 0.5,
		TLDs: []string{"jp", "co.jp", "ne.jp", "or.jp"}, TLDWts: []float64{0.35, 0.45, 0.1, 0.1},
	},
	NG: {
		Code: "NG", Name: "Nigeria",
		ClientShare: 0.04, MobileShare: 0.82, EnterpriseShare: 0.03,
		SiteShare: 0.02, Localness: 0.40, Openness: 1.0, ChromeShare: 0.72, CFAdoption: 0.9,
		TLDs: []string{"ng", "com.ng", "com"}, TLDWts: []float64{0.35, 0.25, 0.4},
	},
	EG: {
		Code: "EG", Name: "Egypt",
		ClientShare: 0.04, MobileShare: 0.76, EnterpriseShare: 0.04,
		SiteShare: 0.02, Localness: 0.50, Openness: 0.85, ChromeShare: 0.70, CFAdoption: 0.8,
		TLDs: []string{"com.eg", "eg", "com"}, TLDWts: []float64{0.4, 0.2, 0.4},
	},
	ZA: {
		Code: "ZA", Name: "South Africa",
		ClientShare: 0.03, MobileShare: 0.70, EnterpriseShare: 0.08,
		SiteShare: 0.02, Localness: 0.45, Openness: 1.0, ChromeShare: 0.70, CFAdoption: 0.9,
		TLDs: []string{"co.za", "za", "com"}, TLDWts: []float64{0.55, 0.1, 0.35},
	},
	CN: {
		Code: "CN", Name: "China",
		ClientShare: 0.22, MobileShare: 0.66, EnterpriseShare: 0.10,
		SiteShare: 0.21, Localness: 0.90, Openness: 0.05, ChromeShare: 0.20, CFAdoption: 0.03,
		TLDs: []string{"cn", "com.cn", "com", "net.cn"}, TLDWts: []float64{0.4, 0.25, 0.25, 0.1},
	},
}

// Countries returns the static country table.
func Countries() []CountryInfo {
	return countryInfos[:]
}

// Info returns the country's static parameters.
func (c Country) Info() CountryInfo { return countryInfos[c] }

// AllCountries lists all country values in order.
func AllCountries() []Country {
	out := make([]Country, NumCountries)
	for i := range out {
		out[i] = Country(i)
	}
	return out
}

// Platform is the client device platform. The paper's platform analysis
// focuses on Windows (desktop) and Android (mobile), the two largest
// Chrome install bases (Section 6.1).
type Platform uint8

// The simulated platforms.
const (
	Windows Platform = iota
	Android
	NumPlatforms = 2
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	if p == Windows {
		return "Windows"
	}
	return "Android"
}

// AllPlatforms lists both platforms.
func AllPlatforms() []Platform { return []Platform{Windows, Android} }
